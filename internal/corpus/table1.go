package corpus

import (
	"fmt"
	"strings"

	"artisan/internal/llm"
)

// Table1Row is one dataset line of the paper's Table 1.
type Table1Row struct {
	Split   string
	Name    string
	Samples int
	Tokens  int
}

// Table1 is the dataset accounting table.
type Table1 struct {
	Scale float64
	Rows  []Table1Row
}

// Table1 computes the dataset statistics of the build. When the build was
// generated at a reduced scale, ScaledToPaper extrapolates.
func (b *Build) Table1(scale float64) Table1 {
	tok := llm.NewTokenizer()
	countDocs := func(docs []llm.Document) (int, int) {
		t := 0
		for _, d := range docs {
			t += tok.Count(d.Text)
		}
		return len(docs), t
	}
	countQA := func(qas []llm.QA) (int, int) {
		t := 0
		for _, q := range qas {
			t += tok.Count(q.Question) + tok.Count(q.Answer)
		}
		return len(qas), t
	}
	var rows []Table1Row
	s, t := countDocs(b.Corpus)
	rows = append(rows, Table1Row{"Pre-training", "Collected corpus", s, t})
	s, t = countDocs(b.TupleDoc)
	rows = append(rows, Table1Row{"Pre-training", "NetlistTuple", s, t})
	s, t = countQA(b.Alpaca)
	rows = append(rows, Table1Row{"Fine-tuning", "Alpaca dataset", s, t})
	s, t = countQA(b.DesignQA)
	rows = append(rows, Table1Row{"Fine-tuning", "DesignQA", s, t})
	return Table1{Scale: scale, Rows: rows}
}

// Totals returns (samples, tokens) for one split.
func (t Table1) Totals(split string) (int, int) {
	s, tk := 0, 0
	for _, r := range t.Rows {
		if r.Split == split {
			s += r.Samples
			tk += r.Tokens
		}
	}
	return s, tk
}

// ScaledToPaper extrapolates the measured counts back to paper scale
// (scale⁻¹ linear extrapolation), for the Table 1 comparison.
func (t Table1) ScaledToPaper() Table1 {
	if t.Scale <= 0 {
		return t
	}
	out := Table1{Scale: 1}
	f := 1 / t.Scale
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, Table1Row{
			Split: r.Split, Name: r.Name,
			Samples: int(float64(r.Samples) * f),
			Tokens:  int(float64(r.Tokens) * f),
		})
	}
	return out
}

// String renders the table in the paper's layout (samples in k, tokens
// in M).
func (t Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: dataset information (scale %.4g)\n", t.Scale)
	fmt.Fprintf(&b, "%-14s %-18s %12s %12s\n", "Split", "Name", "Samples(k)", "Tokens(M)")
	lastSplit := ""
	for _, r := range t.Rows {
		split := r.Split
		if split == lastSplit {
			split = ""
		} else {
			lastSplit = split
		}
		fmt.Fprintf(&b, "%-14s %-18s %12.1f %12.2f\n", split, r.Name,
			float64(r.Samples)/1e3, float64(r.Tokens)/1e6)
	}
	for _, split := range []string{"Pre-training", "Fine-tuning"} {
		s, tk := t.Totals(split)
		fmt.Fprintf(&b, "%-14s %-18s %12.1f %12.2f\n", split, "Total",
			float64(s)/1e3, float64(tk)/1e6)
	}
	return b.String()
}
