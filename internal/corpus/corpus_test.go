package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"artisan/internal/describe"
	"artisan/internal/llm"
)

func TestGenerateDefaultScale(t *testing.T) {
	b, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// 1/400 of the paper counts.
	if len(b.Corpus) != 562 {
		t.Errorf("corpus docs = %d, want 562", len(b.Corpus))
	}
	if len(b.Tuples) != 32 || len(b.TupleDoc) != 32 {
		t.Errorf("tuples = %d/%d, want 32", len(b.Tuples), len(b.TupleDoc))
	}
	if len(b.Alpaca) != 130 {
		t.Errorf("alpaca = %d, want 130", len(b.Alpaca))
	}
	if len(b.DesignQA) != 35 {
		t.Errorf("designQA = %d, want 35", len(b.DesignQA))
	}
	// Every tuple's canonical description parses back.
	for i, tu := range b.Tuples[:10] {
		if _, err := describe.Parse(tu.Description); err != nil {
			t.Errorf("tuple %d description unparseable: %v", i, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Scale: 0.001, Seed: 9, AugmentVariants: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Scale: 0.001, Seed: 9, AugmentVariants: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Corpus) != len(b.Corpus) || a.Corpus[0].Text != b.Corpus[0].Text {
		t.Error("generation not deterministic")
	}
	if a.DesignQA[0].Answer != b.DesignQA[0].Answer {
		t.Error("DesignQA not deterministic")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Generate(Config{Scale: 2}); err == nil {
		t.Error("over-unity scale accepted")
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(2)
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := b.Table1(cfg.Scale)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	paper := tab.ScaledToPaper()
	// Sample counts extrapolate to the paper's Table 1 (225k/13k/52k/14k).
	wantSamples := []int{225000, 13000, 52000, 14000}
	for i, r := range paper.Rows {
		rel := float64(r.Samples-wantSamples[i]) / float64(wantSamples[i])
		if rel > 0.02 || rel < -0.02 {
			t.Errorf("%s: samples %d, want ≈ %d", r.Name, r.Samples, wantSamples[i])
		}
	}
	// Token shape: pre-training split dominates fine-tuning, and the
	// collected corpus dominates the NetlistTuple split (as in Table 1:
	// 142M vs 23M and 25M total fine-tuning).
	_, preTok := paper.Totals("Pre-training")
	_, fineTok := paper.Totals("Fine-tuning")
	if preTok <= fineTok {
		t.Errorf("pre-training tokens %d should exceed fine-tuning %d", preTok, fineTok)
	}
	if paper.Rows[0].Tokens <= paper.Rows[1].Tokens {
		t.Errorf("collected corpus tokens %d should exceed NetlistTuple %d",
			paper.Rows[0].Tokens, paper.Rows[1].Tokens)
	}
	s := tab.String()
	for _, want := range []string{"Collected corpus", "NetlistTuple", "Alpaca", "DesignQA", "Total"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 text missing %q", want)
		}
	}
}

func TestParaphrasePreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := "The opamp capacitor of 4.7p is connected to the output node. Therefore, the design is stable because gm3 = 251.2u."
	changed := false
	for i := 0; i < 10; i++ {
		out := Paraphrase(src, rng)
		if out != src {
			changed = true
		}
		for _, v := range []string{"4.7p", "251.2u"} {
			if !strings.Contains(out, v) {
				t.Fatalf("paraphrase lost value %q: %s", v, out)
			}
		}
	}
	if !changed {
		t.Error("paraphrase never changed the text")
	}
}

func TestVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := Variants("The opamp design is large because of the capacitor.", 3, rng)
	if len(vs) != 3 {
		t.Fatalf("got %d variants", len(vs))
	}
}

func TestDatasetSplit(t *testing.T) {
	b, err := Generate(Config{Scale: 0.002, Seed: 5, AugmentVariants: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := b.Dataset()
	if len(ds.Pretrain) != len(b.Corpus)+len(b.TupleDoc) {
		t.Error("pretrain split wrong")
	}
	if len(ds.Finetune) != len(b.Alpaca)+len(b.DesignQA) {
		t.Error("finetune split wrong")
	}
}

// End-to-end: the generated dataset trains the DomainModel with a falling
// held-out loss — the full §3.4 pipeline.
func TestDatasetTrainsModel(t *testing.T) {
	b, err := Generate(Config{Scale: 0.004, Seed: 6, AugmentVariants: 1})
	if err != nil {
		t.Fatal(err)
	}
	model, rep, err := llm.Train(b.Dataset(), llm.DefaultTrainConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DAPT.Improved() {
		t.Errorf("DAPT did not improve: %v", rep.DAPT.LossCurve)
	}
	if model.LM() == nil {
		t.Fatal("no LM")
	}
	// The trained model answers a DesignQA-style question.
	if _, err := model.Generate("How to allocate these poles in an NMC opamp?"); err != nil {
		t.Errorf("trained model cannot answer: %v", err)
	}
}

func TestDesignQAContent(t *testing.T) {
	b, err := Generate(Config{Scale: 0.003, Seed: 7, AugmentVariants: 0})
	if err != nil {
		t.Fatal(err)
	}
	foundButter, foundCalc := false, false
	for _, qa := range b.DesignQA {
		if strings.Contains(qa.Answer, "Butterworth") || strings.Contains(qa.Answer, "1:2:4") {
			foundButter = true
		}
		if strings.Contains(qa.Answer, "gm3 =") {
			foundCalc = true
		}
	}
	if !foundButter {
		t.Error("DesignQA lacks Butterworth allocation content")
	}
	if !foundCalc {
		t.Error("DesignQA lacks calculator derivations")
	}
}
