// Package corpus constructs the opamp dataset of §3.4 (Table 1): a
// synthetic "collected corpus" (tutorial documents, forum threads, paper
// abstracts about opamp design), the NetlistTuple pre-training set from
// the bidirectional representation, the DesignQA fine-tuning set distilled
// from the analytic design procedures, an Alpaca-style general instruction
// set, and a rule-based paraphrase engine standing in for the paper's
// ChatGPT-API data augmentation.
package corpus

import (
	"math/rand"
	"strings"
)

// synonyms is the substitution table of the augmentation engine. Each
// group is interchangeable; replacements preserve the technical meaning.
var synonyms = [][]string{
	{"opamp", "operational amplifier", "op-amp"},
	{"capacitor", "compensation capacitor", "cap"},
	{"transconductance", "gm", "transconductance gm"},
	{"output node", "output terminal"},
	{"is connected", "is placed", "is inserted"},
	{"dominant pole", "first pole"},
	{"phase margin", "PM"},
	{"gain-bandwidth product", "GBW", "unity-gain bandwidth"},
	{"three-stage", "3-stage"},
	{"design", "synthesis"},
	{"choose", "select", "pick"},
	{"large", "big", "heavy"},
	{"because", "since", "as"},
}

// connectorSwaps vary discourse connectors.
var connectorSwaps = [][]string{
	{"Therefore,", "Thus,", "Hence,"},
	{"Moreover,", "Furthermore,", "In addition,"},
	{"However,", "Nevertheless,"},
}

// Paraphrase rewrites text with synonym substitution and connector
// variation, driven by the rng. It deliberately never touches tokens that
// look like values or identifiers (digits, unit suffixes), so augmented
// NetlistTuples keep their quantitative content — the property that made
// the paper's rephrasing augmentation safe.
func Paraphrase(text string, rng *rand.Rand) string {
	out := text
	for _, group := range synonyms {
		// pick a source present in the text and a different target
		for _, src := range group {
			if !strings.Contains(out, src) {
				continue
			}
			tgt := group[rng.Intn(len(group))]
			if tgt == src {
				continue
			}
			// Replace only some occurrences (every other) for variety.
			if rng.Intn(2) == 0 {
				out = strings.Replace(out, src, tgt, 1)
			} else {
				out = strings.ReplaceAll(out, src, tgt)
			}
			break
		}
	}
	for _, group := range connectorSwaps {
		for _, src := range group {
			if strings.Contains(out, src) {
				out = strings.Replace(out, src, group[rng.Intn(len(group))], 1)
				break
			}
		}
	}
	return out
}

// Variants returns n distinct-ish paraphrases of text (the original is
// not included).
func Variants(text string, n int, rng *rand.Rand) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Paraphrase(text, rng))
	}
	return out
}
