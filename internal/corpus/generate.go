package corpus

import (
	"fmt"
	"math/rand"

	"artisan/internal/describe"
	"artisan/internal/design"
	"artisan/internal/llm"
	"artisan/internal/spec"
	"artisan/internal/topology"
	"artisan/internal/units"
)

// PaperCounts are the sample counts of Table 1 (in samples, not
// thousands).
var PaperCounts = struct {
	Corpus, Tuples, Alpaca, DesignQA int
}{225000, 13000, 52000, 14000}

// Config scales the dataset build. Scale 1.0 reproduces the paper's
// sample counts; the default benchmarks use a much smaller scale since
// token accounting extrapolates linearly.
type Config struct {
	Scale float64
	Seed  int64
	// AugmentVariants is how many paraphrase variants accompany each
	// NetlistTuple description and DesignQA answer.
	AugmentVariants int
}

// DefaultConfig builds a 1/400-scale dataset — large enough for the
// statistics to stabilise, small enough for test runs.
func DefaultConfig(seed int64) Config {
	return Config{Scale: 1.0 / 400, Seed: seed, AugmentVariants: 4}
}

// Build is the generated dataset, split as in Table 1.
type Build struct {
	Corpus   []llm.Document
	Tuples   []describe.Tuple
	TupleDoc []llm.Document // tuples rendered (and augmented) as documents
	Alpaca   []llm.QA
	DesignQA []llm.QA
}

// Dataset converts the build to the trainer's two-split layout.
func (b *Build) Dataset() llm.Dataset {
	pre := append([]llm.Document(nil), b.Corpus...)
	pre = append(pre, b.TupleDoc...)
	fine := append([]llm.QA(nil), b.Alpaca...)
	fine = append(fine, b.DesignQA...)
	return llm.Dataset{Pretrain: pre, Finetune: fine}
}

// Generate builds the full dataset.
func Generate(cfg Config) (*Build, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("corpus: scale %g out of (0, 1]", cfg.Scale)
	}
	if cfg.AugmentVariants < 0 {
		cfg.AugmentVariants = 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Build{}

	nCorpus := scaled(PaperCounts.Corpus, cfg.Scale)
	for i := 0; i < nCorpus; i++ {
		b.Corpus = append(b.Corpus, genDocument(rng))
	}

	nTuples := scaled(PaperCounts.Tuples, cfg.Scale)
	sampler := topology.NewSampler(cfg.Seed + 1)
	env := topology.DefaultEnv()
	for i := 0; i < nTuples; i++ {
		topo := sampler.Random()
		tu, err := describe.NewTuple(topo, env)
		if err != nil {
			return nil, fmt.Errorf("corpus: tuple %d: %w", i, err)
		}
		b.Tuples = append(b.Tuples, tu)
		text := tu.Netlist + "\n" + tu.Description
		for _, v := range Variants(tu.Description, cfg.AugmentVariants, rng) {
			text += "\n" + v
		}
		b.TupleDoc = append(b.TupleDoc, llm.Document{
			Title: fmt.Sprintf("netlist-tuple-%05d", i), Text: text})
	}

	nAlpaca := scaled(PaperCounts.Alpaca, cfg.Scale)
	for i := 0; i < nAlpaca; i++ {
		b.Alpaca = append(b.Alpaca, genInstruction(rng))
	}

	nQA := scaled(PaperCounts.DesignQA, cfg.Scale)
	qa, err := genDesignQA(nQA, cfg, rng)
	if err != nil {
		return nil, err
	}
	b.DesignQA = qa
	return b, nil
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// --- collected-corpus generator --------------------------------------------

var docKinds = []func(*rand.Rand) llm.Document{genTutorial, genForumThread, genAbstract}

func genDocument(rng *rand.Rand) llm.Document {
	return docKinds[rng.Intn(len(docKinds))](rng)
}

func randProfile(rng *rand.Rand) llm.ArchProfile {
	ps := llm.DomainProfiles()
	return ps[rng.Intn(len(ps))]
}

func randSpecSentence(rng *rand.Rand) string {
	return fmt.Sprintf("a gain above %d dB, a gain-bandwidth product above %s Hz, a phase margin above %d degrees and power below %s W",
		80+rng.Intn(40), units.Format(float64(1+rng.Intn(9))*1e5*float64(1+rng.Intn(10))),
		45+rng.Intn(30), units.Format(float64(2+rng.Intn(30))*1e-5))
}

func genTutorial(rng *rand.Rand) llm.Document {
	p := randProfile(rng)
	q := randProfile(rng)
	body := fmt.Sprintf(
		"Tutorial: designing a three-stage opamp with %s.\n"+
			"%s\n"+
			"Suppose the target is %s. "+
			"Start from the zero-pole analysis: the dominant pole follows from the Miller effect of the outer compensation capacitor, and the gain-bandwidth product is GBW = gm1/(2*pi*Cm1). "+
			"Therefore, allocate the non-dominant poles by the Butterworth ratios GBW:p2:p3 = 1:2:4 so the phase margin lands near 60 degrees. "+
			"Then solve the stage transconductances with the standard relations gm3 = 8*pi*GBW*CL, gm1 = gm3*Cm1/(4*CL) and gm2 = gm3*Cm2/(2*CL). "+
			"Moreover, check the power budget: each branch burns Id = gm/(gm/Id), and the differential input pair needs two branches. "+
			"A worked example helps. With CL = 10pF and GBW = 1MHz the output stage needs gm3 = 251.2u; choosing Cm1 = 4p and Cm2 = 3p gives gm1 = 25.12u and gm2 = 37.68u, "+
			"and the projected DC gain A1*A2*gm3*(Ro3||RL) comfortably clears an 85 dB target when the input stage is a cascoded current-mirror pair. "+
			"If the gain budget still misses, replace the second stage with a telescopic cascode: its intrinsic gain rises from about 45 to 160 at no extra current. "+
			"A common alternative in this situation is %s: %s "+
			"Watch the feedforward RHP zero near gm3/(Cm1+Cm2); a nulling resistor around 1/gm3 in series with Cm1 moves it into the left half plane and buys several degrees of phase. "+
			"Remember that every transconductor carries a parasitic pole at roughly its transit frequency, so over-sizing gm buys bandwidth but costs both current and parasitic loading. "+
			"Finally verify the design with an AC simulation and iterate if the phase margin is inadequate; "+
			"when the specs are met, map the behavioral stages to transistors with the gm/Id methodology: the input pair near gm/Id = 20 in moderate-weak inversion, mirrors near 12, and the common-source drivers near 16, "+
			"then size W/L from the inversion coefficient and re-verify at transistor level.",
		p.Arch, p.Rationale, randSpecSentence(rng), q.Arch, q.Rationale)
	return llm.Document{Title: "tutorial-" + p.Arch, Text: Paraphrase(body, rng)}
}

func genForumThread(rng *rand.Rand) llm.Document {
	p := randProfile(rng)
	cl := []string{"10pF", "100pF", "500pF", "1nF"}[rng.Intn(4)]
	body := fmt.Sprintf(
		"Forum thread: my three-stage opamp oscillates when driving %s, what should I do?\n"+
			"Reply 1: check the phase margin first; if the non-dominant poles sit below the unity-gain frequency the loop is underdamped. "+
			"Post an AC sweep of the open loop: the magnitude should fall at 20 dB per decade through unity and the phase should stay above -125 degrees there for a 55 degree margin. "+
			"Reply 2: consider %s. %s "+
			"Reply 3: do not forget the feedforward RHP zero of plain Miller compensation, a nulling resistor around 1/gm3 moves it to the left half plane. "+
			"Also measure the gain margin at the -180 degree crossing; anything under 6 dB will ring badly on a step even if it is formally stable. "+
			"Reply 4: because the output pole scales as gm3/CL, a large capacitive load wants a damping-factor-control block instead of brute-force current. "+
			"The DFC block is a gain stage gm4 with a feedback capacitor Cm3 and behaves as a frequency-dependent capacitor: capacitance multiplication at low frequency, damping near the complex pole pair. "+
			"Reply 5 (OP): thanks — removing the inner Miller capacitor and adding the DFC block plus a push-pull feedforward stage fixed it; "+
			"the simulator now reports a clean 60 degree margin and the power dropped too, because the output stage no longer has to scale with the load.",
		cl, p.Arch, p.Rationale)
	return llm.Document{Title: "forum-" + cl, Text: Paraphrase(body, rng)}
}

func genAbstract(rng *rand.Rand) llm.Document {
	p := randProfile(rng)
	body := fmt.Sprintf(
		"Abstract: this paper presents a %s-based three-stage amplifier achieving %s. "+
			"%s "+
			"Measured results show a figure of merit of %d MHz*pF/mW with a %d degree phase margin under a %s F load. "+
			"However, the compensation network must be sized against the parasitic poles of the transconductance stages, "+
			"and the gm/Id methodology maps the behavioral stages to transistor sizes in moderate inversion. "+
			"Section II derives the small-signal transfer function of the compensated amplifier and locates its poles as the roots of the characteristic determinant; "+
			"Section III presents the pole-allocation strategy and the resulting closed-form sizing equations; "+
			"Section IV reports silicon measurements across supply and temperature, including a settling-time comparison against a classic NMC design of equal power, "+
			"where the proposed compensation settles %d percent faster into a 0.1 percent error band. "+
			"The amplifier occupies %s m2 in a mature CMOS node and operates from a 1.8 V supply; "+
			"the design equations are fully parameterized so the topology ports across load capacitances from a few pF to the nF range.",
		p.Arch, randSpecSentence(rng), p.Rationale,
		100+rng.Intn(10000), 50+rng.Intn(30), units.Format(float64(1+rng.Intn(100))*1e-11),
		10+rng.Intn(60), units.Format(float64(1+rng.Intn(9))*1e-8))
	return llm.Document{Title: "abstract-" + p.Arch, Text: Paraphrase(body, rng)}
}

// --- Alpaca-style instructions ---------------------------------------------

var instructionTemplates = []llm.QA{
	{Question: "Explain the difference between gain and bandwidth in one paragraph.",
		Answer: "Gain is how much an amplifier multiplies its input at low frequency, while bandwidth is the frequency range over which that multiplication holds; the two trade off through the gain-bandwidth product. " +
			"A single-pole amplifier with 100 dB of gain and a 10 Hz dominant pole has the same gain-bandwidth product as one with 40 dB of gain and a 10 kHz pole, which is why designers quote GBW as the real speed metric. " +
			"In multi-stage designs the trade becomes richer, because compensation redistributes the available bandwidth between loop stability and closed-loop speed."},
	{Question: "Summarize why feedback stabilises amplifier behaviour.",
		Answer: "Feedback compares a fraction of the output against the input and corrects the difference, so variations of the forward gain are suppressed by the loop gain. " +
			"Process spread, temperature drift, and nonlinearity of the open-loop amplifier all shrink by the same factor, which is how a sloppy 80 dB forward path becomes a precise unity-gain buffer. " +
			"The price is stability: the loop must keep adequate phase margin at the frequency where its magnitude crosses unity, otherwise the correction arrives late enough to reinforce the error."},
	{Question: "Rewrite this sentence more formally: the opamp is kind of slow.",
		Answer: "The operational amplifier exhibits a limited gain-bandwidth product. " +
			"Equivalently, its dominant pole is placed at a low frequency relative to the application's signal band, so the closed-loop response settles more slowly than the system budget allows."},
	{Question: "List three uses of a capacitor in analog circuits.",
		Answer: "Frequency compensation, where a Miller capacitor splits the poles of a multi-stage amplifier and sets the unity-gain frequency; " +
			"AC coupling between stages, where the capacitor passes the signal band while blocking DC operating points; " +
			"and supply decoupling, where local charge storage absorbs transient current demand and keeps the rails quiet."},
	{Question: "What does PM stand for in amplifier design?",
		Answer: "PM stands for phase margin, the distance of the loop phase from -180 degrees at the unity-gain frequency. " +
			"A margin near 60 degrees gives a maximally flat closed-loop response with little overshoot; below about 45 degrees the step response rings, and at zero margin the loop oscillates outright."},
	{Question: "Give a one-line definition of a netlist.",
		Answer: "A netlist is a textual list of circuit devices and the nodes they connect, describing the circuit as a graph. " +
			"Each line names one element, its terminals, and its value, so the same file serves as both the simulator input and the canonical exchange format between design tools."},
	{Question: "Translate 251.2u into scientific notation.",
		Answer: "251.2u equals 2.512e-4. The 'u' suffix is the SPICE micro scale of 1e-6, so 251.2u reads as 251.2 times 1e-6; engineering notation keeps the mantissa between 1 and 1000 and steps the exponent in multiples of three."},
	{Question: "Why do designers prefer interpretable circuits?",
		Answer: "Because a circuit whose structure maps to known design principles can be reviewed, debugged and ported with confidence, unlike an opaque optimizer output. " +
			"An interpretable compensation network tells the reviewer which pole each element controls, what happens when the load changes, and which device to resize when a spec moves — " +
			"all questions that a black-box connection of elements cannot answer without re-running the optimizer from scratch."},
}

func genInstruction(rng *rand.Rand) llm.QA {
	base := instructionTemplates[rng.Intn(len(instructionTemplates))]
	return llm.QA{Question: Paraphrase(base.Question, rng), Answer: Paraphrase(base.Answer, rng)}
}

// --- DesignQA ----------------------------------------------------------------

// genDesignQA distills QA pairs from real executions of the analytic
// design procedures — the machine analogue of the paper's expert-annotated
// design documents (§3.3.2).
func genDesignQA(n int, cfg Config, rng *rand.Rand) ([]llm.QA, error) {
	var out []llm.QA
	groups := spec.Groups()
	archs := design.Architectures()
	seed := cfg.Seed + 7
	for len(out) < n {
		g := groups[rng.Intn(len(groups))]
		arch := archs[rng.Intn(len(archs))]
		knobs, err := design.SampleKnobs(arch, g, rand.New(rand.NewSource(seed)), 0.1)
		seed++
		if err != nil {
			return nil, err
		}
		res, err := design.Design(arch, g, knobs)
		if err != nil {
			// Some sampled knob sets fail structurally; skip them, they
			// are not design documents.
			continue
		}
		// One DesignQA sample is a complete annotated design document:
		// the opening design request paired with the full QA-format
		// derivation (the paper's experts annotate whole documents, not
		// single exchanges).
		doc := res.Transcript()
		out = append(out, llm.QA{
			Question: res.Spec.Prompt() + " Document the complete design process for " + arch + ".",
			Answer:   Paraphrase(doc, rng),
		})
	}
	return out, nil
}
