package topology

// This file is the library of named three-stage compensation architectures
// from the multistage-amplifier literature (Leung & Mok 2001, Riad 2019)
// that the Artisan knowledge base selects among. Each constructor takes
// the already-solved design parameters and returns the structural
// Topology; the analytic sizing lives in internal/design.

// stages builds the three-stage skeleton slice with default intrinsic gains.
func stages(gm1, gm2, gm3 float64) []Stage {
	return []Stage{
		{Gm: gm1, A0: DefaultStageA0[0]},
		{Gm: gm2, A0: DefaultStageA0[1]},
		{Gm: gm3, A0: DefaultStageA0[2]},
	}
}

// NMC is nested Miller compensation: outer cap Cm1 (n1→out) and inner cap
// Cm2 (n2→out). The workhorse general-purpose architecture.
func NMC(gm1, gm2, gm3, cm1, cm2 float64) *Topology {
	return &Topology{
		Name:   "NMC",
		Stages: stages(gm1, gm2, gm3),
		Conns: []Connection{
			{Pos: Position{"n1", "out"}, Type: ConnC, C: cm1},
			{Pos: Position{"n2", "out"}, Type: ConnC, C: cm2},
		},
	}
}

// NMCNR is NMC with a nulling resistor in series with the outer Miller
// capacitor, shifting the feedforward RHP zero into the LHP.
func NMCNR(gm1, gm2, gm3, cm1, cm2, rz float64) *Topology {
	t := NMC(gm1, gm2, gm3, cm1, cm2)
	t.Name = "NMCNR"
	t.SetConn(Connection{Pos: Position{"n1", "out"}, Type: ConnSeriesRC, C: cm1, R: rz})
	return t
}

// NMCF is NMC with a feedforward transconductance from the first-stage
// output to the opamp output, forming a push–pull output pair with the
// (inverting) third stage; the LHP zero it creates relaxes the gm3
// requirement and extends bandwidth.
func NMCF(gm1, gm2, gm3, cm1, cm2, gmf float64) *Topology {
	t := NMC(gm1, gm2, gm3, cm1, cm2)
	t.Name = "NMCF"
	t.SetConn(Connection{Pos: Position{"n1", "out"}, Type: ConnGmNParallelC, Gm: gmf, C: cm1})
	return t
}

// MNMC is multipath NMC: a feedforward transconductance from the input to
// the second-stage output creating a parallel fast path.
func MNMC(gm1, gm2, gm3, cm1, cm2, gmf float64) *Topology {
	t := NMC(gm1, gm2, gm3, cm1, cm2)
	t.Name = "MNMC"
	t.SetConn(Connection{Pos: Position{"in", "n2"}, Type: ConnGmP, Gm: gmf})
	return t
}

// NGCC is nested Gm-C compensation: feedforward transconductors replicate
// the signal path at every level (in→n2 and in→out).
func NGCC(gm1, gm2, gm3, cm1, cm2, gmf1, gmf2 float64) *Topology {
	t := NMC(gm1, gm2, gm3, cm1, cm2)
	t.Name = "NGCC"
	t.SetConn(Connection{Pos: Position{"in", "n2"}, Type: ConnGmP, Gm: gmf1})
	t.SetConn(Connection{Pos: Position{"in", "out"}, Type: ConnGmN, Gm: gmf2})
	return t
}

// DFCFC is damping-factor-control frequency compensation: the inner
// Miller capacitor is removed and replaced by a DFC block (gain stage gm4
// with feedback capacitor Cm3) shunting the second-stage output, plus a
// feedforward stage gmf to the output; the block damps the non-dominant
// complex pole pair, which is what lets the opamp drive huge capacitive
// loads (the paper's G-5 scenario and Fig. 7 Q9→A9).
func DFCFC(gm1, gm2, gm3, cm1, gm4, cm3, gmf float64) *Topology {
	return &Topology{
		Name:   "DFCFC",
		Stages: stages(gm1, gm2, gm3),
		Conns: []Connection{
			// Outer Miller cap sharing its position with the feedforward
			// transconductor (push-pull output), as in NMCF.
			{Pos: Position{"n1", "out"}, Type: ConnGmNParallelC, Gm: gmf, C: cm1},
			// The DFC block shunts the first-stage output (the placement
			// that calibrates best against the MNA substrate).
			{Pos: Position{"n1", "0"}, Type: ConnDFCP, Gm: gm4, C: cm3},
		},
	}
}

// TCFC is transconductance-with-capacitances feedback compensation: the
// outer compensation current is relayed through a current buffer
// (cascode), removing the feedforward RHP zero.
func TCFC(gm1, gm2, gm3, cmt, gmt, cm2 float64) *Topology {
	return &Topology{
		Name:   "TCFC",
		Stages: stages(gm1, gm2, gm3),
		Conns: []Connection{
			{Pos: Position{"n1", "out"}, Type: ConnCascodeC, C: cmt, Gm: gmt},
			{Pos: Position{"n2", "out"}, Type: ConnC, C: cm2},
		},
	}
}

// AZC is active-zero compensation: the outer Miller path is a
// transconductor coupled through a capacitor, placing a tunable LHP zero.
func AZC(gm1, gm2, gm3, cm1, gma, cm2 float64) *Topology {
	return &Topology{
		Name:   "AZC",
		Stages: stages(gm1, gm2, gm3),
		Conns: []Connection{
			{Pos: Position{"n1", "out"}, Type: ConnC, C: cm1},
			{Pos: Position{"out", "n1"}, Type: ConnGmPSeriesC, Gm: gma, C: cm2},
		},
	}
}

// SMC is the classic two-stage simple-Miller-compensated opamp: one
// compensation capacitor across the (inverting) output stage. It cannot
// reach three-stage gain levels but is the frugal choice for moderate
// gain specs — the "other opamp topologies" extension of §2.2.
func SMC(gm1, gm2, cc float64) *Topology {
	return &Topology{
		Name:     "SMC",
		TwoStage: true,
		Stages: []Stage{
			{Gm: gm1, A0: DefaultStageA0[0]},
			{Gm: gm2, A0: DefaultStageA0[2]},
		},
		Conns: []Connection{
			{Pos: Position{"n1", "out"}, Type: ConnC, C: cc},
		},
	}
}

// SMCNR is SMC with the classic nulling resistor Rz ≈ 1/gm2 in series
// with the Miller capacitor, moving the feedforward RHP zero to the LHP.
func SMCNR(gm1, gm2, cc, rz float64) *Topology {
	t := SMC(gm1, gm2, cc)
	t.Name = "SMCNR"
	t.SetConn(Connection{Pos: Position{"n1", "out"}, Type: ConnSeriesRC, C: cc, R: rz})
	return t
}

// ArchitectureNames lists the named architectures the knowledge base
// reasons about, in preference order for general use.
func ArchitectureNames() []string {
	return []string{"NMC", "NMCNR", "NMCF", "MNMC", "NGCC", "DFCFC", "TCFC", "AZC", "SMC", "SMCNR"}
}
