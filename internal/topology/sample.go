package topology

import (
	"math"
	"math/rand"
)

// Sampler draws random topologies and applies mutation operators; it is
// the engine behind the paper's NetlistTuple generator (§3.2.2: "the
// generator randomly selects connection types for each tunable
// connection") and the move set of the RLBO baseline.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a deterministic sampler for the given seed.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// logUniform draws from [lo, hi] uniformly in log space.
func (s *Sampler) logUniform(lo, hi float64) float64 {
	return lo * math.Exp(s.rng.Float64()*math.Log(hi/lo))
}

// Parameter ranges of the design space.
const (
	gmLo, gmHi = 1e-6, 3e-3 // S
	cLo, cHi   = 0.1e-12, 20e-12
	rLo, rHi   = 1e3, 1e6
)

// RandomGm draws a plausible transconductance.
func (s *Sampler) RandomGm() float64 { return s.logUniform(gmLo, gmHi) }

// RandomC draws a plausible compensation capacitance.
func (s *Sampler) RandomC() float64 { return s.logUniform(cLo, cHi) }

// RandomR draws a plausible resistance.
func (s *Sampler) RandomR() float64 { return s.logUniform(rLo, rHi) }

// LegalTypesAt enumerates the connection types allowed at a position
// (including ConnNone).
func LegalTypesAt(p Position) []ConnType {
	var out []ConnType
	for t := ConnType(0); int(t) < NumConnTypes; t++ {
		if t == ConnNone || legalAt(t, p) {
			out = append(out, t)
		}
	}
	return out
}

// SpaceSize returns the number of structural topologies in the design
// space: the product over legal positions of the legal type counts. With
// 8 node-to-node positions × 25 types and 3 shunt positions × 7 types it
// is far beyond the paper's quoted "up to one million opamp samples".
func SpaceSize() float64 {
	size := 1.0
	for _, p := range LegalPositions() {
		size *= float64(len(LegalTypesAt(p)))
	}
	return size
}

// fill instantiates the value fields a type requires.
func (s *Sampler) fill(c *Connection) {
	if c.Type.HasGm() {
		c.Gm = s.RandomGm()
	}
	if c.Type.HasC() {
		c.C = s.RandomC()
	}
	if c.Type.HasR() {
		c.R = s.RandomR()
	}
}

// Random draws a topology: random stage transconductances and, at each
// legal position independently, a random type with bias toward ConnNone so
// that typical samples have 1–4 connections (like real compensation
// networks).
func (s *Sampler) Random() *Topology {
	t := &Topology{
		Name:   "random",
		Stages: stages(s.RandomGm(), s.RandomGm(), s.RandomGm()),
	}
	for _, p := range LegalPositions() {
		if s.rng.Float64() < 0.72 {
			continue // leave open
		}
		types := LegalTypesAt(p)
		ct := types[s.rng.Intn(len(types))]
		if ct == ConnNone {
			continue
		}
		c := Connection{Pos: p, Type: ct}
		s.fill(&c)
		t.SetConn(c)
	}
	return t
}

// MutationKind enumerates the structural move set.
type MutationKind int

const (
	// MutateAdd installs a new random connection at a free position.
	MutateAdd MutationKind = iota
	// MutateRemove deletes a random existing connection.
	MutateRemove
	// MutateChangeType re-draws the type at an occupied position.
	MutateChangeType
	// MutatePerturb scales the element values of one connection.
	MutatePerturb
	// MutateStageGm scales one skeleton stage transconductance.
	MutateStageGm
	numMutations
)

// Mutate applies one random structural or parametric move, returning a new
// topology (the input is not modified). It retries internally until it
// produces a valid result.
func (s *Sampler) Mutate(t *Topology) *Topology {
	for attempt := 0; attempt < 50; attempt++ {
		m := t.Clone()
		m.Name = t.Name
		switch MutationKind(s.rng.Intn(int(numMutations))) {
		case MutateAdd:
			free := s.freePositions(m)
			if len(free) == 0 {
				continue
			}
			p := free[s.rng.Intn(len(free))]
			types := LegalTypesAt(p)
			ct := types[s.rng.Intn(len(types))]
			if ct == ConnNone {
				continue
			}
			c := Connection{Pos: p, Type: ct}
			s.fill(&c)
			m.SetConn(c)
		case MutateRemove:
			if len(m.Conns) == 0 {
				continue
			}
			m.RemoveConn(m.Conns[s.rng.Intn(len(m.Conns))].Pos)
		case MutateChangeType:
			if len(m.Conns) == 0 {
				continue
			}
			i := s.rng.Intn(len(m.Conns))
			types := LegalTypesAt(m.Conns[i].Pos)
			ct := types[s.rng.Intn(len(types))]
			if ct == ConnNone {
				m.RemoveConn(m.Conns[i].Pos)
			} else {
				c := Connection{Pos: m.Conns[i].Pos, Type: ct}
				s.fill(&c)
				m.Conns[i] = c
			}
		case MutatePerturb:
			if len(m.Conns) == 0 {
				continue
			}
			i := s.rng.Intn(len(m.Conns))
			f := math.Exp(s.rng.NormFloat64() * 0.5)
			c := &m.Conns[i]
			if c.Type.HasGm() {
				c.Gm = clampRange(c.Gm*f, gmLo, gmHi)
			}
			if c.Type.HasC() {
				c.C = clampRange(c.C*f, cLo, cHi)
			}
			if c.Type.HasR() {
				c.R = clampRange(c.R*f, rLo, rHi)
			}
		case MutateStageGm:
			i := s.rng.Intn(len(m.Stages))
			f := math.Exp(s.rng.NormFloat64() * 0.5)
			m.Stages[i].Gm = clampRange(m.Stages[i].Gm*f, gmLo, gmHi)
		}
		if m.Validate() == nil {
			return m
		}
	}
	return t.Clone()
}

func (s *Sampler) freePositions(t *Topology) []Position {
	var free []Position
	for _, p := range LegalPositions() {
		if t.ConnAt(p) == nil {
			free = append(free, p)
		}
	}
	return free
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
