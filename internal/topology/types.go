// Package topology models the paper's opamp design space (§2.2, Fig. 1):
// a cascode skeleton of 2–4 transconductance stages, plus tunable
// connections at a set of legitimate positions, each realised by one of
// 25 connection types (§3.2.2). A Topology elaborates to a behavioral
// netlist for the MNA simulator. The package includes the library of
// named compensation architectures (NMC, NMCF, DFCFC, …) the design
// knowledge base reasons about, the Sampler behind the paper's
// NetlistTuple generator, and the constrained random Generator the
// generative benchmark harness uses to defeat memorization.
package topology

import "fmt"

// ConnType enumerates the 25 optional types a tunable connection can take
// (the paper states 25 types per position without listing them; this
// taxonomy spans the passive, active, buffered and damping structures the
// three-stage compensation literature uses).
type ConnType int

const (
	// ConnNone leaves the position open.
	ConnNone ConnType = iota
	// ConnR is a resistor between the endpoints.
	ConnR
	// ConnC is a capacitor (the plain Miller connection).
	ConnC
	// ConnSeriesRC is a nulling resistor in series with a capacitor.
	ConnSeriesRC
	// ConnParallelRC is a resistor in parallel with a capacitor.
	ConnParallelRC
	// ConnGmP is a forward transconductance (+ polarity).
	ConnGmP
	// ConnGmN is a forward transconductance (− polarity).
	ConnGmN
	// ConnGmPSeriesC couples a + transconductor through a series capacitor.
	ConnGmPSeriesC
	// ConnGmNSeriesC couples a − transconductor through a series capacitor.
	ConnGmNSeriesC
	// ConnGmPSeriesR couples a + transconductor through a series resistor.
	ConnGmPSeriesR
	// ConnGmNSeriesR couples a − transconductor through a series resistor.
	ConnGmNSeriesR
	// ConnGmPSeriesRC couples a + transconductor through R then C.
	ConnGmPSeriesRC
	// ConnGmNSeriesRC couples a − transconductor through R then C.
	ConnGmNSeriesRC
	// ConnGmPParallelC is a + transconductor with a bypass capacitor.
	ConnGmPParallelC
	// ConnGmNParallelC is a − transconductor with a bypass capacitor.
	ConnGmNParallelC
	// ConnBufC is a unity buffer driving a capacitor (level-shifted Miller).
	ConnBufC
	// ConnBufR is a unity buffer driving a resistor.
	ConnBufR
	// ConnBufRC is a unity buffer driving a series RC.
	ConnBufRC
	// ConnDFCP is a damping-factor-control block (+): a gain stage with a
	// local feedback capacitor, acting as a frequency-dependent capacitor
	// shunting the From node (To must be ground).
	ConnDFCP
	// ConnDFCN is the − polarity DFC block.
	ConnDFCN
	// ConnStageP is a full + gain stage (transconductor with its own
	// output resistance and parasitic capacitance) from From to To.
	ConnStageP
	// ConnStageN is a full − gain stage.
	ConnStageN
	// ConnCascodeC is cascode (current-buffer) compensation: a capacitor
	// into a common-gate transconductor that relays the current to To.
	ConnCascodeC
	// ConnQFCP is a + transconductor with series C damped by a parallel R.
	ConnQFCP
	// ConnQFCN is a − transconductor with series C damped by a parallel R.
	ConnQFCN

	// NumConnTypes is the size of the connection-type alphabet (25).
	NumConnTypes = int(ConnQFCN) + 1
)

var connNames = [...]string{
	"none", "R", "C", "RC-series", "RC-parallel",
	"gm+", "gm-", "gm+C", "gm-C", "gm+R", "gm-R", "gm+RC", "gm-RC",
	"gm+||C", "gm-||C", "buf-C", "buf-R", "buf-RC",
	"DFC+", "DFC-", "stage+", "stage-", "cascode-C", "QFC+", "QFC-",
}

// String returns a short mnemonic for the type.
func (t ConnType) String() string {
	if t < 0 || int(t) >= len(connNames) {
		return fmt.Sprintf("ConnType(%d)", int(t))
	}
	return connNames[t]
}

// HasGm reports whether the type instantiates a transconductor.
func (t ConnType) HasGm() bool {
	switch t {
	case ConnGmP, ConnGmN, ConnGmPSeriesC, ConnGmNSeriesC, ConnGmPSeriesR,
		ConnGmNSeriesR, ConnGmPSeriesRC, ConnGmNSeriesRC, ConnGmPParallelC,
		ConnGmNParallelC, ConnDFCP, ConnDFCN, ConnStageP, ConnStageN,
		ConnCascodeC, ConnQFCP, ConnQFCN:
		return true
	}
	return false
}

// HasC reports whether the type instantiates a capacitor.
func (t ConnType) HasC() bool {
	switch t {
	case ConnC, ConnSeriesRC, ConnParallelRC, ConnGmPSeriesC, ConnGmNSeriesC,
		ConnGmPSeriesRC, ConnGmNSeriesRC, ConnGmPParallelC, ConnGmNParallelC,
		ConnBufC, ConnBufRC, ConnDFCP, ConnDFCN, ConnCascodeC, ConnQFCP, ConnQFCN:
		return true
	}
	return false
}

// HasR reports whether the type instantiates an explicit resistor
// (transconductor output resistances don't count).
func (t ConnType) HasR() bool {
	switch t {
	case ConnR, ConnSeriesRC, ConnParallelRC, ConnGmPSeriesR, ConnGmNSeriesR,
		ConnGmPSeriesRC, ConnGmNSeriesRC, ConnBufR, ConnBufRC, ConnQFCP, ConnQFCN:
		return true
	}
	return false
}

// Inverting reports whether a transconductor type has − polarity.
func (t ConnType) Inverting() bool {
	switch t {
	case ConnGmN, ConnGmNSeriesC, ConnGmNSeriesR, ConnGmNSeriesRC,
		ConnGmNParallelC, ConnDFCN, ConnStageN, ConnQFCN:
		return true
	}
	return false
}

// ShuntOnly reports whether the type is a one-port that must terminate at
// ground (DFC blocks).
func (t ConnType) ShuntOnly() bool { return t == ConnDFCP || t == ConnDFCN }

// Stage-count limits of the skeleton. Two stages is the classic Miller
// opamp; four is the deepest nesting the compensation literature treats
// as practical (and the deepest the generative benchmark samples).
const (
	MinStageCount = 2
	MaxStageCount = 4
)

// SkeletonNodes are the five initial nodes of the three-stage skeleton
// of Fig. 1(a): the input, two internal stage outputs, the opamp output,
// and ground. Kept for the fixed three-stage design space; the general
// form is SkeletonNodesN.
var SkeletonNodes = []string{"in", "n1", "n2", "out", "0"}

// SkeletonNodesN returns the signal-path nodes of an n-stage skeleton in
// signal order — in, n1 … n(n-1), out — followed by ground.
func SkeletonNodesN(n int) []string {
	if n < MinStageCount || n > MaxStageCount {
		return buildSkeletonNodes(n)
	}
	return append([]string(nil), skeletonNodesTab[n]...)
}

func buildSkeletonNodes(n int) []string {
	nodes := []string{"in"}
	for i := 1; i < n; i++ {
		nodes = append(nodes, fmt.Sprintf("n%d", i))
	}
	return append(nodes, "out", "0")
}

// Per-depth node and position tables, built once: Validate and Elaborate
// sit on the simulation hot path (every Monte-Carlo restamp and every
// generator draw re-validates), so the internal callers read these
// shared read-only slices instead of rebuilding them per call. The
// exported SkeletonNodesN/LegalPositionsN return fresh copies callers
// may mutate (the generator shuffles its copy in place).
var (
	skeletonNodesTab [MaxStageCount + 1][]string
	legalPosTab      [MaxStageCount + 1][]Position
)

func init() {
	for n := MinStageCount; n <= MaxStageCount; n++ {
		skeletonNodesTab[n] = buildSkeletonNodes(n)
		legalPosTab[n] = buildLegalPositions(n)
	}
}

// skeletonNodes returns the shared table entry; callers must not mutate.
func skeletonNodes(n int) []string { return skeletonNodesTab[n] }

// legalPositions returns the shared table entry; callers must not mutate.
func legalPositions(n int) []Position {
	if n < MinStageCount || n > MaxStageCount {
		return nil
	}
	return legalPosTab[n]
}

// Position is an ordered pair of skeleton nodes a connection spans.
type Position struct{ From, To string }

func (p Position) String() string { return p.From + ">" + p.To }

// LegalPositions lists the tunable positions of the paper's three-stage
// design space: forward couplings, feedback couplings, and the shunt
// position at each internal node for DFC blocks. It equals
// LegalPositionsN(3) and is kept as the stable entry point of the fixed
// Table 3 / BOBO / RLBO spaces.
func LegalPositions() []Position {
	return []Position{
		{"in", "n2"}, {"in", "out"},
		{"n1", "n2"}, {"n1", "out"}, {"n2", "out"},
		{"n2", "n1"}, {"out", "n1"}, {"out", "n2"},
		{"n1", "0"}, {"n2", "0"}, {"out", "0"},
	}
}

// LegalPositionsN generalizes LegalPositions to an n-stage skeleton
// (n in [MinStageCount, MaxStageCount]): every forward coupling that
// skips or spans a stage (all ordered signal-path pairs except the input
// stage's own in→n1 hop), every feedback coupling between non-input
// nodes, and a ground shunt at each non-input node. For n = 3 the list
// is exactly LegalPositions(); positions for smaller n are a subset of
// those for larger n.
func LegalPositionsN(n int) []Position {
	if n < MinStageCount || n > MaxStageCount {
		return nil
	}
	return append([]Position(nil), legalPosTab[n]...)
}

func buildLegalPositions(n int) []Position {
	nodes := buildSkeletonNodes(n)
	path := nodes[:len(nodes)-1] // drop ground
	var out []Position
	for i := 0; i < len(path); i++ {
		for j := i + 1; j < len(path); j++ {
			if i == 0 && j == 1 {
				continue // in→n1 is the input stage itself
			}
			out = append(out, Position{path[i], path[j]})
		}
	}
	for j := 2; j < len(path); j++ {
		for i := 1; i < j; i++ {
			out = append(out, Position{path[j], path[i]})
		}
	}
	for i := 1; i < len(path); i++ {
		out = append(out, Position{path[i], "0"})
	}
	return out
}

// legalAt reports whether a type may occupy a position: shunt-only types
// require a ground destination and vice versa; pure ground shunts accept
// passive and DFC types only (a gm into ground is meaningless).
func legalAt(t ConnType, p Position) bool {
	if p.To == "0" {
		switch t {
		case ConnNone, ConnR, ConnC, ConnSeriesRC, ConnParallelRC, ConnDFCP, ConnDFCN:
			return true
		}
		return false
	}
	return !t.ShuntOnly()
}
