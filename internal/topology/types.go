// Package topology models the paper's three-stage opamp design space
// (§2.2, Fig. 1): a fixed cascode skeleton of three transconductance
// stages, plus tunable connections at a set of legitimate positions, each
// realised by one of 25 connection types (§3.2.2). A Topology elaborates
// to a behavioral netlist for the MNA simulator, and the package includes
// the library of named compensation architectures (NMC, NMCF, DFCFC, …)
// the design knowledge base reasons about.
package topology

import "fmt"

// ConnType enumerates the 25 optional types a tunable connection can take
// (the paper states 25 types per position without listing them; this
// taxonomy spans the passive, active, buffered and damping structures the
// three-stage compensation literature uses).
type ConnType int

const (
	// ConnNone leaves the position open.
	ConnNone ConnType = iota
	// ConnR is a resistor between the endpoints.
	ConnR
	// ConnC is a capacitor (the plain Miller connection).
	ConnC
	// ConnSeriesRC is a nulling resistor in series with a capacitor.
	ConnSeriesRC
	// ConnParallelRC is a resistor in parallel with a capacitor.
	ConnParallelRC
	// ConnGmP is a forward transconductance (+ polarity).
	ConnGmP
	// ConnGmN is a forward transconductance (− polarity).
	ConnGmN
	// ConnGmPSeriesC couples a + transconductor through a series capacitor.
	ConnGmPSeriesC
	// ConnGmNSeriesC couples a − transconductor through a series capacitor.
	ConnGmNSeriesC
	// ConnGmPSeriesR couples a + transconductor through a series resistor.
	ConnGmPSeriesR
	// ConnGmNSeriesR couples a − transconductor through a series resistor.
	ConnGmNSeriesR
	// ConnGmPSeriesRC couples a + transconductor through R then C.
	ConnGmPSeriesRC
	// ConnGmNSeriesRC couples a − transconductor through R then C.
	ConnGmNSeriesRC
	// ConnGmPParallelC is a + transconductor with a bypass capacitor.
	ConnGmPParallelC
	// ConnGmNParallelC is a − transconductor with a bypass capacitor.
	ConnGmNParallelC
	// ConnBufC is a unity buffer driving a capacitor (level-shifted Miller).
	ConnBufC
	// ConnBufR is a unity buffer driving a resistor.
	ConnBufR
	// ConnBufRC is a unity buffer driving a series RC.
	ConnBufRC
	// ConnDFCP is a damping-factor-control block (+): a gain stage with a
	// local feedback capacitor, acting as a frequency-dependent capacitor
	// shunting the From node (To must be ground).
	ConnDFCP
	// ConnDFCN is the − polarity DFC block.
	ConnDFCN
	// ConnStageP is a full + gain stage (transconductor with its own
	// output resistance and parasitic capacitance) from From to To.
	ConnStageP
	// ConnStageN is a full − gain stage.
	ConnStageN
	// ConnCascodeC is cascode (current-buffer) compensation: a capacitor
	// into a common-gate transconductor that relays the current to To.
	ConnCascodeC
	// ConnQFCP is a + transconductor with series C damped by a parallel R.
	ConnQFCP
	// ConnQFCN is a − transconductor with series C damped by a parallel R.
	ConnQFCN

	// NumConnTypes is the size of the connection-type alphabet (25).
	NumConnTypes = int(ConnQFCN) + 1
)

var connNames = [...]string{
	"none", "R", "C", "RC-series", "RC-parallel",
	"gm+", "gm-", "gm+C", "gm-C", "gm+R", "gm-R", "gm+RC", "gm-RC",
	"gm+||C", "gm-||C", "buf-C", "buf-R", "buf-RC",
	"DFC+", "DFC-", "stage+", "stage-", "cascode-C", "QFC+", "QFC-",
}

// String returns a short mnemonic for the type.
func (t ConnType) String() string {
	if t < 0 || int(t) >= len(connNames) {
		return fmt.Sprintf("ConnType(%d)", int(t))
	}
	return connNames[t]
}

// HasGm reports whether the type instantiates a transconductor.
func (t ConnType) HasGm() bool {
	switch t {
	case ConnGmP, ConnGmN, ConnGmPSeriesC, ConnGmNSeriesC, ConnGmPSeriesR,
		ConnGmNSeriesR, ConnGmPSeriesRC, ConnGmNSeriesRC, ConnGmPParallelC,
		ConnGmNParallelC, ConnDFCP, ConnDFCN, ConnStageP, ConnStageN,
		ConnCascodeC, ConnQFCP, ConnQFCN:
		return true
	}
	return false
}

// HasC reports whether the type instantiates a capacitor.
func (t ConnType) HasC() bool {
	switch t {
	case ConnC, ConnSeriesRC, ConnParallelRC, ConnGmPSeriesC, ConnGmNSeriesC,
		ConnGmPSeriesRC, ConnGmNSeriesRC, ConnGmPParallelC, ConnGmNParallelC,
		ConnBufC, ConnBufRC, ConnDFCP, ConnDFCN, ConnCascodeC, ConnQFCP, ConnQFCN:
		return true
	}
	return false
}

// HasR reports whether the type instantiates an explicit resistor
// (transconductor output resistances don't count).
func (t ConnType) HasR() bool {
	switch t {
	case ConnR, ConnSeriesRC, ConnParallelRC, ConnGmPSeriesR, ConnGmNSeriesR,
		ConnGmPSeriesRC, ConnGmNSeriesRC, ConnBufR, ConnBufRC, ConnQFCP, ConnQFCN:
		return true
	}
	return false
}

// Inverting reports whether a transconductor type has − polarity.
func (t ConnType) Inverting() bool {
	switch t {
	case ConnGmN, ConnGmNSeriesC, ConnGmNSeriesR, ConnGmNSeriesRC,
		ConnGmNParallelC, ConnDFCN, ConnStageN, ConnQFCN:
		return true
	}
	return false
}

// ShuntOnly reports whether the type is a one-port that must terminate at
// ground (DFC blocks).
func (t ConnType) ShuntOnly() bool { return t == ConnDFCP || t == ConnDFCN }

// SkeletonNodes are the five initial nodes of Fig. 1(a): the input, two
// internal stage outputs, the opamp output, and ground.
var SkeletonNodes = []string{"in", "n1", "n2", "out", "0"}

// Position is an ordered pair of skeleton nodes a connection spans.
type Position struct{ From, To string }

func (p Position) String() string { return p.From + ">" + p.To }

// LegalPositions lists the tunable positions of the design space:
// forward couplings, feedback couplings, and the shunt position at each
// internal node for DFC blocks.
func LegalPositions() []Position {
	return []Position{
		{"in", "n2"}, {"in", "out"},
		{"n1", "n2"}, {"n1", "out"}, {"n2", "out"},
		{"n2", "n1"}, {"out", "n1"}, {"out", "n2"},
		{"n1", "0"}, {"n2", "0"}, {"out", "0"},
	}
}

// legalAt reports whether a type may occupy a position: shunt-only types
// require a ground destination and vice versa; pure ground shunts accept
// passive and DFC types only (a gm into ground is meaningless).
func legalAt(t ConnType, p Position) bool {
	if p.To == "0" {
		switch t {
		case ConnNone, ConnR, ConnC, ConnSeriesRC, ConnParallelRC, ConnDFCP, ConnDFCN:
			return true
		}
		return false
	}
	return !t.ShuntOnly()
}
