package topology

import (
	"fmt"
	"math/rand"

	"artisan/internal/measure"
	"artisan/internal/netlist"
)

// Generator draws constrained random topologies for the generative
// benchmark harness: validity-checked signal-path graphs of 2–4 stages
// with arbitrary compensation networks. It differs from Sampler in two
// ways: the skeleton depth itself is sampled (Sampler is pinned to the
// paper's three-stage space so the Table 3 baselines stay comparable),
// and every emitted topology is *guaranteed* to elaborate through the
// sparse MNA path and produce a finite AC analysis — candidates that
// stamp but do not measure are rejected and redrawn. Generation is a
// pure function of the seed.
type Generator struct {
	rng *rand.Rand
	s   *Sampler
	env Env
}

// NewGenerator returns a deterministic generator for the given seed,
// measuring candidates in the default environment.
func NewGenerator(seed int64) *Generator {
	return NewGeneratorEnv(seed, DefaultEnv())
}

// NewGeneratorEnv returns a generator whose simulatability guarantee is
// checked in the given environment.
func NewGeneratorEnv(seed int64, env Env) *Generator {
	return &Generator{
		rng: rand.New(rand.NewSource(seed)),
		s:   NewSampler(seed ^ 0x67656e), // decorrelated value stream
		env: env,
	}
}

// genAttempts bounds the redraw loop. Random candidates fail only when
// the AC analysis degenerates (e.g. a feedback network nulls the DC
// response), which is rare; the bound exists so a pathological seed
// degrades into an error instead of an infinite loop.
const genAttempts = 64

// Topology draws one topology: a 2–4 stage skeleton, one guaranteed
// Miller-family compensation over the output stage, and 0–4 additional
// connections at distinct legal positions. The returned topology always
// passes Validate, elaborates into a netlist that passes
// netlist.Validate, and yields a finite measure.Analyze report.
func (g *Generator) Topology() (*Topology, error) {
	var lastErr error
	for attempt := 0; attempt < genAttempts; attempt++ {
		t := g.draw()
		if err := t.Validate(); err != nil {
			lastErr = err
			continue
		}
		nl, err := t.Elaborate(g.env)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := measure.Analyze(nl, "out"); err != nil {
			lastErr = fmt.Errorf("topology: generated candidate unmeasurable: %w", err)
			continue
		}
		return t, nil
	}
	return nil, fmt.Errorf("topology: generator exhausted %d attempts: %w", genAttempts, lastErr)
}

// Netlist draws one topology and returns it with its elaborated netlist.
func (g *Generator) Netlist() (*Topology, *netlist.Netlist, error) {
	t, err := g.Topology()
	if err != nil {
		return nil, nil, err
	}
	nl, err := t.Elaborate(g.env)
	if err != nil {
		return nil, nil, err
	}
	return t, nl, nil
}

// millerTypes are the compensation types the generator guarantees at the
// outer loop — every one couples the first internal node to the output
// with a capacitive (or buffered/cascoded/damped capacitive) path, which
// is what keeps random skeletons overwhelmingly stable and measurable.
var millerTypes = []ConnType{
	ConnC, ConnSeriesRC, ConnGmNParallelC, ConnBufC, ConnCascodeC, ConnQFCN,
}

// draw assembles one unchecked candidate.
func (g *Generator) draw() *Topology {
	n := MinStageCount + g.rng.Intn(MaxStageCount-MinStageCount+1)
	t := &Topology{
		Name:     fmt.Sprintf("gen%d", n),
		TwoStage: n == 2,
		Stages:   make([]Stage, n),
	}
	for i := range t.Stages {
		t.Stages[i] = Stage{Gm: g.s.RandomGm(), A0: DefaultA0(i)}
	}

	// Guaranteed outer compensation: n1 → out.
	outer := Connection{Pos: Position{"n1", "out"}, Type: millerTypes[g.rng.Intn(len(millerTypes))]}
	g.s.fill(&outer)
	t.SetConn(outer)

	// Extra connections at distinct free legal positions.
	extra := g.rng.Intn(5)
	positions := LegalPositionsN(n)
	for k := 0; k < extra; k++ {
		var free []Position
		for _, p := range positions {
			if t.ConnAt(p) == nil {
				free = append(free, p)
			}
		}
		if len(free) == 0 {
			break
		}
		p := free[g.rng.Intn(len(free))]
		types := LegalTypesAt(p)
		ct := types[g.rng.Intn(len(types))]
		if ct == ConnNone {
			continue
		}
		c := Connection{Pos: p, Type: ct}
		g.s.fill(&c)
		t.SetConn(c)
	}
	return t
}
