package topology

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/units"
)

func TestConnTypeAlphabet(t *testing.T) {
	if NumConnTypes != 25 {
		t.Fatalf("NumConnTypes = %d, want 25 (paper §3.2.2)", NumConnTypes)
	}
	seen := map[string]bool{}
	for i := 0; i < NumConnTypes; i++ {
		s := ConnType(i).String()
		if s == "" || strings.HasPrefix(s, "ConnType(") {
			t.Errorf("type %d has no name", i)
		}
		if seen[s] {
			t.Errorf("duplicate type name %q", s)
		}
		seen[s] = true
	}
	if ConnType(99).String() != "ConnType(99)" {
		t.Error("out-of-range String misbehaves")
	}
}

func TestTypePredicates(t *testing.T) {
	if !ConnGmNSeriesRC.HasGm() || !ConnGmNSeriesRC.HasC() || !ConnGmNSeriesRC.HasR() {
		t.Error("gm-RC should have all three elements")
	}
	if ConnC.HasGm() || ConnC.HasR() || !ConnC.HasC() {
		t.Error("C predicates wrong")
	}
	if !ConnGmN.Inverting() || ConnGmP.Inverting() {
		t.Error("polarity predicates wrong")
	}
	if !ConnDFCP.ShuntOnly() || ConnGmP.ShuntOnly() {
		t.Error("shunt predicates wrong")
	}
	if ConnNone.HasGm() || ConnNone.HasC() || ConnNone.HasR() {
		t.Error("none should have no elements")
	}
}

func TestLegalPositions(t *testing.T) {
	ps := LegalPositions()
	if len(ps) != 11 {
		t.Fatalf("got %d positions, want 11", len(ps))
	}
	for _, p := range ps {
		types := LegalTypesAt(p)
		if len(types) < 2 {
			t.Errorf("position %v has too few legal types", p)
		}
		for _, ct := range types {
			if ct == ConnNone {
				continue
			}
			if p.To == "0" && !ct.ShuntOnly() && ct.HasGm() {
				t.Errorf("gm type %v legal at ground shunt %v", ct, p)
			}
			if p.To != "0" && ct.ShuntOnly() {
				t.Errorf("DFC type %v legal at non-ground %v", ct, p)
			}
		}
	}
	if SpaceSize() < 1e6 {
		t.Errorf("design space %g, want ≥ 1e6 (paper: up to one million samples)", SpaceSize())
	}
}

// referenceNMC returns the NMC topology whose elaboration must reproduce
// the hand-built netlist used in the mna/measure tests.
func referenceNMC() *Topology {
	return NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
}

func TestElaborateNMC(t *testing.T) {
	topo := referenceNMC()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	nl, err := topo.Elaborate(DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Structure: Vin + 3×(G,R,C) + 2 caps + RL + CL = 14 devices.
	if len(nl.Devices) != 14 {
		t.Errorf("device count = %d, want 14\n%s", len(nl.Devices), nl)
	}
	rep, err := measure.Analyze(nl, "out")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GainDB < 95 || rep.GainDB > 115 {
		t.Errorf("GainDB = %g, want ≈ 105", rep.GainDB)
	}
	if rep.GBW < 0.7e6 || rep.GBW > 1.4e6 {
		t.Errorf("GBW = %g, want ≈ 1 MHz", rep.GBW)
	}
	if rep.PM < 45 || rep.PM > 80 {
		t.Errorf("PM = %g, want ≈ 60", rep.PM)
	}
	if !rep.Stable {
		t.Error("reference NMC should be stable")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Topology)
	}{
		{"zero stage gm", func(tp *Topology) { tp.Stages[1].Gm = 0 }},
		{"tiny A0", func(tp *Topology) { tp.Stages[0].A0 = 0.5 }},
		{"illegal position", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"out", "in"}, Type: ConnC, C: 1e-12})
		}},
		{"duplicate position", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"n1", "out"}, Type: ConnR, R: 1e4})
		}},
		{"gm type without gm", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"in", "out"}, Type: ConnGmP})
		}},
		{"C type without C", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"in", "out"}, Type: ConnC})
		}},
		{"R type without R", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"in", "out"}, Type: ConnR})
		}},
		{"DFC at non-ground", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"in", "out"}, Type: ConnDFCP, Gm: 1e-4, C: 1e-12})
		}},
		{"gm at ground shunt", func(tp *Topology) {
			tp.Conns = append(tp.Conns, Connection{Pos: Position{"n1", "0"}, Type: ConnGmP, Gm: 1e-4})
		}},
	}
	for _, c := range cases {
		tp := referenceNMC()
		c.mod(tp)
		if err := tp.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestConnAtSetRemove(t *testing.T) {
	tp := referenceNMC()
	if c := tp.ConnAt(Position{"n1", "out"}); c == nil || c.C != 4e-12 {
		t.Fatal("ConnAt failed")
	}
	tp.SetConn(Connection{Pos: Position{"n1", "out"}, Type: ConnSeriesRC, C: 4e-12, R: 2e3})
	if c := tp.ConnAt(Position{"n1", "out"}); c == nil || c.Type != ConnSeriesRC {
		t.Error("SetConn replace failed")
	}
	if !tp.RemoveConn(Position{"n2", "out"}) {
		t.Error("RemoveConn failed")
	}
	if tp.RemoveConn(Position{"n2", "out"}) {
		t.Error("double RemoveConn should be false")
	}
	if tp.ConnAt(Position{"n2", "out"}) != nil {
		t.Error("connection still present after removal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tp := referenceNMC()
	c := tp.Clone()
	c.Conns[0].C = 9e-12
	c.Stages[0].Gm = 1e-3
	if tp.Conns[0].C == 9e-12 || tp.Stages[0].Gm == 1e-3 {
		t.Error("Clone shares state")
	}
}

// Every named library architecture must validate and elaborate to a valid
// netlist with sensible structure.
func TestLibraryElaborates(t *testing.T) {
	gm1, gm2, gm3 := 30e-6, 40e-6, 250e-6
	archs := map[string]*Topology{
		"NMC":   NMC(gm1, gm2, gm3, 4e-12, 3e-12),
		"NMCNR": NMCNR(gm1, gm2, gm3, 4e-12, 3e-12, 3e3),
		"NMCF":  NMCF(gm1, gm2, gm3, 4e-12, 3e-12, 100e-6),
		"MNMC":  MNMC(gm1, gm2, gm3, 4e-12, 3e-12, 50e-6),
		"NGCC":  NGCC(gm1, gm2, gm3, 4e-12, 3e-12, 40e-6, 260e-6),
		"DFCFC": DFCFC(gm1, gm2, gm3, 2e-12, 300e-6, 1e-12, 250e-6),
		"TCFC":  TCFC(gm1, gm2, gm3, 2e-12, 200e-6, 1e-12),
		"AZC":   AZC(gm1, gm2, gm3, 4e-12, 50e-6, 2e-12),
		"SMC":   SMC(60e-6, 600e-6, 2e-12),
		"SMCNR": SMCNR(60e-6, 600e-6, 2e-12, 1.7e3),
	}
	for name, tp := range archs {
		if tp.Name != name {
			t.Errorf("%s: Name = %q", name, tp.Name)
		}
		nl, err := tp.Elaborate(DefaultEnv())
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: invalid netlist: %v", name, err)
		}
		if _, err := measure.Analyze(nl, "out"); err != nil {
			t.Errorf("%s: Analyze: %v", name, err)
		}
	}
	if len(ArchitectureNames()) != len(archs) {
		t.Errorf("ArchitectureNames count %d != %d", len(ArchitectureNames()), len(archs))
	}
}

// Each connection type must elaborate into devices when placed at a legal
// position — exhaustive over the alphabet.
func TestEveryConnTypeElaborates(t *testing.T) {
	for ct := ConnType(1); int(ct) < NumConnTypes; ct++ {
		pos := Position{"n1", "out"}
		if ct.ShuntOnly() {
			pos = Position{"n2", "0"}
		}
		c := Connection{Pos: pos, Type: ct, Gm: 1e-4, R: 1e4, C: 1e-12}
		tp := &Topology{Name: "probe", Stages: stages(30e-6, 40e-6, 250e-6),
			Conns: []Connection{c}}
		nl, err := tp.Elaborate(DefaultEnv())
		if err != nil {
			t.Errorf("%v: %v", ct, err)
			continue
		}
		// Skeleton alone has 12 devices (Vin + 3×3 + RL + CL); every
		// non-none type must add at least one.
		if len(nl.Devices) < 13 {
			t.Errorf("%v: only %d devices", ct, len(nl.Devices))
		}
		if ct.HasGm() && nl.CountKind(netlist.VCCS) < 4 {
			t.Errorf("%v: expected an extra VCCS", ct)
		}
	}
}

func TestElaborateEnvChecks(t *testing.T) {
	tp := referenceNMC()
	if _, err := tp.Elaborate(Env{CL: 0, RL: 1e6, Dev: DefaultDeviceModel()}); err == nil {
		t.Error("zero CL accepted")
	}
	if _, err := tp.Elaborate(Env{CL: 1e-12, RL: -1, Dev: DefaultDeviceModel()}); err == nil {
		t.Error("negative RL accepted")
	}
}

func TestDeviceModel(t *testing.T) {
	m := DefaultDeviceModel()
	cp := m.Cp(251.3e-6)
	want := 251.3e-6/(2*3.14159265358979*1e9) + 5e-15
	if !units.ApproxEqual(cp, want, 1e-6) {
		t.Errorf("Cp = %g, want %g", cp, want)
	}
	if m.Cp(1e-6) <= m.CMin {
		t.Error("Cp should exceed CMin")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a, b := NewSampler(7), NewSampler(7)
	for i := 0; i < 20; i++ {
		ta, tb := a.Random(), b.Random()
		if ta.Summary() != tb.Summary() {
			t.Fatalf("samplers diverged at %d:\n%s\n%s", i, ta.Summary(), tb.Summary())
		}
	}
}

// Property: random topologies are always valid and elaborate to valid
// netlists.
func TestRandomTopologyValid(t *testing.T) {
	f := func(seed int64) bool {
		s := NewSampler(seed)
		tp := s.Random()
		if tp.Validate() != nil {
			return false
		}
		nl, err := tp.Elaborate(DefaultEnv())
		if err != nil {
			return false
		}
		return nl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: mutation preserves validity.
func TestMutatePreservesValidity(t *testing.T) {
	s := NewSampler(42)
	tp := referenceNMC()
	for i := 0; i < 300; i++ {
		tp = s.Mutate(tp)
		if err := tp.Validate(); err != nil {
			t.Fatalf("mutation %d produced invalid topology: %v", i, err)
		}
	}
	if _, err := tp.Elaborate(DefaultEnv()); err != nil {
		t.Fatalf("mutated topology does not elaborate: %v", err)
	}
}

func TestSummary(t *testing.T) {
	s := referenceNMC().Summary()
	for _, want := range []string{"NMC", "C@n1>out", "C@n2>out"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := DFCFC(18.8e-6, 15e-6, 340e-6, 3e-12, 34e-6, 3e-12, 51e-6)
	data, err := src.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"DFC+"`) {
		t.Errorf("connection types should marshal by name:\n%s", data)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary() != src.Summary() {
		t.Errorf("round trip changed topology:\n%s\n%s", got.Summary(), src.Summary())
	}
	// Two-stage flag survives too.
	smc := SMC(20e-6, 200e-6, 1e-12)
	data2, _ := smc.ToJSON()
	got2, err := FromJSON(data2)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.TwoStage {
		t.Error("TwoStage flag lost in JSON")
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := FromJSON([]byte("{nope")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := FromJSON([]byte(`{"Name":"x","Stages":[{"Gm":0,"A0":45},{"Gm":1e-4,"A0":45},{"Gm":1e-4,"A0":45}]}`)); err == nil {
		t.Error("invalid topology accepted")
	}
	if _, err := FromJSON([]byte(`{"Name":"x","Conns":[{"Pos":{"From":"n1","To":"out"},"Type":"warp-drive"}]}`)); err == nil {
		t.Error("unknown type name accepted")
	}
	var ct ConnType = ConnType(99)
	if _, err := json.Marshal(ct); err == nil {
		t.Error("unknown ConnType marshalled")
	}
}
