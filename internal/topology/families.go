package topology

import "sort"

// Compensation-family taxonomy. Every connection type belongs to one
// structural family from the multistage-compensation literature; the
// benchmark rubric checks a designer's claimed families against the
// actual structure, so the mapping is exported and total.
const (
	FamilyMiller      = "miller"       // plain capacitive (Miller) coupling
	FamilyNullingR    = "nulling-R"    // series/parallel RC zero control
	FamilyShuntR      = "shunt-R"      // bare resistive coupling or shunt
	FamilyFeedforward = "feedforward"  // plain transconductance fast path
	FamilyActiveZero  = "active-zero"  // gm coupled through C/R networks
	FamilyMultipath   = "multipath"    // gm in parallel with a Miller cap
	FamilyBuffered    = "buffered"     // unity-buffer-decoupled Miller
	FamilyDamping     = "damping"      // DFC block shunting a node
	FamilyAuxStage    = "aux-stage"    // full auxiliary gain stage
	FamilyCascode     = "cascode"      // current-buffer (cascode) Miller
	FamilyQFC         = "QFC"          // Q-factor-control damped coupling
)

// Family returns the compensation family of a connection type, or "" for
// ConnNone and out-of-range values.
func (t ConnType) Family() string {
	switch t {
	case ConnC:
		return FamilyMiller
	case ConnSeriesRC, ConnParallelRC:
		return FamilyNullingR
	case ConnR:
		return FamilyShuntR
	case ConnGmP, ConnGmN:
		return FamilyFeedforward
	case ConnGmPSeriesC, ConnGmNSeriesC, ConnGmPSeriesR, ConnGmNSeriesR,
		ConnGmPSeriesRC, ConnGmNSeriesRC:
		return FamilyActiveZero
	case ConnGmPParallelC, ConnGmNParallelC:
		return FamilyMultipath
	case ConnBufC, ConnBufR, ConnBufRC:
		return FamilyBuffered
	case ConnDFCP, ConnDFCN:
		return FamilyDamping
	case ConnStageP, ConnStageN:
		return FamilyAuxStage
	case ConnCascodeC:
		return FamilyCascode
	case ConnQFCP, ConnQFCN:
		return FamilyQFC
	}
	return ""
}

// CompFamilies returns the sorted, de-duplicated compensation families
// present in the topology's connection set. An uncompensated skeleton
// returns an empty slice.
func (t *Topology) CompFamilies() []string {
	seen := map[string]bool{}
	for _, c := range t.Conns {
		if f := c.Type.Family(); f != "" && !seen[f] {
			seen[f] = true
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
