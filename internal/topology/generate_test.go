package topology

import (
	"bytes"
	"errors"
	"testing"

	"artisan/internal/measure"
	"artisan/internal/mna"
)

// checkInvariants asserts the three generator guarantees on one
// topology: it validates, it round-trips through JSON byte-identically,
// and its elaboration compiles and solves on the sparse MNA path.
func checkInvariants(t *testing.T, topo *Topology, label string) {
	t.Helper()
	if err := topo.Validate(); err != nil {
		t.Fatalf("%s: invalid topology: %v", label, err)
	}
	blob, err := topo.ToJSON()
	if err != nil {
		t.Fatalf("%s: ToJSON: %v", label, err)
	}
	back, err := FromJSON(blob)
	if err != nil {
		t.Fatalf("%s: FromJSON: %v", label, err)
	}
	blob2, err := back.ToJSON()
	if err != nil {
		t.Fatalf("%s: re-ToJSON: %v", label, err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("%s: JSON round-trip not byte-identical:\n%s\nvs\n%s", label, blob, blob2)
	}
	nl, err := topo.Elaborate(DefaultEnv())
	if err != nil {
		t.Fatalf("%s: elaborate: %v", label, err)
	}
	circ, err := mna.Compile(nl)
	if err != nil {
		t.Fatalf("%s: MNA compile: %v", label, err)
	}
	if _, err := circ.VoltageAt("out", mna.Omega(1e3)); err != nil {
		t.Fatalf("%s: MNA solve: %v", label, err)
	}
}

// TestSamplerPropertySweep: across 1000 seeds, Random() and a chain of
// Mutate() steps always satisfy the generator invariants.
func TestSamplerPropertySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-seed property sweep")
	}
	for seed := int64(0); seed < 1000; seed++ {
		s := NewSampler(seed)
		topo := s.Random()
		checkInvariants(t, topo, "Random")
		m := s.Mutate(topo)
		m = s.Mutate(m)
		checkInvariants(t, m, "Mutate")
	}
}

// TestGeneratorPropertySweep: across 1000 seeds the constrained random
// generator keeps its guarantees — every draw validates, round-trips,
// and measures on the sparse path — while actually covering the design
// space: all stage depths in [2,4] and at least six distinct
// compensation families.
func TestGeneratorPropertySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-seed property sweep")
	}
	stageSeen := map[int]bool{}
	famSeen := map[string]bool{}
	for seed := int64(0); seed < 1000; seed++ {
		g := NewGenerator(seed)
		topo, nl, err := g.Netlist()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkInvariants(t, topo, "Generator")
		if _, err := measure.Analyze(nl, "out"); err != nil {
			t.Fatalf("seed %d: unmeasurable: %v", seed, err)
		}
		n := topo.NumStages()
		if n < MinStageCount || n > MaxStageCount {
			t.Fatalf("seed %d: %d stages outside [%d,%d]", seed, n, MinStageCount, MaxStageCount)
		}
		stageSeen[n] = true
		for _, f := range topo.CompFamilies() {
			famSeen[f] = true
		}
	}
	for n := MinStageCount; n <= MaxStageCount; n++ {
		if !stageSeen[n] {
			t.Errorf("1000 draws never produced a %d-stage topology", n)
		}
	}
	if len(famSeen) < 6 {
		t.Errorf("1000 draws covered %d compensation families %v; want >= 6", len(famSeen), famSeen)
	}
}

// TestGeneratorSeedReproducible: the same seed always yields the same
// topology (and therefore netlist), different seeds diverge.
func TestGeneratorSeedReproducible(t *testing.T) {
	a, nlA, err := NewGenerator(99).Netlist()
	if err != nil {
		t.Fatal(err)
	}
	b, nlB, err := NewGenerator(99).Netlist()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.ToJSON()
	jb, _ := b.ToJSON()
	if !bytes.Equal(ja, jb) || nlA.String() != nlB.String() {
		t.Fatal("same seed produced different draws")
	}
	c, _, err := NewGenerator(100).Netlist()
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := c.ToJSON()
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical draws")
	}
}

// TestValidateTypedErrors: every rejection path wraps ErrInvalid, so
// callers can distinguish malformed topologies from infrastructure
// failures with errors.Is.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"no stages", Topology{Name: "x"}},
		{"too deep", Topology{Name: "x", Stages: make([]Stage, MaxStageCount+1)}},
		{"dead stage", Topology{Name: "x", Stages: []Stage{{Gm: 0, A0: 100}, {Gm: 1e-3, A0: 45}}}},
		{"two-stage flag on 3 stages", Topology{Name: "x", TwoStage: true,
			Stages: []Stage{{Gm: 1e-3, A0: 160}, {Gm: 1e-3, A0: 45}, {Gm: 1e-3, A0: 45}}}},
		{"position beyond depth", Topology{Name: "x",
			Stages: []Stage{{Gm: 1e-3, A0: 160}, {Gm: 1e-3, A0: 45}},
			Conns: []Connection{{Pos: Position{From: "n2", To: "out"}, Type: ConnC, C: 1e-12}}}},
	}
	for _, tc := range cases {
		err := tc.topo.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", tc.name, err)
		}
	}
	if err := (&Topology{Name: "ok", TwoStage: true,
		Stages: []Stage{{Gm: 1e-3, A0: 160}, {Gm: 1e-3, A0: 45}},
	}).Validate(); err != nil {
		t.Errorf("minimal two-stage rejected: %v", err)
	}
}

// TestLegalPositionsNesting: the legacy 3-stage position list is exactly
// LegalPositionsN(3), and position sets nest as depth grows (so a
// shallow topology is always valid in a deeper skeleton's terms).
func TestLegalPositionsNesting(t *testing.T) {
	legacy := LegalPositions()
	n3 := LegalPositionsN(3)
	if len(legacy) != len(n3) {
		t.Fatalf("LegalPositionsN(3) has %d positions, legacy %d", len(n3), len(legacy))
	}
	for i := range legacy {
		if legacy[i] != n3[i] {
			t.Fatalf("position %d: %v vs legacy %v", i, n3[i], legacy[i])
		}
	}
	for n := MinStageCount; n < MaxStageCount; n++ {
		inner := LegalPositionsN(n)
		outer := map[Position]bool{}
		for _, p := range LegalPositionsN(n + 1) {
			outer[p] = true
		}
		for _, p := range inner {
			if !outer[p] {
				t.Errorf("position %v legal at depth %d but not %d", p, n, n+1)
			}
		}
	}
}
