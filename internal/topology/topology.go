package topology

import (
	"fmt"
	"math"
	"strings"

	"artisan/internal/netlist"
)

// Stage is one skeleton transconductance stage. The polarity sequence of
// the skeleton is fixed (+, +, −) so that both nested Miller loops are
// negative feedback loops. A0 is the stage's intrinsic DC gain, which
// sets its lumped output resistance Ro = A0/gm (a cascode stage has a
// higher A0 than a simple common-source stage).
type Stage struct {
	Gm float64 // transconductance, S
	A0 float64 // intrinsic voltage gain (gm·Ro)
}

// DeviceModel couples behavioral parameters to physical cost: parasitic
// capacitance grows with transconductance through an effective transit
// frequency, so faster stages load their nodes harder.
type DeviceModel struct {
	FT   float64 // effective transit frequency, Hz
	CMin float64 // minimum node parasitic, F
}

// DefaultDeviceModel matches a mature 180 nm-class process.
func DefaultDeviceModel() DeviceModel { return DeviceModel{FT: 1e9, CMin: 5e-15} }

// Cp returns the parasitic capacitance of a stage output.
func (m DeviceModel) Cp(gm float64) float64 {
	return gm/(2*math.Pi*m.FT) + m.CMin
}

// DefaultStageA0 are the intrinsic gains used when a caller doesn't
// override them: a current-mirror (cascoded) input stage and two
// common-source stages.
var DefaultStageA0 = [3]float64{160, 45, 45}

// DefaultA0 returns the default intrinsic gain of stage i (0-based) in
// any skeleton depth: a cascoded input stage, common-source elsewhere.
func DefaultA0(i int) float64 {
	if i == 0 {
		return DefaultStageA0[0]
	}
	return DefaultStageA0[1]
}

// Connection is one tunable connection instance: a position, a type, and
// the element values the type uses (unused fields are ignored).
type Connection struct {
	Pos  Position
	Type ConnType
	Gm   float64 // S
	R    float64 // Ω
	C    float64 // F
}

// Validate checks the connection's type/position legality and
// parameters against the deepest (four-stage) skeleton; Topology.Validate
// additionally restricts positions to the owning skeleton's depth. Every
// failure wraps ErrInvalid.
func (c Connection) Validate() error {
	if c.Type == ConnNone {
		return nil
	}
	if c.Type < 0 || int(c.Type) >= NumConnTypes {
		return invalidf("unknown connection type %d at %v", int(c.Type), c.Pos)
	}
	legalPos := false
	for _, p := range legalPositions(MaxStageCount) {
		if p == c.Pos {
			legalPos = true
			break
		}
	}
	if !legalPos {
		return invalidf("illegal position %v", c.Pos)
	}
	if !legalAt(c.Type, c.Pos) {
		return invalidf("type %v not allowed at %v", c.Type, c.Pos)
	}
	if c.Type.HasGm() && c.Gm <= 0 {
		return invalidf("%v at %v needs Gm > 0", c.Type, c.Pos)
	}
	if c.Type.HasC() && c.C <= 0 {
		return invalidf("%v at %v needs C > 0", c.Type, c.Pos)
	}
	if c.Type.HasR() && c.R <= 0 {
		return invalidf("%v at %v needs R > 0", c.Type, c.Pos)
	}
	return nil
}

// Topology is a complete opamp candidate: named architecture, skeleton
// stage parameters, and the tunable connections. The paper focuses on
// three-stage opamps (§2.2) but notes the approach "can be easily
// extended to support other opamp topologies"; the skeleton depth is
// len(Stages), anywhere in [MinStageCount, MaxStageCount]: the signal
// path is in → n1 → … → out with the last stage inverting, so every
// Miller loop closes as negative feedback. TwoStage is the legacy marker
// of the two-stage skeleton; when set, len(Stages) must be 2.
type Topology struct {
	Name     string
	TwoStage bool `json:",omitempty"`
	Stages   []Stage
	Conns    []Connection
}

// NumStages returns the skeleton depth.
func (t *Topology) NumStages() int { return len(t.Stages) }

// activeStages returns the slice of stages actually instantiated.
func (t *Topology) activeStages() []Stage { return t.Stages }

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	c := *t
	c.Stages = append([]Stage(nil), t.Stages...)
	c.Conns = append([]Connection(nil), t.Conns...)
	return &c
}

// legalFor reports whether pos exists in an n-stage skeleton.
func legalFor(pos Position, n int) bool {
	for _, p := range legalPositions(n) {
		if p == pos {
			return true
		}
	}
	return false
}

// Validate checks the stage count, stage parameters, and every
// connection (including that each position exists at this skeleton
// depth). Every failure wraps ErrInvalid.
func (t *Topology) Validate() error {
	n := t.NumStages()
	if n < MinStageCount || n > MaxStageCount {
		return invalidf("skeleton needs %d-%d stages, got %d", MinStageCount, MaxStageCount, n)
	}
	if t.TwoStage && n != 2 {
		return invalidf("TwoStage skeleton must have exactly 2 stages, got %d", n)
	}
	for i, s := range t.activeStages() {
		if !(s.Gm > 0) {
			return invalidf("stage %d has non-positive gm %g", i+1, s.Gm)
		}
		if !(s.A0 > 1) {
			return invalidf("stage %d has implausible A0 %g", i+1, s.A0)
		}
	}
	seen := map[Position]bool{}
	for _, c := range t.Conns {
		if err := c.Validate(); err != nil {
			return err
		}
		if c.Type == ConnNone {
			continue
		}
		if !legalFor(c.Pos, n) {
			return invalidf("%d-stage skeleton has no position %v", n, c.Pos)
		}
		if seen[c.Pos] {
			return invalidf("duplicate connection at %v", c.Pos)
		}
		seen[c.Pos] = true
	}
	return nil
}

// ConnAt returns the connection occupying pos, or nil.
func (t *Topology) ConnAt(pos Position) *Connection {
	for i := range t.Conns {
		if t.Conns[i].Pos == pos && t.Conns[i].Type != ConnNone {
			return &t.Conns[i]
		}
	}
	return nil
}

// SetConn installs (or replaces) the connection at c.Pos.
func (t *Topology) SetConn(c Connection) {
	for i := range t.Conns {
		if t.Conns[i].Pos == c.Pos {
			t.Conns[i] = c
			return
		}
	}
	t.Conns = append(t.Conns, c)
}

// RemoveConn clears any connection at pos; it reports whether one existed.
func (t *Topology) RemoveConn(pos Position) bool {
	for i := range t.Conns {
		if t.Conns[i].Pos == pos && t.Conns[i].Type != ConnNone {
			t.Conns = append(t.Conns[:i], t.Conns[i+1:]...)
			return true
		}
	}
	return false
}

// Env is the operating environment a topology elaborates into.
type Env struct {
	CL  float64 // load capacitance, F
	RL  float64 // load resistance, Ω
	Dev DeviceModel
}

// DefaultEnv returns the paper's conditions: RL = 1 MΩ, CL = 10 pF.
func DefaultEnv() Env {
	return Env{CL: 10e-12, RL: 1e6, Dev: DefaultDeviceModel()}
}

// Elaborate lowers the topology to a behavioral netlist: the skeleton of
// Fig. 1(b) (VCCS stages with lumped Ro/Cp), each connection expanded into
// primitive devices, and the load. The AC excitation source "Vin" drives
// node "in"; the opamp output is node "out".
func (t *Topology) Elaborate(env Env) (*netlist.Netlist, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if env.CL <= 0 || env.RL <= 0 {
		return nil, fmt.Errorf("topology: bad environment CL=%g RL=%g", env.CL, env.RL)
	}
	nl := netlist.New(t.Name)
	nl.AddV("Vin", "in", "0", 1)

	path := skeletonNodes(t.NumStages())
	stageNodes := make([][2]string, t.NumStages())
	for i := range stageNodes {
		stageNodes[i] = [2]string{path[i], path[i+1]}
	}
	last := len(stageNodes) - 1
	for i, s := range t.activeStages() {
		in, out := stageNodes[i][0], stageNodes[i][1]
		name := fmt.Sprintf("Gm%d", i+1)
		if i == last {
			// The output stage is inverting: it sinks current from its
			// output, closing the Miller loops as negative feedback.
			nl.AddG(name, out, "0", in, "0", s.Gm)
		} else {
			nl.AddG(name, "0", out, in, "0", s.Gm)
		}
		nl.AddR(fmt.Sprintf("Ro%d", i+1), out, "0", s.A0/s.Gm)
		nl.AddC(fmt.Sprintf("Cp%d", i+1), out, "0", env.Dev.Cp(s.Gm))
	}

	for i, c := range t.Conns {
		if c.Type == ConnNone {
			continue
		}
		if err := elaborateConn(nl, c, i, env.Dev); err != nil {
			return nil, err
		}
	}

	nl.AddR("RL", "out", "0", env.RL)
	nl.AddC("CL", "out", "0", env.CL)
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("topology: elaborated netlist invalid: %w", err)
	}
	return nl, nil
}

// connGmA0 is the intrinsic gain assumed for connection transconductors.
const connGmA0 = 45.0

// elaborateConn expands one connection into devices. Auxiliary nodes are
// named x<i>a, x<i>b; device names carry the connection index.
func elaborateConn(nl *netlist.Netlist, c Connection, i int, dev DeviceModel) error {
	a, b := c.Pos.From, c.Pos.To
	xa := fmt.Sprintf("x%da", i)
	xb := fmt.Sprintf("x%db", i)
	id := func(prefix string) string { return fmt.Sprintf("%s_c%d", prefix, i) }

	// gmOut places a transconductor from node src driving node dst with
	// the connection's polarity.
	gmOut := func(src, dst string) {
		if c.Type.Inverting() {
			nl.AddG(id("Gf"), dst, "0", src, "0", c.Gm)
		} else {
			nl.AddG(id("Gf"), "0", dst, src, "0", c.Gm)
		}
	}

	switch c.Type {
	case ConnR:
		nl.AddR(id("Rc"), a, b, c.R)
	case ConnC:
		nl.AddC(id("Cc"), a, b, c.C)
	case ConnSeriesRC:
		nl.AddR(id("Rc"), a, xa, c.R)
		nl.AddC(id("Cc"), xa, b, c.C)
	case ConnParallelRC:
		nl.AddR(id("Rc"), a, b, c.R)
		nl.AddC(id("Cc"), a, b, c.C)
	case ConnGmP, ConnGmN:
		gmOut(a, b)
	case ConnGmPSeriesC, ConnGmNSeriesC:
		gmOut(a, xa)
		nl.AddR(id("Rg"), xa, "0", connGmA0/c.Gm)
		nl.AddC(id("Cc"), xa, b, c.C)
	case ConnGmPSeriesR, ConnGmNSeriesR:
		gmOut(a, xa)
		nl.AddR(id("Rg"), xa, "0", connGmA0/c.Gm)
		nl.AddR(id("Rc"), xa, b, c.R)
	case ConnGmPSeriesRC, ConnGmNSeriesRC:
		gmOut(a, xa)
		nl.AddR(id("Rg"), xa, "0", connGmA0/c.Gm)
		nl.AddR(id("Rc"), xa, xb, c.R)
		nl.AddC(id("Cc"), xb, b, c.C)
	case ConnGmPParallelC, ConnGmNParallelC:
		gmOut(a, b)
		nl.AddC(id("Cc"), a, b, c.C)
	case ConnBufC:
		nl.AddE(id("Eb"), xa, "0", a, "0", 1)
		nl.AddC(id("Cc"), xa, b, c.C)
	case ConnBufR:
		nl.AddE(id("Eb"), xa, "0", a, "0", 1)
		nl.AddR(id("Rc"), xa, b, c.R)
	case ConnBufRC:
		nl.AddE(id("Eb"), xa, "0", a, "0", 1)
		nl.AddR(id("Rc"), xa, xb, c.R)
		nl.AddC(id("Cc"), xb, b, c.C)
	case ConnDFCP, ConnDFCN:
		// Damping-factor-control block shunting node a: gain stage Gm
		// sensing xa and feeding a, with feedback capacitor C from a to
		// xa and the stage's own output resistance at xa.
		if c.Type == ConnDFCP {
			nl.AddG(id("Gf"), a, "0", xa, "0", c.Gm)
		} else {
			nl.AddG(id("Gf"), "0", a, xa, "0", c.Gm)
		}
		nl.AddR(id("Rg"), xa, "0", connGmA0/c.Gm)
		nl.AddC(id("Cc"), a, xa, c.C)
	case ConnStageP, ConnStageN:
		gmOut(a, b)
		nl.AddR(id("Rg"), b, "0", connGmA0/c.Gm)
		nl.AddC(id("Cg"), b, "0", dev.Cp(c.Gm))
	case ConnCascodeC:
		// Current-buffer compensation: C into a common-gate relay.
		nl.AddC(id("Cc"), a, xa, c.C)
		nl.AddR(id("Rg"), xa, "0", 1/c.Gm)
		nl.AddG(id("Gf"), "0", b, xa, "0", c.Gm)
	case ConnQFCP, ConnQFCN:
		gmOut(a, xa)
		nl.AddR(id("Rg"), xa, "0", connGmA0/c.Gm)
		nl.AddC(id("Cc"), xa, b, c.C)
		nl.AddR(id("Rc"), xa, b, c.R)
	default:
		return fmt.Errorf("topology: unhandled connection type %v", c.Type)
	}
	return nil
}

// Summary renders the topology compactly for logs and transcripts.
func (t *Topology) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: gm=[", t.Name)
	for i, s := range t.activeStages() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.3g", s.Gm)
	}
	b.WriteByte(']')
	for _, c := range t.Conns {
		if c.Type == ConnNone {
			continue
		}
		fmt.Fprintf(&b, " %s@%s", c.Type, c.Pos)
	}
	return b.String()
}
