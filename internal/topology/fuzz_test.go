package topology

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFromJSON: the JSON decoder must never panic, must reject every
// invalid graph with an error wrapping ErrInvalid, and must accept only
// topologies that validate and re-serialize stably. Seeds cover the
// generator's own output (the accept path) alongside hand-mutated
// invalid graphs; the checked-in corpus under
// testdata/fuzz/FuzzFromJSON extends both sets.
func FuzzFromJSON(f *testing.F) {
	// Generator outputs: real accepted payloads at each stage depth.
	for seed := int64(0); seed < 8; seed++ {
		topo, err := NewGenerator(seed).Topology()
		if err != nil {
			f.Fatal(err)
		}
		blob, err := topo.ToJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	// Library entries, including the legacy fixed-3-stage wire form.
	for _, topo := range []*Topology{
		NMC(4e-4, 2e-5, 8e-3, 1e-12, 2e-12),
		DFCFC(4e-4, 2e-5, 8e-3, 1e-12, 2e-4, 1e-12, 8e-3),
		SMC(4e-4, 8e-3, 2e-12),
	} {
		if blob, err := topo.ToJSON(); err == nil {
			f.Add(blob)
		}
	}
	// Hand-mutated invalid graphs and malformed payloads.
	for _, s := range []string{
		``,
		`{`,
		`null`,
		`[]`,
		`{"Name":"x"}`,
		`{"Name":"x","Stages":[]}`,
		`{"Name":"x","Stages":[{"Gm":0.001,"A0":160}]}`,
		`{"Name":"x","Stages":[{"Gm":-1,"A0":160},{"Gm":0.001,"A0":45}]}`,
		`{"Name":"x","Stages":[{"Gm":1e308,"A0":1e308},{"Gm":0.001,"A0":45}]}`,
		`{"Name":"x","TwoStage":true,"Stages":[{"Gm":0.001,"A0":160},{"Gm":0.001,"A0":45},{"Gm":0.001,"A0":45}]}`,
		`{"Name":"x","Stages":[{"Gm":0.001,"A0":160},{"Gm":0.001,"A0":45}],` +
			`"Conns":[{"Pos":{"From":"n2","To":"out"},"Type":"C","C":1e-12}]}`,
		`{"Name":"x","Stages":[{"Gm":0.001,"A0":160},{"Gm":0.001,"A0":45}],` +
			`"Conns":[{"Pos":{"From":"n1","To":"out"},"Type":"warp","C":1e-12}]}`,
		`{"Name":"x","Stages":[{"Gm":0.001,"A0":160},{"Gm":0.001,"A0":45}],` +
			`"Conns":[{"Pos":{"From":"n1","To":"out"},"Type":"C","C":1e-12},` +
			`{"Pos":{"From":"n1","To":"out"},"Type":"C","C":2e-12}]}`,
		`{"Name":"x","Stages":[{"Gm":"NaN","A0":160},{"Gm":0.001,"A0":45}]}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		topo, err := FromJSON(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("rejection does not wrap ErrInvalid: %v", err)
			}
			return
		}
		if verr := topo.Validate(); verr != nil {
			t.Fatalf("FromJSON accepted an invalid topology: %v", verr)
		}
		blob, err := topo.ToJSON()
		if err != nil {
			t.Fatalf("accepted topology does not re-serialize: %v", err)
		}
		back, err := FromJSON(blob)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		blob2, err := back.ToJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", blob, blob2)
		}
	})
}
