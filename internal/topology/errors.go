package topology

import (
	"errors"
	"fmt"
)

// ErrInvalid is the sentinel wrapped by every structural validation
// failure of this package — illegal positions, bad parameters, stage
// count out of range, malformed or unknown JSON. Callers that need to
// distinguish "this graph is invalid" from infrastructure errors test
// with errors.Is(err, ErrInvalid).
var ErrInvalid = errors.New("invalid topology")

// invalidf builds a validation error carrying the ErrInvalid sentinel.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("topology: "+format+": %w", append(args, ErrInvalid)...)
}

// isInvalid reports whether err already carries the sentinel (e.g. a
// ConnType unmarshal failure surfacing through encoding/json).
func isInvalid(err error) bool { return errors.Is(err, ErrInvalid) }
