package topology

import (
	"encoding/json"
	"fmt"
)

// JSON serialization: topologies interchange as structured JSON (used by
// the HTTP API and dataset dumps). Connection types marshal by their
// mnemonic name rather than their integer value, so stored topologies
// survive reorderings of the type alphabet.

// MarshalJSON implements json.Marshaler.
func (t ConnType) MarshalJSON() ([]byte, error) {
	if t < 0 || int(t) >= NumConnTypes {
		return nil, fmt.Errorf("topology: cannot marshal unknown ConnType %d", int(t))
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *ConnType) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return invalidf("connection type: %v", err)
	}
	for i := 0; i < NumConnTypes; i++ {
		if ConnType(i).String() == name {
			*t = ConnType(i)
			return nil
		}
	}
	return invalidf("unknown connection type %q", name)
}

// ToJSON serializes the topology (indented).
func (t *Topology) ToJSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// FromJSON deserializes and validates a topology. Malformed JSON and
// structurally invalid graphs are both rejected with an error wrapping
// ErrInvalid; the input never panics the decoder.
func FromJSON(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		if isInvalid(err) {
			return nil, err
		}
		return nil, invalidf("%v", err)
	}
	// Legacy wire form: the skeleton was a fixed 3-element array with
	// TwoStage marking the third element unused and zeroed. Trim trailing
	// zero stages so those payloads load as today's variable-depth model.
	for len(t.Stages) > MinStageCount && t.Stages[len(t.Stages)-1] == (Stage{}) {
		t.Stages = t.Stages[:len(t.Stages)-1]
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
