package mna

import (
	"fmt"
	"math"
	"math/cmplx"

	"artisan/internal/netlist"
)

// Noise analysis: output noise power spectral density by superposition of
// thermal sources. Every resistor contributes a 4kT/R current source in
// parallel; every transconductor contributes 4kTγ·gm of channel noise at
// its output. At each frequency one LU factorization serves all sources,
// each of which needs a single extra solve.

// Boltzmann constant (J/K).
const kB = 1.380649e-23

// NoiseOpts configures the analysis.
type NoiseOpts struct {
	TempK float64 // device temperature (default 300 K)
	Gamma float64 // channel-noise factor for VCCS devices (default 2/3)
}

// NoisePoint is the output noise density at one frequency.
type NoisePoint struct {
	Freq float64 // Hz
	Svv  float64 // output noise PSD, V²/Hz
}

// noiseSource is one independent thermal generator: a current source of
// PSD si (A²/Hz) between two matrix nodes.
type noiseSource struct {
	a, b int // injection nodes (-1 = ground)
	si   float64
}

func (c *Circuit) noiseSources(opts NoiseOpts) []noiseSource {
	var out []noiseSource
	idx := func(node string) int {
		if node == netlist.Ground {
			return -1
		}
		return c.nodeIdx[node]
	}
	for _, d := range c.nl.Devices {
		switch d.Kind {
		case netlist.Resistor:
			out = append(out, noiseSource{
				a: idx(d.Nodes[0]), b: idx(d.Nodes[1]),
				si: 4 * kB * opts.TempK / d.Value,
			})
		case netlist.VCCS:
			out = append(out, noiseSource{
				a: idx(d.Nodes[0]), b: idx(d.Nodes[1]),
				si: 4 * kB * opts.TempK * opts.Gamma * math.Abs(d.Value),
			})
		}
	}
	return out
}

// NoiseAt computes the output noise PSD at node out for one frequency.
func (c *Circuit) NoiseAt(out string, freqHz float64, opts NoiseOpts) (float64, error) {
	pts, err := c.NoiseSweep(out, freqHz, freqHz, 1, opts)
	if err != nil {
		return 0, err
	}
	return pts[0].Svv, nil
}

// NoiseSweep computes the output noise PSD over a log frequency sweep.
func (c *Circuit) NoiseSweep(out string, fStart, fStop float64, perDecade int, opts NoiseOpts) ([]NoisePoint, error) {
	if opts.TempK <= 0 {
		opts.TempK = 300
	}
	if opts.Gamma <= 0 {
		opts.Gamma = 2.0 / 3.0
	}
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	if fStart <= 0 || fStop < fStart || perDecade < 1 {
		return nil, fmt.Errorf("mna: bad noise sweep [%g, %g] @%d", fStart, fStop, perDecade)
	}
	sources := c.noiseSources(opts)
	if len(sources) == 0 {
		return nil, fmt.Errorf("mna: circuit has no noise sources")
	}

	var freqs []float64
	if fStart == fStop {
		freqs = []float64{fStart}
	} else {
		freqs = logFreqs(fStart, fStop, perDecade)
	}

	// One workspace serves the whole sweep: each frequency is a single
	// in-place factorization (sparse refactor on large systems), each
	// source one allocation-free solve into workspace-owned scratch.
	w := c.workspace()
	defer c.release(w)
	pts := make([]NoisePoint, 0, len(freqs))
	rhs, x := w.noiseBuffers()
	for _, f := range freqs {
		if err := w.prepareAt(Omega(f)); err != nil {
			return nil, fmt.Errorf("mna: singular at %g Hz", f)
		}
		total := 0.0
		for _, s := range sources {
			for i := range rhs {
				rhs[i] = 0
			}
			// Unit current from a to b through the generator injects −1
			// at a and +1 at b (matches the ISource stamp convention).
			if s.a >= 0 {
				rhs[s.a] -= 1
			}
			if s.b >= 0 {
				rhs[s.b] += 1
			}
			if err := w.solvePrepared(x, rhs); err != nil {
				return nil, err
			}
			h := cmplx.Abs(x[j])
			total += h * h * s.si
		}
		pts = append(pts, NoisePoint{Freq: f, Svv: total})
	}
	return pts, nil
}

// IntegratedNoise integrates the output noise PSD over [fStart, fStop]
// using trapezoidal integration on the swept points, returning the RMS
// output noise voltage in V.
func (c *Circuit) IntegratedNoise(out string, fStart, fStop float64, opts NoiseOpts) (float64, error) {
	pts, err := c.NoiseSweep(out, fStart, fStop, 40, opts)
	if err != nil {
		return 0, err
	}
	power := 0.0
	for i := 1; i < len(pts); i++ {
		df := pts[i].Freq - pts[i-1].Freq
		power += 0.5 * (pts[i].Svv + pts[i-1].Svv) * df
	}
	return math.Sqrt(power), nil
}
