package mna

import (
	"fmt"
	"math"
	"sync"

	"artisan/internal/netlist"
)

// Circuit is a netlist compiled for MNA analysis: a node index, the
// frequency-independent conductance matrix G, the susceptance matrix C
// (A(s) = G + sC), and the excitation vector b. A compiled Circuit is
// immutable, so all its analysis entry points are safe for concurrent
// use: per-solve scratch lives in pooled Workspaces.
type Circuit struct {
	nl       *netlist.Netlist
	nodeIdx  map[string]int // non-ground nodes → 0..nn-1
	nodes    []string       // inverse of nodeIdx
	nn       int            // node unknowns
	nb       int            // branch-current unknowns (V and E elements)
	G, C     *Matrix
	b        []complex128
	branches map[string]int // source name → branch row

	wsPool sync.Pool // *Workspace scratch for the pooled entry points

	// Memoized polynomial-degree probes for the root finder: the degree
	// of det(G+sC) (and of each output's Cramer numerator) is a property
	// of the compiled circuit, so six high-radius determinant evaluations
	// per Poles/Zeros call collapse to one probe per Circuit.
	degMu    sync.Mutex
	polesDeg int
	polesOK  bool
	zerosDeg map[string]int
}

// Compile validates and compiles a netlist. Exactly the devices supported
// by the netlist package are accepted.
func Compile(nl *netlist.Netlist) (*Circuit, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("mna: %w", err)
	}
	c := &Circuit{nl: nl, nodeIdx: map[string]int{}, branches: map[string]int{}}
	for _, nd := range nl.NonGroundNodes() {
		c.nodeIdx[nd] = c.nn
		c.nodes = append(c.nodes, nd)
		c.nn++
	}
	for _, d := range nl.Devices {
		if d.Kind == netlist.VSource || d.Kind == netlist.VCVS {
			c.branches[d.Name] = c.nn + c.nb
			c.nb++
		}
	}
	n := c.nn + c.nb
	if n == 0 {
		return nil, fmt.Errorf("mna: empty circuit")
	}
	c.G = NewMatrix(n)
	c.C = NewMatrix(n)
	c.b = make([]complex128, n)

	// idx returns the matrix row/column of a node, or -1 for ground.
	idx := func(node string) int {
		if node == netlist.Ground {
			return -1
		}
		return c.nodeIdx[node]
	}
	stamp2 := func(m *Matrix, a, bn int, g complex128) {
		if a >= 0 {
			m.Add(a, a, g)
		}
		if bn >= 0 {
			m.Add(bn, bn, g)
		}
		if a >= 0 && bn >= 0 {
			m.Add(a, bn, -g)
			m.Add(bn, a, -g)
		}
	}
	stampVCCS := func(m *Matrix, op, om, cp, cm int, gm complex128) {
		add := func(r, cl int, v complex128) {
			if r >= 0 && cl >= 0 {
				m.Add(r, cl, v)
			}
		}
		add(op, cp, gm)
		add(op, cm, -gm)
		add(om, cp, -gm)
		add(om, cm, gm)
	}

	for _, d := range nl.Devices {
		switch d.Kind {
		case netlist.Resistor:
			stamp2(c.G, idx(d.Nodes[0]), idx(d.Nodes[1]), complex(1/d.Value, 0))
		case netlist.Capacitor:
			stamp2(c.C, idx(d.Nodes[0]), idx(d.Nodes[1]), complex(d.Value, 0))
		case netlist.VCCS:
			stampVCCS(c.G, idx(d.Nodes[0]), idx(d.Nodes[1]), idx(d.Nodes[2]), idx(d.Nodes[3]), complex(d.Value, 0))
		case netlist.VSource:
			k := c.branches[d.Name]
			p, m := idx(d.Nodes[0]), idx(d.Nodes[1])
			if p >= 0 {
				c.G.Add(p, k, 1)
				c.G.Add(k, p, 1)
			}
			if m >= 0 {
				c.G.Add(m, k, -1)
				c.G.Add(k, m, -1)
			}
			c.b[k] = complex(d.Value, 0)
		case netlist.VCVS:
			k := c.branches[d.Name]
			p, m := idx(d.Nodes[0]), idx(d.Nodes[1])
			cp, cm := idx(d.Nodes[2]), idx(d.Nodes[3])
			if p >= 0 {
				c.G.Add(p, k, 1)
				c.G.Add(k, p, 1)
			}
			if m >= 0 {
				c.G.Add(m, k, -1)
				c.G.Add(k, m, -1)
			}
			if cp >= 0 {
				c.G.Add(k, cp, -complex(d.Value, 0))
			}
			if cm >= 0 {
				c.G.Add(k, cm, complex(d.Value, 0))
			}
		case netlist.ISource:
			p, m := idx(d.Nodes[0]), idx(d.Nodes[1])
			// Current d.Value flows from node p through the source into
			// node m: it leaves the external circuit at p.
			if p >= 0 {
				c.b[p] -= complex(d.Value, 0)
			}
			if m >= 0 {
				c.b[m] += complex(d.Value, 0)
			}
		default:
			return nil, fmt.Errorf("mna: unsupported device kind %v", d.Kind)
		}
	}
	return c, nil
}

// Size returns the total number of MNA unknowns.
func (c *Circuit) Size() int { return c.nn + c.nb }

// NodeNames returns non-ground node names in matrix order.
func (c *Circuit) NodeNames() []string { return append([]string(nil), c.nodes...) }

// NodeIndex returns the matrix index of a node name.
func (c *Circuit) NodeIndex(node string) (int, error) {
	if node == netlist.Ground {
		return -1, fmt.Errorf("mna: ground node has no index")
	}
	i, ok := c.nodeIdx[node]
	if !ok {
		return -1, fmt.Errorf("mna: unknown node %q", node)
	}
	return i, nil
}

// system assembles A(s) = G + sC into a fresh matrix (transient analysis
// keeps factored copies alive, so it cannot use the pooled scratch).
func (c *Circuit) system(s complex128) *Matrix {
	a := NewMatrix(c.Size())
	a.AddScaled(c.G, c.C, s)
	return a
}

// SolveAt solves the MNA system at complex frequency s and returns the
// full unknown vector (node voltages then branch currents). The returned
// slice is caller-owned; the one allocation per call is that result. Use
// a Workspace directly for the fully allocation-free variant.
func (c *Circuit) SolveAt(s complex128) ([]complex128, error) {
	w := c.workspace()
	defer c.release(w)
	x, err := w.SolveAt(s)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), x...), nil
}

// VoltageAt solves at s and returns the voltage of one node.
func (c *Circuit) VoltageAt(node string, s complex128) (complex128, error) {
	if node == netlist.Ground {
		return 0, nil
	}
	i, err := c.NodeIndex(node)
	if err != nil {
		return 0, err
	}
	w := c.workspace()
	defer c.release(w)
	x, err := w.SolveAt(s)
	if err != nil {
		return 0, err
	}
	return x[i], nil
}

// DetAt returns det(G + sC) in scaled form, allocation-free in steady
// state.
func (c *Circuit) DetAt(s complex128) ScaledDet {
	w := c.workspace()
	defer c.release(w)
	return w.DetAt(s)
}

// NumerDetAt returns the Cramer numerator determinant for the given output
// node: det of A(s) with the output column replaced by the excitation b.
// Zeros of the transfer function V(out)/excitation are the roots of this
// polynomial in s.
func (c *Circuit) NumerDetAt(node string, s complex128) (ScaledDet, error) {
	w := c.workspace()
	defer c.release(w)
	return w.NumerDetAt(node, s)
}

// Omega converts a frequency in Hz to the Laplace variable jω.
func Omega(freqHz float64) complex128 {
	return complex(0, 2*math.Pi*freqHz)
}
