package mna

import (
	"fmt"
	"math"
	"sync"

	"artisan/internal/netlist"
)

// Circuit is a netlist compiled for MNA analysis: a node index, the
// frequency-independent conductance matrix G, the susceptance matrix C
// (A(s) = G + sC), and the excitation vector b. A compiled Circuit is
// immutable, so all its analysis entry points are safe for concurrent
// use: per-solve scratch lives in pooled Workspaces.
//
// The exception is a circuit produced by Restamped, which is mutable by
// construction (its values are rewritten per evaluation point) and is
// owned by a single goroutine at a time.
type Circuit struct {
	nl       *netlist.Netlist
	nodeIdx  map[string]int // non-ground nodes → 0..nn-1
	nodes    []string       // inverse of nodeIdx
	nn       int            // node unknowns
	nb       int            // branch-current unknowns (V and E elements)
	G, C     *Matrix
	b        []complex128
	branches map[string]int // source name → branch row

	wsPool sync.Pool // *Workspace scratch for the pooled entry points

	// Memoized polynomial-degree probes for the root finder (see degMemo).
	// Shared between a circuit and its Restamped variants: the degree of
	// det(G+sC) is a structural property, unchanged by value perturbation.
	deg *degMemo

	// Lazily built structural CSC pattern (union of the G and C stamps)
	// plus pattern-aligned complex value arrays for the sparse AC path.
	// The pattern is shared with Restamped variants; the value arrays are
	// per-circuit and invalidated by restamp.
	patMu    sync.Mutex
	pat      *Pattern
	spG, spC []complex128
	spOK     bool

	tranPool sync.Pool // *tranScratch for Transient
}

// stampSink receives the MNA stamps of a device walk. Indices passed to G,
// C, and B are always valid (ground rows are filtered by the caller).
type stampSink interface {
	G(r, c int, v complex128)
	C(r, c int, v complex128)
	B(r int, v complex128)
}

// matrixSink accumulates stamps into dense matrices — the Compile/restamp
// backend.
type matrixSink struct {
	g, c *Matrix
	b    []complex128
}

func (m *matrixSink) G(r, c int, v complex128) { m.g.Add(r, c, v) }
func (m *matrixSink) C(r, c int, v complex128) { m.c.Add(r, c, v) }
func (m *matrixSink) B(r int, v complex128)    { m.b[r] += v }

// patternSink records the structural (row, col) positions of the A-matrix
// stamps, ignoring values and the excitation.
type patternSink struct {
	rows, cols []int
}

func (p *patternSink) entry(r, c int) {
	p.rows = append(p.rows, r)
	p.cols = append(p.cols, c)
}
func (p *patternSink) G(r, c int, v complex128) { p.entry(r, c) }
func (p *patternSink) C(r, c int, v complex128) { p.entry(r, c) }
func (p *patternSink) B(r int, v complex128)    {}

// stampInto walks the devices once and emits every stamp to the sink.
// scale, when non-nil, multiplies device i's value by scale[i] — the
// Monte-Carlo / corner re-stamping hook. It is the single source of truth
// for the MNA stamps: Compile, restamp, and the sparsity pattern all run
// through it.
func (c *Circuit) stampInto(scale []float64, sink stampSink) error {
	idx := func(node string) int {
		if node == netlist.Ground {
			return -1
		}
		return c.nodeIdx[node]
	}
	stamp2 := func(set func(r, cl int, v complex128), a, bn int, g complex128) {
		if a >= 0 {
			set(a, a, g)
		}
		if bn >= 0 {
			set(bn, bn, g)
		}
		if a >= 0 && bn >= 0 {
			set(a, bn, -g)
			set(bn, a, -g)
		}
	}
	stampVCCS := func(op, om, cp, cm int, gm complex128) {
		add := func(r, cl int, v complex128) {
			if r >= 0 && cl >= 0 {
				sink.G(r, cl, v)
			}
		}
		add(op, cp, gm)
		add(op, cm, -gm)
		add(om, cp, -gm)
		add(om, cm, gm)
	}

	for di, d := range c.nl.Devices {
		val := d.Value
		if scale != nil {
			val *= scale[di]
		}
		switch d.Kind {
		case netlist.Resistor:
			stamp2(sink.G, idx(d.Nodes[0]), idx(d.Nodes[1]), complex(1/val, 0))
		case netlist.Capacitor:
			stamp2(sink.C, idx(d.Nodes[0]), idx(d.Nodes[1]), complex(val, 0))
		case netlist.VCCS:
			stampVCCS(idx(d.Nodes[0]), idx(d.Nodes[1]), idx(d.Nodes[2]), idx(d.Nodes[3]), complex(val, 0))
		case netlist.VSource:
			k := c.branches[d.Name]
			p, m := idx(d.Nodes[0]), idx(d.Nodes[1])
			if p >= 0 {
				sink.G(p, k, 1)
				sink.G(k, p, 1)
			}
			if m >= 0 {
				sink.G(m, k, -1)
				sink.G(k, m, -1)
			}
			sink.B(k, complex(val, 0))
		case netlist.VCVS:
			k := c.branches[d.Name]
			p, m := idx(d.Nodes[0]), idx(d.Nodes[1])
			cp, cm := idx(d.Nodes[2]), idx(d.Nodes[3])
			if p >= 0 {
				sink.G(p, k, 1)
				sink.G(k, p, 1)
			}
			if m >= 0 {
				sink.G(m, k, -1)
				sink.G(k, m, -1)
			}
			if cp >= 0 {
				sink.G(k, cp, -complex(val, 0))
			}
			if cm >= 0 {
				sink.G(k, cm, complex(val, 0))
			}
		case netlist.ISource:
			p, m := idx(d.Nodes[0]), idx(d.Nodes[1])
			// Current val flows from node p through the source into node m:
			// it leaves the external circuit at p.
			if p >= 0 {
				sink.B(p, -complex(val, 0))
			}
			if m >= 0 {
				sink.B(m, complex(val, 0))
			}
		default:
			return fmt.Errorf("mna: unsupported device kind %v", d.Kind)
		}
	}
	return nil
}

// Compile validates and compiles a netlist. Exactly the devices supported
// by the netlist package are accepted.
func Compile(nl *netlist.Netlist) (*Circuit, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("mna: %w", err)
	}
	c := &Circuit{nl: nl, nodeIdx: map[string]int{}, branches: map[string]int{}, deg: &degMemo{}}
	for _, nd := range nl.NonGroundNodes() {
		c.nodeIdx[nd] = c.nn
		c.nodes = append(c.nodes, nd)
		c.nn++
	}
	for _, d := range nl.Devices {
		if d.Kind == netlist.VSource || d.Kind == netlist.VCVS {
			c.branches[d.Name] = c.nn + c.nb
			c.nb++
		}
	}
	n := c.nn + c.nb
	if n == 0 {
		return nil, fmt.Errorf("mna: empty circuit")
	}
	c.G = NewMatrix(n)
	c.C = NewMatrix(n)
	c.b = make([]complex128, n)
	if err := c.stampInto(nil, &matrixSink{g: c.G, c: c.C, b: c.b}); err != nil {
		return nil, err
	}
	return c, nil
}

// Restamped re-stamps the circuit's topology with per-device value scale
// factors (scale[i] multiplies nl.Devices[i].Value) into a reusable target
// circuit, allocating one when into is nil. The result shares the node
// index, branch map, structural pattern, and degree memo with the base —
// only matrix values are rebuilt — which is what makes Monte-Carlo and
// corner sampling cheap: the symbolic work survives across samples.
//
// A restamped circuit is NOT immutable: it is owned by the goroutine that
// restamps it, and in-flight Workspaces on it become stale after the next
// Restamped call. Its netlist pointer still reports the base (unscaled)
// device values.
func (c *Circuit) Restamped(scale []float64, into *Circuit) (*Circuit, error) {
	if len(scale) != len(c.nl.Devices) {
		return nil, fmt.Errorf("mna: restamp scale length %d, want %d devices", len(scale), len(c.nl.Devices))
	}
	if into == nil {
		n := c.Size()
		into = &Circuit{
			nl: c.nl, nodeIdx: c.nodeIdx, nodes: c.nodes, nn: c.nn, nb: c.nb,
			branches: c.branches, deg: c.deg, pat: c.pattern(),
			G: NewMatrix(n), C: NewMatrix(n), b: make([]complex128, n),
		}
	}
	for i := range into.G.data {
		into.G.data[i] = 0
		into.C.data[i] = 0
	}
	for i := range into.b {
		into.b[i] = 0
	}
	into.patMu.Lock()
	into.spOK = false
	into.patMu.Unlock()
	if err := into.stampInto(scale, &matrixSink{g: into.G, c: into.C, b: into.b}); err != nil {
		return nil, err
	}
	return into, nil
}

// pattern returns the structural CSC pattern of A = G + sC (union of the
// G and C stamps), building it on first use. The pattern is immutable and
// shared with Restamped variants.
func (c *Circuit) pattern() *Pattern {
	c.patMu.Lock()
	defer c.patMu.Unlock()
	if c.pat == nil {
		ps := &patternSink{}
		// stampInto cannot fail here: Compile already walked these devices.
		_ = c.stampInto(nil, ps)
		// Diagonal entries keep the pattern factorizable even when a node's
		// only stamps are off-diagonal couplings that later cancel.
		for i := 0; i < c.Size(); i++ {
			ps.entry(i, i)
		}
		c.pat = NewPattern(c.Size(), ps.rows, ps.cols)
	}
	return c.pat
}

// sparseVals returns the pattern plus pattern-aligned complex G and C
// value arrays, gathering them from the dense matrices on first use (and
// again after a restamp). The returned slices are read-only shared state:
// concurrent solvers may read them, but only the owner of a restamped
// circuit may trigger a re-gather.
func (c *Circuit) sparseVals() (*Pattern, []complex128, []complex128) {
	pat := c.pattern()
	c.patMu.Lock()
	defer c.patMu.Unlock()
	if !c.spOK {
		if c.spG == nil {
			c.spG = make([]complex128, pat.NNZ())
			c.spC = make([]complex128, pat.NNZ())
		}
		for col := 0; col < pat.N; col++ {
			for i := pat.ColPtr[col]; i < pat.ColPtr[col+1]; i++ {
				c.spG[i] = c.G.At(pat.Rows[i], col)
				c.spC[i] = c.C.At(pat.Rows[i], col)
			}
		}
		c.spOK = true
	}
	return pat, c.spG, c.spC
}

// sparseACMinN is the system size at which the AC path switches from the
// dense in-place LU to the sparse refactoring engine. Small behavioral
// opamps (a handful of unknowns) stay dense — the dense kernel's tight
// loops win below this point — while ladder-scale netlists go sparse.
const sparseACMinN = 24

func (c *Circuit) useSparseAC() bool { return c.Size() >= sparseACMinN }

// Size returns the total number of MNA unknowns.
func (c *Circuit) Size() int { return c.nn + c.nb }

// NodeNames returns non-ground node names in matrix order.
func (c *Circuit) NodeNames() []string { return append([]string(nil), c.nodes...) }

// NodeIndex returns the matrix index of a node name.
func (c *Circuit) NodeIndex(node string) (int, error) {
	if node == netlist.Ground {
		return -1, fmt.Errorf("mna: ground node has no index")
	}
	i, ok := c.nodeIdx[node]
	if !ok {
		return -1, fmt.Errorf("mna: unknown node %q", node)
	}
	return i, nil
}

// SolveAt solves the MNA system at complex frequency s and returns the
// full unknown vector (node voltages then branch currents). The returned
// slice is caller-owned; the one allocation per call is that result. Use
// a Workspace directly for the fully allocation-free variant.
func (c *Circuit) SolveAt(s complex128) ([]complex128, error) {
	w := c.workspace()
	defer c.release(w)
	x, err := w.SolveAt(s)
	if err != nil {
		return nil, err
	}
	return append([]complex128(nil), x...), nil
}

// VoltageAt solves at s and returns the voltage of one node.
func (c *Circuit) VoltageAt(node string, s complex128) (complex128, error) {
	if node == netlist.Ground {
		return 0, nil
	}
	i, err := c.NodeIndex(node)
	if err != nil {
		return 0, err
	}
	w := c.workspace()
	defer c.release(w)
	x, err := w.SolveAt(s)
	if err != nil {
		return 0, err
	}
	return x[i], nil
}

// DetAt returns det(G + sC) in scaled form, allocation-free in steady
// state.
func (c *Circuit) DetAt(s complex128) ScaledDet {
	w := c.workspace()
	defer c.release(w)
	return w.DetAt(s)
}

// NumerDetAt returns the Cramer numerator determinant for the given output
// node: det of A(s) with the output column replaced by the excitation b.
// Zeros of the transfer function V(out)/excitation are the roots of this
// polynomial in s.
func (c *Circuit) NumerDetAt(node string, s complex128) (ScaledDet, error) {
	w := c.workspace()
	defer c.release(w)
	return w.NumerDetAt(node, s)
}

// Omega converts a frequency in Hz to the Laplace variable jω.
func Omega(freqHz float64) complex128 {
	return complex(0, 2*math.Pi*freqHz)
}
