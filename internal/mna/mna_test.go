package mna

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"artisan/internal/netlist"
	"artisan/internal/units"
)

func compileOK(t *testing.T, nl *netlist.Netlist) *Circuit {
	t.Helper()
	c, err := Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestVoltageDivider(t *testing.T) {
	nl := netlist.New("divider")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", 1e3)
	nl.AddR("R2", "out", "0", 1e3)
	c := compileOK(t, nl)
	for _, f := range []float64{1, 1e3, 1e6} {
		h, err := c.TFAt("out", f)
		if err != nil {
			t.Fatal(err)
		}
		if !units.ApproxEqual(cmplx.Abs(h), 0.5, 1e-9) {
			t.Errorf("divider at %g Hz: |H| = %g, want 0.5", f, cmplx.Abs(h))
		}
	}
}

func TestRCLowPass(t *testing.T) {
	R, C := 1e3, 1e-6
	nl := netlist.New("rc lowpass")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", R)
	nl.AddC("C1", "out", "0", C)
	c := compileOK(t, nl)

	fc := 1 / (2 * math.Pi * R * C) // ≈ 159.15 Hz
	h, err := c.TFAt("out", fc)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(cmplx.Abs(h), 1/math.Sqrt2, 1e-6) {
		t.Errorf("|H(fc)| = %g, want 0.7071", cmplx.Abs(h))
	}
	phase := units.Deg(cmplx.Phase(h))
	if !units.ApproxEqual(phase, -45, 1e-3) {
		t.Errorf("phase(fc) = %g°, want -45°", phase)
	}

	poles, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 1 {
		t.Fatalf("poles = %v, want exactly one", poles)
	}
	want := -1 / (R * C)
	if !units.ApproxEqual(real(poles[0]), want, 1e-6) || math.Abs(imag(poles[0])) > 1 {
		t.Errorf("pole = %v, want %g", poles[0], want)
	}
}

func TestVCCSGainStage(t *testing.T) {
	nl := netlist.New("gm stage")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "0", "out", "in", "0", 1e-3) // injects into out: +gain
	nl.AddR("Ro", "out", "0", 10e3)
	c := compileOK(t, nl)
	h, err := c.TFAt("out", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(real(h), 10, 1e-9) {
		t.Errorf("VCCS gain = %v, want +10", h)
	}

	// Inverting orientation sinks current from out.
	nl2 := netlist.New("inverting gm stage")
	nl2.AddV("V1", "in", "0", 1)
	nl2.AddG("G1", "out", "0", "in", "0", 1e-3)
	nl2.AddR("Ro", "out", "0", 10e3)
	c2 := compileOK(t, nl2)
	h2, err := c2.TFAt("out", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(real(h2), -10, 1e-9) {
		t.Errorf("inverting VCCS gain = %v, want -10", h2)
	}
}

func TestVCVS(t *testing.T) {
	nl := netlist.New("vcvs")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("Rin", "in", "0", 1e6) // keep in driven even without source row order issues
	nl.AddE("E1", "out", "0", "in", "0", -4)
	nl.AddR("Rl", "out", "0", 1e3)
	c := compileOK(t, nl)
	h, err := c.TFAt("out", 100)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(real(h), -4, 1e-9) {
		t.Errorf("VCVS out = %v, want -4", h)
	}
}

func TestISourceOrientation(t *testing.T) {
	// 1 mA from ground into node x through 1 kΩ: V(x) = +1 V when the
	// source's n- terminal is x (current enters x).
	nl := netlist.New("isource")
	nl.AddI("I1", "0", "x", 1e-3)
	nl.AddR("R1", "x", "0", 1e3)
	c := compileOK(t, nl)
	v, err := c.VoltageAt("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(real(v), 1, 1e-9) {
		t.Errorf("V(x) = %v, want 1", v)
	}
}

// Miller feedforward creates the classic RHP zero at gm/Cf.
func TestMillerRHPZero(t *testing.T) {
	gm, R, Cf, Cl := 1e-3, 10e3, 1e-12, 5e-12
	nl := netlist.New("miller zero")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "out", "0", "in", "0", gm) // inverting
	nl.AddR("Ro", "out", "0", R)
	nl.AddC("Cf", "in", "out", Cf)
	nl.AddC("Cl", "out", "0", Cl)
	c := compileOK(t, nl)

	zeros, err := c.Zeros("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(zeros) != 1 {
		t.Fatalf("zeros = %v, want one", zeros)
	}
	want := gm / Cf // +1e9 rad/s, RHP
	if !units.ApproxEqual(real(zeros[0]), want, 1e-5) {
		t.Errorf("zero = %v, want %g (RHP)", zeros[0], want)
	}

	poles, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 1 {
		t.Fatalf("poles = %v, want one (caps share the out node through Vin pin)", poles)
	}
	wantP := -1 / (R * (Cf + Cl))
	if !units.ApproxEqual(real(poles[0]), wantP, 1e-5) {
		t.Errorf("pole = %v, want %g", poles[0], wantP)
	}
}

func TestTwoStageRCPoles(t *testing.T) {
	// Two isolated RC sections separated by a unity buffer (VCVS):
	// exact poles at -1/(R1C1) and -1/(R2C2).
	nl := netlist.New("two rc")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "a", 1e3)
	nl.AddC("C1", "a", "0", 1e-9)
	nl.AddE("E1", "b", "0", "a", "0", 1)
	nl.AddR("R2", "b", "out", 10e3)
	nl.AddC("C2", "out", "0", 1e-9)
	c := compileOK(t, nl)
	poles, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 2 {
		t.Fatalf("poles = %v, want two", poles)
	}
	want := []float64{-1e6, -1e5} // sorted by magnitude: 1e5 first
	if !units.ApproxEqual(real(poles[0]), want[1], 1e-6) {
		t.Errorf("pole0 = %v, want %g", poles[0], want[1])
	}
	if !units.ApproxEqual(real(poles[1]), want[0], 1e-6) {
		t.Errorf("pole1 = %v, want %g", poles[1], want[0])
	}
}

// buildNMC is the same behavioral NMC opamp as in the netlist tests.
func buildNMC() *netlist.Netlist {
	n := netlist.New("nmc three-stage opamp")
	n.AddV("Vin", "in", "0", 1)
	n.AddG("Gm1", "0", "n1", "in", "0", 25.13e-6)
	n.AddR("Ro1", "n1", "0", 4e6)
	n.AddC("Cp1", "n1", "0", 4e-15)
	n.AddG("Gm2", "0", "n2", "n1", "0", 37.7e-6)
	n.AddR("Ro2", "n2", "0", 1.2e6)
	n.AddC("Cp2", "n2", "0", 6e-15)
	n.AddG("Gm3", "out", "0", "n2", "0", 251.3e-6)
	n.AddR("Ro3", "out", "0", 180e3)
	n.AddC("Cp3", "out", "0", 40e-15)
	n.AddC("Cm1", "n1", "out", 4e-12)
	n.AddC("Cm2", "n2", "out", 3e-12)
	n.AddR("RL", "out", "0", 1e6)
	n.AddC("CL", "out", "0", 10e-12)
	return n
}

func TestNMCDCGain(t *testing.T) {
	c := compileOK(t, buildNMC())
	h, err := c.TFAt("out", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ro3eff := 180e3 * 1e6 / (180e3 + 1e6)
	want := 25.13e-6 * 4e6 * 37.7e-6 * 1.2e6 * 251.3e-6 * ro3eff
	if !units.ApproxEqual(cmplx.Abs(h), want, 1e-3) {
		t.Errorf("|H(DC)| = %g, want %g", cmplx.Abs(h), want)
	}
	// Overall inverting: (+)(+)(−).
	if real(h) > 0 {
		t.Errorf("H(DC) = %v, want negative real part", h)
	}
}

func TestNMCUnityGainAndPhase(t *testing.T) {
	c := compileOK(t, buildNMC())
	// GBW should be near gm1/(2π·Cm1) = 1 MHz.
	pts, err := c.Sweep("out", 0.1, 1e9, 40)
	if err != nil {
		t.Fatal(err)
	}
	var fu float64
	for i := 1; i < len(pts); i++ {
		if cmplx.Abs(pts[i-1].H) >= 1 && cmplx.Abs(pts[i].H) < 1 {
			// log interpolation
			a0, a1 := math.Log(cmplx.Abs(pts[i-1].H)), math.Log(cmplx.Abs(pts[i].H))
			t0, t1 := math.Log(pts[i-1].Freq), math.Log(pts[i].Freq)
			fu = math.Exp(t0 + (0-a0)*(t1-t0)/(a1-a0))
			break
		}
	}
	if fu < 0.7e6 || fu > 1.4e6 {
		t.Errorf("unity-gain frequency = %g, want ≈ 1 MHz", fu)
	}
}

func TestNMCPoles(t *testing.T) {
	c := compileOK(t, buildNMC())
	poles, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	// All six capacitors span only three independent nodes (n1, n2, out),
	// so rank(C) = 3 and NMC is exactly a third-order system.
	if len(poles) != 3 {
		t.Fatalf("got %d poles (%v), want 3", len(poles), poles)
	}
	// Non-dominant poles should be a complex pair (Butterworth-style NMC).
	if imag(poles[1]) == 0 || cmplx.Abs(poles[1]-cmplx.Conj(poles[2])) > 1e-6*cmplx.Abs(poles[1]) {
		t.Errorf("non-dominant poles %v, %v: want a conjugate pair", poles[1], poles[2])
	}
	// Dominant pole ≈ −1/(Cm1·A2·A3·Ro1) where A2=gm2Ro2, A3=gm3(Ro3||RL).
	ro3eff := 180e3 * 1e6 / (180e3 + 1e6)
	a2, a3 := 37.7e-6*1.2e6, 251.3e-6*ro3eff
	wantP1 := -1 / (4e-12 * a2 * a3 * 4e6)
	if !units.ApproxEqual(real(poles[0]), wantP1, 0.05) {
		t.Errorf("dominant pole = %v, want ≈ %g rad/s", poles[0], wantP1)
	}
	for _, p := range poles {
		if real(p) >= 0 {
			t.Errorf("pole %v in RHP; NMC design should be stable", p)
		}
	}
}

// Reconstruct |H| from poles/zeros/DC gain and compare with the AC sweep —
// a strong cross-check that both paths agree.
func TestPoleZeroSweepConsistency(t *testing.T) {
	c := compileOK(t, buildNMC())
	poles, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	zeros, err := c.Zeros("out")
	if err != nil {
		t.Fatal(err)
	}
	h0, err := c.TFAt("out", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	k := cmplx.Abs(h0)
	for _, f := range []float64{10, 1e3, 1e5, 1e6, 1e7} {
		s := Omega(f)
		mag := k
		for _, z := range zeros {
			mag *= cmplx.Abs(1 - s/z)
		}
		for _, p := range poles {
			mag /= cmplx.Abs(1 - s/p)
		}
		h, err := c.TFAt("out", f)
		if err != nil {
			t.Fatal(err)
		}
		if !units.ApproxEqual(mag, cmplx.Abs(h), 0.02) {
			t.Errorf("at %g Hz: reconstructed %g vs swept %g", f, mag, cmplx.Abs(h))
		}
	}
}

func TestSweepValidation(t *testing.T) {
	c := compileOK(t, buildNMC())
	if _, err := c.Sweep("out", -1, 10, 10); err == nil {
		t.Error("negative fStart accepted")
	}
	if _, err := c.Sweep("out", 10, 1, 10); err == nil {
		t.Error("reversed range accepted")
	}
	if _, err := c.Sweep("out", 1, 10, 0); err == nil {
		t.Error("zero perDecade accepted")
	}
	if _, err := c.Sweep("nonode", 1, 10, 10); err == nil {
		t.Error("unknown node accepted")
	}
	pts, err := c.Sweep("out", 1, 1e3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Freq != 1 || pts[len(pts)-1].Freq != 1e3 {
		t.Errorf("sweep endpoints %g..%g, want 1..1000", pts[0].Freq, pts[len(pts)-1].Freq)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := netlist.New("floating")
	bad.AddR("R1", "a", "b", 1e3)
	if _, err := Compile(bad); err == nil {
		t.Error("floating netlist accepted")
	}
	if _, err := Compile(netlist.New("empty")); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestNodeIndex(t *testing.T) {
	c := compileOK(t, buildNMC())
	if _, err := c.NodeIndex("0"); err == nil {
		t.Error("ground should have no index")
	}
	if _, err := c.NodeIndex("zz"); err == nil {
		t.Error("unknown node should error")
	}
	if i, err := c.NodeIndex("out"); err != nil || i < 0 {
		t.Errorf("NodeIndex(out) = %d, %v", i, err)
	}
	if got := len(c.NodeNames()); got != 4 {
		t.Errorf("NodeNames len = %d, want 4", got)
	}
}

// Property: LU solve yields a small residual on random well-conditioned
// complex systems.
func TestLUSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
			a.Add(i, i, complex(float64(n), 0)) // diagonal dominance
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := Factor(a).Solve(b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			r := b[i]
			for j := 0; j < n; j++ {
				r -= a.At(i, j) * x[j]
			}
			if cmplx.Abs(r) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScaledDet(t *testing.T) {
	// Determinant of a diagonal matrix with extreme entries must not
	// overflow or underflow.
	n := 40
	a := NewMatrix(n)
	for i := 0; i < n; i++ {
		v := 1e12
		if i%2 == 0 {
			v = 1e-12
		}
		a.Set(i, i, complex(v, 0))
	}
	d := Det(a)
	if d.Zero() {
		t.Fatal("det is zero")
	}
	// det = 1 exactly (1e12^20 * 1e-12^20)
	if math.Abs(d.Log10Mag()) > 1e-6 {
		t.Errorf("log10|det| = %g, want 0", d.Log10Mag())
	}
}

func TestSingularMatrix(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	lu := Factor(a)
	if lu.OK() {
		t.Error("singular matrix reported OK")
	}
	if _, err := lu.Solve([]complex128{1, 1}); err == nil {
		t.Error("Solve on singular matrix should fail")
	}
	if !lu.Det().Zero() {
		t.Errorf("det = %v, want zero", lu.Det())
	}
}

func TestRatioAndLogMag(t *testing.T) {
	d := ScaledDet{Mant: complex(0.5, 0), Exp: 10}
	e := ScaledDet{Mant: complex(0.25, 0), Exp: 8}
	if r := d.Ratio(e); !units.ApproxEqual(real(r), 8, 1e-12) {
		t.Errorf("ratio = %v, want 8", r)
	}
	if !cmplx.IsInf(d.Ratio(ScaledDet{})) {
		t.Error("ratio by zero should be Inf")
	}
}
