package mna

import "fmt"

// Workspace holds the reusable scratch for repeated solves on one Circuit:
// the assembled A(s) matrix (which the LU factors in place), the pivot
// array, and an unknown-vector buffer. Every per-frequency operation on a
// compiled circuit — AC sweep points, determinant evaluations for the
// root finder, noise solves — is one assemble + factor in this scratch,
// so steady-state use performs zero allocations.
//
// For systems of sparseACMinN unknowns or more, the solve path switches
// to the sparse engine: the structural pattern is analyzed once (shared
// circuit-wide), the first solve runs a pivoting Factor, and every later
// frequency point is a numeric Refactor replaying the recorded pivot
// sequence. Determinant evaluations stay on the dense kernel, which the
// root finder's scaled-determinant bookkeeping is built around.
//
// Ownership and goroutine-safety rules (see DESIGN.md):
//
//   - A Workspace is bound to the Circuit that created it and is NOT safe
//     for concurrent use: each goroutine must own its own Workspace (the
//     parallel sweep gives each worker one).
//   - Slices returned by SolveAt point into the workspace and are valid
//     only until the next call on the same Workspace; callers that need
//     the values longer must copy them.
//   - The Circuit itself stays immutable after Compile, so any number of
//     Workspaces may solve the same Circuit concurrently. Restamped
//     circuits are the exception: their owner must not restamp while a
//     solve is in flight.
type Workspace struct {
	c  *Circuit
	a  *Matrix // assembled A(s); overwritten by the in-place LU
	lu LU
	x  []complex128 // solution buffer returned by SolveAt

	// Sparse AC path scratch (used when c.useSparseAC()).
	spVals []complex128
	spLU   SparseLU[complex128]
	spInit bool

	// Noise-analysis scratch (rhs + per-source solution).
	rhs []complex128
	xn  []complex128
}

// NewWorkspace allocates a solver workspace for the circuit. The pooled
// entry points (Circuit.SolveAt, DetAt, …) manage workspaces internally;
// allocate one explicitly for tight loops that want the zero-allocation
// guarantee and single-goroutine ownership.
func (c *Circuit) NewWorkspace() *Workspace {
	n := c.Size()
	w := &Workspace{c: c, a: NewMatrix(n), x: make([]complex128, n)}
	w.lu.pivot = make([]int, n)
	w.lu.idiag = make([]complex128, n)
	return w
}

// factorAt assembles A(s) = G + sC into the dense scratch matrix and
// factors it in place (the determinant path is always dense).
func (w *Workspace) factorAt(s complex128) *LU {
	w.a.AddScaled(w.c.G, w.c.C, s)
	w.lu.FactorInto(w.a)
	return &w.lu
}

// prepareAt factors A(s) in whichever engine the circuit size selects,
// leaving the workspace ready for solvePrepared calls at that frequency.
// Noise analysis uses this split to factor once and back-solve once per
// source.
func (w *Workspace) prepareAt(s complex128) error {
	if w.c.useSparseAC() {
		pat, gv, cv := w.c.sparseVals()
		if !w.spInit {
			w.spLU.Analyze(pat, absCmplx)
			w.spVals = make([]complex128, pat.NNZ())
			w.spInit = true
		}
		for i := range w.spVals {
			w.spVals[i] = gv[i] + s*cv[i]
		}
		if !w.spLU.Refactor(w.spVals) {
			return fmt.Errorf("mna: singular matrix")
		}
		return nil
	}
	w.factorAt(s)
	if !w.lu.OK() {
		return fmt.Errorf("mna: singular matrix")
	}
	return nil
}

// solvePrepared back-substitutes one right-hand side through the
// factorization left by the last successful prepareAt. x and b may alias.
func (w *Workspace) solvePrepared(x, b []complex128) error {
	if w.c.useSparseAC() {
		return w.spLU.SolveInto(x, b)
	}
	return w.lu.SolveInto(x, b)
}

// SolveAt solves the MNA system at complex frequency s. The returned
// slice (node voltages then branch currents) is workspace-owned: it is
// overwritten by the next call.
func (w *Workspace) SolveAt(s complex128) ([]complex128, error) {
	if err := w.prepareAt(s); err != nil {
		return nil, fmt.Errorf("mna: solve at s=%v: %w", s, err)
	}
	if err := w.solvePrepared(w.x, w.c.b); err != nil {
		return nil, fmt.Errorf("mna: solve at s=%v: %w", s, err)
	}
	return w.x, nil
}

// DetAt returns det(G + sC) in scaled form, allocation-free.
func (w *Workspace) DetAt(s complex128) ScaledDet {
	return w.factorAt(s).Det()
}

// NumerDetAt returns the Cramer numerator determinant for the given
// output node (A(s) with the output column replaced by the excitation b),
// allocation-free.
func (w *Workspace) NumerDetAt(node string, s complex128) (ScaledDet, error) {
	j, err := w.c.NodeIndex(node)
	if err != nil {
		return ScaledDet{}, err
	}
	w.a.AddScaled(w.c.G, w.c.C, s)
	for i := 0; i < w.a.N; i++ {
		w.a.Set(i, j, w.c.b[i])
	}
	w.lu.FactorInto(w.a)
	return w.lu.Det(), nil
}

// noiseBuffers returns the workspace-owned rhs and solution scratch for
// noise analysis, allocating on first use.
func (w *Workspace) noiseBuffers() (rhs, x []complex128) {
	if w.rhs == nil {
		n := w.c.Size()
		w.rhs = make([]complex128, n)
		w.xn = make([]complex128, n)
	}
	return w.rhs, w.xn
}

// workspace checks a Workspace out of the circuit's pool (allocating one
// only on first use per P).
func (c *Circuit) workspace() *Workspace {
	if w, ok := c.wsPool.Get().(*Workspace); ok {
		return w
	}
	return c.NewWorkspace()
}

// release returns a workspace to the pool.
func (c *Circuit) release(w *Workspace) { c.wsPool.Put(w) }
