package mna

import "fmt"

// Workspace holds the reusable scratch for repeated solves on one Circuit:
// the assembled A(s) matrix (which the LU factors in place), the pivot
// array, and an unknown-vector buffer. Every per-frequency operation on a
// compiled circuit — AC sweep points, determinant evaluations for the
// root finder, noise solves — is one assemble + factor in this scratch,
// so steady-state use performs zero allocations.
//
// Ownership and goroutine-safety rules (see DESIGN.md):
//
//   - A Workspace is bound to the Circuit that created it and is NOT safe
//     for concurrent use: each goroutine must own its own Workspace (the
//     parallel sweep gives each worker one).
//   - Slices returned by SolveAt point into the workspace and are valid
//     only until the next call on the same Workspace; callers that need
//     the values longer must copy them.
//   - The Circuit itself stays immutable after Compile, so any number of
//     Workspaces may solve the same Circuit concurrently.
type Workspace struct {
	c  *Circuit
	a  *Matrix // assembled A(s); overwritten by the in-place LU
	lu LU
	x  []complex128 // solution buffer returned by SolveAt
}

// NewWorkspace allocates a solver workspace for the circuit. The pooled
// entry points (Circuit.SolveAt, DetAt, …) manage workspaces internally;
// allocate one explicitly for tight loops that want the zero-allocation
// guarantee and single-goroutine ownership.
func (c *Circuit) NewWorkspace() *Workspace {
	n := c.Size()
	w := &Workspace{c: c, a: NewMatrix(n), x: make([]complex128, n)}
	w.lu.pivot = make([]int, n)
	w.lu.idiag = make([]complex128, n)
	return w
}

// factorAt assembles A(s) = G + sC into the scratch matrix and factors it
// in place.
func (w *Workspace) factorAt(s complex128) *LU {
	w.a.AddScaled(w.c.G, w.c.C, s)
	w.lu.FactorInto(w.a)
	return &w.lu
}

// SolveAt solves the MNA system at complex frequency s. The returned
// slice (node voltages then branch currents) is workspace-owned: it is
// overwritten by the next call.
func (w *Workspace) SolveAt(s complex128) ([]complex128, error) {
	lu := w.factorAt(s)
	if err := lu.SolveInto(w.x, w.c.b); err != nil {
		return nil, fmt.Errorf("mna: solve at s=%v: %w", s, err)
	}
	return w.x, nil
}

// DetAt returns det(G + sC) in scaled form, allocation-free.
func (w *Workspace) DetAt(s complex128) ScaledDet {
	return w.factorAt(s).Det()
}

// NumerDetAt returns the Cramer numerator determinant for the given
// output node (A(s) with the output column replaced by the excitation b),
// allocation-free.
func (w *Workspace) NumerDetAt(node string, s complex128) (ScaledDet, error) {
	j, err := w.c.NodeIndex(node)
	if err != nil {
		return ScaledDet{}, err
	}
	w.a.AddScaled(w.c.G, w.c.C, s)
	for i := 0; i < w.a.N; i++ {
		w.a.Set(i, j, w.c.b[i])
	}
	w.lu.FactorInto(w.a)
	return w.lu.Det(), nil
}

// workspace checks a Workspace out of the circuit's pool (allocating one
// only on first use per P).
func (c *Circuit) workspace() *Workspace {
	if w, ok := c.wsPool.Get().(*Workspace); ok {
		return w
	}
	return c.NewWorkspace()
}

// release returns a workspace to the pool.
func (c *Circuit) release(w *Workspace) { c.wsPool.Put(w) }
