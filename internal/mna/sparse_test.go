package mna

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"artisan/internal/netlist"
)

// randSparseSystem builds a random diagonally-loaded sparse system with
// about `extra` off-diagonal entries, plus an MNA-style zero-diagonal
// voltage-source row/column pair to exercise pivoting off the diagonal.
func randSparseSystem(rng *rand.Rand, n, extra int) (*Pattern, []float64) {
	type entry struct{ r, c int }
	pos := map[entry]float64{}
	for i := 0; i < n-2; i++ {
		pos[entry{i, i}] = 1 + rng.Float64()*9
	}
	// Branch pair: row n-1 couples node n-2 with ±1 and a zero diagonal.
	pos[entry{n - 1, n - 2}] = 1
	pos[entry{n - 2, n - 1}] = 1
	for k := 0; k < extra; k++ {
		r, c := rng.Intn(n-1), rng.Intn(n-1)
		pos[entry{r, c}] += rng.NormFloat64()
	}
	rows, cols := make([]int, 0, len(pos)), make([]int, 0, len(pos))
	for e := range pos {
		rows = append(rows, e.r)
		cols = append(cols, e.c)
	}
	pat := NewPattern(n, rows, cols)
	vals := make([]float64, pat.NNZ())
	for e, v := range pos {
		vals[pat.Index(e.r, e.c)] = v
	}
	return pat, vals
}

func denseFromSparse(pat *Pattern, vals []float64) *Matrix {
	m := NewMatrix(pat.N)
	for c := 0; c < pat.N; c++ {
		for i := pat.ColPtr[c]; i < pat.ColPtr[c+1]; i++ {
			m.Set(pat.Rows[i], c, complex(vals[i], 0))
		}
	}
	return m
}

func TestPatternIndex(t *testing.T) {
	pat := NewPattern(3, []int{0, 2, 1, 2, 2}, []int{0, 0, 1, 2, 2})
	if pat.NNZ() != 4 { // duplicate (2,2) merged
		t.Fatalf("nnz = %d, want 4", pat.NNZ())
	}
	for _, tc := range []struct{ r, c, want int }{
		{0, 0, 0}, {2, 0, 1}, {1, 1, 2}, {2, 2, 3}, {1, 0, -1}, {0, 2, -1},
	} {
		if got := pat.Index(tc.r, tc.c); got != tc.want {
			t.Errorf("Index(%d,%d) = %d, want %d", tc.r, tc.c, got, tc.want)
		}
	}
}

func TestSparseLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(30)
		pat, vals := randSparseSystem(rng, n, 3*n)
		dense := denseFromSparse(pat, vals)
		ref, refOK := Factor(dense), true
		if !ref.OK() {
			refOK = false
		}
		var lu SparseLU[float64]
		lu.Analyze(pat, absReal)
		got := lu.Factor(vals)
		if got != refOK {
			t.Fatalf("trial %d: sparse ok=%v dense ok=%v", trial, got, refOK)
		}
		if !got {
			continue
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if err := lu.SolveInto(x, b); err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		bc := make([]complex128, n)
		for i := range b {
			bc[i] = complex(b[i], 0)
		}
		want, err := ref.Solve(bc)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-real(want[i])) > 1e-8*(1+math.Abs(real(want[i]))) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], real(want[i]))
			}
		}
	}
}

func TestSparseLURefactorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20
	pat, vals := randSparseSystem(rng, n, 60)
	var lu SparseLU[float64]
	lu.Analyze(pat, absReal)
	if !lu.Factor(vals) {
		t.Fatal("initial factor failed")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	// Perturb values repeatedly; Refactor must track the dense reference.
	vals2 := append([]float64(nil), vals...)
	for trial := 0; trial < 20; trial++ {
		for i := range vals2 {
			vals2[i] = vals[i] * (1 + 0.3*rng.NormFloat64())
		}
		if !lu.Refactor(vals2) {
			t.Fatalf("trial %d: refactor failed", trial)
		}
		if err := lu.SolveInto(x, b); err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		dense := denseFromSparse(pat, vals2)
		bc := make([]complex128, n)
		for i := range b {
			bc[i] = complex(b[i], 0)
		}
		want, err := Factor(dense).Solve(bc)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-real(want[i])) > 1e-7*(1+math.Abs(real(want[i]))) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], real(want[i]))
			}
		}
	}
}

func TestSparseLURefactorRepivots(t *testing.T) {
	// Values that invert the magnitude relationship the original pivot
	// sequence was chosen for: the replay must detect the degraded pivot
	// and transparently repivot rather than return garbage.
	pat := NewPattern(2,
		[]int{0, 1, 0, 1},
		[]int{0, 0, 1, 1})
	vals := []float64{10, 1, 1, 10}
	var lu SparseLU[float64]
	lu.Analyze(pat, absReal)
	if !lu.Factor(vals) {
		t.Fatal("factor failed")
	}
	flipped := []float64{1e-12, 5, 5, 1e-12}
	if !lu.Refactor(flipped) {
		t.Fatal("refactor failed")
	}
	x := make([]float64, 2)
	if err := lu.SolveInto(x, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	// Near-antidiagonal system: x ≈ [1, 1].
	for i, want := range []float64{1, 1} {
		if math.Abs(x[i]-want) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestSparseLUSingular(t *testing.T) {
	pat := NewPattern(3,
		[]int{0, 1, 0, 1, 2},
		[]int{0, 0, 1, 1, 2})
	// Column 2 only has its diagonal; zero it for numeric singularity.
	vals := []float64{1, 2, 3, 6, 0} // rows 0/1 proportional AND w[2,2]=0
	var lu SparseLU[float64]
	lu.Analyze(pat, absReal)
	if lu.Factor(vals) {
		t.Fatal("factor of singular matrix succeeded")
	}
	if lu.OK() {
		t.Fatal("OK() true after singular factor")
	}
	if err := lu.SolveInto(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("solve on singular factorization did not error")
	}
	// A singular Refactor attempt must also recover once values are fixed.
	vals[4] = 2
	vals[3] = 1
	if !lu.Refactor(vals) {
		t.Fatal("refactor of repaired matrix failed")
	}
}

func TestSparseLUComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 15
	pat, rv := randSparseSystem(rng, n, 40)
	vals := make([]complex128, len(rv))
	for i, v := range rv {
		vals[i] = complex(v, rng.NormFloat64())
	}
	var lu SparseLU[complex128]
	lu.Analyze(pat, absCmplx)
	if !lu.Factor(vals) {
		t.Fatal("complex factor failed")
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x := make([]complex128, n)
	if err := lu.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	dense := NewMatrix(n)
	for c := 0; c < n; c++ {
		for i := pat.ColPtr[c]; i < pat.ColPtr[c+1]; i++ {
			dense.Set(pat.Rows[i], c, vals[i])
		}
	}
	want, err := Factor(dense).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-8*(1+cmplx.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSparseLUSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pat, vals := randSparseSystem(rng, 10, 25)
	var lu SparseLU[float64]
	lu.Analyze(pat, absReal)
	if !lu.Factor(vals) {
		t.Fatal("factor failed")
	}
	b := make([]float64, 10)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 10)
	if err := lu.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	inPlace := append([]float64(nil), b...)
	if err := lu.SolveInto(inPlace, inPlace); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-inPlace[i]) > 1e-12 {
			t.Fatalf("aliased solve diverged at %d: %g vs %g", i, inPlace[i], x[i])
		}
	}
}

func TestSparseLUSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	rng := rand.New(rand.NewSource(41))
	pat, vals := randSparseSystem(rng, 25, 80)
	var lu SparseLU[float64]
	lu.Analyze(pat, absReal)
	if !lu.Factor(vals) {
		t.Fatal("factor failed")
	}
	b := make([]float64, 25)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 25)
	vals2 := append([]float64(nil), vals...)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range vals2 {
			vals2[i] = vals[i] * 1.01
		}
		if !lu.Refactor(vals2) {
			t.Fatal("refactor failed")
		}
		if err := lu.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Refactor+Solve allocates %.1f/op, want 0", allocs)
	}
}

func TestMinDegreeOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pat, _ := randSparseSystem(rng, 30, 90)
	first := minDegreeOrder(pat)
	for i := 0; i < 5; i++ {
		again := minDegreeOrder(pat)
		for k := range first {
			if first[k] != again[k] {
				t.Fatalf("ordering not deterministic at %d: %v vs %v", k, first, again)
			}
		}
	}
	seen := make([]bool, pat.N)
	for _, v := range first {
		if v < 0 || v >= pat.N || seen[v] {
			t.Fatalf("ordering is not a permutation: %v", first)
		}
		seen[v] = true
	}
}

// ladderNetlist builds a deterministic n-stage RC ladder driven by a
// voltage source — n+1 unknowns, so n >= sparseACMinN puts the AC path
// onto the sparse engine.
func ladderNetlist(stages int) *netlist.Netlist {
	nl := netlist.New(fmt.Sprintf("ladder-%d", stages))
	nl.AddV("V1", "in", "0", 1)
	prev := "in"
	for i := 0; i < stages; i++ {
		node := fmt.Sprintf("n%d", i)
		if i == stages-1 {
			node = "out"
		}
		nl.AddR(fmt.Sprintf("R%d", i), prev, node, 1e3*(1+float64(i%7)))
		nl.AddC(fmt.Sprintf("C%d", i), node, "0", 1e-12*(1+float64(i%5)))
		prev = node
	}
	return nl
}

// TestLargeLadderSparseMatchesDense cross-checks the sparse AC path
// against a dense factorization of the same stamped system at several
// frequencies.
func TestLargeLadderSparseMatchesDense(t *testing.T) {
	nl := ladderNetlist(40)
	c := compileOK(t, nl)
	if !c.useSparseAC() {
		t.Fatalf("ladder with %d unknowns should use the sparse AC path", c.Size())
	}
	a := NewMatrix(c.Size())
	var lu LU
	for _, f := range []float64{1, 1e3, 1e6, 1e9} {
		s := Omega(f)
		got, err := c.VoltageAt("out", s)
		if err != nil {
			t.Fatalf("sparse solve at %g Hz: %v", f, err)
		}
		a.AddScaled(c.G, c.C, s)
		lu.FactorInto(a)
		x, err := lu.Solve(c.b)
		if err != nil {
			t.Fatalf("dense solve at %g Hz: %v", f, err)
		}
		j, _ := c.NodeIndex("out")
		want := x[j]
		if cmplx.Abs(got-want) > 1e-9*(cmplx.Abs(want)+1e-30) {
			t.Errorf("at %g Hz: sparse %v vs dense %v", f, got, want)
		}
	}
}

// TestLargeLadderSweepParallelIdentity extends the byte-identity contract
// of SweepParallel to circuits large enough for the sparse engine.
func TestLargeLadderSweepParallelIdentity(t *testing.T) {
	c := compileOK(t, ladderNetlist(40))
	serial, err := c.SweepParallel("out", 1e-1, 1e9, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		par, err := c.SweepParallel("out", 1e-1, 1e9, 24, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers %d: %d points vs %d serial", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers %d: point %d differs: %+v vs %+v", workers, i, par[i], serial[i])
			}
		}
	}
}
