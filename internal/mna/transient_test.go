package mna

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"artisan/internal/netlist"
	"artisan/internal/units"
)

func TestTransientRCStep(t *testing.T) {
	R, C := 1e3, 1e-6 // τ = 1 ms
	nl := netlist.New("rc step")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", R)
	nl.AddC("C1", "out", "0", C)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	tau := R * C
	pts, err := c.Transient("out", TranOpts{TEnd: 5 * tau, Dt: tau / 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := 1 - math.Exp(-p.T/tau)
		if math.Abs(p.V-want) > 2e-3 {
			t.Fatalf("t=%g: v=%g, want %g", p.T, p.V, want)
		}
	}
	// Endpoint close to 1.
	if last := pts[len(pts)-1].V; math.Abs(last-0.9933) > 0.01 {
		t.Errorf("v(5τ) = %g", last)
	}
}

// Algebraic rows must not ring: a resistive divider driven by a stepped
// source holds exactly 0.5 at every timestep (this is the failure mode of
// naive trapezoidal DAE integration).
func TestTransientAlgebraicRowsExact(t *testing.T) {
	nl := netlist.New("divider step")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", 1e3)
	nl.AddR("R2", "out", "0", 1e3)
	nl.AddC("Cfar", "far", "0", 1e-12) // a capacitor elsewhere
	nl.AddR("Rfar", "out", "far", 1e6)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := c.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[1:] {
		if math.Abs(p.V-0.5) > 1e-3 {
			t.Fatalf("divider rang at t=%g: v=%g", p.T, p.V)
		}
	}
}

func TestTransientSlewLimiting(t *testing.T) {
	// Single inverting stage driving CL. Linear response to a large step
	// would start with slope gm·Vstep/CL; with saturation the slope is
	// capped at Imax/CL.
	gm, cl, imax := 1e-3, 10e-12, 5e-6
	nl := netlist.New("slew stage")
	nl.AddV("V1", "in", "0", 1) // 1 V step: deep saturation (gm·V = 1 mA ≫ 5 µA)
	nl.AddG("G1", "out", "0", "in", "0", gm)
	nl.AddR("Ro", "out", "0", 1e6)
	nl.AddC("CL", "out", "0", cl)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := c.Transient("out", TranOpts{
		TEnd: 2e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"G1": imax},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Max slope over the first microsecond ≈ Imax/CL = 0.5 V/µs (negative).
	maxSlope := 0.0
	for i := 1; i < len(pts); i++ {
		s := math.Abs(pts[i].V-pts[i-1].V) / (pts[i].T - pts[i-1].T)
		if s > maxSlope {
			maxSlope = s
		}
	}
	want := imax / cl
	if !units.ApproxEqual(maxSlope, want, 0.05) {
		t.Errorf("slew = %g V/s, want %g", maxSlope, want)
	}
	// And the linear run must be much faster initially.
	lin, err := c.Transient("out", TranOpts{TEnd: 2e-6, Dt: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	linSlope := math.Abs(lin[1].V-lin[0].V) / (lin[1].T - lin[0].T)
	if linSlope < 10*maxSlope {
		t.Errorf("linear slope %g should dwarf saturated %g", linSlope, maxSlope)
	}
}

func TestTransientMatchesACSmallSignal(t *testing.T) {
	// For a small step the saturating and linear runs agree.
	nl := netlist.New("small step")
	nl.AddV("V1", "in", "0", 1e-4)
	nl.AddG("G1", "0", "out", "in", "0", 1e-3)
	nl.AddR("Ro", "out", "0", 1e5)
	nl.AddC("CL", "out", "0", 1e-12)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := c.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := c.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"G1": 50e-6}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lin {
		if math.Abs(lin[i].V-sat[i].V) > 1e-6 {
			t.Fatalf("small-signal mismatch at %d: %g vs %g", i, lin[i].V, sat[i].V)
		}
	}
	// Final value = gm·Ro·Vstep = 10 mV.
	if f := lin[len(lin)-1].V; !units.ApproxEqual(f, 0.01, 1e-3) {
		t.Errorf("final = %g, want 0.01", f)
	}
}

func TestTransientCustomInput(t *testing.T) {
	// A ramp input into an RC: output follows with a lag.
	nl := netlist.New("ramp")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", 1e3)
	nl.AddC("C1", "out", "0", 1e-9) // τ = 1 µs
	c, _ := Compile(nl)
	ramp := func(t float64) float64 { return t / 1e-5 } // reaches 1 at 10 µs
	pts, err := c.Transient("out", TranOpts{TEnd: 1e-5, Dt: 1e-8, Input: ramp})
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state ramp lag = τ·slope = 0.1; check near the end.
	last := pts[len(pts)-1]
	want := ramp(last.T) - 0.1
	if math.Abs(last.V-want) > 5e-3 {
		t.Errorf("ramp following: v=%g, want %g", last.V, want)
	}
}

func TestTransientValidation(t *testing.T) {
	nl := netlist.New("x")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", 1e3)
	nl.AddC("C1", "out", "0", 1e-9)
	c, _ := Compile(nl)
	if _, err := c.Transient("out", TranOpts{TEnd: 0, Dt: 1e-9}); err == nil {
		t.Error("zero TEnd accepted")
	}
	if _, err := c.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-5}); err == nil {
		t.Error("dt > TEnd accepted")
	}
	if _, err := c.Transient("nope", TranOpts{TEnd: 1e-6, Dt: 1e-9}); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := c.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"R1": 1e-6}}); err == nil {
		t.Error("saturation on resistor accepted")
	}
	if _, err := c.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"Gnope": 1e-6}}); err == nil {
		t.Error("saturation on missing device accepted")
	}
	nl2 := netlist.New("y")
	nl2.AddV("V1", "in", "0", 1)
	nl2.AddG("G1", "0", "out", "in", "0", 1e-3)
	nl2.AddR("Ro", "out", "0", 1e3)
	c2, _ := Compile(nl2)
	if _, err := c2.Transient("out", TranOpts{TEnd: 1e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"G1": -1}}); err == nil {
		t.Error("negative Imax accepted")
	}
}

// Steady-state sine cross-check: driving the circuit with a sinusoid and
// measuring the settled output amplitude must reproduce |H(jω)| from the
// AC analysis — the two engines share nothing but the stamps, so this
// catches integration errors that a step test can miss.
func TestTransientSineMatchesAC(t *testing.T) {
	nl := netlist.New("sine check")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "mid", 10e3)
	nl.AddC("C1", "mid", "0", 1e-9)
	nl.AddR("R2", "mid", "out", 20e3)
	nl.AddC("C2", "out", "0", 0.5e-9)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{3e3, 15e3, 60e3} {
		h, err := c.TFAt("out", f)
		if err != nil {
			t.Fatal(err)
		}
		wantAmp := cmplx.Abs(h)
		period := 1 / f
		pts, err := c.Transient("out", TranOpts{
			TEnd: 30 * period, Dt: period / 200,
			Input: func(tt float64) float64 { return math.Sin(2 * math.Pi * f * tt) },
		})
		if err != nil {
			t.Fatal(err)
		}
		// Peak amplitude over the last five periods (transient settled).
		amp := 0.0
		tail := pts[len(pts)-5*200:]
		for _, p := range tail {
			if a := math.Abs(p.V); a > amp {
				amp = a
			}
		}
		if !units.ApproxEqual(amp, wantAmp, 0.02) {
			t.Errorf("f=%g: transient amplitude %g vs AC |H| %g", f, amp, wantAmp)
		}
	}
}

// The final transient sample must land exactly on TEnd even when the
// window is not a whole multiple of Dt: the last step is clamped, not
// overshot (settling-time measurements must not read past the requested
// window).
func TestTransientEndTimeClamped(t *testing.T) {
	R, C := 1e3, 1e-6 // τ = 1 ms
	nl := netlist.New("rc clamp")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", R)
	nl.AddC("C1", "out", "0", C)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	tau := R * C
	tEnd, dt := 1.05e-3, 1e-4 // 10.5 steps: needs one clamped half-step
	pts, err := c.Transient("out", TranOpts{TEnd: tEnd, Dt: dt})
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.T != tEnd {
		t.Errorf("final sample at t=%g, want exactly %g", last.T, tEnd)
	}
	for _, p := range pts {
		if p.T > tEnd {
			t.Errorf("sample at t=%g overshoots TEnd=%g", p.T, tEnd)
		}
	}
	if want := 11 + 1; len(pts) != want {
		t.Errorf("%d samples, want %d (10 full steps + 1 clamped + t=0)", len(pts), want)
	}
	// The clamped step must still integrate correctly.
	if want := 1 - math.Exp(-tEnd/tau); math.Abs(last.V-want) > 2e-3 {
		t.Errorf("v(TEnd) = %g, want %g", last.V, want)
	}
	// A window that IS a whole multiple of Dt must not gain a micro-step.
	pts, err = c.Transient("out", TranOpts{TEnd: 1e-3, Dt: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Errorf("divisible window: %d samples, want 11", len(pts))
	}
	if last := pts[len(pts)-1]; last.T != 1e-3 {
		t.Errorf("divisible window ends at %g, want 1e-3", last.T)
	}
}

// A singular consistent-initialization system means no valid t=0⁺ state
// exists; it must surface as an error, not silently fall through to an
// all-zero state. The circuit below has an 'out' row that vanishes from
// the linear part once its two saturating VCCS stamps are removed, so the
// init matrix (G_lin + C/δ) is singular while the Newton Jacobian (which
// re-adds the effective transconductances) would not be.
func TestTransientInitSingularSurfaced(t *testing.T) {
	nl := netlist.New("init singular")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "out", "0", "in", "0", 1e-3)
	nl.AddG("G2", "out", "0", "out", "0", 1e-4) // diode-connected load
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := c.Transient("out", TranOpts{
		TEnd: 1e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"G1": 1e-5, "G2": 1e-5},
	})
	if err == nil {
		t.Fatal("singular consistent initialization did not error")
	}
	if pts != nil {
		t.Errorf("got %d waveform points alongside the error", len(pts))
	}
	if !strings.Contains(err.Error(), "initialization") {
		t.Errorf("error %q does not identify the initialization phase", err)
	}
}

// Newton exhaustion must return the non-convergence error and no partial
// waveform.
func TestTransientNewtonNonConvergence(t *testing.T) {
	gm, cl, imax := 1e-3, 10e-12, 5e-6
	nl := netlist.New("newton budget")
	nl.AddV("V1", "in", "0", 1) // deep saturation: needs several iterations
	nl.AddG("G1", "out", "0", "in", "0", gm)
	nl.AddR("Ro", "out", "0", 1e6)
	nl.AddC("CL", "out", "0", cl)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := c.Transient("out", TranOpts{
		TEnd: 2e-6, Dt: 1e-9,
		SatLimits: map[string]float64{"G1": imax},
		MaxNewton: 1,
	})
	if err == nil {
		t.Fatal("MaxNewton=1 on a deeply saturating step converged")
	}
	if pts != nil {
		t.Errorf("got %d partial waveform points alongside the error", len(pts))
	}
	if !strings.Contains(err.Error(), "converge") {
		t.Errorf("error %q does not report non-convergence", err)
	}
}

// newtonStepApply's relative step must divide by the PRE-update iterate:
// with x=2 and a step of 1.5 the relative step is 1.5/2, not 1.5/0.5.
func TestNewtonStepApplyPreUpdateDenominator(t *testing.T) {
	x := []float64{2}
	rel := newtonStepApply(x, []float64{1.5})
	if math.Abs(x[0]-0.5) > 1e-15 {
		t.Fatalf("x after step = %g, want 0.5", x[0])
	}
	if want := 1.5 / (2 + 1e-6); math.Abs(rel-want) > 1e-12 {
		t.Errorf("rel = %g, want %g (pre-update denominator)", rel, want)
	}
	// A step that exactly cancels the component must not read as
	// converged: the iterate moved by its whole magnitude.
	x = []float64{0.25}
	if rel := newtonStepApply(x, []float64{0.25}); rel < 0.9 {
		t.Errorf("cancelling step rel = %g, want ≈1", rel)
	}
}

// satDevices rejection coverage beyond the basic validation test: VCVS
// devices, zero limits, and mixed found/missing limit sets.
func TestSatDevicesRejections(t *testing.T) {
	nl := netlist.New("satdev")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "0", "mid", "in", "0", 1e-3)
	nl.AddR("Rm", "mid", "0", 1e5)
	nl.AddE("E1", "out", "0", "mid", "0", 2)
	nl.AddR("Ro", "out", "0", 1e3)
	nl.AddC("CL", "out", "0", 1e-12)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	opts := func(lim map[string]float64) TranOpts {
		return TranOpts{TEnd: 1e-6, Dt: 1e-9, SatLimits: lim}
	}
	if _, err := c.Transient("out", opts(map[string]float64{"E1": 1e-6})); err == nil {
		t.Error("saturation on VCVS accepted")
	}
	if _, err := c.Transient("out", opts(map[string]float64{"V1": 1e-6})); err == nil {
		t.Error("saturation on voltage source accepted")
	}
	if _, err := c.Transient("out", opts(map[string]float64{"G1": 0})); err == nil {
		t.Error("zero Imax accepted")
	}
	if _, err := c.Transient("out", opts(map[string]float64{"G1": 1e-6, "Gmissing": 1e-6})); err == nil {
		t.Error("partially-missing limit set accepted")
	}
	// And the happy path still works with the same circuit.
	if _, err := c.Transient("out", opts(map[string]float64{"G1": 1e-6})); err != nil {
		t.Errorf("valid saturating run failed: %v", err)
	}
}

// Repeated transient runs on one circuit must reuse the pooled scratch:
// only the returned waveform and a handful of setup crumbs may allocate.
func TestTransientSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	nl := netlist.New("alloc")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "0", "out", "in", "0", 1e-3)
	nl.AddR("Ro", "out", "0", 1e5)
	nl.AddC("CL", "out", "0", 1e-12)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	opts := TranOpts{TEnd: 1e-7, Dt: 1e-9, SatLimits: map[string]float64{"G1": 50e-6}}
	if _, err := c.Transient("out", opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.Transient("out", opts); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the returned points slice, the satDevices slice, and the
	// default-Input closure — nothing proportional to the step count.
	if allocs > 8 {
		t.Errorf("Transient allocates %.1f/op in steady state, want ≤ 8", allocs)
	}
}
