package mna

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"artisan/internal/netlist"
)

// TestWorkspaceMatchesCircuit pins the workspace fast path to the public
// entry points: identical solutions and determinants.
func TestWorkspaceMatchesCircuit(t *testing.T) {
	c := compileOK(t, buildNMC())
	w := c.NewWorkspace()
	for _, f := range []float64{1, 1e3, 1e6, 1e9} {
		s := Omega(f)
		want, err := c.SolveAt(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.SolveAt(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("at %g Hz: x[%d] = %v (workspace) vs %v (circuit)", f, i, got[i], want[i])
			}
		}
		if dw, dc := w.DetAt(s), c.DetAt(s); dw != dc {
			t.Fatalf("at %g Hz: det %v (workspace) vs %v (circuit)", f, dw, dc)
		}
		nw, err := w.NumerDetAt("out", s)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := c.NumerDetAt("out", s)
		if err != nil {
			t.Fatal(err)
		}
		if nw != nc {
			t.Fatalf("at %g Hz: numer det %v (workspace) vs %v (circuit)", f, nw, nc)
		}
	}
}

// TestWorkspaceAllocFree is the steady-state allocation guard the hot path
// is built around: solves and determinant evaluations through a Workspace
// (and the pooled DetAt/NumerDetAt entry points) must not allocate.
func TestWorkspaceAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool caching; allocation counts are meaningless")
	}
	c := compileOK(t, buildNMC())
	w := c.NewWorkspace()
	s := Omega(1e6)
	if _, err := w.SolveAt(s); err != nil { // warm up
		t.Fatal(err)
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"Workspace.SolveAt", func() {
			if _, err := w.SolveAt(s); err != nil {
				t.Fatal(err)
			}
		}},
		{"Workspace.DetAt", func() { w.DetAt(s) }},
		{"Workspace.NumerDetAt", func() {
			if _, err := w.NumerDetAt("out", s); err != nil {
				t.Fatal(err)
			}
		}},
		{"Circuit.DetAt", func() { c.DetAt(s) }},
		{"Circuit.VoltageAt", func() {
			if _, err := c.VoltageAt("out", s); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, ck := range checks {
		ck.fn() // warm the pool outside the measured runs
		if allocs := testing.AllocsPerRun(200, ck.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", ck.name, allocs)
		}
	}
	// Circuit.SolveAt returns a caller-owned vector: exactly that one
	// allocation is allowed.
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.SolveAt(s); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Errorf("Circuit.SolveAt: %v allocs/op, want <= 1 (the result slice)", allocs)
	}
}

// TestSweepParallelMatchesSerial is the byte-identity property: across
// random circuits and worker counts, the parallel sweep must reproduce
// the serial sweep bit for bit.
func TestSweepParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := netlist.New(fmt.Sprintf("ladder-%d", seed))
		nl.AddV("V1", "in", "0", 1)
		prev := "in"
		stages := 2 + rng.Intn(5)
		for i := 0; i < stages; i++ {
			node := fmt.Sprintf("n%d", i)
			if i == stages-1 {
				node = "out"
			}
			nl.AddR(fmt.Sprintf("R%d", i), prev, node, math.Pow(10, 2+3*rng.Float64()))
			nl.AddC(fmt.Sprintf("C%d", i), node, "0", math.Pow(10, -13+3*rng.Float64()))
			prev = node
		}
		if rng.Intn(2) == 1 {
			nl.AddG("Gx", "out", "0", "in", "0", 1e-4*(1+rng.Float64()))
		}
		c := compileOK(t, nl)
		serial, err := c.SweepParallel("out", 1e-1, 1e9, 24, 1)
		if err != nil {
			t.Fatalf("seed %d: serial sweep: %v", seed, err)
		}
		for _, workers := range []int{0, 2, 3, 8} {
			par, err := c.SweepParallel("out", 1e-1, 1e9, 24, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if len(par) != len(serial) {
				t.Fatalf("seed %d workers %d: %d points vs %d serial", seed, workers, len(par), len(serial))
			}
			for i := range par {
				if math.Float64bits(par[i].Freq) != math.Float64bits(serial[i].Freq) ||
					math.Float64bits(real(par[i].H)) != math.Float64bits(real(serial[i].H)) ||
					math.Float64bits(imag(par[i].H)) != math.Float64bits(imag(serial[i].H)) {
					t.Fatalf("seed %d workers %d point %d: %v vs serial %v",
						seed, workers, i, par[i], serial[i])
				}
			}
		}
	}
}

// polyDet builds a detFunc for a monic polynomial given its roots — a
// controlled stand-in for an MNA characteristic determinant.
func polyDet(roots []complex128) detFunc {
	return func(s complex128) ScaledDet {
		m, e := complex(1, 0), 0
		for _, r := range roots {
			m *= s - r
			m, e = normalizeDet(m, e)
		}
		return ScaledDet{m, e}
	}
}

// TestAberthFindsKnownRoots sanity-checks the root finder on a polynomial
// with known well-separated roots.
func TestAberthFindsKnownRoots(t *testing.T) {
	want := []complex128{-1e3, -2e5, -3e7}
	got, err := aberth(polyDet(want), len(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d roots (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-6*cmplx.Abs(want[i]) {
			t.Errorf("root %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestAberthRejectsSpuriousRoots is the regression test for the silent
// non-convergence bug: with an overestimated degree the iteration has more
// approximants than roots, and the old code returned whatever it had after
// the iteration budget — spurious points reported as poles. It must now
// fail explicitly.
func TestAberthRejectsSpuriousRoots(t *testing.T) {
	f := polyDet([]complex128{-1e3, -2e5, -3e7})
	if roots, err := aberth(f, 6); err == nil {
		t.Fatalf("aberth with overestimated degree returned %v, want ErrNoConverge", roots)
	}
}

// TestAberthIllConditionedCircuit drives the same failure from a real
// compiled circuit: the NMC opamp's characteristic determinant with a
// deliberately inflated degree is an ill-conditioned root-finding problem
// (three extra approximants with no root to land on) and must be reported,
// not silently truncated into a pole list.
func TestAberthIllConditionedCircuit(t *testing.T) {
	c := compileOK(t, buildNMC())
	w := c.NewWorkspace()
	f := func(s complex128) ScaledDet { return w.DetAt(s) }
	deg, err := polyDegree(f)
	if err != nil {
		t.Fatal(err)
	}
	if roots, err := aberth(f, deg+3); err == nil {
		t.Fatalf("aberth(deg+3) returned %v, want error", roots)
	}
	// The well-posed problem on the same circuit still succeeds.
	if _, err := aberth(f, deg); err != nil {
		t.Fatalf("aberth(deg) on NMC: %v", err)
	}
}

// TestPolesMemoizedDegree exercises the degree memoization: repeated calls
// agree with the first (and with each other).
func TestPolesMemoizedDegree(t *testing.T) {
	c := compileOK(t, buildNMC())
	first, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(again) {
		t.Fatalf("pole count changed across calls: %d vs %d", len(first), len(again))
	}
	z1, err := c.Zeros("out")
	if err != nil {
		t.Fatal(err)
	}
	z2, err := c.Zeros("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(z1) != len(z2) {
		t.Fatalf("zero count changed across calls: %d vs %d", len(z1), len(z2))
	}
}

// TestConcurrentAnalyses hammers one compiled circuit from many goroutines
// (the server and the BO tuner share circuits exactly this way); run with
// -race this is the workspace-pool safety gate.
func TestConcurrentAnalyses(t *testing.T) {
	c := compileOK(t, buildNMC())
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 5; i++ {
				if _, err := c.Sweep("out", 1, 1e9, 12); err != nil {
					done <- err
					return
				}
				if _, err := c.Poles(); err != nil {
					done <- err
					return
				}
				if _, err := c.Zeros("out"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
