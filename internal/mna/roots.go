package mna

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"sync"
)

// detFunc evaluates a determinant-valued analytic function of s (the MNA
// characteristic determinant or a Cramer numerator). Such functions are
// polynomials in s with real coefficients of modest degree, but are far
// better conditioned when evaluated through the LU determinant than through
// interpolated monomial coefficients, so the root finder works on direct
// evaluations.
type detFunc func(s complex128) ScaledDet

// ErrNoConverge reports that Aberth iteration either failed to settle
// within its iteration budget or settled on points that do not satisfy
// the residual check (spurious roots). Callers must treat the root set as
// unknown, not as empty.
var ErrNoConverge = errors.New("root finder did not converge")

const (
	// Radii (rad/s) used to probe the asymptotic slope of log|D|; chosen
	// beyond any physically plausible pole of a behavioral opamp
	// (parasitic poles top out near 1e13 rad/s).
	degreeProbeR1 = 1e16
	degreeProbeR2 = 1e17
	maxPolyDegree = 64

	aberthMaxIter = 400
	aberthTol     = 1e-10 // per-iteration relative step for early exit
	// Acceptance thresholds: a run that stopped on the iteration budget
	// still passes if its final step was below aberthLooseTol, and every
	// returned root must have a Newton step (≈ distance to the true
	// root) below aberthResidTol relative to its magnitude.
	aberthLooseTol  = 1e-6
	aberthResidTol  = 1e-6
	aberthDedupeTol = 1e-12 // merge numerically coincident duplicates
)

// polyDegree estimates deg D by the slope of log10|D| between two radii far
// outside the root cluster: for |s| ≫ all roots, |D(s)| ≈ |a_d|·|s|^d.
// Several probe angles are averaged for robustness.
func polyDegree(f detFunc) (int, error) {
	angles := []float64{0.41, 1.73, 2.9}
	slope := 0.0
	used := 0
	for _, th := range angles {
		d1 := f(cmplx.Rect(degreeProbeR1, th))
		d2 := f(cmplx.Rect(degreeProbeR2, th))
		if d1.Zero() || d2.Zero() {
			continue
		}
		slope += d2.Log10Mag() - d1.Log10Mag()
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("mna: determinant vanishes at probe radii (identically zero?)")
	}
	d := int(math.Round(slope / float64(used)))
	if d < 0 {
		d = 0
	}
	if d > maxPolyDegree {
		return 0, fmt.Errorf("mna: implausible polynomial degree %d", d)
	}
	return d, nil
}

// newtonRatio computes D(s)/D'(s) with a central-difference derivative.
func newtonRatio(f detFunc, s complex128) complex128 {
	h := 1e-6 * (cmplx.Abs(s) + 1)
	d := f(s)
	if d.Zero() {
		return 0
	}
	dp := f(s + complex(h, 0))
	dm := f(s - complex(h, 0))
	// D'(s) ≈ (D+ − D−)/(2h). Work in a common scale: express both
	// relative to d's exponent to avoid overflow.
	rp := dp.Ratio(d)                    // D+/D
	rm := dm.Ratio(d)                    // D−/D
	deriv := (rp - rm) / complex(2*h, 0) // D'/D
	if deriv == 0 || cmplx.IsInf(deriv) || cmplx.IsNaN(deriv) {
		return 0
	}
	return 1 / deriv // D/D'
}

// newtonRatioFwd is newtonRatio with a one-sided derivative — one fewer
// determinant evaluation per call. The O(h) derivative error is ample for
// polishing warm seeds whose verdict is certified by a 20× sign margin
// (StableNear); the cold-start root finder keeps the central difference.
func newtonRatioFwd(f detFunc, s complex128) complex128 {
	h := 1e-7 * (cmplx.Abs(s) + 1)
	d := f(s)
	if d.Zero() {
		return 0
	}
	dp := f(s + complex(h, 0))
	rp := dp.Ratio(d)                 // D+/D
	deriv := (rp - 1) / complex(h, 0) // D'/D
	if deriv == 0 || cmplx.IsInf(deriv) || cmplx.IsNaN(deriv) {
		return 0
	}
	return 1 / deriv
}

// aberth runs Aberth–Ehrlich simultaneous iteration for all deg roots of f.
// It fails with ErrNoConverge when the iteration does not settle or when a
// settled point fails the residual check — previously such spurious roots
// were silently reported as poles.
func aberth(f detFunc, deg int) ([]complex128, error) {
	if deg == 0 {
		return nil, nil
	}
	// Initial guesses: log-spaced radii over the plausible root range,
	// angles fanned across both half planes (poles live in the LHP but
	// zeros of opamp transfer functions are often in the RHP).
	roots := make([]complex128, deg)
	for i := range roots {
		t := float64(i) / float64(max(deg-1, 1))
		r := math.Pow(10, 2+10*t)       // 1e2 … 1e12 rad/s
		ang := math.Pi * (0.35 + 0.5*t) // fan from RHP-ish to LHP
		if i%2 == 1 {
			ang = -ang
		}
		roots[i] = cmplx.Rect(r, ang)
	}
	lastStep := math.Inf(1)
	for iter := 0; iter < aberthMaxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			ni := newtonRatio(f, roots[i])
			if ni == 0 {
				continue // already on a root (or derivative degenerate)
			}
			sum := complex(0, 0)
			for j := range roots {
				if j != i {
					d := roots[i] - roots[j]
					if d == 0 {
						d = complex(1e-30, 1e-30)
					}
					sum += 1 / d
				}
			}
			den := 1 - ni*sum
			if den == 0 {
				continue
			}
			w := ni / den
			roots[i] -= w
			rel := cmplx.Abs(w) / (cmplx.Abs(roots[i]) + 1e-3)
			if rel > maxStep {
				maxStep = rel
			}
		}
		lastStep = maxStep
		if maxStep < aberthTol {
			break
		}
	}
	if lastStep > aberthLooseTol {
		return nil, fmt.Errorf("mna: aberth: max relative step %.3g after %d iterations: %w",
			lastStep, aberthMaxIter, ErrNoConverge)
	}
	// Enforce conjugate symmetry: D has real coefficients, so roots with
	// tiny imaginary parts are real.
	for i, r := range roots {
		if math.Abs(imag(r)) < 1e-9*(math.Abs(real(r))+1) {
			roots[i] = complex(real(r), 0)
		}
	}
	sortRoots(roots)
	roots = dedupeRoots(roots)
	// Residual check: at a converged simple (or multiple) root the Newton
	// step |D/D'| is a direct estimate of the remaining distance to the
	// true root. A settled iterate with a large step is a spurious root
	// (typically from an overestimated degree).
	for _, r := range roots {
		ni := newtonRatio(f, r)
		if rel := cmplx.Abs(ni) / (cmplx.Abs(r) + 1); rel > aberthResidTol {
			return nil, fmt.Errorf("mna: aberth: root %v fails residual check (rel step %.3g): %w",
				r, rel, ErrNoConverge)
		}
	}
	return roots, nil
}

// dedupeRoots merges numerically coincident neighbours (relative distance
// below aberthDedupeTol) after sorting. Genuine multiple roots settle with
// far larger separations (Aberth converges only linearly on them), so only
// degenerate duplicates — e.g. two iterates collapsed through the
// zero-separation guard — are removed.
func dedupeRoots(rs []complex128) []complex128 {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := out[len(out)-1]
		if cmplx.Abs(r-last) <= aberthDedupeTol*(cmplx.Abs(last)+1) {
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortRoots(rs []complex128) {
	sort.Slice(rs, func(i, j int) bool {
		ai, aj := cmplx.Abs(rs[i]), cmplx.Abs(rs[j])
		if ai != aj {
			return ai < aj
		}
		return imag(rs[i]) < imag(rs[j])
	})
}

// degMemo memoizes the polynomial-degree probes for the root finder: the
// degree of det(G+sC) (and of each output's Cramer numerator) is a
// structural property of the topology, so six high-radius determinant
// evaluations per Poles/Zeros call collapse to one probe — shared between
// a compiled circuit and every Restamped variant of it, since value
// perturbations move the roots but not the degree.
type degMemo struct {
	mu       sync.Mutex
	polesDeg int
	polesOK  bool
	zerosDeg map[string]int
}

func (m *degMemo) poles(f detFunc) (int, error) {
	m.mu.Lock()
	if m.polesOK {
		d := m.polesDeg
		m.mu.Unlock()
		return d, nil
	}
	m.mu.Unlock()
	d, err := polyDegree(f)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.polesDeg, m.polesOK = d, true
	m.mu.Unlock()
	return d, nil
}

func (m *degMemo) zeros(out string, f detFunc) (int, error) {
	m.mu.Lock()
	if d, ok := m.zerosDeg[out]; ok {
		m.mu.Unlock()
		return d, nil
	}
	m.mu.Unlock()
	d, err := polyDegree(f)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.zerosDeg == nil {
		m.zerosDeg = map[string]int{}
	}
	m.zerosDeg[out] = d
	m.mu.Unlock()
	return d, nil
}

// polesDegree returns the memoized degree of det(G + sC), probing it on
// first use.
func (c *Circuit) polesDegree(f detFunc) (int, error) { return c.deg.poles(f) }

// zerosDegree returns the memoized Cramer-numerator degree for one output
// node.
func (c *Circuit) zerosDegree(out string, f detFunc) (int, error) {
	return c.deg.zeros(out, f)
}

// StableNear classifies the circuit's stability by polishing a set of
// warm-start pole seeds (typically the nominal design's poles) with
// Aberth iteration on this circuit's determinant. It is the fast path for
// Monte-Carlo stability checks: a perturbed sample's poles sit close to
// the nominal ones, so a few polish iterations settle where a cold-start
// root find needs hundreds.
//
// It returns ok=false — caller must fall back to a full root find — when
// the polish does not settle, a root fails the residual check, or any
// root's real-part sign is ambiguous at the polished accuracy. When
// ok=true, stable reports whether every pole is in the closed left half
// plane (Re ≤ 0 up to the residual scale), matching Analyze's convention.
func (c *Circuit) StableNear(seeds []complex128) (stable, ok bool) {
	if len(seeds) == 0 {
		return false, false
	}
	w := c.workspace()
	defer c.release(w)
	f := func(s complex128) ScaledDet { return w.DetAt(s) }
	roots := append(make([]complex128, 0, len(seeds)), seeds...)
	steps := make([]float64, len(roots))
	const polishMaxIter = 24
	settled := false
	for iter := 0; iter < polishMaxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			steps[i] = 0
			ni := newtonRatioFwd(f, roots[i])
			if ni == 0 {
				continue
			}
			sum := complex(0, 0)
			for j := range roots {
				if j != i {
					d := roots[i] - roots[j]
					if d == 0 {
						d = complex(1e-30, 1e-30)
					}
					sum += 1 / d
				}
			}
			den := 1 - ni*sum
			if den == 0 {
				continue
			}
			wstep := ni / den
			roots[i] -= wstep
			steps[i] = cmplx.Abs(wstep)
			if rel := steps[i] / (cmplx.Abs(roots[i]) + 1e-3); rel > maxStep {
				maxStep = rel
			}
		}
		if maxStep < aberthTol {
			settled = true
			break
		}
		// Sign-certainty early exit: near a simple root the Newton step
		// bounds the remaining error, so once every root's last step is far
		// smaller than the distance to the imaginary axis, further polish
		// cannot change any real-part sign. Require at least two sweeps and
		// an overall contracting iteration before trusting the bound.
		if iter >= 1 && maxStep < 1e-3 {
			certain := true
			stable = true
			for i, r := range roots {
				if math.Abs(real(r)) <= 20*steps[i] {
					certain = false
					break
				}
				if real(r) > 0 {
					stable = false
				}
			}
			if certain {
				return stable, true
			}
		}
	}
	if !settled {
		return false, false
	}
	stable = true
	for _, r := range roots {
		resid := cmplx.Abs(newtonRatio(f, r))
		if resid > aberthResidTol*(cmplx.Abs(r)+1) {
			return false, false
		}
		// Sign certainty: the remaining root error is on the order of the
		// Newton step; a real part inside that band could be either sign,
		// so hand the sample to the full (slow) analysis instead of
		// guessing.
		margin := 10 * resid
		if math.Abs(real(r)) <= margin {
			return false, false
		}
		if real(r) > 0 {
			stable = false
		}
	}
	return stable, true
}

// Poles returns the natural frequencies of the circuit: the roots of
// det(G + sC) in rad/s, sorted by magnitude. The excitation sources are
// part of the system (a voltage source pins its node), matching what a
// simulator's pz analysis reports for the driven network. All determinant
// evaluations share one Workspace, so a Poles call is a single small
// allocation burst.
func (c *Circuit) Poles() ([]complex128, error) {
	w := c.workspace()
	defer c.release(w)
	f := func(s complex128) ScaledDet { return w.DetAt(s) }
	deg, err := c.polesDegree(f)
	if err != nil {
		return nil, err
	}
	return aberth(f, deg)
}

// Zeros returns the transmission zeros of V(out)/excitation in rad/s: the
// roots of the Cramer numerator determinant.
func (c *Circuit) Zeros(out string) ([]complex128, error) {
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	w := c.workspace()
	defer c.release(w)
	f := func(s complex128) ScaledDet {
		w.a.AddScaled(c.G, c.C, s)
		for i := 0; i < w.a.N; i++ {
			w.a.Set(i, j, c.b[i])
		}
		w.lu.FactorInto(w.a)
		return w.lu.Det()
	}
	deg, err := c.zerosDegree(out, f)
	if err != nil {
		return nil, err
	}
	return aberth(f, deg)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
