package mna

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// detFunc evaluates a determinant-valued analytic function of s (the MNA
// characteristic determinant or a Cramer numerator). Such functions are
// polynomials in s with real coefficients of modest degree, but are far
// better conditioned when evaluated through the LU determinant than through
// interpolated monomial coefficients, so the root finder works on direct
// evaluations.
type detFunc func(s complex128) ScaledDet

const (
	// Radii (rad/s) used to probe the asymptotic slope of log|D|; chosen
	// beyond any physically plausible pole of a behavioral opamp
	// (parasitic poles top out near 1e13 rad/s).
	degreeProbeR1 = 1e16
	degreeProbeR2 = 1e17
	maxPolyDegree = 64
)

// polyDegree estimates deg D by the slope of log10|D| between two radii far
// outside the root cluster: for |s| ≫ all roots, |D(s)| ≈ |a_d|·|s|^d.
// Several probe angles are averaged for robustness.
func polyDegree(f detFunc) (int, error) {
	angles := []float64{0.41, 1.73, 2.9}
	slope := 0.0
	used := 0
	for _, th := range angles {
		d1 := f(cmplx.Rect(degreeProbeR1, th))
		d2 := f(cmplx.Rect(degreeProbeR2, th))
		if d1.Zero() || d2.Zero() {
			continue
		}
		slope += d2.Log10Mag() - d1.Log10Mag()
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("mna: determinant vanishes at probe radii (identically zero?)")
	}
	d := int(math.Round(slope / float64(used)))
	if d < 0 {
		d = 0
	}
	if d > maxPolyDegree {
		return 0, fmt.Errorf("mna: implausible polynomial degree %d", d)
	}
	return d, nil
}

// newtonRatio computes D(s)/D'(s) with a central-difference derivative.
func newtonRatio(f detFunc, s complex128) complex128 {
	h := 1e-6 * (cmplx.Abs(s) + 1)
	d := f(s)
	if d.Zero() {
		return 0
	}
	dp := f(s + complex(h, 0))
	dm := f(s - complex(h, 0))
	// D'(s) ≈ (D+ − D−)/(2h). Work in a common scale: express both
	// relative to d's exponent to avoid overflow.
	rp := dp.Ratio(d)                    // D+/D
	rm := dm.Ratio(d)                    // D−/D
	deriv := (rp - rm) / complex(2*h, 0) // D'/D
	if deriv == 0 || cmplx.IsInf(deriv) || cmplx.IsNaN(deriv) {
		return 0
	}
	return 1 / deriv // D/D'
}

// aberth runs Aberth–Ehrlich simultaneous iteration for all deg roots of f.
func aberth(f detFunc, deg int) ([]complex128, error) {
	if deg == 0 {
		return nil, nil
	}
	// Initial guesses: log-spaced radii over the plausible root range,
	// angles fanned across both half planes (poles live in the LHP but
	// zeros of opamp transfer functions are often in the RHP).
	roots := make([]complex128, deg)
	for i := range roots {
		t := float64(i) / float64(max(deg-1, 1))
		r := math.Pow(10, 2+10*t)       // 1e2 … 1e12 rad/s
		ang := math.Pi * (0.35 + 0.5*t) // fan from RHP-ish to LHP
		if i%2 == 1 {
			ang = -ang
		}
		roots[i] = cmplx.Rect(r, ang)
	}
	const maxIter = 400
	const tol = 1e-10
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			ni := newtonRatio(f, roots[i])
			if ni == 0 {
				continue // already on a root (or derivative degenerate)
			}
			sum := complex(0, 0)
			for j := range roots {
				if j != i {
					d := roots[i] - roots[j]
					if d == 0 {
						d = complex(1e-30, 1e-30)
					}
					sum += 1 / d
				}
			}
			den := 1 - ni*sum
			if den == 0 {
				continue
			}
			w := ni / den
			roots[i] -= w
			rel := cmplx.Abs(w) / (cmplx.Abs(roots[i]) + 1e-3)
			if rel > maxStep {
				maxStep = rel
			}
		}
		if maxStep < tol {
			break
		}
	}
	// Enforce conjugate symmetry: D has real coefficients, so roots with
	// tiny imaginary parts are real.
	for i, r := range roots {
		if math.Abs(imag(r)) < 1e-9*(math.Abs(real(r))+1) {
			roots[i] = complex(real(r), 0)
		}
	}
	sortRoots(roots)
	return roots, nil
}

func sortRoots(rs []complex128) {
	sort.Slice(rs, func(i, j int) bool {
		ai, aj := cmplx.Abs(rs[i]), cmplx.Abs(rs[j])
		if ai != aj {
			return ai < aj
		}
		return imag(rs[i]) < imag(rs[j])
	})
}

// Poles returns the natural frequencies of the circuit: the roots of
// det(G + sC) in rad/s, sorted by magnitude. The excitation sources are
// part of the system (a voltage source pins its node), matching what a
// simulator's pz analysis reports for the driven network.
func (c *Circuit) Poles() ([]complex128, error) {
	f := func(s complex128) ScaledDet { return c.DetAt(s) }
	deg, err := polyDegree(f)
	if err != nil {
		return nil, err
	}
	return aberth(f, deg)
}

// Zeros returns the transmission zeros of V(out)/excitation in rad/s: the
// roots of the Cramer numerator determinant.
func (c *Circuit) Zeros(out string) ([]complex128, error) {
	if _, err := c.NodeIndex(out); err != nil {
		return nil, err
	}
	f := func(s complex128) ScaledDet {
		d, err := c.NumerDetAt(out, s)
		if err != nil {
			return ScaledDet{}
		}
		return d
	}
	deg, err := polyDegree(f)
	if err != nil {
		return nil, err
	}
	return aberth(f, deg)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
