package mna

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// detFunc evaluates a determinant-valued analytic function of s (the MNA
// characteristic determinant or a Cramer numerator). Such functions are
// polynomials in s with real coefficients of modest degree, but are far
// better conditioned when evaluated through the LU determinant than through
// interpolated monomial coefficients, so the root finder works on direct
// evaluations.
type detFunc func(s complex128) ScaledDet

// ErrNoConverge reports that Aberth iteration either failed to settle
// within its iteration budget or settled on points that do not satisfy
// the residual check (spurious roots). Callers must treat the root set as
// unknown, not as empty.
var ErrNoConverge = errors.New("root finder did not converge")

const (
	// Radii (rad/s) used to probe the asymptotic slope of log|D|; chosen
	// beyond any physically plausible pole of a behavioral opamp
	// (parasitic poles top out near 1e13 rad/s).
	degreeProbeR1 = 1e16
	degreeProbeR2 = 1e17
	maxPolyDegree = 64

	aberthMaxIter = 400
	aberthTol     = 1e-10 // per-iteration relative step for early exit
	// Acceptance thresholds: a run that stopped on the iteration budget
	// still passes if its final step was below aberthLooseTol, and every
	// returned root must have a Newton step (≈ distance to the true
	// root) below aberthResidTol relative to its magnitude.
	aberthLooseTol  = 1e-6
	aberthResidTol  = 1e-6
	aberthDedupeTol = 1e-12 // merge numerically coincident duplicates
)

// polyDegree estimates deg D by the slope of log10|D| between two radii far
// outside the root cluster: for |s| ≫ all roots, |D(s)| ≈ |a_d|·|s|^d.
// Several probe angles are averaged for robustness.
func polyDegree(f detFunc) (int, error) {
	angles := []float64{0.41, 1.73, 2.9}
	slope := 0.0
	used := 0
	for _, th := range angles {
		d1 := f(cmplx.Rect(degreeProbeR1, th))
		d2 := f(cmplx.Rect(degreeProbeR2, th))
		if d1.Zero() || d2.Zero() {
			continue
		}
		slope += d2.Log10Mag() - d1.Log10Mag()
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("mna: determinant vanishes at probe radii (identically zero?)")
	}
	d := int(math.Round(slope / float64(used)))
	if d < 0 {
		d = 0
	}
	if d > maxPolyDegree {
		return 0, fmt.Errorf("mna: implausible polynomial degree %d", d)
	}
	return d, nil
}

// newtonRatio computes D(s)/D'(s) with a central-difference derivative.
func newtonRatio(f detFunc, s complex128) complex128 {
	h := 1e-6 * (cmplx.Abs(s) + 1)
	d := f(s)
	if d.Zero() {
		return 0
	}
	dp := f(s + complex(h, 0))
	dm := f(s - complex(h, 0))
	// D'(s) ≈ (D+ − D−)/(2h). Work in a common scale: express both
	// relative to d's exponent to avoid overflow.
	rp := dp.Ratio(d)                    // D+/D
	rm := dm.Ratio(d)                    // D−/D
	deriv := (rp - rm) / complex(2*h, 0) // D'/D
	if deriv == 0 || cmplx.IsInf(deriv) || cmplx.IsNaN(deriv) {
		return 0
	}
	return 1 / deriv // D/D'
}

// aberth runs Aberth–Ehrlich simultaneous iteration for all deg roots of f.
// It fails with ErrNoConverge when the iteration does not settle or when a
// settled point fails the residual check — previously such spurious roots
// were silently reported as poles.
func aberth(f detFunc, deg int) ([]complex128, error) {
	if deg == 0 {
		return nil, nil
	}
	// Initial guesses: log-spaced radii over the plausible root range,
	// angles fanned across both half planes (poles live in the LHP but
	// zeros of opamp transfer functions are often in the RHP).
	roots := make([]complex128, deg)
	for i := range roots {
		t := float64(i) / float64(max(deg-1, 1))
		r := math.Pow(10, 2+10*t)       // 1e2 … 1e12 rad/s
		ang := math.Pi * (0.35 + 0.5*t) // fan from RHP-ish to LHP
		if i%2 == 1 {
			ang = -ang
		}
		roots[i] = cmplx.Rect(r, ang)
	}
	lastStep := math.Inf(1)
	for iter := 0; iter < aberthMaxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			ni := newtonRatio(f, roots[i])
			if ni == 0 {
				continue // already on a root (or derivative degenerate)
			}
			sum := complex(0, 0)
			for j := range roots {
				if j != i {
					d := roots[i] - roots[j]
					if d == 0 {
						d = complex(1e-30, 1e-30)
					}
					sum += 1 / d
				}
			}
			den := 1 - ni*sum
			if den == 0 {
				continue
			}
			w := ni / den
			roots[i] -= w
			rel := cmplx.Abs(w) / (cmplx.Abs(roots[i]) + 1e-3)
			if rel > maxStep {
				maxStep = rel
			}
		}
		lastStep = maxStep
		if maxStep < aberthTol {
			break
		}
	}
	if lastStep > aberthLooseTol {
		return nil, fmt.Errorf("mna: aberth: max relative step %.3g after %d iterations: %w",
			lastStep, aberthMaxIter, ErrNoConverge)
	}
	// Enforce conjugate symmetry: D has real coefficients, so roots with
	// tiny imaginary parts are real.
	for i, r := range roots {
		if math.Abs(imag(r)) < 1e-9*(math.Abs(real(r))+1) {
			roots[i] = complex(real(r), 0)
		}
	}
	sortRoots(roots)
	roots = dedupeRoots(roots)
	// Residual check: at a converged simple (or multiple) root the Newton
	// step |D/D'| is a direct estimate of the remaining distance to the
	// true root. A settled iterate with a large step is a spurious root
	// (typically from an overestimated degree).
	for _, r := range roots {
		ni := newtonRatio(f, r)
		if rel := cmplx.Abs(ni) / (cmplx.Abs(r) + 1); rel > aberthResidTol {
			return nil, fmt.Errorf("mna: aberth: root %v fails residual check (rel step %.3g): %w",
				r, rel, ErrNoConverge)
		}
	}
	return roots, nil
}

// dedupeRoots merges numerically coincident neighbours (relative distance
// below aberthDedupeTol) after sorting. Genuine multiple roots settle with
// far larger separations (Aberth converges only linearly on them), so only
// degenerate duplicates — e.g. two iterates collapsed through the
// zero-separation guard — are removed.
func dedupeRoots(rs []complex128) []complex128 {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := out[len(out)-1]
		if cmplx.Abs(r-last) <= aberthDedupeTol*(cmplx.Abs(last)+1) {
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortRoots(rs []complex128) {
	sort.Slice(rs, func(i, j int) bool {
		ai, aj := cmplx.Abs(rs[i]), cmplx.Abs(rs[j])
		if ai != aj {
			return ai < aj
		}
		return imag(rs[i]) < imag(rs[j])
	})
}

// polesDegree returns the memoized degree of det(G + sC), probing it on
// first use.
func (c *Circuit) polesDegree(f detFunc) (int, error) {
	c.degMu.Lock()
	if c.polesOK {
		d := c.polesDeg
		c.degMu.Unlock()
		return d, nil
	}
	c.degMu.Unlock()
	d, err := polyDegree(f)
	if err != nil {
		return 0, err
	}
	c.degMu.Lock()
	c.polesDeg, c.polesOK = d, true
	c.degMu.Unlock()
	return d, nil
}

// zerosDegree returns the memoized Cramer-numerator degree for one output
// node.
func (c *Circuit) zerosDegree(out string, f detFunc) (int, error) {
	c.degMu.Lock()
	if d, ok := c.zerosDeg[out]; ok {
		c.degMu.Unlock()
		return d, nil
	}
	c.degMu.Unlock()
	d, err := polyDegree(f)
	if err != nil {
		return 0, err
	}
	c.degMu.Lock()
	if c.zerosDeg == nil {
		c.zerosDeg = map[string]int{}
	}
	c.zerosDeg[out] = d
	c.degMu.Unlock()
	return d, nil
}

// Poles returns the natural frequencies of the circuit: the roots of
// det(G + sC) in rad/s, sorted by magnitude. The excitation sources are
// part of the system (a voltage source pins its node), matching what a
// simulator's pz analysis reports for the driven network. All determinant
// evaluations share one Workspace, so a Poles call is a single small
// allocation burst.
func (c *Circuit) Poles() ([]complex128, error) {
	w := c.workspace()
	defer c.release(w)
	f := func(s complex128) ScaledDet { return w.DetAt(s) }
	deg, err := c.polesDegree(f)
	if err != nil {
		return nil, err
	}
	return aberth(f, deg)
}

// Zeros returns the transmission zeros of V(out)/excitation in rad/s: the
// roots of the Cramer numerator determinant.
func (c *Circuit) Zeros(out string) ([]complex128, error) {
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	w := c.workspace()
	defer c.release(w)
	f := func(s complex128) ScaledDet {
		w.a.AddScaled(c.G, c.C, s)
		for i := 0; i < w.a.N; i++ {
			w.a.Set(i, j, c.b[i])
		}
		w.lu.FactorInto(w.a)
		return w.lu.Det()
	}
	deg, err := c.zerosDegree(out, f)
	if err != nil {
		return nil, err
	}
	return aberth(f, deg)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
