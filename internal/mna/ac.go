package mna

import (
	"fmt"
	"math"
)

// TFPoint is one point of a swept transfer function.
type TFPoint struct {
	Freq float64    // Hz
	H    complex128 // V(out) per unit excitation
}

// Sweep computes the transfer function V(out) over a logarithmic frequency
// sweep from fStart to fStop (Hz) with the given points per decade. The
// excitation is the netlist's independent sources (normally a single 1 V
// AC source), so H is V(out) directly.
func (c *Circuit) Sweep(out string, fStart, fStop float64, perDecade int) ([]TFPoint, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("mna: bad sweep range [%g, %g]", fStart, fStop)
	}
	if perDecade < 1 {
		return nil, fmt.Errorf("mna: perDecade must be >= 1")
	}
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	decades := math.Log10(fStop / fStart)
	n := int(math.Ceil(decades*float64(perDecade))) + 1
	pts := make([]TFPoint, 0, n)
	for i := 0; i < n; i++ {
		f := fStart * math.Pow(10, float64(i)/float64(perDecade))
		if f > fStop {
			f = fStop
		}
		x, err := c.SolveAt(Omega(f))
		if err != nil {
			return nil, fmt.Errorf("mna: sweep at %g Hz: %w", f, err)
		}
		pts = append(pts, TFPoint{Freq: f, H: x[j]})
		if f == fStop {
			break
		}
	}
	return pts, nil
}

// TFAt returns V(out) at one frequency in Hz.
func (c *Circuit) TFAt(out string, freqHz float64) (complex128, error) {
	return c.VoltageAt(out, Omega(freqHz))
}
