package mna

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// TFPoint is one point of a swept transfer function.
type TFPoint struct {
	Freq float64    // Hz
	H    complex128 // V(out) per unit excitation
}

// Sweeps shorter than this stay serial: goroutine startup would cost more
// than the handful of small LU factorizations it saves.
const parallelSweepMin = 32

// Sweep computes the transfer function V(out) over a logarithmic frequency
// sweep from fStart to fStop (Hz) with the given points per decade. The
// excitation is the netlist's independent sources (normally a single 1 V
// AC source), so H is V(out) directly. Sweeps long enough to amortize the
// startup are partitioned across GOMAXPROCS workers, each with its own
// Workspace; the output is byte-identical to the serial path.
func (c *Circuit) Sweep(out string, fStart, fStop float64, perDecade int) ([]TFPoint, error) {
	return c.SweepParallel(out, fStart, fStop, perDecade, 0)
}

// SweepParallel is Sweep with an explicit worker count: 0 means
// GOMAXPROCS, 1 forces the serial path. Every point is an independent
// deterministic solve, so the result does not depend on workers.
func (c *Circuit) SweepParallel(out string, fStart, fStop float64, perDecade, workers int) ([]TFPoint, error) {
	if fStart <= 0 || fStop <= fStart {
		return nil, fmt.Errorf("mna: bad sweep range [%g, %g]", fStart, fStop)
	}
	if perDecade < 1 {
		return nil, fmt.Errorf("mna: perDecade must be >= 1")
	}
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	freqs := logFreqs(fStart, fStop, perDecade)
	pts := make([]TFPoint, len(freqs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(freqs) {
		workers = len(freqs)
	}

	solveRange := func(w *Workspace, lo, hi int) error {
		for i := lo; i < hi; i++ {
			f := freqs[i]
			x, err := w.SolveAt(Omega(f))
			if err != nil {
				return fmt.Errorf("mna: sweep at %g Hz: %w", f, err)
			}
			pts[i] = TFPoint{Freq: f, H: x[j]}
		}
		return nil
	}

	if workers == 1 || len(freqs) < parallelSweepMin {
		w := c.workspace()
		defer c.release(w)
		if err := solveRange(w, 0, len(freqs)); err != nil {
			return nil, err
		}
		return pts, nil
	}

	// Contiguous chunks; per-worker error slots keep the reported error
	// deterministic (the lowest failing frequency, as in the serial path).
	errs := make([]error, workers)
	chunk := (len(freqs) + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		hi := min(lo+chunk, len(freqs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			w := c.workspace()
			defer c.release(w)
			errs[wk] = solveRange(w, lo, hi)
		}(wk, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return pts, nil
}

// logFreqs lists the sweep frequencies: log-spaced at perDecade points per
// decade, clamped so the last point is exactly fStop.
func logFreqs(fStart, fStop float64, perDecade int) []float64 {
	decades := math.Log10(fStop / fStart)
	n := int(math.Ceil(decades*float64(perDecade))) + 1
	freqs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		f := fStart * math.Pow(10, float64(i)/float64(perDecade))
		if f > fStop {
			f = fStop
		}
		freqs = append(freqs, f)
		if f == fStop {
			break
		}
	}
	return freqs
}

// TFAt returns V(out) at one frequency in Hz.
func (c *Circuit) TFAt(out string, freqHz float64) (complex128, error) {
	return c.VoltageAt(out, Omega(freqHz))
}
