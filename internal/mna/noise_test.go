package mna

import (
	"math"
	"testing"

	"artisan/internal/netlist"
	"artisan/internal/units"
)

// A bare resistor to ground shows the textbook 4kTR voltage noise.
func TestResistorThermalNoise(t *testing.T) {
	R := 100e3
	nl := netlist.New("resistor noise")
	nl.AddR("R1", "out", "0", R)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	svv, err := c.NoiseAt("out", 1e3, NoiseOpts{TempK: 300})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * kB * 300 * R // 4kTR ≈ 1.66e-15 V²/Hz
	if !units.ApproxEqual(svv, want, 1e-9) {
		t.Errorf("Svv = %g, want %g", svv, want)
	}
}

// The classic result: the total integrated noise of an RC filter is kT/C,
// independent of R.
func TestKTOverC(t *testing.T) {
	C := 1e-12
	want := kB * 300 / C // ≈ 4.14e-9 V² → 64 µV rms
	for _, R := range []float64{1e3, 100e3} {
		nl := netlist.New("ktc")
		nl.AddR("R1", "out", "0", R)
		nl.AddC("C1", "out", "0", C)
		c, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		// Integrate far past the pole: f3dB = 1/(2πRC).
		f3 := 1 / (2 * math.Pi * R * C)
		vrms, err := c.IntegratedNoise("out", f3/1e4, f3*1e4, NoiseOpts{TempK: 300})
		if err != nil {
			t.Fatal(err)
		}
		got := vrms * vrms
		if !units.ApproxEqual(got, want, 0.05) {
			t.Errorf("R=%g: integrated noise %g V², want kT/C = %g", R, got, want)
		}
	}
}

// VCCS channel noise dominates in an amplifier: the input-referred density
// of a single gm stage is 4kTγ/gm.
func TestAmplifierChannelNoise(t *testing.T) {
	gm, Ro := 1e-3, 100e3
	nl := netlist.New("gm noise")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "0", "out", "in", "0", gm)
	nl.AddR("Ro", "out", "0", Ro)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	svv, err := c.NoiseAt("out", 1e3, NoiseOpts{TempK: 300, Gamma: 2.0 / 3.0})
	if err != nil {
		t.Fatal(err)
	}
	// Output noise = (4kTγgm + 4kT/Ro)·Ro².
	want := (4*kB*300*(2.0/3.0)*gm + 4*kB*300/Ro) * Ro * Ro
	if !units.ApproxEqual(svv, want, 1e-9) {
		t.Errorf("Svv = %g, want %g", svv, want)
	}
	// Input-referred: divide by gain² — dominated by 4kTγ/gm.
	inRef := svv / (gm * Ro * gm * Ro)
	if ratio := inRef / (4 * kB * 300 * (2.0 / 3.0) / gm); ratio < 1 || ratio > 1.1 {
		t.Errorf("input-referred ratio = %g", ratio)
	}
}

func TestNoiseSweepShape(t *testing.T) {
	// RC-filtered noise: flat below the pole, falling above.
	nl := netlist.New("shape")
	nl.AddR("R1", "out", "0", 10e3)
	nl.AddC("C1", "out", "0", 1e-9) // pole ≈ 15.9 kHz
	c, _ := Compile(nl)
	pts, err := c.NoiseSweep("out", 10, 10e6, 10, NoiseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Svv <= pts[len(pts)-1].Svv {
		t.Error("noise should fall above the pole")
	}
	lowRatio := pts[1].Svv / pts[0].Svv
	if lowRatio < 0.99 || lowRatio > 1.01 {
		t.Errorf("low-frequency plateau not flat: %g", lowRatio)
	}
}

func TestNoiseValidation(t *testing.T) {
	nl := netlist.New("v only")
	nl.AddV("V1", "out", "0", 1)
	nl.AddE("E1", "x", "0", "out", "0", 1)
	c, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NoiseAt("out", 1e3, NoiseOpts{}); err == nil {
		t.Error("noiseless circuit accepted")
	}
	nl2 := netlist.New("r")
	nl2.AddR("R1", "out", "0", 1e3)
	c2, _ := Compile(nl2)
	if _, err := c2.NoiseSweep("out", -1, 10, 10, NoiseOpts{}); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := c2.NoiseSweep("nope", 1, 10, 10, NoiseOpts{}); err == nil {
		t.Error("unknown node accepted")
	}
}

// The three-stage opamp's input-referred noise is dominated by the input
// pair (a design sanity check the knowledge base relies on).
func TestNMCInputReferredNoise(t *testing.T) {
	c, err := Compile(buildNMC())
	if err != nil {
		t.Fatal(err)
	}
	svv, err := c.NoiseAt("out", 10, NoiseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.TFAt("out", 10)
	if err != nil {
		t.Fatal(err)
	}
	gain2 := real(h)*real(h) + imag(h)*imag(h)
	inRef := svv / gain2
	// First-stage contribution alone: (4kTγ·gm1 + 4kT/Ro1)/gm1².
	gm1, ro1 := 25.13e-6, 4e6
	first := (4*kB*300*(2.0/3.0)*gm1 + 4*kB*300/ro1) / (gm1 * gm1)
	if inRef < first || inRef > 1.5*first {
		t.Errorf("input-referred %g should be slightly above the first-stage floor %g", inRef, first)
	}
}
