package mna

import (
	"context"
	"fmt"

	"artisan/internal/telemetry"
)

// Context-aware wrappers around the solver entry points. They add
// telemetry spans — one per MNA solve — so a traced design session shows
// where simulation time goes; without a tracer in ctx the span calls are
// free. The solves themselves are unchanged.

// SweepContext is Sweep with a telemetry span ("mna.sweep") recording
// the matrix size and point count.
func (c *Circuit) SweepContext(ctx context.Context, out string, fStart, fStop float64, perDecade int) ([]TFPoint, error) {
	_, span := telemetry.StartSpan(ctx, "mna.sweep")
	defer span.End()
	pts, err := c.Sweep(out, fStart, fStop, perDecade)
	span.SetAttr("size", fmt.Sprintf("%d", c.Size()))
	span.SetAttr("points", fmt.Sprintf("%d", len(pts)))
	return pts, err
}

// PolesContext is Poles with a telemetry span ("mna.poles").
func (c *Circuit) PolesContext(ctx context.Context) ([]complex128, error) {
	_, span := telemetry.StartSpan(ctx, "mna.poles")
	defer span.End()
	poles, err := c.Poles()
	span.SetAttr("n", fmt.Sprintf("%d", len(poles)))
	return poles, err
}

// ZerosContext is Zeros with a telemetry span ("mna.zeros").
func (c *Circuit) ZerosContext(ctx context.Context, out string) ([]complex128, error) {
	_, span := telemetry.StartSpan(ctx, "mna.zeros")
	defer span.End()
	zeros, err := c.Zeros(out)
	span.SetAttr("n", fmt.Sprintf("%d", len(zeros)))
	return zeros, err
}
