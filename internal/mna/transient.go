package mna

import (
	"fmt"
	"math"
)

// Transient analysis: trapezoidal integration of the MNA DAE
// C·x'(t) + G·x(t) = b·u(t), with optional saturating transconductors.
//
// The AC model of Fig. 1(b) is linear, but slewing — the limit the
// classical large-signal figure of merit measures — is a *nonlinear*
// phenomenon: a real transconductance stage can deliver at most its bias
// current. SatLimits models this by replacing selected VCCS elements'
// i = gm·v characteristic with the smooth saturating
// i = Imax·tanh(gm·v/Imax), solved by Newton iteration at each timestep.
//
// The integrator runs on the sparse real engine: the circuit's structural
// pattern is analyzed once, the companion matrix is factored once, and
// each step (or Newton Jacobian refresh) is a numeric Refactor replaying
// the recorded pivot sequence. All step state lives in a per-circuit
// pooled scratch, so steady-state integration performs no allocations
// beyond the returned waveform. The Newton Jacobian is additionally
// frozen across iterations and steps while the saturating devices'
// effective transconductances hold still (within jacDriftTol), which
// collapses the settled tail of a step response to one refactor-free
// chord iteration per step.

// TranOpts configures a transient run.
type TranOpts struct {
	TEnd float64 // end time, s
	Dt   float64 // fixed timestep, s
	// Input is the excitation waveform u(t) scaling the netlist's
	// independent sources; nil means unit step u(t) = 1 for t ≥ 0.
	Input func(t float64) float64
	// SatLimits maps VCCS device names to their maximum output current
	// (A). Devices not listed stay linear.
	SatLimits map[string]float64
	// MaxNewton bounds the Newton iterations per step (default 25).
	MaxNewton int
	// Tol is the Newton convergence tolerance on the solution update
	// (default 1e-9 relative).
	Tol float64
}

// TranPoint is one sample of the transient waveform.
type TranPoint struct {
	T float64
	V float64 // voltage of the observed node
}

// vccsInfo caches a saturating transconductor's stamp geometry: matrix
// indices (-1 for ground) and the pattern slots of its four G stamps
// (filled by Transient once the pattern is known; -1 where a terminal is
// grounded).
type vccsInfo struct {
	name           string
	op, om, cp, cm int
	gm             float64
	imax           float64
	slot           [4]int // pattern indices of (op,cp) (op,cm) (om,cp) (om,cm)
}

// jacDriftTol is the relative effective-transconductance drift that
// triggers a Newton Jacobian refresh. Below it the chord iteration's
// contraction factor is ~jacDriftTol per iteration, so a frozen Jacobian
// still reaches the 1e-9 default tolerance in two iterations.
const jacDriftTol = 1e-5

// stepRoundTol absorbs float rounding in the step-count computation so a
// window that is a whole multiple of Dt (up to roundoff) does not gain a
// spurious final micro-step.
const stepRoundTol = 1e-9

// tranScratch is the pooled per-circuit transient engine state: the
// analyzed factorization plus every pattern-aligned value array and step
// vector. One scratch serves one Transient call at a time; the pool hands
// it back for the next call so repeated integrations on a circuit reach
// zero steady-state allocations.
type tranScratch struct {
	pat *Pattern
	lu  SparseLU[float64]

	gv, cv  []float64 // pattern-aligned Re(G_lin), Re(C)
	aBase   []float64 // gv + (2/h)·cv at the current step size
	jacV    []float64 // aBase + sat geff stamps
	bReal   []float64
	hasC    []bool
	x, xNew []float64
	cdx, cx []float64
	rhs, f  []float64
	dx      []float64

	satTanh  []float64
	lastGeff []float64
}

func (ts *tranScratch) ensure(pat *Pattern, nSats int) {
	n, nnz := pat.N, pat.NNZ()
	if ts.pat != pat {
		ts.pat = pat
		ts.lu.Analyze(pat, absReal)
		ts.gv = make([]float64, nnz)
		ts.cv = make([]float64, nnz)
		ts.aBase = make([]float64, nnz)
		ts.jacV = make([]float64, nnz)
		vecs := make([]float64, 8*n)
		ts.bReal, vecs = vecs[:n], vecs[n:]
		ts.x, vecs = vecs[:n], vecs[n:]
		ts.xNew, vecs = vecs[:n], vecs[n:]
		ts.cdx, vecs = vecs[:n], vecs[n:]
		ts.cx, vecs = vecs[:n], vecs[n:]
		ts.rhs, vecs = vecs[:n], vecs[n:]
		ts.f, vecs = vecs[:n], vecs[n:]
		ts.dx = vecs[:n]
		ts.hasC = make([]bool, n)
	}
	if cap(ts.satTanh) < nSats {
		ts.satTanh = make([]float64, nSats)
		ts.lastGeff = make([]float64, nSats)
	}
	ts.satTanh = ts.satTanh[:nSats]
	ts.lastGeff = ts.lastGeff[:nSats]
}

// Transient integrates the circuit and returns the waveform of node out.
func (c *Circuit) Transient(out string, opts TranOpts) ([]TranPoint, error) {
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	if opts.TEnd <= 0 || opts.Dt <= 0 || opts.Dt > opts.TEnd {
		return nil, fmt.Errorf("mna: bad transient window tEnd=%g dt=%g", opts.TEnd, opts.Dt)
	}
	if opts.Input == nil {
		opts.Input = func(t float64) float64 { return 1 }
	}
	if opts.MaxNewton <= 0 {
		opts.MaxNewton = 25
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}

	sats, err := c.satDevices(opts.SatLimits)
	if err != nil {
		return nil, err
	}

	pat := c.pattern()
	ts, _ := c.tranPool.Get().(*tranScratch)
	if ts == nil {
		ts = &tranScratch{}
	}
	defer c.tranPool.Put(ts)
	ts.ensure(pat, len(sats))
	n := pat.N
	h := opts.Dt

	// Gather the linear part: Re(G) with the saturating VCCS stamps
	// removed (they are applied nonlinearly instead), plus Re(C).
	for col := 0; col < n; col++ {
		for i := pat.ColPtr[col]; i < pat.ColPtr[col+1]; i++ {
			ts.gv[i] = real(c.G.At(pat.Rows[i], col))
			ts.cv[i] = real(c.C.At(pat.Rows[i], col))
		}
	}
	for si := range sats {
		s := &sats[si]
		resolve := func(r, cl int) int {
			if r < 0 || cl < 0 {
				return -1
			}
			return pat.Index(r, cl)
		}
		s.slot = [4]int{
			resolve(s.op, s.cp), resolve(s.op, s.cm),
			resolve(s.om, s.cp), resolve(s.om, s.cm),
		}
		addGeffStamps(ts.gv, s, -s.gm)
	}
	for r := range ts.hasC {
		ts.hasC[r] = false
	}
	for col := 0; col < n; col++ {
		for i := pat.ColPtr[col]; i < pat.ColPtr[col+1]; i++ {
			if ts.cv[i] != 0 {
				ts.hasC[pat.Rows[i]] = true
			}
		}
	}
	for i, v := range c.b {
		ts.bReal[i] = real(v)
	}

	// Consistent initialization at t = 0⁺: capacitor voltages start at
	// zero but the algebraic variables (source rows, resistive nodes)
	// must already satisfy their constraints. A single backward-Euler
	// micro-step from the all-zero state — (G + C/δ)x = b·u(0) with
	// δ ≪ h — pins the capacitor voltages while solving the algebraic
	// part exactly. A singular init system means no consistent state
	// exists and the whole waveform would be garbage, so it is an error,
	// exactly like the main-loop solves.
	{
		delta := h * 1e-9
		for i := range ts.jacV { // jacV doubles as the init value scratch
			ts.jacV[i] = ts.gv[i] + ts.cv[i]/delta
		}
		if !ts.lu.Factor(ts.jacV) {
			return nil, fmt.Errorf("mna: transient consistent initialization singular (dt=%g)", h)
		}
		u0 := opts.Input(0)
		for i := range ts.rhs {
			ts.rhs[i] = ts.bReal[i] * u0
		}
		if err := ts.lu.SolveInto(ts.x, ts.rhs); err != nil {
			return nil, fmt.Errorf("mna: transient consistent initialization: %w", err)
		}
	}

	// Companion-model trapezoidal form: capacitors integrate with the
	// trapezoidal rule while algebraic rows (sources, resistive nodes,
	// where the C row vanishes) stay exact at t_{n+1}:
	//
	//   (G + 2C/h)·x_{n+1} + i_sat(x_{n+1})
	//       = b(t_{n+1}) + (2C/h)·x_n + C·x'_n
	//
	// with the derivative term obtained from the previous collocation,
	// C·x'_n = b(t_n) − G·x_n − i_sat(x_n).
	setBase := func(hs float64) {
		r := 2 / hs
		for i := range ts.aBase {
			ts.aBase[i] = ts.gv[i] + r*ts.cv[i]
		}
	}
	setBase(h)
	jacFresh := false
	if len(sats) == 0 {
		if !ts.lu.Refactor(ts.aBase) {
			return nil, fmt.Errorf("mna: transient system singular at dt=%g", h)
		}
		jacFresh = true
	}

	// The final sample is clamped to TEnd: a window that is not a whole
	// multiple of Dt ends with one shorter step rather than overshooting
	// past the requested end time.
	steps := int(math.Ceil(opts.TEnd/h - stepRoundTol))
	if steps < 1 {
		steps = 1
	}
	pts := make([]TranPoint, 0, steps+1)
	pts = append(pts, TranPoint{0, ts.x[j]})

	hs := h
	for s := 1; s <= steps; s++ {
		t0 := float64(s-1) * h
		t1 := float64(s) * h
		if s == steps {
			t1 = opts.TEnd
			if last := opts.TEnd - t0; last < hs*(1-1e-12) {
				hs = last
				setBase(hs)
				jacFresh = false
				if len(sats) == 0 {
					if !ts.lu.Refactor(ts.aBase) {
						return nil, fmt.Errorf("mna: transient system singular at dt=%g", hs)
					}
					jacFresh = true
				}
			}
		}
		u0, u1 := opts.Input(t0), opts.Input(t1)

		// cdx = C·x'_n = b(t_n) − G_lin·x_n − i_sat(x_n).
		for r := range ts.cdx {
			ts.cdx[r] = ts.bReal[r] * u0
		}
		matVecSub(ts.cdx, pat, ts.gv, ts.x)
		addSatCurrents(ts.cdx, sats, ts.x, -1, nil)

		// rhs = b(t_{n+1}) + (2C/h)·x_n + C·x'_n, with the history terms
		// masked to rows that have capacitor stamps (algebraic rows stay
		// exact collocations of the new time point).
		for r := range ts.cx {
			ts.cx[r] = 0
		}
		matVecAdd(ts.cx, pat, ts.cv, ts.x)
		rh := 2 / hs
		for r := range ts.rhs {
			v := ts.bReal[r] * u1
			if ts.hasC[r] {
				v += rh*ts.cx[r] + ts.cdx[r]
			}
			ts.rhs[r] = v
		}

		if len(sats) == 0 {
			if err := ts.lu.SolveInto(ts.xNew, ts.rhs); err != nil {
				return nil, err
			}
		} else {
			// Newton on F(x) = (G_lin + 2C/h)x + i_sat(x) − rhs = 0, with
			// the previous step as predictor and a drift-gated frozen
			// Jacobian (see jacDriftTol).
			copy(ts.xNew, ts.x)
			converged := false
			for it := 0; it < opts.MaxNewton; it++ {
				for r := range ts.f {
					ts.f[r] = -ts.rhs[r]
				}
				matVecAdd(ts.f, pat, ts.aBase, ts.xNew)
				addSatCurrents(ts.f, sats, ts.xNew, 1, ts.satTanh)
				refresh := !jacFresh
				for si := range sats {
					geff := sats[si].gm * (1 - ts.satTanh[si]*ts.satTanh[si])
					if math.Abs(geff-ts.lastGeff[si]) > jacDriftTol*sats[si].gm {
						refresh = true
					}
				}
				if refresh {
					copy(ts.jacV, ts.aBase)
					for si := range sats {
						geff := sats[si].gm * (1 - ts.satTanh[si]*ts.satTanh[si])
						ts.lastGeff[si] = geff
						addGeffStamps(ts.jacV, &sats[si], geff)
					}
					if !ts.lu.Refactor(ts.jacV) {
						return nil, fmt.Errorf("mna: transient Newton singular at t=%g", t1)
					}
					jacFresh = true
				}
				if err := ts.lu.SolveInto(ts.dx, ts.f); err != nil {
					return nil, fmt.Errorf("mna: transient Newton singular at t=%g", t1)
				}
				if newtonStepApply(ts.xNew, ts.dx) < opts.Tol {
					converged = true
					break
				}
			}
			if !converged {
				return nil, fmt.Errorf("mna: transient Newton did not converge at t=%g", t1)
			}
		}
		copy(ts.x, ts.xNew)
		pts = append(pts, TranPoint{t1, ts.x[j]})
	}
	return pts, nil
}

// newtonStepApply applies the Newton update to x in place (x ← x − dx,
// where J·dx = F(x)) and returns the maximum relative step. The relative
// denominator is the PRE-update iterate: dividing by the post-update
// value would let a step that exactly cancels a component read as
// converged (|d|/(≈0 + ε) is huge only if ε is the floor — with the old
// post-update form, |d|/(|x−d|+ε) collapses when x−d ≈ 0 despite the
// iterate moving by its whole magnitude).
func newtonStepApply(x, dx []float64) float64 {
	maxRel := 0.0
	for i := range x {
		d := dx[i]
		rel := math.Abs(d) / (math.Abs(x[i]) + 1e-6)
		x[i] -= d
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// satDevices resolves SatLimits names to stamp geometry.
func (c *Circuit) satDevices(limits map[string]float64) ([]vccsInfo, error) {
	if len(limits) == 0 {
		return nil, nil
	}
	var out []vccsInfo
	for _, d := range c.nl.Devices {
		imax, ok := limits[d.Name]
		if !ok {
			continue
		}
		if d.Kind.String() != "G" {
			return nil, fmt.Errorf("mna: saturation limit on non-VCCS device %q", d.Name)
		}
		if imax <= 0 {
			return nil, fmt.Errorf("mna: non-positive saturation current for %q", d.Name)
		}
		idx := func(node string) int {
			if node == "0" {
				return -1
			}
			return c.nodeIdx[node]
		}
		out = append(out, vccsInfo{
			name: d.Name,
			op:   idx(d.Nodes[0]), om: idx(d.Nodes[1]),
			cp: idx(d.Nodes[2]), cm: idx(d.Nodes[3]),
			gm: d.Value, imax: imax,
		})
	}
	if len(out) != len(limits) {
		return nil, fmt.Errorf("mna: some saturation-limited devices not found in circuit")
	}
	return out, nil
}

// addGeffStamps accumulates a VCCS four-entry stamp of transconductance g
// into a pattern-aligned value array via the device's resolved slots.
func addGeffStamps(vals []float64, s *vccsInfo, g float64) {
	if i := s.slot[0]; i >= 0 {
		vals[i] += g
	}
	if i := s.slot[1]; i >= 0 {
		vals[i] -= g
	}
	if i := s.slot[2]; i >= 0 {
		vals[i] -= g
	}
	if i := s.slot[3]; i >= 0 {
		vals[i] += g
	}
}

func ctrlVoltage(x []float64, s *vccsInfo) float64 {
	v := 0.0
	if s.cp >= 0 {
		v += x[s.cp]
	}
	if s.cm >= 0 {
		v -= x[s.cm]
	}
	return v
}

// addSatCurrents accumulates w·i_sat(x) into f at the output nodes.
// Convention matches the linear stamp: current i leaves node op and
// enters om, i.e. KCL rows get +i at op and −i at om. When th is non-nil
// it receives each device's tanh operating point, from which the Newton
// loop derives the effective transconductance gm·(1 − tanh²) for free.
func addSatCurrents(f []float64, sats []vccsInfo, x []float64, w float64, th []float64) {
	for si := range sats {
		s := &sats[si]
		v := ctrlVoltage(x, s)
		t := math.Tanh(s.gm * v / s.imax)
		if th != nil {
			th[si] = t
		}
		i := s.imax * t
		if s.op >= 0 {
			f[s.op] += w * i
		}
		if s.om >= 0 {
			f[s.om] -= w * i
		}
	}
}
