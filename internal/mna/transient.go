package mna

import (
	"fmt"
	"math"
)

// Transient analysis: trapezoidal integration of the MNA DAE
// C·x'(t) + G·x(t) = b·u(t), with optional saturating transconductors.
//
// The AC model of Fig. 1(b) is linear, but slewing — the limit the
// classical large-signal figure of merit measures — is a *nonlinear*
// phenomenon: a real transconductance stage can deliver at most its bias
// current. SatLimits models this by replacing selected VCCS elements'
// i = gm·v characteristic with the smooth saturating
// i = Imax·tanh(gm·v/Imax), solved by Newton iteration at each timestep.

// TranOpts configures a transient run.
type TranOpts struct {
	TEnd float64 // end time, s
	Dt   float64 // fixed timestep, s
	// Input is the excitation waveform u(t) scaling the netlist's
	// independent sources; nil means unit step u(t) = 1 for t ≥ 0.
	Input func(t float64) float64
	// SatLimits maps VCCS device names to their maximum output current
	// (A). Devices not listed stay linear.
	SatLimits map[string]float64
	// MaxNewton bounds the Newton iterations per step (default 25).
	MaxNewton int
	// Tol is the Newton convergence tolerance on the solution update
	// (default 1e-9 relative).
	Tol float64
}

// TranPoint is one sample of the transient waveform.
type TranPoint struct {
	T float64
	V float64 // voltage of the observed node
}

// vccsInfo caches a saturating transconductor's stamp geometry.
type vccsInfo struct {
	name           string
	op, om, cp, cm int // matrix indices, -1 for ground
	gm             float64
	imax           float64
}

// Transient integrates the circuit and returns the waveform of node out.
func (c *Circuit) Transient(out string, opts TranOpts) ([]TranPoint, error) {
	j, err := c.NodeIndex(out)
	if err != nil {
		return nil, err
	}
	if opts.TEnd <= 0 || opts.Dt <= 0 || opts.Dt > opts.TEnd {
		return nil, fmt.Errorf("mna: bad transient window tEnd=%g dt=%g", opts.TEnd, opts.Dt)
	}
	if opts.Input == nil {
		opts.Input = func(t float64) float64 { return 1 }
	}
	if opts.MaxNewton <= 0 {
		opts.MaxNewton = 25
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}

	sats, err := c.satDevices(opts.SatLimits)
	if err != nil {
		return nil, err
	}

	n := c.Size()
	h := opts.Dt
	// Linear part: remove saturating VCCS stamps from G (they are applied
	// nonlinearly instead).
	gLin := c.G.Clone()
	for _, s := range sats {
		stampVCCS4(gLin, s.op, s.om, s.cp, s.cm, complex(-s.gm, 0))
	}

	// Companion-model trapezoidal form: capacitors integrate with the
	// trapezoidal rule while algebraic rows (sources, resistive nodes,
	// where the C row vanishes) stay exact at t_{n+1}:
	//
	//   (G + 2C/h)·x_{n+1} + i_sat(x_{n+1})
	//       = b(t_{n+1}) + (2C/h)·x_n + C·x'_n
	//
	// with the derivative term obtained from the previous collocation,
	// C·x'_n = b(t_n) − G·x_n − i_sat(x_n).
	aBase := NewMatrix(n)
	for r := 0; r < n; r++ {
		for cI := 0; cI < n; cI++ {
			aBase.Set(r, cI, gLin.At(r, cI)+c.C.At(r, cI)*complex(2/h, 0))
		}
	}
	var luConst *LU
	if len(sats) == 0 {
		luConst = Factor(aBase)
		if !luConst.OK() {
			return nil, fmt.Errorf("mna: transient system singular at dt=%g", h)
		}
	}

	bReal := make([]float64, n)
	for i, v := range c.b {
		bReal[i] = real(v)
	}

	// Consistent initialization at t = 0⁺: capacitor voltages start at
	// zero but the algebraic variables (source rows, resistive nodes)
	// must already satisfy their constraints. A single backward-Euler
	// micro-step from the all-zero state — (G + C/δ)x = b·u(0) with
	// δ ≪ h — pins the capacitor voltages while solving the algebraic
	// part exactly.
	x := make([]float64, n)
	{
		delta := h * 1e-9
		init := NewMatrix(n)
		for r := 0; r < n; r++ {
			for cI := 0; cI < n; cI++ {
				init.Set(r, cI, gLin.At(r, cI)+c.C.At(r, cI)/complex(delta, 0))
			}
		}
		b0 := make([]complex128, n)
		u0 := opts.Input(0)
		for i := range b0 {
			b0[i] = complex(bReal[i]*u0, 0)
		}
		if x0, err := Factor(init).Solve(b0); err == nil {
			x = toReal(x0)
		}
	}

	steps := int(math.Ceil(opts.TEnd / h))
	pts := make([]TranPoint, 0, steps+1)
	pts = append(pts, TranPoint{0, x[j]})
	gLinR := realMatrix(gLin)
	cR := realMatrix(c.C)

	for s := 1; s <= steps; s++ {
		t0 := float64(s-1) * h
		t1 := float64(s) * h
		u0, u1 := opts.Input(t0), opts.Input(t1)

		// cdx = C·x'_n = b(t_n) − G_lin·x_n − i_sat(x_n).
		cdx := make([]float64, n)
		for r := 0; r < n; r++ {
			acc := bReal[r] * u0
			for cI := 0; cI < n; cI++ {
				acc -= gLinR[r][cI] * x[cI]
			}
			cdx[r] = acc
		}
		addSatCurrents(cdx, sats, x, -1)

		// rhs = b(t_{n+1}) + (2C/h)·x_n + C·x'_n, masked to C rows for
		// the history terms (cdx is already zero on algebraic rows only
		// if the collocation held; mask explicitly for robustness).
		rhs := make([]float64, n)
		for r := 0; r < n; r++ {
			acc := bReal[r] * u1
			hasC := false
			for cI := 0; cI < n; cI++ {
				if cR[r][cI] != 0 {
					hasC = true
					acc += (2 / h) * cR[r][cI] * x[cI]
				}
			}
			if hasC {
				acc += cdx[r]
			}
			rhs[r] = acc
		}

		xNew := append([]float64(nil), x...)
		if len(sats) == 0 {
			xc, err := luConst.Solve(toComplex(rhs))
			if err != nil {
				return nil, err
			}
			xNew = toReal(xc)
		} else {
			// Newton on F(x) = (G_lin + 2C/h)x + i_sat(x) − rhs = 0.
			converged := false
			for it := 0; it < opts.MaxNewton; it++ {
				f := make([]float64, n)
				for r := 0; r < n; r++ {
					acc := -rhs[r]
					for cI := 0; cI < n; cI++ {
						acc += (gLinR[r][cI] + (2/h)*cR[r][cI]) * xNew[cI]
					}
					f[r] = acc
				}
				addSatCurrents(f, sats, xNew, 1)
				// Jacobian = aBase + d i_sat/dx.
				jac := aBase.Clone()
				for _, sd := range sats {
					v := ctrlVoltage(xNew, sd)
					geff := sd.gm * sech2(sd.gm*v/sd.imax)
					stampVCCS4(jac, sd.op, sd.om, sd.cp, sd.cm, complex(geff, 0))
				}
				lu := Factor(jac)
				dx, err := lu.Solve(toComplex(negate(f)))
				if err != nil {
					return nil, fmt.Errorf("mna: transient Newton singular at t=%g", t1)
				}
				maxRel := 0.0
				for i := range xNew {
					d := real(dx[i])
					xNew[i] += d
					rel := math.Abs(d) / (math.Abs(xNew[i]) + 1e-6)
					if rel > maxRel {
						maxRel = rel
					}
				}
				if maxRel < opts.Tol {
					converged = true
					break
				}
			}
			if !converged {
				return nil, fmt.Errorf("mna: transient Newton did not converge at t=%g", t1)
			}
		}
		x = xNew
		pts = append(pts, TranPoint{t1, x[j]})
	}
	return pts, nil
}

// satDevices resolves SatLimits names to stamp geometry.
func (c *Circuit) satDevices(limits map[string]float64) ([]vccsInfo, error) {
	if len(limits) == 0 {
		return nil, nil
	}
	var out []vccsInfo
	for _, d := range c.nl.Devices {
		imax, ok := limits[d.Name]
		if !ok {
			continue
		}
		if d.Kind.String() != "G" {
			return nil, fmt.Errorf("mna: saturation limit on non-VCCS device %q", d.Name)
		}
		if imax <= 0 {
			return nil, fmt.Errorf("mna: non-positive saturation current for %q", d.Name)
		}
		idx := func(node string) int {
			if node == "0" {
				return -1
			}
			return c.nodeIdx[node]
		}
		out = append(out, vccsInfo{
			name: d.Name,
			op:   idx(d.Nodes[0]), om: idx(d.Nodes[1]),
			cp: idx(d.Nodes[2]), cm: idx(d.Nodes[3]),
			gm: d.Value, imax: imax,
		})
	}
	if len(out) != len(limits) {
		return nil, fmt.Errorf("mna: some saturation-limited devices not found in circuit")
	}
	return out, nil
}

// stampVCCS4 adds the four-entry VCCS pattern with transconductance g.
func stampVCCS4(m *Matrix, op, om, cp, cm int, g complex128) {
	add := func(r, cl int, v complex128) {
		if r >= 0 && cl >= 0 {
			m.Add(r, cl, v)
		}
	}
	add(op, cp, g)
	add(op, cm, -g)
	add(om, cp, -g)
	add(om, cm, g)
}

func ctrlVoltage(x []float64, s vccsInfo) float64 {
	v := 0.0
	if s.cp >= 0 {
		v += x[s.cp]
	}
	if s.cm >= 0 {
		v -= x[s.cm]
	}
	return v
}

// addSatCurrents accumulates w·i_sat(x) into f at the output nodes.
// Convention matches the linear stamp: current i leaves node op and
// enters om, i.e. KCL rows get +i at op and −i at om.
func addSatCurrents(f []float64, sats []vccsInfo, x []float64, w float64) {
	for _, s := range sats {
		v := ctrlVoltage(x, s)
		i := s.imax * math.Tanh(s.gm*v/s.imax)
		if s.op >= 0 {
			f[s.op] += w * i
		}
		if s.om >= 0 {
			f[s.om] -= w * i
		}
	}
}

func sech2(x float64) float64 {
	c := math.Cosh(x)
	return 1 / (c * c)
}

func realMatrix(m *Matrix) [][]float64 {
	out := make([][]float64, m.N)
	for r := 0; r < m.N; r++ {
		out[r] = make([]float64, m.N)
		for cI := 0; cI < m.N; cI++ {
			out[r][cI] = real(m.At(r, cI))
		}
	}
	return out
}

func toComplex(v []float64) []complex128 {
	out := make([]complex128, len(v))
	for i, x := range v {
		out[i] = complex(x, 0)
	}
	return out
}

func toReal(v []complex128) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = real(x)
	}
	return out
}

func negate(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}
