// Package mna implements small-signal AC analysis of linear circuits by
// Modified Nodal Analysis over complex arithmetic. It is the in-repo
// replacement for the Cadence Spectre AC analyses the paper relies on
// (§4.1.3): it stamps R, C, VCCS, VCVS, V and I elements into
// A(s) = G + sC, solves A(jω)x = b across a frequency sweep, and extracts
// poles and zeros as the roots of det A(s) and of the Cramer numerator,
// using scaled LU determinants and Aberth–Ehrlich simultaneous iteration.
package mna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense complex matrix.
type Matrix struct {
	N    int
	data []complex128
}

// NewMatrix returns an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, data: make([]complex128, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.data[i*m.N+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v complex128) { m.data[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.data, m.data)
	return c
}

// AddScaled sets m = a + s·b elementwise (a, b, m must have equal size).
func (m *Matrix) AddScaled(a, b *Matrix, s complex128) {
	for i := range m.data {
		m.data[i] = a.data[i] + s*b.data[i]
	}
}

// ScaledDet is a complex determinant held as mant·2^exp with |mant| kept
// near 1, so products of many pivots can neither overflow nor underflow.
type ScaledDet struct {
	Mant complex128
	Exp  int
}

// Zero reports whether the determinant is exactly zero.
func (d ScaledDet) Zero() bool { return d.Mant == 0 }

// Ratio returns d/e as a plain complex128 (used for Newton steps where the
// exponents nearly cancel).
func (d ScaledDet) Ratio(e ScaledDet) complex128 {
	if e.Zero() {
		return cmplx.Inf()
	}
	r := d.Mant / e.Mant
	// Scaling by 2^k is exact; Ldexp avoids a Pow call on the hot path.
	k := d.Exp - e.Exp
	return complex(math.Ldexp(real(r), k), math.Ldexp(imag(r), k))
}

// Log10Mag returns log10|d|.
func (d ScaledDet) Log10Mag() float64 {
	if d.Zero() {
		return math.Inf(-1)
	}
	return math.Log10(cmplx.Abs(d.Mant)) + float64(d.Exp)*math.Log10(2)
}

func normalizeDet(m complex128, e int) (complex128, int) {
	// The max-norm is enough to pick a scaling exponent (any norm keeps
	// |mant| within a factor of 2 of 1), and Ldexp scaling by 2^-ex is
	// exact — no hypot, no Pow.
	a := math.Abs(real(m))
	if b := math.Abs(imag(m)); b > a {
		a = b
	}
	if a == 0 {
		return 0, 0
	}
	_, ex := math.Frexp(a)
	return complex(math.Ldexp(real(m), -ex), math.Ldexp(imag(m), -ex)), e + ex
}

// abs1 is the 1-norm |re|+|im|, a cheap stand-in for cmplx.Abs wherever
// only relative magnitude ordering matters.
func abs1(z complex128) float64 {
	return math.Abs(real(z)) + math.Abs(imag(z))
}

// LU holds an in-place LU factorization with partial pivoting. A zero LU
// is ready for FactorInto; its pivot buffer is reused across refactors.
type LU struct {
	m     *Matrix
	pivot []int
	idiag []complex128 // reciprocal U diagonal, filled during factor()
	sign  int
	ok    bool
}

// Factor computes the LU factorization of a copy of a. Singular (to working
// precision) matrices are flagged; Solve will then fail but Det returns a
// (possibly zero) determinant.
func Factor(a *Matrix) *LU {
	lu := &LU{}
	lu.FactorInto(a.Clone())
	return lu
}

// FactorInto factors a in place: a's storage is overwritten with the L and
// U factors and the LU borrows it (no copy). The pivot buffer is reused
// when it is large enough, so repeated FactorInto calls on same-sized
// matrices allocate nothing.
func (lu *LU) FactorInto(a *Matrix) {
	if cap(lu.pivot) < a.N {
		lu.pivot = make([]int, a.N)
	}
	if cap(lu.idiag) < a.N {
		lu.idiag = make([]complex128, a.N)
	}
	lu.pivot = lu.pivot[:a.N]
	lu.idiag = lu.idiag[:a.N]
	lu.m, lu.sign, lu.ok = a, 1, true
	lu.factor()
}

func (lu *LU) factor() {
	n := lu.m.N
	d := lu.m.data
	for k := 0; k < n; k++ {
		// Partial pivot on the 1-norm |re|+|im|: any norm is valid for
		// pivot selection and it avoids hypot in the innermost search.
		p, best := k, abs1(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := abs1(d[i*n+k]); v > best {
				p, best = i, v
			}
		}
		lu.pivot[k] = p
		if p != k {
			rk, rp := d[k*n:k*n+n], d[p*n:p*n+n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			lu.sign = -lu.sign
		}
		pv := d[k*n+k]
		if pv == 0 {
			lu.ok = false
			lu.idiag[k] = 0
			continue
		}
		rowk := d[k*n : k*n+n]
		ipv := 1 / pv // one division per column, multiplies below
		lu.idiag[k] = ipv
		for i := k + 1; i < n; i++ {
			rowi := d[i*n : i*n+n]
			f := rowi[k] * ipv
			rowi[k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				rowi[j] -= f * rowk[j]
			}
		}
	}
}

// OK reports whether the factorization succeeded (matrix nonsingular).
func (lu *LU) OK() bool { return lu.ok }

// Det returns the determinant in scaled form.
func (lu *LU) Det() ScaledDet {
	mant := complex(float64(lu.sign), 0)
	exp := 0
	for k := 0; k < lu.m.N; k++ {
		mant *= lu.m.At(k, k)
		mant, exp = normalizeDet(mant, exp)
		if mant == 0 {
			return ScaledDet{}
		}
	}
	return ScaledDet{mant, exp}
}

// Solve computes x solving Ax = b (b is not modified).
func (lu *LU) Solve(b []complex128) ([]complex128, error) {
	x := make([]complex128, len(b))
	if err := lu.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves Ax = b into the caller-provided x (len(x) == len(b) ==
// N; x and b may be the same slice). b is otherwise not modified. It
// performs no allocations.
func (lu *LU) SolveInto(x, b []complex128) error {
	if !lu.ok {
		return fmt.Errorf("mna: singular matrix")
	}
	n := lu.m.N
	if len(b) != n || len(x) != n {
		return fmt.Errorf("mna: rhs length %d/%d, want %d", len(b), len(x), n)
	}
	copy(x, b)
	d := lu.m.data
	// apply pivots
	for k := 0; k < n; k++ {
		p := lu.pivot[k]
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// forward substitution (L has unit diagonal)
	for i := 1; i < n; i++ {
		row := d[i*n : i*n+n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// back substitution (reciprocal diagonal precomputed by factor)
	for i := n - 1; i >= 0; i-- {
		row := d[i*n : i*n+n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s * lu.idiag[i]
	}
	return nil
}

// Det computes det(a) directly.
func Det(a *Matrix) ScaledDet { return Factor(a).Det() }
