// Package mna implements small-signal AC analysis of linear circuits by
// Modified Nodal Analysis over complex arithmetic. It is the in-repo
// replacement for the Cadence Spectre AC analyses the paper relies on
// (§4.1.3): it stamps R, C, VCCS, VCVS, V and I elements into
// A(s) = G + sC, solves A(jω)x = b across a frequency sweep, and extracts
// poles and zeros as the roots of det A(s) and of the Cramer numerator,
// using scaled LU determinants and Aberth–Ehrlich simultaneous iteration.
package mna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense complex matrix.
type Matrix struct {
	N    int
	data []complex128
}

// NewMatrix returns an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, data: make([]complex128, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.data[i*m.N+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v complex128) { m.data[i*m.N+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.data, m.data)
	return c
}

// AddScaled sets m = a + s·b elementwise (a, b, m must have equal size).
func (m *Matrix) AddScaled(a, b *Matrix, s complex128) {
	for i := range m.data {
		m.data[i] = a.data[i] + s*b.data[i]
	}
}

// ScaledDet is a complex determinant held as mant·2^exp with |mant| kept
// near 1, so products of many pivots can neither overflow nor underflow.
type ScaledDet struct {
	Mant complex128
	Exp  int
}

// Zero reports whether the determinant is exactly zero.
func (d ScaledDet) Zero() bool { return d.Mant == 0 }

// Ratio returns d/e as a plain complex128 (used for Newton steps where the
// exponents nearly cancel).
func (d ScaledDet) Ratio(e ScaledDet) complex128 {
	if e.Zero() {
		return cmplx.Inf()
	}
	return d.Mant / e.Mant * complex(math.Pow(2, float64(d.Exp-e.Exp)), 0)
}

// Log10Mag returns log10|d|.
func (d ScaledDet) Log10Mag() float64 {
	if d.Zero() {
		return math.Inf(-1)
	}
	return math.Log10(cmplx.Abs(d.Mant)) + float64(d.Exp)*math.Log10(2)
}

func normalizeDet(m complex128, e int) (complex128, int) {
	a := cmplx.Abs(m)
	if a == 0 {
		return 0, 0
	}
	_, ex := math.Frexp(a)
	return m * complex(math.Pow(2, float64(-ex)), 0), e + ex
}

// LU holds an in-place LU factorization with partial pivoting.
type LU struct {
	m     *Matrix
	pivot []int
	sign  int
	ok    bool
}

// Factor computes the LU factorization of a copy of a. Singular (to working
// precision) matrices are flagged; Solve will then fail but Det returns a
// (possibly zero) determinant.
func Factor(a *Matrix) *LU {
	n := a.N
	lu := &LU{m: a.Clone(), pivot: make([]int, n), sign: 1, ok: true}
	m := lu.m
	for k := 0; k < n; k++ {
		// partial pivot
		p, best := k, cmplx.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(m.At(i, k)); v > best {
				p, best = i, v
			}
		}
		lu.pivot[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				vk, vp := m.At(k, j), m.At(p, j)
				m.Set(k, j, vp)
				m.Set(p, j, vk)
			}
			lu.sign = -lu.sign
		}
		pv := m.At(k, k)
		if pv == 0 {
			lu.ok = false
			continue
		}
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) / pv
			m.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				m.Add(i, j, -f*m.At(k, j))
			}
		}
	}
	return lu
}

// OK reports whether the factorization succeeded (matrix nonsingular).
func (lu *LU) OK() bool { return lu.ok }

// Det returns the determinant in scaled form.
func (lu *LU) Det() ScaledDet {
	mant := complex(float64(lu.sign), 0)
	exp := 0
	for k := 0; k < lu.m.N; k++ {
		mant *= lu.m.At(k, k)
		mant, exp = normalizeDet(mant, exp)
		if mant == 0 {
			return ScaledDet{}
		}
	}
	return ScaledDet{mant, exp}
}

// Solve computes x solving Ax = b (b is not modified).
func (lu *LU) Solve(b []complex128) ([]complex128, error) {
	if !lu.ok {
		return nil, fmt.Errorf("mna: singular matrix")
	}
	n := lu.m.N
	if len(b) != n {
		return nil, fmt.Errorf("mna: rhs length %d, want %d", len(b), n)
	}
	x := append([]complex128(nil), b...)
	// apply pivots
	for k := 0; k < n; k++ {
		p := lu.pivot[k]
		if p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// forward substitution (L has unit diagonal)
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= lu.m.At(i, j) * x[j]
		}
		x[i] = s
	}
	// back substitution
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu.m.At(i, j) * x[j]
		}
		x[i] = s / lu.m.At(i, i)
	}
	return x, nil
}

// Det computes det(a) directly.
func Det(a *Matrix) ScaledDet { return Factor(a).Det() }
