//go:build !race

package mna

const raceEnabled = false
