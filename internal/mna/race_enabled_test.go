//go:build race

package mna

// raceEnabled skips steady-state allocation assertions under the race
// detector, which deliberately defeats sync.Pool caching.
const raceEnabled = true
