package mna

import (
	"fmt"
	"math"
	"sort"
)

// Sparse MNA path: CSC storage assembled from the netlist stamps, a
// Markowitz-style minimum-degree ordering, and an LU factorization split
// into a pattern-analysis phase done once per circuit and a numeric
// refactorization done per evaluation point. The split exploits the one
// invariant every repeated-solve workload shares — AC sweep points,
// transient steps, Monte-Carlo samples, and process corners all change
// matrix *values*, never the sparsity *pattern* — so the symbolic work
// (ordering, reach sets, fill-in, pivot sequence) is paid once and each
// subsequent point is a straight numeric replay with zero allocations.
//
// The design follows the classic SPICE/KLU recipe: the first Factor runs
// left-looking Gilbert–Peierls elimination with partial pivoting and
// records the pivot order plus the final L/U structure; Refactor replays
// that exact schedule on new values and falls back to a full repivoting
// Factor only when a recorded pivot degrades past a threshold.

// Pattern is an immutable CSC sparsity pattern: the structural nonzero
// positions of an N×N matrix, column-major, rows sorted within a column.
// Patterns are shared freely across matrices and factorizations (a
// compiled Circuit and all its Restamped variants use one Pattern).
type Pattern struct {
	N      int
	ColPtr []int // len N+1
	Rows   []int // len nnz, row indices per column, ascending
}

// NewPattern builds a pattern from (row, col) entry pairs (duplicates are
// merged). Entries must lie in [0, n).
func NewPattern(n int, rows, cols []int) *Pattern {
	if len(rows) != len(cols) {
		panic("mna: NewPattern rows/cols length mismatch")
	}
	keys := make([]int, 0, len(rows))
	for i := range rows {
		if rows[i] < 0 || rows[i] >= n || cols[i] < 0 || cols[i] >= n {
			panic(fmt.Sprintf("mna: pattern entry (%d,%d) outside %d×%d", rows[i], cols[i], n, n))
		}
		keys = append(keys, cols[i]*n+rows[i])
	}
	sort.Ints(keys)
	p := &Pattern{N: n, ColPtr: make([]int, n+1)}
	prev := -1
	for _, k := range keys {
		if k == prev {
			continue
		}
		prev = k
		p.Rows = append(p.Rows, k%n)
		p.ColPtr[k/n+1]++
	}
	for c := 0; c < n; c++ {
		p.ColPtr[c+1] += p.ColPtr[c]
	}
	return p
}

// NNZ returns the structural nonzero count.
func (p *Pattern) NNZ() int { return len(p.Rows) }

// Index returns the value-array index of entry (r, c), or -1 if the
// position is not part of the pattern.
func (p *Pattern) Index(r, c int) int {
	lo, hi := p.ColPtr[c], p.ColPtr[c+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < p.ColPtr[c+1] && p.Rows[lo] == r {
		return lo
	}
	return -1
}

// minDegreeOrder computes an elimination order by greedy minimum degree on
// the symmetrized pattern — the symmetric specialization of Markowitz
// ordering. Ties break on the lowest node index so the order (and hence
// every downstream factorization) is deterministic.
func minDegreeOrder(p *Pattern) []int {
	n := p.N
	adj := make([][]int, n)
	seen := make([]bool, n)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for c := 0; c < n; c++ {
		for i := p.ColPtr[c]; i < p.ColPtr[c+1]; i++ {
			addEdge(p.Rows[i], c)
		}
	}
	// Dedupe adjacency.
	for v := 0; v < n; v++ {
		out := adj[v][:0]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
		adj[v] = out
		for _, u := range out {
			seen[u] = false
		}
	}
	order := make([]int, 0, n)
	dead := make([]bool, n)
	for len(order) < n {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if dead[v] {
				continue
			}
			deg := 0
			for _, u := range adj[v] {
				if !dead[u] {
					deg++
				}
			}
			if deg < bestDeg {
				best, bestDeg = v, deg
			}
		}
		// Eliminate: surviving neighbours of best become a clique.
		dead[best] = true
		order = append(order, best)
		live := adj[best][:0]
		for _, u := range adj[best] {
			if !dead[u] {
				live = append(live, u)
			}
		}
		adj[best] = live
		for i, a := range live {
			for _, b := range live[i+1:] {
				// Skip existing edges to bound growth.
				has := false
				for _, u := range adj[a] {
					if u == b {
						has = true
						break
					}
				}
				if !has {
					addEdge(a, b)
				}
			}
		}
	}
	return order
}

// luScalar is the element type of a sparse factorization: the transient
// engine instantiates it over float64, the AC/noise path over complex128.
type luScalar interface {
	~float64 | ~complex128
}

// refactorPivTol is the relative pivot-degradation threshold: a Refactor
// replay whose recorded pivot falls below this fraction of the largest
// candidate magnitude abandons the replay and repivots from scratch.
const refactorPivTol = 1e-6

// SparseLU is a sparse LU factorization with a reusable symbolic phase.
// Typical use:
//
//	var lu SparseLU[float64]
//	lu.Analyze(pat, absReal)     // once per pattern: ordering + scratch
//	lu.Factor(vals)              // first point: pivoting factorization
//	lu.Refactor(vals2)           // every later point: numeric replay
//	lu.SolveInto(x, b)
//
// A SparseLU is single-goroutine scratch, exactly like the dense LU: give
// each worker its own (the Workspace pool does).
type SparseLU[T luScalar] struct {
	pat *Pattern
	abs func(T) float64
	q   []int // column order (minimum degree)

	pinv []int // original row -> pivot position
	prow []int // pivot position -> original row

	// U: per pivot column k, the topologically ordered update sequence of
	// earlier pivot columns c (< k); uVals aligned. uDiagR holds 1/pivot.
	uPtr   []int
	uCols  []int
	uVals  []T
	uDiag  []T
	uDiagR []T
	// L: per pivot column k, pivot-space rows (> k) with multipliers.
	lPtr  []int
	lRows []int
	lVals []T

	// scratch
	w     []T   // dense accumulator, kept all-zero between columns
	y     []T   // solve buffer
	mark  []int // DFS visit epochs
	epoch int
	stack []int // DFS node stack
	pos   []int // DFS per-node child cursor
	topo  []int // reach in topological order
	cand  []int // unpivoted candidate rows of the current column

	factored bool
	ok       bool
}

// absReal and absCmplx are the magnitude callbacks for the two
// instantiations (the 1-norm is enough for pivot ordering, as in the
// dense LU).
func absReal(v float64) float64 { return math.Abs(v) }

func absCmplx(v complex128) float64 { return abs1(v) }

// Analyze binds the factorization to a pattern: computes the elimination
// order and sizes the scratch. It must be called before Factor/Refactor
// and may be called again to rebind to a different pattern.
func (lu *SparseLU[T]) Analyze(pat *Pattern, abs func(T) float64) {
	n := pat.N
	lu.pat, lu.abs = pat, abs
	lu.q = minDegreeOrder(pat)
	grow := func(s []int) []int {
		if cap(s) < n {
			return make([]int, n)
		}
		return s[:n]
	}
	lu.pinv, lu.prow = grow(lu.pinv), grow(lu.prow)
	lu.mark, lu.pos, lu.topo = grow(lu.mark), grow(lu.pos), grow(lu.topo)
	lu.stack = lu.stack[:0]
	if cap(lu.w) < n {
		lu.w = make([]T, n)
		lu.y = make([]T, n)
	}
	lu.w, lu.y = lu.w[:n], lu.y[:n]
	for i := range lu.w {
		lu.w[i] = 0
		lu.mark[i] = 0
	}
	lu.epoch = 0
	if cap(lu.uPtr) < n+1 {
		lu.uPtr = make([]int, n+1)
		lu.lPtr = make([]int, n+1)
	}
	lu.uPtr, lu.lPtr = lu.uPtr[:n+1], lu.lPtr[:n+1]
	if cap(lu.uDiag) < n {
		lu.uDiag = make([]T, n)
		lu.uDiagR = make([]T, n)
	}
	lu.uDiag, lu.uDiagR = lu.uDiag[:n], lu.uDiagR[:n]
	lu.factored, lu.ok = false, false
}

// OK reports whether the last Factor/Refactor succeeded.
func (lu *SparseLU[T]) OK() bool { return lu.ok }

// Factor performs the full pivoting factorization of the pattern-aligned
// values. It records the pivot sequence and the L/U structure for later
// Refactor replays. Returns false (and marks the LU not-OK) on a
// structurally or numerically singular matrix.
func (lu *SparseLU[T]) Factor(vals []T) bool {
	n := lu.pat.N
	for i := 0; i < n; i++ {
		lu.pinv[i], lu.prow[i] = -1, -1
	}
	lu.uCols, lu.uVals = lu.uCols[:0], lu.uVals[:0]
	lu.lRows, lu.lVals = lu.lRows[:0], lu.lVals[:0]
	lu.factored, lu.ok = false, false

	for k := 0; k < n; k++ {
		j := lu.q[k]
		top := lu.reach(j)
		// Numeric left-looking solve: scatter A(:,j), apply each pivoted
		// column of the reach in topological order.
		for i := lu.pat.ColPtr[j]; i < lu.pat.ColPtr[j+1]; i++ {
			lu.w[lu.pat.Rows[i]] = vals[i]
		}
		lu.uPtr[k] = len(lu.uCols)
		lu.cand = lu.cand[:0]
		for t := top; t < n; t++ {
			r := lu.topo[t]
			c := lu.pinv[r]
			if c < 0 {
				lu.cand = append(lu.cand, r)
				continue
			}
			v := lu.w[r]
			lu.uCols = append(lu.uCols, c)
			lu.uVals = append(lu.uVals, v)
			if v != 0 {
				for i := lu.lPtr[c]; i < lu.lPtr[c+1]; i++ {
					lu.w[lu.lRows[i]] -= v * lu.lVals[i]
				}
			}
		}
		// Partial pivot over the unpivoted candidates.
		piv, best := -1, 0.0
		for _, r := range lu.cand {
			if a := lu.abs(lu.w[r]); piv < 0 || a > best {
				piv, best = r, a
			}
		}
		if piv < 0 || best == 0 {
			// Structurally or numerically singular: reset scratch and bail.
			for t := top; t < n; t++ {
				lu.w[lu.topo[t]] = 0
			}
			lu.lPtr[k+1] = len(lu.lRows)
			lu.uPtr[k] = len(lu.uCols)
			return false
		}
		lu.pinv[piv], lu.prow[k] = k, piv
		pv := lu.w[piv]
		lu.uDiag[k] = pv
		lu.uDiagR[k] = 1 / pv
		lu.lPtr[k] = len(lu.lRows)
		for _, r := range lu.cand {
			if r == piv {
				continue
			}
			lu.lRows = append(lu.lRows, r)
			lu.lVals = append(lu.lVals, lu.w[r]*lu.uDiagR[k])
		}
		lu.lPtr[k+1] = len(lu.lRows)
		for t := top; t < n; t++ {
			lu.w[lu.topo[t]] = 0
		}
	}
	lu.uPtr[n] = len(lu.uCols)
	// Finalize: convert L row indices to pivot space so Refactor and the
	// solves run entirely on the permuted system.
	for i, r := range lu.lRows {
		lu.lRows[i] = lu.pinv[r]
	}
	lu.factored, lu.ok = true, true
	return true
}

// reach runs an iterative DFS from the rows of pattern column j through
// the already-built L columns, filling lu.topo[top..n-1] with the reach in
// topological order (CSparse-style) and returning top. During Factor the
// L structure is indexed by original rows, which is exactly the space the
// DFS walks in.
func (lu *SparseLU[T]) reach(j int) int {
	n := lu.pat.N
	lu.epoch++
	top := n
	for i := lu.pat.ColPtr[j]; i < lu.pat.ColPtr[j+1]; i++ {
		r := lu.pat.Rows[i]
		if lu.mark[r] == lu.epoch {
			continue
		}
		lu.stack = append(lu.stack, r)
		for len(lu.stack) > 0 {
			r := lu.stack[len(lu.stack)-1]
			if lu.mark[r] != lu.epoch {
				lu.mark[r] = lu.epoch
				if c := lu.pinv[r]; c >= 0 {
					lu.pos[r] = lu.lPtr[c]
				} else {
					lu.pos[r] = -1 // unpivoted row: leaf
				}
			}
			advanced := false
			if c := lu.pinv[r]; c >= 0 {
				for lu.pos[r] < lu.lPtr[c+1] {
					child := lu.lRows[lu.pos[r]]
					lu.pos[r]++
					if lu.mark[child] != lu.epoch {
						lu.stack = append(lu.stack, child)
						advanced = true
						break
					}
				}
			}
			if !advanced {
				lu.stack = lu.stack[:len(lu.stack)-1]
				top--
				lu.topo[top] = r
			}
		}
	}
	return top
}

// Refactor replays the recorded elimination schedule on new pattern-aligned
// values: no ordering, no reach, no pivot search — a pure numeric pass with
// zero allocations. If a recorded pivot has degraded below refactorPivTol
// of its column's largest candidate (the values moved too far from the ones
// the pivot sequence was chosen for), it transparently falls back to a full
// repivoting Factor.
func (lu *SparseLU[T]) Refactor(vals []T) bool {
	if !lu.factored {
		return lu.Factor(vals)
	}
	n := lu.pat.N
	lu.ok = false
	for k := 0; k < n; k++ {
		j := lu.q[k]
		for i := lu.pat.ColPtr[j]; i < lu.pat.ColPtr[j+1]; i++ {
			lu.w[lu.pinv[lu.pat.Rows[i]]] += vals[i]
		}
		for t := lu.uPtr[k]; t < lu.uPtr[k+1]; t++ {
			c := lu.uCols[t]
			v := lu.w[c]
			lu.uVals[t] = v
			if v != 0 {
				for i := lu.lPtr[c]; i < lu.lPtr[c+1]; i++ {
					lu.w[lu.lRows[i]] -= v * lu.lVals[i]
				}
			}
		}
		pv := lu.w[k]
		best := lu.abs(pv)
		for i := lu.lPtr[k]; i < lu.lPtr[k+1]; i++ {
			if a := lu.abs(lu.w[lu.lRows[i]]); a > best {
				best = a
			}
		}
		if pv == 0 || lu.abs(pv) < refactorPivTol*best {
			// Recorded pivot no longer viable: clear scratch and repivot.
			lu.w[k] = 0
			for t := lu.uPtr[k]; t < lu.uPtr[k+1]; t++ {
				lu.w[lu.uCols[t]] = 0
			}
			for i := lu.lPtr[k]; i < lu.lPtr[k+1]; i++ {
				lu.w[lu.lRows[i]] = 0
			}
			return lu.Factor(vals)
		}
		lu.uDiag[k] = pv
		lu.uDiagR[k] = 1 / pv
		for i := lu.lPtr[k]; i < lu.lPtr[k+1]; i++ {
			r := lu.lRows[i]
			lu.lVals[i] = lu.w[r] * lu.uDiagR[k]
			lu.w[r] = 0
		}
		lu.w[k] = 0
		for t := lu.uPtr[k]; t < lu.uPtr[k+1]; t++ {
			lu.w[lu.uCols[t]] = 0
		}
	}
	lu.ok = true
	return true
}

// SolveInto solves Ax = b into x (len n each; x and b may alias). It
// performs no allocations.
func (lu *SparseLU[T]) SolveInto(x, b []T) error {
	if !lu.ok {
		return fmt.Errorf("mna: singular sparse matrix")
	}
	n := lu.pat.N
	if len(x) != n || len(b) != n {
		return fmt.Errorf("mna: sparse rhs length %d/%d, want %d", len(b), len(x), n)
	}
	y := lu.y
	for k := 0; k < n; k++ {
		y[k] = b[lu.prow[k]]
	}
	// Forward (L, unit diagonal, pivot space).
	for k := 0; k < n; k++ {
		v := y[k]
		if v == 0 {
			continue
		}
		for i := lu.lPtr[k]; i < lu.lPtr[k+1]; i++ {
			y[lu.lRows[i]] -= lu.lVals[i] * v
		}
	}
	// Backward (U). Column k's off-diagonal entries live at rows uCols[t].
	for k := n - 1; k >= 0; k-- {
		v := y[k] * lu.uDiagR[k]
		y[k] = v
		if v == 0 {
			continue
		}
		for t := lu.uPtr[k]; t < lu.uPtr[k+1]; t++ {
			y[lu.uCols[t]] -= lu.uVals[t] * v
		}
	}
	for k := 0; k < n; k++ {
		x[lu.q[k]] = y[k]
	}
	return nil
}

// matVecAdd accumulates y += A·x for a pattern-aligned CSC value array.
func matVecAdd[T luScalar](y []T, p *Pattern, vals []T, x []T) {
	for c := 0; c < p.N; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for i := p.ColPtr[c]; i < p.ColPtr[c+1]; i++ {
			y[p.Rows[i]] += vals[i] * xc
		}
	}
}

// matVecSub accumulates y -= A·x for a pattern-aligned CSC value array.
func matVecSub[T luScalar](y []T, p *Pattern, vals []T, x []T) {
	for c := 0; c < p.N; c++ {
		xc := x[c]
		if xc == 0 {
			continue
		}
		for i := p.ColPtr[c]; i < p.ColPtr[c+1]; i++ {
			y[p.Rows[i]] -= vals[i] * xc
		}
	}
}
