package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestHedgeFastPrimaryWins(t *testing.T) {
	var c Counters
	v, err := Hedge(context.Background(), 50*time.Millisecond, &c,
		func(context.Context) (string, error) { return "primary", nil },
		func(context.Context) (string, error) { return "secondary", nil })
	if err != nil || v != "primary" {
		t.Fatalf("v=%q err=%v", v, err)
	}
	if c.Snapshot().Hedges != 0 {
		t.Error("fast primary should not launch the hedge")
	}
}

func TestHedgeSlowPrimaryLosesToSecondary(t *testing.T) {
	var c Counters
	v, err := Hedge(context.Background(), time.Millisecond, &c,
		func(ctx context.Context) (string, error) {
			select {
			case <-time.After(time.Minute):
			case <-ctx.Done():
			}
			return "", errors.New("too slow")
		},
		func(context.Context) (string, error) { return "secondary", nil })
	if err != nil || v != "secondary" {
		t.Fatalf("v=%q err=%v", v, err)
	}
	if c.Snapshot().Hedges != 1 {
		t.Errorf("counters = %+v", c.Snapshot())
	}
}

func TestHedgeFailedPrimaryLaunchesSecondaryEarly(t *testing.T) {
	start := time.Now()
	v, err := Hedge(context.Background(), time.Minute, nil,
		func(context.Context) (string, error) { return "", errors.New("down") },
		func(context.Context) (string, error) { return "secondary", nil })
	if err != nil || v != "secondary" {
		t.Fatalf("v=%q err=%v", v, err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("hedge waited for the full delay after primary failure")
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	primaryErr := errors.New("primary down")
	_, err := Hedge(context.Background(), time.Millisecond, nil,
		func(context.Context) (string, error) { return "", primaryErr },
		func(context.Context) (string, error) { return "", errors.New("secondary down") })
	if !errors.Is(err, primaryErr) {
		t.Errorf("err = %v, want the primary's", err)
	}
}

func TestFallbackDegrades(t *testing.T) {
	var c Counters
	v, err := Fallback(context.Background(), &c,
		func(context.Context) (int, error) { return 0, errors.New("down") },
		func(context.Context) (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if c.Snapshot().Fallbacks != 1 {
		t.Errorf("counters = %+v", c.Snapshot())
	}
}

func TestFallbackSkippedOnSuccessAndCancellation(t *testing.T) {
	var c Counters
	if v, err := Fallback(context.Background(), &c,
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { return 2, nil }); v != 1 || err != nil {
		t.Errorf("healthy primary bypassed: v=%d err=%v", v, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fallback(ctx, &c,
		func(ctx context.Context) (int, error) { return 0, ctx.Err() },
		func(context.Context) (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled caller degraded anyway: %v", err)
	}
	if c.Snapshot().Fallbacks != 0 {
		t.Errorf("counters = %+v", c.Snapshot())
	}
}
