package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault is one injected fault class.
type Fault int

// The four chaos classes the injector produces, mirroring how the
// simulator/sizer/LLM tool calls misbehave in production: hard errors,
// latency spikes, hangs that only a deadline resolves, and outputs that
// parse fine but are wrong.
const (
	FaultNone Fault = iota
	FaultError
	FaultLatency
	FaultTimeout
	FaultCorrupt
	numFaults
)

// String names the fault class.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultTimeout:
		return "timeout"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// InjectorConfig sets the per-call fault rates. Rates are stacked, so
// ErrorRate+LatencyRate+TimeoutRate+CorruptRate should stay below 1;
// the remainder is the healthy-call probability.
type InjectorConfig struct {
	// Seed makes the fault sequence deterministic: the same seed and the
	// same call sequence reproduce the same chaos run exactly.
	Seed int64
	// ErrorRate injects a hard tool error (wrapping ErrInjected).
	ErrorRate float64
	// LatencyRate injects a latency spike of Latency before the call.
	LatencyRate float64
	// TimeoutRate injects a stall: the call blocks until its context
	// expires (or the Stall cap, whichever is first).
	TimeoutRate float64
	// CorruptRate asks the wrapper to return corrupted-but-parseable
	// output; the injector itself only reports the class.
	CorruptRate float64
	// Latency is the injected spike duration. Default 2ms.
	Latency time.Duration
	// Stall caps an injected timeout when the context has no deadline of
	// its own. Default 50ms.
	Stall time.Duration
	// Counters, when non-nil, receives an Injected event per fault.
	Counters *Counters
}

func (c InjectorConfig) withDefaults() InjectorConfig {
	if c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.Stall <= 0 {
		c.Stall = 50 * time.Millisecond
	}
	return c
}

// Injector draws faults from a seeded generator. It wraps any tool or
// model call site: callers ask Next/Apply before doing real work. A nil
// *Injector is valid and never injects anything, so chaos hooks can stay
// compiled into the production path.
type Injector struct {
	cfg InjectorConfig

	mu     sync.Mutex
	rng    *rand.Rand
	calls  int64
	counts [numFaults]int64
}

// NewInjector builds an injector.
func NewInjector(cfg InjectorConfig) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next draws the fault class for the next call to op. The draw sequence
// is deterministic in call order for a fixed seed.
func (in *Injector) Next(op string) Fault {
	if in == nil {
		return FaultNone
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls++
	u := in.rng.Float64()
	f := FaultNone
	switch c := in.cfg; {
	case u < c.ErrorRate:
		f = FaultError
	case u < c.ErrorRate+c.TimeoutRate:
		f = FaultTimeout
	case u < c.ErrorRate+c.TimeoutRate+c.CorruptRate:
		f = FaultCorrupt
	case u < c.ErrorRate+c.TimeoutRate+c.CorruptRate+c.LatencyRate:
		f = FaultLatency
	}
	in.counts[f]++
	if f != FaultNone && in.cfg.Counters != nil {
		in.cfg.Counters.Injected.Add(1)
	}
	return f
}

// Draw returns an auxiliary deterministic uniform draw, used by wrappers
// to shape corruption (which knob, which factor) reproducibly. Nil-safe.
func (in *Injector) Draw() float64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// Apply draws and executes the side-effecting fault classes: FaultError
// returns a wrapped ErrInjected, FaultTimeout blocks until ctx (or the
// Stall cap) expires and returns the deadline error, FaultLatency sleeps
// the configured spike. FaultCorrupt and FaultNone return with a nil
// error — corruption is the caller's job, on its own output.
func (in *Injector) Apply(ctx context.Context, op string) (Fault, error) {
	f := in.Next(op)
	switch f {
	case FaultError:
		return f, fmt.Errorf("resilience: %s: injected tool error: %w", op, ErrInjected)
	case FaultTimeout:
		t := time.NewTimer(in.cfg.Stall)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return f, fmt.Errorf("resilience: %s: injected stall: %w", op, ctx.Err())
		case <-t.C:
			return f, fmt.Errorf("resilience: %s: injected stall: %w", op, context.DeadlineExceeded)
		}
	case FaultLatency:
		t := time.NewTimer(in.cfg.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return f, fmt.Errorf("resilience: %s: %w", op, ctx.Err())
		case <-t.C:
		}
	}
	return f, nil
}

// Calls reports how many draws have been made.
func (in *Injector) Calls() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Counts tallies draws by fault class name (including "none").
func (in *Injector) Counts() map[string]int64 {
	out := map[string]int64{}
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for f := FaultNone; f < numFaults; f++ {
		out[f.String()] = in.counts[f]
	}
	return out
}
