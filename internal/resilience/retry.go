package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy retries an operation with exponential backoff. The jitter
// is drawn from a seeded generator, so a fixed (Seed, call sequence)
// yields a fixed delay schedule — chaos tests stay reproducible.
//
// The zero value is a valid "one attempt, no waiting" policy, which lets
// callers thread a RetryPolicy unconditionally and switch resilience on
// by configuration.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget; values below 1 mean a
	// single attempt (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; 0 retries
	// immediately.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. Default 2s.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts. Default 2.
	Multiplier float64
	// Jitter adds up to this fraction of the current delay, drawn
	// deterministically from Seed. 0 disables jitter.
	Jitter float64
	// PerAttempt, when positive, deadline-bounds each attempt; an attempt
	// exceeding it fails with context.DeadlineExceeded and the next one
	// (if budget remains) starts fresh.
	PerAttempt time.Duration
	// Seed feeds the jitter generator.
	Seed int64
	// Counters, when non-nil, receives attempt/failure/retry events.
	Counters *Counters
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Do runs fn under the policy. It stops early — without consuming the
// remaining budget — when fn succeeds, when the error is Permanent or a
// breaker short-circuit, or when the parent ctx is done. The returned
// error wraps the last attempt's error, so callers can match fault
// classes with errors.Is.
func (p RetryPolicy) Do(ctx context.Context, op string, fn func(context.Context) error) error {
	p = p.withDefaults()
	var rng *rand.Rand
	if p.Jitter > 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("resilience: %s: %w", op, cerr)
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		if p.Counters != nil {
			p.Counters.Attempts.Add(1)
		}
		err := fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		if p.Counters != nil {
			p.Counters.Failures.Add(1)
		}
		if attempt >= p.MaxAttempts || IsPermanent(err) ||
			errors.Is(err, ErrBreakerOpen) || ctx.Err() != nil {
			return fmt.Errorf("resilience: %s failed after %d attempt(s): %w", op, attempt, err)
		}
		if p.Counters != nil {
			p.Counters.Retries.Add(1)
		}
		d := delay
		if rng != nil && d > 0 {
			d += time.Duration(p.Jitter * rng.Float64() * float64(d))
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("resilience: %s cancelled during backoff: %w", op, ctx.Err())
			}
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
