package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func failing(err error) func(context.Context) error {
	return func(context.Context) error { return err }
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var c Counters
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Counters: &c, Now: clk.now})
	boom := errors.New("sim crashed")
	for i := 0; i < 3; i++ {
		if b.State() != BreakerClosed {
			t.Fatalf("opened early at failure %d", i)
		}
		_ = b.Do(context.Background(), "sim", failing(boom))
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	// Open breaker short-circuits without invoking the backend.
	called := false
	err := b.Do(context.Background(), "sim", func(context.Context) error {
		called = true
		return nil
	})
	if called {
		t.Error("open breaker let the call through")
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("err = %v, want ErrBreakerOpen", err)
	}
	s := c.Snapshot()
	if s.BreakerOpens != 1 || s.BreakerShorts != 1 {
		t.Errorf("counters = %+v", s)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.now})
	_ = b.Do(context.Background(), "sim", failing(errors.New("x")))
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	if err := b.Do(context.Background(), "sim", failing(nil)); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Errorf("state = %v after successful probe, want closed", b.State())
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.now})
	_ = b.Do(context.Background(), "sim", failing(errors.New("x")))
	clk.advance(time.Second)
	_ = b.Do(context.Background(), "sim", failing(errors.New("still down")))
	if b.State() != BreakerOpen {
		t.Errorf("state = %v after failed probe, want open again", b.State())
	}
	// And the fresh cooldown starts from the reopen.
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Errorf("state = %v after second cooldown, want half-open", b.State())
	}
}

func TestBreakerSingleProbeInFlight(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.now})
	_ = b.Do(context.Background(), "sim", failing(errors.New("x")))
	clk.advance(time.Second)

	release := make(chan struct{})
	probeStarted := make(chan struct{})
	go func() {
		_ = b.Do(context.Background(), "sim", func(context.Context) error {
			close(probeStarted)
			<-release
			return nil
		})
	}()
	<-probeStarted
	// A second call while the probe is in flight must be rejected.
	if err := b.Do(context.Background(), "sim", failing(nil)); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("concurrent probe admitted: %v", err)
	}
	close(release)
}

func TestBreakerNeutralOnCancellation(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1})
	_ = b.Do(context.Background(), "sim", failing(context.Canceled))
	if b.State() != BreakerClosed {
		t.Error("caller cancellation counted as a backend failure")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2})
	boom := errors.New("x")
	_ = b.Do(context.Background(), "sim", failing(boom))
	_ = b.Do(context.Background(), "sim", failing(nil))
	_ = b.Do(context.Background(), "sim", failing(boom))
	if b.State() != BreakerClosed {
		t.Error("non-consecutive failures opened the breaker")
	}
}

func TestNilBreakerPassesThrough(t *testing.T) {
	var b *Breaker
	called := false
	if err := b.Do(context.Background(), "sim", func(context.Context) error {
		called = true
		return nil
	}); err != nil || !called {
		t.Errorf("nil breaker: called=%v err=%v", called, err)
	}
	if b.State() != BreakerClosed {
		t.Error("nil breaker should report closed")
	}
}
