package resilience

import (
	"context"
	"time"
)

type result[T any] struct {
	v   T
	err error
}

// Hedge runs primary and, if it has not finished within delay (or fails
// before it), launches secondary and returns the first success. When
// both fail, the primary's error wins. The loser's context is cancelled
// so abandoned work does not leak a goroutine's effort.
func Hedge[T any](ctx context.Context, delay time.Duration, c *Counters,
	primary, secondary func(context.Context) (T, error)) (T, error) {
	var zero T
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan result[T], 2)
	launch := func(fn func(context.Context) (T, error)) {
		go func() {
			v, err := fn(cctx)
			ch <- result[T]{v, err}
		}()
	}
	launch(primary)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedge := func() {
		if c != nil {
			c.Hedges.Add(1)
		}
		launch(secondary)
	}

	outstanding := 1
	launched := false
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !launched {
				launched = true
				outstanding++
				hedge()
				continue
			}
			if outstanding == 0 {
				return zero, firstErr
			}
		case <-timer.C:
			if !launched {
				launched = true
				outstanding++
				hedge()
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// Fallback is the degradation step of the resilience ladder: it runs
// primary and, when that fails for any reason other than the caller
// going away, counts a degradation and runs fallback instead. A nil
// fallback reduces to the primary call.
func Fallback[T any](ctx context.Context, c *Counters,
	primary, fallback func(context.Context) (T, error)) (T, error) {
	v, err := primary(ctx)
	if err == nil || fallback == nil || ctx.Err() != nil {
		return v, err
	}
	if c != nil {
		c.Fallbacks.Add(1)
	}
	return fallback(ctx)
}
