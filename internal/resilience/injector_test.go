package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The same seed must reproduce the same fault sequence exactly — this is
// the property every chaos test leans on.
func TestInjectorDeterministicSequence(t *testing.T) {
	draw := func() []Fault {
		in := NewInjector(InjectorConfig{
			Seed: 7, ErrorRate: 0.3, TimeoutRate: 0.1, CorruptRate: 0.1, LatencyRate: 0.1,
		})
		var seq []Fault
		for i := 0; i < 200; i++ {
			seq = append(seq, in.Next("op"))
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInjectorRatesRoughlyHonored(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, ErrorRate: 0.3})
	for i := 0; i < 2000; i++ {
		in.Next("op")
	}
	counts := in.Counts()
	errs := counts[FaultError.String()]
	if errs < 450 || errs > 750 { // 0.3 ± generous tolerance over 2000 draws
		t.Errorf("error draws = %d of 2000 at rate 0.3", errs)
	}
	if in.Calls() != 2000 {
		t.Errorf("calls = %d", in.Calls())
	}
}

func TestInjectorApplyErrorWrapsSentinel(t *testing.T) {
	var c Counters
	in := NewInjector(InjectorConfig{Seed: 1, ErrorRate: 1, Counters: &c})
	f, err := in.Apply(context.Background(), "simulator")
	if f != FaultError || !errors.Is(err, ErrInjected) {
		t.Errorf("fault=%v err=%v", f, err)
	}
	if c.Snapshot().Injected != 1 {
		t.Errorf("counters = %+v", c.Snapshot())
	}
}

func TestInjectorStallHonorsContext(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, TimeoutRate: 1, Stall: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	f, err := in.Apply(ctx, "simulator")
	if f != FaultTimeout {
		t.Fatalf("fault = %v", f)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stall ignored the context deadline")
	}
}

func TestInjectorStallCapWithoutDeadline(t *testing.T) {
	in := NewInjector(InjectorConfig{Seed: 1, TimeoutRate: 1, Stall: time.Millisecond})
	_, err := in.Apply(context.Background(), "simulator")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("capped stall should report deadline, got %v", err)
	}
}

func TestNilInjectorIsHealthy(t *testing.T) {
	var in *Injector
	if f := in.Next("op"); f != FaultNone {
		t.Errorf("nil injector drew %v", f)
	}
	if f, err := in.Apply(context.Background(), "op"); f != FaultNone || err != nil {
		t.Errorf("nil injector applied %v %v", f, err)
	}
	if in.Calls() != 0 || len(in.Counts()) != 0 {
		t.Error("nil injector counted calls")
	}
}
