package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int

// The classical state machine: closed (traffic flows, failures counted)
// → open (traffic rejected) → half-open (one probe admitted) → closed on
// probe success or back to open on probe failure.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for logs and the /stats endpoint.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// BreakerConfig tunes a Breaker. Zero values take defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	// Default 5.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Default 5s.
	Cooldown time.Duration
	// Probes is the consecutive half-open successes required to close.
	// Default 1.
	Probes int
	// Counters, when non-nil, receives open/short-circuit events.
	Counters *Counters
	// Now is the clock; tests substitute a fake for deterministic
	// open → half-open transitions. Default time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold < 1 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Probes < 1 {
		c.Probes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker guarding one backend path (the MNA
// simulator, the BO sizer). A nil *Breaker is valid and passes every
// call through — resilience stays strictly opt-in.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int  // consecutive failures while closed
	okProbes int  // consecutive successes while half-open
	probing  bool // a half-open probe is in flight
	openedAt time.Time
}

// NewBreaker builds a breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the current state, applying the lazy open → half-open
// transition when the cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// maybeHalfOpen must run with b.mu held.
func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.okProbes = 0
		b.probing = false
	}
}

// Do runs fn through the breaker: rejected with a wrapped ErrBreakerOpen
// while open (or while another half-open probe is in flight), otherwise
// executed and its outcome recorded. Parent-context cancellation is
// neutral — it says nothing about the backend's health.
func (b *Breaker) Do(ctx context.Context, op string, fn func(context.Context) error) error {
	if b == nil {
		return fn(ctx)
	}
	if err := b.admit(op); err != nil {
		return err
	}
	err := fn(ctx)
	b.record(err)
	return err
}

func (b *Breaker) admit(op string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerOpen:
		if b.cfg.Counters != nil {
			b.cfg.Counters.BreakerShorts.Add(1)
		}
		return fmt.Errorf("resilience: %s: %w", op, ErrBreakerOpen)
	case BreakerHalfOpen:
		if b.probing {
			if b.cfg.Counters != nil {
				b.cfg.Counters.BreakerShorts.Add(1)
			}
			return fmt.Errorf("resilience: %s (probe in flight): %w", op, ErrBreakerOpen)
		}
		b.probing = true
	}
	return nil
}

func (b *Breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil && errors.Is(err, context.Canceled) {
		// The caller went away; the backend was never heard from.
		b.probing = false
		return
	}
	switch {
	case err == nil:
		if b.state == BreakerHalfOpen {
			b.probing = false
			b.okProbes++
			if b.okProbes >= b.cfg.Probes {
				b.state = BreakerClosed
				b.fails = 0
			}
			return
		}
		b.fails = 0
	case b.state == BreakerHalfOpen:
		b.open() // the probe failed: straight back to open
	default:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open()
		}
	}
}

// open must run with b.mu held.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.okProbes = 0
	b.probing = false
	if b.cfg.Counters != nil {
		b.cfg.Counters.BreakerOpens.Add(1)
	}
}
