package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var c Counters
	p := RetryPolicy{MaxAttempts: 4, Counters: &c}
	calls := 0
	err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	s := c.Snapshot()
	if s.Attempts != 3 || s.Failures != 2 || s.Retries != 2 {
		t.Errorf("counters = %+v", s)
	}
}

func TestRetryExhaustsBudgetWithWrappedError(t *testing.T) {
	sentinel := errors.New("backend down")
	p := RetryPolicy{MaxAttempts: 3}
	calls := 0
	err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error chain lost the cause: %v", err)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5}
	calls := 0
	err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return Permanent(errors.New("bad request"))
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !IsPermanent(err) {
		t.Error("permanence lost through wrapping")
	}
}

func TestRetryStopsOnBreakerOpen(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5}
	calls := 0
	err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return fmt.Errorf("guard: %w", ErrBreakerOpen)
	})
	if calls != 1 {
		t.Errorf("open-breaker error retried: %d calls", calls)
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("error chain lost ErrBreakerOpen: %v", err)
	}
}

func TestRetryHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(ctx, "op", func(context.Context) error {
		calls++
		cancel()
		return errors.New("fails while caller is gone")
	})
	if calls != 1 {
		t.Errorf("cancelled retry kept going: %d calls", calls)
	}
	if !errors.Is(err, context.Canceled) && err == nil {
		t.Errorf("err = %v, want cancellation surfaced", err)
	}
}

func TestRetryPerAttemptDeadline(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, PerAttempt: 5 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), "op", func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done() // first attempt hangs until its deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("second attempt should have succeeded: %v", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

// The jitter schedule must be a pure function of the seed.
func TestRetryDeterministicJitter(t *testing.T) {
	run := func() time.Duration {
		p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 1, Seed: 42}
		start := time.Now()
		_ = p.Do(context.Background(), "op", func(context.Context) error {
			return errors.New("always")
		})
		return time.Since(start)
	}
	a, b := run(), run()
	// Both runs sleep the same seeded schedule; allow generous scheduler
	// slack but catch a divergent jitter source.
	if diff := a - b; diff < -20*time.Millisecond || diff > 20*time.Millisecond {
		t.Errorf("jitter schedules diverged: %v vs %v", a, b)
	}
}

func TestZeroValuePolicyIsSingleAttempt(t *testing.T) {
	var p RetryPolicy
	calls := 0
	_ = p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return errors.New("x")
	})
	if calls != 1 {
		t.Errorf("zero-value policy made %d attempts", calls)
	}
}
