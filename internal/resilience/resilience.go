// Package resilience is the fault-tolerance layer of the Artisan
// service. The multi-agent design loop leans on tool invocations — the
// MNA simulator, the BO sizer, the calculator, the designer LLM itself —
// that in a production deployment fail, hang, or return garbage. This
// package provides the policy-driven primitives the rest of the system
// composes into a degradation ladder:
//
//   - Injector: a deterministic, seedable fault injector that wraps any
//     tool or model call site and introduces errors, latency spikes,
//     stalls (timeouts), and corrupted-but-parseable outputs at
//     configurable rates, so chaos behavior is reproducible in tests.
//   - RetryPolicy: exponential backoff with deterministic jitter and
//     per-attempt deadlines.
//   - Breaker: a circuit breaker with the classical closed → open →
//     half-open state machine, guarding the simulator and sizer paths.
//   - Hedge and Fallback: helpers for racing a slow primary against a
//     late-launched secondary, and for degrading to a cheaper path after
//     the primary is exhausted.
//   - Counters: lock-free event counters every primitive reports into,
//     surfaced by the server's /healthz and /stats endpoints.
//
// All primitives accept nil *Counters and are safe for concurrent use.
package resilience

import (
	"errors"
	"sync/atomic"
)

// Sentinel errors surfaced by the primitives. They are always wrapped
// with operation context, so match with errors.Is.
var (
	// ErrBreakerOpen rejects a call short-circuited by an open breaker.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrInjected marks a fault introduced by an Injector.
	ErrInjected = errors.New("resilience: injected fault")
)

// permanentError marks an error that retrying cannot fix.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so RetryPolicy.Do stops immediately instead of
// burning its remaining attempts. The original error stays reachable
// through errors.Is/As.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Counters aggregates fault-tolerance events across a component — one
// session, one server, one experiment sweep. All fields are safe for
// concurrent update; Snapshot copies them for reporting.
type Counters struct {
	Attempts      atomic.Int64 // operations attempted, including retries
	Failures      atomic.Int64 // attempts that returned an error
	Retries       atomic.Int64 // re-attempts after a retryable failure
	Fallbacks     atomic.Int64 // degradations to a fallback path
	BreakerOpens  atomic.Int64 // closed/half-open → open transitions
	BreakerShorts atomic.Int64 // calls rejected while the breaker was open
	Injected      atomic.Int64 // faults introduced by an Injector
	Hedges        atomic.Int64 // hedged secondary launches
}

// Snapshot is a point-in-time copy of Counters in wire-ready form.
type Snapshot struct {
	Attempts      int64 `json:"attempts"`
	Failures      int64 `json:"failures"`
	Retries       int64 `json:"retries"`
	Fallbacks     int64 `json:"fallbacks"`
	BreakerOpens  int64 `json:"breakerOpens"`
	BreakerShorts int64 `json:"breakerShorts"`
	Injected      int64 `json:"injected"`
	Hedges        int64 `json:"hedges"`
}

// Snapshot copies the counters; a nil receiver yields a zero Snapshot.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Attempts:      c.Attempts.Load(),
		Failures:      c.Failures.Load(),
		Retries:       c.Retries.Load(),
		Fallbacks:     c.Fallbacks.Load(),
		BreakerOpens:  c.BreakerOpens.Load(),
		BreakerShorts: c.BreakerShorts.Load(),
		Injected:      c.Injected.Load(),
		Hedges:        c.Hedges.Load(),
	}
}

// Merge folds a snapshot into the counters — used to roll per-session
// counters up into service-wide totals. Nil receivers are no-ops.
func (c *Counters) Merge(s Snapshot) {
	if c == nil {
		return
	}
	c.Attempts.Add(s.Attempts)
	c.Failures.Add(s.Failures)
	c.Retries.Add(s.Retries)
	c.Fallbacks.Add(s.Fallbacks)
	c.BreakerOpens.Add(s.BreakerOpens)
	c.BreakerShorts.Add(s.BreakerShorts)
	c.Injected.Add(s.Injected)
	c.Hedges.Add(s.Hedges)
}
