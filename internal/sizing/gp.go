// Package sizing implements the parameter-tuning tool of the Artisan
// workflow (Fig. 2) and the inner loop of the black-box baselines: a
// Gaussian-process Bayesian optimizer (Lyu et al. [14]) with an RBF
// kernel, expected-improvement acquisition, Latin-hypercube
// initialization, plus a Nelder–Mead simplex refiner.
package sizing

import (
	"fmt"
	"math"
	"math/rand"
)

// gp is a Gaussian-process regressor over the unit hypercube with an RBF
// kernel, fitted by Cholesky factorization.
type gp struct {
	x     [][]float64 // training inputs (normalized)
	y     []float64   // standardized targets
	mean  float64
	std   float64
	ell   float64 // lengthscale
	sigF2 float64 // signal variance
	sigN2 float64 // noise variance
	chol  [][]float64
	alpha []float64
}

func rbf(a, b []float64, ell, sigF2 float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return sigF2 * math.Exp(-0.5*d2/(ell*ell))
}

// fitGP trains the regressor; y is standardized internally.
func fitGP(x [][]float64, y []float64) (*gp, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("sizing: bad training set (%d inputs, %d targets)", n, len(y))
	}
	g := &gp{x: x, ell: 0.3, sigF2: 1.0, sigN2: 1e-4}
	// standardize
	for _, v := range y {
		g.mean += v
	}
	g.mean /= float64(n)
	for _, v := range y {
		g.std += (v - g.mean) * (v - g.mean)
	}
	g.std = math.Sqrt(g.std/float64(n)) + 1e-12
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = (v - g.mean) / g.std
	}
	// kernel matrix
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(x[i], x[j], g.ell, g.sigF2)
		}
		k[i][i] += g.sigN2
	}
	chol, err := cholesky(k)
	if err != nil {
		return nil, err
	}
	g.chol = chol
	g.alpha = cholSolve(chol, g.y)
	return g, nil
}

// predict returns the posterior mean and standard deviation at xq, in the
// original target units.
func (g *gp) predict(xq []float64) (mu, sd float64) {
	n := len(g.x)
	kstar := make([]float64, n)
	for i := range kstar {
		kstar[i] = rbf(g.x[i], xq, g.ell, g.sigF2)
	}
	m := 0.0
	for i := range kstar {
		m += kstar[i] * g.alpha[i]
	}
	// v = L⁻¹ k*
	v := forwardSolve(g.chol, kstar)
	var2 := g.sigF2 + g.sigN2
	for _, vi := range v {
		var2 -= vi * vi
	}
	if var2 < 1e-12 {
		var2 = 1e-12
	}
	return m*g.std + g.mean, math.Sqrt(var2) * g.std
}

// cholesky returns the lower-triangular factor of a symmetric
// positive-definite matrix, adding jitter on near-singularity.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	jitter := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := 0; j <= i; j++ {
				sum := a[i][j]
				if i == j {
					sum += jitter
				}
				for k := 0; k < j; k++ {
					sum -= l[i][k] * l[j][k]
				}
				if i == j {
					if sum <= 0 {
						ok = false
						break
					}
					l[i][i] = math.Sqrt(sum)
				} else {
					l[i][j] = sum / l[j][j]
				}
			}
		}
		if ok {
			return l, nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("sizing: kernel matrix not positive definite even with jitter")
}

func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l[i][j] * x[j]
		}
		x[i] = s / l[i][i]
	}
	return x
}

func backSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= l[j][i] * x[j]
		}
		x[i] = s / l[i][i]
	}
	return x
}

// cholSolve solves (L Lᵀ) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}

// expectedImprovement for maximization.
func expectedImprovement(mu, sd, best float64) float64 {
	if sd <= 0 {
		return 0
	}
	z := (mu - best) / sd
	return (mu-best)*normCDF(z) + sd*normPDF(z)
}

func normPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// latinHypercube draws n stratified points in [0,1]^d.
func latinHypercube(n, d int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			pts[i][j] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return pts
}
