package sizing

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"artisan/internal/telemetry"
)

// Problem is a bounded maximization problem. Eval may be expensive (one
// circuit simulation per call in this repository).
type Problem struct {
	Lo, Hi []float64
	Eval   func(x []float64) float64
}

// Options controls the optimizer budget.
type Options struct {
	InitSamples int // Latin-hypercube evaluations before the GP loop
	Iterations  int // BO iterations (one evaluation each)
	Candidates  int // acquisition candidates per iteration
	Seed        int64
	// Init, when non-nil, is a caller-supplied incumbent in the problem's
	// real coordinate space. It is evaluated first — before the
	// Latin-hypercube phase — so a caller with an analytic seed (the
	// white-box gm/Id engine) spends one evaluation installing it instead
	// of hoping the random design rediscovers it. Must lie within
	// [Lo, Hi]; it adds one evaluation to the run.
	Init []float64
}

// DefaultOptions is a modest budget suitable for behavioral simulation.
func DefaultOptions(seed int64) Options {
	return Options{InitSamples: 12, Iterations: 40, Candidates: 512, Seed: seed}
}

// Result reports the best point found and the evaluation history.
type Result struct {
	BestX   []float64
	BestY   float64
	Evals   int
	History []float64 // best-so-far after each evaluation
}

func (p Problem) dim() int { return len(p.Lo) }

func (p Problem) validate() error {
	if len(p.Lo) == 0 || len(p.Lo) != len(p.Hi) {
		return fmt.Errorf("sizing: bounds length mismatch (%d vs %d)", len(p.Lo), len(p.Hi))
	}
	for i := range p.Lo {
		if !(p.Lo[i] < p.Hi[i]) {
			return fmt.Errorf("sizing: bad bounds in dim %d: [%g, %g]", i, p.Lo[i], p.Hi[i])
		}
	}
	if p.Eval == nil {
		return fmt.Errorf("sizing: nil objective")
	}
	return nil
}

func (p Problem) denorm(u []float64) []float64 {
	x := make([]float64, len(u))
	for i := range u {
		x[i] = p.Lo[i] + u[i]*(p.Hi[i]-p.Lo[i])
	}
	return x
}

// Optimize runs GP-based Bayesian optimization (maximization).
func Optimize(p Problem, o Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, o)
}

// OptimizeContext is Optimize with context propagation: the run emits
// telemetry spans ("sizing.optimize" with "sizing.init" and "sizing.bo"
// children) when the context carries a tracer, and a cancelled context
// stops the BO loop at the next iteration boundary, returning the best
// point found so far alongside the context's error.
func OptimizeContext(ctx context.Context, p Problem, o Options) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "sizing.optimize")
	defer span.End()
	if o.InitSamples < 2 {
		o.InitSamples = 2
	}
	if o.Candidates < 16 {
		o.Candidates = 16
	}
	rng := rand.New(rand.NewSource(o.Seed))
	d := p.dim()
	if o.Init != nil {
		if len(o.Init) != d {
			return nil, fmt.Errorf("sizing: incumbent dimension %d, want %d", len(o.Init), d)
		}
		for i, v := range o.Init {
			if v < p.Lo[i] || v > p.Hi[i] {
				return nil, fmt.Errorf("sizing: incumbent[%d]=%g outside [%g, %g]", i, v, p.Lo[i], p.Hi[i])
			}
		}
	}

	res := &Result{BestY: math.Inf(-1)}
	var xs [][]float64
	var ys []float64
	// A single non-finite objective value would poison the GP
	// standardization (NaN mean/std make every EI comparison false, so no
	// candidate ever wins). Clamp NaN/±Inf to just below the worst finite
	// value seen, so the model merely ranks the point last.
	worstFinite, haveFinite := 0.0, false
	sanitize := func(y float64) float64 {
		if !math.IsNaN(y) && !math.IsInf(y, 0) {
			if !haveFinite || y < worstFinite {
				worstFinite, haveFinite = y, true
			}
			return y
		}
		if haveFinite {
			return worstFinite - 1
		}
		return -1e6
	}
	record := func(u []float64) {
		u = append([]float64(nil), u...) // callers may reuse their buffer
		y := sanitize(p.Eval(p.denorm(u)))
		xs = append(xs, u)
		ys = append(ys, y)
		res.Evals++
		if y > res.BestY {
			res.BestY = y
			res.BestX = p.denorm(u)
		}
		res.History = append(res.History, res.BestY)
	}
	defer func() { span.SetAttr("evals", fmt.Sprintf("%d", res.Evals)) }()

	_, initSpan := telemetry.StartSpan(ctx, "sizing.init")
	if o.Init != nil {
		// The incumbent leads the history, so it seeds the GP and the
		// Gaussian exploitation moves of every BO iteration.
		u := make([]float64, d)
		for i, v := range o.Init {
			u[i] = (v - p.Lo[i]) / (p.Hi[i] - p.Lo[i])
		}
		record(u)
		initSpan.SetAttr("incumbent", "1")
	}
	for _, u := range latinHypercube(o.InitSamples, d, rng) {
		record(u)
	}
	initSpan.End()

	_, boSpan := telemetry.StartSpan(ctx, "sizing.bo")
	defer boSpan.End()
	// The acquisition loop scores o.Candidates points per iteration; both
	// the scratch candidate and the incumbent winner live in reused
	// buffers (record copies before retaining).
	cand := make([]float64, d)
	bestCand := make([]float64, d)
	for it := 0; it < o.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			boSpan.SetAttr("cancelled", err.Error())
			return res, err
		}
		g, err := fitGP(xs, ys)
		if err != nil {
			// Degenerate model (e.g. constant objective): fall back to
			// random exploration rather than aborting the tuning run.
			for i := range cand {
				cand[i] = rng.Float64()
			}
			record(cand)
			continue
		}
		// Candidate pool: uniform + Gaussian perturbations of the
		// incumbent (local exploitation).
		bestU := xs[argmax(ys)]
		haveBest := false
		bestEI := math.Inf(-1)
		for c := 0; c < o.Candidates; c++ {
			if c%3 == 0 {
				for i := range cand {
					cand[i] = clamp01(bestU[i] + rng.NormFloat64()*0.08)
				}
			} else {
				for i := range cand {
					cand[i] = rng.Float64()
				}
			}
			mu, sd := g.predict(cand)
			ei := expectedImprovement(mu, sd, res.BestY)
			if ei > bestEI {
				bestEI = ei
				copy(bestCand, cand)
				haveBest = true
			}
		}
		if !haveBest {
			// No candidate won (EI degenerate everywhere): evaluate a
			// random point instead of handing the objective a nil slice.
			for i := range bestCand {
				bestCand[i] = rng.Float64()
			}
		}
		record(bestCand)
	}
	return res, nil
}

func argmax(ys []float64) int {
	bi, bv := 0, math.Inf(-1)
	for i, v := range ys {
		if v > bv {
			bi, bv = i, v
		}
	}
	return bi
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// NelderMead runs a bounded simplex maximization from x0 for maxIter
// iterations; it is the local refiner used after BO.
func NelderMead(p Problem, x0 []float64, maxIter int) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	d := p.dim()
	if len(x0) != d {
		return nil, fmt.Errorf("sizing: start point dimension %d, want %d", len(x0), d)
	}
	clampX := func(x []float64) []float64 {
		c := make([]float64, d)
		for i := range x {
			c[i] = math.Max(p.Lo[i], math.Min(p.Hi[i], x[i]))
		}
		return c
	}
	res := &Result{BestY: math.Inf(-1)}
	eval := func(x []float64) float64 {
		x = clampX(x)
		y := p.Eval(x)
		res.Evals++
		if y > res.BestY {
			res.BestY = y
			res.BestX = append([]float64(nil), x...)
		}
		res.History = append(res.History, res.BestY)
		return y
	}

	// Initial simplex: x0 plus per-dimension steps of 5% of range.
	pts := make([][]float64, d+1)
	ys := make([]float64, d+1)
	pts[0] = clampX(x0)
	ys[0] = eval(pts[0])
	for i := 0; i < d; i++ {
		v := append([]float64(nil), pts[0]...)
		v[i] += 0.05 * (p.Hi[i] - p.Lo[i])
		pts[i+1] = clampX(v)
		ys[i+1] = eval(pts[i+1])
	}

	for it := 0; it < maxIter; it++ {
		// order descending (maximization: best first)
		for i := 0; i < len(ys); i++ {
			for j := i + 1; j < len(ys); j++ {
				if ys[j] > ys[i] {
					ys[i], ys[j] = ys[j], ys[i]
					pts[i], pts[j] = pts[j], pts[i]
				}
			}
		}
		// centroid of all but worst
		cen := make([]float64, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cen[i] += pts[j][i]
			}
			cen[i] /= float64(d)
		}
		worst := pts[d]
		refl := make([]float64, d)
		for i := range refl {
			refl[i] = cen[i] + (cen[i] - worst[i])
		}
		yr := eval(refl)
		switch {
		case yr > ys[0]:
			exp := make([]float64, d)
			for i := range exp {
				exp[i] = cen[i] + 2*(cen[i]-worst[i])
			}
			if ye := eval(exp); ye > yr {
				pts[d], ys[d] = exp, ye
			} else {
				pts[d], ys[d] = refl, yr
			}
		case yr > ys[d-1]:
			pts[d], ys[d] = refl, yr
		default:
			con := make([]float64, d)
			for i := range con {
				con[i] = cen[i] + 0.5*(worst[i]-cen[i])
			}
			if yc := eval(con); yc > ys[d] {
				pts[d], ys[d] = con, yc
			} else {
				// shrink toward best
				for j := 1; j <= d; j++ {
					for i := 0; i < d; i++ {
						pts[j][i] = pts[0][i] + 0.5*(pts[j][i]-pts[0][i])
					}
					ys[j] = eval(pts[j])
				}
			}
		}
	}
	return res, nil
}
