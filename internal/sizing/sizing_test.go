package sizing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"artisan/internal/units"
)

func sphere(opt []float64) func([]float64) float64 {
	return func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - opt[i]
			s += d * d
		}
		return -s
	}
}

func TestOptimizeSphere2D(t *testing.T) {
	p := Problem{
		Lo:   []float64{-5, -5},
		Hi:   []float64{5, 5},
		Eval: sphere([]float64{1.2, -2.3}),
	}
	res, err := Optimize(p, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY < -0.3 {
		t.Errorf("BestY = %g, want near 0 (found x=%v)", res.BestY, res.BestX)
	}
	if res.Evals != 12+40 {
		t.Errorf("Evals = %d, want 52", res.Evals)
	}
}

func TestOptimizeInitIncumbent(t *testing.T) {
	opt := []float64{1.2, -2.3}
	p := Problem{
		Lo:   []float64{-5, -5},
		Hi:   []float64{5, 5},
		Eval: sphere(opt),
	}
	o := DefaultOptions(1)
	o.Init = []float64{1.2, -2.3} // exact optimum as incumbent
	res, err := Optimize(p, o)
	if err != nil {
		t.Fatal(err)
	}
	// The incumbent is evaluated first and adds one evaluation.
	if res.Evals != 1+12+40 {
		t.Errorf("Evals = %d, want 53", res.Evals)
	}
	// The incumbent passes through the unit-cube normalization, so the
	// score is optimal only to floating-point round-trip precision.
	if res.History[0] < -1e-25 {
		t.Errorf("History[0] = %g, want the incumbent's near-zero score", res.History[0])
	}
	if res.BestY < -1e-25 {
		t.Errorf("BestY = %g, want near 0 (incumbent was optimal)", res.BestY)
	}
	if !units.ApproxEqual(res.BestX[0], opt[0], 1e-9) || !units.ApproxEqual(res.BestX[1], opt[1], 1e-9) {
		t.Errorf("BestX = %v, want the incumbent", res.BestX)
	}
}

func TestOptimizeInitValidation(t *testing.T) {
	p := Problem{Lo: []float64{-5, -5}, Hi: []float64{5, 5}, Eval: sphere([]float64{0, 0})}
	o := DefaultOptions(1)
	o.Init = []float64{1}
	if _, err := Optimize(p, o); err == nil {
		t.Error("dimension mismatch accepted")
	}
	o.Init = []float64{0, 7}
	if _, err := Optimize(p, o); err == nil {
		t.Error("out-of-bounds incumbent accepted")
	}
	o.Init = []float64{-5, 5} // boundary points are valid
	if _, err := Optimize(p, o); err != nil {
		t.Errorf("boundary incumbent rejected: %v", err)
	}
}

func TestOptimizeNilInitUnchanged(t *testing.T) {
	// A nil incumbent must reproduce the historical run byte for byte —
	// goldens and benchmarks depend on it.
	p := Problem{Lo: []float64{-5, -5}, Hi: []float64{5, 5}, Eval: sphere([]float64{1.2, -2.3})}
	a, err := Optimize(p, DefaultOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(7)
	o.Init = nil
	b, err := Optimize(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evals != b.Evals || a.BestY != b.BestY {
		t.Errorf("nil Init changed the run: (%d, %g) vs (%d, %g)", a.Evals, a.BestY, b.Evals, b.BestY)
	}
}

func TestOptimizeBeatsRandomSearch(t *testing.T) {
	// On a smooth objective with equal budgets, BO must beat pure random
	// search on the median of several seeds.
	obj := sphere([]float64{0.5, -1.5, 2.0})
	p := Problem{Lo: []float64{-5, -5, -5}, Hi: []float64{5, 5, 5}, Eval: obj}
	boWins := 0
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		res, err := Optimize(p, Options{InitSamples: 10, Iterations: 30, Candidates: 256, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(s + 1000))
		randBest := math.Inf(-1)
		for i := 0; i < 40; i++ {
			x := make([]float64, 3)
			for j := range x {
				x[j] = -5 + 10*rng.Float64()
			}
			if y := obj(x); y > randBest {
				randBest = y
			}
		}
		if res.BestY > randBest {
			boWins++
		}
	}
	if boWins < 4 {
		t.Errorf("BO beat random search only %d/%d times", boWins, seeds)
	}
}

func TestHistoryMonotone(t *testing.T) {
	p := Problem{Lo: []float64{-2}, Hi: []float64{2},
		Eval: func(x []float64) float64 { return math.Sin(3*x[0]) - x[0]*x[0]/4 }}
	res, err := Optimize(p, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("history not monotone at %d", i)
		}
	}
	if len(res.History) != res.Evals {
		t.Errorf("history length %d != evals %d", len(res.History), res.Evals)
	}
}

func TestResultWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		p := Problem{Lo: []float64{0, -1}, Hi: []float64{1, 1},
			Eval: func(x []float64) float64 { return x[0] - x[1]*x[1] }}
		res, err := Optimize(p, Options{InitSamples: 5, Iterations: 8, Candidates: 64, Seed: seed})
		if err != nil {
			return false
		}
		for i := range res.BestX {
			if res.BestX[i] < p.Lo[i]-1e-12 || res.BestX[i] > p.Hi[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(Problem{}, DefaultOptions(1)); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Optimize(Problem{Lo: []float64{1}, Hi: []float64{0},
		Eval: func([]float64) float64 { return 0 }}, DefaultOptions(1)); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Optimize(Problem{Lo: []float64{0}, Hi: []float64{1}}, DefaultOptions(1)); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestConstantObjectiveSurvives(t *testing.T) {
	p := Problem{Lo: []float64{0}, Hi: []float64{1},
		Eval: func([]float64) float64 { return 7 }}
	res, err := Optimize(p, Options{InitSamples: 4, Iterations: 6, Candidates: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY != 7 {
		t.Errorf("BestY = %g", res.BestY)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	// maximize -Rosenbrock: optimum at (1,1).
	p := Problem{
		Lo: []float64{-2, -2}, Hi: []float64{2, 2},
		Eval: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return -(a*a + 100*b*b)
		},
	}
	res, err := NelderMead(p, []float64{-1, 1}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY < -0.05 {
		t.Errorf("NM best = %g at %v, want near 0 at (1,1)", res.BestY, res.BestX)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	p := Problem{Lo: []float64{0}, Hi: []float64{1},
		Eval: func(x []float64) float64 { return x[0] }} // pushes to upper bound
	res, err := NelderMead(p, []float64{0.5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestX[0] < 0.99 || res.BestX[0] > 1 {
		t.Errorf("BestX = %v, want at bound 1", res.BestX)
	}
}

func TestNelderMeadValidation(t *testing.T) {
	p := Problem{Lo: []float64{0, 0}, Hi: []float64{1, 1},
		Eval: func(x []float64) float64 { return 0 }}
	if _, err := NelderMead(p, []float64{0.5}, 10); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestGPInterpolates(t *testing.T) {
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	ys := []float64{1, 3, 2}
	g, err := fitGP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		mu, sd := g.predict(xs[i])
		if !units.ApproxEqual(mu, ys[i], 0.05) {
			t.Errorf("GP at training point %v: mu=%g want %g", xs[i], mu, ys[i])
		}
		if sd > 0.3 {
			t.Errorf("GP sd at training point = %g, want small", sd)
		}
	}
	// Far point has larger predictive sd than training points.
	_, sdFar := g.predict([]float64{5})
	_, sdNear := g.predict(xs[1])
	if sdFar <= sdNear {
		t.Error("predictive sd should grow away from data")
	}
}

func TestCholeskyAndSolve(t *testing.T) {
	a := [][]float64{{4, 2, 0.6}, {2, 5, 1.5}, {0.6, 1.5, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3}
	x := cholSolve(l, b)
	for i := range b {
		got := 0.0
		for j := range x {
			got += a[i][j] * x[j]
		}
		if !units.ApproxEqual(got, b[i], 1e-9) {
			t.Errorf("row %d: Ax = %g, want %g", i, got, b[i])
		}
	}
}

func TestLatinHypercubeStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := latinHypercube(10, 3, rng)
	if len(pts) != 10 {
		t.Fatal("wrong count")
	}
	// In each dimension exactly one point per decile.
	for d := 0; d < 3; d++ {
		seen := make([]bool, 10)
		for _, p := range pts {
			bin := int(p[d] * 10)
			if bin == 10 {
				bin = 9
			}
			if seen[bin] {
				t.Fatalf("dim %d: two points in decile %d", d, bin)
			}
			seen[bin] = true
		}
	}
}

func TestExpectedImprovement(t *testing.T) {
	if expectedImprovement(1, 0, 0) != 0 {
		t.Error("zero sd should give zero EI")
	}
	// Higher mean → higher EI at equal sd.
	if expectedImprovement(2, 1, 0) <= expectedImprovement(1, 1, 0) {
		t.Error("EI not increasing in mean")
	}
	// All else equal, more uncertainty → more EI below the incumbent.
	if expectedImprovement(-1, 2, 0) <= expectedImprovement(-1, 0.5, 0) {
		t.Error("EI not increasing in sd below incumbent")
	}
}

// TestOptimizeNaNObjective is the regression test for the NaN-poisoning
// bug: a single non-finite objective value used to contaminate the GP
// standardization, after which no acquisition candidate ever won and the
// optimizer crashed evaluating a nil candidate (index out of range in the
// objective). Non-finite values must be sanitized and the run completed.
func TestOptimizeNaNObjective(t *testing.T) {
	for name, eval := range map[string]func(x []float64) float64{
		"allNaN":  func(x []float64) float64 { _ = x[1]; return math.NaN() },
		"allPInf": func(x []float64) float64 { _ = x[1]; return math.Inf(1) },
		"mixed": func(x []float64) float64 {
			if x[0] > 0 { // half the domain is non-finite
				return math.NaN()
			}
			return -(x[0]*x[0] + x[1]*x[1])
		},
	} {
		t.Run(name, func(t *testing.T) {
			p := Problem{Lo: []float64{-1, -1}, Hi: []float64{1, 1}, Eval: eval}
			o := DefaultOptions(7)
			o.InitSamples, o.Iterations, o.Candidates = 6, 10, 64
			res, err := Optimize(p, o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Evals != o.InitSamples+o.Iterations {
				t.Errorf("Evals = %d, want %d", res.Evals, o.InitSamples+o.Iterations)
			}
			if len(res.BestX) != 2 {
				t.Fatalf("BestX = %v, want a 2-vector", res.BestX)
			}
			if math.IsNaN(res.BestY) || math.IsInf(res.BestY, 0) {
				t.Errorf("BestY = %v, want finite", res.BestY)
			}
			for _, h := range res.History {
				if math.IsNaN(h) || math.IsInf(h, 0) {
					t.Fatalf("History contains non-finite value %v", h)
				}
			}
		})
	}
}

// TestOptimizeMixedNaNStillImproves checks the sanitized run still
// optimizes on the finite half of the domain.
func TestOptimizeMixedNaNStillImproves(t *testing.T) {
	target := []float64{-0.5, 0.25}
	p := Problem{Lo: []float64{-1, -1}, Hi: []float64{1, 1}, Eval: func(x []float64) float64 {
		if x[0] > 0 {
			return math.NaN()
		}
		dx, dy := x[0]-target[0], x[1]-target[1]
		return -(dx*dx + dy*dy)
	}}
	res, err := Optimize(p, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY < -0.05 {
		t.Errorf("BestY = %g at %v, want near 0 (found the finite basin)", res.BestY, res.BestX)
	}
}
