package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// FaultRule is the live fault state of one virtual host. The zero value
// is a healthy link.
type FaultRule struct {
	// Partitioned drops every request to the host with a transport error
	// — the caller sees the same failure a severed TCP link produces.
	Partitioned bool
	// Latency delays every request by a fixed amount before dispatch
	// (a slow-node brownout). The sleep respects request-context
	// cancellation, so deadline budgets cut through it.
	Latency time.Duration
	// TruncateNext cuts the next N response bodies to half length —
	// modelling a connection dropped mid-response, after the server did
	// the work but before the client read the answer.
	TruncateNext int
}

// VNet is an in-process virtual network: an http.RoundTripper that
// dispatches synthetic hostnames ("http://node0") straight into
// registered http.Handlers. Because no real sockets are involved, node
// "addresses" are stable across kill/restart cycles, there is no port
// churn, and fault injection is exact — a partition drops precisely the
// requests the script says it drops.
type VNet struct {
	mu    sync.Mutex
	hosts map[string]http.Handler
	rules map[string]*FaultRule
}

// NewVNet builds an empty virtual network.
func NewVNet() *VNet {
	return &VNet{
		hosts: make(map[string]http.Handler),
		rules: make(map[string]*FaultRule),
	}
}

// Register connects host to a handler (replacing any previous one —
// that is how a restarted node rejoins under its old address).
func (v *VNet) Register(host string, h http.Handler) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.hosts[host] = h
}

// Unregister disconnects host: subsequent requests fail like
// connection-refused. A killed node's first disappearance.
func (v *VNet) Unregister(host string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.hosts, host)
}

// SetRule replaces host's fault rule.
func (v *VNet) SetRule(host string, r FaultRule) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.rules[host] = &r
}

// UpdateRule mutates host's fault rule in place under the lock,
// creating it if absent — so a script can partition a host without
// clobbering an active latency rule.
func (v *VNet) UpdateRule(host string, mut func(*FaultRule)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r, ok := v.rules[host]
	if !ok {
		r = &FaultRule{}
		v.rules[host] = r
	}
	mut(r)
}

// Heal clears host's fault rule.
func (v *VNet) Heal(host string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.rules, host)
}

// RoundTrip implements http.RoundTripper: apply the host's fault rule,
// then serve the request in-process through the registered handler.
func (v *VNet) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	v.mu.Lock()
	h := v.hosts[host]
	var rule FaultRule
	if r, ok := v.rules[host]; ok {
		rule = *r
		if r.TruncateNext > 0 {
			r.TruncateNext--
		}
	}
	v.mu.Unlock()

	if rule.Latency > 0 {
		t := time.NewTimer(rule.Latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	if rule.Partitioned {
		return nil, fmt.Errorf("chaos: %s: partitioned", host)
	}
	if h == nil {
		return nil, fmt.Errorf("chaos: %s: connection refused", host)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req.Clone(req.Context()))
	resp := rec.Result()
	resp.Request = req
	if rule.TruncateNext > 0 {
		truncateBody(resp)
	}
	return resp, nil
}

// truncateBody halves the response body in place, dropping the declared
// length so the caller reads a well-formed stream that carries garbage
// — the client-visible shape of a connection cut mid-response.
func truncateBody(resp *http.Response) {
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || len(body) == 0 {
		return
	}
	cut := body[:len(body)/2]
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
}
