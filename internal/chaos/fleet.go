package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"artisan/internal/cluster"
	"artisan/internal/jobs"
	"artisan/internal/resilience"
	"artisan/internal/server"
)

// Config sizes a chaos run: the fleet shape, the seeded workload, and
// the fault script.
type Config struct {
	// Nodes is the fleet size; default 3.
	Nodes int
	// Workers / Queue size each node's pool; defaults 2 / 256.
	Workers int
	Queue   int
	// Seed drives the workload's rng and the router's retry jitter.
	Seed int64
	// Jobs is how many submissions the workload issues; default 40.
	Jobs int
	// DupRate is the probability a submission repeats an earlier body —
	// exercising the cache/coalesce path and result coherence.
	DupRate float64
	// DeadlineEvery, when positive, puts a DeadlineMs budget on every
	// Nth submission. DeadlineMs defaults to 3.
	DeadlineEvery int
	DeadlineMs    int
	// ModelLatency gives each design run a modeled duration, so kills
	// actually interrupt running jobs; default 3ms.
	ModelLatency time.Duration
	// HealthInterval is the router's probe period; default 5ms, so
	// membership converges quickly relative to the fault script.
	HealthInterval time.Duration
	// Dir is the fleet data root; each node journals under Dir/n<i>.
	// Required.
	Dir string
	// Events is the fault script, keyed to submission indices.
	Events []Event
}

func (c Config) withDefaults() Config {
	if c.Nodes < 1 {
		c.Nodes = 3
	}
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.Queue < 1 {
		c.Queue = 256
	}
	if c.Jobs < 1 {
		c.Jobs = 40
	}
	if c.DeadlineMs < 1 {
		c.DeadlineMs = 3
	}
	if c.ModelLatency <= 0 {
		c.ModelLatency = 3 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 5 * time.Millisecond
	}
	return c
}

// Node is one fleet member: a server.Server over its own data dir,
// reachable at a stable virtual URL.
type Node struct {
	Index int
	Host  string // virtual hostname, e.g. "node0"
	URL   string // "http://node0"
	Dir   string // data dir, stable across restarts

	mu       sync.Mutex
	srv      *server.Server
	alive    bool
	restarts int
	faultFn  func() error
}

// Server returns the node's current server instance (nil while killed).
func (n *Node) Server() *server.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Alive reports whether the node is currently up.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Restarts counts completed kill/restart cycles.
func (n *Node) Restarts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.restarts
}

// SetDiskFault installs fn as the node's journal write fault (nil
// clears). It survives restarts — the hook is re-wired into each new
// server instance.
func (n *Node) SetDiskFault(fn func() error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultFn = fn
}

// writeFault is the indirection handed to server.Options: the armed
// fault can change (or clear) while the store object stays the same.
func (n *Node) writeFault() error {
	n.mu.Lock()
	fn := n.faultFn
	n.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return nil
}

// FailAppends returns a disk fault that fails the next n journal
// appends (n <= 0: every append, a dead disk).
func FailAppends(n int) func() error {
	var left atomic.Int64
	left.Store(int64(n))
	return func() error {
		if n <= 0 {
			return fmt.Errorf("chaos: injected disk fault")
		}
		if left.Add(-1) >= 0 {
			return fmt.Errorf("chaos: injected disk fault")
		}
		return nil
	}
}

// Fleet is the assembled system under test: N nodes, one router, one
// virtual network carrying every hop.
type Fleet struct {
	cfg    Config
	VNet   *VNet
	Router *cluster.Router
	nodes  []*Node
}

// NewFleet builds and starts the fleet, waiting until the router has
// admitted every node to the ring.
func NewFleet(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir is required")
	}
	f := &Fleet{cfg: cfg, VNet: NewVNet()}
	urls := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Index: i,
			Host:  fmt.Sprintf("node%d", i),
			URL:   fmt.Sprintf("http://node%d", i),
			Dir:   filepath.Join(cfg.Dir, fmt.Sprintf("n%d", i)),
		}
		f.nodes = append(f.nodes, n)
		urls[i] = n.URL
		if err := f.start(n); err != nil {
			return nil, err
		}
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:          urls,
		VNodes:         32,
		HealthInterval: cfg.HealthInterval,
		HealthTimeout:  250 * time.Millisecond,
		Retry: resilience.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			Jitter:      0.5,
			Seed:        cfg.Seed,
		},
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		HedgeDelay:       2 * time.Millisecond,
		Client:           &http.Client{Transport: f.VNet},
	})
	if err != nil {
		f.Stop()
		return nil, err
	}
	f.Router = rt
	if err := f.WaitConverged(cfg.Nodes, 5*time.Second); err != nil {
		f.Stop()
		return nil, err
	}
	return f, nil
}

// Nodes returns the fleet members.
func (f *Fleet) Nodes() []*Node { return f.nodes }

// start boots (or reboots) a node over its existing data dir and
// connects it to the virtual network.
func (f *Fleet) start(n *Node) error {
	svc, err := server.NewServer(server.Options{
		Workers:         f.cfg.Workers,
		Queue:           f.cfg.Queue,
		NodeID:          fmt.Sprintf("n%d", n.Index),
		DataDir:         n.Dir,
		ModelLatency:    f.cfg.ModelLatency,
		StoreWriteFault: n.writeFault,
	})
	if err != nil {
		return fmt.Errorf("chaos: start node %d: %w", n.Index, err)
	}
	n.mu.Lock()
	n.srv = svc
	n.alive = true
	n.mu.Unlock()
	f.VNet.Register(n.Host, svc)
	return nil
}

// Kill crash-stops a node the way SIGKILL would land on the journal:
// the virtual link drops, the store closes *before* the pool is torn
// down — so terminal records from the dying workers vanish instead of
// being journaled — and the pool is then abandoned with an already-
// expired context.
func (f *Fleet) Kill(i int) {
	n := f.nodes[i]
	f.VNet.Unregister(n.Host)
	n.mu.Lock()
	srv := n.srv
	n.srv = nil
	n.alive = false
	n.mu.Unlock()
	if srv == nil {
		return
	}
	if p := srv.Persist(); p != nil {
		_ = p.Store().Close()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = srv.Shutdown(ctx)
}

// Restart reboots a killed node over the same data dir; the journal
// replay re-executes whatever the kill interrupted.
func (f *Fleet) Restart(i int) error {
	n := f.nodes[i]
	if err := f.start(n); err != nil {
		return err
	}
	n.mu.Lock()
	n.restarts++
	n.mu.Unlock()
	return nil
}

// Partition cuts (or heals, on=false) the link to node i without
// touching its latency or truncation state.
func (f *Fleet) Partition(i int, on bool) {
	f.VNet.UpdateRule(f.nodes[i].Host, func(r *FaultRule) { r.Partitioned = on })
}

// SetLatency installs a fixed brownout delay on node i's link.
func (f *Fleet) SetLatency(i int, d time.Duration) {
	f.VNet.UpdateRule(f.nodes[i].Host, func(r *FaultRule) { r.Latency = d })
}

// TruncateNext arms truncation of node i's next count response bodies.
func (f *Fleet) TruncateNext(i, count int) {
	f.VNet.UpdateRule(f.nodes[i].Host, func(r *FaultRule) { r.TruncateNext += count })
}

// Heal clears every network fault on node i.
func (f *Fleet) Heal(i int) { f.VNet.Heal(f.nodes[i].Host) }

// WaitConverged polls the router's /healthz until exactly want nodes
// are healthy.
func (f *Fleet) WaitConverged(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		rec := httptest.NewRecorder()
		f.Router.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://router/healthz", nil))
		var body struct {
			Healthy int `json:"healthy"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err == nil && body.Healthy == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: fleet did not converge to %d healthy nodes in %s", want, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// AwaitQuiesce blocks until every live node has drained: no queued or
// running jobs, and — unless its store is poisoned read-only, which
// can never journal again — no journaled job left non-terminal.
func (f *Fleet) AwaitQuiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		settled := true
		for _, n := range f.nodes {
			srv := n.Server()
			if srv == nil {
				continue
			}
			counts := srv.Jobs().Counts()
			if counts[jobs.StatusQueued] > 0 || counts[jobs.StatusRunning] > 0 {
				settled = false
				break
			}
			if p := srv.Persist(); p != nil && !p.Store().ReadOnly() && len(p.Store().Pending()) > 0 {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: fleet did not quiesce in %s", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Stop shuts the fleet down gracefully: router first (no new probes),
// then each live node with a real drain budget.
func (f *Fleet) Stop() {
	if f.Router != nil {
		f.Router.Close()
	}
	for _, n := range f.nodes {
		n.mu.Lock()
		srv := n.srv
		n.srv = nil
		n.alive = false
		n.mu.Unlock()
		if srv == nil {
			continue
		}
		f.VNet.Unregister(n.Host)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
}
