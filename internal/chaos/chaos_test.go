package chaos

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"artisan/internal/cluster"
)

// failOn aggregates violations into test failures with full detail.
func failOn(t *testing.T, vs []Violation) {
	t.Helper()
	for _, v := range vs {
		t.Errorf("invariant violated — %s", v)
	}
}

func mustRun(t *testing.T, f *Fleet) *Report {
	t.Helper()
	rep, err := f.Run()
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	return rep
}

func mustJournals(t *testing.T, f *Fleet) []NodeJournal {
	t.Helper()
	js, err := LoadJournals(f)
	if err != nil {
		t.Fatalf("load journals: %v", err)
	}
	return js
}

// TestChaosSmoke is the CI scenario: a 3-node fleet survives a seeded
// storm of kills, restarts, a partition, a brownout, and truncated
// responses, and every fleet invariant holds over the merged end state.
func TestChaosSmoke(t *testing.T) {
	f, err := NewFleet(Config{
		Nodes: 3, Seed: 42, Jobs: 60,
		DupRate: 0.3, DeadlineEvery: 7, DeadlineMs: 3,
		Dir: t.TempDir(),
		Events: []Event{
			{At: 10, Kind: EvKill, Node: 1},
			{At: 18, Kind: EvRestart, Node: 1},
			{At: 25, Kind: EvPartition, Node: 2},
			{At: 33, Kind: EvHeal, Node: 2},
			{At: 38, Kind: EvLatency, Node: 0, Latency: 8 * time.Millisecond},
			{At: 44, Kind: EvTruncate, Node: 0, Count: 8},
			{At: 48, Kind: EvHeal, Node: 0},
			{At: 50, Kind: EvKill, Node: 0},
			{At: 56, Kind: EvRestart, Node: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	rep := mustRun(t, f)
	if len(rep.Accepted) == 0 {
		t.Fatal("chaos run accepted no jobs at all")
	}
	failOn(t, CheckAll(rep, mustJournals(t, f), false))

	// The storm must not have cost any client a response: everything
	// submitted was either accepted or deliberately rejected.
	answered := len(rep.Accepted) + rep.AcceptedUnknown
	for _, n := range rep.Rejected {
		answered += n
	}
	if answered != rep.Submitted {
		t.Errorf("answered %d of %d submissions", answered, rep.Submitted)
	}
}

// TestChaosNoFaultBaseline proves the harness itself is quiet: with no
// faults scheduled, strict accounting holds — journaled submits match
// accepted non-cached jobs exactly, and nothing is rejected.
func TestChaosNoFaultBaseline(t *testing.T) {
	f, err := NewFleet(Config{Nodes: 3, Seed: 7, Jobs: 30, DupRate: 0.4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	rep := mustRun(t, f)
	failOn(t, CheckAll(rep, mustJournals(t, f), true))
	if len(rep.Rejected) != 0 {
		t.Errorf("fault-free run rejected requests: %v", rep.Rejected)
	}
	if rep.AcceptedUnknown != 0 {
		t.Errorf("fault-free run produced %d unreadable accepts", rep.AcceptedUnknown)
	}
	if len(rep.Accepted) != rep.Submitted {
		t.Errorf("accepted %d of %d submissions", len(rep.Accepted), rep.Submitted)
	}
}

// TestChaosDeadlineSweep pins the acceptance criterion for deadline
// budgets: every submission carries a budget shorter than one design
// run, and the post-run sweep still finds zero queued or running jobs —
// expired work cancels, it does not linger as an orphan.
func TestChaosDeadlineSweep(t *testing.T) {
	f, err := NewFleet(Config{
		Nodes: 2, Seed: 11, Jobs: 24,
		DeadlineEvery: 1, DeadlineMs: 2,
		ModelLatency: 10 * time.Millisecond,
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	rep := mustRun(t, f)
	failOn(t, CheckAll(rep, mustJournals(t, f), false))
	for _, sw := range rep.Sweeps {
		if sw.Queued != 0 || sw.Running != 0 {
			t.Errorf("node %d: %d queued / %d running after deadline sweep", sw.Node, sw.Queued, sw.Running)
		}
	}
}

// TestChaosDiskFaultPoison injects journal write failures on one node
// mid-run: the node must poison itself read-only (surfaced on /healthz,
// /stats, and the artisan_store_readonly gauge), the router must shed
// it, and no accepted job may be lost fleet-wide.
func TestChaosDiskFaultPoison(t *testing.T) {
	f, err := NewFleet(Config{
		Nodes: 2, Seed: 23, Jobs: 30, DupRate: 0.2,
		Dir:    t.TempDir(),
		Events: []Event{{At: 8, Kind: EvDiskFault, Node: 0, Count: 0}}, // dead disk: every append fails
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	rep := mustRun(t, f)
	failOn(t, CheckAll(rep, mustJournals(t, f), false))

	poisoned := false
	for _, sw := range rep.Sweeps {
		if sw.ReadOnly {
			poisoned = true
			if sw.MetricRO != 1 {
				t.Errorf("node %d read-only but artisan_store_readonly=%g", sw.Node, sw.MetricRO)
			}
		}
	}
	if !poisoned {
		t.Fatal("disk faults never poisoned a store — the injection path is dead")
	}

	// The poisoned node must advertise the condition on /healthz so the
	// router pulls it from rotation.
	n0 := f.Nodes()[0].Server()
	rec := httptest.NewRecorder()
	n0.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://node0/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("poisoned node /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "store-read-only") {
		t.Errorf("poisoned node /healthz body lacks store-read-only: %s", rec.Body.String())
	}
}

// TestChaosCorruptJournalQuarantine bit-flips a mid-file done record
// between two fleet generations: the restarted node must count and
// quarantine the corrupt record (journal rescan, /stats, and /metrics
// all agreeing), classify no torn tail, re-execute the job whose
// terminal record was destroyed, and keep serving.
func TestChaosCorruptJournalQuarantine(t *testing.T) {
	dir := t.TempDir()
	f1, err := NewFleet(Config{Nodes: 1, Seed: 5, Jobs: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep1 := mustRun(t, f1)
	nodeDir := f1.Nodes()[0].Dir
	f1.Stop()
	if len(rep1.Accepted) == 0 {
		t.Fatal("baseline run accepted nothing")
	}

	corruptedID := flipDoneRecord(t, cluster.JournalPath(nodeDir))

	f2, err := NewFleet(Config{Nodes: 1, Seed: 6, Jobs: 4, Dir: dir})
	if err != nil {
		t.Fatalf("restart over corrupted journal must not fail: %v", err)
	}
	defer f2.Stop()

	st := f2.Nodes()[0].Server().Persist().Store().Stats()
	if st.Journal.Corrupt != 1 {
		t.Fatalf("corrupt records = %d, want 1", st.Journal.Corrupt)
	}
	if st.Journal.TornTail {
		t.Error("mid-file corruption misclassified as a torn tail")
	}
	qblob, err := os.ReadFile(cluster.QuarantineFile(nodeDir))
	if err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if n := bytes.Count(qblob, []byte{'\n'}); n != 1 {
		t.Errorf("quarantine holds %d lines, want 1", n)
	}

	rep2 := mustRun(t, f2)
	failOn(t, CheckAll(rep2, mustJournals(t, f2), false))

	// The job whose done record was destroyed replayed as interrupted and
	// must have been re-executed to a terminal state.
	state, ok := f2.Nodes()[0].Server().Persist().Store().State(corruptedID)
	if !ok {
		t.Fatalf("job %s vanished after corruption", corruptedID)
	}
	if !state.Terminal() {
		t.Errorf("job %s is %q after replay, want terminal", corruptedID, state.Status)
	}

	// Every observability surface agrees on the corruption count.
	sw := rep2.Sweeps[0]
	if sw.StatsCorrupt != 1 || sw.MetricCorrupt != 1 {
		t.Errorf("/stats corrupt=%d, artisan_store_corrupt_total=%g, want 1/1",
			sw.StatsCorrupt, sw.MetricCorrupt)
	}
}

// flipDoneRecord corrupts one byte inside a mid-file done record's JSON
// body and returns that record's logical job id.
func flipDoneRecord(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	// The final split element is empty (trailing newline); the one before
	// it is the last real line — leave both alone so the flip is strictly
	// mid-file.
	for i := 0; i < len(lines)-2; i++ {
		tab := bytes.IndexByte(lines[i], '\t')
		if tab < 0 || !bytes.Contains(lines[i], []byte(`"op":"done"`)) {
			continue
		}
		var rec cluster.Record
		if err := json.Unmarshal(lines[i][tab+1:], &rec); err != nil {
			t.Fatalf("decode target record: %v", err)
		}
		lines[i][tab+10] ^= 0x01
		if err := os.WriteFile(path, bytes.Join(lines, []byte{'\n'}), 0o644); err != nil {
			t.Fatal(err)
		}
		return rec.ID
	}
	t.Fatal("no mid-file done record to corrupt")
	return ""
}

// TestChaosBrokenInvariantDetected proves the checkers have teeth: a
// journal with a record after a terminal, and a report whose accepted
// job has no journal trace, must both produce violations. A checker
// that cannot fail is not a checker.
func TestChaosBrokenInvariantDetected(t *testing.T) {
	bad := []NodeJournal{{Node: 0, Records: []cluster.Record{
		{Op: cluster.OpSubmit, ID: "n0-j-1", Kind: "design", Key: "k"},
		{Op: cluster.OpDone, ID: "n0-j-1", Result: json.RawMessage(`{"x":1}`)},
		{Op: cluster.OpStart, ID: "n0-j-1"}, // re-execution after completion
	}}}
	if vs := CheckJournalOrder(bad); len(vs) != 1 {
		t.Fatalf("start-after-done produced %d violations, want 1: %v", len(vs), vs)
	}

	rep := &Report{
		Accepted: []Accepted{{ID: "n0-j-9", Key: "k"}},
		Sweeps:   []NodeSweep{{Node: 0, Alive: true}},
	}
	if vs := CheckNoLostJobs(rep, []NodeJournal{{Node: 0}}); len(vs) != 1 {
		t.Fatalf("lost job produced %d violations, want 1: %v", len(vs), vs)
	}

	diverged := []NodeJournal{
		{Node: 0, Records: []cluster.Record{
			{Op: cluster.OpSubmit, ID: "n0-j-1", Key: "k"},
			{Op: cluster.OpDone, ID: "n0-j-1", Result: json.RawMessage(`{"x":1}`)},
		}},
		{Node: 1, Records: []cluster.Record{
			{Op: cluster.OpSubmit, ID: "n1-j-1", Key: "k"},
			{Op: cluster.OpDone, ID: "n1-j-1", Result: json.RawMessage(`{"x":2}`)},
		}},
	}
	if vs := CheckResultCoherence(diverged); len(vs) != 1 {
		t.Fatalf("diverged results produced %d violations, want 1: %v", len(vs), vs)
	}
}

// TestChaosLong is the extended soak profile behind `make chaos`: a
// bigger fleet, a longer duplicate-heavy workload, and a denser fault
// script. Gated on ARTISAN_CHAOS_LONG=1 so CI stays fast.
func TestChaosLong(t *testing.T) {
	if os.Getenv("ARTISAN_CHAOS_LONG") == "" {
		t.Skip("set ARTISAN_CHAOS_LONG=1 to run the long chaos profile")
	}
	f, err := NewFleet(Config{
		Nodes: 5, Seed: 1337, Jobs: 300,
		DupRate: 0.35, DeadlineEvery: 9, DeadlineMs: 4,
		Dir: t.TempDir(),
		Events: []Event{
			{At: 20, Kind: EvKill, Node: 1},
			{At: 45, Kind: EvRestart, Node: 1},
			{At: 60, Kind: EvPartition, Node: 3},
			{At: 80, Kind: EvLatency, Node: 0, Latency: 10 * time.Millisecond},
			{At: 95, Kind: EvHeal, Node: 3},
			{At: 110, Kind: EvKill, Node: 2},
			{At: 120, Kind: EvTruncate, Node: 4, Count: 12},
			{At: 140, Kind: EvRestart, Node: 2},
			{At: 150, Kind: EvHeal, Node: 0},
			{At: 170, Kind: EvKill, Node: 0},
			{At: 171, Kind: EvPartition, Node: 1},
			{At: 200, Kind: EvRestart, Node: 0},
			{At: 210, Kind: EvHeal, Node: 1},
			{At: 230, Kind: EvKill, Node: 4},
			{At: 260, Kind: EvRestart, Node: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	rep := mustRun(t, f)
	if len(rep.Accepted) < 200 {
		t.Errorf("long run accepted only %d jobs", len(rep.Accepted))
	}
	failOn(t, CheckAll(rep, mustJournals(t, f), false))
}
