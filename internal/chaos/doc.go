// Package chaos is a deterministic in-process fleet chaos harness for
// the Artisan serving tier. It builds an N-node fleet — real
// server.Server instances over real on-disk journals, fronted by a real
// cluster.Router — wired together through a fault-injecting virtual
// network instead of TCP, then drives a seeded duplicate-heavy workload
// while a scheduled fault script kills and restarts nodes, partitions
// links, adds latency, truncates responses mid-body, and fails journal
// writes. When the dust settles, invariant checkers sweep the merged
// end state (journals, live job managers, /stats, /metrics) and report
// violations.
//
// The harness is deterministic where it matters: the workload and the
// fault schedule are derived from one seed and keyed to submission
// indices, not wall-clock timers, so a failing scenario replays
// identically under -race -count=2. Goroutine interleavings still vary
// run to run — which is the point: the invariants hold for *every*
// interleaving, not one golden trace.
//
// Fleet invariants checked (see CheckAll):
//
//   - journal-terminal-order: within one node's journal, a logical job
//     id reaches a terminal record (done|fail|cancel) at most once, and
//     no start/resume record follows it — a finished job is never
//     re-executed after replay.
//   - no-lost-job: every submission the client saw accepted (202 with a
//     parseable id, cache hits excluded) is terminal in some node's
//     journal; a poisoned (read-only) store falls back to the node's
//     live job table.
//   - result-coherence: all journaled done results for one cache key
//     are byte-identical, across every node — duplicate submissions,
//     failovers, and replays may recompute but never diverge.
//   - submit-accounting: journaled submit records across the fleet are
//     at least the accepted non-cached count (failover re-sends after a
//     lost response can legitimately journal twice; strict equality is
//     asserted by the no-fault baseline scenario).
//   - no-orphans: after the drain barrier no node holds a queued or
//     running job — including jobs whose deadline budget expired before
//     a worker picked them up.
//   - metrics-consistency: artisan_store_corrupt_total on /metrics, the
//     store section of /stats, the quarantine sidecar's line count, and
//     a post-mortem rescan of the journal all agree on corruption.
//
// A node "kill" models SIGKILL faithfully with respect to the journal:
// the store is closed *before* the worker pool is torn down, so
// terminal records from the dying pool are dropped exactly as a real
// crash would drop them, and the restart path must recover by replay.
package chaos
