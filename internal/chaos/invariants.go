package chaos

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"

	"artisan/internal/cluster"
)

// Violation is one invariant breach, phrased for a human debugging the
// run.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// NodeJournal is the post-mortem view of one node's journal: every
// intact record in append order, the scan stats, and the quarantine
// sidecar's line count.
type NodeJournal struct {
	Node            int
	Records         []cluster.Record
	Stats           cluster.JournalStats
	QuarantineLines int
}

// LoadJournals rescans every node's journal from disk. Safe on a live
// fleet (appends are flushed per record) but meant for after Stop.
func LoadJournals(f *Fleet) ([]NodeJournal, error) {
	var out []NodeJournal
	for _, n := range f.Nodes() {
		nj := NodeJournal{Node: n.Index}
		stats, err := cluster.ScanJournal(cluster.JournalPath(n.Dir), func(rec cluster.Record) {
			nj.Records = append(nj.Records, rec)
		}, nil)
		if err != nil {
			return nil, err
		}
		nj.Stats = stats
		if blob, err := os.ReadFile(cluster.QuarantineFile(n.Dir)); err == nil {
			nj.QuarantineLines = bytes.Count(blob, []byte{'\n'})
		}
		out = append(out, nj)
	}
	return out, nil
}

func isTerminal(op cluster.Op) bool {
	return op == cluster.OpDone || op == cluster.OpFail || op == cluster.OpCancel
}

// nodeOf extracts the owning node index from a fleet job id
// ("n2-j-17" → 2); -1 when the id does not parse.
func nodeOf(id string) int {
	prefix, _, ok := strings.Cut(id, "-j-")
	if !ok || len(prefix) < 2 || prefix[0] != 'n' {
		return -1
	}
	n, err := strconv.Atoi(prefix[1:])
	if err != nil {
		return -1
	}
	return n
}

// CheckJournalOrder verifies per-journal lifecycle ordering: every
// non-submit record follows its submit, and nothing — no start, no
// resume, no second terminal — follows a terminal record. This is the
// "finished jobs are never re-executed after replay" invariant read
// straight off the durable history.
func CheckJournalOrder(js []NodeJournal) []Violation {
	var out []Violation
	for _, j := range js {
		submitted := make(map[string]bool)
		terminal := make(map[string]cluster.Op)
		for _, rec := range j.Records {
			if op, done := terminal[rec.ID]; done {
				out = append(out, Violation{
					Invariant: "journal-terminal-order",
					Detail: fmt.Sprintf("node %d: job %s got %q after terminal %q",
						j.Node, rec.ID, rec.Op, op),
				})
				continue
			}
			if rec.Op == cluster.OpSubmit {
				if submitted[rec.ID] {
					out = append(out, Violation{
						Invariant: "journal-terminal-order",
						Detail:    fmt.Sprintf("node %d: job %s submitted twice", j.Node, rec.ID),
					})
				}
				submitted[rec.ID] = true
				continue
			}
			if !submitted[rec.ID] {
				out = append(out, Violation{
					Invariant: "journal-terminal-order",
					Detail: fmt.Sprintf("node %d: job %s got %q before any submit",
						j.Node, rec.ID, rec.Op),
				})
			}
			if isTerminal(rec.Op) {
				terminal[rec.ID] = rec.Op
			}
		}
	}
	return out
}

// finalStates folds one journal into id → last lifecycle op.
func finalStates(j NodeJournal) map[string]cluster.Op {
	final := make(map[string]cluster.Op)
	for _, rec := range j.Records {
		if op, ok := final[rec.ID]; ok && isTerminal(op) {
			continue // terminal sticks; order violations are reported elsewhere
		}
		final[rec.ID] = rec.Op
	}
	return final
}

var terminalStatus = map[string]bool{"done": true, "failed": true, "cancelled": true}

// CheckNoLostJobs verifies every submission the client saw accepted
// (cache hits excluded — their durability is the original job's) is
// terminal in its owner's journal. A node whose store was poisoned
// read-only cannot journal terminals any more, so the check falls back
// to that node's live job table.
func CheckNoLostJobs(rep *Report, js []NodeJournal) []Violation {
	byNode := make(map[int]map[string]cluster.Op, len(js))
	for _, j := range js {
		byNode[j.Node] = finalStates(j)
	}
	sweeps := make(map[int]NodeSweep, len(rep.Sweeps))
	for _, sw := range rep.Sweeps {
		sweeps[sw.Node] = sw
	}
	var out []Violation
	for _, a := range rep.Accepted {
		if a.Cached {
			continue
		}
		node := nodeOf(a.ID)
		if node < 0 {
			out = append(out, Violation{
				Invariant: "no-lost-job",
				Detail:    fmt.Sprintf("accepted id %q does not parse as a fleet job id", a.ID),
			})
			continue
		}
		op, journaled := byNode[node][a.ID]
		if journaled && isTerminal(op) {
			continue
		}
		if sw, ok := sweeps[node]; ok && sw.ReadOnly {
			if terminalStatus[sw.JobStatus[a.ID]] {
				continue // poisoned store: the live table is the best truth left
			}
		}
		if !journaled {
			out = append(out, Violation{
				Invariant: "no-lost-job",
				Detail:    fmt.Sprintf("accepted job %s has no journal record on node %d", a.ID, node),
			})
		} else {
			out = append(out, Violation{
				Invariant: "no-lost-job",
				Detail:    fmt.Sprintf("accepted job %s ended non-terminal (%q) on node %d", a.ID, op, node),
			})
		}
	}
	return out
}

// CheckResultCoherence verifies all journaled done-results for one
// cache key are byte-identical across the whole fleet: duplicates,
// failovers, and replays may recompute a design, but two clients must
// never read two different answers for the same request.
func CheckResultCoherence(js []NodeJournal) []Violation {
	var out []Violation
	type first struct {
		node   int
		id     string
		result []byte
	}
	byKey := make(map[string]first)
	for _, j := range js {
		keyOf := make(map[string]string)
		for _, rec := range j.Records {
			switch rec.Op {
			case cluster.OpSubmit:
				keyOf[rec.ID] = rec.Key
			case cluster.OpDone:
				key := keyOf[rec.ID]
				if key == "" || len(rec.Result) == 0 {
					continue
				}
				if prev, ok := byKey[key]; ok {
					if !bytes.Equal(prev.result, rec.Result) {
						out = append(out, Violation{
							Invariant: "result-coherence",
							Detail: fmt.Sprintf("key %q: node %d job %s result differs from node %d job %s",
								key, j.Node, rec.ID, prev.node, prev.id),
						})
					}
				} else {
					byKey[key] = first{node: j.Node, id: rec.ID, result: rec.Result}
				}
			}
		}
	}
	return out
}

// CheckSubmitAccounting reconciles journaled submit records with the
// client's view. At least one submit record must exist per accepted
// non-cached job; strict mode (no mid-request faults in the scenario)
// demands exact equality — a failover after a lost response is the only
// legitimate source of extra submit records.
func CheckSubmitAccounting(rep *Report, js []NodeJournal, strict bool) []Violation {
	journaled := 0
	for _, j := range js {
		seen := make(map[string]bool)
		for _, rec := range j.Records {
			if rec.Op == cluster.OpSubmit && !seen[rec.ID] {
				seen[rec.ID] = true
				journaled++
			}
		}
	}
	want := len(rep.Accepted) - rep.CachedCount()
	if journaled < want {
		return []Violation{{
			Invariant: "submit-accounting",
			Detail: fmt.Sprintf("%d journaled submits < %d accepted non-cached jobs",
				journaled, want),
		}}
	}
	if strict && journaled != want+rep.AcceptedUnknown {
		return []Violation{{
			Invariant: "submit-accounting",
			Detail: fmt.Sprintf("strict: %d journaled submits != %d accepted (non-cached) + %d unknown",
				journaled, want, rep.AcceptedUnknown),
		}}
	}
	return nil
}

// CheckNoOrphans verifies the post-drain sweep found no node still
// holding queued or running work — including jobs whose deadline budget
// expired while queued, which must cancel rather than linger.
func CheckNoOrphans(rep *Report) []Violation {
	var out []Violation
	for _, sw := range rep.Sweeps {
		if !sw.Alive {
			out = append(out, Violation{
				Invariant: "no-orphans",
				Detail:    fmt.Sprintf("node %d was dead at sweep time", sw.Node),
			})
			continue
		}
		if sw.Queued > 0 || sw.Running > 0 {
			out = append(out, Violation{
				Invariant: "no-orphans",
				Detail: fmt.Sprintf("node %d still holds %d queued / %d running jobs after drain",
					sw.Node, sw.Queued, sw.Running),
			})
		}
	}
	return out
}

// CheckMetricsConsistency cross-checks each node's three corruption
// surfaces — /metrics counter, /stats journal section, and a post-
// mortem rescan of the journal file — plus the read-only gauge against
// the store's own flag. Observability that disagrees with the disk is
// treated as a fleet bug, same as losing a job.
func CheckMetricsConsistency(rep *Report, js []NodeJournal) []Violation {
	rescan := make(map[int]NodeJournal, len(js))
	for _, j := range js {
		rescan[j.Node] = j
	}
	var out []Violation
	for _, sw := range rep.Sweeps {
		if int(sw.MetricCorrupt) != sw.StatsCorrupt {
			out = append(out, Violation{
				Invariant: "metrics-consistency",
				Detail: fmt.Sprintf("node %d: artisan_store_corrupt_total %g != /stats corrupt %d",
					sw.Node, sw.MetricCorrupt, sw.StatsCorrupt),
			})
		}
		if j, ok := rescan[sw.Node]; ok {
			if j.Stats.Corrupt != sw.StatsCorrupt {
				out = append(out, Violation{
					Invariant: "metrics-consistency",
					Detail: fmt.Sprintf("node %d: journal rescan found %d corrupt records, node reported %d",
						sw.Node, j.Stats.Corrupt, sw.StatsCorrupt),
				})
			}
			if sw.StatsCorrupt > 0 && j.QuarantineLines < sw.StatsCorrupt {
				out = append(out, Violation{
					Invariant: "metrics-consistency",
					Detail: fmt.Sprintf("node %d: %d corrupt records but only %d quarantined lines",
						sw.Node, sw.StatsCorrupt, j.QuarantineLines),
				})
			}
		}
		wantRO := 0.0
		if sw.ReadOnly {
			wantRO = 1.0
		}
		if sw.MetricRO != wantRO {
			out = append(out, Violation{
				Invariant: "metrics-consistency",
				Detail: fmt.Sprintf("node %d: artisan_store_readonly %g but store.ReadOnly()=%v",
					sw.Node, sw.MetricRO, sw.ReadOnly),
			})
		}
	}
	return out
}

// CheckAll runs every fleet invariant. strict additionally demands
// exact submit accounting — only valid for scenarios without
// mid-request faults (no partitions or truncation while submits are in
// flight).
func CheckAll(rep *Report, js []NodeJournal, strict bool) []Violation {
	var out []Violation
	out = append(out, CheckJournalOrder(js)...)
	out = append(out, CheckNoLostJobs(rep, js)...)
	out = append(out, CheckResultCoherence(js)...)
	out = append(out, CheckSubmitAccounting(rep, js, strict)...)
	out = append(out, CheckNoOrphans(rep)...)
	out = append(out, CheckMetricsConsistency(rep, js)...)
	return out
}
