package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"artisan/internal/cluster"
	"artisan/internal/jobs"
)

// EventKind names one scripted fault.
type EventKind string

const (
	EvKill      EventKind = "kill"      // crash-stop a node
	EvRestart   EventKind = "restart"   // reboot a killed node over its data dir
	EvPartition EventKind = "partition" // drop the node's link
	EvHeal      EventKind = "heal"      // clear all network faults on the node
	EvLatency   EventKind = "latency"   // fixed brownout delay on the link
	EvTruncate  EventKind = "truncate"  // cut the next Count response bodies
	EvDiskFault EventKind = "diskfault" // fail the next Count journal appends (<=0: all)
)

// Event is one scripted fault, fired just before submission index At.
// Keying the script to submission indices (not timers) is what makes a
// scenario replay identically across runs.
type Event struct {
	At      int
	Kind    EventKind
	Node    int
	Latency time.Duration
	Count   int
}

// Accepted records one submission the client saw acknowledged.
type Accepted struct {
	ID         string // fleet-unique job id ("n0-j-7")
	Key        string // canonical body — the coalescing/cache key
	Cached     bool   // served from a result cache, not journaled
	DeadlineMs int    // budget the submission carried (0 = none)
}

// NodeSweep is the end-of-run state of one node, gathered while the
// fleet is still live.
type NodeSweep struct {
	Node          int
	Alive         bool
	ReadOnly      bool
	Restarts      int
	Queued        int
	Running       int
	JobStatus     map[string]string // live job id → status
	StatsCorrupt  int               // /stats → store.journal.corrupt
	MetricCorrupt float64           // /metrics → artisan_store_corrupt_total
	MetricRO      float64           // /metrics → artisan_store_readonly
}

// Report is everything the invariant checkers need: what the client
// observed, and what each node claimed at the end.
type Report struct {
	Submitted       int
	Accepted        []Accepted
	AcceptedUnknown int         // 202 whose body was unreadable (truncated response)
	Rejected        map[int]int // non-202 status → count
	Sweeps          []NodeSweep
}

// CachedCount is how many accepted submissions were cache hits.
func (r *Report) CachedCount() int {
	c := 0
	for _, a := range r.Accepted {
		if a.Cached {
			c++
		}
	}
	return c
}

// Run drives the seeded workload through the router while firing the
// fault script, then heals the fleet, restarts dead nodes, waits for
// the drain barrier, and sweeps the end state. The returned report
// feeds CheckAll.
func (f *Fleet) Run() (*Report, error) {
	cfg := f.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Rejected: make(map[int]int)}
	var bodies []string

	for i := 0; i < cfg.Jobs; i++ {
		for _, ev := range cfg.Events {
			if ev.At == i {
				if err := f.apply(ev); err != nil {
					return rep, err
				}
			}
		}

		body := fmt.Sprintf(`{"group":"G-%d","seed":%d}`, 1+rng.Intn(3), 1000+i)
		if len(bodies) > 0 && rng.Float64() < cfg.DupRate {
			body = bodies[rng.Intn(len(bodies))]
		}
		bodies = append(bodies, body)

		deadlineMs := 0
		if cfg.DeadlineEvery > 0 && i%cfg.DeadlineEvery == cfg.DeadlineEvery-1 {
			deadlineMs = cfg.DeadlineMs
		}
		rep.Submitted++
		f.submit(rep, body, deadlineMs)

		// Interleave polls so hedged reads run under the same faults.
		if i%3 == 2 && len(rep.Accepted) > 0 {
			f.poll(rep.Accepted[rng.Intn(len(rep.Accepted))].ID)
		}
	}

	// Late events (At >= Jobs) fire after the last submission.
	for _, ev := range cfg.Events {
		if ev.At >= cfg.Jobs {
			if err := f.apply(ev); err != nil {
				return rep, err
			}
		}
	}

	// Heal everything and bring dead nodes back so the drain barrier and
	// the lost-job check see the whole fleet. Quiesce before the
	// convergence wait: a restarted node replays and drains regardless of
	// ring membership, and a store poisoned read-only answers /healthz
	// with 503 forever — it can never rejoin, so the router converges to
	// the writable node count only.
	for _, n := range f.nodes {
		f.Heal(n.Index)
		if !n.Alive() {
			if err := f.Restart(n.Index); err != nil {
				return rep, err
			}
		}
	}
	if err := f.AwaitQuiesce(30 * time.Second); err != nil {
		return rep, err
	}
	writable := 0
	for _, n := range f.nodes {
		if srv := n.Server(); srv != nil {
			if p := srv.Persist(); p == nil || !p.Store().ReadOnly() {
				writable++
			}
		}
	}
	if err := f.WaitConverged(writable, 5*time.Second); err != nil {
		return rep, err
	}
	f.sweep(rep)
	return rep, nil
}

func (f *Fleet) apply(ev Event) error {
	switch ev.Kind {
	case EvKill:
		f.Kill(ev.Node)
	case EvRestart:
		return f.Restart(ev.Node)
	case EvPartition:
		f.Partition(ev.Node, true)
	case EvHeal:
		f.Heal(ev.Node)
	case EvLatency:
		f.SetLatency(ev.Node, ev.Latency)
	case EvTruncate:
		f.TruncateNext(ev.Node, ev.Count)
	case EvDiskFault:
		f.nodes[ev.Node].SetDiskFault(FailAppends(ev.Count))
	default:
		return fmt.Errorf("chaos: unknown event kind %q", ev.Kind)
	}
	return nil
}

// submit POSTs one job through the router and classifies the answer.
func (f *Fleet) submit(rep *Report, body string, deadlineMs int) {
	req := httptest.NewRequest(http.MethodPost, "http://router/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs > 0 {
		req.Header.Set(cluster.DeadlineHeader, strconv.Itoa(deadlineMs))
	}
	rec := httptest.NewRecorder()
	f.Router.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		rep.Rejected[rec.Code]++
		return
	}
	var ack struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil || ack.ID == "" {
		rep.AcceptedUnknown++
		return
	}
	rep.Accepted = append(rep.Accepted, Accepted{
		ID: ack.ID, Key: cluster.ShardKey([]byte(body)),
		Cached: ack.Cached, DeadlineMs: deadlineMs,
	})
}

// poll GETs one job through the router — traffic for the hedged read
// path; the answer itself is checked by the invariants, not here.
func (f *Fleet) poll(id string) {
	rec := httptest.NewRecorder()
	f.Router.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://router/jobs/"+id, nil))
}

// sweep captures each node's live end state.
func (f *Fleet) sweep(rep *Report) {
	for _, n := range f.nodes {
		sw := NodeSweep{Node: n.Index, Alive: n.Alive(), Restarts: n.Restarts()}
		if srv := n.Server(); srv != nil {
			counts := srv.Jobs().Counts()
			sw.Queued = counts[jobs.StatusQueued]
			sw.Running = counts[jobs.StatusRunning]
			sw.JobStatus = make(map[string]string)
			for _, snap := range srv.Jobs().List() {
				sw.JobStatus[snap.ID] = string(snap.Status)
			}
			if p := srv.Persist(); p != nil {
				sw.ReadOnly = p.Store().ReadOnly()
			}
			sw.StatsCorrupt = scrapeStatsCorrupt(srv)
			metrics := scrape(srv, "/metrics")
			sw.MetricCorrupt = parseMetric(metrics, "artisan_store_corrupt_total")
			sw.MetricRO = parseMetric(metrics, "artisan_store_readonly")
		}
		rep.Sweeps = append(rep.Sweeps, sw)
	}
}

// scrape GETs a path directly on one node (not through the router).
func scrape(h http.Handler, path string) string {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://node"+path, nil))
	return rec.Body.String()
}

func scrapeStatsCorrupt(h http.Handler) int {
	var stats struct {
		Store struct {
			Journal struct {
				Corrupt int `json:"corrupt"`
			} `json:"journal"`
		} `json:"store"`
	}
	if err := json.Unmarshal([]byte(scrape(h, "/stats")), &stats); err != nil {
		return -1
	}
	return stats.Store.Journal.Corrupt
}

// parseMetric pulls one sample value out of Prometheus text exposition;
// NaN-free registry means 0 is a safe "absent" sentinel — callers that
// need to distinguish check the name is present first.
func parseMetric(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := strings.TrimPrefix(line, name)
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '\t') {
			continue // a longer metric name sharing the prefix
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil {
			return v
		}
	}
	return 0
}
