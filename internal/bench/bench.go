// Package bench is the generative benchmark harness: randomized,
// memorization-proof evaluation of designer agents in the style of
// CIRCUIT and AMSDesignBench. Each trial draws a fresh topology from
// the constrained random generator (2–4 stages, arbitrary compensation
// networks), derives a spec from its measured behavior, asks a designer
// to analyze the design, and scores the resulting transcript two ways:
// deterministic rubric checks (pole-allocation reasoning, spec
// arithmetic, compensation-family identification) and a groundedness
// verifier that cross-references every device/node/parameter the
// transcript cites against the actual netlist. Everything is a pure
// function of the trial seed, so serial and parallel sweeps agree
// byte for byte.
package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"artisan/internal/agents"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// Task is one randomized benchmark trial: a generated topology, its
// elaborated netlist, the ground-truth measurement, and a spec derived
// from that measurement with seeded margins (so spec arithmetic has a
// definite right answer the rubric can check).
type Task struct {
	Trial   int
	Seed    int64
	Env     topology.Env
	Topo    *topology.Topology
	Netlist *netlist.Netlist
	Spec    spec.Spec
	Report  measure.Report
}

// logUniform draws from [lo, hi] uniformly in log space.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// NewTask builds the trial'th task from its seed: a randomized load
// environment, a generated topology guaranteed measurable in it, and a
// spec whose floors sit a seeded margin away from the measured truth.
func NewTask(trial int, seed int64) (*Task, error) {
	rng := rand.New(rand.NewSource(seed))
	env := topology.DefaultEnv()
	env.CL = logUniform(rng, 2e-12, 50e-12)

	topo, nl, err := topology.NewGeneratorEnv(seed+1, env).Netlist()
	if err != nil {
		return nil, fmt.Errorf("bench: trial %d: %w", trial, err)
	}
	rep, err := measure.Analyze(nl, "out")
	if err != nil {
		return nil, fmt.Errorf("bench: trial %d unmeasurable: %w", trial, err)
	}
	minPM := rep.PM - (5 + 10*rng.Float64())
	if minPM < 15 {
		minPM = 15
	}
	if minPM > 75 {
		minPM = 75
	}
	sp := spec.Spec{
		Name:      fmt.Sprintf("GEN-%03d", trial),
		MinGainDB: rep.GainDB - (3 + 9*rng.Float64()),
		MinGBW:    rep.GBW * (0.4 + 0.4*rng.Float64()),
		MinPM:     minPM,
		MaxPower:  rep.Power * (1.2 + rng.Float64()),
		CL:        env.CL,
		RL:        env.RL,
		VDD:       1.8,
	}
	return &Task{
		Trial: trial, Seed: seed, Env: env,
		Topo: topo, Netlist: nl, Spec: sp, Report: rep,
	}, nil
}

// Designer is an agent under benchmark: given a task, it produces an
// analysis transcript. Implementations must be deterministic functions
// of the task (all randomness seeded from Task.Seed), or the harness's
// serial/parallel equivalence breaks.
type Designer interface {
	Name() string
	Analyze(ctx context.Context, t *Task) (*agents.Transcript, error)
}

// TrialResult is one (designer, trial) outcome.
type TrialResult struct {
	Designer string
	Trial    int
	// Groundedness verdict and citation accounting.
	GroundPass bool
	Citations  int
	Grounded   int
	Findings   int
	// Rubric verdict.
	Rubric RubricResult
	// FoM is the ground-truth figure of merit of the generated design
	// under the derived spec.
	FoM float64
	// Credited: the trial counts toward the designer's headline scores
	// (grounded and at least two of three rubric checks).
	Credited bool
}

// RunTrial executes one benchmark trial for one designer.
func RunTrial(ctx context.Context, d Designer, t *Task) (TrialResult, error) {
	if err := ctx.Err(); err != nil {
		return TrialResult{}, err
	}
	tr, err := d.Analyze(ctx, t)
	if err != nil {
		return TrialResult{}, fmt.Errorf("bench: %s on trial %d: %w", d.Name(), t.Trial, err)
	}
	gr := agents.VerifyGrounding(tr, t.Netlist)
	rubric := ScoreRubric(tr, t)
	res := TrialResult{
		Designer:   d.Name(),
		Trial:      t.Trial,
		GroundPass: gr.Pass(),
		Citations:  gr.Citations,
		Grounded:   gr.Grounded,
		Findings:   len(gr.Findings),
		Rubric:     rubric,
		FoM:        t.Spec.FoMOf(t.Report),
	}
	res.Credited = res.GroundPass && rubric.Score() >= 2.0/3
	return res, nil
}
