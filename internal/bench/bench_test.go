package bench

import (
	"context"
	"testing"

	"artisan/internal/agents"
)

// TestNewTaskDeterministic: the same (trial, seed) yields the same
// netlist text and spec — the harness's anti-memorization randomness is
// all seeded.
func TestNewTaskDeterministic(t *testing.T) {
	a, err := NewTask(3, 1003)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTask(3, 1003)
	if err != nil {
		t.Fatal(err)
	}
	if a.Netlist.String() != b.Netlist.String() {
		t.Fatalf("netlists differ across identical seeds:\n%s\nvs\n%s", a.Netlist, b.Netlist)
	}
	if a.Spec != b.Spec {
		t.Fatalf("specs differ: %+v vs %+v", a.Spec, b.Spec)
	}
	c, err := NewTask(4, 1004)
	if err != nil {
		t.Fatal(err)
	}
	if a.Netlist.String() == c.Netlist.String() {
		t.Fatal("different seeds produced identical netlists — trials are not randomized")
	}
}

// TestReferenceDesignerBrackets: the roster brackets the score space.
// retrieval must be grounded with full rubric credit on ≥95% of trials,
// terse grounded with zero rubric credit, fabricator never grounded.
func TestReferenceDesignerBrackets(t *testing.T) {
	const trials = 40
	ctx := context.Background()
	retrievalPass := 0
	for i := 0; i < trials; i++ {
		task, err := NewTask(i, int64(2000+i))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}

		r, err := RunTrial(ctx, retrievalDesigner{}, task)
		if err != nil {
			t.Fatalf("retrieval trial %d: %v", i, err)
		}
		if r.GroundPass && r.Rubric.Score() == 1 {
			retrievalPass++
		} else if !r.GroundPass {
			tr, _ := retrievalDesigner{}.Analyze(ctx, task)
			t.Errorf("retrieval ungrounded on trial %d: %s",
				i, agents.VerifyGrounding(tr, task.Netlist))
		} else {
			t.Errorf("retrieval rubric %v on trial %d", r.Rubric, i)
		}
		if !r.Credited && r.GroundPass && r.Rubric.Score() == 1 {
			t.Errorf("trial %d: full-score retrieval not credited", i)
		}

		te, err := RunTrial(ctx, terseDesigner{}, task)
		if err != nil {
			t.Fatalf("terse trial %d: %v", i, err)
		}
		if !te.GroundPass {
			t.Errorf("terse ungrounded on trial %d", i)
		}
		if te.Rubric.Score() != 0 {
			t.Errorf("terse scored rubric %v on trial %d — should be content-free", te.Rubric, i)
		}
		if te.Credited {
			t.Errorf("terse credited on trial %d despite empty rubric", i)
		}

		f, err := RunTrial(ctx, fabricatorDesigner{}, task)
		if err != nil {
			t.Fatalf("fabricator trial %d: %v", i, err)
		}
		if f.GroundPass {
			t.Errorf("fabricator passed grounding on trial %d — injections missed", i)
		}
	}
	if retrievalPass < trials*95/100 {
		t.Fatalf("retrieval grounded+full-rubric on %d/%d trials; want >=95%%", retrievalPass, trials)
	}
}

// TestFabricationsAllCaught: every injected ungrounded citation is
// caught, classified with the right kind, and attributed to the
// injection's own transcript entry — not to the grounded prefix.
func TestFabricationsAllCaught(t *testing.T) {
	for i := 0; i < 25; i++ {
		task, err := NewTask(i, int64(3000+i))
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		tr, err := fabricatorDesigner{}.Analyze(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		rep := agents.VerifyGrounding(tr, task.Netlist)
		injected := fabrications(task)
		clean := retrievalAnalysis(task)
		for _, inj := range injected {
			found := false
			for _, g := range rep.Findings {
				if g.Token == inj.Token && g.Kind == inj.Kind {
					found = true
					if g.Seq < len(clean.Entries) {
						t.Errorf("trial %d: finding %v attributed to grounded entry %d", i, g, g.Seq)
					}
				}
			}
			if !found {
				t.Errorf("trial %d: injection (%s %q) not caught; findings: %v",
					i, inj.Kind, inj.Token, rep.Findings)
			}
		}
		if len(rep.Findings) != len(injected) {
			t.Errorf("trial %d: %d findings for %d injections — grounded prefix leaked: %v",
				i, len(rep.Findings), len(injected), rep.Findings)
		}
	}
}

// TestDesignerRoster: the registry resolves every roster name and
// rejects unknowns.
func TestDesignerRoster(t *testing.T) {
	names := []string{"retrieval", "terse", "fabricator"}
	ds := Designers()
	if len(ds) != len(names) {
		t.Fatalf("roster has %d designers, want %d", len(ds), len(names))
	}
	for i, want := range names {
		if ds[i].Name() != want {
			t.Errorf("roster[%d] = %q, want %q", i, ds[i].Name(), want)
		}
		if DesignerByName(want) == nil {
			t.Errorf("DesignerByName(%q) = nil", want)
		}
	}
	if DesignerByName("gpt") != nil {
		t.Error("DesignerByName resolved an unknown name")
	}
}
