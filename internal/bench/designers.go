package bench

// Reference designers for the generative harness. These are not LLMs —
// they are deterministic transcript synthesizers that bracket the score
// space so the harness itself is testable:
//
//	retrieval  — reads every claim off the actual netlist and report;
//	             fully grounded, full rubric credit. The ceiling.
//	terse      — grounded but content-free; passes verification and
//	             fails the rubric. Separates the two scoring axes.
//	fabricator — the retrieval analysis plus seeded ungrounded
//	             citations (a fabricated device, an off-by-one node,
//	             a wrong-unit parameter). The groundedness verifier
//	             must catch every injection; this is the chaos probe
//	             the acceptance gate keys on.
//
// All three are pure functions of the Task, so serial and parallel
// harness runs produce identical transcripts.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"artisan/internal/agents"
	"artisan/internal/topology"
	"artisan/internal/units"
)

// Designers returns the reference designer roster in fixed order.
func Designers() []Designer {
	return []Designer{retrievalDesigner{}, terseDesigner{}, fabricatorDesigner{}}
}

// DesignerByName resolves a roster designer; nil if unknown.
func DesignerByName(name string) Designer {
	for _, d := range Designers() {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// promptFor renders the task statement shared by all designers. Spec
// values that shadow stamped devices (CL, RL) are formatted with
// units.Format so the grounding check round-trips.
func promptFor(t *Task) string {
	return fmt.Sprintf(
		"Analyze %s: a generated %d-stage amplifier driving CL = %sF / RL = %sOhm. "+
			"Targets: gain over %.1f dB, bandwidth over %.4g Hz, phase margin over %.1f deg, power under %sW.",
		t.Spec.Name, t.Topo.NumStages(), units.Format(t.Spec.CL), units.Format(t.Spec.RL),
		t.Spec.MinGainDB, t.Spec.MinGBW, t.Spec.MinPM, units.Format(t.Spec.MaxPower))
}

// retrievalAnalysis is the fully grounded, rubric-complete analysis:
// every device parameter is read back from the stamped netlist, the
// pole/GBW/FoM lines are computed from the measured report, and the
// compensation claim is the topology's own family set.
func retrievalAnalysis(t *Task) *agents.Transcript {
	tr := &agents.Transcript{}
	tr.Add(agents.RolePrompter, promptFor(t))

	nodes := topology.SkeletonNodesN(t.Topo.NumStages())
	var b strings.Builder
	for i := range t.Topo.Stages {
		gm := t.Netlist.Find(fmt.Sprintf("Gm%d", i+1))
		ro := t.Netlist.Find(fmt.Sprintf("Ro%d", i+1))
		cp := t.Netlist.Find(fmt.Sprintf("Cp%d", i+1))
		if gm == nil || ro == nil || cp == nil {
			continue
		}
		fmt.Fprintf(&b, "Stage %d: Gm%d = %sS into Ro%d = %sOhm with parasitic Cp%d = %sF at node %s. ",
			i+1, i+1, units.Format(gm.Value), i+1, units.Format(ro.Value),
			i+1, units.Format(cp.Value), nodes[i+1])
	}
	tr.Add(agents.RoleDesigner, strings.TrimSpace(b.String()))

	pole := t.Report.GBW / t.Report.DCGain
	tr.Add(agents.RoleDesigner, fmt.Sprintf(
		"Pole allocation: dominant pole at %.4gHz from the compensated first stage; "+
			"unity-gain crossover at GBW = %.4gHz with phase margin %.1f deg.",
		pole, t.Report.GBW, t.Report.PM))
	tr.Add(agents.RoleDesigner, fmt.Sprintf(
		"Figure of merit: FoM = %.4g MHz-pF/mW for %s at measured power %sW.",
		t.Spec.FoMOf(t.Report), t.Spec.Name, units.Format(t.Report.Power)))
	tr.Add(agents.RoleDesigner, "compensation: "+strings.Join(t.Topo.CompFamilies(), ", "))
	return tr
}

type retrievalDesigner struct{}

func (retrievalDesigner) Name() string { return "retrieval" }

func (retrievalDesigner) Analyze(_ context.Context, t *Task) (*agents.Transcript, error) {
	return retrievalAnalysis(t), nil
}

// terseDesigner is grounded (its one citation is read from the spec,
// which shadows the stamped load) but offers none of the reasoning the
// rubric checks for.
type terseDesigner struct{}

func (terseDesigner) Name() string { return "terse" }

func (terseDesigner) Analyze(_ context.Context, t *Task) (*agents.Transcript, error) {
	tr := &agents.Transcript{}
	tr.Add(agents.RolePrompter, promptFor(t))
	tr.Add(agents.RoleDesigner, fmt.Sprintf(
		"Looks stable; CL = %sF at node out is an easy load.", units.Format(t.Spec.CL)))
	return tr, nil
}

// Fabrication is one seeded ungrounded citation the fabricator injects.
// Tests re-derive the injection set with fabrications() to assert the
// verifier catches each token with the expected finding kind.
type Fabrication struct {
	Kind  agents.GroundFindingKind
	Token string
	Text  string
}

// fabrications derives the trial's injection set from Task.Seed: a
// device the elaborator never stamped, a signal node one past the
// skeleton, and an existing capacitor cited a factor 1000 off.
func fabrications(t *Task) []Fabrication {
	rng := rand.New(rand.NewSource(t.Seed ^ 0xfab))
	n := t.Topo.NumStages()

	dev := fmt.Sprintf("Gm%d", n+3+rng.Intn(5))
	node := fmt.Sprintf("n%d", n+rng.Intn(3))
	out := []Fabrication{
		{agents.UngroundedDevice, dev,
			fmt.Sprintf("Slew rate is limited by the tail current of %s.", dev)},
		{agents.UngroundedNode, node,
			fmt.Sprintf("Parasitic coupling at node %s degrades the phase margin.", node)},
	}
	if cp := t.Netlist.Find("Cp1"); cp != nil {
		out = append(out, Fabrication{agents.WrongUnit, "Cp1",
			fmt.Sprintf("The output pole is set by Cp1 = %sF.", units.Format(cp.Value*1000))})
	}
	return out
}

// fabricatorDesigner emits the retrieval analysis, then appends the
// seeded injections as separate designer entries (so each finding is
// attributable to exactly one transcript line).
type fabricatorDesigner struct{}

func (fabricatorDesigner) Name() string { return "fabricator" }

func (fabricatorDesigner) Analyze(_ context.Context, t *Task) (*agents.Transcript, error) {
	tr := retrievalAnalysis(t)
	for _, f := range fabrications(t) {
		tr.Add(agents.RoleDesigner, f.Text)
	}
	return tr, nil
}
