package bench

// Deterministic rubric checks over a designer transcript. Unlike the
// groundedness verifier (which only asks "is every citation real?"),
// the rubric asks whether the analysis contains the reasoning the task
// demands, and whether its arithmetic is right against the ground-truth
// measurement:
//
//	pole   — pole-allocation reasoning present: a "dominant pole at
//	         <f>Hz" claim whose value is within 25% of GBW/DCGain
//	         (the single-pole estimate the skeleton obeys).
//	spec   — spec arithmetic correct: the claimed GBW is within 5% of
//	         the measured one AND the claimed FoM is within 5% of the
//	         spec's figure of merit for the measured report.
//	comp   — the claimed compensation families are non-empty and a
//	         subset of the families actually present in the topology.
//
// All three are pure string/number checks — no model in the loop — so
// rubric scores are exactly reproducible.

import (
	"math"
	"regexp"
	"strconv"
	"strings"

	"artisan/internal/agents"
)

// Claim patterns. Values are rendered by designers with %.4g and a
// literal unit tail (never units.Format — "mHz" would parse as
// megahertz), so a plain float parse recovers them.
var (
	polePat = regexp.MustCompile(`dominant pole (?:at|near) ([0-9][0-9.eE+-]*)\s*Hz`)
	gbwPat  = regexp.MustCompile(`\bGBW = ([0-9][0-9.eE+-]*)\s*Hz`)
	fomPat  = regexp.MustCompile(`\bFoM = ([0-9][0-9.eE+-]*)`)
	compPat = regexp.MustCompile(`compensation: ([A-Za-z-]+(?:, [A-Za-z-]+)*)`)
)

// Tolerances: the pole estimate is a first-order approximation, so it
// gets slack; GBW and FoM are read straight off the report, so they
// must be tight.
const (
	poleTol = 0.25
	specTol = 0.05
)

// RubricResult is the three-check verdict over one transcript.
type RubricResult struct {
	PoleOK bool `json:"pole_ok"`
	SpecOK bool `json:"spec_ok"`
	CompOK bool `json:"comp_ok"`
}

// Score is the fraction of rubric checks passed, in {0, 1/3, 2/3, 1}.
func (r RubricResult) Score() float64 {
	n := 0.0
	for _, ok := range []bool{r.PoleOK, r.SpecOK, r.CompOK} {
		if ok {
			n++
		}
	}
	return n / 3
}

func (r RubricResult) String() string {
	mark := func(ok bool) string {
		if ok {
			return "✓"
		}
		return "✗"
	}
	return "pole" + mark(r.PoleOK) + " spec" + mark(r.SpecOK) + " comp" + mark(r.CompOK)
}

// ScoreRubric runs the three checks over the non-tool entries of the
// transcript against the task's ground truth.
func ScoreRubric(tr *agents.Transcript, t *Task) RubricResult {
	var b strings.Builder
	for _, e := range tr.Entries {
		if e.Role == agents.RoleTool {
			continue
		}
		b.WriteString(e.Text)
		b.WriteString("\n")
	}
	text := b.String()

	var res RubricResult
	if v, ok := firstFloat(polePat, text); ok {
		truth := t.Report.GBW / t.Report.DCGain
		res.PoleOK = within(v, truth, poleTol)
	}
	gbw, gok := firstFloat(gbwPat, text)
	fom, fok := firstFloat(fomPat, text)
	res.SpecOK = gok && fok &&
		within(gbw, t.Report.GBW, specTol) &&
		within(fom, t.Spec.FoMOf(t.Report), specTol)

	if m := compPat.FindStringSubmatch(text); m != nil {
		actual := map[string]bool{}
		for _, f := range t.Topo.CompFamilies() {
			actual[f] = true
		}
		claimed := strings.Split(m[1], ", ")
		res.CompOK = len(claimed) > 0
		for _, f := range claimed {
			if !actual[f] {
				res.CompOK = false
				break
			}
		}
	}
	return res
}

// firstFloat parses the first capture of pat in text.
func firstFloat(pat *regexp.Regexp, text string) (float64, bool) {
	m := pat.FindStringSubmatch(text)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	return v, err == nil
}

// within reports |v - truth| <= tol·|truth|.
func within(v, truth, tol float64) bool {
	if truth == 0 {
		return v == 0
	}
	return math.Abs(v-truth) <= tol*math.Abs(truth)
}
