package core

import "testing"

// FuzzParsePrompt: arbitrary prompts must never panic; accepted specs
// must be physically plausible.
func FuzzParsePrompt(f *testing.F) {
	f.Add("gain >85dB, PM >55°, GBW >0.7MHz, Power <250uW, CL = 10pF")
	f.Add("design an opamp: gain 100dB gbw 1MHz pm 60 power 100uW load 5pF")
	f.Add("gain gain gain")
	f.Add("")
	f.Add("GAIN > 90dB; PM > 60; GBW > 2MHz; POWER < 1mW; CL = 100pF")
	f.Fuzz(func(t *testing.T, prompt string) {
		sp, err := ParsePrompt(prompt)
		if err != nil {
			return
		}
		if sp.MinGainDB < 20 || sp.MinGainDB > 200 {
			t.Fatalf("accepted implausible gain %g from %q", sp.MinGainDB, prompt)
		}
		if sp.CL <= 0 || sp.CL > 1e-6 {
			t.Fatalf("accepted implausible CL %g from %q", sp.CL, prompt)
		}
	})
}
