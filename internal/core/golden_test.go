package core

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"artisan/internal/llm"
	"artisan/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The interpretability artifact is a deliverable (Fig. 7): the G-1 chat
// log of the deterministic expert is pinned as a golden file so wording
// or flow regressions are caught. Regenerate with:
//
//	go test ./internal/core -run TestGoldenTranscript -update
func TestGoldenTranscript(t *testing.T) {
	a := NewWithModel(llm.NewDomainModel(1, 0))
	g1, _ := spec.Group("G-1")
	out, err := a.Design(context.Background(), g1)
	if err != nil || !out.Success {
		t.Fatalf("design failed: %v", err)
	}
	got := out.Transcript.Chat()
	path := filepath.Join("testdata", "golden_g1_chat.txt")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript drifted from golden file; inspect and run with -update if intentional.\n--- got (%d bytes) vs golden (%d bytes)", len(got), len(want))
	}
}
