package core

import (
	"context"
	"strings"
	"testing"

	"artisan/internal/llm"
	"artisan/internal/spec"
	"artisan/internal/units"
)

func TestDesignG1EndToEnd(t *testing.T) {
	a := NewWithModel(llm.NewDomainModel(1, 0)) // deterministic
	g1, _ := spec.Group("G-1")
	out, err := a.Design(context.Background(), g1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("G-1 design failed: %s", out.FailReason)
	}
	if out.Transistor == nil {
		t.Fatal("no transistor-level mapping")
	}
	if len(out.Transistor.Devices) < 9 {
		t.Errorf("transistor netlist has %d devices", len(out.Transistor.Devices))
	}
	chat := out.Transcript.Chat()
	if !strings.Contains(chat, "[gm/Id] mapped to") {
		t.Error("gm/Id step missing from transcript")
	}
}

func TestDesignAllGroupsDeterministic(t *testing.T) {
	for _, g := range spec.Groups() {
		a := NewWithModel(llm.NewDomainModel(2, 0))
		out, err := a.Design(context.Background(), g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !out.Success {
			t.Errorf("%s failed: %s", g.Name, out.FailReason)
		}
	}
}

func TestParsePrompt(t *testing.T) {
	sp, err := ParsePrompt("Please design an opamp meeting the following specs: " +
		"gain >85dB, PM >55°, GBW >0.7MHz, and Power <250uW with capacitive load CL = 10pF.")
	if err != nil {
		t.Fatal(err)
	}
	if sp.MinGainDB != 85 || sp.MinPM != 55 {
		t.Errorf("gain/pm = %g/%g", sp.MinGainDB, sp.MinPM)
	}
	if !units.ApproxEqual(sp.MinGBW, 0.7e6, 1e-9) {
		t.Errorf("GBW = %g", sp.MinGBW)
	}
	if !units.ApproxEqual(sp.MaxPower, 250e-6, 1e-9) {
		t.Errorf("Power = %g", sp.MaxPower)
	}
	if !units.ApproxEqual(sp.CL, 10e-12, 1e-9) {
		t.Errorf("CL = %g", sp.CL)
	}
	if sp.RL != 1e6 || sp.VDD != 1.8 {
		t.Error("defaults not applied")
	}
}

func TestParsePromptVariants(t *testing.T) {
	// The paper's own group G-5 phrasing via Spec.Prompt round-trips.
	g5, _ := spec.Group("G-5")
	sp, err := ParsePrompt(g5.Prompt())
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(sp.CL, 1e-9, 1e-9) {
		t.Errorf("CL = %g, want 1n", sp.CL)
	}
	if sp.MinGainDB != 85 {
		t.Errorf("gain = %g", sp.MinGainDB)
	}
}

func TestParsePromptErrors(t *testing.T) {
	bad := []string{
		"design me something nice",
		"gain >85dB only",
		"gain >9999dB, PM >55, GBW >1MHz, Power <250uW, CL = 10pF",
		"gain >85dB, PM >55, GBW >1MHz, Power <250uW, CL = 1e-3", // 1 mF load is implausible
	}
	for _, p := range bad {
		if _, err := ParsePrompt(p); err == nil {
			t.Errorf("ParsePrompt(%q) should fail", p)
		}
	}
}

func TestDesignPrompt(t *testing.T) {
	a := NewWithModel(llm.NewDomainModel(3, 0))
	out, err := a.DesignPrompt(context.Background(), "gain >85dB, PM >55°, GBW >0.7MHz, Power <250uW, CL = 10pF")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Errorf("prompt-driven design failed: %s", out.FailReason)
	}
}

func TestBaselineModelsThroughWorkflow(t *testing.T) {
	g1, _ := spec.Group("G-1")
	for _, m := range []llm.DesignerModel{llm.NewGPT4Model(), llm.NewLlama2Model()} {
		a := NewWithModel(m)
		out, err := a.Design(context.Background(), g1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if out.Success {
			t.Errorf("%s should fail the complete workflow", m.Name())
		}
		if out.Transistor != nil {
			t.Errorf("%s: no mapping should happen on failure", m.Name())
		}
	}
}

func TestTrainPipelineEndToEnd(t *testing.T) {
	a, tab, rep, err := TrainPipeline(0.002, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("Table1 rows = %d", len(tab.Rows))
	}
	if !rep.DAPT.Improved() {
		t.Errorf("training did not improve held-out loss: %v", rep.DAPT.LossCurve)
	}
	// The trained Artisan still designs G-1.
	g1, _ := spec.Group("G-1")
	out, err := a.Design(context.Background(), g1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Errorf("trained Artisan failed G-1: %s", out.FailReason)
	}
}

// End-to-end two-stage design: the "other opamp topologies" extension of
// §2.2 — a buffer-class spec flows through the identical workflow and
// comes out as a mapped two-stage circuit.
func TestTwoStageEndToEnd(t *testing.T) {
	a := NewWithModel(llm.NewDomainModel(6, 0))
	out, err := a.DesignPrompt(context.Background(), "gain >70dB, PM >55°, GBW >2MHz, Power <150uW, CL = 5pF")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("two-stage design failed: %s", out.FailReason)
	}
	if out.Arch != "SMC" && out.Arch != "SMCNR" {
		t.Errorf("arch = %s, want SMC family", out.Arch)
	}
	if !out.Topology.TwoStage {
		t.Error("result should be a two-stage topology")
	}
	if out.Transistor == nil {
		t.Fatal("no transistor mapping")
	}
	// Two-stage mapping: pair + mirrors + tail + 1 CS + 1 load = 7.
	if len(out.Transistor.Devices) != 7 {
		t.Errorf("transistor count = %d, want 7", len(out.Transistor.Devices))
	}
}
