// Package core is the Artisan framework itself — the paper's primary
// contribution. It wires the pieces into the Fig. 2 workflow: given
// user-defined specs, the multi-agent session recommends an architecture
// (ToT), runs the methodological design flow (CoT with calculator and
// simulator tools), verifies against the specs, applies topological
// modifications on failure, optionally invokes the parameter-tuning tool,
// and finally maps the behavioral design to the transistor level with the
// gm/Id scripts.
package core

import (
	"context"
	"fmt"
	"strings"

	"artisan/internal/agents"
	"artisan/internal/corpus"
	"artisan/internal/gmid"
	"artisan/internal/llm"
	"artisan/internal/resilience"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/units"
)

// Artisan is a configured instance of the framework.
type Artisan struct {
	Model llm.DesignerModel
	Opts  agents.Options
	Tech  gmid.Tech
	Plan  gmid.StagePlan
	// Res, when non-nil, is the fault-tolerance ladder every session runs
	// with: retries, circuit breaker, fallback designer.
	Res *agents.Resilience
	// Faults, when non-nil, runs every session in chaos mode: the
	// designer and the simulator share this seeded injector.
	Faults *resilience.Injector
}

// New returns an Artisan driven by the knowledge-engine Artisan-LLM at
// the standard operating temperature.
func New(seed int64) *Artisan {
	return NewWithModel(llm.NewDomainModel(seed, 0.22))
}

// NewWithModel returns an Artisan driven by any designer model (used to
// run the GPT-4/Llama2 baselines through the identical workflow).
func NewWithModel(m llm.DesignerModel) *Artisan {
	return &Artisan{
		Model: m,
		Opts:  agents.DefaultOptions(),
		Tech:  gmid.Default180nm(),
		Plan:  gmid.DefaultStagePlan(),
	}
}

// Output is the complete design result: the behavioral outcome of the
// multi-agent session plus the transistor-level mapping.
type Output struct {
	*agents.Outcome
	Spec       spec.Spec
	Transistor *gmid.Netlist
}

// Design runs the full workflow for a spec. Cancelling ctx aborts the
// session at the next stage boundary. When the context carries a
// telemetry.Tracer, the whole run is traced: a "core.design" root span
// with children for the agent session, tool invocations, MNA solves,
// and BO sizing.
func (a *Artisan) Design(ctx context.Context, sp spec.Spec) (*Output, error) {
	var span *telemetry.Span
	ctx, span = telemetry.StartSpan(ctx, "core.design")
	span.SetAttr("spec", sp.Name)
	defer span.End()
	session := agents.NewSession(a.Model, sp, a.Opts)
	session.Res = a.Res
	if a.Faults != nil {
		session.Designer = llm.NewChaosDesigner(a.Model, a.Faults)
		session.Sim.Faults = a.Faults
	}
	out, err := session.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &Output{Outcome: out, Spec: sp}
	if out.Success && out.Topology != nil {
		_, mapSpan := telemetry.StartSpan(ctx, "gmid.map")
		tn, err := gmid.Map(a.Tech, a.Plan, out.Topology, sp.VDD)
		mapSpan.End()
		if err != nil {
			// The behavioral design stands even if a corner-case mapping
			// fails; record it in the transcript instead of failing.
			out.Transcript.Add(agents.RoleVerdict, "gm/Id mapping failed: "+err.Error())
		} else {
			res.Transistor = tn
			out.Transcript.Add(agents.RoleTool,
				fmt.Sprintf("[gm/Id] mapped to %d transistors, %s total bias",
					len(tn.Devices), units.Format(tn.ITotal)))
		}
	}
	return res, nil
}

// DesignPrompt parses a natural-language spec request (the Q0 format of
// Fig. 7) and runs the workflow.
func (a *Artisan) DesignPrompt(ctx context.Context, prompt string) (*Output, error) {
	sp, err := ParsePrompt(prompt)
	if err != nil {
		return nil, err
	}
	return a.Design(ctx, sp)
}

// ParsePrompt extracts a Spec from a natural-language request like
// "design an opamp with gain >85dB, PM >55°, GBW >0.7MHz, Power <250uW
// and CL = 10pF". Unstated fields take the paper's defaults (RL = 1 MΩ,
// VDD = 1.8 V).
func ParsePrompt(prompt string) (spec.Spec, error) {
	sp := spec.Spec{Name: "custom", RL: 1e6, VDD: 1.8}
	low := strings.ToLower(prompt)
	var err error
	if sp.MinGainDB, err = numberNear(low, []string{"gain"}); err != nil {
		return sp, fmt.Errorf("core: %w", err)
	}
	if sp.MinGBW, err = numberNear(low, []string{"gbw", "bandwidth"}); err != nil {
		return sp, fmt.Errorf("core: %w", err)
	}
	if sp.MinPM, err = numberNear(low, []string{"pm", "phase margin"}); err != nil {
		return sp, fmt.Errorf("core: %w", err)
	}
	if sp.MaxPower, err = numberNear(low, []string{"power"}); err != nil {
		return sp, fmt.Errorf("core: %w", err)
	}
	if sp.CL, err = numberNear(low, []string{"cl", "load"}); err != nil {
		return sp, fmt.Errorf("core: %w", err)
	}
	if sp.MinGainDB < 20 || sp.MinGainDB > 200 {
		return sp, fmt.Errorf("core: implausible gain spec %g dB", sp.MinGainDB)
	}
	if sp.CL <= 0 || sp.CL > 1e-6 {
		return sp, fmt.Errorf("core: implausible load %g F", sp.CL)
	}
	return sp, nil
}

// numberNear finds the first engineering value following any of the
// keywords (skipping relational symbols and filler).
func numberNear(low string, keys []string) (float64, error) {
	for _, key := range keys {
		i := strings.Index(low, key)
		if i < 0 {
			continue
		}
		rest := low[i+len(key):]
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ' ' || r == '>' || r == '<' || r == '=' || r == ',' || r == ':'
		})
		for j, f := range fields {
			if j > 3 {
				break // value should be adjacent to the keyword
			}
			f = strings.Trim(f, ".;)")
			if v, err := units.Parse(f); err == nil {
				return v, nil
			}
		}
	}
	return 0, fmt.Errorf("no value found for %v in prompt", keys)
}

// TrainPipeline builds the dataset at the given scale and trains the
// knowledge-engine Artisan-LLM — the §3.4 pipeline end to end. It returns
// an Artisan driven by the trained model plus the dataset accounting and
// training report.
func TrainPipeline(scale float64, seed int64) (*Artisan, corpus.Table1, *llm.TrainReport, error) {
	cfg := corpus.DefaultConfig(seed)
	if scale > 0 {
		cfg.Scale = scale
	}
	build, err := corpus.Generate(cfg)
	if err != nil {
		return nil, corpus.Table1{}, nil, err
	}
	model, report, err := llm.Train(build.Dataset(), llm.DefaultTrainConfig(seed))
	if err != nil {
		return nil, corpus.Table1{}, nil, err
	}
	return NewWithModel(model), build.Table1(cfg.Scale), report, nil
}
