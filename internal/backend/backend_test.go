package backend

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"artisan/internal/design"
	"artisan/internal/gmid"
	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// archFor mirrors the knowledge base's architecture routing: NMC for the
// general groups, NMCF for the high-GBW group, DFCFC for the huge load.
func archFor(group string) string {
	switch group {
	case "G-3":
		return "NMCF"
	case "G-5":
		return "DFCFC"
	default:
		return "NMC"
	}
}

func measureEval(ctx context.Context, sp spec.Spec, tp *topology.Topology) (measure.Report, error) {
	env := topology.DefaultEnv()
	env.CL, env.RL = sp.CL, sp.RL
	nl, err := tp.Elaborate(env)
	if err != nil {
		return measure.Report{}, err
	}
	return measure.AnalyzeContext(ctx, nl, "out")
}

// detune multiplies every tunable value by a seeded log-normal jitter,
// standing in for a badly mis-sized starting point.
func detune(t *topology.Topology, seed int64, sigma float64) *topology.Topology {
	rng := rand.New(rand.NewSource(seed))
	jitter := func() float64 {
		v := rng.NormFloat64() * sigma
		if v > 1.5 {
			v = 1.5
		}
		if v < -1.5 {
			v = -1.5
		}
		return math.Exp(v)
	}
	out := t.Clone()
	for i := range out.Stages {
		if out.Stages[i].Gm > 0 {
			out.Stages[i].Gm *= jitter()
		}
	}
	for i := range out.Conns {
		c := &out.Conns[i]
		if c.Type.HasGm() {
			c.Gm *= jitter()
		}
		if c.Type.HasC() {
			c.C *= jitter()
		}
		if c.Type.HasR() {
			c.R *= jitter()
		}
	}
	return out
}

func problemFor(t *testing.T, group string, seed int64, budget int) (Problem, spec.Spec) {
	t.Helper()
	g, err := spec.Group(group)
	if err != nil {
		t.Fatal(err)
	}
	des, err := design.Design(archFor(group), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	topo := detune(des.Topo, seed, 0.8)
	return Problem{
		Spec: g, Topo: topo, Budget: budget,
		Eval: func(ctx context.Context, tp *topology.Topology) (measure.Report, error) {
			return measureEval(ctx, g, tp)
		},
	}, g
}

func TestRegistry(t *testing.T) {
	want := []string{"bo", "ga", "hybrid", "whitebox"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	b, err := Get(DefaultName)
	if err != nil || b.Name() != DefaultName {
		t.Fatalf("default backend: %v", err)
	}
	if _, err := Get("annealing"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestLadder(t *testing.T) {
	cases := map[string][]string{
		"hybrid":   {"hybrid", "bo"},
		"whitebox": {"whitebox", "bo"},
		"ga":       {"ga", "bo"},
		"bo":       {"bo"},
	}
	for name, want := range cases {
		if got := Ladder(name); !reflect.DeepEqual(got, want) {
			t.Errorf("Ladder(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestCapabilities(t *testing.T) {
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := b.Capabilities()
		if !caps.Deterministic {
			t.Errorf("%s must be deterministic", name)
		}
		analytic := name == "whitebox" || name == "hybrid"
		if caps.Analytic != analytic {
			t.Errorf("%s Analytic = %v", name, caps.Analytic)
		}
	}
}

func TestBackendsRunAndAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			p, _ := problemFor(t, "G-1", 7, 60)
			r1, err := b.Size(context.Background(), p, 42)
			if err != nil {
				t.Fatalf("Size: %v", err)
			}
			if r1.Evals == 0 || r1.Evals > p.Budget {
				t.Errorf("evals = %d, budget %d", r1.Evals, p.Budget)
			}
			if r1.Topo == nil {
				t.Fatal("nil result topology")
			}
			if r1.Success && (r1.EvalsToSuccess < 1 || r1.EvalsToSuccess > r1.Evals) {
				t.Errorf("EvalsToSuccess = %d out of range", r1.EvalsToSuccess)
			}
			r2, err := b.Size(context.Background(), p, 42)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Score != r2.Score || r1.Evals != r2.Evals || r1.EvalsToSuccess != r2.EvalsToSuccess {
				t.Errorf("nondeterministic: (%g,%d,%d) vs (%g,%d,%d)",
					r1.Score, r1.Evals, r1.EvalsToSuccess, r2.Score, r2.Evals, r2.EvalsToSuccess)
			}
		})
	}
}

func TestWhiteboxRecoversDetunedNMC(t *testing.T) {
	p, g := problemFor(t, "G-1", 3, 40)
	b, _ := Get("whitebox")
	res, err := b.Size(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seeded {
		t.Error("whitebox result not marked seeded")
	}
	if !res.Success {
		t.Fatalf("whitebox failed to recover the detuned design: score %g, report %s",
			res.Score, res.Report.String())
	}
	// The analytic seed itself should already satisfy the spec: success
	// within the first few evaluations, not after a long search.
	if res.EvalsToSuccess > 3 {
		t.Errorf("EvalsToSuccess = %d, want the seed region (<= 3)", res.EvalsToSuccess)
	}
	if !g.Satisfied(res.Report) {
		t.Error("reported success but spec unsatisfied")
	}
}

func TestHybridSeedsIncumbent(t *testing.T) {
	p, _ := problemFor(t, "G-1", 3, 60)
	b, _ := Get("hybrid")
	res, err := b.Size(context.Background(), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seeded {
		t.Error("hybrid result not marked seeded")
	}
	if !res.Success {
		t.Errorf("hybrid failed on a seedable problem: %s", res.Report.String())
	}
	if res.EvalsToSuccess > 3 {
		t.Errorf("EvalsToSuccess = %d, want incumbent-led (<= 3)", res.EvalsToSuccess)
	}
}

func TestSizeLadderDegradesToBO(t *testing.T) {
	// A topology outside the card families: a bare R shunt carries no
	// recognizable compensation, so the white-box seed must fail and the
	// ladder must fall back to plain BO.
	topo := &topology.Topology{
		Name: "bare",
		Stages: []topology.Stage{
			{Gm: 1e-4, A0: 160}, {Gm: 1e-4, A0: 45}, {Gm: 1e-3, A0: 45},
		},
		Conns: []topology.Connection{
			{Pos: topology.Position{From: "n1", To: "0"}, Type: topology.ConnR, R: 1e5},
		},
	}
	g, _ := spec.Group("G-1")
	p := Problem{
		Spec: g, Topo: topo, Budget: 40,
		Eval: func(ctx context.Context, tp *topology.Topology) (measure.Report, error) {
			return measureEval(ctx, g, tp)
		},
	}
	var hops []string
	res, err := SizeLadder(context.Background(), "whitebox", p, 1, func(from, to string, err error) {
		hops = append(hops, from+">"+to)
		if err == nil {
			t.Error("degradation hop without error")
		}
	})
	if err != nil {
		t.Fatalf("ladder exhausted: %v", err)
	}
	if res.Backend != "bo" {
		t.Errorf("result backend = %q, want bo", res.Backend)
	}
	if len(hops) != 1 || hops[0] != "whitebox>bo" {
		t.Errorf("hops = %v", hops)
	}
}

func TestSizeLadderContextErrorIsTerminal(t *testing.T) {
	p, _ := problemFor(t, "G-1", 3, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	_, err := SizeLadder(ctx, "whitebox", p, 1, func(from, to string, err error) { called = true })
	if err == nil {
		t.Fatal("cancelled ladder succeeded")
	}
	if called {
		t.Error("cancelled run degraded instead of stopping")
	}
}

func TestProblemValidation(t *testing.T) {
	g, _ := spec.Group("G-1")
	b, _ := Get("bo")
	_, err := b.Size(context.Background(), Problem{Spec: g}, 1)
	if err == nil || !strings.Contains(err.Error(), "topology") {
		t.Errorf("nil topology accepted: %v", err)
	}
	des, _ := design.Design("NMC", g, nil)
	_, err = b.Size(context.Background(), Problem{Spec: g, Topo: des.Topo, Budget: 40}, 1)
	if err == nil || !strings.Contains(err.Error(), "evaluator") {
		t.Errorf("nil evaluator accepted: %v", err)
	}
	p, _ := problemFor(t, "G-1", 1, 5)
	if _, err := b.Size(context.Background(), p, 1); err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	g, _ := spec.Group("G-1")
	des, err := design.Design("NMC", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpace(des.Topo)
	if err != nil {
		t.Fatal(err)
	}
	// NMC: 3 stage gms + 2 caps.
	if s.Dim() != 5 {
		t.Fatalf("dim = %d, want 5", s.Dim())
	}
	x, err := s.PointOf(des.Topo)
	if err != nil {
		t.Fatal(err)
	}
	tp := s.Build(x)
	for i := range tp.Stages {
		got, want := tp.Stages[i].Gm, des.Topo.Stages[i].Gm
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("stage %d gm round trip: %g vs %g", i, got, want)
		}
	}
	for i := range x {
		if x[i] < s.Lo[i] || x[i] > s.Hi[i] {
			t.Errorf("center coordinate %d outside bounds", i)
		}
	}
	// Two-stage skeletons skip the dead third-stage slot.
	smc := topology.SMC(1e-4, 1e-3, 1e-12)
	s2, err := NewSpace(smc)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Dim() != 3 {
		t.Errorf("SMC dim = %d, want 3 (two gms + Cc)", s2.Dim())
	}
}

// TestSeedInBoundsAllGroupsAllCorners is the satellite coverage
// requirement: for every spec group and every process corner, the
// white-box seed must land inside the sizing problem's bounds (the ±4×
// log-space window around the designed topology).
func TestSeedInBoundsAllGroupsAllCorners(t *testing.T) {
	plan := gmid.DefaultStagePlan()
	for _, g := range spec.Groups() {
		des, err := design.Design(archFor(g.Name), g, nil)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		space, err := NewSpace(des.Topo)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for _, tech := range gmid.Corners() {
			seeded, err := Seed(g, des.Topo, tech, plan)
			if err != nil {
				t.Errorf("%s @ %s: seed failed: %v", g.Name, tech.Name, err)
				continue
			}
			x, err := space.PointOf(seeded)
			if err != nil {
				t.Errorf("%s @ %s: %v", g.Name, tech.Name, err)
				continue
			}
			for i := range x {
				if x[i] < space.Lo[i] || x[i] > space.Hi[i] {
					t.Errorf("%s @ %s: seed coordinate %d = %g outside [%g, %g]",
						g.Name, tech.Name, i, x[i], space.Lo[i], space.Hi[i])
				}
			}
		}
	}
}

func TestSeedClassifiesAllLibraryArchitectures(t *testing.T) {
	g, _ := spec.Group("G-1")
	for _, arch := range design.Architectures() {
		sp := g
		if arch == "DFCFC" {
			sp, _ = spec.Group("G-5")
		}
		des, err := design.Design(arch, sp, nil)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		got, err := classify(des.Topo)
		if err != nil {
			t.Errorf("%s: classify failed: %v", arch, err)
			continue
		}
		if got != arch {
			t.Errorf("classify(%s) = %s", arch, got)
		}
		if _, err := Seed(sp, des.Topo, gmid.Default180nm(), gmid.DefaultStagePlan()); err != nil {
			t.Errorf("Seed(%s): %v", arch, err)
		}
	}
}

func TestSeedSatisfiesSpecOnDesignedTopologies(t *testing.T) {
	// The analytic point should meet the spec outright on the calibrated
	// families (that is the whole premise of the white-box engine).
	for _, group := range []string{"G-1", "G-2", "G-4"} {
		g, _ := spec.Group(group)
		des, err := design.Design("NMC", g, nil)
		if err != nil {
			t.Fatal(err)
		}
		seeded, err := Seed(g, des.Topo, gmid.Default180nm(), gmid.DefaultStagePlan())
		if err != nil {
			t.Fatalf("%s: %v", group, err)
		}
		rep, err := measureEval(context.Background(), g, seeded)
		if err != nil {
			t.Fatalf("%s: %v", group, err)
		}
		if !g.Satisfied(rep) {
			t.Errorf("%s: seed misses spec: %s", group, spec.Describe(g.Check(rep)))
		}
	}
}
