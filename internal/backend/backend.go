// Package backend defines the pluggable sizing subsystem: a common
// SizingBackend interface over the repository's parameter optimizers —
// the GP/BO loop (internal/sizing), a real-coded GA (internal/opt), an
// analytic white-box gm/Id engine, and a hybrid that seeds BO with the
// white-box operating point. The White-Box Reasoning line of work
// (PAPERS.md) motivates the split: an analytic first guess plus local
// refinement reaches spec-satisfying designs in a fraction of the
// simulator evaluations a pure black-box search needs, and a shared
// interface is what lets the agent loop, the server, and the evaluation
// harness compare them head to head.
package backend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// Problem is one sizing task: a fixed topology whose continuous
// parameters (stage and connection gm/C/R values) are tuned against a
// spec under a hard evaluation budget. Eval measures one candidate; it
// is supplied by the caller so the backend inherits whatever simulator
// wrapper (invocation counting, fault injection, tracing) the caller
// runs — the backends never import the agent loop.
type Problem struct {
	Spec   spec.Spec
	Topo   *topology.Topology
	Eval   func(ctx context.Context, tp *topology.Topology) (measure.Report, error)
	Budget int // maximum Eval calls
}

func (p Problem) validate() error {
	if p.Topo == nil {
		return errors.New("backend: nil topology")
	}
	if p.Eval == nil {
		return errors.New("backend: nil evaluator")
	}
	if p.Budget < 10 {
		return fmt.Errorf("backend: budget %d too small (need >= 10)", p.Budget)
	}
	return nil
}

// Result is the outcome of one backend run.
type Result struct {
	Backend string // name of the backend that produced the result
	Topo    *topology.Topology
	Report  measure.Report
	Score   float64
	Success bool // best candidate satisfies the spec
	Evals   int  // simulator evaluations consumed
	// EvalsToSuccess is the evaluation index (1-based) at which the
	// first spec-satisfying candidate appeared; 0 if none did.
	EvalsToSuccess int
	// Seeded reports whether an analytic white-box seed was installed
	// (always true for whitebox; true for hybrid unless seeding failed).
	Seeded bool
}

// Capabilities describes what a backend can promise.
type Capabilities struct {
	Analytic      bool // derives an operating point without simulating
	Global        bool // searches beyond a local neighborhood
	Deterministic bool // same seed ⇒ same result
}

// SizingBackend sizes a fixed topology against a spec. Implementations
// must be deterministic in (Problem, seed) and must respect ctx
// cancellation between evaluations.
type SizingBackend interface {
	Name() string
	Capabilities() Capabilities
	Size(ctx context.Context, p Problem, seed int64) (*Result, error)
}

// DefaultName is the backend used when the caller does not choose.
const DefaultName = "bo"

var (
	regMu    sync.RWMutex
	registry = map[string]SizingBackend{}
)

// Register installs a backend under its name. Duplicate registration is
// a programming error.
func Register(b SizingBackend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic("backend: duplicate registration of " + b.Name())
	}
	registry[b.Name()] = b
}

// Get returns the named backend.
func Get(name string) (SizingBackend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("backend: unknown sizing backend %q (have %v)", name, Names())
	}
	return b, nil
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ladder returns the degradation chain for a preferred backend: the
// backend itself followed by its fallbacks, ending at plain BO — the
// mirror of the resilience fallback-model ladder. The analytic backends
// degrade to BO because their seed derivation can legitimately fail
// (unsupported topology family, unrealizable device sizes at a process
// corner), while BO only needs a valid parameter space.
func Ladder(name string) []string {
	switch name {
	case "hybrid":
		return []string{"hybrid", "bo"}
	case "whitebox":
		return []string{"whitebox", "bo"}
	case "ga":
		return []string{"ga", "bo"}
	default:
		return []string{name}
	}
}

// SizeLadder runs the preferred backend, degrading down its ladder on
// failure. onDegrade (optional) observes each hop so callers can record
// it (the agent transcript, the harness degradation counter). Context
// errors are terminal — a cancelled session must not silently retry on
// a fallback backend.
func SizeLadder(ctx context.Context, name string, p Problem, seed int64, onDegrade func(from, to string, err error)) (*Result, error) {
	chain := Ladder(name)
	var lastErr error
	for i, n := range chain {
		b, err := Get(n)
		if err != nil {
			return nil, err
		}
		res, err := b.Size(ctx, p, seed)
		if err == nil {
			res.Backend = n
			return res, nil
		}
		if ctx.Err() != nil {
			return res, err
		}
		lastErr = err
		if i+1 < len(chain) && onDegrade != nil {
			onDegrade(n, chain[i+1], err)
		}
	}
	return nil, fmt.Errorf("backend: ladder %v exhausted: %w", chain, lastErr)
}

// tracker adapts a Problem to a scalar objective, enforcing the budget
// and keeping the incumbent. A failed or over-budget evaluation scores
// far below any real candidate (-1e4) so optimizers rank it last.
type tracker struct {
	p       Problem
	evals   int
	firstOK int
	best    *Result
}

func newTracker(p Problem) *tracker { return &tracker{p: p} }

func (t *tracker) eval(ctx context.Context, tp *topology.Topology) float64 {
	if t.evals >= t.p.Budget {
		return -1e4
	}
	t.evals++
	rep, err := t.p.Eval(ctx, tp)
	if err != nil {
		return -1e4
	}
	s := spec.Score(t.p.Spec, rep)
	ok := t.p.Spec.Satisfied(rep)
	if ok && t.firstOK == 0 {
		t.firstOK = t.evals
	}
	if t.best == nil || s > t.best.Score {
		t.best = &Result{Topo: tp.Clone(), Report: rep, Score: s, Success: ok}
	}
	return s
}

// result finalizes the run. An empty run (every evaluation failed, or
// none ran) is an error so the ladder can degrade.
func (t *tracker) result() (*Result, error) {
	if t.best == nil {
		return nil, errors.New("backend: no candidate evaluated successfully")
	}
	t.best.Evals = t.evals
	t.best.EvalsToSuccess = t.firstOK
	return t.best, nil
}
