package backend

import (
	"context"

	"artisan/internal/opt"
	"artisan/internal/sizing"
	"artisan/internal/telemetry"
)

// gaBackend wraps the real-coded genetic sizer of internal/opt: same
// parameter space and objective as BO, population-based search dynamics
// instead of a surrogate model.
type gaBackend struct{}

func init() { Register(gaBackend{}) }

func (gaBackend) Name() string { return "ga" }

func (gaBackend) Capabilities() Capabilities {
	return Capabilities{Global: true, Deterministic: true}
}

func (gaBackend) Size(ctx context.Context, p Problem, seed int64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "sizing.ga")
	defer span.End()
	space, err := NewSpace(p.Topo)
	if err != nil {
		return nil, err
	}
	tr := newTracker(p)
	prob := sizing.Problem{Lo: space.Lo, Hi: space.Hi, Eval: func(x []float64) float64 {
		tp := space.Build(x)
		if tp.Validate() != nil {
			return -1e4
		}
		return tr.eval(ctx, tp)
	}}
	if _, err := opt.SizeGA(ctx, prob, p.Budget, seed, opt.DefaultSizeGAOpts()); err != nil {
		if res, rerr := tr.result(); rerr == nil && ctx.Err() != nil {
			return res, err
		}
		return nil, err
	}
	return tr.result()
}
