package backend

import (
	"context"

	"artisan/internal/gmid"
)

// hybridBackend feeds the white-box analytic seed into the BO loop as
// its incumbent: the GP starts from the knowledge-card operating point
// (one evaluation) and spends the rest of the budget exploring around
// it — analytic insight plus global search. When the seed derivation
// fails the run degrades to plain BO in place (Seeded=false) rather
// than erroring, since BO needs nothing from the seed.
type hybridBackend struct{}

func init() { Register(hybridBackend{}) }

func (hybridBackend) Name() string { return "hybrid" }

func (hybridBackend) Capabilities() Capabilities {
	return Capabilities{Analytic: true, Global: true, Deterministic: true}
}

func (hybridBackend) Size(ctx context.Context, p Problem, seed int64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	var incumbent []float64
	seeded, err := Seed(p.Spec, p.Topo, gmid.Default180nm(), gmid.DefaultStagePlan())
	if err == nil {
		space, serr := NewSpace(p.Topo)
		if serr != nil {
			return nil, serr
		}
		if x0, perr := space.PointOf(seeded); perr == nil {
			space.Clamp(x0)
			incumbent = x0
		}
	}
	res, err := sizeBO(ctx, p, seed, incumbent)
	if res != nil {
		res.Seeded = incumbent != nil
	}
	return res, err
}
