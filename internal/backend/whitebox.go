package backend

import (
	"context"
	"fmt"
	"math"

	"artisan/internal/design"
	"artisan/internal/gmid"
	"artisan/internal/sizing"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/topology"
)

// The white-box engine re-derives a topology's operating point from the
// knowledge cards instead of searching for it: it classifies the
// compensation family from the structure, applies that family's
// closed-form pole-allocation rules (the same cards the CoT design flow
// executes), back-solves every device through the gm/Id tables —
// gm target → inversion coefficient → ID/W → W, with realizability
// checked against the technology card — and backs the bias off when the
// summed device currents bust the power budget. The result is an
// analytic seed a local refiner polishes in a handful of simulations,
// where a black-box search spends its whole init phase just finding the
// right decade.

// whiteboxBackend is the analytic gm/Id engine plus bounded Nelder-Mead
// local refinement.
type whiteboxBackend struct{}

func init() { Register(whiteboxBackend{}) }

func (whiteboxBackend) Name() string { return "whitebox" }

func (whiteboxBackend) Capabilities() Capabilities {
	return Capabilities{Analytic: true, Deterministic: true}
}

func (whiteboxBackend) Size(ctx context.Context, p Problem, seed int64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "sizing.whitebox")
	defer span.End()
	seeded, err := Seed(p.Spec, p.Topo, gmid.Default180nm(), gmid.DefaultStagePlan())
	if err != nil {
		span.SetAttr("seed", "failed")
		return nil, err
	}
	space, err := NewSpace(p.Topo)
	if err != nil {
		return nil, err
	}
	x0, err := space.PointOf(seeded)
	if err != nil {
		return nil, err
	}
	// The analytic point may fall outside the ±4× window around the
	// (possibly badly detuned) starting values; the boundary point is
	// still the closest representable seed.
	space.Clamp(x0)
	tr := newTracker(p)
	prob := sizing.Problem{Lo: space.Lo, Hi: space.Hi, Eval: func(x []float64) float64 {
		tp := space.Build(x)
		if tp.Validate() != nil {
			return -1e4
		}
		return tr.eval(ctx, tp)
	}}
	// Nelder-Mead spends d+1 evaluations on the simplex, then roughly two
	// per iteration; size the iteration count to the remaining budget.
	iters := (p.Budget - (space.Dim() + 1)) / 2
	if iters < 1 {
		iters = 1
	}
	if _, err := sizing.NelderMead(prob, x0, iters); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		if res, rerr := tr.result(); rerr == nil {
			return res, err
		}
		return nil, err
	}
	res, err := tr.result()
	if err != nil {
		return nil, err
	}
	res.Seeded = true
	return res, nil
}

// Seed derives the analytic operating point for a topology under a spec:
// family classification, card formulas, gm/Id device back-solve, power
// backoff. It returns a copy of the topology with every stage and
// connection value replaced by the derived point. An unsupported family
// or an unrealizable device (W beyond the technology's maximum at the
// chosen efficiency) is an error — the degradation ladder then falls
// back to black-box search.
func Seed(sp spec.Spec, topo *topology.Topology, tech gmid.Tech, plan gmid.StagePlan) (*topology.Topology, error) {
	arch, err := classify(topo)
	if err != nil {
		return nil, err
	}
	knobs, err := design.DefaultKnobs(arch, sp)
	if err != nil {
		return nil, err
	}
	vals, err := solveCards(arch, sp, knobs)
	if err != nil {
		return nil, err
	}
	out := topo.Clone()
	if err := applySeed(out, arch, vals); err != nil {
		return nil, err
	}
	// Gain budget: same cascode-upgrade move as the design flow.
	if !out.TwoStage && projectedGainDB(out, sp) < sp.MinGainDB+1 {
		out.Stages[1].A0 = 160
	}
	// gm/Id back-solve: size every transconductor, checking realizability
	// and accumulating the bias current the devices actually draw.
	itot, err := backSolve(out, tech, plan)
	if err != nil {
		return nil, err
	}
	const ibias = 2e-6 // bias-network overhead, as in the design cards
	if pow := sp.VDD * (itot + ibias); pow > 0.9*sp.MaxPower {
		// Back the transconductances off proportionally. GBW scales with
		// gm1, so never scale below the card's GBW margin cushion — a
		// seed that trades a small GBW overshoot for meeting power.
		scale := 0.9 * sp.MaxPower / pow
		if floor := 1 / knobs["GBWMargin"]; scale < floor {
			scale = floor
		}
		scaleGms(out, scale)
		if _, err := backSolve(out, tech, plan); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// classify infers the compensation family from the topology structure.
func classify(t *topology.Topology) (string, error) {
	if err := t.Validate(); err != nil {
		return "", fmt.Errorf("backend: seed: %w", err)
	}
	at := func(from, to string) *topology.Connection {
		return t.ConnAt(topology.Position{From: from, To: to})
	}
	outer := at("n1", "out")
	if t.TwoStage {
		if outer == nil || !outer.Type.HasC() {
			return "", fmt.Errorf("backend: two-stage topology %q has no Miller capacitor", t.Name)
		}
		if outer.Type.HasR() {
			return "SMCNR", nil
		}
		return "SMC", nil
	}
	for _, node := range []string{"n1", "n2"} {
		if c := at(node, "0"); c != nil && c.Type.ShuntOnly() {
			return "DFCFC", nil
		}
	}
	if outer != nil && outer.Type == topology.ConnCascodeC {
		return "TCFC", nil
	}
	if c := at("out", "n1"); c != nil && c.Type.HasGm() {
		return "AZC", nil
	}
	inN2, inOut := at("in", "n2"), at("in", "out")
	if inN2 != nil && inN2.Type.HasGm() {
		if inOut != nil && inOut.Type.HasGm() {
			return "NGCC", nil
		}
		return "MNMC", nil
	}
	if outer == nil || !outer.Type.HasC() {
		return "", fmt.Errorf("backend: topology %q has no recognizable compensation structure", t.Name)
	}
	if outer.Type.HasGm() {
		return "NMCF", nil
	}
	if outer.Type.HasR() {
		return "NMCNR", nil
	}
	return "NMC", nil
}

// solveCards evaluates the family's closed-form sizing rules — the same
// formulas the CoT design procedures run through the calculator tool.
func solveCards(arch string, sp spec.Spec, k design.Knobs) (map[string]float64, error) {
	v := map[string]float64{}
	gbw := k["GBWMargin"] * sp.MinGBW
	cl := sp.CL
	switch arch {
	case "NMC", "NMCNR":
		cm1 := k["Cm1"]
		cm2 := k["Cm2Ratio"] * cm1
		gm3 := 8 * math.Pi * gbw * cl
		v["Cm1"], v["Cm2"], v["gm3"] = cm1, cm2, gm3
		v["gm1"] = gm3 * cm1 / (4 * cl)
		v["gm2"] = gm3 * cm2 / (2 * cl)
		if arch == "NMCNR" {
			v["Rz"] = k["RzFactor"] / gm3
		}
	case "NMCF":
		cm1 := k["Cm1"]
		v["Cm1"], v["Cm2"] = cm1, k["Cm2Ratio"]*cm1
		v["gm1"] = 2 * math.Pi * gbw * cm1
		v["gm2"] = k["Gm2Ratio"] * v["gm1"]
		v["gm3"] = k["Gm3Factor"] * 2 * math.Pi * gbw * cl
		v["gmf"] = k["GmfRatio"] * v["gm3"]
	case "MNMC":
		cm1 := k["Cm1"]
		cm2 := k["Cm2Ratio"] * cm1
		v["Cm1"], v["Cm2"] = cm1, cm2
		v["gm1"] = 2 * math.Pi * gbw * cm1
		v["gm2"] = k["Gm2Boost"] * 4 * math.Pi * gbw * cm2
		v["gm3"] = k["Gm3Boost"] * 8 * math.Pi * gbw * cl
		v["gmf"] = k["GmfRatio"] * v["gm1"]
	case "NGCC":
		cm1 := k["Cm1"]
		cm2 := k["Cm2Ratio"] * cm1
		v["Cm1"], v["Cm2"] = cm1, cm2
		v["gm1"] = 2 * math.Pi * gbw * cm1
		v["gm2"] = 4 * math.Pi * gbw * cm2
		v["gm3"] = 8 * math.Pi * gbw * cl
		v["gmf1"], v["gmf2"] = v["gm1"], v["gm3"]
	case "DFCFC":
		cm1 := k["Cm1"]
		v["Cm1"] = cm1
		v["gm1"] = 2 * math.Pi * gbw * cm1
		v["gm2"] = k["Gm2Ratio"] * v["gm1"]
		v["gm3"] = k["Gm3Factor"] * 2 * math.Pi * gbw * cl
		v["gm4"] = k["Gm4Ratio"] * v["gm3"]
		v["Cm3"] = k["Cm3Ratio"] * cm1
		v["gmf"] = k["GmfRatio"] * v["gm3"]
	case "TCFC":
		cmt := k["Cmt"]
		v["Cmt"], v["Cm2"] = cmt, k["Cm2"]
		v["gm1"] = 2 * math.Pi * gbw * cmt
		v["gm2"] = k["Gm2Ratio"] * v["gm1"]
		v["gmt"] = k["GmtRatio"] * v["gm1"]
		v["gm3"] = k["Gm3Factor"] * 2 * math.Pi * gbw * cl
	case "AZC":
		cm1 := k["Cm1"]
		v["Cm1"], v["Cm2"] = cm1, k["Cm2"]
		v["gm1"] = 2 * math.Pi * gbw * cm1
		v["gm2"] = k["Gm2Ratio"] * v["gm1"]
		v["gm3"] = k["Gm3Factor"] * 4 * math.Pi * gbw * cl
		v["gma"] = k["GmaRatio"] * v["gm1"]
	case "SMC", "SMCNR":
		cc := k["Cc"]
		v["Cc"] = cc
		v["gm1"] = 2 * math.Pi * gbw * cc
		v["gm2"] = k["Gm2Factor"] * 2 * math.Pi * gbw * cl
		if arch == "SMCNR" {
			v["Rz"] = k["RzFactor"] / v["gm2"]
		}
	default:
		return nil, fmt.Errorf("backend: no sizing cards for %q", arch)
	}
	return v, nil
}

// applySeed writes the solved values into the topology's stages and
// connections, keyed by the same positions the library constructors use.
func applySeed(t *topology.Topology, arch string, v map[string]float64) error {
	set := func(from, to string, gm, c, r float64) error {
		conn := t.ConnAt(topology.Position{From: from, To: to})
		if conn == nil {
			return fmt.Errorf("backend: seed: %s family expects a connection at %s>%s", arch, from, to)
		}
		if conn.Type.HasGm() && gm > 0 {
			conn.Gm = gm
		}
		if conn.Type.HasC() && c > 0 {
			conn.C = c
		}
		if conn.Type.HasR() && r > 0 {
			conn.R = r
		}
		return nil
	}
	t.Stages[0].Gm = v["gm1"]
	if t.TwoStage {
		t.Stages[1].Gm = v["gm2"]
		return set("n1", "out", 0, v["Cc"], v["Rz"])
	}
	t.Stages[1].Gm = v["gm2"]
	t.Stages[2].Gm = v["gm3"]
	switch arch {
	case "NMC", "NMCNR":
		if err := set("n1", "out", 0, v["Cm1"], v["Rz"]); err != nil {
			return err
		}
		return set("n2", "out", 0, v["Cm2"], 0)
	case "NMCF":
		if err := set("n1", "out", v["gmf"], v["Cm1"], 0); err != nil {
			return err
		}
		return set("n2", "out", 0, v["Cm2"], 0)
	case "MNMC":
		if err := set("n1", "out", 0, v["Cm1"], 0); err != nil {
			return err
		}
		if err := set("n2", "out", 0, v["Cm2"], 0); err != nil {
			return err
		}
		return set("in", "n2", v["gmf"], 0, 0)
	case "NGCC":
		if err := set("n1", "out", 0, v["Cm1"], 0); err != nil {
			return err
		}
		if err := set("n2", "out", 0, v["Cm2"], 0); err != nil {
			return err
		}
		if err := set("in", "n2", v["gmf1"], 0, 0); err != nil {
			return err
		}
		return set("in", "out", v["gmf2"], 0, 0)
	case "DFCFC":
		if err := set("n1", "out", v["gmf"], v["Cm1"], 0); err != nil {
			return err
		}
		for _, node := range []string{"n1", "n2"} {
			if c := t.ConnAt(topology.Position{From: node, To: "0"}); c != nil && c.Type.ShuntOnly() {
				return set(node, "0", v["gm4"], v["Cm3"], 0)
			}
		}
		return fmt.Errorf("backend: seed: DFCFC family lost its DFC block")
	case "TCFC":
		if err := set("n1", "out", v["gmt"], v["Cmt"], 0); err != nil {
			return err
		}
		return set("n2", "out", 0, v["Cm2"], 0)
	case "AZC":
		if err := set("n1", "out", 0, v["Cm1"], 0); err != nil {
			return err
		}
		return set("out", "n1", v["gma"], v["Cm2"], 0)
	}
	return fmt.Errorf("backend: seed: no placement rules for %q", arch)
}

// projectedGainDB is the gain-budget estimate of the design cards:
// Av = A1·A2·gm3·(Ro3||RL), Ro3 = A3/gm3.
func projectedGainDB(t *topology.Topology, sp spec.Spec) float64 {
	gm3 := t.Stages[2].Gm
	if gm3 <= 0 {
		return 0
	}
	ro3 := t.Stages[2].A0 / gm3
	rpar := ro3 * sp.RL / (ro3 + sp.RL)
	av := t.Stages[0].A0 * t.Stages[1].A0 * gm3 * rpar
	return 20 * math.Log10(av)
}

// backSolve sizes every transconductor through the gm/Id tables and
// returns the total bias current. The input pair draws two branches;
// stage and auxiliary transconductors one each.
func backSolve(t *topology.Topology, tech gmid.Tech, plan gmid.StagePlan) (float64, error) {
	itot := 0.0
	size := func(name string, gm, eff float64, pmos bool, branches float64) error {
		d, err := tech.Size(name, gm, eff, 0, pmos, "seed")
		if err != nil {
			return fmt.Errorf("backend: seed unrealizable: %w", err)
		}
		itot += branches * d.Id
		return nil
	}
	if err := size("M1", t.Stages[0].Gm, plan.InputGmID, false, 2); err != nil {
		return 0, err
	}
	if err := size("M2", t.Stages[1].Gm, plan.CSGmID, true, 1); err != nil {
		return 0, err
	}
	if !t.TwoStage {
		if err := size("M3", t.Stages[2].Gm, plan.CSGmID, false, 1); err != nil {
			return 0, err
		}
	}
	for i, c := range t.Conns {
		if !c.Type.HasGm() {
			continue
		}
		if err := size(fmt.Sprintf("MA%d", i), c.Gm, plan.AuxGmID, false, 1); err != nil {
			return 0, err
		}
	}
	return itot, nil
}

// scaleGms multiplies every transconductance (stages and auxiliary
// connections) by a factor, leaving passives untouched.
func scaleGms(t *topology.Topology, scale float64) {
	for i := range t.Stages {
		t.Stages[i].Gm *= scale
	}
	for i := range t.Conns {
		if t.Conns[i].Type.HasGm() {
			t.Conns[i].Gm *= scale
		}
	}
}
