package backend

import (
	"context"

	"artisan/internal/sizing"
	"artisan/internal/telemetry"
)

// boBackend wraps the GP/BO optimizer of internal/sizing — the
// incumbent black-box sizer the agent tuner has always used.
type boBackend struct{}

func init() { Register(boBackend{}) }

func (boBackend) Name() string { return "bo" }

func (boBackend) Capabilities() Capabilities {
	return Capabilities{Global: true, Deterministic: true}
}

func (boBackend) Size(ctx context.Context, p Problem, seed int64) (*Result, error) {
	return sizeBO(ctx, p, seed, nil)
}

// boOptions allocates the BO budget: a quarter on Latin-hypercube
// exploration (clamped to [6, 16]), the rest on acquisition iterations.
func boOptions(budget int, seed int64) sizing.Options {
	init := budget / 4
	if init < 6 {
		init = 6
	}
	if init > 16 {
		init = 16
	}
	return sizing.Options{
		InitSamples: init, Iterations: budget - init, Candidates: 256, Seed: seed,
	}
}

// sizeBO is the shared BO run: plain when incumbent is nil, seeded when
// the hybrid backend supplies the white-box point. The span name keeps
// the two distinguishable in traces.
func sizeBO(ctx context.Context, p Problem, seed int64, incumbent []float64) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	name := "sizing.bo"
	if incumbent != nil {
		name = "sizing.hybrid"
	}
	ctx, span := telemetry.StartSpan(ctx, name)
	defer span.End()
	space, err := NewSpace(p.Topo)
	if err != nil {
		return nil, err
	}
	tr := newTracker(p)
	opts := boOptions(p.Budget, seed)
	opts.Init = incumbent
	if incumbent != nil {
		// The incumbent consumes one evaluation up front.
		opts.Iterations--
	}
	prob := sizing.Problem{Lo: space.Lo, Hi: space.Hi, Eval: func(x []float64) float64 {
		tp := space.Build(x)
		if tp.Validate() != nil {
			return -1e4
		}
		return tr.eval(ctx, tp)
	}}
	if _, err := sizing.OptimizeContext(ctx, prob, opts); err != nil {
		if res, rerr := tr.result(); rerr == nil && ctx.Err() != nil {
			// Cancellation: surface the best point found so far alongside
			// the context error, like sizing.OptimizeContext does.
			return res, err
		}
		return nil, err
	}
	return tr.result()
}
