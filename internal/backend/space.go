package backend

import (
	"fmt"
	"math"

	"artisan/internal/topology"
)

// Space is the continuous parameter space of a fixed topology: one
// log-coordinate per positive stage transconductance and per connection
// element (gm/C/R as the connection type instantiates them), bounded
// ±4× around the topology's current values. The slot order matches the
// agent tuner's convention — stages first, then connections in
// declaration order — so every backend searches the same coordinates.
type Space struct {
	Lo, Hi []float64
	slots  []spaceSlot
	base   *topology.Topology
}

type spaceSlot struct {
	get func(tp *topology.Topology) float64
	set func(tp *topology.Topology, v float64)
}

// NewSpace builds the space around a topology's current values.
// Non-positive slots (the unused third stage of a two-stage skeleton)
// are skipped: they carry no value to perturb and their log-bounds
// would be degenerate.
func NewSpace(topo *topology.Topology) (*Space, error) {
	if topo == nil {
		return nil, fmt.Errorf("backend: nil topology")
	}
	s := &Space{base: topo.Clone()}
	add := func(cur float64,
		get func(tp *topology.Topology) float64,
		set func(tp *topology.Topology, v float64)) {
		if cur <= 0 {
			return
		}
		l := math.Log(cur)
		s.Lo = append(s.Lo, l-math.Log(4))
		s.Hi = append(s.Hi, l+math.Log(4))
		s.slots = append(s.slots, spaceSlot{get, set})
	}
	for i := range topo.Stages {
		i := i
		add(topo.Stages[i].Gm,
			func(tp *topology.Topology) float64 { return tp.Stages[i].Gm },
			func(tp *topology.Topology, v float64) { tp.Stages[i].Gm = v })
	}
	for i := range topo.Conns {
		i := i
		c := topo.Conns[i]
		if c.Type.HasGm() {
			add(c.Gm,
				func(tp *topology.Topology) float64 { return tp.Conns[i].Gm },
				func(tp *topology.Topology, v float64) { tp.Conns[i].Gm = v })
		}
		if c.Type.HasC() {
			add(c.C,
				func(tp *topology.Topology) float64 { return tp.Conns[i].C },
				func(tp *topology.Topology, v float64) { tp.Conns[i].C = v })
		}
		if c.Type.HasR() {
			add(c.R,
				func(tp *topology.Topology) float64 { return tp.Conns[i].R },
				func(tp *topology.Topology, v float64) { tp.Conns[i].R = v })
		}
	}
	if len(s.slots) == 0 {
		return nil, fmt.Errorf("backend: topology %q has no tunable parameters", topo.Name)
	}
	return s, nil
}

// Dim returns the number of coordinates.
func (s *Space) Dim() int { return len(s.slots) }

// Build instantiates a topology at a point of the space.
func (s *Space) Build(x []float64) *topology.Topology {
	tp := s.base.Clone()
	for i, sl := range s.slots {
		sl.set(tp, math.Exp(x[i]))
	}
	return tp
}

// PointOf projects a topology (same structure as the base) onto the
// space's coordinates. A non-positive value in a tracked slot is an
// error — the point would not be representable in log space.
func (s *Space) PointOf(tp *topology.Topology) ([]float64, error) {
	x := make([]float64, len(s.slots))
	for i, sl := range s.slots {
		v := sl.get(tp)
		if v <= 0 {
			return nil, fmt.Errorf("backend: non-positive value %g in slot %d", v, i)
		}
		x[i] = math.Log(v)
	}
	return x, nil
}

// Clamp pulls a point into the bounds, coordinate-wise, in place.
func (s *Space) Clamp(x []float64) {
	for i := range x {
		x[i] = math.Max(s.Lo[i], math.Min(s.Hi[i], x[i]))
	}
}
