package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// wireSpec is the JSON wire form of a Spec. Field names mirror the
// server's GET /groups payload so a group fetched from the service can
// be posted straight back as a custom spec.
type wireSpec struct {
	Name      string  `json:"name,omitempty"`
	MinGainDB float64 `json:"minGainDB"`
	MinGBWHz  float64 `json:"minGBWHz"`
	MinPMDeg  float64 `json:"minPMDeg"`
	MaxPowerW float64 `json:"maxPowerW"`
	CLF       float64 `json:"clF"`
	RLOhm     float64 `json:"rlOhm,omitempty"`
	VDDV      float64 `json:"vddV,omitempty"`
}

// Physical plausibility bounds enforced by Validate. They are generous
// relative to the paper's Table 2 but reject the nonsense a hostile or
// fuzzed request can carry (negative powers, terahertz GBW, NaN).
const (
	maxGainDB = 200   // dB
	maxGBWHz  = 1e12  // Hz
	maxPMDeg  = 120   // degrees
	maxPowerW = 10    // W
	maxCLF    = 1e-3  // F
	maxRLOhm  = 1e12  // Ω
	maxVDDV   = 100   // V
	minRLOhm  = 1     // Ω: a dead short is not a load
	minVDDV   = 0.1   // V: below any transistor threshold
	minGBWHz  = 1e-3  // Hz
	minPowerW = 1e-12 // W
	minCLF    = 1e-18 // F
)

// ParseJSON decodes and validates a Spec from its JSON wire form. The
// decode is strict — unknown fields and trailing data are rejected — and
// the result is range-checked with Validate, so anything ParseJSON
// accepts is safe to hand to the design and simulation pipeline. Zero
// RL/VDD take the paper's operating conditions (1 MΩ, 1.8 V); an empty
// name becomes "custom".
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireSpec
	if err := dec.Decode(&w); err != nil {
		return Spec{}, fmt.Errorf("spec: bad JSON: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("spec: trailing data after JSON value")
	}
	s := Spec{
		Name: w.Name, MinGainDB: w.MinGainDB, MinGBW: w.MinGBWHz,
		MinPM: w.MinPMDeg, MaxPower: w.MaxPowerW, CL: w.CLF,
		RL: w.RLOhm, VDD: w.VDDV,
	}
	if s.Name == "" {
		s.Name = "custom"
	}
	if s.RL == 0 {
		s.RL = 1e6
	}
	if s.VDD == 0 {
		s.VDD = 1.8
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MarshalJSON renders the wire form ParseJSON accepts, making
// Spec → JSON → Spec a lossless round trip.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireSpec{
		Name: s.Name, MinGainDB: s.MinGainDB, MinGBWHz: s.MinGBW,
		MinPMDeg: s.MinPM, MaxPowerW: s.MaxPower, CLF: s.CL,
		RLOhm: s.RL, VDDV: s.VDD,
	})
}

// Validate range-checks every field of a spec. It rejects non-finite
// values and anything outside the physically plausible envelope, so
// request handlers can trust a validated spec end to end.
func (s Spec) Validate() error {
	checks := []struct {
		name     string
		v        float64
		min, max float64
	}{
		{"minGainDB", s.MinGainDB, 0, maxGainDB},
		{"minGBWHz", s.MinGBW, minGBWHz, maxGBWHz},
		{"minPMDeg", s.MinPM, 0, maxPMDeg},
		{"maxPowerW", s.MaxPower, minPowerW, maxPowerW},
		{"clF", s.CL, minCLF, maxCLF},
		{"rlOhm", s.RL, minRLOhm, maxRLOhm},
		{"vddV", s.VDD, minVDDV, maxVDDV},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("spec: %s is not finite", c.name)
		}
		if c.v < c.min || c.v > c.max {
			return fmt.Errorf("spec: %s %g out of [%g, %g]", c.name, c.v, c.min, c.max)
		}
	}
	return nil
}
