package spec

import (
	"strings"
	"testing"

	"artisan/internal/measure"
	"artisan/internal/units"
)

func TestGroupsMatchTable2(t *testing.T) {
	gs := Groups()
	if len(gs) != 5 {
		t.Fatalf("got %d groups, want 5", len(gs))
	}
	// Table 2 rows.
	rows := []struct {
		name  string
		gain  float64
		gbw   float64
		pm    float64
		power float64
		cl    float64
	}{
		{"G-1", 85, 0.7e6, 55, 250e-6, 10e-12},
		{"G-2", 110, 0.7e6, 55, 250e-6, 10e-12},
		{"G-3", 85, 5e6, 55, 250e-6, 10e-12},
		{"G-4", 85, 0.7e6, 55, 50e-6, 10e-12},
		{"G-5", 85, 0.7e6, 55, 250e-6, 1000e-12},
	}
	for i, r := range rows {
		g := gs[i]
		if g.Name != r.name || g.MinGainDB != r.gain || g.MinGBW != r.gbw ||
			g.MinPM != r.pm || g.MaxPower != r.power || g.CL != r.cl {
			t.Errorf("group %d = %+v, want %+v", i, g, r)
		}
		if g.RL != 1e6 || g.VDD != 1.8 {
			t.Errorf("group %s: RL/VDD = %g/%g, want 1e6/1.8", g.Name, g.RL, g.VDD)
		}
	}
}

func TestGroupLookup(t *testing.T) {
	g, err := Group("g-3")
	if err != nil || g.Name != "G-3" {
		t.Errorf("Group(g-3) = %v, %v", g, err)
	}
	if _, err := Group("G-9"); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestFoM(t *testing.T) {
	// Paper Table 3, Artisan G-1: GBW=1.02MHz, CL=10pF, Power=47.8µW
	// → FoM ≈ 213. (The paper reports 289.2 including slewing terms we
	// don't model; same order.)
	f := FoM(1.02e6, 10e-12, 47.8e-6)
	if !units.ApproxEqual(f, 1.02*10/0.0478, 1e-9) {
		t.Errorf("FoM = %g", f)
	}
	if FoM(1e6, 1e-12, 0) != 0 {
		t.Error("FoM with zero power should be 0")
	}
}

func TestCheckAndSatisfied(t *testing.T) {
	g1, _ := Group("G-1")
	good := measure.Report{GainDB: 106.5, GBW: 1.02e6, PM: 60.96, Power: 47.8e-6, Stable: true}
	if !g1.Satisfied(good) {
		t.Errorf("paper's Artisan G-1 row should satisfy G-1: %v", g1.Check(good))
	}
	bad := measure.Report{GainDB: 80, GBW: 0.5e6, PM: 40, Power: 300e-6, Stable: false}
	vs := g1.Check(bad)
	if len(vs) != 5 {
		t.Errorf("got %d violations, want 5: %v", len(vs), vs)
	}
	desc := Describe(vs)
	for _, want := range []string{"Gain", "GBW", "PM", "Power", "Stability"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q: %s", want, desc)
		}
	}
	if Describe(nil) != "all specs met" {
		t.Error("empty violations should describe success")
	}
}

func TestBoundaries(t *testing.T) {
	g1, _ := Group("G-1")
	edge := measure.Report{GainDB: 85, GBW: 0.7e6, PM: 55, Power: 250e-6, Stable: true}
	if !g1.Satisfied(edge) {
		t.Errorf("exact-threshold report should pass: %v", g1.Check(edge))
	}
	edge.Power = 250.1e-6
	if g1.Satisfied(edge) {
		t.Error("power over budget should fail")
	}
}

func TestPromptAndString(t *testing.T) {
	g5, _ := Group("G-5")
	p := g5.Prompt()
	for _, want := range []string{"85", "55", "700k", "250u", "1n"} {
		if !strings.Contains(p, want) {
			t.Errorf("Prompt %q missing %q", p, want)
		}
	}
	s := g5.String()
	if !strings.Contains(s, "G-5") || !strings.Contains(s, "CL=1nF") {
		t.Errorf("String = %q", s)
	}
}
