package spec

import "artisan/internal/measure"

// Score is the constrained sizing objective shared by every optimizer in
// the repository: the FoM when every spec is met, otherwise the negative
// sum of relative violations (so an optimizer first drives violations to
// zero, then maximizes FoM). It lives here — not in the agents package —
// so the sizing backends can score candidates without importing the
// agent loop.
func Score(sp Spec, rep measure.Report) float64 {
	vs := sp.Check(rep)
	if len(vs) == 0 {
		return sp.FoMOf(rep)
	}
	pen := 0.0
	for _, v := range vs {
		switch v.Metric {
		case "Power(W)":
			pen += (v.Got - v.Limit) / v.Limit
		case "Stability":
			pen += 10
		default:
			if v.Got <= 0 {
				pen += 10
			} else {
				pen += (v.Limit - v.Got) / v.Limit
			}
		}
	}
	return -pen
}
