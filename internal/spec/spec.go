// Package spec defines opamp design specifications, the five experimental
// groups of the paper's Table 2, the small-signal figure of merit of
// Eq. (6), and the success predicate used throughout the evaluation.
package spec

import (
	"fmt"
	"strings"

	"artisan/internal/measure"
	"artisan/internal/units"
)

// Spec is a set of opamp design requirements plus operating conditions.
// Thresholds follow Table 2: minimums for Gain/GBW/PM, a maximum for Power.
type Spec struct {
	Name      string
	MinGainDB float64 // dB
	MinGBW    float64 // Hz
	MinPM     float64 // degrees
	MaxPower  float64 // W
	CL        float64 // F, load capacitance
	RL        float64 // Ω, load resistance (1 MΩ throughout the paper)
	VDD       float64 // V supply (1.8 V throughout the paper)
}

// String renders the spec in the paper's notation.
func (s Spec) String() string {
	return fmt.Sprintf("%s: Gain>%gdB GBW>%sHz PM>%g° Power<%sW CL=%sF",
		s.Name, s.MinGainDB, units.Format(s.MinGBW), s.MinPM,
		units.Format(s.MaxPower), units.Format(s.CL))
}

// Prompt renders the spec as the natural-language design request Q0 that
// opens every Artisan session (paper Fig. 7).
func (s Spec) Prompt() string {
	return fmt.Sprintf("Please design an opamp meeting the following specs: "+
		"gain >%gdB, PM >%g°, GBW >%sHz, and Power <%sW with capacitive load CL = %sF.",
		s.MinGainDB, s.MinPM, units.Format(s.MinGBW),
		units.Format(s.MaxPower), units.Format(s.CL))
}

// FoM computes the paper's Eq. (6): GBW[MHz]·CL[pF]/Power[mW].
func FoM(gbwHz, clF, powerW float64) float64 {
	if powerW <= 0 {
		return 0
	}
	return (gbwHz / 1e6) * (clF / 1e-12) / (powerW / 1e-3)
}

// FoMOf evaluates the FoM of a measured report under this spec's load.
func (s Spec) FoMOf(r measure.Report) float64 { return FoM(r.GBW, s.CL, r.Power) }

// Violation describes one unmet requirement.
type Violation struct {
	Metric string
	Got    float64
	Limit  float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: got %s, limit %s", v.Metric, units.Format(v.Got), units.Format(v.Limit))
}

// Check evaluates a measured report against the spec; an empty slice means
// every requirement is met. An unstable circuit always fails.
func (s Spec) Check(r measure.Report) []Violation {
	var vs []Violation
	if r.GainDB < s.MinGainDB {
		vs = append(vs, Violation{"Gain(dB)", r.GainDB, s.MinGainDB})
	}
	if r.GBW < s.MinGBW {
		vs = append(vs, Violation{"GBW(Hz)", r.GBW, s.MinGBW})
	}
	if r.PM < s.MinPM {
		vs = append(vs, Violation{"PM(deg)", r.PM, s.MinPM})
	}
	if r.Power > s.MaxPower {
		vs = append(vs, Violation{"Power(W)", r.Power, s.MaxPower})
	}
	if !r.Stable {
		vs = append(vs, Violation{"Stability", 0, 1})
	}
	return vs
}

// Satisfied reports whether the report meets every requirement.
func (s Spec) Satisfied(r measure.Report) bool { return len(s.Check(r)) == 0 }

// Describe summarises a check result for transcripts.
func Describe(vs []Violation) string {
	if len(vs) == 0 {
		return "all specs met"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return "violations: " + strings.Join(parts, "; ")
}

// Groups returns the paper's experimental groups G-1…G-5 (Table 2):
// G-1 baseline, G-2 high gain, G-3 high GBW, G-4 low power, G-5 huge load.
func Groups() []Spec {
	base := Spec{
		MinGainDB: 85, MinGBW: 0.7e6, MinPM: 55, MaxPower: 250e-6,
		CL: 10e-12, RL: 1e6, VDD: 1.8,
	}
	g1 := base
	g1.Name = "G-1"
	g2 := base
	g2.Name, g2.MinGainDB = "G-2", 110
	g3 := base
	g3.Name, g3.MinGBW = "G-3", 5e6
	g4 := base
	g4.Name, g4.MaxPower = "G-4", 50e-6
	g5 := base
	g5.Name, g5.CL = "G-5", 1000e-12
	return []Spec{g1, g2, g3, g4, g5}
}

// Group returns the named group ("G-1" … "G-5").
func Group(name string) (Spec, error) {
	for _, g := range Groups() {
		if strings.EqualFold(g.Name, name) {
			return g, nil
		}
	}
	return Spec{}, fmt.Errorf("spec: unknown group %q", name)
}
