package spec

import (
	"encoding/json"
	"testing"
)

// FuzzSpecJSON: the request decoder must never panic, anything it
// accepts must pass Validate, and accepted specs must survive a
// Marshal → ParseJSON round trip unchanged (Go emits the shortest float
// representation that round-trips, so exact equality is required).
func FuzzSpecJSON(f *testing.F) {
	for _, g := range Groups() {
		data, err := json.Marshal(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11}`))
	f.Add([]byte(`{"name":"x","minGainDB":1e308,"minGBWHz":1,"minPMDeg":0,"maxPowerW":1,"clF":1e-12}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"minGainDB":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseJSON(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v\ninput: %s", err, data)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec fails to marshal: %v", err)
		}
		back, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("marshalled spec fails reparse: %v\n%s", err, out)
		}
		if back != s {
			t.Fatalf("round trip changed spec:\n got %+v\nwant %+v", back, s)
		}
	})
}
