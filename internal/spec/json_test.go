package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseJSONRoundTripsGroups(t *testing.T) {
	for _, g := range Groups() {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: marshal: %v", g.Name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", g.Name, err, data)
		}
		if back != g {
			t.Errorf("%s: round trip changed spec:\n got %+v\nwant %+v", g.Name, back, g)
		}
	}
}

func TestParseJSONDefaults(t *testing.T) {
	s, err := ParseJSON([]byte(`{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || s.RL != 1e6 || s.VDD != 1.8 {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestParseJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11,"bogus":1}`,
		"trailing data":  `{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11} {}`,
		"negative gain":  `{"minGainDB":-5,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11}`,
		"zero power":     `{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":0,"clF":1e-11}`,
		"absurd GBW":     `{"minGainDB":85,"minGBWHz":1e15,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11}`,
		"negative CL":    `{"minGainDB":85,"minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":-1e-11}`,
		"not an object":  `"G-1"`,
		"empty":          ``,
		"malformed":      `{`,
		"string numbers": `{"minGainDB":"85","minGBWHz":7e5,"minPMDeg":55,"maxPowerW":2.5e-4,"clF":1e-11}`,
	}
	for name, src := range cases {
		if _, err := ParseJSON([]byte(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		} else if !strings.HasPrefix(err.Error(), "spec: ") {
			t.Errorf("%s: error not namespaced: %v", name, err)
		}
	}
}
