package agents

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"artisan/internal/llm"
	"artisan/internal/netlist"
	"artisan/internal/resilience"
	"artisan/internal/spec"
)

// chaosSession builds a G-1 session whose designer is wrapped with the
// given injector and whose resilience ladder uses fast test timings.
func chaosSession(t *testing.T, cfg resilience.InjectorConfig, res *Resilience) *Session {
	t.Helper()
	g1, err := spec.Group("G-1")
	if err != nil {
		t.Fatal(err)
	}
	m := llm.NewChaosDesigner(llm.NewDomainModel(1, 0), resilience.NewInjector(cfg))
	s := NewSession(m, g1, DefaultOptions())
	s.Res = res
	return s
}

func fastRetry(attempts int) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Seed:        1,
	}
}

// TestChaosFaultClasses drives the full session through each injected
// fault class and asserts the contract per class: transient errors are
// absorbed by retries, a dead designer degrades to the fallback model,
// and corrupted-but-parseable outputs are caught by spec verification —
// never by a crash.
func TestChaosFaultClasses(t *testing.T) {
	fallback := llm.NewDomainModel(9, 0)
	cases := []struct {
		name        string
		cfg         resilience.InjectorConfig
		res         *Resilience
		wantSuccess bool
		wantDegrade bool
		wantInChat  string
	}{
		{
			name:        "tool error absorbed by retries",
			cfg:         resilience.InjectorConfig{Seed: 2, ErrorRate: 0.3},
			res:         &Resilience{Retry: fastRetry(5)},
			wantSuccess: true,
		},
		{
			name:        "persistent error degrades to fallback",
			cfg:         resilience.InjectorConfig{Seed: 2, ErrorRate: 1},
			res:         &Resilience{Retry: fastRetry(3), Fallback: fallback},
			wantSuccess: true,
			wantDegrade: true,
			wantInChat:  "[resilience]",
		},
		{
			name: "hung backend hits per-attempt deadline then degrades",
			cfg:  resilience.InjectorConfig{Seed: 2, TimeoutRate: 1, Stall: time.Second},
			res: &Resilience{
				Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
					PerAttempt: 5 * time.Millisecond, Seed: 1},
				Fallback: fallback,
			},
			wantSuccess: true,
			wantDegrade: true,
		},
		{
			name:        "corrupted outputs caught by verification",
			cfg:         resilience.InjectorConfig{Seed: 2, CorruptRate: 1},
			res:         &Resilience{Retry: fastRetry(3), Fallback: fallback},
			wantSuccess: false,
			wantInChat:  `unknown architecture "MPMC"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := chaosSession(t, tc.cfg, tc.res)
			out, err := s.Run(context.Background())
			if err != nil {
				t.Fatalf("chaos must not surface as a session error: %v", err)
			}
			if out.Success != tc.wantSuccess {
				t.Errorf("success = %v, want %v (reason %q)", out.Success, tc.wantSuccess, out.FailReason)
			}
			if out.Degraded != tc.wantDegrade {
				t.Errorf("degraded = %v, want %v", out.Degraded, tc.wantDegrade)
			}
			if tc.wantInChat != "" && !strings.Contains(out.Transcript.Chat(), tc.wantInChat) {
				t.Errorf("transcript missing %q:\n%s", tc.wantInChat, out.Transcript.Chat())
			}
			if tc.wantDegrade && out.Resilience.Fallbacks == 0 {
				t.Errorf("degraded outcome with zero fallback count: %+v", out.Resilience)
			}
		})
	}
}

// Without a resilience ladder the injected error surfaces as a graceful
// session failure whose reason carries the typed injection sentinel.
func TestChaosFailFastWithoutResilience(t *testing.T) {
	s := chaosSession(t, resilience.InjectorConfig{Seed: 1, ErrorRate: 1}, nil)
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("fail-fast session should not survive a dead designer")
	}
	if !strings.Contains(out.FailReason, "injected") {
		t.Errorf("FailReason = %q, want the injected fault named", out.FailReason)
	}
}

// The typed error contract at the tool layer: injected faults stay
// matchable through every wrapping layer.
func TestChaosTypedErrors(t *testing.T) {
	g1, _ := spec.Group("G-1")
	sim := NewSimulator()
	sim.Faults = resilience.NewInjector(resilience.InjectorConfig{Seed: 1, ErrorRate: 1})
	topo, err := llm.NewDomainModel(1, 0).ProposeKnobs(context.Background(), "NMC", g1)
	if err != nil || topo == nil {
		t.Fatal(err)
	}
	nl := mustNetlist(t)
	if _, err := sim.MeasureNetlist(context.Background(), nl); !errors.Is(err, resilience.ErrInjected) {
		t.Errorf("err = %v, want wrapped ErrInjected", err)
	}

	stall := NewSimulator()
	stall.Faults = resilience.NewInjector(resilience.InjectorConfig{Seed: 1, TimeoutRate: 1, Stall: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := stall.MeasureNetlist(ctx, nl); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want wrapped DeadlineExceeded", err)
	}
}

// A chaotic simulator backend opens the breaker instead of being hammered
// for every candidate and retry.
func TestChaosSimulatorBreakerOpens(t *testing.T) {
	var c resilience.Counters
	s := chaosSession(t, resilience.InjectorConfig{Seed: 1},
		&Resilience{
			Retry:    fastRetry(4),
			Breaker:  resilience.NewBreaker(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Hour, Counters: &c}),
			Counters: &c,
		})
	s.Sim.Faults = resilience.NewInjector(resilience.InjectorConfig{Seed: 1, ErrorRate: 1})
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("dead simulator should fail the session")
	}
	if s.Res.Breaker.State() != resilience.BreakerOpen {
		t.Errorf("breaker state = %v, want open", s.Res.Breaker.State())
	}
	if out.Resilience.BreakerOpens < 1 {
		t.Errorf("counters = %+v, want an open recorded", out.Resilience)
	}
}

// Same seeds, same chaos: a chaotic session replays deterministically.
func TestChaosDeterministicSession(t *testing.T) {
	run := func() (*Outcome, string) {
		s := chaosSession(t,
			resilience.InjectorConfig{Seed: 5, ErrorRate: 0.3, CorruptRate: 0.1},
			&Resilience{Retry: fastRetry(4), Fallback: llm.NewDomainModel(9, 0)})
		out, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out, out.Transcript.Chat()
	}
	a, chatA := run()
	b, chatB := run()
	if a.Success != b.Success || a.Arch != b.Arch || a.Degraded != b.Degraded {
		t.Errorf("chaotic sessions diverged: %+v vs %+v", a, b)
	}
	if a.Resilience != b.Resilience {
		t.Errorf("resilience counters diverged: %+v vs %+v", a.Resilience, b.Resilience)
	}
	if chatA != chatB {
		t.Error("transcripts diverged under identical seeds")
	}
}

// A cancelled context aborts the session with a wrapped Canceled error
// rather than fabricating an outcome.
func TestChaosSessionCancellation(t *testing.T) {
	s := chaosSession(t, resilience.InjectorConfig{Seed: 1}, &Resilience{Retry: fastRetry(3)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if out != nil {
		t.Error("cancelled session must not fabricate an outcome")
	}
}

// mustNetlist elaborates a healthy NMC netlist for simulator-level tests.
func mustNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	g1, _ := spec.Group("G-1")
	s := NewSession(llm.NewDomainModel(1, 0), g1, DefaultOptions())
	out, err := s.Run(context.Background())
	if err != nil || out.Netlist == nil {
		t.Fatalf("helper session failed: %v", err)
	}
	return out.Netlist
}
