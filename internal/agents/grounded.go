package agents

// Groundedness verification (the AMSDesignBench/CIRCUIT-style check the
// generative benchmark harness runs on every designer transcript): every
// device, node, and parameter value a transcript cites is cross-
// referenced against the actual netlist under evaluation. A citation of
// a device that does not exist, a node the skeleton does not have, or a
// parameter value that disagrees with the stamped element (the classic
// wrong-unit slip: right digits, wrong SI prefix) is a finding
// attributed to the offending transcript entry. A transcript with zero
// findings is grounded.

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"artisan/internal/netlist"
	"artisan/internal/units"
)

// GroundFindingKind classifies an ungrounded citation.
type GroundFindingKind string

// The three citation classes the verifier checks.
const (
	UngroundedDevice GroundFindingKind = "device"     // cited device not in the netlist
	UngroundedNode   GroundFindingKind = "node"       // cited node not in the netlist
	WrongValue       GroundFindingKind = "value"      // cited parameter disagrees with the stamp
	WrongUnit        GroundFindingKind = "wrong-unit" // disagreement is a power-of-1000 slip
)

// GroundFinding is one ungrounded claim, attributed to the transcript
// entry (Seq) that made it.
type GroundFinding struct {
	Seq    int               `json:"seq"`
	Role   Role              `json:"role"`
	Kind   GroundFindingKind `json:"kind"`
	Token  string            `json:"token"`
	Detail string            `json:"detail"`
}

func (f GroundFinding) String() string {
	return fmt.Sprintf("entry %d (%s): %s %q %s", f.Seq, f.Role, f.Kind, f.Token, f.Detail)
}

// GroundReport is the verifier's verdict over one transcript.
type GroundReport struct {
	// Citations counts every device/node/parameter reference extracted.
	Citations int `json:"citations"`
	// Grounded counts the citations that checked out.
	Grounded int             `json:"grounded"`
	Findings []GroundFinding `json:"findings,omitempty"`
}

// Pass reports whether every extracted citation was grounded.
func (r *GroundReport) Pass() bool { return len(r.Findings) == 0 }

func (r *GroundReport) String() string {
	if r.Pass() {
		return fmt.Sprintf("grounded (%d/%d citations)", r.Grounded, r.Citations)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "UNGROUNDED (%d/%d citations, %d findings)", r.Grounded, r.Citations, len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Citation shapes. Device citations are tokens shaped like the names the
// topology elaborator can emit — skeleton elements (Gm2, Ro1, Cp3), load
// and source (RL, CL, Vin), and connection elements (Cc_c0, Gf_c2, …).
// Node citations are internal/auxiliary node tokens (n1, x0a) anywhere,
// plus any token explicitly introduced by the word "node". Parameter
// citations are "<device> = <value>" clauses whose value parses in
// engineering notation.
var (
	deviceCitePat = regexp.MustCompile(
		`\b(?:(?:Gm|Ro|Cp)\d+|(?:Cc|Cg|Rc|Rg|Gf|Eb)_c\d+|RL|CL|Vin)\b`)
	nodeCitePat  = regexp.MustCompile(`\b(?:n\d+|x\d+[ab])\b`)
	nodeWordPat  = regexp.MustCompile(`\bnode\s+([A-Za-z0-9_]+)\b`)
	paramCitePat = regexp.MustCompile(
		`\b((?:Gm|Ro|Cp)\d+|(?:Cc|Cg|Rc|Rg|Gf|Eb)_c\d+|RL|CL)\s*(?:=|≈|of)\s*([0-9][0-9.eE+-]*[a-zA-Zµ°Ω]*)`)
)

// paramTol is the relative tolerance a cited value may deviate from the
// stamped element value before it is a finding; designers legitimately
// round to a few significant digits.
const paramTol = 0.02

// VerifyGrounding cross-references every citation in the transcript
// against the netlist. Tool entries are exempt (their text echoes
// simulator output, which is grounded by construction); prompter,
// designer, decision, and verdict entries are all checked.
func VerifyGrounding(tr *Transcript, nl *netlist.Netlist) *GroundReport {
	rep := &GroundReport{}
	nodes := map[string]bool{"0": true}
	for _, nd := range nl.Nodes() {
		nodes[nd] = true
	}
	for _, e := range tr.Entries {
		if e.Role == RoleTool {
			continue
		}
		verifyEntry(rep, e, nl, nodes)
	}
	return rep
}

// verifyEntry extracts and checks the citations of one entry.
func verifyEntry(rep *GroundReport, e Entry, nl *netlist.Netlist, nodes map[string]bool) {
	add := func(kind GroundFindingKind, token, detail string) {
		rep.Findings = append(rep.Findings, GroundFinding{
			Seq: e.Seq, Role: e.Role, Kind: kind, Token: token, Detail: detail,
		})
	}

	// Parameter citations first: each also grounds its device token, and
	// the spans are masked so the device pass doesn't double-count them.
	text := e.Text
	for _, m := range paramCitePat.FindAllStringSubmatch(text, -1) {
		dev, lit := m[1], m[2]
		rep.Citations++
		d := nl.Find(dev)
		if d == nil {
			add(UngroundedDevice, dev, "cited with a value but not in the netlist")
			continue
		}
		v, err := units.Parse(lit)
		if err != nil {
			add(WrongValue, dev, fmt.Sprintf("unparseable value %q", lit))
			continue
		}
		if kind, ok := checkValue(v, d.Value); !ok {
			add(kind, dev, fmt.Sprintf("cited as %s, netlist stamps %s", lit, units.Format(d.Value)))
			continue
		}
		rep.Grounded++
	}
	masked := paramCitePat.ReplaceAllString(text, " ")

	for _, tok := range dedupe(deviceCitePat.FindAllString(masked, -1)) {
		rep.Citations++
		if nl.Find(tok) == nil {
			add(UngroundedDevice, tok, "not in the netlist")
			continue
		}
		rep.Grounded++
	}

	cited := dedupe(nodeCitePat.FindAllString(masked, -1))
	for _, m := range nodeWordPat.FindAllStringSubmatch(masked, -1) {
		cited = append(cited, m[1])
	}
	for _, tok := range dedupe(cited) {
		rep.Citations++
		if !nodes[tok] {
			add(UngroundedNode, tok, "not a node of the netlist")
			continue
		}
		rep.Grounded++
	}
}

// checkValue compares a cited value to the stamped one: within paramTol
// it is grounded; a deviation that is a clean power-of-1000 factor is
// the wrong-unit slip; anything else is a wrong value.
func checkValue(cited, stamped float64) (GroundFindingKind, bool) {
	if stamped == 0 || cited == 0 {
		return WrongValue, cited == stamped
	}
	ratio := cited / stamped
	if ratio < 0 {
		return WrongValue, false
	}
	if math.Abs(ratio-1) <= paramTol {
		return "", true
	}
	decades := math.Log10(ratio) / 3
	if math.Abs(decades-math.Round(decades)) < 0.01 && math.Round(decades) != 0 {
		return WrongUnit, false
	}
	return WrongValue, false
}

// dedupe keeps first occurrences, preserving order.
func dedupe(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
