package agents

import (
	"context"
	"strings"
	"testing"

	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

func TestArtisanSessionG1(t *testing.T) {
	g1, _ := spec.Group("G-1")
	s := NewSession(llm.NewDomainModel(1, 0), g1, DefaultOptions())
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("deterministic Artisan session failed on G-1: %s", out.FailReason)
	}
	if out.Arch != "NMC" {
		t.Errorf("arch = %s, want NMC", out.Arch)
	}
	if out.SimCount < 1 {
		t.Error("no simulator invocations counted")
	}
	if out.QACount < 6 {
		t.Errorf("QACount = %d, want a full CoT flow", out.QACount)
	}
	chat := out.Transcript.Chat()
	for _, want := range []string{"Q0:", "A0:", "nested Miller", "[calculator]",
		"[simulator]", "final netlist"} {
		if !strings.Contains(chat, want) {
			t.Errorf("chat log missing %q", want)
		}
	}
	if out.FoM(g1) <= 0 {
		t.Error("FoM should be positive on success")
	}
}

func TestArtisanSessionAllGroups(t *testing.T) {
	for _, g := range spec.Groups() {
		s := NewSession(llm.NewDomainModel(3, 0), g, DefaultOptions())
		out, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !out.Success {
			t.Errorf("%s: failed (%s), arch=%s report=%v", g.Name, out.FailReason, out.Arch, out.Report)
		}
	}
}

func TestGPT4SessionFails(t *testing.T) {
	g1, _ := spec.Group("G-1")
	s := NewSession(llm.NewGPT4Model(), g1, DefaultOptions())
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("GPT-4 session should fail (paper Table 3: 0 successes)")
	}
	chat := out.Transcript.Chat()
	if !strings.Contains(chat, "cannot execute") {
		t.Errorf("chat should document the failure mode:\n%s", chat)
	}
}

func TestLlama2SessionFails(t *testing.T) {
	g1, _ := spec.Group("G-1")
	s := NewSession(llm.NewLlama2Model(), g1, DefaultOptions())
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("Llama2 session should fail")
	}
	if out.FailReason == "" {
		t.Error("failure reason missing")
	}
}

// The modification decision point: starting from a deliberately unsuitable
// architecture on G-5, the failure description must route to DFCFC.
func TestModificationReachesDFCFC(t *testing.T) {
	g5, _ := spec.Group("G-5")
	m := llm.NewDomainModel(2, 0)
	mod, err := m.ProposeModification(context.Background(), g5, describeFailure(g5, measure.Report{
		GainDB: 100, GBW: 0.1e6, PM: 10, Power: 100e-6, Stable: true}))
	if err != nil {
		t.Fatal(err)
	}
	if mod.NewArch != "DFCFC" {
		t.Errorf("modification = %+v, want DFCFC", mod)
	}
}

func TestTreeWidthExploresCandidates(t *testing.T) {
	g1, _ := spec.Group("G-1")
	opts := DefaultOptions()
	opts.TreeWidth = 3
	s := NewSession(llm.NewDomainModel(4, 0), g1, opts)
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("wide ToT session failed: %s", out.FailReason)
	}
	// Three candidates must have been recorded and verified.
	decisions := 0
	for _, e := range out.Transcript.Entries {
		if e.Role == RoleDecision && strings.Contains(e.Text, "candidate") {
			decisions++
		}
	}
	if decisions != 3 {
		t.Errorf("ToT decisions = %d, want 3", decisions)
	}
	if out.SimCount < 3 {
		t.Errorf("SimCount = %d, want >= 3 (one verification per branch)", out.SimCount)
	}
}

func TestTunerRescuesDetunedDesign(t *testing.T) {
	g1, _ := spec.Group("G-1")
	// A detuned NMC: gm3 too small (PM/GBW will miss).
	topo := topology.NMC(10e-6, 15e-6, 60e-6, 4e-12, 3e-12)
	sim := NewSimulator()
	rep, err := sim.MeasureTopology(context.Background(), topo, g1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Satisfied(rep) {
		t.Fatal("test premise broken: detuned design already passes")
	}
	tuner := NewTuner(sim, 7)
	tuned, tunedRep, score, err := tuner.Tune(context.Background(), topo, g1)
	if err != nil {
		t.Fatal(err)
	}
	if Score(g1, tunedRep) < Score(g1, rep) {
		t.Errorf("tuning made things worse: %g -> %g", Score(g1, rep), score)
	}
	if !g1.Satisfied(tunedRep) {
		t.Logf("note: tuner improved but did not fully close spec: %v", tunedRep)
	}
	if tuned == nil {
		t.Fatal("no tuned topology")
	}
}

func TestScoreOrdering(t *testing.T) {
	g1, _ := spec.Group("G-1")
	pass := measure.Report{GainDB: 100, GBW: 1e6, PM: 60, Power: 50e-6, Stable: true}
	closeFail := measure.Report{GainDB: 84, GBW: 1e6, PM: 60, Power: 50e-6, Stable: true}
	farFail := measure.Report{GainDB: 40, GBW: 0.1e6, PM: 10, Power: 500e-6, Stable: false}
	if Score(g1, pass) <= 0 {
		t.Error("passing design should have positive score (FoM)")
	}
	if Score(g1, closeFail) <= Score(g1, farFail) {
		t.Error("closer miss should score higher")
	}
}

func TestCalculatorTool(t *testing.T) {
	c := NewCalculator()
	c.Env().Set("CL", 10e-12)
	outStr, err := c.Invoke(context.Background(), "gm3 = 8*pi*1MEG*CL")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outStr, "251.3") {
		t.Errorf("calculator output %q", outStr)
	}
	if c.Name() != "calculator" || c.Describe() == "" {
		t.Error("tool metadata broken")
	}
}

func TestSimulatorToolOnText(t *testing.T) {
	sim := NewSimulator()
	src := `* one pole
V1 in 0 AC 1
G1 0 out in 0 1m
Ro out 0 1MEG
CL out 0 10p
.end`
	outStr, err := sim.Invoke(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outStr, "Gain=60.0dB") {
		t.Errorf("simulator output %q", outStr)
	}
	if sim.Invocations != 1 {
		t.Errorf("invocations = %d", sim.Invocations)
	}
	if _, err := sim.Invoke(context.Background(), "garbage"); err == nil {
		t.Error("bad netlist accepted")
	}
}

func TestTunerInvokeIsStructuredOnly(t *testing.T) {
	tu := NewTuner(NewSimulator(), 1)
	if _, err := tu.Invoke(context.Background(), "anything"); err == nil {
		t.Error("text invoke should be refused")
	}
	if tu.Name() != "tuner" || tu.Describe() == "" {
		t.Error("tool metadata broken")
	}
}

func TestDescribeFailureWording(t *testing.T) {
	g5, _ := spec.Group("G-5")
	msg := describeFailure(g5, measure.Report{GainDB: 100, GBW: 0.1e6, PM: 10, Power: 50e-6, Stable: true})
	for _, want := range []string{"GBW", "phase margin", "1nF"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure text %q missing %q", msg, want)
		}
	}
}

func TestTranscriptNumbering(t *testing.T) {
	tr := &Transcript{Model: "test"}
	tr.QA("q one", "a one")
	tr.QA("q two", "a two")
	if tr.QACount() != 2 {
		t.Errorf("QACount = %d", tr.QACount())
	}
	chat := tr.Chat()
	for _, want := range []string{"Q0: q one", "A0: a one", "Q1: q two"} {
		if !strings.Contains(chat, want) {
			t.Errorf("chat missing %q", want)
		}
	}
}

func TestPrompterParaphrasing(t *testing.T) {
	// Zero temperature: canonical questions.
	p0 := NewPrompter(1, 0)
	q := "Please design an opamp for the large capacitive load."
	if p0.Next(q) != q {
		t.Error("zero-temperature prompter rephrased")
	}
	var nilP *Prompter
	if nilP.Next(q) != q {
		t.Error("nil prompter should pass through")
	}
	// Hot prompter eventually rephrases, preserving key terms.
	p := NewPrompter(2, 0.5)
	changed := false
	for i := 0; i < 50; i++ {
		out := p.Next(q)
		if out != q {
			changed = true
		}
		if !strings.Contains(out, "capacitive") && !strings.Contains(out, "load") {
			t.Fatalf("paraphrase lost meaning: %q", out)
		}
	}
	if !changed {
		t.Error("hot prompter never rephrased")
	}
}

func TestSessionWithHotPrompter(t *testing.T) {
	g1, _ := spec.Group("G-1")
	s := NewSession(llm.NewDomainModel(1, 0), g1, DefaultOptions())
	s.Prompter = NewPrompter(3, 0.6)
	out, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("session failed: %s", out.FailReason)
	}
	// Identical design result to the canonical-prompter session.
	s2 := NewSession(llm.NewDomainModel(1, 0), g1, DefaultOptions())
	out2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.GBW != out2.Report.GBW {
		t.Error("prompter phrasing changed the design result")
	}
}
