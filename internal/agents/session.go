package agents

import (
	"context"
	"fmt"

	"artisan/internal/backend"
	"artisan/internal/design"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/resilience"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/topology"
)

// Options configures a design session.
type Options struct {
	// TreeWidth is the number of architecture candidates the ToT decision
	// expands and verifies; 1 reproduces the paper's single-shot flow,
	// larger widths are the verification-selected ToT ablation.
	TreeWidth int
	// MaxModifications bounds the second ToT decision point (redesign
	// after failed verification).
	MaxModifications int
	// Tune enables the BO parameter-tuning tool as a last resort.
	Tune bool
	// SizingBackend selects the sizing backend used when Tune fires
	// ("bo", "ga", "whitebox", "hybrid"). Empty keeps the legacy direct
	// BO path.
	SizingBackend string
}

// DefaultOptions reproduces the paper's flow: one architecture, one
// modification round, no tuning.
func DefaultOptions() Options {
	return Options{TreeWidth: 1, MaxModifications: 1, Tune: false}
}

// Resilience configures the session's fault-tolerance ladder. Nil on the
// Session means fail-fast: every tool and model call gets exactly one
// attempt, reproducing the paper's idealized flow.
type Resilience struct {
	// Retry guards the designer decisions and the simulator path. The
	// zero value means single attempts.
	Retry resilience.RetryPolicy
	// Breaker, when non-nil, guards the simulator and sizer backends: a
	// failure streak short-circuits further calls until the cooldown.
	Breaker *resilience.Breaker
	// Fallback is the degradation ladder's last rung: when the primary
	// designer keeps failing ProposeArchitectures/ProposeKnobs after
	// retries, the session degrades to this model (in production the
	// deterministic retrieval model) and records the degradation in the
	// transcript and outcome.
	Fallback llm.DesignerModel
	// Counters receives every resilience event; allocated on first use
	// when nil.
	Counters *resilience.Counters
}

// Outcome is the result of a session.
type Outcome struct {
	Success    bool
	Arch       string
	Design     *design.Result
	Report     measure.Report
	Netlist    *netlist.Netlist
	Topology   *topology.Topology
	Transcript *Transcript
	SimCount   int
	QACount    int
	FailReason string
	// Degraded reports that the session fell back to the Resilience
	// fallback model after the primary designer's repeated failures.
	Degraded bool
	// Resilience snapshots the session's fault-tolerance counters
	// (zero-valued when no ladder was configured).
	Resilience resilience.Snapshot
	// SizingBackend names the sizing backend that actually ran when the
	// tuner fired (after any ladder degradation); empty when the tuner
	// was not invoked or used the legacy path.
	SizingBackend string
	// SizingEvals counts the simulator evaluations the sizing backend
	// consumed.
	SizingEvals int
}

// FoM returns the achieved figure of merit under the session spec.
func (o *Outcome) FoM(sp spec.Spec) float64 { return sp.FoMOf(o.Report) }

// Session drives one complete opamp design: the hierarchical process of
// Fig. 4 executed as the multi-agent QA loop of Fig. 5.
type Session struct {
	Designer llm.DesignerModel
	Prompter *Prompter
	Spec     spec.Spec
	Opts     Options
	Sim      *Simulator
	Tuner    *Tuner
	// Res, when non-nil, enables the fault-tolerance ladder: retries with
	// backoff around designer and simulator calls, a circuit breaker on
	// the simulator/sizer backends, and graceful degradation to a
	// fallback designer.
	Res *Resilience
}

// NewSession builds a session for a designer model and spec. The default
// prompter asks the canonical questions; set Prompter for generative
// rephrasing.
func NewSession(m llm.DesignerModel, sp spec.Spec, opts Options) *Session {
	sim := NewSimulator()
	t := NewTuner(sim, 1)
	t.Backend = opts.SizingBackend
	return &Session{Designer: m, Prompter: NewPrompter(1, 0), Spec: sp, Opts: opts,
		Sim: sim, Tuner: t}
}

// counters returns the session's resilience counters, allocating them on
// first use; nil when no resilience is configured.
func (s *Session) counters() *resilience.Counters {
	if s.Res == nil {
		return nil
	}
	if s.Res.Counters == nil {
		s.Res.Counters = &resilience.Counters{}
	}
	return s.Res.Counters
}

// retryDo runs fn under the session retry policy, or once when no
// resilience is configured.
func (s *Session) retryDo(ctx context.Context, op string, fn func(context.Context) error) error {
	if s.Res == nil {
		return fn(ctx)
	}
	p := s.Res.Retry
	if p.Counters == nil {
		p.Counters = s.counters()
	}
	return p.Do(ctx, op, fn)
}

// measure runs one simulator measurement through the breaker (when
// configured) and the retry policy, so transient simulator faults are
// retried and a failure streak opens the circuit instead of hammering a
// broken backend.
func (s *Session) measure(ctx context.Context, nl *netlist.Netlist) (measure.Report, error) {
	var rep measure.Report
	err := s.retryDo(ctx, "simulator", func(ctx context.Context) error {
		var breaker *resilience.Breaker
		if s.Res != nil {
			breaker = s.Res.Breaker
		}
		return breaker.Do(ctx, "simulator", func(ctx context.Context) error {
			r, err := s.Sim.MeasureNetlist(ctx, nl)
			if err == nil {
				rep = r
			}
			return err
		})
	})
	return rep, err
}

// Run executes the session. The returned outcome always carries the
// transcript, even on failure (the failed GPT-4/Llama2 logs of Fig. 7 are
// exactly such transcripts). Cancellation of ctx — a killed job, an
// expired deadline — aborts the flow at the next stage boundary and
// returns the context's error wrapped; no outcome is fabricated for a
// caller that has gone away.
func (s *Session) Run(ctx context.Context) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var span *telemetry.Span
	ctx, span = telemetry.StartSpan(ctx, "agents.session")
	span.SetAttr("model", s.Designer.Name())
	span.SetAttr("spec", s.Spec.Name)
	defer span.End()
	tr := &Transcript{Model: s.Designer.Name()}
	out := &Outcome{Transcript: tr}
	fail := func(reason string) (*Outcome, error) {
		out.FailReason = reason
		out.SimCount = s.Sim.Invocations
		out.QACount = tr.QACount()
		out.Resilience = s.counters().Snapshot()
		tr.Add(RoleVerdict, "session failed: "+reason)
		return out, nil
	}
	degrade := func(stage string, err error) {
		out.Degraded = true
		tr.Add(RoleTool, fmt.Sprintf("[resilience] %s degraded to fallback model %s: %v",
			stage, s.Res.Fallback.Name(), err))
	}

	// --- ToT decision point 1: architecture selection ---
	width := s.Opts.TreeWidth
	if width < 1 {
		width = 1
	}
	choices, err := s.proposeArchitectures(ctx, width, degrade)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("agents: session cancelled: %w", cerr)
	}
	if err != nil {
		tr.QA(s.Spec.Prompt(), "(no viable architecture proposed) "+err.Error())
		return fail("architecture selection failed: " + err.Error())
	}
	for _, c := range choices {
		tr.Add(RoleDecision, fmt.Sprintf("candidate %s (score %.2f): %s", c.Arch, c.Score, c.Rationale))
	}

	type attempt struct {
		res    *design.Result
		rep    measure.Report
		nl     *netlist.Netlist
		ok     bool
		arch   string
		reason string
	}
	runFlow := func(arch string) (*attempt, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		knobs, err := s.proposeKnobs(ctx, arch, degrade)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return &attempt{arch: arch, reason: err.Error()}, nil
		}
		_, cotSpan := telemetry.StartSpan(ctx, "cot.design")
		cotSpan.SetAttr("arch", arch)
		res, err := design.Design(arch, s.Spec, knobs)
		cotSpan.End()
		if err != nil {
			return &attempt{arch: arch, reason: err.Error()}, nil
		}
		// Weave the CoT steps into the session transcript; the prompter
		// phrases each scheduled question (Eq. 4).
		for _, st := range res.Steps {
			tr.QA(s.Prompter.Next(st.Question), st.Answer)
			for j, f := range st.Formulas {
				tr.ToolCall("calculator", f, st.Results[j])
			}
		}
		env := topology.DefaultEnv()
		env.CL, env.RL = s.Spec.CL, s.Spec.RL
		nl, err := res.Topo.Elaborate(env)
		if err != nil {
			return &attempt{arch: arch, res: res, reason: err.Error()}, nil
		}
		rep, err := s.measure(ctx, nl)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return &attempt{arch: arch, res: res, nl: nl, reason: err.Error()}, nil
		}
		tr.ToolCall("simulator", arch+" behavioral netlist", rep.String())
		a := &attempt{res: res, rep: rep, nl: nl, arch: arch, ok: s.Spec.Satisfied(rep)}
		if !a.ok {
			a.reason = spec.Describe(s.Spec.Check(rep))
		}
		tr.Add(RoleVerdict, spec.Describe(s.Spec.Check(rep)))
		return a, nil
	}

	// Expand the tree: verify each candidate, keep the best.
	var best *attempt
	for _, c := range choices {
		a, err := runFlow(c.Arch)
		if err != nil {
			return nil, fmt.Errorf("agents: session aborted: %w", err)
		}
		if best == nil || (a.ok && !best.ok) ||
			(a.ok == best.ok && a.rep.GBW > 0 && Score(s.Spec, a.rep) > Score(s.Spec, best.rep)) {
			best = a
		}
		if a.ok && width == 1 {
			break
		}
	}
	if best == nil || best.res == nil {
		reason := "design flow could not be executed"
		if best != nil && best.reason != "" {
			reason = best.reason
		}
		tr.QA("Please carry out the design flow step by step.",
			"(the model cannot execute the methodological multi-step flow) "+reason)
		return fail(reason)
	}

	// --- ToT decision point 2: modification after failed verification ---
	for iter := 0; iter < s.Opts.MaxModifications && !best.ok; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agents: session cancelled: %w", err)
		}
		failure := describeFailure(s.Spec, best.rep)
		mod, err := s.proposeModification(ctx, failure)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("agents: session cancelled: %w", err)
			}
			tr.QA("The design fails verification: "+failure+" How to modify the architecture?",
				"(no modification strategy) "+err.Error())
			break
		}
		tr.QA(s.Prompter.Next("The design fails verification: "+failure+" How to modify the architecture?"), mod.Rationale)
		if mod.NewArch == "" {
			break
		}
		if !knownArch(mod.NewArch) {
			tr.Add(RoleVerdict, fmt.Sprintf("suggested architecture %s has no executable design procedure", mod.NewArch))
			break
		}
		a, err := runFlow(mod.NewArch)
		if err != nil {
			return nil, fmt.Errorf("agents: session aborted: %w", err)
		}
		if a.res != nil && (a.ok || Score(s.Spec, a.rep) > Score(s.Spec, best.rep)) {
			best = a
		}
	}

	// --- Last resort: the parameter-tuning tool ---
	if !best.ok && s.Opts.Tune && best.res != nil && ctx.Err() == nil {
		if s.Tuner.Backend != "" {
			tr.Add(RoleTool, fmt.Sprintf("[tuner] invoking %s sizing backend", s.Tuner.Backend))
		} else {
			tr.Add(RoleTool, "[tuner] invoking Bayesian-optimization parameter tuning")
		}
		// Record ladder degradation in the transcript, mirroring the
		// fallback-model resilience pattern.
		s.Tuner.OnDegrade = func(from, to string, err error) {
			tr.Add(RoleTool, fmt.Sprintf("[resilience] sizing backend %s degraded to fallback %s: %v", from, to, err))
		}
		tuned, rep, score, bres, err := s.tune(ctx, best.res.Topo)
		if bres != nil {
			out.SizingBackend = bres.Backend
			out.SizingEvals = bres.Evals
		}
		if err == nil {
			tr.ToolCall("tuner", "tune "+best.arch, rep.String())
			if s.Spec.Satisfied(rep) || score > Score(s.Spec, best.rep) {
				best.res.Topo = tuned
				best.rep = rep
				best.ok = s.Spec.Satisfied(rep)
				env := topology.DefaultEnv()
				env.CL, env.RL = s.Spec.CL, s.Spec.RL
				if nl, err := tuned.Elaborate(env); err == nil {
					best.nl = nl
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("agents: session cancelled: %w", err)
	}

	out.Success = best.ok
	out.Arch = best.arch
	out.Design = best.res
	out.Report = best.rep
	out.Netlist = best.nl
	out.Topology = best.res.Topo
	out.SimCount = s.Sim.Invocations
	out.QACount = tr.QACount()
	out.Resilience = s.counters().Snapshot()
	if !best.ok {
		out.FailReason = best.reason
		tr.Add(RoleVerdict, "session failed: "+best.reason)
	} else {
		tr.QA("Design completed. Please give the final netlist.",
			"The final netlist with parameters instantiated is as follows...\n"+best.nl.String())
	}
	return out, nil
}

// proposeArchitectures is the first rung of the degradation ladder:
// retried primary designer, then the fallback model.
func (s *Session) proposeArchitectures(ctx context.Context, width int, degrade func(string, error)) ([]llm.ArchChoice, error) {
	ctx, span := telemetry.StartSpan(ctx, "llm.propose_architectures")
	defer span.End()
	var primaryErr error
	primary := func(ctx context.Context) ([]llm.ArchChoice, error) {
		var cs []llm.ArchChoice
		err := s.retryDo(ctx, "ProposeArchitectures", func(ctx context.Context) error {
			var err error
			cs, err = s.Designer.ProposeArchitectures(ctx, s.Spec, width)
			return err
		})
		primaryErr = err
		return cs, err
	}
	if s.Res == nil || s.Res.Fallback == nil {
		return primary(ctx)
	}
	cs, err := resilience.Fallback(ctx, s.counters(), primary,
		func(ctx context.Context) ([]llm.ArchChoice, error) {
			return s.Res.Fallback.ProposeArchitectures(ctx, s.Spec, width)
		})
	if err == nil && primaryErr != nil {
		degrade("architecture selection", primaryErr)
	}
	return cs, err
}

// proposeKnobs mirrors proposeArchitectures for the CoT design knobs.
func (s *Session) proposeKnobs(ctx context.Context, arch string, degrade func(string, error)) (design.Knobs, error) {
	ctx, span := telemetry.StartSpan(ctx, "llm.propose_knobs")
	span.SetAttr("arch", arch)
	defer span.End()
	var primaryErr error
	primary := func(ctx context.Context) (design.Knobs, error) {
		var k design.Knobs
		err := s.retryDo(ctx, "ProposeKnobs", func(ctx context.Context) error {
			var err error
			k, err = s.Designer.ProposeKnobs(ctx, arch, s.Spec)
			return err
		})
		primaryErr = err
		return k, err
	}
	if s.Res == nil || s.Res.Fallback == nil {
		return primary(ctx)
	}
	k, err := resilience.Fallback(ctx, s.counters(), primary,
		func(ctx context.Context) (design.Knobs, error) {
			return s.Res.Fallback.ProposeKnobs(ctx, arch, s.Spec)
		})
	if err == nil && primaryErr != nil {
		degrade("knob derivation for "+arch, primaryErr)
	}
	return k, err
}

// proposeModification retries the second ToT decision; there is no
// fallback here — a session that cannot modify simply keeps its best
// attempt, which is already graceful.
func (s *Session) proposeModification(ctx context.Context, failure string) (llm.Modification, error) {
	ctx, span := telemetry.StartSpan(ctx, "llm.propose_modification")
	defer span.End()
	var mod llm.Modification
	err := s.retryDo(ctx, "ProposeModification", func(ctx context.Context) error {
		var err error
		mod, err = s.Designer.ProposeModification(ctx, s.Spec, failure)
		return err
	})
	return mod, err
}

// tune runs the sizer through the breaker so a broken simulator backend
// opens the circuit instead of burning the tuning budget. With a
// configured sizing backend the run routes through the backend registry
// (TuneWith) and reports which backend produced the result; the legacy
// direct-BO path is preserved bit-for-bit when no backend is set.
func (s *Session) tune(ctx context.Context, topo *topology.Topology) (*topology.Topology, measure.Report, float64, *backend.Result, error) {
	run := func(ctx context.Context) (*topology.Topology, measure.Report, float64, *backend.Result, error) {
		if s.Tuner.Backend == "" {
			tuned, rep, score, err := s.Tuner.Tune(ctx, topo, s.Spec)
			return tuned, rep, score, nil, err
		}
		return s.Tuner.TuneWith(ctx, topo, s.Spec)
	}
	if s.Res == nil || s.Res.Breaker == nil {
		return run(ctx)
	}
	var (
		tuned *topology.Topology
		rep   measure.Report
		score float64
		bres  *backend.Result
	)
	err := s.Res.Breaker.Do(ctx, "sizer", func(ctx context.Context) error {
		var err error
		tuned, rep, score, bres, err = run(ctx)
		return err
	})
	return tuned, rep, score, bres, err
}

func knownArch(name string) bool {
	for _, a := range design.Architectures() {
		if a == name {
			return true
		}
	}
	return false
}
