package agents

import (
	"fmt"

	"artisan/internal/design"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// Options configures a design session.
type Options struct {
	// TreeWidth is the number of architecture candidates the ToT decision
	// expands and verifies; 1 reproduces the paper's single-shot flow,
	// larger widths are the verification-selected ToT ablation.
	TreeWidth int
	// MaxModifications bounds the second ToT decision point (redesign
	// after failed verification).
	MaxModifications int
	// Tune enables the BO parameter-tuning tool as a last resort.
	Tune bool
}

// DefaultOptions reproduces the paper's flow: one architecture, one
// modification round, no tuning.
func DefaultOptions() Options {
	return Options{TreeWidth: 1, MaxModifications: 1, Tune: false}
}

// Outcome is the result of a session.
type Outcome struct {
	Success    bool
	Arch       string
	Design     *design.Result
	Report     measure.Report
	Netlist    *netlist.Netlist
	Topology   *topology.Topology
	Transcript *Transcript
	SimCount   int
	QACount    int
	FailReason string
}

// FoM returns the achieved figure of merit under the session spec.
func (o *Outcome) FoM(sp spec.Spec) float64 { return sp.FoMOf(o.Report) }

// Session drives one complete opamp design: the hierarchical process of
// Fig. 4 executed as the multi-agent QA loop of Fig. 5.
type Session struct {
	Designer llm.DesignerModel
	Prompter *Prompter
	Spec     spec.Spec
	Opts     Options
	Sim      *Simulator
	Tuner    *Tuner
}

// NewSession builds a session for a designer model and spec. The default
// prompter asks the canonical questions; set Prompter for generative
// rephrasing.
func NewSession(m llm.DesignerModel, sp spec.Spec, opts Options) *Session {
	sim := NewSimulator()
	return &Session{Designer: m, Prompter: NewPrompter(1, 0), Spec: sp, Opts: opts,
		Sim: sim, Tuner: NewTuner(sim, 1)}
}

// Run executes the session. The returned outcome always carries the
// transcript, even on failure (the failed GPT-4/Llama2 logs of Fig. 7 are
// exactly such transcripts).
func (s *Session) Run() (*Outcome, error) {
	tr := &Transcript{Model: s.Designer.Name()}
	out := &Outcome{Transcript: tr}
	fail := func(reason string) (*Outcome, error) {
		out.FailReason = reason
		out.SimCount = s.Sim.Invocations
		out.QACount = tr.QACount()
		tr.Add(RoleVerdict, "session failed: "+reason)
		return out, nil
	}

	// --- ToT decision point 1: architecture selection ---
	width := s.Opts.TreeWidth
	if width < 1 {
		width = 1
	}
	choices, err := s.Designer.ProposeArchitectures(s.Spec, width)
	if err != nil {
		tr.QA(s.Spec.Prompt(), "(no viable architecture proposed) "+err.Error())
		return fail("architecture selection failed: " + err.Error())
	}
	for _, c := range choices {
		tr.Add(RoleDecision, fmt.Sprintf("candidate %s (score %.2f): %s", c.Arch, c.Score, c.Rationale))
	}

	type attempt struct {
		res    *design.Result
		rep    measure.Report
		nl     *netlist.Netlist
		ok     bool
		arch   string
		reason string
	}
	runFlow := func(arch string) (*attempt, error) {
		knobs, err := s.Designer.ProposeKnobs(arch, s.Spec)
		if err != nil {
			return &attempt{arch: arch, reason: err.Error()}, nil
		}
		res, err := design.Design(arch, s.Spec, knobs)
		if err != nil {
			return &attempt{arch: arch, reason: err.Error()}, nil
		}
		// Weave the CoT steps into the session transcript; the prompter
		// phrases each scheduled question (Eq. 4).
		for _, st := range res.Steps {
			tr.QA(s.Prompter.Next(st.Question), st.Answer)
			for j, f := range st.Formulas {
				tr.ToolCall("calculator", f, st.Results[j])
			}
		}
		env := topology.DefaultEnv()
		env.CL, env.RL = s.Spec.CL, s.Spec.RL
		nl, err := res.Topo.Elaborate(env)
		if err != nil {
			return &attempt{arch: arch, res: res, reason: err.Error()}, nil
		}
		rep, err := s.Sim.MeasureNetlist(nl)
		if err != nil {
			return &attempt{arch: arch, res: res, nl: nl, reason: err.Error()}, nil
		}
		tr.ToolCall("simulator", arch+" behavioral netlist", rep.String())
		a := &attempt{res: res, rep: rep, nl: nl, arch: arch, ok: s.Spec.Satisfied(rep)}
		if !a.ok {
			a.reason = spec.Describe(s.Spec.Check(rep))
		}
		tr.Add(RoleVerdict, spec.Describe(s.Spec.Check(rep)))
		return a, nil
	}

	// Expand the tree: verify each candidate, keep the best.
	var best *attempt
	for _, c := range choices {
		a, err := runFlow(c.Arch)
		if err != nil {
			return nil, err
		}
		if best == nil || (a.ok && !best.ok) ||
			(a.ok == best.ok && a.rep.GBW > 0 && Score(s.Spec, a.rep) > Score(s.Spec, best.rep)) {
			best = a
		}
		if a.ok && width == 1 {
			break
		}
	}
	if best == nil || best.res == nil {
		reason := "design flow could not be executed"
		if best != nil && best.reason != "" {
			reason = best.reason
		}
		tr.QA("Please carry out the design flow step by step.",
			"(the model cannot execute the methodological multi-step flow) "+reason)
		return fail(reason)
	}

	// --- ToT decision point 2: modification after failed verification ---
	for iter := 0; iter < s.Opts.MaxModifications && !best.ok; iter++ {
		failure := describeFailure(s.Spec, best.rep)
		mod, err := s.Designer.ProposeModification(s.Spec, failure)
		if err != nil {
			tr.QA("The design fails verification: "+failure+" How to modify the architecture?",
				"(no modification strategy) "+err.Error())
			break
		}
		tr.QA(s.Prompter.Next("The design fails verification: "+failure+" How to modify the architecture?"), mod.Rationale)
		if mod.NewArch == "" {
			break
		}
		if !knownArch(mod.NewArch) {
			tr.Add(RoleVerdict, fmt.Sprintf("suggested architecture %s has no executable design procedure", mod.NewArch))
			break
		}
		a, err := runFlow(mod.NewArch)
		if err != nil {
			return nil, err
		}
		if a.res != nil && (a.ok || Score(s.Spec, a.rep) > Score(s.Spec, best.rep)) {
			best = a
		}
	}

	// --- Last resort: the BO parameter-tuning tool ---
	if !best.ok && s.Opts.Tune && best.res != nil {
		tr.Add(RoleTool, "[tuner] invoking Bayesian-optimization parameter tuning")
		tuned, rep, score, err := s.Tuner.Tune(best.res.Topo, s.Spec)
		if err == nil {
			tr.ToolCall("tuner", "tune "+best.arch, rep.String())
			if s.Spec.Satisfied(rep) || score > Score(s.Spec, best.rep) {
				best.res.Topo = tuned
				best.rep = rep
				best.ok = s.Spec.Satisfied(rep)
				env := topology.DefaultEnv()
				env.CL, env.RL = s.Spec.CL, s.Spec.RL
				if nl, err := tuned.Elaborate(env); err == nil {
					best.nl = nl
				}
			}
		}
	}

	out.Success = best.ok
	out.Arch = best.arch
	out.Design = best.res
	out.Report = best.rep
	out.Netlist = best.nl
	out.Topology = best.res.Topo
	out.SimCount = s.Sim.Invocations
	out.QACount = tr.QACount()
	if !best.ok {
		out.FailReason = best.reason
		tr.Add(RoleVerdict, "session failed: "+best.reason)
	} else {
		tr.QA("Design completed. Please give the final netlist.",
			"The final netlist with parameters instantiated is as follows...\n"+best.nl.String())
	}
	return out, nil
}

func knownArch(name string) bool {
	for _, a := range design.Architectures() {
		if a == name {
			return true
		}
	}
	return false
}
