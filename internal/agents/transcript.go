package agents

import (
	"fmt"
	"strings"
)

// Role identifies the speaker of a transcript entry.
type Role string

// Transcript roles.
const (
	RolePrompter Role = "Prompter" // Artisan-Prompter questions (Q_i)
	RoleDesigner Role = "Designer" // designer-LLM answers (A_i)
	RoleTool     Role = "Tool"     // tool invocations and results
	RoleDecision Role = "ToT"      // tree-of-thoughts decision records
	RoleVerdict  Role = "Verifier" // spec check outcomes
)

// Entry is one utterance of the multi-agent session.
type Entry struct {
	Seq  int
	Role Role
	Text string
}

// Transcript is the full chat log of a design session (the artifact the
// paper presents in Fig. 7 to demonstrate interpretability).
type Transcript struct {
	Model   string
	Entries []Entry
	qaCount int
}

// Add appends an entry.
func (t *Transcript) Add(role Role, text string) {
	t.Entries = append(t.Entries, Entry{Seq: len(t.Entries), Role: role, Text: text})
}

// QA appends a numbered question/answer pair (Q_i/A_i of Eq. 3–4).
func (t *Transcript) QA(question, answer string) {
	i := t.qaCount
	t.qaCount++
	t.Add(RolePrompter, fmt.Sprintf("Q%d: %s", i, question))
	t.Add(RoleDesigner, fmt.Sprintf("A%d: %s", i, answer))
}

// ToolCall records a tool invocation.
func (t *Transcript) ToolCall(tool, input, output string) {
	t.Add(RoleTool, fmt.Sprintf("[%s] %s -> %s", tool, input, output))
}

// QACount returns how many QA exchanges occurred (the LLM-inference count
// for the cost model).
func (t *Transcript) QACount() int { return t.qaCount }

// Chat renders the transcript as a readable log.
func (t *Transcript) Chat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== chat log (%s) ===\n", t.Model)
	for _, e := range t.Entries {
		switch e.Role {
		case RolePrompter, RoleDesigner:
			fmt.Fprintln(&b, e.Text)
		default:
			fmt.Fprintf(&b, "  (%s) %s\n", e.Role, e.Text)
		}
	}
	return b.String()
}
