package agents

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"artisan/internal/design"
	"artisan/internal/llm"
	"artisan/internal/spec"
)

// stubModel is a controllable DesignerModel for exercising session
// branches the real models rarely reach.
type stubModel struct {
	archs    []llm.ArchChoice
	archErr  error
	knobsFor func(arch string) (design.Knobs, error)
	mod      llm.Modification
	modErr   error
}

func (m *stubModel) Name() string { return "stub" }
func (m *stubModel) Generate(prompt string) (string, error) {
	return "stub answer", nil
}
func (m *stubModel) ProposeArchitectures(ctx context.Context, s spec.Spec, k int) ([]llm.ArchChoice, error) {
	if m.archErr != nil {
		return nil, m.archErr
	}
	out := m.archs
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}
func (m *stubModel) ProposeKnobs(ctx context.Context, arch string, s spec.Spec) (design.Knobs, error) {
	if m.knobsFor != nil {
		return m.knobsFor(arch)
	}
	return design.DefaultKnobs(arch, s)
}
func (m *stubModel) ProposeModification(ctx context.Context, s spec.Spec, failure string) (llm.Modification, error) {
	return m.mod, m.modErr
}

// detunedKnobs produce an NMC that reliably misses G-1: a 30× GBW margin
// blows the power budget (gm3 = 8π·GBW·CL scales linearly).
func detunedKnobs() design.Knobs {
	return design.Knobs{"GBWMargin": 30, "Cm1": 4e-12, "Cm2Ratio": 0.75}
}

func TestSessionModificationToUnknownArch(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := &stubModel{
		archs:    []llm.ArchChoice{{Arch: "NMC", Score: 1}},
		knobsFor: func(string) (design.Knobs, error) { return detunedKnobs(), nil },
		mod:      llm.Modification{NewArch: "MPMC", Rationale: "try multipath"},
	}
	out, err := NewSession(m, g1, DefaultOptions()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("detuned design should fail")
	}
	if !strings.Contains(out.Transcript.Chat(), "no executable design procedure") {
		t.Error("unknown-architecture refusal missing from transcript")
	}
}

func TestSessionModificationProposalError(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := &stubModel{
		archs:    []llm.ArchChoice{{Arch: "NMC", Score: 1}},
		knobsFor: func(string) (design.Knobs, error) { return detunedKnobs(), nil },
		modErr:   fmt.Errorf("no idea"),
	}
	out, err := NewSession(m, g1, DefaultOptions()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("should fail")
	}
	if !strings.Contains(out.Transcript.Chat(), "no modification strategy") {
		t.Error("modification failure not recorded")
	}
}

func TestSessionEmptyModification(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := &stubModel{
		archs:    []llm.ArchChoice{{Arch: "NMC", Score: 1}},
		knobsFor: func(string) (design.Knobs, error) { return detunedKnobs(), nil },
		mod:      llm.Modification{NewArch: "", Rationale: "increase the number of stages"},
	}
	out, err := NewSession(m, g1, DefaultOptions()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("should fail")
	}
}

// The tuning tool as last resort inside the session loop.
func TestSessionTuneRescue(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := &stubModel{
		archs: []llm.ArchChoice{{Arch: "NMC", Score: 1}},
		// Mildly detuned: within the tuner's ±4× reach of a passing point.
		knobsFor: func(string) (design.Knobs, error) {
			return design.Knobs{"GBWMargin": 0.9, "Cm1": 4e-12, "Cm2Ratio": 0.75}, nil
		},
		mod: llm.Modification{NewArch: "", Rationale: "give up"},
	}
	opts := DefaultOptions()
	opts.MaxModifications = 0
	opts.Tune = true
	out, err := NewSession(m, g1, opts).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Transcript.Chat(), "[tuner]") {
		t.Error("tuner invocation missing from transcript")
	}
	if !out.Success {
		t.Logf("tuner did not fully close the spec (score-improving is enough): %v", out.Report)
	}
	if out.SimCount < 20 {
		t.Errorf("tuner should burn simulations, got %d", out.SimCount)
	}
}

func TestSessionDesignProcedureError(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := &stubModel{
		archs: []llm.ArchChoice{{Arch: "NMC", Score: 1}},
		knobsFor: func(string) (design.Knobs, error) {
			// Negative Cm1 → invalid topology → design.Design error path.
			return design.Knobs{"GBWMargin": 1.4, "Cm1": -4e-12, "Cm2Ratio": 0.75}, nil
		},
	}
	out, err := NewSession(m, g1, DefaultOptions()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Success {
		t.Fatal("invalid knobs should fail the session")
	}
	if out.FailReason == "" {
		t.Error("missing failure reason")
	}
}

func TestSessionWidthPicksVerifiedBest(t *testing.T) {
	g1, _ := spec.Group("G-1")
	// First candidate detuned, second healthy: width-2 ToT must land on
	// the healthy one.
	m := &stubModel{
		archs: []llm.ArchChoice{{Arch: "NMCNR", Score: 2}, {Arch: "NMC", Score: 1}},
		knobsFor: func(arch string) (design.Knobs, error) {
			if arch == "NMCNR" {
				return design.Knobs{"GBWMargin": 30, "Cm1": 4e-12,
					"Cm2Ratio": 0.75, "RzFactor": 1}, nil
			}
			return design.DefaultKnobs(arch, g1)
		},
	}
	opts := DefaultOptions()
	opts.TreeWidth = 2
	out, err := NewSession(m, g1, opts).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success || out.Arch != "NMC" {
		t.Errorf("width-2 session picked %s (success=%v), want healthy NMC", out.Arch, out.Success)
	}
}

func TestToolNames(t *testing.T) {
	sim := NewSimulator()
	if sim.Name() != "simulator" || sim.Describe() == "" {
		t.Error("simulator metadata")
	}
	var tools = []Tool{NewCalculator(), sim, NewTuner(sim, 1)}
	for _, tl := range tools {
		if tl.Name() == "" || tl.Describe() == "" {
			t.Errorf("tool %T metadata empty", tl)
		}
	}
}
