// Package agents implements the multi-agent question-answer framework of
// §3.3 (Fig. 5): an Artisan-Prompter that schedules design questions, a
// designer agent wrapping an LLM (the Artisan-LLM or an off-the-shelf
// baseline), and the third-party tools the LLM invokes by prompt
// instruction — the calculator, the circuit simulator, and the
// parameter-tuning tool. A Session runs the hierarchical flow: the
// Tree-of-Thoughts architecture decision, the Chain-of-Thoughts design
// flow, simulation-based verification, and the ToT modification decision.
package agents

import (
	"context"
	"fmt"
	"math"
	"strings"

	"artisan/internal/backend"
	"artisan/internal/calc"
	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/resilience"
	"artisan/internal/sizing"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/topology"
)

// Tool is an auxiliary capability an agent can invoke by instruction.
// Invocations take a context: tool backends are the slow, failure-prone
// edge of the agent loop, and a cancelled session or an expired
// per-stage deadline must stop them instead of wedging a worker.
type Tool interface {
	Name() string
	Describe() string
	Invoke(ctx context.Context, input string) (string, error)
}

// Calculator wraps a calc session as a tool (the Fig. 7 Q3→A3 helper).
type Calculator struct {
	sess *calc.Session
}

// NewCalculator returns a fresh calculator tool.
func NewCalculator() *Calculator { return &Calculator{sess: calc.NewSession()} }

// Name implements Tool.
func (c *Calculator) Name() string { return "calculator" }

// Describe implements Tool.
func (c *Calculator) Describe() string {
	return "evaluates engineering expressions and assignments, e.g. gm3 = 8*pi*GBW*CL"
}

// Invoke evaluates one expression line.
func (c *Calculator) Invoke(ctx context.Context, input string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	_, span := telemetry.StartSpan(ctx, "tool.calculator")
	defer span.End()
	return c.sess.Run(input)
}

// Env exposes the underlying environment for preloading spec values.
func (c *Calculator) Env() *calc.Env { return c.sess.Env() }

// Simulator wraps the MNA engine as a tool; it parses a netlist, runs the
// metric extraction and renders the report. It also counts invocations,
// which drives the evaluation's modeled wall-clock time.
type Simulator struct {
	Invocations int
	// Faults, when non-nil, is the chaos-mode hook: every measurement
	// first consults the seeded injector, which may fail the call, stall
	// it until the context gives up, or corrupt the report while keeping
	// it parseable. Nil means the simulator is healthy.
	Faults *resilience.Injector
}

// NewSimulator returns a fresh simulator tool.
func NewSimulator() *Simulator { return &Simulator{} }

// Name implements Tool.
func (s *Simulator) Name() string { return "simulator" }

// Describe implements Tool.
func (s *Simulator) Describe() string {
	return "AC-simulates a behavioral netlist (output node 'out') and reports Gain/GBW/PM/Power"
}

// Invoke parses netlist text and measures it.
func (s *Simulator) Invoke(ctx context.Context, input string) (string, error) {
	nl, err := netlist.Parse(input)
	if err != nil {
		return "", fmt.Errorf("agents: simulator: %w", err)
	}
	rep, err := s.MeasureNetlist(ctx, nl)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// MeasureNetlist measures a parsed netlist at node "out".
func (s *Simulator) MeasureNetlist(ctx context.Context, nl *netlist.Netlist) (measure.Report, error) {
	if err := ctx.Err(); err != nil {
		return measure.Report{}, err
	}
	s.Invocations++
	ctx, span := telemetry.StartSpan(ctx, "tool.simulator")
	defer span.End()
	span.SetAttr("invocation", fmt.Sprintf("%d", s.Invocations))
	f, err := s.Faults.Apply(ctx, "simulator")
	if err != nil {
		return measure.Report{}, err
	}
	rep, err := measure.AnalyzeContext(ctx, nl, "out")
	if err == nil && f == resilience.FaultCorrupt {
		// Corrupted-but-parseable: the report decodes fine but the GBW is
		// three orders off, so only spec verification can catch it.
		rep.GBW *= 1e-3
	}
	return rep, err
}

// MeasureTopology elaborates a topology under the spec's load and
// measures it.
func (s *Simulator) MeasureTopology(ctx context.Context, topo *topology.Topology, sp spec.Spec) (measure.Report, error) {
	env := topology.DefaultEnv()
	env.CL, env.RL = sp.CL, sp.RL
	nl, err := topo.Elaborate(env)
	if err != nil {
		return measure.Report{}, err
	}
	return s.MeasureNetlist(ctx, nl)
}

// Tuner wraps the Bayesian-optimization sizing tool [14]: it tunes the
// continuous parameters (stage and connection gm/R/C values) of a fixed
// topology to maximize the spec-constrained figure of merit.
type Tuner struct {
	Sim    *Simulator
	Budget sizing.Options
	// Backend selects the sizing backend by registry name ("bo", "ga",
	// "whitebox", "hybrid"). Empty means the legacy direct BO path of
	// Tune; any other value routes TuneWith through the backend registry
	// with its degradation ladder.
	Backend string
	// OnDegrade, when non-nil, observes each degradation hop of the
	// backend ladder (sessions record it in the transcript, mirroring
	// the fallback-model resilience pattern).
	OnDegrade func(from, to string, err error)
}

// NewTuner returns the tuning tool sharing the session simulator (so its
// evaluations are counted).
func NewTuner(sim *Simulator, seed int64) *Tuner {
	return &Tuner{Sim: sim, Budget: sizing.DefaultOptions(seed)}
}

// Name implements Tool.
func (t *Tuner) Name() string { return "tuner" }

// Describe implements Tool.
func (t *Tuner) Describe() string {
	return "Bayesian-optimization parameter tuning of a fixed topology against the spec"
}

// Invoke is informational; real invocations go through Tune.
func (t *Tuner) Invoke(ctx context.Context, input string) (string, error) {
	return "", fmt.Errorf("agents: tuner requires a structured topology; use Tune")
}

// Score is the constrained objective: the FoM when every spec is met,
// otherwise the negative sum of relative violations. It delegates to
// spec.Score, the canonical definition shared with the sizing backends.
func Score(sp spec.Spec, rep measure.Report) float64 {
	return spec.Score(sp, rep)
}

// Tune optimizes the topology's continuous parameters in log space within
// ±4× of their current values. It returns the best topology found, its
// report, and the achieved score.
func (t *Tuner) Tune(ctx context.Context, topo *topology.Topology, sp spec.Spec) (*topology.Topology, measure.Report, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, measure.Report{}, 0, err
	}
	ctx, span := telemetry.StartSpan(ctx, "tool.tuner")
	defer span.End()
	type slot struct {
		set func(tp *topology.Topology, v float64)
		cur float64
	}
	var slots []slot
	for i := range topo.Stages {
		i := i
		slots = append(slots, slot{func(tp *topology.Topology, v float64) { tp.Stages[i].Gm = v }, topo.Stages[i].Gm})
	}
	for i := range topo.Conns {
		i := i
		c := topo.Conns[i]
		if c.Type.HasGm() {
			slots = append(slots, slot{func(tp *topology.Topology, v float64) { tp.Conns[i].Gm = v }, c.Gm})
		}
		if c.Type.HasC() {
			slots = append(slots, slot{func(tp *topology.Topology, v float64) { tp.Conns[i].C = v }, c.C})
		}
		if c.Type.HasR() {
			slots = append(slots, slot{func(tp *topology.Topology, v float64) { tp.Conns[i].R = v }, c.R})
		}
	}
	if len(slots) == 0 {
		return nil, measure.Report{}, 0, fmt.Errorf("agents: nothing to tune")
	}
	d := len(slots)
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i, s := range slots {
		l := math.Log(s.cur)
		lo[i] = l - math.Log(4)
		hi[i] = l + math.Log(4)
	}
	build := func(x []float64) *topology.Topology {
		tp := topo.Clone()
		for i, s := range slots {
			s.set(tp, math.Exp(x[i]))
		}
		return tp
	}
	prob := sizing.Problem{Lo: lo, Hi: hi, Eval: func(x []float64) float64 {
		// A dead context poisons every remaining evaluation so the BO
		// loop drains quickly instead of burning its full budget.
		rep, err := t.Sim.MeasureTopology(ctx, build(x), sp)
		if err != nil {
			return -100
		}
		return Score(sp, rep)
	}}
	res, err := sizing.OptimizeContext(ctx, prob, t.Budget)
	if err != nil {
		return nil, measure.Report{}, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, measure.Report{}, 0, err
	}
	best := build(res.BestX)
	rep, err := t.Sim.MeasureTopology(ctx, best, sp)
	if err != nil {
		return nil, measure.Report{}, 0, err
	}
	return best, rep, res.BestY, nil
}

// TuneWith runs the configured sizing backend (Backend, defaulting to
// plain BO) over the topology's parameter space, degrading down the
// backend ladder on failure. It returns the backend result alongside
// the tuned topology so callers can record which backend won and how
// many evaluations it spent.
func (t *Tuner) TuneWith(ctx context.Context, topo *topology.Topology, sp spec.Spec) (*topology.Topology, measure.Report, float64, *backend.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, measure.Report{}, 0, nil, err
	}
	ctx, span := telemetry.StartSpan(ctx, "tool.tuner")
	defer span.End()
	name := t.Backend
	if name == "" {
		name = backend.DefaultName
	}
	span.SetAttr("backend", name)
	p := backend.Problem{
		Spec: sp, Topo: topo,
		// The backend budget matches the legacy BO spend: init samples
		// plus iterations plus the final re-measure.
		Budget: t.Budget.InitSamples + t.Budget.Iterations + 2,
		Eval: func(ctx context.Context, tp *topology.Topology) (measure.Report, error) {
			// Routing through the session simulator keeps the evaluations
			// counted (and fault-injected) exactly like every other
			// measurement.
			return t.Sim.MeasureTopology(ctx, tp, sp)
		},
	}
	res, err := backend.SizeLadder(ctx, name, p, t.Budget.Seed, t.OnDegrade)
	if err != nil {
		return nil, measure.Report{}, 0, res, err
	}
	return res.Topo, res.Report, res.Score, res, nil
}

// describeFailure renders spec violations as the natural-language failure
// report the prompter feeds back to the LLM (the Fig. 7 Q9 phrasing).
func describeFailure(sp spec.Spec, rep measure.Report) string {
	vs := sp.Check(rep)
	var parts []string
	if rep.PoleZeroErr != "" {
		// Distinguish "verified unstable" from "stability unknown": the
		// simulator's root finder failed, so the stability verdict below
		// is not evidence about the circuit.
		parts = append(parts, fmt.Sprintf("pole/zero extraction failed (%s), stability is unverified", rep.PoleZeroErr))
	}
	for _, v := range vs {
		switch v.Metric {
		case "GBW(Hz)":
			parts = append(parts, "the bandwidth is too slow, GBW misses the spec")
		case "Gain(dB)":
			parts = append(parts, "the DC gain is insufficient, too low")
		case "PM(deg)":
			parts = append(parts, "the phase margin is inadequate, the loop is underdamped")
		case "Power(W)":
			parts = append(parts, "the power budget is exceeded, too much current")
		case "Stability":
			parts = append(parts, "the amplifier is unstable")
		}
	}
	if sp.CL >= 100e-12 {
		parts = append(parts, fmt.Sprintf("the design suffers driving the large capacitive load CL=%s", fmtCL(sp.CL)))
	}
	return strings.Join(parts, "; ")
}

func fmtCL(cl float64) string {
	if cl >= 1e-9 {
		return fmt.Sprintf("%gnF", cl*1e9)
	}
	return fmt.Sprintf("%gpF", cl*1e12)
}
