package agents

import (
	"strings"
	"testing"

	"artisan/internal/netlist"
	"artisan/internal/topology"
)

// groundedFixture elaborates a real two-stage Miller topology so the
// verifier is exercised against names the elaborator actually emits:
// Gm1/Ro1/Cp1, Gm2/Ro2/Cp2, Cc_c0, RL, CL, Vin over nodes in/n1/out.
func groundedFixture(t *testing.T) *netlist.Netlist {
	t.Helper()
	topo := &topology.Topology{
		Name: "fixture", TwoStage: true,
		Stages: []topology.Stage{{Gm: 1e-3, A0: 160}, {Gm: 2e-3, A0: 45}},
		Conns: []topology.Connection{
			{Pos: topology.Position{From: "n1", To: "out"}, Type: topology.ConnC, C: 4.7e-12},
		},
	}
	nl, err := topo.Elaborate(topology.DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestGroundedTranscriptPassesClean: a transcript whose every citation
// is read off the netlist produces zero findings and full accounting.
func TestGroundedTranscriptPassesClean(t *testing.T) {
	nl := groundedFixture(t)
	tr := &Transcript{}
	tr.Add(RolePrompter, "Analyze the two-stage design loaded by CL and RL.")
	tr.Add(RoleDesigner, "Gm1 = 1mS drives node n1; Gm2 = 2mS drives the output through Cc_c0 = 4.7pF.")
	tr.Add(RoleDesigner, "The output resistance Ro2 sets the load pole together with Cp2 at node out.")

	rep := VerifyGrounding(tr, nl)
	if !rep.Pass() {
		t.Fatalf("grounded transcript produced findings: %s", rep)
	}
	if rep.Citations == 0 || rep.Grounded != rep.Citations {
		t.Fatalf("accounting: %d/%d grounded", rep.Grounded, rep.Citations)
	}
	if !strings.HasPrefix(rep.String(), "grounded") {
		t.Errorf("String() = %q; want grounded summary", rep.String())
	}
}

// TestFabricatedDeviceDetected: a device the elaborator never stamped is
// an UngroundedDevice finding attributed to the citing entry's Seq.
func TestFabricatedDeviceDetected(t *testing.T) {
	nl := groundedFixture(t)
	tr := &Transcript{}
	tr.Add(RoleDesigner, "Gm1 = 1mS is the input pair.") // Seq 0, grounded
	tr.Add(RoleDesigner, "Gm7 supplies the slew current, mirrored by Ro5.")

	rep := VerifyGrounding(tr, nl)
	if rep.Pass() {
		t.Fatal("fabricated devices escaped verification")
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %v; want exactly Gm7 and Ro5", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Kind != UngroundedDevice {
			t.Errorf("finding %v kind = %s; want %s", f, f.Kind, UngroundedDevice)
		}
		if f.Seq != 1 {
			t.Errorf("finding %v attributed to entry %d; want the fabricating entry 1", f, f.Seq)
		}
		if f.Token != "Gm7" && f.Token != "Ro5" {
			t.Errorf("unexpected token %q", f.Token)
		}
	}
}

// TestOffByOneNodeDetected: citing n2 on a skeleton whose only internal
// node is n1 is an UngroundedNode finding, both as a bare token and via
// the "node X" introduction.
func TestOffByOneNodeDetected(t *testing.T) {
	nl := groundedFixture(t)
	tr := &Transcript{}
	tr.Add(RoleDesigner, "The mirror pole sits at n2, past node n1.")

	rep := VerifyGrounding(tr, nl)
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %v; want exactly the n2 citation", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Kind != UngroundedNode || f.Token != "n2" || f.Seq != 0 {
		t.Fatalf("finding = %+v; want UngroundedNode n2 at entry 0", f)
	}

	// The word form catches tokens the bare-node shape misses.
	tr2 := &Transcript{}
	tr2.Add(RoleDesigner, "Compensation returns to node vx from the output.")
	rep2 := VerifyGrounding(tr2, nl)
	if len(rep2.Findings) != 1 || rep2.Findings[0].Token != "vx" {
		t.Fatalf("findings = %v; want ungrounded node vx", rep2.Findings)
	}
}

// TestWrongUnitAndWrongValueDetected: a parameter cited a clean factor
// of 1000 off its stamp is classified WrongUnit; an arbitrary
// disagreement is WrongValue; a value within tolerance is grounded.
func TestWrongUnitAndWrongValueDetected(t *testing.T) {
	nl := groundedFixture(t)

	tr := &Transcript{}
	tr.Add(RoleDesigner, "Cc_c0 = 4.7nF dominates the response.") // stamp is 4.7pF
	tr.Add(RoleDesigner, "Gm1 = 3.1mS from the bias point.")      // stamp is 1mS
	tr.Add(RoleDesigner, "Gm2 = 2.0mS as designed.")              // grounded

	rep := VerifyGrounding(tr, nl)
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %v; want wrong-unit Cc_c0 and wrong-value Gm1", rep.Findings)
	}
	byTok := map[string]GroundFinding{}
	for _, f := range rep.Findings {
		byTok[f.Token] = f
	}
	if f := byTok["Cc_c0"]; f.Kind != WrongUnit || f.Seq != 0 {
		t.Errorf("Cc_c0 finding = %+v; want WrongUnit at entry 0", f)
	}
	if f := byTok["Gm1"]; f.Kind != WrongValue || f.Seq != 1 {
		t.Errorf("Gm1 finding = %+v; want WrongValue at entry 1", f)
	}
	if rep.Grounded != rep.Citations-2 {
		t.Errorf("accounting %d/%d; the Gm2 citation should be grounded", rep.Grounded, rep.Citations)
	}
}

// TestToolEntriesExempt: tool output echoes the simulator and is
// grounded by construction; the same fabrication in a designer entry is
// caught.
func TestToolEntriesExempt(t *testing.T) {
	nl := groundedFixture(t)
	tr := &Transcript{}
	tr.Add(RoleTool, "sim says Gm9 = 1S at node n42") // would be three findings if checked
	rep := VerifyGrounding(tr, nl)
	if !rep.Pass() || rep.Citations != 0 {
		t.Fatalf("tool entry was verified: %s", rep)
	}

	tr.Add(RoleDesigner, "sim says Gm9 = 1S at node n42")
	rep = VerifyGrounding(tr, nl)
	if rep.Pass() {
		t.Fatal("designer repeating the fabrication escaped verification")
	}
	for _, f := range rep.Findings {
		if f.Seq != 1 {
			t.Errorf("finding %v attributed to entry %d; want designer entry 1", f, f.Seq)
		}
	}
}
