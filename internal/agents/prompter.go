package agents

import (
	"math/rand"

	"artisan/internal/corpus"
)

// Prompter is the Artisan-Prompter agent of Eq. (4): it produces the next
// question Q_{i+1} from the design flow's schedule. The paper implements
// it with GPT-4 in-context; here the schedule comes from the design
// procedures and the prompter's generative freedom is surface rephrasing
// at a temperature (zero temperature asks the canonical questions, which
// keeps regression tests byte-stable).
type Prompter struct {
	rng         *rand.Rand
	Temperature float64
}

// NewPrompter builds a prompter.
func NewPrompter(seed int64, temperature float64) *Prompter {
	return &Prompter{rng: rand.New(rand.NewSource(seed)), Temperature: temperature}
}

// Next renders the scheduled question, possibly rephrased.
func (p *Prompter) Next(question string) string {
	if p == nil || p.Temperature <= 0 {
		return question
	}
	if p.rng.Float64() > p.Temperature*2 {
		return question
	}
	return corpus.Paraphrase(question, p.rng)
}
