package jobs

import "context"

// BatchItem is one unit of a batch submission.
type BatchItem struct {
	Fn   Func
	Opts SubmitOpts
}

// BatchEntry is the per-item outcome of SubmitBatch. Exactly one of Job
// and Err is set: a rejected item (queue full, manager shut down) fails
// alone without affecting its neighbours.
type BatchEntry struct {
	Job *Job
	// Coalesced reports that the item attached to an identical in-flight
	// job submitted earlier (possibly by this same batch).
	Coalesced bool
	Err       error
}

// SubmitBatch submits every item with coalescing forced on: items that
// share a Key — with each other or with work already in flight — run
// once and share the result, and previously cached keys complete
// instantly. Entries are returned in item order. SubmitBatch is the
// primitive behind the server's /design/batch and /simulate/batch
// endpoints and the experiment harness's parallel sweep.
func (m *Manager) SubmitBatch(items []BatchItem) []BatchEntry {
	out := make([]BatchEntry, len(items))
	for i, it := range items {
		it.Opts.Coalesce = true
		j, shared, err := m.SubmitCoalesced(it.Fn, it.Opts)
		out[i] = BatchEntry{Job: j, Coalesced: shared, Err: err}
	}
	return out
}

// WaitBatch waits for every successfully submitted entry and returns the
// per-item results and errors in item order. A rejected entry keeps its
// submission error; ctx expiry is recorded as that item's error and the
// remaining items are still visited (their Waits return immediately with
// the same ctx error).
func WaitBatch(ctx context.Context, entries []BatchEntry) ([]any, []error) {
	results := make([]any, len(entries))
	errs := make([]error, len(entries))
	for i, e := range entries {
		if e.Err != nil {
			errs[i] = e.Err
			continue
		}
		results[i], errs[i] = e.Job.Wait(ctx)
	}
	return results, errs
}
