package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s: status %s, want %s", j.ID(), j.Status(), want)
}

func TestSubmitPollDone(t *testing.T) {
	m := NewManager(Config{Workers: 2, Queue: 8})
	defer m.Shutdown(context.Background())

	j, err := m.Submit(func(ctx context.Context) (any, error) { return 41 + 1, nil }, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil || res != 42 {
		t.Fatalf("Wait = %v, %v", res, err)
	}
	snap := j.Snapshot()
	if snap.Status != StatusDone || snap.Cached || snap.Finished.IsZero() {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestFailedJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())

	boom := errors.New("boom")
	j, _ := m.Submit(func(ctx context.Context) (any, error) { return nil, boom }, SubmitOpts{})
	if _, err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if j.Status() != StatusFailed {
		t.Errorf("status = %s", j.Status())
	}
}

func TestPanicRecovery(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())

	j, _ := m.Submit(func(ctx context.Context) (any, error) { panic("kaboom") }, SubmitOpts{})
	_, err := j.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	if j.Status() != StatusFailed {
		t.Errorf("status = %s", j.Status())
	}
	// The worker must survive the panic and run the next job.
	j2, _ := m.Submit(func(ctx context.Context) (any, error) { return "ok", nil }, SubmitOpts{})
	if res, err := j2.Wait(context.Background()); err != nil || res != "ok" {
		t.Fatalf("post-panic job: %v, %v", res, err)
	}
}

func TestCancelMidRun(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())

	started := make(chan struct{})
	j, _ := m.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, SubmitOpts{})
	<-started
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if j.Status() != StatusCancelled {
		t.Errorf("status = %s", j.Status())
	}
	if err := m.Cancel(j.ID()); !errors.Is(err, ErrFinished) {
		t.Errorf("double cancel = %v", err)
	}
}

func TestCancelQueued(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4})
	defer m.Shutdown(context.Background())

	release := make(chan struct{})
	blocker, _ := m.Submit(func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	}, SubmitOpts{})
	waitStatus(t, blocker, StatusRunning)

	var ran atomic.Bool
	queued, _ := m.Submit(func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	}, SubmitOpts{})
	if queued.Status() != StatusQueued {
		t.Fatalf("status = %s", queued.Status())
	}
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Give the worker a beat to drain; the cancelled job must be skipped.
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if ran.Load() {
		t.Error("cancelled queued job still ran")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 1})
	defer m.Shutdown(context.Background())

	release := make(chan struct{})
	block := func(ctx context.Context) (any, error) { <-release; return nil, nil }
	running, _ := m.Submit(block, SubmitOpts{})
	waitStatus(t, running, StatusRunning)
	if _, err := m.Submit(block, SubmitOpts{}); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := m.Submit(block, SubmitOpts{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestCacheHitSkipsRun(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Shutdown(context.Background())

	var runs atomic.Int64
	fn := func(ctx context.Context) (any, error) {
		runs.Add(1)
		return "result", nil
	}
	j1, _ := m.Submit(fn, SubmitOpts{Key: "k1"})
	if res, err := j1.Wait(context.Background()); err != nil || res != "result" {
		t.Fatal(res, err)
	}
	j2, err := m.Submit(fn, SubmitOpts{Key: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	snap := j2.Snapshot()
	if snap.Status != StatusDone || !snap.Cached || snap.Result != "result" {
		t.Fatalf("cached snapshot = %+v", snap)
	}
	if runs.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", runs.Load())
	}
	st := m.CacheStats()
	if st.Hits != 1 || st.Size != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFailedResultNotCached(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())

	var runs atomic.Int64
	fn := func(ctx context.Context) (any, error) {
		runs.Add(1)
		return nil, errors.New("transient")
	}
	j1, _ := m.Submit(fn, SubmitOpts{Key: "k"})
	j1.Wait(context.Background())
	j2, _ := m.Submit(fn, SubmitOpts{Key: "k"})
	j2.Wait(context.Background())
	if runs.Load() != 2 {
		t.Errorf("fn ran %d times, want 2 (failures must not be cached)", runs.Load())
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(Config{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer m.Shutdown(context.Background())

	j, _ := m.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, SubmitOpts{})
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if j.Status() != StatusFailed {
		t.Errorf("status = %s", j.Status())
	}
}

func TestListAndCounts(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Shutdown(context.Background())

	for i := 0; i < 3; i++ {
		j, err := m.Submit(func(ctx context.Context) (any, error) { return nil, nil }, SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		j.Wait(context.Background())
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("list = %d jobs", len(list))
	}
	if list[0].ID != "j-1" || list[2].ID != "j-3" {
		t.Errorf("submission order lost: %v, %v", list[0].ID, list[2].ID)
	}
	if c := m.Counts(); c[StatusDone] != 3 {
		t.Errorf("counts = %v", c)
	}
	if _, ok := m.Get("j-2"); !ok {
		t.Error("Get(j-2) missed")
	}
	if _, ok := m.Get("nope"); ok {
		t.Error("Get(nope) hit")
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel missing = %v", err)
	}
}

func TestRetentionPruning(t *testing.T) {
	m := NewManager(Config{Workers: 2, Queue: 16, Retain: 4})
	defer m.Shutdown(context.Background())

	for i := 0; i < 10; i++ {
		j, err := m.Submit(func(ctx context.Context) (any, error) { return nil, nil }, SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		j.Wait(context.Background())
	}
	if n := len(m.List()); n > 4 {
		t.Errorf("retained %d jobs, want <= 4", n)
	}
}

func TestShutdownDrains(t *testing.T) {
	m := NewManager(Config{Workers: 2, Queue: 16})
	var done atomic.Int64
	var js []*Job
	for i := 0; i < 6; i++ {
		j, err := m.Submit(func(ctx context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
			return nil, nil
		}, SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 6 {
		t.Errorf("drained %d/6 jobs", done.Load())
	}
	if _, err := m.Submit(func(ctx context.Context) (any, error) { return nil, nil }, SubmitOpts{}); !errors.Is(err, ErrShutdown) {
		t.Errorf("submit after shutdown = %v", err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown = %v", err)
	}
	for _, j := range js {
		if j.Status() != StatusDone {
			t.Errorf("job %s = %s after drain", j.ID(), j.Status())
		}
	}
}

func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	j, _ := m.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, SubmitOpts{})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v", err)
	}
	if s := j.Status(); s != StatusCancelled {
		t.Errorf("job status = %s, want cancelled", s)
	}
}

func TestLRUCache(t *testing.T) {
	c := NewCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 { // a is now most recent
		t.Fatal("get a")
	}
	c.Add("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	c.Add("a", 10) // update in place
	if v, _ := c.Get("a"); v != 10 {
		t.Error("update lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMapOrderAndDeterminism(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), 8, items, func(ctx context.Context, x int) (int, error) {
		return x * x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapFirstErrorAborts(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	var calls atomic.Int64
	_, err := Map(context.Background(), 4, items, func(ctx context.Context, x int) (int, error) {
		calls.Add(1)
		if x == 3 {
			return 0, fmt.Errorf("bad item %d", x)
		}
		return x, nil
	})
	if err == nil || !strings.Contains(err.Error(), "bad item 3") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() >= 50 {
		t.Errorf("error did not short-circuit: %d calls", calls.Load())
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(context.Background(), 2, []int{1, 2, 3}, func(ctx context.Context, x int) (int, error) {
		if x == 2 {
			panic("worker blew up")
		}
		return x, nil
	})
	if err == nil || !strings.Contains(err.Error(), "worker blew up") {
		t.Fatalf("err = %v", err)
	}
}

func TestMapEmptyAndContext(t *testing.T) {
	if out, err := Map(context.Background(), 4, nil, func(ctx context.Context, x int) (int, error) { return x, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v, %v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, 2, []int{1, 2}, func(ctx context.Context, x int) (int, error) {
		return x, ctx.Err()
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled map: %v", err)
	}
}

func TestMaxAttemptsRetriesUntilSuccess(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxAttempts: 3})
	defer m.Shutdown(context.Background())
	calls := 0
	j, err := m.Submit(func(context.Context) (any, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("flaky")
		}
		return "ok", nil
	}, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := j.Wait(context.Background())
	if err != nil || v != "ok" {
		t.Fatalf("wait: %v, %v", v, err)
	}
	s := j.Snapshot()
	if s.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", s.Attempts)
	}
	if s.LastErr != "flaky" {
		t.Errorf("lastErr = %q, want the last failed attempt kept", s.LastErr)
	}
	if s.Status != StatusDone {
		t.Errorf("status = %s", s.Status)
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxAttempts: 2})
	defer m.Shutdown(context.Background())
	calls := 0
	j, _ := m.Submit(func(context.Context) (any, error) {
		calls++
		return nil, errors.New("always down")
	}, SubmitOpts{})
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("want error")
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	s := j.Snapshot()
	if s.Status != StatusFailed || s.Attempts != 2 || s.LastErr != "always down" {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestMaxAttemptsNeverRetriesCancellation(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxAttempts: 5})
	defer m.Shutdown(context.Background())
	calls := 0
	started := make(chan struct{})
	j, _ := m.Submit(func(ctx context.Context) (any, error) {
		calls++
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, SubmitOpts{})
	<-started
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	_, _ = j.Wait(context.Background())
	if calls != 1 {
		t.Errorf("cancelled job retried: calls = %d", calls)
	}
	if j.Status() != StatusCancelled {
		t.Errorf("status = %s", j.Status())
	}
}
