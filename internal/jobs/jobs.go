// Package jobs is the async execution layer of the Artisan service: a
// generic job manager with a fixed-size worker pool, a bounded pending
// queue with backpressure, per-job lifecycle driven by context
// cancellation, panic recovery inside workers, and an LRU result cache
// keyed by a caller-supplied canonical key. The server routes both the
// synchronous /design endpoint and the async /jobs API through one
// manager so service-wide concurrency stays bounded, and the experiment
// harness reuses the same pool primitives to fan trial runs out.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Status is a job lifecycle state.
type Status string

// The lifecycle: queued → running → done | failed | cancelled. A queued
// job may jump straight to cancelled.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Func is the unit of work. It must honour ctx cancellation to make
// DELETE /jobs/{id} and shutdown deadlines effective mid-run.
type Func func(ctx context.Context) (any, error)

// Sentinel errors surfaced to callers.
var (
	// ErrQueueFull is the backpressure signal: the pending queue is at
	// capacity and the job was rejected rather than blocking the caller.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShutdown means the manager no longer accepts work.
	ErrShutdown = errors.New("jobs: manager shut down")
	// ErrNotFound means no job has the given id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished means the job already reached a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// Job is one tracked unit of work.
type Job struct {
	id        string
	fn        Func
	key       string
	requestID string

	mu       sync.Mutex
	status   Status
	result   any
	err      error
	cached   bool
	attempts int
	lastErr  string
	created  time.Time
	started  time.Time
	finished time.Time
	deadline time.Time // end-to-end budget; zero = none
	cancel   context.CancelFunc
	done     chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Snapshot is a consistent copy of a job's observable state.
type Snapshot struct {
	ID     string
	Status Status
	Cached bool
	Result any
	Err    string
	// Attempts counts how many times the job's fn was invoked (0 for a
	// cache hit); LastErr keeps the most recent attempt's error even
	// after a later attempt succeeds, so flaky runs stay diagnosable.
	Attempts int
	LastErr  string
	// RequestID correlates the job with the HTTP request that submitted
	// it (the X-Request-ID header); empty for jobs submitted outside a
	// request context.
	RequestID string
	Created   time.Time
	Started   time.Time
	Finished  time.Time
	// Deadline is the job's end-to-end budget (zero when none): the
	// instant the submitting client stops caring about the result.
	Deadline time.Time
}

// Snapshot copies the job's state under its lock.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID: j.id, Status: j.status, Cached: j.cached, Result: j.result,
		Attempts: j.attempts, LastErr: j.lastErr, RequestID: j.requestID,
		Created: j.created, Started: j.started, Finished: j.finished,
		Deadline: j.deadline,
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the result and error of the run.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusCancelled && j.err == nil {
		return nil, context.Canceled
	}
	return j.result, j.err
}

// finish transitions to a terminal state exactly once.
func (j *Job) finish(st Status, result any, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.status, j.result, j.err = st, result, err
	j.finished = time.Now()
	close(j.done)
	return true
}

// Config sizes a Manager. Zero values take defaults.
type Config struct {
	// Workers is the pool size; default runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the pending queue; Submit rejects with ErrQueueFull
	// beyond it. Default 64.
	Queue int
	// CacheSize bounds the LRU result cache entries. Default 128.
	CacheSize int
	// JobTimeout, when positive, is a per-job deadline; jobs exceeding
	// it fail with context.DeadlineExceeded.
	JobTimeout time.Duration
	// Retain bounds how many terminal jobs are kept for GET /jobs
	// introspection before the oldest are pruned. Default 1024.
	Retain int
	// MaxAttempts re-invokes a failing job fn up to this many times
	// before the job is marked failed. Cancellation is never retried.
	// Default 1 (fail on first error).
	MaxAttempts int
	// IDPrefix, when set, prefixes job ids as "<prefix>-j-<n>". In a
	// multi-node fleet the prefix is the node id, which makes job ids
	// unique fleet-wide and lets the router map an id back to its owner.
	IDPrefix string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue < 1 {
		c.Queue = 64
	}
	if c.CacheSize < 1 {
		c.CacheSize = 128
	}
	if c.Retain < 1 {
		c.Retain = 1024
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 1
	}
	return c
}

// Manager owns the worker pool, the job registry, and the result cache.
type Manager struct {
	cfg   Config
	cache *Cache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	// coalesceHits counts submissions that attached to an identical
	// in-flight job instead of enqueueing their own run.
	coalesceHits atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for List and pruning
	seq    int64
	closed bool
	// inflight is the singleflight map behind request coalescing: for
	// each cache key with Coalesce set, the one non-terminal job that is
	// computing it. Later coalescing submissions with the same key share
	// that job; the entry is dropped when the job reaches a terminal
	// state (so a retry after failure starts a fresh run).
	inflight map[string]*Job
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, cfg.Queue),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Workers reports the pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// jobID formats the next job id; must run with m.mu held (reads m.seq).
func (m *Manager) jobID() string {
	if m.cfg.IDPrefix != "" {
		return fmt.Sprintf("%s-j-%d", m.cfg.IDPrefix, m.seq)
	}
	return fmt.Sprintf("j-%d", m.seq)
}

// ReserveIDs advances the job-id counter so the next minted id's
// sequence number is above n. The persistence layer calls this after a
// journal replay with the highest sequence it has ever journaled:
// without it a restarted process would restart the counter at 1 and a
// brand-new job could reuse the logical id of a pre-crash job, silently
// merging two different jobs' histories in the journal.
func (m *Manager) ReserveIDs(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > m.seq {
		m.seq = n
	}
}

// WarmCache installs a result directly into the result cache — the
// replay path of the persistent job store re-publishes journaled
// results through it, so a request that duplicates pre-restart work is
// a cache hit instead of a re-run.
func (m *Manager) WarmCache(key string, val any) {
	if key == "" {
		return
	}
	m.cache.Add(key, val)
}

// SubmitOpts tunes one submission.
type SubmitOpts struct {
	// Key, when non-empty, is the canonical cache key for the job's
	// result. A cache hit completes the job instantly without running
	// fn; a successful run stores its result under the key.
	Key string
	// RequestID tags the job with the correlation id of the request that
	// submitted it, so a queued job can be matched to its access-log
	// line.
	RequestID string
	// Coalesce, with a non-empty Key, deduplicates in-flight work
	// singleflight-style: when another coalescing job with the same key
	// is queued or running, the submission attaches to it instead of
	// enqueueing a second run and the shared *Job is returned. Combined
	// with the result cache this makes identical work run at most once,
	// whether the duplicates arrive before, during, or after the first.
	Coalesce bool
	// Deadline, when non-zero, is the job's end-to-end budget. A job
	// whose deadline passes while it is still queued is cancelled instead
	// of run (the client already gave up — running it would orphan work),
	// and a running job's context carries the deadline so fn stops at the
	// budget's edge rather than the pool's JobTimeout.
	Deadline time.Time
}

// Submit enqueues fn. It never blocks: when the pending queue is full it
// returns ErrQueueFull so the caller can shed load.
func (m *Manager) Submit(fn Func, opts SubmitOpts) (*Job, error) {
	j, _, err := m.SubmitCoalesced(fn, opts)
	return j, err
}

// SubmitCoalesced is Submit plus a report of whether the returned job is
// a shared in-flight job another submission already started (only
// possible with opts.Coalesce). Cancelling a shared job cancels it for
// every waiter attached to it.
func (m *Manager) SubmitCoalesced(fn Func, opts SubmitOpts) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrShutdown
	}
	if opts.Key != "" {
		if v, ok := m.cache.Get(opts.Key); ok {
			m.seq++
			j := &Job{
				id:        m.jobID(),
				fn:        fn,
				key:       opts.Key,
				requestID: opts.RequestID,
				status:    StatusDone,
				cached:    true,
				result:    v,
				created:   time.Now(),
				done:      make(chan struct{}),
			}
			j.started, j.finished = j.created, j.created
			close(j.done)
			m.register(j)
			return j, false, nil
		}
		if opts.Coalesce {
			if leader, ok := m.inflight[opts.Key]; ok {
				m.coalesceHits.Add(1)
				return leader, true, nil
			}
		}
	}
	m.seq++
	j := &Job{
		id:        m.jobID(),
		fn:        fn,
		key:       opts.Key,
		requestID: opts.RequestID,
		status:    StatusQueued,
		created:   time.Now(),
		deadline:  opts.Deadline,
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- j:
		m.register(j)
		if opts.Coalesce && opts.Key != "" {
			m.inflight[opts.Key] = j
		}
		return j, false, nil
	default:
		return nil, false, ErrQueueFull
	}
}

// unflight drops a terminal job from the coalescing map. The identity
// check makes the call safe for jobs that never entered the map: a
// non-coalescing job with the same key must not evict the live leader.
func (m *Manager) unflight(j *Job) {
	if j.key == "" {
		return
	}
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
}

// CoalesceHits reports how many submissions attached to an identical
// in-flight job instead of running their own copy of the work.
func (m *Manager) CoalesceHits() int64 { return m.coalesceHits.Load() }

// register must run with m.mu held.
func (m *Manager) register(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	// Prune the oldest terminal jobs beyond the retention bound so the
	// registry cannot grow without limit under sustained traffic.
	for len(m.order) > m.cfg.Retain {
		pruned := false
		for i, id := range m.order {
			if old, ok := m.jobs[id]; ok && old.Status().Terminal() {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything live; keep them all
		}
	}
}

// Get looks a job up by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots all retained jobs in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	js := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			js = append(js, j)
		}
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.Snapshot()
	}
	return out
}

// Counts tallies jobs by status.
func (m *Manager) Counts() map[Status]int {
	counts := make(map[Status]int)
	for _, s := range m.List() {
		counts[s.Status]++
	}
	return counts
}

// Cancel stops a job: a queued job is marked cancelled immediately; a
// running job has its context cancelled (the worker records the terminal
// state when fn returns). Cancelling a finished job returns ErrFinished.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.status.Terminal():
		j.mu.Unlock()
		return ErrFinished
	case j.status == StatusRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default: // queued: finish here; the worker skips it on dequeue
		j.status = StatusCancelled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		m.unflight(j)
		return nil
	}
}

// CacheStats reports the result cache's hit/miss counters and size.
func (m *Manager) CacheStats() CacheStats { return m.cache.Stats() }

// QueueDepth reports how many submitted jobs are waiting for a worker
// right now — the direct saturation signal (previously only observable
// via ErrQueueFull rejects). Exposed as a gauge on /metrics.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// QueueCapacity reports the pending-queue bound.
func (m *Manager) QueueCapacity() int { return m.cfg.Queue }

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job with panic recovery and cancellation handling.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.status.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		// The budget expired while the job sat in the queue: the client is
		// gone, so cancel instead of running — an expired job that still
		// executes is exactly the orphaned work a deadline exists to stop.
		j.mu.Unlock()
		j.finish(StatusCancelled, nil, fmt.Errorf("jobs: deadline budget exhausted before start: %w", context.DeadlineExceeded))
		m.unflight(j)
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, m.cfg.JobTimeout)
	}
	if !j.deadline.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, j.deadline)
		inner := cancel
		ctx, cancel = dctx, func() { dcancel(); inner() }
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	var (
		result any
		err    error
	)
	for attempt := 1; attempt <= m.cfg.MaxAttempts; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		j.mu.Unlock()
		result, err = m.invoke(ctx, j)
		if err != nil {
			j.mu.Lock()
			j.lastErr = err.Error()
			j.mu.Unlock()
		}
		if err == nil || ctx.Err() != nil || errors.Is(err, context.Canceled) {
			break
		}
	}
	switch {
	case err == nil:
		if j.key != "" {
			m.cache.Add(j.key, result)
		}
		j.finish(StatusDone, result, nil)
	case errors.Is(err, context.Canceled) || errors.Is(ctx.Err(), context.Canceled):
		j.finish(StatusCancelled, nil, err)
	default:
		j.finish(StatusFailed, nil, err)
	}
	// Drop the coalescing-map entry only after the terminal state (and,
	// on success, the cache entry) is visible: a same-key submission
	// observing the gap lands on the cache, not on a second run.
	m.unflight(j)
}

// invoke calls fn, converting a panic into an error so one bad job
// cannot take a worker (or the process) down.
func (m *Manager) invoke(ctx context.Context, j *Job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job %s panicked: %v", j.id, r)
		}
	}()
	return j.fn(ctx)
}

// Shutdown stops intake, drains queued and running jobs, and waits for
// the workers to exit. If ctx expires first, running jobs are cancelled
// via their contexts and the ctx error is returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.baseCancel() // interrupt running jobs
		<-drained
		return ctx.Err()
	}
}
