package jobs

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU result cache. The manager keys it by the
// canonical (spec, options, seed) string of a design request so repeated
// requests return instantly without re-running the agent session.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache builds an LRU cache bounded to capacity entries (min 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add stores key→val, evicting the least recently used entry when full.
func (c *Cache) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats are the cache's observability counters.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len()}
}
