package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return m
}

// A batch of duplicated keys runs each unique key's fn exactly once;
// every duplicate either coalesces onto the in-flight run or hits the
// result cache, and all of them observe the same result.
func TestSubmitBatchCoalescesDuplicates(t *testing.T) {
	m := newTestManager(t, Config{Workers: 4, Queue: 256, CacheSize: 64})
	var runs atomic.Int64
	mk := func(key string) BatchItem {
		return BatchItem{
			Fn: func(ctx context.Context) (any, error) {
				runs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return key, nil
			},
			Opts: SubmitOpts{Key: key},
		}
	}
	var items []BatchItem
	for i := 0; i < 24; i++ {
		items = append(items, mk(fmt.Sprintf("k-%d", i%3)))
	}
	entries := m.SubmitBatch(items)
	results, errs := WaitBatch(context.Background(), entries)
	for i := range entries {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("k-%d", i%3); results[i] != want {
			t.Fatalf("item %d: result %v, want %v", i, results[i], want)
		}
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("fn ran %d times, want once per unique key (3)", got)
	}
	dedup := m.CoalesceHits() + m.CacheStats().Hits
	if dedup != int64(len(items))-3 {
		t.Errorf("coalesce(%d)+cache(%d) = %d deduped, want %d",
			m.CoalesceHits(), m.CacheStats().Hits, dedup, len(items)-3)
	}
}

// The property test of the coalescing layer: K unique specs duplicated
// across M concurrent submitters perform exactly one underlying run per
// unique key, under -race.
func TestConcurrentBatchesRunOncePerKey(t *testing.T) {
	const (
		uniqueKeys = 8
		submitters = 16
	)
	m := newTestManager(t, Config{Workers: 4, Queue: 4096, CacheSize: 64})
	var runs [uniqueKeys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			order := rng.Perm(uniqueKeys)
			items := make([]BatchItem, uniqueKeys)
			for i, k := range order {
				k := k
				items[i] = BatchItem{
					Fn: func(ctx context.Context) (any, error) {
						runs[k].Add(1)
						time.Sleep(3 * time.Millisecond)
						return k, nil
					},
					Opts: SubmitOpts{Key: fmt.Sprintf("spec-%d", k)},
				}
			}
			entries := m.SubmitBatch(items)
			results, errs := WaitBatch(context.Background(), entries)
			for i := range entries {
				if errs[i] != nil {
					t.Errorf("submitter %d item %d: %v", g, i, errs[i])
					return
				}
				if results[i] != order[i] {
					t.Errorf("submitter %d item %d: result %v, want %d", g, i, results[i], order[i])
				}
			}
		}(g)
	}
	wg.Wait()
	for k := range runs {
		if got := runs[k].Load(); got != 1 {
			t.Errorf("key %d ran %d times, want exactly 1", k, got)
		}
	}
	dedup := m.CoalesceHits() + m.CacheStats().Hits
	if want := int64(uniqueKeys*submitters - uniqueKeys); dedup != want {
		t.Errorf("deduped %d submissions, want %d", dedup, want)
	}
}

// A full queue rejects per item; the rest of the batch still runs.
func TestSubmitBatchQueueFullIsPerItem(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Queue: 1, CacheSize: 4})
	release := make(chan struct{})
	blocker, err := m.Submit(func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	}, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for blocker.Status() != StatusRunning {
		time.Sleep(time.Millisecond)
	}
	// Worker is busy; queue holds one. Three distinct items: one queues,
	// the rest are rejected individually.
	var items []BatchItem
	for i := 0; i < 3; i++ {
		i := i
		items = append(items, BatchItem{
			Fn:   func(ctx context.Context) (any, error) { return i, nil },
			Opts: SubmitOpts{Key: fmt.Sprintf("q-%d", i)},
		})
	}
	entries := m.SubmitBatch(items)
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	accepted, rejected := 0, 0
	for i, e := range entries {
		switch {
		case e.Err == nil:
			accepted++
			if _, err := e.Job.Wait(context.Background()); err != nil {
				t.Errorf("accepted item %d failed: %v", i, err)
			}
		case errors.Is(e.Err, ErrQueueFull):
			rejected++
		default:
			t.Errorf("item %d: unexpected error %v", i, e.Err)
		}
	}
	if accepted != 1 || rejected != 2 {
		t.Errorf("accepted %d rejected %d, want 1 and 2", accepted, rejected)
	}
}

// A failed leader is dropped from the coalescing map, so a later
// same-key submission retries instead of inheriting the stale failure.
func TestCoalesceClearsFailedLeader(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Queue: 8, CacheSize: 4})
	boom := errors.New("boom")
	fail := BatchItem{
		Fn:   func(ctx context.Context) (any, error) { return nil, boom },
		Opts: SubmitOpts{Key: "flaky"},
	}
	entries := m.SubmitBatch([]BatchItem{fail})
	if _, err := entries[0].Job.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("leader err = %v, want boom", err)
	}
	ok := BatchItem{
		Fn:   func(ctx context.Context) (any, error) { return "fine", nil },
		Opts: SubmitOpts{Key: "flaky"},
	}
	entries = m.SubmitBatch([]BatchItem{ok})
	if entries[0].Coalesced {
		t.Error("retry coalesced onto the failed leader")
	}
	if v, err := entries[0].Job.Wait(context.Background()); err != nil || v != "fine" {
		t.Fatalf("retry: %v, %v", v, err)
	}
}

// Waiters detach on their own context without cancelling the shared job:
// the slow waiter's cancellation must not fail the fast one.
func TestCoalescedWaiterCancelDoesNotCancelJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Queue: 8, CacheSize: 4})
	release := make(chan struct{})
	items := []BatchItem{
		{Fn: func(ctx context.Context) (any, error) { <-release; return 42, nil },
			Opts: SubmitOpts{Key: "shared"}},
		{Fn: func(ctx context.Context) (any, error) { return nil, errors.New("must not run") },
			Opts: SubmitOpts{Key: "shared"}},
	}
	entries := m.SubmitBatch(items)
	if !entries[1].Coalesced {
		t.Fatal("second item did not coalesce")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := entries[1].Job.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	close(release)
	if v, err := entries[0].Job.Wait(context.Background()); err != nil || v != 42 {
		t.Fatalf("leader: %v, %v", v, err)
	}
}
