package jobs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Map fans fn out over items on a bounded worker pool and returns the
// results in input order, which keeps parallel runs byte-identical to
// serial ones when fn is deterministic per item. The first error cancels
// the shared context and aborts remaining work; panics in fn are
// converted to errors. workers < 1 defaults to GOMAXPROCS.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, item T) (R, error)) ([]R, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if cctx.Err() != nil {
					continue // drain after abort
				}
				r, err := safeCall(cctx, items[i], fn)
				if err != nil {
					fail(err)
					continue
				}
				out[i] = r
			}
		}()
	}
feed:
	for i := range items {
		select {
		case idx <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func safeCall[T, R any](ctx context.Context, item T, fn func(ctx context.Context, item T) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: worker panicked: %v", p)
		}
	}()
	return fn(ctx, item)
}
