package jobs

// Deadline-budget tests: a job whose budget expires while queued is
// cancelled without ever running (the client already gave up — running
// it would orphan work), and a running job's context is clipped to the
// budget so fn stops at the edge instead of the pool's JobTimeout.

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeadlineExpiredInQueueCancels: a queued job whose deadline passes
// before a worker picks it up must cancel, not execute.
func TestDeadlineExpiredInQueueCancels(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 8})
	defer m.Shutdown(context.Background())

	// Occupy the only worker so the budgeted job sits in the queue past
	// its deadline.
	release := make(chan struct{})
	blocker, err := m.Submit(func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	}, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}

	var ran atomic.Bool
	j, err := m.Submit(func(ctx context.Context) (any, error) {
		ran.Store(true)
		return "never", nil
	}, SubmitOpts{Deadline: time.Now().Add(5 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(20 * time.Millisecond) // let the budget lapse in-queue
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("expired-in-queue job reported success")
	}

	snap := j.Snapshot()
	if snap.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled for a budget that lapsed in-queue", snap.Status)
	}
	if !strings.Contains(snap.Err, "deadline") {
		t.Fatalf("err = %q, want the deadline cause surfaced", snap.Err)
	}
	if ran.Load() {
		t.Fatal("expired job executed anyway — exactly the orphaned work a deadline exists to stop")
	}
	if snap.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (fn never invoked)", snap.Attempts)
	}
}

// TestDeadlineBoundsRunningJob: a running job's context expires at the
// budget's edge, so a well-behaved fn returns promptly and the job goes
// terminal instead of running to the (much larger) pool timeout.
func TestDeadlineBoundsRunningJob(t *testing.T) {
	m := NewManager(Config{Workers: 1, JobTimeout: time.Minute})
	defer m.Shutdown(context.Background())

	start := time.Now()
	j, err := m.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done() // run until the budget clips us
		return nil, ctx.Err()
	}, SubmitOpts{Deadline: time.Now().Add(20 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("budget-clipped job reported success")
	}
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("job ran %s; deadline did not bound the running context", elapsed)
	}

	snap := j.Snapshot()
	if !snap.Status.Terminal() || snap.Status == StatusDone {
		t.Fatalf("status = %s, want a non-done terminal state", snap.Status)
	}
	if !strings.Contains(snap.Err, "deadline") {
		t.Fatalf("err = %q, want the deadline error surfaced", snap.Err)
	}
}

// TestNoDeadlineUnaffected: the zero deadline means unbudgeted — the
// job runs normally.
func TestNoDeadlineUnaffected(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	j, err := m.Submit(func(ctx context.Context) (any, error) { return 7, nil }, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := j.Wait(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("Wait = %v, %v", v, err)
	}
}
