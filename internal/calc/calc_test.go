package calc

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"artisan/internal/units"
)

func evalOK(t *testing.T, src string) float64 {
	t.Helper()
	v, err := EvalNew(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"2^10", 1024},
		{"2^3^2", 512}, // right associative
		{"10/4", 2.5},
		{"-3+5", 2},
		{"--3", 3},
		{"+4", 4},
		{"1e3 + 1k", 2000},
		{"4p * 1MEG", 4e-6},
		{"sqrt(16)", 4},
		{"min(3, 2)", 2},
		{"max(3, 2)", 3},
		{"abs(-7)", 7},
		{"log10(1000)", 3},
		{"db(100)", 40},
		{"undb(40)", 100},
		{"pow(2, 8)", 256},
		{"2*pi", 2 * math.Pi},
		{"1k || 1k", 500},
		{"par(1k, 1k, 1k)", 1000.0 / 3},
		{"cbrt(27)", 3},
		{"atan2(1, 1)", math.Pi / 4},
	}
	for _, c := range cases {
		got := evalOK(t, c.src)
		if !units.ApproxEqual(got, c.want, 1e-12) {
			t.Errorf("Eval(%q) = %g, want %g", c.src, got, c.want)
		}
	}
}

// The paper's Fig. 7 Q3→A3 calculation: gm3 = 8*pi*GBW*CL with GBW=1MHz,
// CL=10pF must give 251.2u (their rounded value; exact is 251.33u).
func TestPaperNMCCalculation(t *testing.T) {
	env := NewEnv()
	env.Set("GBW", 1e6)
	env.Set("CL", 10e-12)
	gm3, err := Eval("gm3 = 8*pi*GBW*CL", env)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(gm3, 2.513e-4, 1e-3) {
		t.Errorf("gm3 = %g, want about 251.3u", gm3)
	}
	gm1, err := Eval("gm1 = gm3*Cm1/(4*CL)", func() *Env { env.Set("Cm1", 4e-12); return env }())
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(gm1, 2.513e-5, 1e-3) {
		t.Errorf("gm1 = %g, want about 25.13u", gm1)
	}
	// Assignment should have bound gm3 for later steps.
	if v, ok := env.Get("gm3"); !ok || v != gm3 {
		t.Error("assignment did not bind gm3 in env")
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	env := NewEnv()
	if _, err := Eval("x = 3", env); err != nil {
		t.Fatal(err)
	}
	if _, err := Eval("y = x^2 + 1", env); err != nil {
		t.Fatal(err)
	}
	v, err := Eval("y / 2", env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("y/2 = %g, want 5", v)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"", "1/0", "unknownvar", "foo(1)", "sqrt(-1)", "log10(0)",
		"1 +", "(1+2", "min(1)", "par()", "1 | 2", "ln(-3)",
		"0 || 0", "@", "1..2",
	}
	for _, src := range bad {
		if v, err := EvalNew(src); err == nil {
			t.Errorf("Eval(%q) = %g, want error", src, v)
		}
	}
}

func TestParallelOperator(t *testing.T) {
	// Ro3 || RL as in the NMC gain formula.
	env := NewEnv()
	env.Set("Ro3", 200e3)
	env.Set("RL", 1e6)
	v, err := Eval("Ro3 || RL", env)
	if err != nil {
		t.Fatal(err)
	}
	want := 200e3 * 1e6 / (200e3 + 1e6)
	if !units.ApproxEqual(v, want, 1e-12) {
		t.Errorf("parallel = %g, want %g", v, want)
	}
}

func TestSession(t *testing.T) {
	s := NewSession()
	s.Env().Set("CL", 10e-12)
	out, err := s.Run("gm3 = 8*pi*1MEG*CL")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "251.3") {
		t.Errorf("session output %q should contain 251.3", out)
	}
	if len(s.Log()) != 1 {
		t.Errorf("log length = %d, want 1", len(s.Log()))
	}
	if _, err := s.Run("gm3 * 2"); err != nil {
		t.Errorf("session should remember gm3: %v", err)
	}
}

func TestASTString(t *testing.T) {
	n, err := Parse("gm1 = sqrt(2*pi) + 1k || 2k")
	if err != nil {
		t.Fatal(err)
	}
	s := n.String()
	for _, want := range []string{"gm1 =", "sqrt", "||"} {
		if !strings.Contains(s, want) {
			t.Errorf("AST string %q missing %q", s, want)
		}
	}
}

// Property: parallel operator is commutative and bounded by min(a,b).
func TestParallelProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(a) + 1
		b = math.Abs(b) + 1
		if a > 1e100 || b > 1e100 || math.IsNaN(a) || math.IsNaN(b) {
			return true // a*b would overflow float64
		}
		env := NewEnv()
		env.Set("a", a)
		env.Set("b", b)
		ab, err1 := Eval("a||b", env)
		ba, err2 := Eval("b||a", env)
		if err1 != nil || err2 != nil {
			return false
		}
		return units.ApproxEqual(ab, ba, 1e-12) && ab <= math.Min(a, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Eval of a formatted number round-trips.
func TestNumberLiteralRoundTrip(t *testing.T) {
	f := func(m float64) bool {
		v := math.Abs(m)
		if v < 1e-15 || v > 1e12 || math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got, err := EvalNew(units.Format(v))
		if err != nil {
			return false
		}
		return units.ApproxEqual(got, v, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
