package calc

import (
	"math"
	"testing"
)

// FuzzEval: arbitrary input must either error or produce a value without
// panicking; accepted expressions re-evaluate identically (purity).
func FuzzEval(f *testing.F) {
	f.Add("1+2*3")
	f.Add("gm3 = 8*pi*GBW*CL")
	f.Add("sqrt(abs(-4)) ^ 2")
	f.Add("1k || 2k || 3k")
	f.Add("par(1,2,3)")
	f.Add("((((")
	f.Add("-1e308*10")
	f.Add("x = y = z")
	f.Fuzz(func(t *testing.T, src string) {
		env := NewEnv()
		env.Set("GBW", 1e6)
		env.Set("CL", 1e-11)
		v1, err1 := Eval(src, env)
		if err1 != nil {
			return
		}
		env2 := NewEnv()
		env2.Set("GBW", 1e6)
		env2.Set("CL", 1e-11)
		v2, err2 := Eval(src, env2)
		if err2 != nil {
			t.Fatalf("accepted expression failed on re-eval: %v", err2)
		}
		if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
			t.Fatalf("impure evaluation: %g vs %g for %q", v1, v2, src)
		}
	})
}
