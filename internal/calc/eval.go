package calc

import (
	"fmt"
	"math"
	"sort"

	"artisan/internal/units"
)

// Env holds variable bindings for evaluation. The zero value is unusable;
// create one with NewEnv, which preloads mathematical constants.
type Env struct {
	vars map[string]float64
}

// NewEnv returns an environment with pi and e bound.
func NewEnv() *Env {
	return &Env{vars: map[string]float64{
		"pi": math.Pi,
		"e":  math.E,
	}}
}

// Set binds name to value.
func (e *Env) Set(name string, v float64) { e.vars[name] = v }

// Get returns the value bound to name.
func (e *Env) Get(name string) (float64, bool) {
	v, ok := e.vars[name]
	return v, ok
}

// Names returns all bound variable names, sorted.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Eval parses and evaluates src in env. Assignments ("gm1 = 2*pi*GBW*Cm1")
// bind the result in env and also return it.
func Eval(src string, env *Env) (float64, error) {
	n, err := Parse(src)
	if err != nil {
		return 0, err
	}
	return n.eval(env)
}

// EvalNew evaluates src in a fresh environment.
func EvalNew(src string) (float64, error) { return Eval(src, NewEnv()) }

func (n numNode) eval(env *Env) (float64, error) { return n.v, nil }

func (n varNode) eval(env *Env) (float64, error) {
	if v, ok := env.Get(n.name); ok {
		return v, nil
	}
	return 0, fmt.Errorf("calc: undefined variable %q", n.name)
}

func (n unaryNode) eval(env *Env) (float64, error) {
	v, err := n.child.eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

func (n binNode) eval(env *Env) (float64, error) {
	l, err := n.left.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := n.right.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, fmt.Errorf("calc: division by zero in %s", n)
		}
		return l / r, nil
	case tokCaret:
		return math.Pow(l, r), nil
	case tokParallel:
		if l+r == 0 {
			return 0, fmt.Errorf("calc: degenerate parallel combination in %s", n)
		}
		return l * r / (l + r), nil
	}
	return 0, fmt.Errorf("calc: unknown operator in %s", n)
}

var functions = map[string]struct {
	arity int
	fn    func(args []float64) (float64, error)
}{
	"sqrt": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("calc: sqrt of negative %g", a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"cbrt":  {1, func(a []float64) (float64, error) { return math.Cbrt(a[0]), nil }},
	"abs":   {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"exp":   {1, func(a []float64) (float64, error) { return math.Exp(a[0]), nil }},
	"ln":    {1, func(a []float64) (float64, error) { return logChecked(math.Log, a[0]) }},
	"log10": {1, func(a []float64) (float64, error) { return logChecked(math.Log10, a[0]) }},
	"log2":  {1, func(a []float64) (float64, error) { return logChecked(math.Log2, a[0]) }},
	"sin":   {1, func(a []float64) (float64, error) { return math.Sin(a[0]), nil }},
	"cos":   {1, func(a []float64) (float64, error) { return math.Cos(a[0]), nil }},
	"tan":   {1, func(a []float64) (float64, error) { return math.Tan(a[0]), nil }},
	"atan":  {1, func(a []float64) (float64, error) { return math.Atan(a[0]), nil }},
	"atan2": {2, func(a []float64) (float64, error) { return math.Atan2(a[0], a[1]), nil }},
	"min":   {2, func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max":   {2, func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
	"pow":   {2, func(a []float64) (float64, error) { return math.Pow(a[0], a[1]), nil }},
	// db/undb: decibel conversions for gain work.
	"db": {1, func(a []float64) (float64, error) {
		return logChecked(func(x float64) float64 { return 20 * math.Log10(x) }, a[0])
	}},
	"undb": {1, func(a []float64) (float64, error) { return math.Pow(10, a[0]/20), nil }},
	// par: n-ary parallel combination.
	"par": {-1, func(a []float64) (float64, error) {
		if len(a) == 0 {
			return 0, fmt.Errorf("calc: par() needs at least one argument")
		}
		inv := 0.0
		for _, v := range a {
			if v == 0 {
				return 0, fmt.Errorf("calc: par() with zero branch")
			}
			inv += 1 / v
		}
		return 1 / inv, nil
	}},
}

func logChecked(f func(float64) float64, x float64) (float64, error) {
	if x <= 0 {
		return 0, fmt.Errorf("calc: logarithm of non-positive %g", x)
	}
	return f(x), nil
}

func (n callNode) eval(env *Env) (float64, error) {
	f, ok := functions[n.name]
	if !ok {
		return 0, fmt.Errorf("calc: unknown function %q", n.name)
	}
	if f.arity >= 0 && len(n.args) != f.arity {
		return 0, fmt.Errorf("calc: %s expects %d argument(s), got %d", n.name, f.arity, len(n.args))
	}
	args := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return f.fn(args)
}

func (n assignNode) eval(env *Env) (float64, error) {
	v, err := n.expr.eval(env)
	if err != nil {
		return 0, err
	}
	env.Set(n.name, v)
	return v, nil
}

// Session evaluates a sequence of expression lines in one shared
// environment, returning the formatted result of each line. It is the
// interface exposed to the agents as the "calculator tool".
type Session struct {
	env *Env
	log []string
}

// NewSession creates a calculator session with a fresh environment.
func NewSession() *Session { return &Session{env: NewEnv()} }

// Env exposes the session environment (e.g. to preload spec values).
func (s *Session) Env() *Env { return s.env }

// Run evaluates one line and returns a human-readable result string.
func (s *Session) Run(line string) (string, error) {
	v, err := Eval(line, s.env)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("%s = %s", stripSpaces(line), units.Format(v))
	s.log = append(s.log, out)
	return out, nil
}

// Log returns the session history.
func (s *Session) Log() []string { return append([]string(nil), s.log...) }
