// Package calc implements a small expression calculator: a lexer, a Pratt
// parser producing an AST, and an evaluator with variables and math
// functions. Numeric literals accept engineering suffixes ("4p", "251.2u",
// "1MEG"). It is the third-party "calculator" tool that the Artisan agents
// invoke by prompt instruction when a design step requires solving the
// compensation equations (paper §3.1, Fig. 7 Q3→A3).
package calc

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
	tokLParen
	tokRParen
	tokComma
	tokAssign
	tokParallel // "||": resistor-parallel operator a*b/(a+b)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokParallel:
		return "'||'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits src into tokens. Numbers are lexed greedily including
// engineering suffixes and unit tails, so "4pF" is one number token.
func lex(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r >= '0' && r <= '9', r == '.':
			start := i
			i++
			for i < len(rs) {
				c := rs[i]
				if c >= '0' && c <= '9' || c == '.' {
					i++
					continue
				}
				// exponent
				if (c == 'e' || c == 'E') && i+1 < len(rs) &&
					(rs[i+1] == '+' || rs[i+1] == '-' || unicode.IsDigit(rs[i+1])) {
					i += 2
					for i < len(rs) && unicode.IsDigit(rs[i]) {
						i++
					}
					continue
				}
				// engineering suffix / unit tail letters
				if unicode.IsLetter(c) || c == 'µ' || c == '°' {
					i++
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, string(rs[start:i]), start})
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, string(rs[start:i]), start})
		case r == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case r == '-':
			toks = append(toks, token{tokMinus, "-", i})
			i++
		case r == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case r == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case r == '^':
			toks = append(toks, token{tokCaret, "^", i})
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case r == '=':
			toks = append(toks, token{tokAssign, "=", i})
			i++
		case r == '|':
			if i+1 < len(rs) && rs[i+1] == '|' {
				toks = append(toks, token{tokParallel, "||", i})
				i += 2
			} else {
				return nil, fmt.Errorf("calc: stray '|' at position %d in %q", i, src)
			}
		default:
			return nil, fmt.Errorf("calc: unexpected character %q at position %d in %q", r, i, src)
		}
	}
	toks = append(toks, token{tokEOF, "", len(rs)})
	return toks, nil
}

// stripUnitTail removes a trailing pure-unit annotation that the units
// package would reject on its own ("4p F" style never occurs; tails like
// "Hz" are handled by units.Parse directly).
func stripSpaces(s string) string { return strings.TrimSpace(s) }
