package calc

import (
	"fmt"

	"artisan/internal/units"
)

// Node is an AST node of a parsed expression.
type Node interface {
	eval(env *Env) (float64, error)
	String() string
}

type numNode struct{ v float64 }

type varNode struct{ name string }

type unaryNode struct {
	op    tokenKind
	child Node
}

type binNode struct {
	op          tokenKind
	left, right Node
}

type callNode struct {
	name string
	args []Node
}

type assignNode struct {
	name string
	expr Node
}

func (n numNode) String() string { return units.Format(n.v) }
func (n varNode) String() string { return n.name }
func (n unaryNode) String() string {
	return fmt.Sprintf("(-%s)", n.child)
}
func (n binNode) String() string {
	op := map[tokenKind]string{
		tokPlus: "+", tokMinus: "-", tokStar: "*", tokSlash: "/",
		tokCaret: "^", tokParallel: "||",
	}[n.op]
	return fmt.Sprintf("(%s %s %s)", n.left, op, n.right)
}
func (n callNode) String() string {
	s := n.name + "("
	for i, a := range n.args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
func (n assignNode) String() string { return fmt.Sprintf("%s = %s", n.name, n.expr) }

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("calc: expected %v, got %v at position %d in %q", k, t.kind, t.pos, p.src)
	}
	return t, nil
}

// binding powers for the Pratt parser.
func infixBP(k tokenKind) (int, bool) {
	switch k {
	case tokPlus, tokMinus:
		return 10, true
	case tokStar, tokSlash:
		return 20, true
	case tokParallel:
		return 25, true
	case tokCaret:
		return 30, true
	}
	return 0, false
}

// Parse parses a single expression or assignment ("x = expr").
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}

	// Assignment form: IDENT '=' expr
	if p.toks[0].kind == tokIdent && len(p.toks) > 1 && p.toks[1].kind == tokAssign {
		name := p.next().text
		p.next() // '='
		expr, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEOF); err != nil {
			return nil, err
		}
		return assignNode{name, expr}, nil
	}

	n, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parseExpr(minBP int) (Node, error) {
	lhs, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek().kind
		bp, ok := infixBP(op)
		if !ok || bp < minBP {
			return lhs, nil
		}
		p.next()
		// '^' is right-associative; others left-associative.
		nextBP := bp + 1
		if op == tokCaret {
			nextBP = bp
		}
		rhs, err := p.parseExpr(nextBP)
		if err != nil {
			return nil, err
		}
		lhs = binNode{op, lhs, rhs}
	}
}

func (p *parser) parsePrefix() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := units.Parse(t.text)
		if err != nil {
			return nil, fmt.Errorf("calc: %w", err)
		}
		return numNode{v}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.next()
			var args []Node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return callNode{t.text, args}, nil
		}
		return varNode{t.text}, nil
	case tokMinus:
		child, err := p.parsePrefix()
		if err != nil {
			return nil, err
		}
		return unaryNode{tokMinus, child}, nil
	case tokPlus:
		return p.parsePrefix()
	case tokLParen:
		n, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return n, nil
	}
	return nil, fmt.Errorf("calc: unexpected %v at position %d in %q", t.kind, t.pos, p.src)
}
