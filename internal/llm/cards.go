package llm

import (
	"artisan/internal/spec"
)

// ArchProfile is the structured half of an architecture knowledge card:
// the performance preferences of mainstream architectures the paper's
// experts annotate for the ToT decision points (§3.3.1).
type ArchProfile struct {
	Arch      string
	MaxCL     float64 // largest load the compensation can drive well, F
	MaxGBW    float64 // practical GBW ceiling under the paper's power budgets, Hz
	GainDB    float64 // gain achievable without extra enhancement, dB
	PowerApt  float64 // 0..1, aptitude for very tight power budgets
	Prefer    float64 // 0..1 expert prior: how readily a designer reaches for it
	Rationale string
}

// Suitability scores the architecture for a spec; 0 means structurally
// unsuitable. The weighting reproduces the expert preference ordering:
// NMC for general use, NMCF when GBW dominates, DFCFC for huge loads.
func (p ArchProfile) Suitability(s spec.Spec) float64 {
	if s.CL > p.MaxCL {
		return 0
	}
	if s.MinGBW > p.MaxGBW {
		return 0
	}
	if s.MinGainDB > p.GainDB {
		return 0
	}
	score := p.Prefer
	// Prefer not to burn exotic structures on easy specs: mild penalty
	// encoded via PowerApt when the budget is tight.
	if s.MaxPower < 100e-6 {
		score *= 0.5 + p.PowerApt
	}
	// Headroom bonuses: the closer a spec pushes a ceiling, the more an
	// architecture with slack is preferred.
	score *= minf(1, p.MaxGBW/(4*s.MinGBW)+0.5)
	score *= minf(1, p.MaxCL/(4*s.CL)+0.5)
	return score
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// DomainProfiles is the expert-annotated architecture preference table of
// the Artisan-LLM (the G-x aptitudes were calibrated against the MNA
// substrate; see internal/design).
func DomainProfiles() []ArchProfile {
	return []ArchProfile{
		{Arch: "NMC", MaxCL: 60e-12, MaxGBW: 3e6, GainDB: 120, PowerApt: 0.5, Prefer: 0.95,
			Rationale: "The classic nested Miller compensation is the best-characterised general-purpose choice; Butterworth sizing gives ~60° PM with predictable power."},
		{Arch: "NMCNR", MaxCL: 60e-12, MaxGBW: 3.5e6, GainDB: 120, PowerApt: 0.45, Prefer: 0.85,
			Rationale: "NMC with a nulling resistor removes the RHP zero; a safe refinement of NMC when extra phase lead is needed."},
		{Arch: "NMCF", MaxCL: 80e-12, MaxGBW: 12e6, GainDB: 119, PowerApt: 0.35, Prefer: 0.7,
			Rationale: "The feedforward stage forms a push-pull output and an LHP zero, stretching GBW well beyond plain NMC at moderate power — choose it when the GBW spec dominates."},
		{Arch: "MNMC", MaxCL: 60e-12, MaxGBW: 6e6, GainDB: 119, PowerApt: 0.3, Prefer: 0.5,
			Rationale: "Multipath NMC cancels the first non-dominant pole with an input feedforward; sensitive to matching."},
		{Arch: "NGCC", MaxCL: 60e-12, MaxGBW: 3e6, GainDB: 119, PowerApt: 0.2, Prefer: 0.55,
			Rationale: "Nested Gm-C cancels every feedforward zero with replica transconductors; robust but pays two extra branches of current."},
		{Arch: "DFCFC", MaxCL: 3e-9, MaxGBW: 4e6, GainDB: 118, PowerApt: 0.55, Prefer: 0.65,
			Rationale: "The damping-factor-control block turns the inner compensation into a frequency-dependent capacitor that damps the non-dominant pair, so the output stage no longer scales with CL — the architecture of choice for very large capacitive loads."},
		{Arch: "TCFC", MaxCL: 60e-12, MaxGBW: 5e6, GainDB: 119, PowerApt: 0.25, Prefer: 0.45,
			Rationale: "Current-buffer (cascode) compensation removes the RHP zero and isolates the compensation current; needs a fast relay device."},
		{Arch: "AZC", MaxCL: 60e-12, MaxGBW: 2.5e6, GainDB: 118, PowerApt: 0.5, Prefer: 0.5,
			Rationale: "Active-zero compensation places a tunable LHP zero with an auxiliary transconductor; frugal but limited in GBW."},
		{Arch: "SMC", MaxCL: 60e-12, MaxGBW: 20e6, GainDB: 76, PowerApt: 0.7, Prefer: 1.0,
			Rationale: "For modest gain specifications a two-stage simple-Miller opamp is the frugal default: one compensation capacitor, two branches of current, wide bandwidth headroom."},
		{Arch: "SMCNR", MaxCL: 60e-12, MaxGBW: 25e6, GainDB: 76, PowerApt: 0.65, Prefer: 0.9,
			Rationale: "Two-stage Miller with a nulling resistor: the RHP zero moves to the LHP, buying phase margin at high GBW targets."},
	}
}

// DomainCards is the textual knowledge base of the trained Artisan-LLM:
// design-flow knowledge, analysis formulas, and modification strategies,
// transcribed from the three-stage compensation literature the paper's
// experts annotate ([9], [20]).
func DomainCards() []Card {
	var cards []Card
	for _, p := range DomainProfiles() {
		cards = append(cards, Card{
			ID: "arch-" + p.Arch, Topic: "architecture", Arch: p.Arch,
			Keywords: []string{"recommend", "architecture", "topology", p.Arch},
			Body:     p.Rationale,
		})
	}
	cards = append(cards,
		Card{ID: "analysis-nmc", Topic: "analysis", Arch: "NMC",
			Keywords: []string{"zero", "pole", "distribution", "transfer function", "miller"},
			Body: "Under the Miller effect of compensation capacitors Cm1 and Cm2 the dominant pole is p1 = 1/(2*pi*Cm1*gm2*gm3*Ro1*Ro2*(Ro3||RL)); " +
				"the gain-bandwidth product is GBW = Av*p1 = gm1/(2*pi*Cm1); the non-dominant poles are set by gm2, gm3, Cm2 and CL; " +
				"the capacitive feedforward through Cm1 leaves an RHP zero near gm3/(Cm1+Cm2)."},
		Card{ID: "allocation-butterworth", Topic: "analysis", Arch: "NMC",
			Keywords: []string{"allocate", "butterworth", "pole", "ratio"},
			Body: "Set p1 < GBW < |p2| <= |p3| to build a single-pole system within the frequency range 0..GBW. " +
				"According to the Butterworth methodology set GBW:p2:p3 = 1:2:4 to ensure a maximally flat response with about 60 degrees of phase margin. " +
				"This yields gm3 = 8*pi*GBW*CL, gm1 = gm3*Cm1/(4*CL), gm2 = gm3*Cm2/(2*CL)."},
		Card{ID: "analysis-dfcfc", Topic: "analysis", Arch: "DFCFC",
			Keywords: []string{"damping", "factor", "control", "frequency dependent capacitor", "large load"},
			Body: "The DFC block - a gain stage gm4 with feedback capacitor Cm3 - functions as a frequency-dependent capacitor: " +
				"below 1/(2*pi*Cm3*Ro4) it multiplies Cm3 by gm4*Ro4, above it contributes damping. " +
				"It controls the damping factor of the non-dominant complex pole pair so the output stage no longer needs gm3 proportional to CL."},
		Card{ID: "mod-large-load", Topic: "modification", Arch: "DFCFC",
			Keywords: []string{"modify", "large", "capacitive", "load", "1nF", "fails", "drive"},
			Body: "The NMC architecture fails to drive a very large CL because the output pole gm3/(2*pi*CL) collapses and the required gm3 = 8*pi*GBW*CL explodes the power budget. " +
				"Add a damping-factor-control (DFC) block with a gain stage gm4 and a feedback capacitor Cm3, and cancel the inner-loop Miller capacitor Cm2; " +
				"add a feedforward stage for a push-pull output. The netlist is thus modified into the DFCFC architecture."},
		Card{ID: "mod-gain", Topic: "modification", Arch: "NMC",
			Keywords: []string{"modify", "gain", "insufficient", "low", "cascode"},
			Body:     "When the DC gain misses the spec, replace the second stage with a telescopic-cascode stage: its intrinsic gain rises from about 45 to 160 without additional bias current."},
		Card{ID: "mod-gbw", Topic: "modification", Arch: "NMCF",
			Keywords: []string{"modify", "gbw", "bandwidth", "slow", "feedforward"},
			Body:     "When the GBW spec dominates, add a feedforward transconductance from the first-stage output to the output (NMCF): the LHP zero it creates relaxes the output-stage requirement and extends bandwidth."},
		Card{ID: "mod-power", Topic: "modification", Arch: "NMC",
			Keywords: []string{"modify", "power", "budget", "exceed", "current"},
			Body:     "When the power budget is tight, shrink the compensation capacitors (gm1 and gm2 scale with them), bias toward weak inversion (higher gm/Id), and keep only the minimum gm3 = 8*pi*GBW*CL."},
		Card{ID: "flow-overview", Topic: "flow", Arch: "",
			Keywords: []string{"design", "process", "flow", "steps"},
			Body: "The methodological design flow: 1) select topology from the specs; 2) analyze the zero-pole distribution; 3) allocate poles (Butterworth); " +
				"4) solve the main design parameters with the calculator; 5) check the gain budget; 6) check the power budget; 7) assemble the behavioral netlist; 8) verify by simulation and iterate."},
		Card{ID: "gmid-mapping", Topic: "flow", Arch: "",
			Keywords: []string{"transistor", "gm/id", "mapping", "sizing", "W/L"},
			Body: "Map the behavioral design to transistors with the gm/Id methodology: the stage connected to the input node becomes a current-mirror differential amplifier and the remaining stages become common-source amplifiers; " +
				"choose gm/Id per role (input pair ~20, mirrors ~12, drivers ~16) and size W/L from the inversion coefficient."},
	)
	return cards
}

// GPT4Cards reproduces the documented knowledge of off-the-shelf GPT-4
// (Fig. 7): a sensible architecture recommendation, an incorrect
// dominant-pole formula, and the unsuitable MPMC suggestion for large
// loads.
func GPT4Cards() []Card {
	return []Card{
		{ID: "gpt4-arch", Topic: "architecture", Arch: "NMC",
			Keywords: []string{"recommend", "architecture", "three-stage"},
			Body: "NMC: Nested Miller Compensation is particularly effective for multi-stage amplifiers: " +
				"1) providing better PM and frequency compensation in three-stage cases; 2) allowing for trade-offs between gain, bandwidth and stability; 3) handling varying load conditions."},
		{ID: "gpt4-analysis", Topic: "analysis", Arch: "NMC",
			Keywords: []string{"zero", "pole", "distribution"},
			// The paper highlights this as wrong: the dominant pole is NOT
			// gm3/CL (that is the output pole), and non-dominant poles are
			// not "higher due to compensation".
			Body: "1) The dominant pole is determined by the output stage and the load: p1 = gm3/CL. 2) Non-dominant poles are higher due to compensation."},
		{ID: "gpt4-mod", Topic: "modification", Arch: "MPMC",
			Keywords: []string{"modify", "large", "load", "1nF"},
			Body: "1) Increase the compensation capacitance values to handle a larger load, which may impact bandwidth. " +
				"2) Consider the multi-path Miller compensation (MPMC) technique to add a new path for the compensation."},
	}
}

// Llama2Cards reproduces the Fig. 7 behaviour of Llama2-7b-chat:
// irrelevant basics and unprofessional suggestions.
func Llama2Cards() []Card {
	return []Card{
		{ID: "llama2-arch", Topic: "architecture", Arch: "",
			Keywords: []string{"recommend", "architecture"},
			Body:     "You can use a multi-stage opamp architecture. Stage 1: current feedback opamp. Stage 2: voltage follower. Stage 3: voltage follower."},
		{ID: "llama2-analysis", Topic: "analysis", Arch: "",
			Keywords: []string{"zero", "pole"},
			Body:     "z = (R1+R2)/(2*R3) and p = (R1+R2)/(2*R3), where R1 and R2 are feedback resistors and R3 is the input impedance."},
		{ID: "llama2-mod", Topic: "modification", Arch: "",
			Keywords: []string{"modify", "load"},
			Body:     "1) Increase the Miller capacitance values. 2) Adjust the transconductance ratios of the three stages to reduce the load on each stage. 3) Increase the number of stages."},
	}
}
