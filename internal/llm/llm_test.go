package llm

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"artisan/internal/spec"
)

func TestTokenizer(t *testing.T) {
	tok := NewTokenizer()
	toks := tok.Tokenize("The NMC opamp, with Cm1=4pF!")
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
	// Punctuation survives as single tokens; words are lowercased.
	joined := strings.Join(toks, " ")
	for _, want := range []string{"the", "nmc", ",", "=", "!"} {
		if !strings.Contains(joined, want) {
			t.Errorf("tokens %v missing %q", toks, want)
		}
	}
	// Long words break into ## pieces.
	toks2 := tok.Tokenize("transconductance")
	if len(toks2) != 4 || !strings.HasPrefix(toks2[1], "##") {
		t.Errorf("word-piece split wrong: %v", toks2)
	}
	if tok.Count("a b c") != 3 {
		t.Errorf("Count = %d", tok.Count("a b c"))
	}
}

func TestTokenizerDeterministic(t *testing.T) {
	tok := NewTokenizer()
	f := func(s string) bool {
		a := tok.Tokenize(s)
		b := tok.Tokenize(s)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWords(t *testing.T) {
	w := Words("Add a DFC block, with gm4 and Cm3!")
	want := []string{"add", "a", "dfc", "block", "with", "gm4", "and", "cm3"}
	if len(w) != len(want) {
		t.Fatalf("Words = %v", w)
	}
	for i := range w {
		if w[i] != want[i] {
			t.Errorf("word %d = %q, want %q", i, w[i], want[i])
		}
	}
}

func TestBigramLearns(t *testing.T) {
	m := NewBigram()
	if !math.IsInf(m.Perplexity("anything"), 1) {
		t.Error("untrained model should have infinite perplexity")
	}
	domain := "the nested miller compensation opamp uses capacitors to set the dominant pole"
	for i := 0; i < 20; i++ {
		m.Observe(domain)
	}
	inDomain := m.Perplexity("the miller compensation sets the dominant pole")
	offDomain := m.Perplexity("quantum chromodynamics lattice gauge theory confinement")
	if inDomain >= offDomain {
		t.Errorf("in-domain ppl %g should beat off-domain %g", inDomain, offDomain)
	}
	if m.Tokens() == 0 || m.VocabSize() == 0 {
		t.Error("model has no stats")
	}
	if !strings.Contains(m.String(), "bigram") {
		t.Error("String() malformed")
	}
}

func TestIndexRetrieval(t *testing.T) {
	ix := NewIndex(DomainCards())
	if ix.Len() < 10 {
		t.Fatalf("domain KB too small: %d", ix.Len())
	}
	hits := ix.Search("how to drive a very large capacitive load of 1nF", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if !strings.Contains(hits[0].Card.ID, "large-load") && hits[0].Card.Arch != "DFCFC" {
		t.Errorf("top hit for large-load query = %s", hits[0].Card.ID)
	}
	// Topic filter.
	archHits := ix.SearchTopic("recommend a topology", "architecture", 2)
	for _, h := range archHits {
		if h.Card.Topic != "architecture" {
			t.Errorf("topic filter leaked %s", h.Card.ID)
		}
	}
	if got := ix.Search("zzz qqq xxx", 5); len(got) != 0 {
		t.Errorf("nonsense query returned %d hits", len(got))
	}
}

func TestClassifyPrompt(t *testing.T) {
	cases := map[string]string{
		"Please recommend an architecture":      "architecture",
		"please analyze zero-pole distribution": "analysis",
		"When CL=1nF the design suffers":        "modification",
		"map to transistor level with gm/id":    "flow",
		"hello there":                           "",
	}
	for prompt, want := range cases {
		if got := classifyPrompt(prompt); got != want {
			t.Errorf("classify(%q) = %q, want %q", prompt, got, want)
		}
	}
}

func TestDomainModelArchitectureChoices(t *testing.T) {
	m := NewDomainModel(1, 0) // zero temperature: deterministic ranking
	cases := map[string]string{
		"G-1": "NMC",   // general purpose
		"G-3": "NMCF",  // GBW-dominated
		"G-5": "DFCFC", // huge load: only DFCFC can drive 1 nF
	}
	for group, wantTop := range cases {
		g, _ := spec.Group(group)
		choices, err := m.ProposeArchitectures(context.Background(), g, 3)
		if err != nil {
			t.Fatalf("%s: %v", group, err)
		}
		if choices[0].Arch != wantTop {
			t.Errorf("%s: top choice %s (%.2f), want %s; all=%v",
				group, choices[0].Arch, choices[0].Score, wantTop, choices)
		}
	}
	// G-5 must exclude every small-load architecture.
	g5, _ := spec.Group("G-5")
	choices, _ := m.ProposeArchitectures(context.Background(), g5, 0)
	for _, c := range choices {
		if c.Arch != "DFCFC" {
			t.Errorf("G-5 offered unsuitable architecture %s", c.Arch)
		}
	}
}

func TestDomainModelKnobsAndModification(t *testing.T) {
	m := NewDomainModel(2, 0.12)
	g1, _ := spec.Group("G-1")
	k, err := m.ProposeKnobs(context.Background(), "NMC", g1)
	if err != nil {
		t.Fatal(err)
	}
	if len(k) == 0 {
		t.Error("empty knobs")
	}
	mod, err := m.ProposeModification(context.Background(), g1, "fails to drive the large 1nF capacitive load")
	if err != nil {
		t.Fatal(err)
	}
	if mod.NewArch != "DFCFC" {
		t.Errorf("modification = %+v, want DFCFC", mod)
	}
	if !strings.Contains(mod.Rationale, "damping") {
		t.Errorf("rationale %q lacks damping explanation", mod.Rationale)
	}
	mod2, err := m.ProposeModification(context.Background(), g1, "the DC gain is insufficient, too low")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mod2.Rationale, "cascode") {
		t.Errorf("gain modification rationale = %q", mod2.Rationale)
	}
}

func TestDomainModelGenerate(t *testing.T) {
	m := NewDomainModel(3, 0)
	ans, err := m.Generate("Based on the process, please analyze zero-pole distributions.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "gm1/(2*pi*Cm1)") {
		t.Errorf("analysis answer lacks the correct GBW formula: %q", ans)
	}
}

// GPT-4's documented failure modes (Fig. 7).
func TestGPT4Model(t *testing.T) {
	m := NewGPT4Model()
	g1, _ := spec.Group("G-1")
	choices, err := m.ProposeArchitectures(context.Background(), g1, 1)
	if err != nil || choices[0].Arch != "NMC" {
		t.Errorf("GPT-4 should still recommend NMC: %v %v", choices, err)
	}
	ans, err := m.Generate("please analyze the zero-pole distributions")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "p1 = gm3/CL") {
		t.Errorf("GPT-4 should give the incorrect dominant-pole formula, got %q", ans)
	}
	if _, err := m.ProposeKnobs(context.Background(), "NMC", g1); err == nil {
		t.Error("GPT-4 should fail to derive parameters")
	}
	mod, err := m.ProposeModification(context.Background(), g1, "CL=1nF suffers")
	if err != nil || mod.NewArch != "MPMC" {
		t.Errorf("GPT-4 should suggest MPMC: %+v %v", mod, err)
	}
}

func TestLlama2Model(t *testing.T) {
	m := NewLlama2Model()
	g1, _ := spec.Group("G-1")
	if _, err := m.ProposeArchitectures(context.Background(), g1, 1); err == nil {
		t.Error("Llama2 should propose no viable architecture")
	}
	if _, err := m.ProposeKnobs(context.Background(), "NMC", g1); err == nil {
		t.Error("Llama2 should fail to derive parameters")
	}
	ans, err := m.Generate("recommend an architecture for a three-stage opamp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "voltage follower") {
		t.Errorf("Llama2 answer = %q", ans)
	}
	mod, _ := m.ProposeModification(context.Background(), g1, "large load")
	if mod.NewArch != "" {
		t.Errorf("Llama2 modification should name no architecture: %+v", mod)
	}
}

func TestTrainPipeline(t *testing.T) {
	// Synthetic corpus: repetitive domain text (the real corpus package
	// provides richer data; here we only need the mechanics).
	var docs []Document
	base := []string{
		"the nested miller compensation opamp uses capacitor cm1 to set the dominant pole and capacitor cm2 for the inner loop",
		"the gain bandwidth product equals gm1 over two pi cm1 in a miller compensated amplifier",
		"a damping factor control block adds a gain stage gm4 with feedback capacitor cm3 to drive large capacitive loads",
		"phase margin of sixty degrees follows from butterworth pole allocation with ratios one two four",
	}
	for i := 0; i < 60; i++ {
		docs = append(docs, Document{Title: "doc", Text: base[i%len(base)]})
	}
	qas := []QA{
		{"How to allocate poles in an NMC opamp?", "Set GBW:p2:p3 = 1:2:4 per Butterworth."},
		{"What sets GBW?", "GBW = gm1/(2*pi*Cm1)."},
	}
	model, rep, err := Train(Dataset{Pretrain: docs, Finetune: qas}, DefaultTrainConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DAPT.Improved() {
		t.Errorf("DAPT loss curve did not improve: %v", rep.DAPT.LossCurve)
	}
	if rep.DAPT.Tokens == 0 || rep.SFT.Tokens == 0 || rep.Vocab == 0 {
		t.Errorf("report has zero counts: %+v", rep)
	}
	if model.LM() == nil {
		t.Fatal("trained model has no LM")
	}
	// SFT knowledge is retrievable.
	ans, err := model.Generate("What sets GBW?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans, "gm1/(2*pi*Cm1)") && !strings.Contains(ans, "GBW") {
		t.Errorf("SFT answer = %q", ans)
	}
	// Trained LM prefers domain text.
	in := model.LM().Perplexity("the miller compensation capacitor sets the dominant pole")
	out := model.LM().Perplexity("gradient boosting decision forests ensemble hyperparameters")
	if in >= out {
		t.Errorf("domain ppl %g should beat off-domain %g", in, out)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(Dataset{}, DefaultTrainConfig(1)); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, _, err := Train(Dataset{Pretrain: []Document{{Text: "x"}}},
		TrainConfig{Checkpoints: 1, HoldoutFrac: 0.9, Seed: 1}); err == nil {
		t.Error("degenerate holdout should fail (no training docs)")
	}
}

func TestGenerateNoKnowledge(t *testing.T) {
	m := NewLlama2Model()
	if _, err := m.Generate("zzzz qqqq"); err == nil {
		t.Error("irrelevant prompt should error")
	}
}

// The two-stage extension: a modest-gain wide-GBW spec routes to the SMC
// family, and the gain gate keeps SMC away from every paper group (all
// demand ≥ 85 dB, beyond a two-stage's ~76 dB ceiling).
func TestTwoStageRouting(t *testing.T) {
	m := NewDomainModel(5, 0)
	buffer := spec.Spec{Name: "buffer", MinGainDB: 70, MinGBW: 2e6, MinPM: 55,
		MaxPower: 150e-6, CL: 5e-12, RL: 1e6, VDD: 1.8}
	choices, err := m.ProposeArchitectures(context.Background(), buffer, 2)
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Arch != "SMC" {
		t.Errorf("buffer spec routed to %s, want SMC (all: %v)", choices[0].Arch, choices)
	}
	for _, gname := range []string{"G-1", "G-2", "G-3", "G-4", "G-5"} {
		g, _ := spec.Group(gname)
		cs, err := m.ProposeArchitectures(context.Background(), g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cs {
			if c.Arch == "SMC" || c.Arch == "SMCNR" {
				t.Errorf("%s offered two-stage %s despite the 85 dB gain spec", gname, c.Arch)
			}
		}
	}
}

func TestBigramSample(t *testing.T) {
	m := NewBigram()
	for i := 0; i < 30; i++ {
		m.Observe("the miller capacitor sets the dominant pole of the opamp")
	}
	rng := rand.New(rand.NewSource(1))
	out := m.Sample("the miller", 6, 0.5, rng)
	if out == "" {
		t.Fatal("no sample produced")
	}
	// Low temperature follows the dominant chain.
	greedy := m.Sample("the", 3, 1e-6, rng)
	if !strings.Contains("miller capacitor sets dominant pole opamp the of", strings.Fields(greedy)[0]) {
		t.Errorf("greedy sample %q wandered off corpus", greedy)
	}
	if NewBigram().Sample("x", 5, 1, rng) != "" {
		t.Error("untrained model should produce nothing")
	}
	if m.Sample("the", 0, 1, rng) != "" {
		t.Error("n=0 should produce nothing")
	}
}
