package llm

import (
	"context"
	"sort"

	"artisan/internal/design"
	"artisan/internal/resilience"
	"artisan/internal/spec"
)

// ChaosDesigner wraps any DesignerModel with a deterministic fault
// injector, turning a healthy model into one that fails, stalls, or
// hallucinates at configured rates. It is the chaos-mode harness for the
// agent loop: because the injector is seeded, a chaotic design session
// replays byte-for-byte, so retries, breaker transitions, and the
// degradation ladder can be asserted in tests and reproduced from a
// production incident's seed.
//
// Fault classes map onto the designer interface as follows:
//
//   - FaultError: the call fails with a wrapped resilience.ErrInjected.
//   - FaultTimeout: the call stalls until its context (or the injector's
//     stall cap) expires — the "hung LLM backend" case.
//   - FaultLatency: the call succeeds after an injected latency spike.
//   - FaultCorrupt: the call succeeds but the output is corrupted while
//     staying parseable — a wrong-but-confident architecture, a knob off
//     by more than an order of magnitude, a modification naming a
//     nonexistent architecture. These survive parsing and must be caught
//     by downstream verification, which is exactly the paper's
//     simulate-then-verify loop.
type ChaosDesigner struct {
	Inner DesignerModel
	Inj   *resilience.Injector
}

// NewChaosDesigner wraps inner with the injector.
func NewChaosDesigner(inner DesignerModel, inj *resilience.Injector) *ChaosDesigner {
	return &ChaosDesigner{Inner: inner, Inj: inj}
}

// Name identifies the wrapped model; chaos is an operating condition,
// not an identity, so transcripts keep the inner model's name.
func (c *ChaosDesigner) Name() string { return c.Inner.Name() }

// Generate passes free-text generation through untouched: the structured
// decision path is where faults change session outcomes.
func (c *ChaosDesigner) Generate(prompt string) (string, error) {
	return c.Inner.Generate(prompt)
}

// ProposeArchitectures injects before delegating; a corrupt draw rewrites
// the top recommendation into a confident pick of an architecture with no
// executable design procedure.
func (c *ChaosDesigner) ProposeArchitectures(ctx context.Context, s spec.Spec, k int) ([]ArchChoice, error) {
	f, err := c.Inj.Apply(ctx, "ProposeArchitectures")
	if err != nil {
		return nil, err
	}
	choices, err := c.Inner.ProposeArchitectures(ctx, s, k)
	if err != nil || f != resilience.FaultCorrupt || len(choices) == 0 {
		return choices, err
	}
	out := append([]ArchChoice(nil), choices...)
	out[0] = ArchChoice{Arch: "MPMC", Score: out[0].Score * 2,
		Rationale: "(corrupted) multipath compensation is always the best choice"}
	return out, nil
}

// ProposeKnobs injects before delegating; a corrupt draw scales one knob
// by ~40× in a deterministically chosen direction — parseable, plausible
// at a glance, and certain to miss the spec.
func (c *ChaosDesigner) ProposeKnobs(ctx context.Context, arch string, s spec.Spec) (design.Knobs, error) {
	f, err := c.Inj.Apply(ctx, "ProposeKnobs")
	if err != nil {
		return nil, err
	}
	k, err := c.Inner.ProposeKnobs(ctx, arch, s)
	if err != nil || f != resilience.FaultCorrupt || len(k) == 0 {
		return k, err
	}
	keys := make([]string, 0, len(k))
	for key := range k {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	key := keys[int(c.Inj.Draw()*float64(len(keys)))%len(keys)]
	factor := 40.0
	if c.Inj.Draw() < 0.5 {
		factor = 1 / factor
	}
	k[key] *= factor
	return k, nil
}

// ProposeModification injects before delegating; a corrupt draw names an
// architecture no design procedure exists for, which the session's
// known-architecture gate must refuse.
func (c *ChaosDesigner) ProposeModification(ctx context.Context, s spec.Spec, failure string) (Modification, error) {
	f, err := c.Inj.Apply(ctx, "ProposeModification")
	if err != nil {
		return Modification{}, err
	}
	mod, err := c.Inner.ProposeModification(ctx, s, failure)
	if err != nil || f != resilience.FaultCorrupt {
		return mod, err
	}
	return Modification{NewArch: "XQ-9000",
		Rationale: "(corrupted) switch to the XQ-9000 hyper-cascode"}, nil
}

var _ DesignerModel = (*ChaosDesigner)(nil)
