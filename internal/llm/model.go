package llm

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"artisan/internal/design"
	"artisan/internal/spec"
)

// Model is the text interface an LLM server exposes; every agent in the
// multi-agent framework talks to one of these.
type Model interface {
	Name() string
	Generate(prompt string) (string, error)
}

// ArchChoice is one Tree-of-Thoughts candidate at the first decision point
// (architecture selection).
type ArchChoice struct {
	Arch      string
	Score     float64
	Rationale string
}

// Modification is the second ToT decision point: how to change the design
// after a failed verification.
type Modification struct {
	NewArch   string
	Rationale string
}

// DesignerModel is the richer interface the design agents drive: besides
// free-text generation it exposes the structured decisions of the design
// flow. The DomainModel implements it competently; the off-the-shelf
// baselines implement it with their documented failure modes. Every
// structured decision takes a context so a cancelled session or an
// expired per-stage deadline stops the model instead of leaking work —
// a remote LLM backend makes these genuinely slow calls.
type DesignerModel interface {
	Model
	ProposeArchitectures(ctx context.Context, s spec.Spec, k int) ([]ArchChoice, error)
	ProposeKnobs(ctx context.Context, arch string, s spec.Spec) (design.Knobs, error)
	ProposeModification(ctx context.Context, s spec.Spec, failure string) (Modification, error)
}

// retrievalModel answers free-text prompts by tf-idf retrieval over a
// knowledge base.
type retrievalModel struct {
	name string
	ix   *Index
}

func (m *retrievalModel) Name() string { return m.name }

// Generate retrieves the best-matching knowledge for the prompt. Topic
// routing mirrors how a fine-tuned model specialises: questions about
// recommendations hit architecture cards, "how to modify" hits
// modification cards, and so on.
func (m *retrievalModel) Generate(prompt string) (string, error) {
	topic := classifyPrompt(prompt)
	var hits []Hit
	if topic != "" {
		hits = m.ix.SearchTopic(prompt, topic, 1)
	}
	if len(hits) == 0 {
		hits = m.ix.Search(prompt, 1)
	}
	if len(hits) == 0 {
		return "", fmt.Errorf("llm: %s has no relevant knowledge for %q", m.name, truncate(prompt, 60))
	}
	return hits[0].Card.Body, nil
}

func classifyPrompt(prompt string) string {
	p := strings.ToLower(prompt)
	switch {
	case strings.Contains(p, "recommend") || strings.Contains(p, "design an opamp") ||
		strings.Contains(p, "architecture"):
		return "architecture"
	case strings.Contains(p, "modify") || strings.Contains(p, "fails") ||
		strings.Contains(p, "suffers"):
		return "modification"
	case strings.Contains(p, "zero") || strings.Contains(p, "pole") ||
		strings.Contains(p, "allocate"):
		return "analysis"
	case strings.Contains(p, "flow") || strings.Contains(p, "process") ||
		strings.Contains(p, "transistor") || strings.Contains(p, "gm/id"):
		return "flow"
	}
	return ""
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// DomainModel is the simulated Artisan-LLM: the domain knowledge base plus
// temperature-controlled sampling of the empirical design choices.
type DomainModel struct {
	retrievalModel
	profiles    []ArchProfile
	rng         *rand.Rand
	Temperature float64
	// SlipRate is the probability that the model holds one *wrong
	// empirical belief* per architecture (a hallucinated design choice,
	// e.g. "take Cm1 = 25 pF"). A slip persists for the model's lifetime
	// — redesigning with the same model repeats the mistake — which is
	// what produces the paper's 7–9/10 session success rates.
	SlipRate float64
	slips    map[string]knobSlip
	lm       *Bigram // fitted during training; nil before
}

type knobSlip struct {
	key    string
	factor float64
}

// NewDomainModel builds the trained Artisan-LLM from the expert knowledge
// base. Temperature 0.22 with the matching slip rate reproduces the
// paper's success-rate spread.
func NewDomainModel(seed int64, temperature float64) *DomainModel {
	return &DomainModel{
		retrievalModel: retrievalModel{name: "Artisan-LLM", ix: NewIndex(DomainCards())},
		profiles:       DomainProfiles(),
		rng:            rand.New(rand.NewSource(seed)),
		Temperature:    temperature,
		SlipRate:       temperature, // calibrated against the paper's 7–9/10 band
		slips:          map[string]knobSlip{},
	}
}

// LM exposes the fitted bigram model (nil before training).
func (m *DomainModel) LM() *Bigram { return m.lm }

// ProposeArchitectures scores every known architecture against the spec —
// the expansion step of the ToT decision tree. Scores carry a small
// sampled perturbation so repeated sessions explore near-ties.
func (m *DomainModel) ProposeArchitectures(ctx context.Context, s spec.Spec, k int) ([]ArchChoice, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []ArchChoice
	for _, p := range m.profiles {
		base := p.Suitability(s)
		if base <= 0 {
			continue
		}
		noise := 1.0
		if m.Temperature > 0 {
			noise = lognormSample(m.rng, m.Temperature/2)
		}
		out = append(out, ArchChoice{Arch: p.Arch, Score: base * noise, Rationale: p.Rationale})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("llm: no architecture suits spec %s", s.Name)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Arch < out[j].Arch
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ProposeKnobs samples the empirical design choices for an architecture.
// Besides the temperature jitter, the model may hold a persistent wrong
// belief about one knob (see SlipRate); that belief is decided on first
// use of the architecture and repeated on every redesign.
func (m *DomainModel) ProposeKnobs(ctx context.Context, arch string, s spec.Spec) (design.Knobs, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k, err := design.SampleKnobs(arch, s, m.rng, m.Temperature)
	if err != nil {
		return nil, err
	}
	sl, decided := m.slips[arch]
	if !decided {
		sl = knobSlip{}
		if m.rng.Float64() < m.SlipRate {
			keys := make([]string, 0, len(k))
			for key := range k {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			sl.key = keys[m.rng.Intn(len(keys))]
			// Hallucinated values are off by 3–8× in either direction.
			sl.factor = 3 + 5*m.rng.Float64()
			if m.rng.Intn(2) == 0 {
				sl.factor = 1 / sl.factor
			}
		}
		m.slips[arch] = sl
	}
	if sl.key != "" {
		k[sl.key] *= sl.factor
	}
	return k, nil
}

// ProposeModification retrieves the expert modification strategy matching
// a failure description (the second ToT decision point).
func (m *DomainModel) ProposeModification(ctx context.Context, s spec.Spec, failure string) (Modification, error) {
	if err := ctx.Err(); err != nil {
		return Modification{}, err
	}
	hits := m.ix.SearchTopic("modify "+failure, "modification", 1)
	if len(hits) == 0 {
		return Modification{}, fmt.Errorf("llm: no modification strategy for %q", truncate(failure, 60))
	}
	c := hits[0].Card
	return Modification{NewArch: c.Arch, Rationale: c.Body}, nil
}

func lognormSample(rng *rand.Rand, sigma float64) float64 {
	v := rng.NormFloat64() * sigma
	if v > 1 {
		v = 1
	}
	if v < -1 {
		v = -1
	}
	return exp1(v)
}

// GPT4Model simulates off-the-shelf GPT-4 (§4.3, Fig. 7): plausible
// single-step answers — including the incorrect dominant-pole formula and
// the unsuitable MPMC suggestion — but no ability to execute the complete
// multi-step design flow.
type GPT4Model struct{ retrievalModel }

// NewGPT4Model builds the GPT-4 baseline.
func NewGPT4Model() *GPT4Model {
	return &GPT4Model{retrievalModel{name: "GPT-4", ix: NewIndex(GPT4Cards())}}
}

// ProposeArchitectures: GPT-4 does recommend NMC appropriately.
func (m *GPT4Model) ProposeArchitectures(ctx context.Context, s spec.Spec, k int) ([]ArchChoice, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	body, _ := m.Generate("recommend an architecture")
	return []ArchChoice{{Arch: "NMC", Score: 1, Rationale: body}}, nil
}

// ProposeKnobs: without tailored training GPT-4 cannot carry the
// methodological parameter derivation (paper §4.2: "consistently fail to
// design opamps in any instance").
func (m *GPT4Model) ProposeKnobs(ctx context.Context, arch string, s spec.Spec) (design.Knobs, error) {
	return nil, fmt.Errorf("llm: GPT-4 cannot execute the complete design process: " +
		"its dominant-pole formula p1 = gm3/CL is incorrect, so the derived parameters do not close")
}

// ProposeModification: GPT-4 suggests MPMC, which cannot drive a 1 nF
// load — no design procedure exists for it.
func (m *GPT4Model) ProposeModification(ctx context.Context, s spec.Spec, failure string) (Modification, error) {
	body, _ := m.Generate("modify for large load")
	return Modification{NewArch: "MPMC", Rationale: body}, nil
}

// Llama2Model simulates off-the-shelf Llama2-7b-chat: basic, often
// irrelevant answers and no viable architecture proposal.
type Llama2Model struct{ retrievalModel }

// NewLlama2Model builds the Llama2 baseline.
func NewLlama2Model() *Llama2Model {
	return &Llama2Model{retrievalModel{name: "Llama2-7b-chat", ix: NewIndex(Llama2Cards())}}
}

// ProposeArchitectures: the "current feedback opamp + voltage followers"
// suggestion names no real three-stage compensation architecture.
func (m *Llama2Model) ProposeArchitectures(ctx context.Context, s spec.Spec, k int) ([]ArchChoice, error) {
	body, _ := m.Generate("recommend an architecture")
	return nil, fmt.Errorf("llm: Llama2 proposes no viable architecture: %s", truncate(body, 80))
}

// ProposeKnobs always fails: there is no architecture to size.
func (m *Llama2Model) ProposeKnobs(ctx context.Context, arch string, s spec.Spec) (design.Knobs, error) {
	return nil, fmt.Errorf("llm: Llama2 cannot derive design parameters")
}

// ProposeModification returns the unprofessional Fig. 7 list, which names
// no actionable architecture.
func (m *Llama2Model) ProposeModification(ctx context.Context, s spec.Spec, failure string) (Modification, error) {
	body, _ := m.Generate("modify for load")
	return Modification{NewArch: "", Rationale: body}, nil
}

var (
	_ DesignerModel = (*DomainModel)(nil)
	_ DesignerModel = (*GPT4Model)(nil)
	_ DesignerModel = (*Llama2Model)(nil)
)
