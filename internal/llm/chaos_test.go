package llm

import (
	"context"
	"errors"
	"testing"

	"artisan/internal/resilience"
	"artisan/internal/spec"
)

func TestChaosDesignerInjectsErrors(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := NewChaosDesigner(NewDomainModel(1, 0),
		resilience.NewInjector(resilience.InjectorConfig{Seed: 1, ErrorRate: 1}))
	if _, err := m.ProposeArchitectures(context.Background(), g1, 1); !errors.Is(err, resilience.ErrInjected) {
		t.Errorf("err = %v, want injected", err)
	}
	if m.Name() != "Artisan-LLM" {
		t.Errorf("chaos should keep the inner identity, got %q", m.Name())
	}
}

func TestChaosDesignerCorruptsParseably(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := NewChaosDesigner(NewDomainModel(1, 0),
		resilience.NewInjector(resilience.InjectorConfig{Seed: 1, CorruptRate: 1}))
	ctx := context.Background()

	choices, err := m.ProposeArchitectures(ctx, g1, 1)
	if err != nil || len(choices) == 0 {
		t.Fatalf("corrupt output must stay parseable: %v", err)
	}
	if choices[0].Arch != "MPMC" {
		t.Errorf("corrupt top choice = %q, want the unexecutable MPMC", choices[0].Arch)
	}

	clean, err := NewDomainModel(1, 0).ProposeKnobs(ctx, "NMC", g1)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := m.ProposeKnobs(ctx, "NMC", g1)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for k, v := range dirty {
		if clean[k] != v {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("corruption changed %d knobs, want exactly 1 (clean=%v dirty=%v)", changed, clean, dirty)
	}

	mod, err := m.ProposeModification(ctx, g1, "the bandwidth is too slow")
	if err != nil {
		t.Fatal(err)
	}
	if mod.NewArch != "XQ-9000" {
		t.Errorf("corrupt modification = %+v", mod)
	}
}

// Two chaos wrappers with the same seed must behave identically.
func TestChaosDesignerDeterministic(t *testing.T) {
	g1, _ := spec.Group("G-1")
	run := func() []string {
		m := NewChaosDesigner(NewDomainModel(1, 0),
			resilience.NewInjector(resilience.InjectorConfig{Seed: 3, ErrorRate: 0.4, CorruptRate: 0.2}))
		var outcomes []string
		for i := 0; i < 40; i++ {
			if _, err := m.ProposeKnobs(context.Background(), "NMC", g1); err != nil {
				outcomes = append(outcomes, "err")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos outcome diverged at call %d", i)
		}
	}
}

func TestChaosDesignerCancelledContext(t *testing.T) {
	g1, _ := spec.Group("G-1")
	m := NewChaosDesigner(NewDomainModel(1, 0),
		resilience.NewInjector(resilience.InjectorConfig{Seed: 1}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ProposeKnobs(ctx, "NMC", g1); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}
