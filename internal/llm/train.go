package llm

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// exp1 is a local alias to keep sampling helpers dependency-free.
func exp1(x float64) float64 { return math.Exp(x) }

// Document is one pre-training sample (collected corpus or NetlistTuple).
type Document struct {
	Title string
	Text  string
}

// QA is one fine-tuning sample (DesignQA or instruction data).
type QA struct {
	Question string
	Answer   string
}

// Dataset mirrors the two-split structure of Table 1.
type Dataset struct {
	Pretrain []Document
	Finetune []QA
}

// TrainConfig controls the simulated two-phase training pipeline.
type TrainConfig struct {
	Checkpoints int     // held-out evaluations per phase (loss-curve points)
	HoldoutFrac float64 // fraction of data held out for evaluation
	Seed        int64
	Temperature float64 // operating temperature of the resulting model
}

// DefaultTrainConfig matches the reproduction's standard settings.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Checkpoints: 8, HoldoutFrac: 0.1, Seed: seed, Temperature: 0.22}
}

// PhaseReport records one training phase (DAPT or SFT).
type PhaseReport struct {
	Phase     string
	Samples   int
	Tokens    int
	LossCurve []float64 // held-out cross-entropy (nats/token) per checkpoint
}

// Improved reports whether the held-out loss decreased over the phase.
func (p PhaseReport) Improved() bool {
	n := len(p.LossCurve)
	return n >= 2 && p.LossCurve[n-1] < p.LossCurve[0]
}

// TrainReport summarises the full pipeline.
type TrainReport struct {
	DAPT  PhaseReport
	SFT   PhaseReport
	Vocab int
}

// Train runs the simulated two-step pipeline of §3.4: domain-adaptive
// pre-training on the corpus, then supervised fine-tuning on the QA data.
// The bigram language model is genuinely fitted (held-out cross-entropy
// falls), and the fine-tuning QA pairs are compiled into retrieval
// knowledge, so training measurably changes the model's behaviour.
func Train(ds Dataset, cfg TrainConfig) (*DomainModel, *TrainReport, error) {
	if len(ds.Pretrain) == 0 {
		return nil, nil, fmt.Errorf("llm: empty pre-training dataset")
	}
	if cfg.Checkpoints < 1 {
		cfg.Checkpoints = 1
	}
	if cfg.HoldoutFrac <= 0 || cfg.HoldoutFrac >= 0.5 {
		cfg.HoldoutFrac = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tok := NewTokenizer()
	lm := NewBigram()
	report := &TrainReport{}

	// --- Phase 1: DAPT ---
	docs := append([]Document(nil), ds.Pretrain...)
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	nHold := int(float64(len(docs)) * cfg.HoldoutFrac)
	if nHold < 1 {
		nHold = 1
	}
	holdout := docs[:nHold]
	train := docs[nHold:]
	if len(train) == 0 {
		return nil, nil, fmt.Errorf("llm: pre-training dataset too small for holdout")
	}
	var holdText strings.Builder
	for _, d := range holdout {
		holdText.WriteString(d.Text)
		holdText.WriteByte('\n')
	}
	dapt := PhaseReport{Phase: "DAPT", Samples: len(train)}
	chunk := (len(train) + cfg.Checkpoints - 1) / cfg.Checkpoints
	for i, d := range train {
		lm.Observe(d.Text)
		dapt.Tokens += tok.Count(d.Text)
		if (i+1)%chunk == 0 || i == len(train)-1 {
			dapt.LossCurve = append(dapt.LossCurve, lm.CrossEntropy(holdText.String()))
		}
	}
	report.DAPT = dapt

	// --- Phase 2: SFT ---
	sft := PhaseReport{Phase: "SFT", Samples: len(ds.Finetune)}
	qaCards := make([]Card, 0, len(ds.Finetune))
	if len(ds.Finetune) > 0 {
		chunk = (len(ds.Finetune) + cfg.Checkpoints - 1) / cfg.Checkpoints
		for i, qa := range ds.Finetune {
			text := qa.Question + "\n" + qa.Answer
			lm.Observe(text)
			sft.Tokens += tok.Count(text)
			qaCards = append(qaCards, Card{
				ID:       fmt.Sprintf("qa-%04d", i),
				Topic:    "qa",
				Body:     qa.Answer,
				Keywords: Words(qa.Question),
			})
			if (i+1)%chunk == 0 || i == len(ds.Finetune)-1 {
				sft.LossCurve = append(sft.LossCurve, lm.CrossEntropy(holdText.String()))
			}
		}
	}
	report.SFT = sft
	report.Vocab = lm.VocabSize()

	model := NewDomainModel(cfg.Seed, cfg.Temperature)
	model.ix = NewIndex(append(DomainCards(), qaCards...))
	model.lm = lm
	return model, report, nil
}
