package llm

import (
	"math"
	"sort"
)

// Card is one unit of encoded domain knowledge — the machine-readable
// form of the expert-annotated design documents of §3.3/§3.4.
type Card struct {
	ID       string
	Topic    string   // e.g. "architecture", "analysis", "modification"
	Arch     string   // architecture it concerns, "" if general
	Keywords []string // retrieval hints beyond the body text
	Body     string
}

// Index is a tf-idf cosine retrieval index over cards: the mechanism that
// stands in for the fine-tuned model's parametric knowledge.
type Index struct {
	cards []Card
	df    map[string]int
	vecs  []map[string]float64
}

// NewIndex builds the index.
func NewIndex(cards []Card) *Index {
	ix := &Index{cards: cards, df: map[string]int{}}
	docs := make([]map[string]int, len(cards))
	for i, c := range cards {
		tf := map[string]int{}
		for _, w := range Words(c.Body) {
			tf[w]++
		}
		for _, w := range c.Keywords {
			for _, kw := range Words(w) {
				tf[kw] += 3 // keywords are strong signals
			}
		}
		docs[i] = tf
		for w := range tf {
			ix.df[w]++
		}
	}
	n := float64(len(cards))
	ix.vecs = make([]map[string]float64, len(cards))
	for i, tf := range docs {
		vec := map[string]float64{}
		norm := 0.0
		for w, c := range tf {
			idf := math.Log(1 + n/float64(ix.df[w]))
			v := (1 + math.Log(float64(c))) * idf
			vec[w] = v
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for w := range vec {
				vec[w] /= norm
			}
		}
		ix.vecs[i] = vec
	}
	return ix
}

// Len returns the number of indexed cards.
func (ix *Index) Len() int { return len(ix.cards) }

// Hit is one retrieval result.
type Hit struct {
	Card  Card
	Score float64
}

// Search returns the top-k cards for a query, sorted by descending score
// (ties broken by card ID for determinism).
func (ix *Index) Search(query string, k int) []Hit {
	qtf := map[string]int{}
	for _, w := range Words(query) {
		qtf[w]++
	}
	n := float64(len(ix.cards))
	qvec := map[string]float64{}
	qnorm := 0.0
	for w, c := range qtf {
		df := ix.df[w]
		if df == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(df))
		v := (1 + math.Log(float64(c))) * idf
		qvec[w] = v
		qnorm += v * v
	}
	qnorm = math.Sqrt(qnorm)
	if qnorm == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(ix.cards))
	for i, vec := range ix.vecs {
		dot := 0.0
		for w, qv := range qvec {
			dot += qv * vec[w]
		}
		score := dot / qnorm
		if score > 0 {
			hits = append(hits, Hit{Card: ix.cards[i], Score: score})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Card.ID < hits[b].Card.ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchTopic restricts retrieval to cards of one topic.
func (ix *Index) SearchTopic(query, topic string, k int) []Hit {
	all := ix.Search(query, 0)
	out := all[:0]
	for _, h := range all {
		if h.Card.Topic == topic {
			out = append(out, h)
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
