// Package llm is the language-model layer of the reproduction. The paper
// fine-tunes Llama2-7b into the Artisan-LLM on 8×A100 GPUs; that is not
// reproducible in a stdlib-only Go repository (repro band note: "lacks ML
// training tooling"), so this package builds the closest synthetic
// equivalent that exercises the same code paths:
//
//   - a deterministic word-piece Tokenizer used for the dataset token
//     accounting of Table 1;
//   - a real (small) bigram language model fitted during the simulated
//     DAPT/SFT training pipeline, giving honest perplexity curves;
//   - a tf-idf retrieval index over domain knowledge cards — the encoded
//     human expertise of §3.3 — behind the Model interface an LLM server
//     would expose;
//   - three Model implementations: the trained DomainModel (Artisan-LLM),
//     and GPT4Model/Llama2Model reproducing the documented failure modes
//     of the off-the-shelf baselines (Fig. 7).
package llm

import (
	"strings"
	"unicode"
)

// Tokenizer is a deterministic word-piece tokenizer: text is lowercased,
// split at letter/digit/symbol boundaries, and long words are broken into
// pieces of at most maxPiece runes (continuation pieces carry a "##"
// prefix, BERT-style). It approximates the subword statistics of a real
// LLM tokenizer closely enough for dataset accounting.
type Tokenizer struct {
	maxPiece int
}

// NewTokenizer returns the standard tokenizer (4-rune pieces).
func NewTokenizer() *Tokenizer { return &Tokenizer{maxPiece: 4} }

// Tokenize splits text into word pieces.
func (t *Tokenizer) Tokenize(text string) []string {
	var toks []string
	var word []rune
	flush := func() {
		if len(word) == 0 {
			return
		}
		for i := 0; i < len(word); i += t.maxPiece {
			end := i + t.maxPiece
			if end > len(word) {
				end = len(word)
			}
			piece := string(word[i:end])
			if i > 0 {
				piece = "##" + piece
			}
			toks = append(toks, piece)
		}
		word = word[:0]
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			word = append(word, r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			toks = append(toks, string(r))
		}
	}
	flush()
	return toks
}

// Count returns the token count of text.
func (t *Tokenizer) Count(text string) int { return len(t.Tokenize(text)) }

// Words splits text into plain lowercase words (no sub-word pieces, no
// punctuation) — the unit used by the retrieval index.
func Words(text string) []string {
	var words []string
	var cur []rune
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur = append(cur, r)
			continue
		}
		if len(cur) > 0 {
			words = append(words, string(cur))
			cur = nil
		}
	}
	if len(cur) > 0 {
		words = append(words, string(cur))
	}
	return words
}
