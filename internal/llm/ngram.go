package llm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Bigram is a small add-k–smoothed bigram language model over word-piece
// tokens. It is the honest statistical core of the simulated training
// pipeline: perplexity on held-out text really falls as more domain data
// is consumed, which produces the DAPT/SFT loss curves.
type Bigram struct {
	tok   *Tokenizer
	vocab map[string]int
	uni   map[string]int
	bi    map[[2]string]int
	total int
	addK  float64
}

// NewBigram returns an empty model.
func NewBigram() *Bigram {
	return &Bigram{
		tok:   NewTokenizer(),
		vocab: map[string]int{},
		uni:   map[string]int{},
		bi:    map[[2]string]int{},
		addK:  0.05,
	}
}

const bos = "<s>"

// Observe updates the model with one document.
func (m *Bigram) Observe(text string) {
	toks := m.tok.Tokenize(text)
	prev := bos
	for _, t := range toks {
		m.vocab[t]++
		m.uni[t]++
		m.bi[[2]string{prev, t}]++
		m.total++
		prev = t
	}
}

// VocabSize returns the number of distinct tokens seen.
func (m *Bigram) VocabSize() int { return len(m.vocab) }

// Tokens returns the total number of tokens observed.
func (m *Bigram) Tokens() int { return m.total }

// logProb returns log P(tok | prev) with add-k smoothing.
func (m *Bigram) logProb(prev, tok string) float64 {
	v := float64(len(m.vocab) + 1)
	num := float64(m.bi[[2]string{prev, tok}]) + m.addK
	den := float64(m.uni[prev]) + m.addK*v
	if prev == bos {
		den = float64(m.bosCount()) + m.addK*v
	}
	return math.Log(num / den)
}

func (m *Bigram) bosCount() int {
	// each Observe starts one sentence; approximate by total documents
	// seen via bigrams from <s>.
	c := 0
	for k, n := range m.bi {
		if k[0] == bos {
			c += n
		}
	}
	return c
}

// Perplexity evaluates the model on held-out text. An untrained model
// returns +Inf.
func (m *Bigram) Perplexity(text string) float64 {
	if m.total == 0 {
		return math.Inf(1)
	}
	toks := m.tok.Tokenize(text)
	if len(toks) == 0 {
		return math.NaN()
	}
	ll := 0.0
	prev := bos
	for _, t := range toks {
		ll += m.logProb(prev, t)
		prev = t
	}
	return math.Exp(-ll / float64(len(toks)))
}

// CrossEntropy returns the mean negative log-likelihood in nats/token.
func (m *Bigram) CrossEntropy(text string) float64 {
	p := m.Perplexity(text)
	if math.IsInf(p, 1) {
		return math.Inf(1)
	}
	return math.Log(p)
}

// String summarises the model.
func (m *Bigram) String() string {
	return fmt.Sprintf("bigram LM: %d tokens, vocab %d", m.total, len(m.vocab))
}

// Sample generates n tokens from the model starting after prefix, using
// temperature-scaled sampling over the bigram successors. It is the
// generative face of the fitted LM — useful for inspecting what the
// training corpus taught it.
func (m *Bigram) Sample(prefix string, n int, temperature float64, rng *rand.Rand) string {
	if m.total == 0 || n <= 0 {
		return ""
	}
	if temperature <= 0 {
		temperature = 1e-3
	}
	toks := m.tok.Tokenize(prefix)
	prev := bos
	if len(toks) > 0 {
		prev = toks[len(toks)-1]
	}
	// successor table (built lazily per call; fine at this scale)
	succ := map[string][]string{}
	for k := range m.bi {
		succ[k[0]] = append(succ[k[0]], k[1])
	}
	for _, ss := range succ {
		sort.Strings(ss)
	}
	var out []string
	for i := 0; i < n; i++ {
		cands := succ[prev]
		if len(cands) == 0 {
			break
		}
		// temperature-scaled counts
		weights := make([]float64, len(cands))
		sum := 0.0
		for j, c := range cands {
			w := math.Pow(float64(m.bi[[2]string{prev, c}]), 1/temperature)
			weights[j] = w
			sum += w
		}
		r := rng.Float64() * sum
		pick := cands[len(cands)-1]
		for j, w := range weights {
			r -= w
			if r <= 0 {
				pick = cands[j]
				break
			}
		}
		out = append(out, pick)
		prev = pick
	}
	return strings.Join(out, " ")
}
