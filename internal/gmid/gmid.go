// Package gmid implements the gm/Id transistor-sizing methodology
// (Jespers [8]; the open-source scripts of Lu et al. [11] the paper uses)
// on an EKV-style analytic device model: it inverts transconductance
// efficiency to an inversion coefficient, sizes W/L, and lowers a
// behavioral three-stage topology to a transistor-level netlist — the
// final Artisan workflow stage (Fig. 2, "gm/Id mapping"; Fig. 6(d)).
//
// The behavioral MNA simulator remains the performance-verification
// engine, exactly as the paper verifies at behavioral level and maps to
// transistors afterwards.
package gmid

import (
	"fmt"
	"math"

	"artisan/internal/units"
)

// Tech holds the technology constants of the EKV-style model.
type Tech struct {
	Name    string
	MuCoxN  float64 // NMOS process transconductance, A/V²
	MuCoxP  float64 // PMOS process transconductance, A/V²
	N       float64 // subthreshold slope factor
	Ut      float64 // thermal voltage, V
	VTN     float64 // NMOS threshold, V
	VTP     float64 // |PMOS threshold|, V
	LMin    float64 // minimum channel length, m
	LAnalog float64 // default analog channel length, m
	WMin    float64 // minimum width, m
	WMax    float64 // maximum sensible width, m
}

// Default180nm models a mature 180 nm-class analog process (the
// 1.8 V supply of §4.1.3 matches this node).
func Default180nm() Tech {
	return Tech{
		Name:   "generic-180nm",
		MuCoxN: 300e-6, MuCoxP: 80e-6,
		N: 1.3, Ut: 0.0258,
		VTN: 0.45, VTP: 0.45,
		LMin: 0.18e-6, LAnalog: 0.5e-6,
		WMin: 0.3e-6, WMax: 5e-3,
	}
}

// Corners returns the process corners of the technology: the typical
// card first, then the four classic skew corners. Fast devices carry
// ±20% stronger µCox and 10% lower thresholds; slow devices the
// opposite. The mixed corners (FS/SF) skew NMOS and PMOS in opposite
// directions, which is what stresses a white-box seed the most — the
// analytic gm split between N and P devices is no longer symmetric.
func Corners() []Tech {
	tt := Default180nm()
	tt.Name = "generic-180nm-tt"
	skew := func(name string, nFast, pFast bool) Tech {
		c := Default180nm()
		c.Name = "generic-180nm-" + name
		if nFast {
			c.MuCoxN *= 1.2
			c.VTN *= 0.9
		} else {
			c.MuCoxN *= 0.8
			c.VTN *= 1.1
		}
		if pFast {
			c.MuCoxP *= 1.2
			c.VTP *= 0.9
		} else {
			c.MuCoxP *= 0.8
			c.VTP *= 1.1
		}
		return c
	}
	return []Tech{
		tt,
		skew("ff", true, true),
		skew("ss", false, false),
		skew("fs", true, false),
		skew("sf", false, true),
	}
}

// MaxGmID returns the weak-inversion ceiling of gm/Id = 1/(n·Ut).
func (t Tech) MaxGmID() float64 { return 1 / (t.N * t.Ut) }

// GmIDFromIC evaluates the EKV interpolation
// gm/Id = 1 / (n·Ut·(0.5 + sqrt(0.25 + IC))).
func (t Tech) GmIDFromIC(ic float64) float64 {
	return 1 / (t.N * t.Ut * (0.5 + math.Sqrt(0.25+ic)))
}

// ICFromGmID inverts GmIDFromIC. gmid must be positive and below the
// weak-inversion ceiling.
func (t Tech) ICFromGmID(gmid float64) (float64, error) {
	if gmid <= 0 {
		return 0, fmt.Errorf("gmid: non-positive gm/Id %g", gmid)
	}
	if gmid >= t.MaxGmID() {
		return 0, fmt.Errorf("gmid: gm/Id %g exceeds weak-inversion limit %.1f", gmid, t.MaxGmID())
	}
	r := 1/(gmid*t.N*t.Ut) - 0.5 // = sqrt(0.25+IC)
	return r*r - 0.25, nil
}

// ISpecSq returns the specific current per square, 2·n·µCox·Ut².
func (t Tech) ISpecSq(pmos bool) float64 {
	mu := t.MuCoxN
	if pmos {
		mu = t.MuCoxP
	}
	return 2 * t.N * mu * t.Ut * t.Ut
}

// IDoverW returns the current density Id/W (A/m) of a device at
// inversion coefficient ic and channel length l — the quantity a gm/Id
// lookup table is indexed by. A non-positive l selects the analog
// default length.
func (t Tech) IDoverW(ic, l float64, pmos bool) float64 {
	if l <= 0 {
		l = t.LAnalog
	}
	return ic * t.ISpecSq(pmos) / l
}

// ICFromIDoverW inverts IDoverW: given a current density it recovers the
// inversion coefficient, completing the gm/Id → ID/W → gm/Id round trip
// of the table-based methodology.
func (t Tech) ICFromIDoverW(idw, l float64, pmos bool) (float64, error) {
	if idw <= 0 {
		return 0, fmt.Errorf("gmid: non-positive current density %g", idw)
	}
	if l <= 0 {
		l = t.LAnalog
	}
	return idw * l / t.ISpecSq(pmos), nil
}

// Vov returns the EKV effective overdrive for an inversion coefficient.
func (t Tech) Vov(ic float64) float64 {
	return 2 * t.N * t.Ut * math.Log(math.Exp(math.Sqrt(ic))-1+1e-12)
}

// Region classifies the operating region by inversion coefficient.
func Region(ic float64) string {
	switch {
	case ic < 0.1:
		return "weak"
	case ic <= 10:
		return "moderate"
	default:
		return "strong"
	}
}

// Device is one sized transistor.
type Device struct {
	Name   string
	PMOS   bool
	W, L   float64 // m
	Id     float64 // A
	Gm     float64 // S
	GmID   float64 // S/A
	IC     float64
	VGS    float64 // V (magnitude)
	Region string
	Role   string // human-readable function in the opamp
}

// Line renders the device as a SPICE MOS card with sizing comments.
func (d Device) Line(nodes string) string {
	model := "nch"
	if d.PMOS {
		model = "pch"
	}
	return fmt.Sprintf("%s %s %s W=%s L=%s * Id=%sA gm=%sS gm/Id=%.1f IC=%.2g (%s) %s",
		d.Name, nodes, model,
		units.FormatUnit(d.W, "m"), units.FormatUnit(d.L, "m"),
		units.Format(d.Id), units.Format(d.Gm), d.GmID, d.IC, d.Region, d.Role)
}

// Size computes a transistor realizing the given transconductance at the
// chosen efficiency.
func (t Tech) Size(name string, gm, gmid, l float64, pmos bool, role string) (Device, error) {
	if gm <= 0 {
		return Device{}, fmt.Errorf("gmid: non-positive gm %g for %s", gm, name)
	}
	if l <= 0 {
		l = t.LAnalog
	}
	if l < t.LMin {
		return Device{}, fmt.Errorf("gmid: channel length %g below minimum %g", l, t.LMin)
	}
	ic, err := t.ICFromGmID(gmid)
	if err != nil {
		return Device{}, fmt.Errorf("gmid: sizing %s: %w", name, err)
	}
	id := gm / gmid
	wOverL := id / (ic * t.ISpecSq(pmos))
	w := wOverL * l
	if w < t.WMin {
		w = t.WMin
	}
	if w > t.WMax {
		return Device{}, fmt.Errorf("gmid: %s needs W=%g beyond %g; raise gm/Id or split fingers", name, w, t.WMax)
	}
	vt := t.VTN
	if pmos {
		vt = t.VTP
	}
	return Device{
		Name: name, PMOS: pmos, W: w, L: l,
		Id: id, Gm: gm, GmID: gmid, IC: ic,
		VGS: vt + t.Vov(ic), Region: Region(ic), Role: role,
	}, nil
}
