package gmid

import (
	"fmt"
	"strings"

	"artisan/internal/topology"
	"artisan/internal/units"
)

// StagePlan sets the per-role transconductance efficiencies used by the
// mapping. Input pairs run closer to weak inversion (better matching and
// efficiency); output drivers run in moderate inversion for speed.
type StagePlan struct {
	InputGmID  float64
	MirrorGmID float64
	CSGmID     float64
	AuxGmID    float64
}

// DefaultStagePlan mirrors the power model of internal/measure.
func DefaultStagePlan() StagePlan {
	return StagePlan{InputGmID: 20, MirrorGmID: 12, CSGmID: 16, AuxGmID: 16}
}

// Netlist is the transistor-level result of mapping a topology: sized
// devices, passives carried over, and bias currents.
type Netlist struct {
	Title    string
	VDD      float64
	Devices  []Device
	Passives []string // rendered passive lines
	ITotal   float64  // A
}

// String renders the SPICE-style transistor netlist (Fig. 6(d) analogue).
func (n *Netlist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s (transistor level via gm/Id mapping)\n", n.Title)
	fmt.Fprintf(&b, "* VDD = %gV, total bias current = %sA\n", n.VDD, units.Format(n.ITotal))
	for _, d := range n.Devices {
		b.WriteString(d.Line(nodesFor(d)))
		b.WriteByte('\n')
	}
	for _, p := range n.Passives {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	b.WriteString(".end\n")
	return b.String()
}

// nodesFor synthesises the connection string for a device from its role.
// The node naming follows the canonical three-stage schematic: the mapping
// is structural documentation, not a simulation input (the behavioral
// netlist is what gets simulated, as in the paper).
func nodesFor(d Device) string {
	switch {
	case strings.Contains(d.Role, "input pair"):
		if strings.HasSuffix(d.Name, "a") {
			return "n1m inp tail 0"
		}
		return "n1 inn tail 0"
	case strings.Contains(d.Role, "mirror"):
		if strings.HasSuffix(d.Name, "a") {
			return "n1m n1m vdd vdd"
		}
		return "n1 n1m vdd vdd"
	case strings.Contains(d.Role, "tail"):
		return "tail vb1 0 0"
	case strings.Contains(d.Role, "second stage"):
		return "n2 n1 vdd vdd"
	case strings.Contains(d.Role, "third stage"):
		return "out n2 0 0"
	case strings.Contains(d.Role, "load"):
		return "n2 vb2 0 0"
	case strings.Contains(d.Role, "output load"):
		return "out vb3 vdd vdd"
	default:
		return "x" + d.Name + " 0 0 0"
	}
}

// Map lowers a behavioral topology to transistor level: the input stage
// becomes a current-mirror differential amplifier, the remaining skeleton
// stages become common-source amplifiers (paper §2.2), and every auxiliary
// transconductor in the compensation network becomes a sized device.
func Map(t Tech, plan StagePlan, topo *topology.Topology, vdd float64) (*Netlist, error) {
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("gmid: %w", err)
	}
	out := &Netlist{Title: topo.Name, VDD: vdd}

	add := func(d Device, err error) error {
		if err != nil {
			return err
		}
		out.Devices = append(out.Devices, d)
		out.ITotal += d.Id
		return nil
	}

	// Input stage: differential pair (two devices at gm1 each, sharing a
	// tail of 2·Id1) + current-mirror load at Id1 each.
	gm1 := topo.Stages[0].Gm
	da, err := t.Size("M1a", gm1, plan.InputGmID, 0, false, "input pair (+)")
	if err := add(da, err); err != nil {
		return nil, err
	}
	db, err := t.Size("M1b", gm1, plan.InputGmID, 0, false, "input pair (-)")
	if err := add(db, err); err != nil {
		return nil, err
	}
	id1 := gm1 / plan.InputGmID
	mirGm := id1 * plan.MirrorGmID
	ma, err := t.Size("M2a", mirGm, plan.MirrorGmID, 0, true, "mirror load (diode)")
	if err := add(ma, err); err != nil {
		return nil, err
	}
	mb, err := t.Size("M2b", mirGm, plan.MirrorGmID, 0, true, "mirror load")
	if err := add(mb, err); err != nil {
		return nil, err
	}
	tailGm := 2 * id1 * plan.MirrorGmID
	mt, err := t.Size("M0", tailGm, plan.MirrorGmID, 0, false, "tail source")
	// The tail reuses the pair current; don't double count.
	if err != nil {
		return nil, err
	}
	mt.Id = 0
	out.Devices = append(out.Devices, mt)

	if topo.TwoStage {
		// Two-stage skeleton: one common-source output stage.
		gm2 := topo.Stages[1].Gm
		m3, err := t.Size("M3", gm2, plan.CSGmID, 0, false, "third stage CS (output)")
		if err := add(m3, err); err != nil {
			return nil, err
		}
		l3, err := t.Size("M3L", gm2*0.8, plan.CSGmID, 0, true, "output load source")
		if err != nil {
			return nil, err
		}
		l3.Id = 0
		out.Devices = append(out.Devices, l3)
	} else {
		// Second stage (common source, PMOS) with NMOS current load;
		// third stage (common source, NMOS) with PMOS current load.
		gm2 := topo.Stages[1].Gm
		m3, err := t.Size("M3", gm2, plan.CSGmID, 0, true, "second stage CS")
		if err := add(m3, err); err != nil {
			return nil, err
		}
		l3, err := t.Size("M3L", gm2*0.8, plan.CSGmID, 0, false, "second stage load")
		if err != nil {
			return nil, err
		}
		l3.Id = 0
		out.Devices = append(out.Devices, l3)

		gm3 := topo.Stages[2].Gm
		m4, err := t.Size("M4", gm3, plan.CSGmID, 0, false, "third stage CS")
		if err := add(m4, err); err != nil {
			return nil, err
		}
		l4, err := t.Size("M4L", gm3*0.8, plan.CSGmID, 0, true, "output load source")
		if err != nil {
			return nil, err
		}
		l4.Id = 0
		out.Devices = append(out.Devices, l4)
	}

	// Auxiliary transconductors and passives from the connections.
	auxIdx := 5
	for i, c := range topo.Conns {
		if c.Type == ConnNoneAlias {
			continue
		}
		if c.Type.HasGm() {
			name := fmt.Sprintf("M%d", auxIdx)
			auxIdx++
			role := fmt.Sprintf("aux %s at %s", c.Type, c.Pos)
			d, err := t.Size(name, c.Gm, plan.AuxGmID, 0, false, role)
			if err := add(d, err); err != nil {
				return nil, err
			}
		}
		if c.Type.HasC() {
			out.Passives = append(out.Passives,
				fmt.Sprintf("Cc%d %s %s %s", i, c.Pos.From, c.Pos.To, units.Format(c.C)))
		}
		if c.Type.HasR() {
			out.Passives = append(out.Passives,
				fmt.Sprintf("Rc%d %s %s %s", i, c.Pos.From, c.Pos.To, units.Format(c.R)))
		}
	}
	return out, nil
}

// ConnNoneAlias re-exports topology.ConnNone locally to keep the switch
// above readable without a second import alias.
const ConnNoneAlias = topology.ConnNone

// Power returns the mapped supply power estimate.
func (n *Netlist) Power() float64 { return n.VDD * n.ITotal }
