package gmid

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"artisan/internal/design"
	"artisan/internal/spec"
	"artisan/internal/units"
)

func TestGmIDInversionRoundTrip(t *testing.T) {
	tech := Default180nm()
	f := func(raw float64) bool {
		// gm/Id in (1, ceiling·0.98)
		g := 1 + math.Mod(math.Abs(raw), tech.MaxGmID()*0.98-1)
		ic, err := tech.ICFromGmID(g)
		if err != nil {
			return false
		}
		return units.ApproxEqual(tech.GmIDFromIC(ic), g, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestIDoverWRoundTrip checks the full table-methodology chain
// gm/Id → IC → ID/W → IC → gm/Id across all three inversion regions,
// for both device polarities, on every process corner.
func TestIDoverWRoundTrip(t *testing.T) {
	for _, tech := range Corners() {
		ranges := []struct {
			region   string
			lo, span float64 // gm/Id window, fraction of the ceiling
		}{
			// gm/Id near the ceiling ⇒ IC < 0.1 (weak); mid-range ⇒
			// moderate; low efficiency ⇒ IC > 10 (strong).
			{"weak", 0.93, 0.05},
			{"moderate", 0.35, 0.40},
			{"strong", 0.05, 0.15},
		}
		for _, r := range ranges {
			r := r
			f := func(raw float64, pmos bool) bool {
				frac := r.lo + math.Mod(math.Abs(raw), r.span)
				g := frac * tech.MaxGmID()
				ic, err := tech.ICFromGmID(g)
				if err != nil {
					return false
				}
				idw := tech.IDoverW(ic, 0, pmos)
				ic2, err := tech.ICFromIDoverW(idw, 0, pmos)
				if err != nil {
					return false
				}
				return units.ApproxEqual(tech.GmIDFromIC(ic2), g, 1e-9)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Errorf("%s %s: %v", tech.Name, r.region, err)
			}
		}
	}
}

func TestIDoverWRegions(t *testing.T) {
	tech := Default180nm()
	// Sanity-pin the region windows the round-trip test samples from.
	for _, c := range []struct {
		frac   float64
		region string
	}{{0.95, "weak"}, {0.5, "moderate"}, {0.1, "strong"}} {
		ic, err := tech.ICFromGmID(c.frac * tech.MaxGmID())
		if err != nil {
			t.Fatal(err)
		}
		if Region(ic) != c.region {
			t.Errorf("gm/Id at %.0f%% of ceiling: region %s, want %s (IC=%g)",
				c.frac*100, Region(ic), c.region, ic)
		}
	}
}

func TestIDoverWErrors(t *testing.T) {
	tech := Default180nm()
	if _, err := tech.ICFromIDoverW(0, 0, false); err == nil {
		t.Error("zero current density accepted")
	}
	if _, err := tech.ICFromIDoverW(-1, 0, true); err == nil {
		t.Error("negative current density accepted")
	}
}

func TestCorners(t *testing.T) {
	cs := Corners()
	if len(cs) != 5 {
		t.Fatalf("corner count = %d, want 5", len(cs))
	}
	if cs[0].Name != "generic-180nm-tt" {
		t.Errorf("first corner = %s, want typical", cs[0].Name)
	}
	tt := Default180nm()
	if cs[0].MuCoxN != tt.MuCoxN || cs[0].VTN != tt.VTN {
		t.Error("typical corner should match Default180nm")
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Name] {
			t.Errorf("duplicate corner %s", c.Name)
		}
		seen[c.Name] = true
		if c.MuCoxN <= 0 || c.MuCoxP <= 0 || c.VTN <= 0 || c.VTP <= 0 {
			t.Errorf("corner %s has non-physical constants", c.Name)
		}
	}
	// FF is faster than TT on both polarities, SS slower; FS/SF mixed.
	ff, ss := cs[1], cs[2]
	if ff.MuCoxN <= tt.MuCoxN || ff.VTN >= tt.VTN {
		t.Error("FF should have stronger NMOS")
	}
	if ss.MuCoxP >= tt.MuCoxP || ss.VTP <= tt.VTP {
		t.Error("SS should have weaker PMOS")
	}
	fs := cs[3]
	if fs.MuCoxN <= tt.MuCoxN || fs.MuCoxP >= tt.MuCoxP {
		t.Error("FS should skew N fast, P slow")
	}
}

func TestGmIDMonotone(t *testing.T) {
	tech := Default180nm()
	// gm/Id falls as IC rises (deeper inversion = less efficiency).
	prev := math.Inf(1)
	for ic := 0.01; ic < 1000; ic *= 3 {
		g := tech.GmIDFromIC(ic)
		if g >= prev {
			t.Fatalf("gm/Id not monotone at IC=%g", ic)
		}
		prev = g
	}
	if tech.MaxGmID() < 25 || tech.MaxGmID() > 35 {
		t.Errorf("weak-inversion ceiling = %g, want ≈ 29.8", tech.MaxGmID())
	}
}

func TestICFromGmIDErrors(t *testing.T) {
	tech := Default180nm()
	if _, err := tech.ICFromGmID(0); err == nil {
		t.Error("zero gm/Id accepted")
	}
	if _, err := tech.ICFromGmID(tech.MaxGmID() + 1); err == nil {
		t.Error("above-ceiling gm/Id accepted")
	}
}

func TestRegionClassification(t *testing.T) {
	if Region(0.01) != "weak" || Region(1) != "moderate" || Region(100) != "strong" {
		t.Error("region boundaries wrong")
	}
}

func TestSize(t *testing.T) {
	tech := Default180nm()
	d, err := tech.Size("M1", 251.3e-6, 16, 0, false, "third stage CS")
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(d.Id, 251.3e-6/16, 1e-9) {
		t.Errorf("Id = %g", d.Id)
	}
	if d.L != tech.LAnalog {
		t.Errorf("default L = %g, want %g", d.L, tech.LAnalog)
	}
	if d.W <= 0 || d.W < tech.WMin {
		t.Errorf("W = %g", d.W)
	}
	if d.Region != "moderate" {
		t.Errorf("gm/Id=16 should be moderate inversion, got %s (IC=%g)", d.Region, d.IC)
	}
	if d.VGS <= tech.VTN {
		t.Errorf("VGS = %g should exceed VT", d.VGS)
	}
	line := d.Line("out n2 0 0")
	for _, want := range []string{"M1", "nch", "W=", "gm/Id=16.0", "third stage"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line %q missing %q", line, want)
		}
	}
	// PMOS device is wider for the same operating point.
	dp, err := tech.Size("M2", 251.3e-6, 16, 0, true, "x")
	if err != nil {
		t.Fatal(err)
	}
	if dp.W <= d.W {
		t.Error("PMOS should be wider than NMOS at equal gm")
	}
}

func TestSizeErrors(t *testing.T) {
	tech := Default180nm()
	if _, err := tech.Size("M1", -1, 16, 0, false, ""); err == nil {
		t.Error("negative gm accepted")
	}
	if _, err := tech.Size("M1", 1e-3, 40, 0, false, ""); err == nil {
		t.Error("impossible gm/Id accepted")
	}
	if _, err := tech.Size("M1", 1e-3, 16, 0.1e-6, false, ""); err == nil {
		t.Error("sub-minimum L accepted")
	}
	// Absurd gm at high efficiency would need an enormous device.
	if _, err := tech.Size("M1", 10, 29, 0, false, ""); err == nil {
		t.Error("impossible width accepted")
	}
}

func TestMapNMC(t *testing.T) {
	g1, _ := spec.Group("G-1")
	r, err := design.Design("NMC", g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := Map(Default180nm(), DefaultStagePlan(), r.Topo, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	// Skeleton: 2 pair + 2 mirror + tail + 2 CS + 2 loads = 9 devices.
	if len(tn.Devices) != 9 {
		t.Errorf("device count = %d, want 9", len(tn.Devices))
	}
	// Both Miller caps must survive as passives.
	if len(tn.Passives) != 2 {
		t.Errorf("passives = %v, want the two Miller caps", tn.Passives)
	}
	// Mapped power should be in the same ballpark as the behavioral
	// power model (tens of µW for G-1).
	p := tn.Power()
	if p < 10e-6 || p > 120e-6 {
		t.Errorf("mapped power = %g, want tens of µW", p)
	}
	text := tn.String()
	for _, want := range []string{"M1a", "M1b", "M4", "Cc", "transistor level", ".end"} {
		if !strings.Contains(text, want) {
			t.Errorf("netlist missing %q", want)
		}
	}
}

func TestMapDFCFCIncludesAux(t *testing.T) {
	g5, _ := spec.Group("G-5")
	r, err := design.Design("DFCFC", g5, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := Map(Default180nm(), DefaultStagePlan(), r.Topo, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	aux := 0
	for _, d := range tn.Devices {
		if strings.Contains(d.Role, "aux") {
			aux++
		}
	}
	// DFCFC has gmf (in the parallel conn) and gm4 (DFC block).
	if aux != 2 {
		t.Errorf("aux transconductors = %d, want 2", aux)
	}
}

func TestMapRejectsInvalidTopology(t *testing.T) {
	g1, _ := spec.Group("G-1")
	r, err := design.Design("NMC", g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := r.Topo.Clone()
	bad.Stages[0].Gm = -1
	if _, err := Map(Default180nm(), DefaultStagePlan(), bad, 1.8); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestVovPositiveInStrongInversion(t *testing.T) {
	tech := Default180nm()
	if tech.Vov(25) <= 0 {
		t.Error("strong-inversion Vov should be positive")
	}
	if tech.Vov(0.01) >= 0 {
		t.Error("weak-inversion Vov should be negative (sub-VT)")
	}
}
