package telemetry

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRequestID(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	var seen string
	h := m.Middleware("GET /x", nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDOf(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}))

	// Inbound id is propagated and echoed.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "cafe1234")
	h.ServeHTTP(rec, req)
	if seen != "cafe1234" || rec.Header().Get(RequestIDHeader) != "cafe1234" {
		t.Errorf("inbound id not propagated: ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}

	// Absent id is generated, non-empty, echoed.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || seen == "cafe1234" || rec.Header().Get(RequestIDHeader) != seen {
		t.Errorf("generated id wrong: ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}
}

func TestMiddlewareMetricsAndLog(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := m.Middleware("GET /y", logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("hello"))
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/y", nil))
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		`artisan_http_requests_total{route="GET /y",code="200"} 3`,
		`artisan_http_request_duration_seconds_count{route="GET /y"} 3`,
		"artisan_http_in_flight_requests 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	logLine := logBuf.String()
	for _, want := range []string{"method=GET", "route=\"GET /y\"", "status=200", "bytes=5", "id="} {
		if !strings.Contains(logLine, want) {
			t.Errorf("access log missing %q: %s", want, logLine)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == "" || a == b {
		t.Errorf("ids not unique: %q %q", a, b)
	}
}

func TestDebugMuxServesPprofAndMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "d").Inc()
	mux := DebugMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "demo_total 1") {
		t.Errorf("debug /metrics: %d %s", rec.Code, rec.Body.String())
	}
}

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"artisan_process_goroutines", "artisan_process_uptime_seconds"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
}
