package telemetry

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// DebugMux builds the opt-in runtime-introspection mux served on a
// separate listener (-debug-addr): the full net/http/pprof suite plus,
// when reg is non-nil, a /metrics mirror so the debug port is
// self-sufficient. Serve it on a loopback or otherwise protected
// address — profiles expose internals.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}

// ServeDebug starts the debug mux on addr in a background goroutine and
// returns the server (for Shutdown). Listen errors surface on errc if
// non-nil.
func ServeDebug(addr string, reg *Registry, errc chan<- error) *http.Server {
	srv := &http.Server{Addr: addr, Handler: DebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		err := srv.ListenAndServe()
		if errc != nil {
			errc <- err
		}
	}()
	return srv
}

// RegisterRuntime registers process-level gauges (goroutines, heap
// bytes, GC cycles, uptime) on reg.
func RegisterRuntime(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("artisan_process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("artisan_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("artisan_process_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("artisan_process_uptime_seconds",
		"Seconds since the process registered its runtime metrics.",
		func() float64 { return time.Since(start).Seconds() })
}
