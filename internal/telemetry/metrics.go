package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// value is a float64 cell updated with atomic bit operations; the
// building block of counters and gauges.
type value struct{ bits atomic.Uint64 }

func (v *value) Load() float64 { return math.Float64frombits(v.bits.Load()) }
func (v *value) Store(f float64) {
	v.bits.Store(math.Float64bits(f))
}
func (v *value) Add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing metric.
type Counter struct{ v *value }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; negative deltas panic (counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("telemetry: counter add of negative delta %g", d))
	}
	c.v.Add(d)
}

// Value reads the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v *value }

// Set replaces the gauge value.
func (g *Gauge) Set(f float64) { g.v.Store(f) }

// Add shifts the gauge by d (negative deltas allowed).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return g.v.Load() }

// DefBuckets are the default latency buckets, in seconds (the classic
// Prometheus ladder: 5 ms … 10 s).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n buckets starting at start and growing by factor —
// a geometric ladder for quantities with a wide dynamic range.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	buckets []float64
	counts  []atomic.Uint64 // len(buckets)+1; last is +Inf
	sum     value
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i-1] < buckets[i]) {
			panic(fmt.Sprintf("telemetry: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	return &Histogram{
		buckets: append([]float64(nil), buckets...),
		counts:  make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0 — the idiomatic call
// for latency histograms: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly within the containing bucket (the same estimate
// Prometheus's histogram_quantile computes). Samples in the +Inf bucket
// clamp to the highest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		cum += float64(h.counts[i].Load())
		if cum >= rank {
			hi := h.buckets[i]
			lo := 0.0
			if i > 0 {
				lo = h.buckets[i-1]
			}
			inBucket := float64(h.counts[i].Load())
			if inBucket == 0 {
				return hi
			}
			frac := (rank - (cum - inBucket)) / inBucket
			return lo + frac*(hi-lo)
		}
	}
	return h.buckets[len(h.buckets)-1] // rank fell in +Inf
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil)
	s := f.get(nil, func() *series { return &series{val: &value{}} })
	return &Counter{v: s.val}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for externally maintained monotonic counts.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindCounter, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// LabeledCounterFunc is CounterFunc with one fixed label setting, so a
// family like artisan_resilience_events_total{event="retries"} can fold
// several external counters into one metric.
func (r *Registry) LabeledCounterFunc(name, help string, labels, values []string, fn func() float64) {
	f := r.lookup(name, help, kindCounter, labels, nil)
	f.get(values, func() *series { return &series{fn: fn} })
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil)
	s := f.get(nil, func() *series { return &series{val: &value{}} })
	return &Gauge{v: s.val}
}

// GaugeFunc registers a gauge read from fn at scrape time (queue depths,
// cache sizes, goroutine counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// LabeledGaugeFunc is GaugeFunc with one fixed label setting.
func (r *Registry) LabeledGaugeFunc(name, help string, labels, values []string, fn func() float64) {
	f := r.lookup(name, help, kindGauge, labels, nil)
	f.get(values, func() *series { return &series{fn: fn} })
}

// Histogram registers (or finds) an unlabeled histogram. Nil buckets
// take DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram, nil, buckets)
	s := f.get(nil, func() *series { return &series{hist: newHistogram(f.buckets)} })
	return s.hist
}

// CounterVec is a counter family with labels; With addresses one series.
type CounterVec struct{ fam *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (created on first
// use); arity mismatches panic.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.fam.get(values, func() *series { return &series{val: &value{}} })
	return &Counter{v: s.val}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	s := v.fam.get(values, func() *series { return &series{val: &value{}} })
	return &Gauge{v: s.val}
}

// HistogramVec is a histogram family with labels; all series share the
// family's buckets.
type HistogramVec struct{ fam *family }

// HistogramVec registers a labeled histogram family. Nil buckets take
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.lookup(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.fam.get(values, func() *series { return &series{hist: newHistogram(v.fam.buckets)} })
	return s.hist
}
