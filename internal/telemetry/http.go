package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the correlation header accepted on requests and
// echoed on every response.
const RequestIDHeader = "X-Request-ID"

// reqSeq backs the fallback request-id generator when crypto/rand is
// unavailable (it essentially never is; the counter keeps ids unique
// anyway).
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDOf returns the context's request id, or "".
func RequestIDOf(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// HTTPMetrics instruments HTTP routes: a request counter by route and
// status code, a latency histogram by route, and an in-flight gauge.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP instrument families on reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec("artisan_http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		latency: reg.HistogramVec("artisan_http_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			DefBuckets, "route"),
		inflight: reg.Gauge("artisan_http_in_flight_requests",
			"HTTP requests currently being served."),
	}
}

// statusWriter records the status code and byte count of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming responses (the
// NDJSON batch endpoints) can push each line to the client as it is
// produced instead of buffering the whole stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with the full request pipeline: X-Request-ID
// propagation (accept the inbound header or generate one, echo it on the
// response, carry it in the context), per-route latency and request
// counting, and one structured access-log line per request when logger
// is non-nil. route is the label value — typically the mux pattern the
// handler was registered under.
func (m *HTTPMetrics) Middleware(route string, logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		sw := &statusWriter{ResponseWriter: w}
		m.inflight.Inc()
		next.ServeHTTP(sw, r)
		m.inflight.Dec()

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		m.requests.With(route, fmt.Sprintf("%d", sw.status)).Inc()
		m.latency.With(route).Observe(elapsed.Seconds())
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "http",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("elapsed", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
