// Package telemetry is the observability layer of the Artisan service —
// the answer to "where does a design request spend its time, and how is
// the fleet doing right now". It is stdlib-only and has three parts:
//
//   - Metrics: a concurrent Registry of counters, gauges, and
//     fixed-bucket histograms, with optional labels per instrument
//     (e.g. artisan_designs_total{method,group,outcome}) and a
//     Prometheus-text-format exposition handler for GET /metrics.
//     Callback instruments (CounterFunc/GaugeFunc) fold externally
//     maintained state — the resilience counters, the jobs cache, the
//     queue depth — into the same registry, so /stats and /metrics
//     report from one source of truth.
//   - Tracing: lightweight spans propagated through context
//     (StartSpan → child spans), collected per root into a Tracer's
//     ring buffer of recent traces. The design pipeline threads spans
//     from core.Design down through the agent session, tool
//     invocations, MNA solves, and BO sizing iterations; the server
//     serves recent traces on GET /traces and the experiment harness
//     aggregates span durations into a measured per-phase breakdown.
//   - Runtime introspection: an opt-in net/http/pprof debug mux,
//     X-Request-ID propagation, structured access logging, and
//     per-route latency histograms via HTTP middleware.
//
// Instruments are cheap (an atomic add on the hot path) and all types
// are safe for concurrent use.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// metricKind discriminates the instrument families of a Registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label schema; it owns
// the label-value-addressed series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) time series. Exactly one backing
// is set: a value cell, a read callback, or a histogram.
type series struct {
	labelValues []string
	val         *value
	fn          func() float64
	hist        *Histogram
}

// seriesKey joins label values unambiguously (label values may contain
// any byte except 0xff, which never appears in UTF-8 text).
func seriesKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	k := values[0]
	for _, v := range values[1:] {
		k += "\xff" + v
	}
	return k
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabel reports whether name is a legal label name.
func validLabel(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// lookup returns the family with the given name, creating it on first
// registration. A name re-registered with a different kind or label
// schema panics: that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %q re-registered as %v, was %v", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %q re-registered with %d labels, was %d", name, len(labels), len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// get returns the series for the label values, creating it with mk on
// first use. Arity mismatches panic (a malformed call site).
func (f *family) get(values []string, mk func() *series) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labelValues = append([]string(nil), values...)
	f.series[key] = s
	return s
}

// Cardinality reports the number of live series of the named family
// (0 when the family is unknown).
func (r *Registry) Cardinality(name string) int {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.series)
}

// snapshot returns the families sorted by name and, for each, its series
// sorted by label key — the deterministic iteration order of the text
// exposition.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries copies the family's series sorted by label-value key.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.Unlock()
	return out
}
