package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// ctxKey namespaces the package's context values.
type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
	requestIDKey
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace tree. Spans are created with
// StartSpan and closed with End; children attach themselves to the span
// carried by their context. All methods are nil-receiver safe, so call
// sites need no "is tracing on" conditionals — without a Tracer in the
// context, StartSpan returns a nil span and the whole path is free.
type Span struct {
	name   string
	start  time.Time
	tracer *Tracer
	root   bool

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// WithTracer attaches a Tracer to the context; every root span started
// under it records its finished trace into the tracer's ring buffer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerOf returns the context's Tracer, or nil.
func TracerOf(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanOf returns the context's active span, or nil.
func SpanOf(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan begins a span named name. If the context already carries a
// span, the new span becomes its child; otherwise it becomes a root
// recorded by the context's Tracer when ended. Without a tracer the
// returned span is nil (and safe to use).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	now := time.Now()
	if parent := SpanOf(ctx); parent != nil {
		s := &Span{name: name, start: now, tracer: parent.tracer}
		parent.addChild(s)
		return context.WithValue(ctx, spanKey, s), s
	}
	t := TracerOf(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{name: name, start: now, tracer: t, root: true}
	return context.WithValue(ctx, spanKey, s), s
}

// End closes the span (idempotent); ending a root records its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	root := s.root
	s.mu.Unlock()
	if root && s.tracer != nil {
		s.tracer.record(s)
	}
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Name returns the span name; nil-safe.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end−start, or the time elapsed so far for a span
// still in flight.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Attrs copies the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children copies the span's child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Tree renders the span and its descendants as an indented tree with
// per-span durations — the -trace output of cmd/artisan.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	writeTree(&b, s, 0)
	return b.String()
}

func writeTree(b *strings.Builder, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", s.Name(), s.Duration().Round(time.Microsecond))
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range s.Children() {
		writeTree(b, c, depth+1)
	}
}

// SpanJSON is the wire form of a span tree (GET /traces).
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	Duration   string            `json:"duration"`
	DurationNS int64             `json:"durationNs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form.
func (s *Span) JSON() SpanJSON {
	d := s.Duration()
	out := SpanJSON{
		Name: s.Name(), Start: s.Start(),
		Duration: d.String(), DurationNS: d.Nanoseconds(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// Tracer collects finished root spans into a bounded ring of recent
// traces. The zero value is not usable; call NewTracer.
type Tracer struct {
	mu    sync.Mutex
	cap   int
	roots []*Span
	total uint64
}

// NewTracer returns a tracer retaining the most recent capacity traces
// (minimum 1; 0 takes the default of 16).
func NewTracer(capacity int) *Tracer {
	if capacity == 0 {
		capacity = 16
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity}
}

func (t *Tracer) record(root *Span) {
	t.mu.Lock()
	t.total++
	t.roots = append(t.roots, root)
	if len(t.roots) > t.cap {
		t.roots = append(t.roots[:0], t.roots[len(t.roots)-t.cap:]...)
	}
	t.mu.Unlock()
}

// Traces returns the retained traces, most recent first.
func (t *Tracer) Traces() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	for i, r := range t.roots {
		out[len(t.roots)-1-i] = r
	}
	return out
}

// Total reports how many traces were recorded over the tracer's
// lifetime, including those already evicted from the ring.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// SpanStat aggregates the spans sharing one name.
type SpanStat struct {
	Count int
	Total time.Duration
}

// SumByName walks the trace trees and sums durations per span name —
// the raw material of the experiment harness's measured per-phase
// breakdown.
func SumByName(roots []*Span) map[string]SpanStat {
	out := make(map[string]SpanStat)
	var walk func(s *Span)
	walk = func(s *Span) {
		st := out[s.Name()]
		st.Count++
		st.Total += s.Duration()
		out[s.Name()] = st
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range roots {
		if r != nil {
			walk(r)
		}
	}
	return out
}
