package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition: families sorted
// by name, HELP/TYPE headers, escaped label values, cumulative
// histogram buckets with _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests served.").Add(3)
	g := r.Gauge("demo_queue_depth", "Jobs waiting.")
	g.Set(2)
	r.GaugeFunc("demo_workers", "Pool size.", func() float64 { return 4 })
	v := r.CounterVec("demo_designs_total", "Designs by outcome.", "group", "outcome")
	v.With("G-1", "success").Add(2)
	v.With("G-2", `quo"te\back`).Inc()
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP demo_designs_total Designs by outcome.
# TYPE demo_designs_total counter
demo_designs_total{group="G-1",outcome="success"} 2
demo_designs_total{group="G-2",outcome="quo\"te\\back"} 1
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 2
demo_latency_seconds_bucket{le="0.5"} 3
demo_latency_seconds_bucket{le="+Inf"} 4
demo_latency_seconds_sum 7.4
demo_latency_seconds_count 4
# HELP demo_queue_depth Jobs waiting.
# TYPE demo_queue_depth gauge
demo_queue_depth 2
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total 3
# HELP demo_workers Pool size.
# TYPE demo_workers gauge
demo_workers 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "d").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "demo_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// Callback instruments are read at scrape time, so successive scrapes
// see the live value.
func TestFuncInstrumentsAreLive(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.CounterFunc("demo_live_total", "live", func() float64 { return n })
	scrape := func() string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if !strings.Contains(scrape(), "demo_live_total 0") {
		t.Error("first scrape should read 0")
	}
	n = 42
	if !strings.Contains(scrape(), "demo_live_total 42") {
		t.Error("second scrape should read 42")
	}
}
