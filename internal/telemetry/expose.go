package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series by
// label values, histograms as cumulative _bucket/_sum/_count series.
// Callback instruments are evaluated at write time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

// Handler serves the registry as GET /metrics content.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	switch f.kind {
	case kindCounter, kindGauge:
		v := 0.0
		if s.fn != nil {
			v = s.fn()
		} else {
			v = s.val.Load()
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatFloat(v))
	case kindHistogram:
		h := s.hist
		var cum uint64
		for i, ub := range h.buckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "le", formatFloat(ub)), cum)
		}
		cum += h.counts[len(h.buckets)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, s.labelValues, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			labelString(f.labels, s.labelValues, "", ""), formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			labelString(f.labels, s.labelValues, "", ""), h.Count())
	}
}

// labelString renders {k1="v1",k2="v2"} with an optional extra pair (the
// histogram le label); empty when there are no labels at all.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
