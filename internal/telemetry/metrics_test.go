package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	if r.Counter("test_ops_total", "ops") != c {
		// same backing cell: the re-registration increments the original
		r.Counter("test_ops_total", "ops").Inc()
		if c.Value() != 4.5 {
			t.Errorf("re-registered counter not shared: %g", c.Value())
		}
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("negative counter add did not panic")
		}
	}()
	c.Add(-1)
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "lat", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.9, 4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.35) > 1e-12 {
		t.Errorf("sum = %g, want 5.35", got)
	}
	// Bucket occupancy: ≤0.1 gets 0.05 and 0.1 (upper bounds are
	// inclusive), ≤0.5 gets 0.3, ≤1 gets 0.9, +Inf gets 4.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "q", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 100 samples uniform in (0,1], 100 in (1,2]: the median sits at the
	// 1s boundary, p75 in the middle of the (1,2] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("p50 = %g, want 1", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %g, want 1.5 (midpoint of (1,2])", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p25 = %g, want 0.5 (midpoint of (0,1])", got)
	}
	// A sample beyond the last finite bound clamps to it.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %g, want clamp to 4", got)
	}
}

func TestLabelCardinality(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_designs_total", "designs", "method", "outcome")
	v.With("artisan", "success").Inc()
	v.With("artisan", "success").Inc()
	v.With("artisan", "fail").Inc()
	v.With("gpt4", "fail").Inc()
	if got := r.Cardinality("test_designs_total"); got != 3 {
		t.Errorf("cardinality = %d, want 3 distinct label settings", got)
	}
	if got := v.With("artisan", "success").Value(); got != 2 {
		t.Errorf("series dedup broken: %g, want 2", got)
	}
	// Label values that differ only in separator placement must not
	// collide ("a"+"bc" vs "ab"+"c").
	v.With("a", "bc").Inc()
	v.With("ab", "c").Add(5)
	if v.With("a", "bc").Value() != 1 || v.With("ab", "c").Value() != 5 {
		t.Error("label-value tuples collided")
	}

	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestConcurrentIncAndObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c")
	g := r.Gauge("test_conc_depth", "g")
	hv := r.HistogramVec("test_conc_seconds", "h", []float64{0.5, 1, 2}, "route")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := hv.With("r")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%3) * 0.9)
				_ = h.Quantile(0.5)
				_ = c.Value()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %g, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	if got := hv.With("r").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
