package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "core.design")
	root.SetAttr("spec", "G-1")
	cctx, child := StartSpan(ctx, "agents.session")
	_, grand := StartSpan(cctx, "tool.simulator")
	grand.End()
	child.End()
	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("trace recorded before root ended: %d", len(got))
	}
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Name() != "core.design" {
		t.Errorf("root = %q", got.Name())
	}
	kids := got.Children()
	if len(kids) != 1 || kids[0].Name() != "agents.session" {
		t.Fatalf("children = %v", kids)
	}
	if gk := kids[0].Children(); len(gk) != 1 || gk[0].Name() != "tool.simulator" {
		t.Fatalf("grandchildren wrong")
	}
	tree := got.Tree()
	for _, wantLine := range []string{"core.design", "  agents.session", "    tool.simulator", "spec=G-1"} {
		if !strings.Contains(tree, wantLine) {
			t.Errorf("tree missing %q:\n%s", wantLine, tree)
		}
	}
	j := got.JSON()
	if j.Name != "core.design" || j.Attrs["spec"] != "G-1" || len(j.Children) != 1 {
		t.Errorf("JSON form wrong: %+v", j)
	}
}

func TestStartSpanWithoutTracerIsFree(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "anything")
	if s != nil {
		t.Fatal("span without tracer should be nil")
	}
	// The nil span is safe end to end.
	s.SetAttr("k", "v")
	s.End()
	if s.Tree() != "" || s.Duration() != 0 || s.Name() != "" {
		t.Error("nil span accessors should be zero")
	}
	if SpanOf(ctx) != nil {
		t.Error("context should not carry a span")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		ctx := WithTracer(context.Background(), tr)
		_, s := StartSpan(ctx, "root")
		s.SetAttr("i", string(rune('a'+i)))
		s.End()
	}
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring = %d, want 2", len(traces))
	}
	// Most recent first.
	if traces[0].Attrs()[0].Value != "e" || traces[1].Attrs()[0].Value != "d" {
		t.Errorf("ring order wrong: %v %v", traces[0].Attrs(), traces[1].Attrs())
	}
	if tr.Total() != 5 {
		t.Errorf("total = %d, want 5", tr.Total())
	}
}

func TestSumByName(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 2; i++ {
		ctx := WithTracer(context.Background(), tr)
		ctx, root := StartSpan(ctx, "session")
		for j := 0; j < 3; j++ {
			_, s := StartSpan(ctx, "tool.simulator")
			s.End()
		}
		root.End()
	}
	stats := SumByName(tr.Traces())
	if stats["session"].Count != 2 {
		t.Errorf("session count = %d, want 2", stats["session"].Count)
	}
	if stats["tool.simulator"].Count != 6 {
		t.Errorf("simulator count = %d, want 6", stats["tool.simulator"].Count)
	}
	if stats["session"].Total <= 0 {
		t.Errorf("session total = %v, want > 0", stats["session"].Total)
	}
}

func TestSpanDurationInFlight(t *testing.T) {
	tr := NewTracer(1)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "slow")
	time.Sleep(time.Millisecond)
	if s.Duration() <= 0 {
		t.Error("in-flight duration should be positive")
	}
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	if s.Duration() != d {
		t.Error("duration must freeze at End")
	}
	s.End() // idempotent
	if s.Duration() != d {
		t.Error("second End must not move the end time")
	}
}

// Concurrent sessions against one tracer, with concurrent scrapes —
// the /traces + worker-pool shape, exercised under -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx := WithTracer(context.Background(), tr)
				ctx, root := StartSpan(ctx, "session")
				_, c := StartSpan(ctx, "tool")
				c.End()
				root.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, r := range tr.Traces() {
				_ = r.Tree()
				_ = r.JSON()
			}
		}
	}()
	wg.Wait()
	if tr.Total() != 200 {
		t.Errorf("total = %d, want 200", tr.Total())
	}
}
