// Package plot renders simple ASCII charts for terminal output: Bode
// magnitude/phase plots from AC sweeps and waveform plots from transient
// runs. It keeps the command-line tools self-contained (no graphics
// dependencies) while still letting a user *see* a response.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named trace of (x, y) points. X is assumed monotone
// increasing.
type Series struct {
	Name string
	X, Y []float64
}

// Options controls the canvas.
type Options struct {
	Width  int  // plot columns (default 72)
	Height int  // plot rows (default 18)
	LogX   bool // logarithmic x axis
	YLabel string
	XLabel string
}

// Render draws one series onto an ASCII canvas with axis annotations.
func Render(s Series, o Options) (string, error) {
	if len(s.X) < 2 || len(s.X) != len(s.Y) {
		return "", fmt.Errorf("plot: need >= 2 points with matching lengths, got %d/%d", len(s.X), len(s.Y))
	}
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 18
	}

	xs := make([]float64, len(s.X))
	for i, x := range s.X {
		if o.LogX {
			if x <= 0 {
				return "", fmt.Errorf("plot: log axis needs positive x, got %g", x)
			}
			xs[i] = math.Log10(x)
		} else {
			xs[i] = x
		}
	}
	xmin, xmax := xs[0], xs[len(xs)-1]
	if xmax <= xmin {
		return "", fmt.Errorf("plot: x range degenerate")
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, y := range s.Y {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			continue
		}
		ymin = math.Min(ymin, y)
		ymax = math.Max(ymax, y)
	}
	if math.IsInf(ymin, 1) {
		return "", fmt.Errorf("plot: no finite y values")
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := 0.05 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	grid := make([][]byte, o.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", o.Width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(o.Width-1)))
		return clampInt(c, 0, o.Width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(o.Height-1)))
		return clampInt(r, 0, o.Height-1)
	}
	// Draw with interpolation between consecutive points for continuity.
	prevC, prevR := col(xs[0]), row(s.Y[0])
	grid[prevR][prevC] = '*'
	for i := 1; i < len(xs); i++ {
		if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
			continue
		}
		c, r := col(xs[i]), row(s.Y[i])
		steps := maxInt(absInt(c-prevC), absInt(r-prevR))
		for k := 1; k <= steps; k++ {
			cc := prevC + (c-prevC)*k/maxInt(steps, 1)
			rr := prevR + (r-prevR)*k/maxInt(steps, 1)
			grid[rr][cc] = '*'
		}
		prevC, prevR = c, r
	}

	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "%s\n", s.Name)
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", ymax)
		case o.Height / 2:
			label = fmt.Sprintf("%9.3g ", (ymax+ymin)/2)
		case o.Height - 1:
			label = fmt.Sprintf("%9.3g ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", o.Width) + "\n")
	left := fmtX(s.X[0], o.LogX)
	right := fmtX(s.X[len(s.X)-1], o.LogX)
	gap := o.Width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s%s%s%s", strings.Repeat(" ", 11), left, strings.Repeat(" ", gap), right)
	if o.XLabel != "" || o.YLabel != "" {
		fmt.Fprintf(&b, "\n%s[x: %s, y: %s]", strings.Repeat(" ", 11), o.XLabel, o.YLabel)
	}
	b.WriteString("\n")
	return b.String(), nil
}

func fmtX(v float64, logx bool) string {
	if logx {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
