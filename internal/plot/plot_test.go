package plot

import (
	"math"
	"strings"
	"testing"
)

func line(n int, f func(i int) (float64, float64)) Series {
	s := Series{Name: "test"}
	for i := 0; i < n; i++ {
		x, y := f(i)
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	return s
}

func TestRenderBasic(t *testing.T) {
	s := line(50, func(i int) (float64, float64) {
		x := float64(i)
		return x, math.Sin(x / 8)
	})
	out, err := Render(s, Options{Width: 60, Height: 12, XLabel: "t", YLabel: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("no trace drawn")
	}
	if !strings.Contains(out, "test") {
		t.Error("series name missing")
	}
	if !strings.Contains(out, "[x: t, y: v]") {
		t.Error("axis labels missing")
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + axis + x labels + label line.
	if len(lines) < 15 {
		t.Errorf("output too short: %d lines", len(lines))
	}
}

func TestRenderLogX(t *testing.T) {
	// -20 dB/decade line renders as a straight diagonal on a log axis:
	// the '*' column at each row should decrease monotonically in row
	// order top-left to bottom-right... verify extremes.
	s := line(100, func(i int) (float64, float64) {
		f := math.Pow(10, float64(i)/99*6) // 1 Hz .. 1 MHz
		return f, -20 * math.Log10(f)
	})
	out, err := Render(s, Options{Width: 60, Height: 12, LogX: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(out, "\n")
	// rows[0] is the series name; the grid spans rows[1..Height]. The y
	// padding can leave blank rows at the extremes, so scan for the
	// first and last rows that carry the trace.
	first, last := -1, -1
	for _, r := range rows[1:13] {
		c := strings.IndexByte(r, '*')
		if c < 0 {
			continue
		}
		if first < 0 {
			first = c
		}
		last = strings.LastIndexByte(r, '*')
	}
	if first < 0 || last < 0 {
		t.Fatalf("trace missing:\n%s", out)
	}
	if !(first < 20 && last > 40) {
		t.Errorf("diagonal not rendered: first=%d last=%d\n%s", first, last, out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Series{}, Options{}); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Render(Series{X: []float64{1, 2}, Y: []float64{1}}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Render(Series{X: []float64{0, 1}, Y: []float64{1, 2}}, Options{LogX: true}); err == nil {
		t.Error("non-positive x on log axis accepted")
	}
	if _, err := Render(Series{X: []float64{1, 1}, Y: []float64{1, 2}}, Options{}); err == nil {
		t.Error("degenerate x range accepted")
	}
	nan := math.NaN()
	if _, err := Render(Series{X: []float64{1, 2}, Y: []float64{nan, nan}}, Options{}); err == nil {
		t.Error("all-NaN y accepted")
	}
}

func TestRenderConstantY(t *testing.T) {
	s := line(10, func(i int) (float64, float64) { return float64(i), 5 })
	out, err := Render(s, Options{Width: 30, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("flat line not drawn")
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	s := line(20, func(i int) (float64, float64) {
		y := float64(i)
		if i == 7 {
			y = math.Inf(1)
		}
		return float64(i), y
	})
	if _, err := Render(s, Options{Width: 30, Height: 8}); err != nil {
		t.Fatalf("non-finite interior point should be skipped: %v", err)
	}
}
