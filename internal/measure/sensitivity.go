package measure

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"artisan/internal/netlist"
)

// Sensitivity analysis: which element controls which metric. For each
// device the normalized log-log sensitivity S = d ln(metric) / d ln(value)
// is estimated by central differences, so S(GBW, gm1) ≈ +1 and
// S(GBW, Cm1) ≈ −1 for a Miller-compensated opamp — the quantitative form
// of the interpretability the paper claims for knowledge-driven designs
// (a reviewer can ask the circuit "what happens if this element drifts").

// Sensitivity is one device's effect on the metrics.
type Sensitivity struct {
	Device string
	GBW    float64 // d ln(GBW) / d ln(value)
	Gain   float64 // d GainDB / d ln(value), dB per e-fold
	PM     float64 // d PM / d ln(value), degrees per e-fold
}

// SensitivityReport is the full table.
type SensitivityReport struct {
	Rows []Sensitivity
}

// String renders the table sorted by |GBW sensitivity|.
func (r SensitivityReport) String() string {
	rows := append([]Sensitivity(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		return math.Abs(rows[i].GBW) > math.Abs(rows[j].GBW)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %12s\n", "device", "S(GBW)", "dGain(dB)/e", "dPM(°)/e")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-10s %10.3f %12.3f %12.3f\n", s.Device, s.GBW, s.Gain, s.PM)
	}
	return b.String()
}

// ByDevice returns the row for a device name.
func (r SensitivityReport) ByDevice(name string) (Sensitivity, bool) {
	for _, s := range r.Rows {
		if s.Device == name {
			return s, true
		}
	}
	return Sensitivity{}, false
}

// Sensitivities perturbs every R, C and VCCS value by ±rel (central
// difference in log space) and measures the metric shifts. rel defaults
// to 0.05.
func Sensitivities(nl *netlist.Netlist, out string, rel float64) (SensitivityReport, error) {
	if rel <= 0 {
		rel = 0.05
	}
	base, err := Analyze(nl, out)
	if err != nil {
		return SensitivityReport{}, err
	}
	if base.GBW <= 0 {
		return SensitivityReport{}, fmt.Errorf("measure: no unity crossing; sensitivities undefined")
	}
	var rep SensitivityReport
	h := math.Log(1 + rel)
	for _, d := range nl.Devices {
		switch d.Kind {
		case netlist.Resistor, netlist.Capacitor, netlist.VCCS:
		default:
			continue
		}
		up := nl.Clone()
		up.SetValue(d.Name, d.Value*(1+rel))
		dn := nl.Clone()
		dn.SetValue(d.Name, d.Value/(1+rel))
		rUp, err := Analyze(up, out)
		if err != nil {
			return rep, fmt.Errorf("measure: sensitivity of %s: %w", d.Name, err)
		}
		rDn, err := Analyze(dn, out)
		if err != nil {
			return rep, fmt.Errorf("measure: sensitivity of %s: %w", d.Name, err)
		}
		s := Sensitivity{Device: d.Name}
		if rUp.GBW > 0 && rDn.GBW > 0 {
			s.GBW = (math.Log(rUp.GBW) - math.Log(rDn.GBW)) / (2 * h)
		}
		s.Gain = (rUp.GainDB - rDn.GainDB) / (2 * h)
		s.PM = (rUp.PM - rDn.PM) / (2 * h)
		rep.Rows = append(rep.Rows, s)
	}
	return rep, nil
}
