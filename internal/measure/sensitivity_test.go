package measure

import (
	"math"
	"strings"
	"testing"

	"artisan/internal/netlist"
)

// The textbook identities: GBW = gm1/(2π·Cm1) means S(GBW, gm1) ≈ +1 and
// S(GBW, Cm1) ≈ −1, while far-away elements barely matter.
func TestSensitivitiesMatchMillerTheory(t *testing.T) {
	rep, err := Sensitivities(buildNMC(), "out", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gm1, ok := rep.ByDevice("Gm1")
	if !ok {
		t.Fatal("Gm1 row missing")
	}
	// The textbook value is exactly ±1; the non-dominant complex pair
	// near 2.9 MHz bends the magnitude slope at crossover, so the
	// measured sensitivity runs ~15% hot.
	if math.Abs(gm1.GBW-1) > 0.25 {
		t.Errorf("S(GBW, gm1) = %g, want ≈ +1", gm1.GBW)
	}
	cm1, _ := rep.ByDevice("Cm1")
	if math.Abs(cm1.GBW+1) > 0.25 {
		t.Errorf("S(GBW, Cm1) = %g, want ≈ −1", cm1.GBW)
	}
	// DC gain follows Ro1 (dB per e-fold = 20/ln(10) ≈ 8.69 for a
	// proportional element).
	ro1, _ := rep.ByDevice("Ro1")
	if math.Abs(ro1.Gain-8.69) > 0.5 {
		t.Errorf("dGain/dln(Ro1) = %g dB, want ≈ 8.69", ro1.Gain)
	}
	// The load resistor barely touches GBW.
	rl, _ := rep.ByDevice("RL")
	if math.Abs(rl.GBW) > 0.1 {
		t.Errorf("S(GBW, RL) = %g, want ≈ 0", rl.GBW)
	}
	// gm3 buys phase margin (it pushes the output pole out).
	gm3, _ := rep.ByDevice("Gm3")
	if gm3.PM <= 0 {
		t.Errorf("dPM/dln(gm3) = %g, want positive", gm3.PM)
	}
	s := rep.String()
	if !strings.Contains(s, "S(GBW)") || !strings.Contains(s, "Gm1") {
		t.Error("table malformed")
	}
}

func TestSensitivitiesErrors(t *testing.T) {
	// Sub-unity-gain circuit: no GBW, sensitivities undefined.
	nl := netlist.New("attenuator")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", 9e3)
	nl.AddR("R2", "out", "0", 1e3)
	nl.AddC("C1", "out", "0", 1e-12)
	if _, err := Sensitivities(nl, "out", 0.05); err == nil {
		t.Error("attenuator accepted")
	}
	if _, err := Sensitivities(buildNMC(), "nonode", 0); err == nil {
		t.Error("unknown node accepted")
	}
	if _, ok := (SensitivityReport{}).ByDevice("x"); ok {
		t.Error("empty report found a device")
	}
}
