// Package measure extracts the opamp metrics the paper evaluates (§4.1.3)
// from a behavioral netlist: DC gain, gain-bandwidth product (unity-gain
// frequency), phase margin, gain margin, −3 dB bandwidth, and a power
// estimate derived from the stage transconductances via a gm/Id model.
// AC quantities come from the in-repo MNA simulator.
package measure

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"artisan/internal/mna"
	"artisan/internal/netlist"
	"artisan/internal/units"
)

// Sweep parameters used for metric extraction.
const (
	sweepStart     = 1e-2 // Hz
	sweepStop      = 1e10 // Hz
	sweepPerDecade = 24
)

// Report holds the extracted small-signal metrics.
type Report struct {
	DCGain   float64 // linear magnitude
	GainDB   float64 // 20·log10(DCGain)
	GBW      float64 // unity-gain frequency, Hz (0 if none)
	PM       float64 // phase margin, degrees (meaningful only if GBW > 0)
	GM       float64 // gain margin, dB (+Inf if phase never reaches −180°)
	F3dB     float64 // −3 dB bandwidth, Hz
	Power    float64 // W, from the gm/Id power model
	Stable   bool    // all poles strictly in the LHP
	NumPoles int
	NumZeros int
	// PoleZeroErr is non-empty when pole/zero extraction failed (e.g. the
	// root finder did not converge). Stable=false with a non-empty
	// PoleZeroErr means "stability unknown", not "verified unstable" —
	// previously the two cases were indistinguishable.
	PoleZeroErr string
}

// String renders the report in a compact human-readable form.
func (r Report) String() string {
	s := fmt.Sprintf("Gain=%.1fdB GBW=%sHz PM=%.1f° Power=%sW stable=%v",
		r.GainDB, units.Format(r.GBW), r.PM, units.Format(r.Power), r.Stable)
	if r.PoleZeroErr != "" {
		s += fmt.Sprintf(" pz-error=%q", r.PoleZeroErr)
	}
	return s
}

// PowerModel converts stage transconductances to supply power. Stage
// devices are the VCCS elements of the behavioral netlist; the input
// (differential-pair) stage costs twice its branch current plus mirror
// overhead, common-source stages cost one branch current.
type PowerModel struct {
	VDD          float64 // supply voltage, V
	GmOverId     float64 // transconductance efficiency, S/A
	InputFactor  float64 // current multiplier for the input stage
	StageFactor  float64 // current multiplier for other gm stages
	BiasOverhead float64 // fixed bias-network current, A
	InputStage   string  // device name of the input stage VCCS
}

// DefaultPowerModel matches the paper's 1.8 V supply with moderate
// inversion devices.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		VDD:          1.8,
		GmOverId:     16,
		InputFactor:  2,
		StageFactor:  1,
		BiasOverhead: 2e-6,
		InputStage:   "Gm1",
	}
}

// Power estimates the total supply power of the behavioral netlist.
func (pm PowerModel) Power(nl *netlist.Netlist) float64 {
	total := pm.BiasOverhead
	for _, d := range nl.Devices {
		if d.Kind != netlist.VCCS {
			continue
		}
		id := math.Abs(d.Value) / pm.GmOverId
		if strings.EqualFold(d.Name, pm.InputStage) {
			total += pm.InputFactor * id
		} else {
			total += pm.StageFactor * id
		}
	}
	return pm.VDD * total
}

// Analyze runs the full metric extraction on a behavioral netlist with the
// given output node, using the default power model.
func Analyze(nl *netlist.Netlist, out string) (Report, error) {
	return AnalyzeWith(nl, out, DefaultPowerModel())
}

// AnalyzeContext is Analyze with context propagation: the MNA solves it
// performs (sweep, poles, zeros) emit telemetry spans when the context
// carries a tracer.
func AnalyzeContext(ctx context.Context, nl *netlist.Netlist, out string) (Report, error) {
	return AnalyzeWithContext(ctx, nl, out, DefaultPowerModel())
}

// AnalyzeWith is Analyze with an explicit power model.
func AnalyzeWith(nl *netlist.Netlist, out string, pm PowerModel) (Report, error) {
	return AnalyzeWithContext(context.Background(), nl, out, pm)
}

// AnalyzeWithContext is AnalyzeContext with an explicit power model.
func AnalyzeWithContext(ctx context.Context, nl *netlist.Netlist, out string, pm PowerModel) (Report, error) {
	c, err := mna.Compile(nl)
	if err != nil {
		return Report{}, err
	}
	pts, err := c.SweepContext(ctx, out, sweepStart, sweepStop, sweepPerDecade)
	if err != nil {
		return Report{}, err
	}
	if len(pts) < 2 {
		return Report{}, fmt.Errorf("measure: sweep too short")
	}

	rep := Report{Power: pm.Power(nl)}

	// Magnitudes and unwrapped phase relative to the DC response. The
	// opamp may be inverting; phase is referenced so φ(DC) = 0.
	href := pts[0].H
	if href == 0 {
		return Report{}, fmt.Errorf("measure: zero response at DC")
	}
	mags := make([]float64, len(pts))
	phase := make([]float64, len(pts))
	prev := 0.0
	for i, p := range pts {
		mags[i] = cmplx.Abs(p.H)
		raw := cmplx.Phase(p.H / href)
		// unwrap against previous point
		d := raw - math.Mod(prev, 2*math.Pi)
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		prev += d
		phase[i] = units.Deg(prev)
	}

	rep.DCGain = mags[0]
	rep.GainDB = units.DB(mags[0])

	// −3 dB bandwidth: first crossing below DCGain/√2.
	target := rep.DCGain / math.Sqrt2
	for i := 1; i < len(pts); i++ {
		if mags[i-1] >= target && mags[i] < target {
			rep.F3dB = logInterp(pts[i-1].Freq, pts[i].Freq, mags[i-1], mags[i], target)
			break
		}
	}

	// Unity-gain crossing.
	for i := 1; i < len(pts); i++ {
		if mags[i-1] >= 1 && mags[i] < 1 {
			rep.GBW = logInterp(pts[i-1].Freq, pts[i].Freq, mags[i-1], mags[i], 1)
			// Phase at the crossing, linear in log f.
			t := math.Log(rep.GBW/pts[i-1].Freq) / math.Log(pts[i].Freq/pts[i-1].Freq)
			phiU := phase[i-1] + t*(phase[i]-phase[i-1])
			rep.PM = 180 + phiU
			break
		}
	}

	// Gain margin: gain in dB at the −180° phase crossing.
	rep.GM = math.Inf(1)
	for i := 1; i < len(pts); i++ {
		if phase[i-1] > -180 && phase[i] <= -180 {
			t := (-180 - phase[i-1]) / (phase[i] - phase[i-1])
			lm := math.Log(mags[i-1]) + t*(math.Log(mags[i])-math.Log(mags[i-1]))
			rep.GM = -units.DB(math.Exp(lm))
			break
		}
	}

	// Stability via pole locations. A root-finder failure is surfaced in
	// PoleZeroErr rather than silently reported as "0 poles, unstable".
	poles, perr := c.PolesContext(ctx)
	if perr != nil {
		rep.PoleZeroErr = perr.Error()
	} else {
		rep.NumPoles = len(poles)
		rep.Stable = true
		for _, p := range poles {
			if real(p) >= 0 {
				rep.Stable = false
			}
		}
	}
	zeros, zerr := c.ZerosContext(ctx, out)
	switch {
	case zerr != nil:
		if rep.PoleZeroErr == "" {
			rep.PoleZeroErr = zerr.Error()
		}
	default:
		rep.NumZeros = len(zeros)
	}
	return rep, nil
}

// logInterp solves for the frequency where the magnitude (assumed locally
// log-log linear between two sweep points) crosses target.
func logInterp(f0, f1, m0, m1, target float64) float64 {
	l0, l1 := math.Log(m0), math.Log(m1)
	lt := math.Log(target)
	t := (lt - l0) / (l1 - l0)
	return math.Exp(math.Log(f0) + t*math.Log(f1/f0))
}
