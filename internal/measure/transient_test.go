package measure

import (
	"math"
	"strings"
	"testing"

	"artisan/internal/mna"
	"artisan/internal/units"
)

func TestUnityFeedback(t *testing.T) {
	nl := buildNMC()
	fb, err := UnityFeedback(nl, "Gm1", "out")
	if err != nil {
		t.Fatal(err)
	}
	d := fb.Find("Gm1")
	if d.Nodes[2] != "out" || d.Nodes[3] != "in" {
		t.Errorf("ctrl = (%q, %q), want (out, in)", d.Nodes[2], d.Nodes[3])
	}
	// Original untouched.
	if nl.Find("Gm1").Nodes[2] != "in" {
		t.Error("UnityFeedback mutated the input netlist")
	}
	if _, err := UnityFeedback(nl, "nope", "out"); err == nil {
		t.Error("missing stage accepted")
	}
	if _, err := UnityFeedback(nl, "Ro1", "out"); err == nil {
		t.Error("non-VCCS stage accepted")
	}
}

func TestSatLimits(t *testing.T) {
	nl := buildNMC()
	pm := DefaultPowerModel()
	lims := SatLimits(nl, pm)
	if len(lims) != 3 {
		t.Fatalf("got %d limits, want 3", len(lims))
	}
	// Input stage: 2 × Id1; others 1 × Id.
	if !units.ApproxEqual(lims["Gm1"], 2*25.13e-6/16, 1e-9) {
		t.Errorf("Gm1 limit = %g", lims["Gm1"])
	}
	if !units.ApproxEqual(lims["Gm3"], 251.3e-6/16, 1e-9) {
		t.Errorf("Gm3 limit = %g", lims["Gm3"])
	}
}

func TestStepAnalyzeSmallSignal(t *testing.T) {
	// Small linear step on the NMC buffer: output settles to the step
	// voltage (unity feedback), no slew limiting.
	nl := buildNMC()
	opts := DefaultStepOpts()
	opts.StepV = 1e-3
	opts.Linear = true
	rep, err := StepAnalyze(nl, "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(rep.Final, 1e-3, 0.02) {
		t.Errorf("final = %g, want 1 mV", rep.Final)
	}
	if rep.Settle1 <= 0 {
		t.Error("did not settle inside the window")
	}
	// PM ≈ 56°: modest overshoot expected, below 25%.
	if rep.Overshoot < 0.01 || rep.Overshoot > 0.3 {
		t.Errorf("overshoot = %g", rep.Overshoot)
	}
	if !strings.Contains(rep.String(), "SR=") {
		t.Error("String() malformed")
	}
}

func TestStepAnalyzeSlewLimited(t *testing.T) {
	nl := buildNMC()
	// Large step with saturation: slew rate bounded by the smallest
	// internal current limit against its node capacitance; for NMC the
	// classic bound is Itail/Cm1 = 2·Id1/Cm1.
	opts := DefaultStepOpts()
	opts.StepV = 0.5
	rep, err := StepAnalyze(nl, "out", opts)
	if err != nil {
		t.Fatal(err)
	}
	itail := 2 * 25.13e-6 / 16
	bound := itail / 4e-12 // ≈ 0.79 V/µs
	if rep.SlewRate > 1.5*bound {
		t.Errorf("slew %g exceeds the Itail/Cm1 bound %g", rep.SlewRate, bound)
	}
	if rep.SlewRate < bound/10 {
		t.Errorf("slew %g implausibly small vs bound %g", rep.SlewRate, bound)
	}
	// The linear (no-saturation) step must be faster.
	lin := opts
	lin.Linear = true
	lrep, err := StepAnalyze(nl, "out", lin)
	if err != nil {
		t.Fatal(err)
	}
	if lrep.SlewRate <= rep.SlewRate {
		t.Errorf("linear SR %g should exceed saturated SR %g", lrep.SlewRate, rep.SlewRate)
	}
}

func TestStepAnalyzeErrors(t *testing.T) {
	nl := buildNMC()
	opts := DefaultStepOpts()
	opts.StepV = 0
	if _, err := StepAnalyze(nl, "out", opts); err == nil {
		t.Error("zero step accepted")
	}
	noVin := buildNMC()
	noVin.Remove("Vin")
	noVin.AddI("Iin", "0", "in", 1) // keep node driven but no Vin
	opts = DefaultStepOpts()
	if _, err := StepAnalyze(noVin, "out", opts); err == nil {
		t.Error("netlist without Vin accepted")
	}
}

func TestFoMLarge(t *testing.T) {
	// SR = 1 V/µs, CL = 10 pF, P = 50 µW → FoM_L = 1·10/0.05 = 200.
	f := FoMLarge(1e6, 10e-12, 50e-6)
	if !units.ApproxEqual(f, 200, 1e-9) {
		t.Errorf("FoMLarge = %g", f)
	}
	if FoMLarge(1e6, 1e-12, 0) != 0 {
		t.Error("zero power should yield 0")
	}
}

func TestStepMetricsEdge(t *testing.T) {
	// Degenerate waveforms don't panic.
	if r := stepMetrics(nil, 1); r.SlewRate != 0 {
		t.Error("empty waveform")
	}
	// Monotone ramp to 1 with no overshoot.
	pts2 := makeRamp(100)
	r := stepMetrics(pts2, 1)
	if r.Overshoot > 0.02 {
		t.Errorf("ramp overshoot = %g", r.Overshoot)
	}
	if math.Abs(r.Final-1) > 0.02 {
		t.Errorf("ramp final = %g", r.Final)
	}
}

func makeRamp(n int) []mna.TranPoint {
	pts := make([]mna.TranPoint, n)
	for i := range pts {
		t := float64(i) / float64(n-1)
		v := 1 - math.Exp(-6*t)
		pts[i] = mna.TranPoint{T: t, V: v}
	}
	return pts
}
