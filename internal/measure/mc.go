package measure

import (
	"fmt"
	"math"
	"math/cmplx"

	"artisan/internal/mna"
	"artisan/internal/netlist"
)

// Monte-Carlo fast path: spec-directed re-measurement of a perturbed
// design without re-compiling, re-sweeping, or cold-starting the root
// finder. A full Analyze runs a 289-point sweep plus two cold Aberth
// root finds per sample; yield analysis only consumes the five fields
// spec.Check reads (GainDB, GBW, PM, Power, Stable), and every sample is
// a small perturbation of one nominal design. MCAnalyzer exploits both:
//
//   - the netlist is compiled once; each sample re-stamps matrix values
//     through Circuit.Restamped (shared pattern, node index, degree memo);
//   - DC gain is one solve at the sweep's DC anchor frequency;
//   - GBW is a log-domain bisection for the unity crossing, bracketed
//     around the nominal design's GBW;
//   - PM is the direct phase of H(GBW)/H(DC) (no unwrapping sweep);
//   - stability is a warm Aberth polish of the nominal pole positions
//     (mna.StableNear) with a sign-certainty early exit;
//   - power scales the nominal gm values by the sample's factors.
//
// Whenever a fast classification is not certain — the polish does not
// settle, a pole's sign is ambiguous — the sample transparently falls
// back to the full Analyze on a scaled netlist clone. Every step depends
// only on the sample's scale factors, so results are deterministic and
// independent of how samples are distributed over workers.

// mcGBWRelTol is the bisection's relative frequency tolerance — tighter
// than the 24-points-per-decade grid interpolation it replaces.
const mcGBWRelTol = 1e-4

// MCAnalyzer is the per-design state shared by all Monte-Carlo workers:
// the compiled nominal circuit, its nominal GBW (bisection bracket hint),
// and its nominal poles (warm-start seeds for stability).
type MCAnalyzer struct {
	nl    *netlist.Netlist
	out   string
	pm    PowerModel
	base  *mna.Circuit
	gbw0  float64
	seeds []complex128 // nil → every sample uses the full fallback
}

// NewMCAnalyzer compiles the nominal design and captures the warm-start
// state. A nominal root-find failure is not fatal: samples then skip the
// fast stability path and fall back to the full analysis.
func NewMCAnalyzer(nl *netlist.Netlist, out string) (*MCAnalyzer, error) {
	base, err := mna.Compile(nl)
	if err != nil {
		return nil, err
	}
	a := &MCAnalyzer{nl: nl, out: out, pm: DefaultPowerModel(), base: base}
	if _, err := base.NodeIndex(out); err != nil {
		return nil, err
	}
	a.gbw0, _ = bisectGBW(base, out, 0)
	if poles, err := base.Poles(); err == nil {
		a.seeds = poles
	}
	return a, nil
}

// Session returns a single-goroutine measurement context: it owns one
// restamp-target circuit, reused across samples, so steady-state sampling
// performs no compilation and near-zero allocation. Each Monte-Carlo
// worker gets its own Session.
func (a *MCAnalyzer) Session() *MCSession {
	return &MCSession{a: a}
}

// MCSession is the per-worker scratch of an MCAnalyzer.
type MCSession struct {
	a    *MCAnalyzer
	circ *mna.Circuit
}

// Analyze measures one sample: scale[i] multiplies device i's nominal
// value. The returned report carries exactly the spec-checked metrics
// (GainDB, GBW, PM, Power, Stable); secondary fields (F3dB, GM, pole and
// zero counts) are only populated when the sample took the full-analysis
// fallback.
func (s *MCSession) Analyze(scale []float64) (Report, error) {
	circ, err := s.a.base.Restamped(scale, s.circ)
	if err != nil {
		return Report{}, err
	}
	s.circ = circ

	var rep Report
	rep.Power = s.scaledPower(scale)

	href, err := circ.VoltageAt(s.a.out, mna.Omega(sweepStart))
	if err != nil {
		return Report{}, err
	}
	dc := cmplx.Abs(href)
	if dc == 0 {
		return Report{}, fmt.Errorf("measure: zero response at DC")
	}
	rep.DCGain = dc
	rep.GainDB = 20 * math.Log10(dc)
	rep.GM = math.Inf(1)

	rep.GBW, err = bisectGBW(circ, s.a.out, s.a.gbw0)
	if err != nil {
		return Report{}, err
	}
	if rep.GBW > 0 {
		hu, err := circ.VoltageAt(s.a.out, mna.Omega(rep.GBW))
		if err != nil {
			return Report{}, err
		}
		// Direct phase relative to DC, assuming the unwrapped phase at the
		// unity crossing lies in (−360°, 0°] — true for the cascade
		// responses this model produces. PM values then land in
		// (−180°, 180°].
		phi := cmplx.Phase(hu/href) * 180 / math.Pi
		rep.PM = 180 + phi
		if rep.PM > 180 {
			rep.PM -= 360
		}
	}

	if s.a.seeds != nil {
		if stable, ok := circ.StableNear(s.a.seeds); ok {
			rep.Stable = stable
			rep.NumPoles = len(s.a.seeds)
			return rep, nil
		}
	}
	// Uncertain classification: run the full pipeline on a scaled clone.
	return AnalyzeWith(s.scaledNetlist(scale), s.a.out, s.a.pm)
}

// scaledPower evaluates the power model on the perturbed gm values.
func (s *MCSession) scaledPower(scale []float64) float64 {
	pm := s.a.pm
	total := pm.BiasOverhead
	for i, d := range s.a.nl.Devices {
		if d.Kind != netlist.VCCS {
			continue
		}
		id := math.Abs(d.Value*scale[i]) / pm.GmOverId
		if equalFold(d.Name, pm.InputStage) {
			total += pm.InputFactor * id
		} else {
			total += pm.StageFactor * id
		}
	}
	return pm.VDD * total
}

// scaledNetlist materializes the sample as a netlist clone for the
// full-analysis fallback.
func (s *MCSession) scaledNetlist(scale []float64) *netlist.Netlist {
	mc := s.a.nl.Clone()
	for i := range mc.Devices {
		mc.Devices[i].Value *= scale[i]
	}
	return mc
}

// bisectGBW finds the unity-gain frequency of V(out) by root-finding on
// log|H| in log-frequency over [sweepStart, sweepStop] — the same range
// Analyze sweeps, so "no crossing" agrees between the two paths. hint,
// when positive, seeds the bracket around a nearby known crossing (the
// nominal GBW); sampling perturbations rarely move the crossing outside
// hint/4…4·hint, and when they do the bracket falls back to a full
// geometric scan. Inside the bracket an Illinois false-position iteration
// exploits that log|H| is near-linear in log f (a straight Bode slope),
// settling in a handful of solves where plain bisection needs ~15.
// Returns 0 when the response never crosses unity in range.
func bisectGBW(c *mna.Circuit, out string, hint float64) (float64, error) {
	var solveErr error
	gainAt := func(f float64) float64 {
		v, err := c.VoltageAt(out, mna.Omega(f))
		if err != nil && solveErr == nil {
			solveErr = fmt.Errorf("measure: gbw probe at %g Hz: %w", f, err)
		}
		return math.Log(cmplx.Abs(v)) // >0 above unity, <=0 at/below
	}
	if gainAt(sweepStart) <= 0 {
		return 0, solveErr // no gain to begin with
	}
	lo, hi := sweepStart, 0.0
	var glo, ghi float64
	if hint > 0 {
		hl, hh := hint/4, hint*4
		if hl > sweepStart && hh < sweepStop {
			gl, gh := gainAt(hl), gainAt(hh)
			if gl > 0 && gh <= 0 {
				lo, hi, glo, ghi = hl, hh, gl, gh
			}
		}
	}
	if hi == 0 {
		glo = gainAt(lo)
		for f := sweepStart * 10; f <= sweepStop; f *= 10 {
			g := gainAt(f)
			if g <= 0 {
				hi, ghi = f, g
				break
			}
			lo, glo = f, g
		}
		if hi == 0 {
			g := gainAt(sweepStop)
			if g > 0 {
				return 0, solveErr // still above unity at the sweep edge
			}
			hi, ghi = sweepStop, g
		}
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	side := 0
	for i := 0; i < 60 && lhi-llo > mcGBWRelTol; i++ {
		mid := (llo + lhi) / 2
		if d := glo - ghi; d > 0 {
			if fp := llo + (lhi-llo)*glo/d; fp > llo && fp < lhi {
				mid = fp
			}
		}
		g := gainAt(math.Exp(mid))
		if g > 0 {
			llo, glo = mid, g
			if side == 1 {
				ghi *= 0.5 // Illinois: unstick a stalled endpoint
			}
			side = 1
		} else {
			lhi, ghi = mid, g
			if side == -1 {
				glo *= 0.5
			}
			side = -1
		}
	}
	if solveErr != nil {
		return 0, solveErr
	}
	return math.Exp((llo + lhi) / 2), nil
}

// equalFold is strings.EqualFold without the import churn for one call.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
