package measure

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"artisan/internal/netlist"
	"artisan/internal/units"
)

// buildNMC is the reference behavioral NMC opamp (GBW ≈ 1 MHz, PM ≈ 60°).
func buildNMC() *netlist.Netlist {
	n := netlist.New("nmc three-stage opamp")
	n.AddV("Vin", "in", "0", 1)
	n.AddG("Gm1", "0", "n1", "in", "0", 25.13e-6)
	n.AddR("Ro1", "n1", "0", 4e6)
	n.AddC("Cp1", "n1", "0", 4e-15)
	n.AddG("Gm2", "0", "n2", "n1", "0", 37.7e-6)
	n.AddR("Ro2", "n2", "0", 1.2e6)
	n.AddC("Cp2", "n2", "0", 6e-15)
	n.AddG("Gm3", "out", "0", "n2", "0", 251.3e-6)
	n.AddR("Ro3", "out", "0", 180e3)
	n.AddC("Cp3", "out", "0", 40e-15)
	n.AddC("Cm1", "n1", "out", 4e-12)
	n.AddC("Cm2", "n2", "out", 3e-12)
	n.AddR("RL", "out", "0", 1e6)
	n.AddC("CL", "out", "0", 10e-12)
	return n
}

func TestAnalyzeNMC(t *testing.T) {
	rep, err := Analyze(buildNMC(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GainDB < 100 || rep.GainDB > 110 {
		t.Errorf("GainDB = %g, want ≈ 104.8", rep.GainDB)
	}
	if rep.GBW < 0.8e6 || rep.GBW > 1.3e6 {
		t.Errorf("GBW = %g, want ≈ 1 MHz", rep.GBW)
	}
	if rep.PM < 45 || rep.PM > 75 {
		t.Errorf("PM = %g°, want ≈ 60°", rep.PM)
	}
	if !rep.Stable {
		t.Error("NMC design should be stable")
	}
	if rep.NumPoles != 3 {
		t.Errorf("NumPoles = %d, want 3", rep.NumPoles)
	}
	if rep.F3dB <= 0 || rep.F3dB > 100 {
		t.Errorf("F3dB = %g, want a few Hz", rep.F3dB)
	}
	if math.IsInf(rep.GM, 1) || rep.GM < 3 {
		t.Errorf("GM = %g dB, want finite positive", rep.GM)
	}
	// Power model: 2·Id1 + Id2 + Id3 + bias ≈ 23 µA at 1.8 V ≈ 42 µW.
	if rep.Power < 30e-6 || rep.Power > 60e-6 {
		t.Errorf("Power = %g, want ≈ 42 µW", rep.Power)
	}
	s := rep.String()
	for _, want := range []string{"Gain=", "GBW=", "PM=", "stable=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestPhaseMarginTracksCm1(t *testing.T) {
	// Shrinking Cm1 pushes GBW up toward the non-dominant poles and must
	// reduce the phase margin: a monotone physical trend the extractor
	// has to reproduce.
	prevPM := math.Inf(1)
	for _, cm1 := range []float64{6e-12, 4e-12, 2e-12, 1e-12} {
		nl := buildNMC()
		nl.SetValue("Cm1", cm1)
		rep, err := Analyze(nl, "out")
		if err != nil {
			t.Fatal(err)
		}
		if rep.PM >= prevPM {
			t.Errorf("PM did not drop when Cm1 shrank to %g: %g >= %g", cm1, rep.PM, prevPM)
		}
		prevPM = rep.PM
	}
}

func TestUnstableDetected(t *testing.T) {
	// Removing both Miller caps leaves a 3-pole uncompensated amplifier:
	// phase dives through −180° well before unity gain (PM < 0), though
	// the open-loop poles themselves stay in the LHP.
	nl := buildNMC()
	nl.Remove("Cm1")
	nl.Remove("Cm2")
	rep, err := Analyze(nl, "out")
	if err != nil {
		t.Fatal(err)
	}
	if rep.PM > 20 {
		t.Errorf("uncompensated PM = %g°, want small or negative", rep.PM)
	}
	if rep.GM > 0 && rep.PM > 45 {
		t.Error("uncompensated amplifier reported comfortable margins")
	}
}

func TestLowGainNoGBW(t *testing.T) {
	// An attenuator never crosses unity: GBW must be 0.
	nl := netlist.New("attenuator")
	nl.AddV("V1", "in", "0", 1)
	nl.AddR("R1", "in", "out", 9e3)
	nl.AddR("R2", "out", "0", 1e3)
	nl.AddC("C1", "out", "0", 1e-12)
	rep, err := Analyze(nl, "out")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GBW != 0 {
		t.Errorf("GBW = %g, want 0 for sub-unity gain", rep.GBW)
	}
	if !units.ApproxEqual(rep.DCGain, 0.1, 1e-6) {
		t.Errorf("DCGain = %g, want 0.1", rep.DCGain)
	}
}

func TestSingleStagePM90(t *testing.T) {
	// One-pole amplifier: PM ≈ 90°.
	nl := netlist.New("single pole")
	nl.AddV("V1", "in", "0", 1)
	nl.AddG("G1", "0", "out", "in", "0", 1e-3)
	nl.AddR("Ro", "out", "0", 1e6)
	nl.AddC("CL", "out", "0", 10e-12)
	rep, err := Analyze(nl, "out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.PM-90) > 2 {
		t.Errorf("PM = %g°, want ≈ 90°", rep.PM)
	}
	if !rep.Stable {
		t.Error("single pole should be stable")
	}
	// GBW = gm/(2π·CL) ≈ 15.9 MHz
	want := 1e-3 / (2 * math.Pi * 10e-12)
	if !units.ApproxEqual(rep.GBW, want, 0.05) {
		t.Errorf("GBW = %g, want %g", rep.GBW, want)
	}
}

func TestPowerModel(t *testing.T) {
	pm := DefaultPowerModel()
	nl := buildNMC()
	p := pm.Power(nl)
	id := (2*25.13e-6 + 37.7e-6 + 251.3e-6) / 16
	want := 1.8 * (id + 2e-6)
	if !units.ApproxEqual(p, want, 1e-9) {
		t.Errorf("Power = %g, want %g", p, want)
	}
	// A custom model with different input stage naming.
	pm2 := pm
	pm2.InputStage = "Gm3"
	p2 := pm2.Power(nl)
	if p2 <= p {
		t.Error("making the largest stage the input stage should raise power")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	nl := netlist.New("broken")
	nl.AddR("R1", "a", "b", 1e3) // floating
	if _, err := Analyze(nl, "b"); err == nil {
		t.Error("Analyze accepted invalid netlist")
	}
	good := buildNMC()
	if _, err := Analyze(good, "nonexistent"); err == nil {
		t.Error("Analyze accepted unknown output node")
	}
}

func TestLogInterp(t *testing.T) {
	// crossing of a perfect -20 dB/dec line through magnitude 1 at 1 kHz
	f := logInterp(100, 10e3, 10, 0.1, 1)
	if !units.ApproxEqual(f, 1e3, 1e-9) {
		t.Errorf("logInterp = %g, want 1000", f)
	}
}

// TestPoleZeroErrSurfaced is the regression test for silently swallowed
// root-finder failures: a 66-section RC ladder has polynomial degree 66,
// beyond the root finder's plausibility cap, so pole extraction fails.
// The old code reported Stable=false, NumPoles=0 — indistinguishable from
// a verified-unstable amplifier. The failure must now be surfaced.
func TestPoleZeroErrSurfaced(t *testing.T) {
	nl := netlist.New("deep rc ladder")
	nl.AddV("V1", "in", "0", 1)
	prev := "in"
	const sections = 66
	for i := 0; i < sections; i++ {
		node := fmt.Sprintf("n%d", i)
		if i == sections-1 {
			node = "out"
		}
		nl.AddR(fmt.Sprintf("R%d", i), prev, node, 1e3)
		nl.AddC(fmt.Sprintf("C%d", i), node, "0", 1e-9)
		prev = node
	}
	rep, err := Analyze(nl, "out")
	if err != nil {
		t.Fatalf("Analyze should succeed (the AC sweep is fine): %v", err)
	}
	if rep.PoleZeroErr == "" {
		t.Fatal("PoleZeroErr empty: root-finder failure was swallowed again")
	}
	if rep.Stable {
		t.Error("Stable = true despite failed pole extraction")
	}
	if rep.NumPoles != 0 {
		t.Errorf("NumPoles = %d, want 0 (unknown)", rep.NumPoles)
	}
	if !strings.Contains(rep.String(), "pz-error") {
		t.Errorf("String() = %q, want the pole/zero failure surfaced", rep.String())
	}
	// A healthy circuit keeps the field empty.
	rep, err = Analyze(buildNMC(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if rep.PoleZeroErr != "" {
		t.Errorf("healthy NMC got PoleZeroErr = %q", rep.PoleZeroErr)
	}
}
