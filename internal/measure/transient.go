package measure

import (
	"fmt"
	"math"
	"strings"

	"artisan/internal/mna"
	"artisan/internal/netlist"
	"artisan/internal/units"
)

// Large-signal characterization: slew rate and settling time from a
// closed-loop step response, using the transient engine with saturating
// transconductance stages. The classical large-signal figure of merit
// FoM_L = SR·CL/Power complements the paper's small-signal Eq. (6).

// StepReport summarises one step response.
type StepReport struct {
	Final     float64 // settled output voltage, V
	SlewRate  float64 // max |dV/dt| during the transition, V/s
	Settle1   float64 // time to stay within ±1% of Final, s (0 if never)
	Overshoot float64 // peak excursion beyond Final, fraction of step
	Points    []mna.TranPoint
}

// String renders the report compactly.
func (r StepReport) String() string {
	return fmt.Sprintf("final=%sV SR=%sV/s settle1%%=%ss overshoot=%.1f%%",
		units.Format(r.Final), units.Format(r.SlewRate),
		units.Format(r.Settle1), r.Overshoot*100)
}

// UnityFeedback rewires a behavioral opamp netlist as a unity-gain buffer:
// the input stage's inverting control terminal moves from ground to the
// output node, closing the loop. The returned netlist is a deep copy.
func UnityFeedback(nl *netlist.Netlist, inputStage, out string) (*netlist.Netlist, error) {
	cl := nl.Clone()
	d := cl.Find(inputStage)
	if d == nil {
		return nil, fmt.Errorf("measure: input stage %q not found", inputStage)
	}
	if d.Kind != netlist.VCCS {
		return nil, fmt.Errorf("measure: input stage %q is not a VCCS", inputStage)
	}
	// The three-stage forward path (+, +, −) is inverting overall, so
	// negative feedback requires the output on the *non-inverting* ctrl
	// terminal: v_ctrl = v_out − v_in and V(out) ≈ −A·(v_out − v_in)
	// settles at v_in.
	d.Nodes[2], d.Nodes[3] = out, d.Nodes[2]
	cl.Title += " (unity feedback)"
	return cl, nil
}

// SatLimits derives per-stage maximum output currents from the power
// model: a class-A stage can deliver at most its bias current, and the
// differential input stage at most its tail current (2·Id).
func SatLimits(nl *netlist.Netlist, pm PowerModel) map[string]float64 {
	out := map[string]float64{}
	for _, d := range nl.Devices {
		if d.Kind != netlist.VCCS {
			continue
		}
		id := math.Abs(d.Value) / pm.GmOverId
		if strings.EqualFold(d.Name, pm.InputStage) {
			out[d.Name] = pm.InputFactor * id
		} else {
			out[d.Name] = id
		}
	}
	return out
}

// StepOpts configures the closed-loop step characterization.
type StepOpts struct {
	StepV      float64 // input step amplitude, V
	TEnd       float64 // observation window, s (0 = auto from GBW)
	Dt         float64 // timestep, s (0 = auto)
	InputStage string  // defaults to "Gm1"
	Linear     bool    // skip saturation limits (pure small-signal step)
	Power      PowerModel
}

// DefaultStepOpts characterizes a 0.5 V step (large enough to slew a
// typical design).
func DefaultStepOpts() StepOpts {
	return StepOpts{StepV: 0.5, InputStage: "Gm1", Power: DefaultPowerModel()}
}

// StepAnalyze closes the loop around the opamp netlist (unity feedback),
// applies a voltage step, and extracts slew rate, settling and overshoot.
// The netlist must contain an excitation source "Vin" driving the input
// stage and an output node named out.
func StepAnalyze(nl *netlist.Netlist, out string, opts StepOpts) (StepReport, error) {
	if opts.InputStage == "" {
		opts.InputStage = "Gm1"
	}
	if opts.StepV <= 0 {
		return StepReport{}, fmt.Errorf("measure: non-positive step %g", opts.StepV)
	}
	fb, err := UnityFeedback(nl, opts.InputStage, out)
	if err != nil {
		return StepReport{}, err
	}
	// Scale the excitation to the requested step.
	if v := fb.Find("Vin"); v != nil {
		v.Value = opts.StepV
	} else {
		return StepReport{}, fmt.Errorf("measure: netlist has no Vin source")
	}
	c, err := mna.Compile(fb)
	if err != nil {
		return StepReport{}, err
	}

	// Auto window: ~60 closed-loop time constants (closed-loop pole near
	// the GBW), capped for slew-dominated responses. Only the open-loop
	// GBW is needed to size the window, so a bisection probe replaces the
	// full sweep-plus-root-find analysis; trapezoidal integration is
	// second order, and τ/16 keeps the slew phase resolved by ~50 steps
	// while leaving the settling metrics within their tolerances.
	tEnd, dt := opts.TEnd, opts.Dt
	if tEnd == 0 || dt == 0 {
		ol, err := mna.Compile(nl)
		if err != nil {
			return StepReport{}, err
		}
		gbw, err := bisectGBW(ol, out, 0)
		if err != nil {
			return StepReport{}, err
		}
		if gbw <= 0 {
			return StepReport{}, fmt.Errorf("measure: cannot auto-size window (no GBW)")
		}
		tau := 1 / (2 * math.Pi * gbw)
		if tEnd == 0 {
			tEnd = 60 * tau
		}
		if dt == 0 {
			dt = tau / 16
		}
	}

	tr := mna.TranOpts{TEnd: tEnd, Dt: dt}
	if !opts.Linear {
		tr.SatLimits = SatLimits(fb, opts.Power)
	}
	pts, err := c.Transient(out, tr)
	if err != nil {
		return StepReport{}, err
	}
	return stepMetrics(pts, opts.StepV), nil
}

// stepMetrics extracts the report from a waveform.
func stepMetrics(pts []mna.TranPoint, stepV float64) StepReport {
	r := StepReport{Points: pts}
	if len(pts) < 3 {
		return r
	}
	// Final value: mean of the last 2% of samples.
	tail := len(pts) / 50
	if tail < 1 {
		tail = 1
	}
	sum := 0.0
	for _, p := range pts[len(pts)-tail:] {
		sum += p.V
	}
	r.Final = sum / float64(tail)

	peak := 0.0
	for i := 1; i < len(pts); i++ {
		s := math.Abs(pts[i].V-pts[i-1].V) / (pts[i].T - pts[i-1].T)
		if s > r.SlewRate {
			r.SlewRate = s
		}
		exc := (pts[i].V - r.Final) * sign(r.Final)
		if exc > peak {
			peak = exc
		}
	}
	if stepV > 0 {
		r.Overshoot = peak / stepV
	}
	// Settling: last time the waveform was outside ±1% of Final.
	band := 0.01 * math.Abs(r.Final)
	if band == 0 {
		band = 0.01 * stepV
	}
	for i := len(pts) - 1; i >= 0; i-- {
		if math.Abs(pts[i].V-r.Final) > band {
			if i+1 < len(pts) {
				r.Settle1 = pts[i+1].T
			} else {
				r.Settle1 = 0 // never settled inside the window
			}
			break
		}
	}
	return r
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// FoMLarge computes the large-signal figure of merit SR[V/µs]·CL[pF]/Power[mW].
func FoMLarge(slewRate, clF, powerW float64) float64 {
	if powerW <= 0 {
		return 0
	}
	return (slewRate / 1e6) * (clF / 1e-12) / (powerW / 1e-3)
}
