package cluster

// FuzzJournalReplay feeds arbitrary bytes to the store as a journal
// file. The recovery contract under any corruption: OpenStore never
// panics, and whenever it succeeds the store must still accept a new
// append and replay it on the next open — a damaged history may lose
// its own records to quarantine, but must never poison post-crash
// writes (this is what the torn-newline repair guarantees).

import (
	"errors"
	"os"
	"testing"
)

func FuzzJournalReplay(f *testing.F) {
	// Seeds mirror testdata/fuzz/FuzzJournalReplay: intact framed lines,
	// legacy bare JSON, a torn tail without newline, a bit-flipped frame,
	// and framing edge cases.
	f.Add([]byte(""))
	f.Add([]byte("0aee147e\t{\"op\":\"submit\",\"id\":\"fz-j-1\",\"kind\":\"design\",\"key\":\"K\",\"payload\":{\"g\":1}}\n" +
		"bc976c8d\t{\"op\":\"done\",\"id\":\"fz-j-1\",\"result\":{\"ok\":true}}\n"))
	f.Add([]byte("{\"op\":\"submit\",\"id\":\"legacy-1\",\"kind\":\"k\"}\n{\"op\":\"start\",\"id\":\"legacy-1\"}\n"))
	f.Add([]byte("0aee147e\t{\"op\":\"submit\",\"id\":\"fz-j-1\",\"kind\":\"design\",\"key\":\"K\",\"payload\":{\"g\":1}}\n" +
		"deadbeef\t{\"op\":\"sub")) // torn tail, no newline
	f.Add([]byte("1aee147e\t{\"op\":\"submit\",\"id\":\"fz-j-1\",\"kind\":\"design\",\"key\":\"K\",\"payload\":{\"g\":1}}\nx\n")) // flipped crc + junk
	f.Add([]byte("\n\n\t\n{not json\nzz\tzz\n"))

	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(JournalPath(dir), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			return // oversized lines etc. may refuse to open; only panics are bugs
		}
		if err := s.Append(Record{Op: OpSubmit, ID: "fz-j-999", Kind: "k"}); err != nil {
			t.Fatalf("append onto recovered journal: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		re, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer re.Close()
		if _, ok := re.State("fz-j-999"); !ok {
			t.Fatal("record appended after recovery was lost on replay")
		}
		// The scan API must agree with OpenStore on the same bytes.
		if _, err := ScanJournal(JournalPath(dir), nil, nil); err != nil && !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("ScanJournal after reopen: %v", err)
		}
	})
}
