package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artisan/internal/resilience"
)

// fakeWorker is a minimal artisan-server stand-in: /healthz with a node
// id and a drain switch, plus echo handlers that tag responses with the
// node id so tests can see where a request landed.
type fakeWorker struct {
	id       string
	draining atomic.Bool
	hits     atomic.Int64
	srv      *httptest.Server
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	w := &fakeWorker{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		if w.draining.Load() {
			status = http.StatusServiceUnavailable
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(status)
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id})
	})
	echo := func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		_ = json.NewEncoder(rw).Encode(map[string]string{
			"node": w.id, "body": string(body), "rid": r.Header.Get("X-Request-ID"),
		})
	}
	mux.HandleFunc("POST /design", echo)
	mux.HandleFunc("POST /jobs", echo)
	mux.HandleFunc("GET /jobs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		id := r.PathValue("id")
		if !strings.HasPrefix(id, w.id+"-j-") {
			http.Error(rw, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id, "job": id})
	})
	mux.HandleFunc("GET /stats", func(rw http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id})
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func newTestRouter(t *testing.T, workers ...*fakeWorker) *Router {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.srv.URL
	}
	rt, err := NewRouter(RouterConfig{
		Nodes:           urls,
		HealthInterval:  20 * time.Millisecond,
		HealthTimeout:   time.Second,
		Retry:           resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		BreakerCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postJSON(t *testing.T, url, body string) (int, map[string]string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	blob, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(blob, &out)
	return resp.StatusCode, out, resp.Header
}

func TestShardKeyCanonical(t *testing.T) {
	a := ShardKey([]byte(`{"b": 2, "a": 1}`))
	b := ShardKey([]byte(`{"a":1,"b":2}`))
	if a != b {
		t.Fatalf("key-order variants shard differently: %q vs %q", a, b)
	}
	if ShardKey([]byte(`{"a":1}`)) == ShardKey([]byte(`{"a":2}`)) {
		t.Fatal("different bodies collapsed to one shard key")
	}
	if ShardKey([]byte("not json")) != "not json" {
		t.Fatal("non-JSON body must hash as raw bytes")
	}
}

// TestRouterShardsDeterministically: identical bodies — including
// key-order variants — always land on the same node, so that node's
// coalescing dedups them fleet-wide; distinct bodies spread out.
func TestRouterShardsDeterministically(t *testing.T) {
	w1, w2 := newFakeWorker(t, "n1"), newFakeWorker(t, "n2")
	rt := newTestRouter(t, w1, w2)
	front := httptest.NewServer(rt)
	defer front.Close()

	var owner string
	for i := 0; i < 6; i++ {
		body := `{"group":"G-1","seed":7}`
		if i%2 == 1 {
			body = `{"seed":7,  "group":"G-1"}` // same request, different spelling
		}
		status, out, _ := postJSON(t, front.URL+"/design", body)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if owner == "" {
			owner = out["node"]
		}
		if out["node"] != owner {
			t.Fatalf("duplicate request moved from %s to %s", owner, out["node"])
		}
		if out["rid"] == "" {
			t.Error("proxied request missing X-Request-ID")
		}
	}

	spread := map[string]bool{}
	for i := 0; i < 40; i++ {
		_, out, _ := postJSON(t, front.URL+"/design", fmt.Sprintf(`{"seed":%d}`, i))
		spread[out["node"]] = true
	}
	if len(spread) != 2 {
		t.Fatalf("40 distinct bodies all landed on %v; ring not spreading", spread)
	}
}

// TestRouterFailover: a dead node's keys fail over to the survivor; the
// response still reaches the client.
func TestRouterFailover(t *testing.T) {
	w1, w2 := newFakeWorker(t, "n1"), newFakeWorker(t, "n2")
	rt := newTestRouter(t, w1, w2)
	front := httptest.NewServer(rt)
	defer front.Close()

	// Find a body owned by w2, then kill w2.
	var body string
	for i := 0; ; i++ {
		b := fmt.Sprintf(`{"seed":%d}`, i)
		owners := rt.ring.Owners(ShardKey([]byte(b)), 2)
		if owners[0] == w2.srv.URL {
			body = b
			break
		}
	}
	w2.srv.Close()

	status, out, _ := postJSON(t, front.URL+"/design", body)
	if status != http.StatusOK {
		t.Fatalf("status %d after node death, want failover 200", status)
	}
	if out["node"] != "n1" {
		t.Fatalf("failover served by %q, want n1", out["node"])
	}
}

// TestRouterShedPassThrough: a 503 with Retry-After is the admission
// layer shedding load deliberately — the router must deliver it, not
// hammer the next node.
func TestRouterShedPassThrough(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			_ = json.NewEncoder(rw).Encode(map[string]string{"node": "shed"})
			return
		}
		rw.Header().Set("Retry-After", "7")
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = rw.Write([]byte(`{"error":"shed"}`))
	}))
	defer shedding.Close()
	w2 := newFakeWorker(t, "n2")

	rt, err := NewRouter(RouterConfig{
		Nodes:          []string{shedding.URL, w2.srv.URL},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// Find a body owned by the shedding node.
	var body string
	for i := 0; ; i++ {
		b := fmt.Sprintf(`{"seed":%d}`, i)
		if owners := rt.ring.Owners(ShardKey([]byte(b)), 2); owners[0] == shedding.URL {
			body = b
			break
		}
	}
	status, _, hdr := postJSON(t, front.URL+"/design", body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the deliberate 503 passed through", status)
	}
	if hdr.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want preserved 7", hdr.Get("Retry-After"))
	}
	if w2.hits.Load() != 0 {
		t.Fatal("router failed a deliberate shed over to the next node")
	}
}

// TestRouterDrainingNodeLeavesRing: a node turning 503 on /healthz is
// removed on the next probe; traffic and the router's own /healthz
// reflect it, and the node rejoins when it recovers.
func TestRouterDrainingNodeLeavesRing(t *testing.T) {
	w1, w2 := newFakeWorker(t, "n1"), newFakeWorker(t, "n2")
	rt := newTestRouter(t, w1, w2)
	front := httptest.NewServer(rt)
	defer front.Close()

	w2.draining.Store(true)
	waitForCond(t, func() bool { return rt.ring.Size() == 1 })

	for i := 0; i < 10; i++ {
		status, out, _ := postJSON(t, front.URL+"/design", fmt.Sprintf(`{"seed":%d}`, i))
		if status != http.StatusOK || out["node"] != "n1" {
			t.Fatalf("request %d: status %d node %q during drain", i, status, out["node"])
		}
	}

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Healthy int `json:"healthy"`
		Total   int `json:"total"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Healthy != 1 || health.Total != 2 {
		t.Fatalf("router health = %d/%d, want 1/2", health.Healthy, health.Total)
	}

	w2.draining.Store(false)
	waitForCond(t, func() bool { return rt.ring.Size() == 2 })
}

// TestRouterAllNodesDown: with every node out, /healthz is 503 and
// sharded requests are rejected, not hung.
func TestRouterAllNodesDown(t *testing.T) {
	w1 := newFakeWorker(t, "n1")
	rt := newTestRouter(t, w1)
	front := httptest.NewServer(rt)
	defer front.Close()

	w1.draining.Store(true)
	waitForCond(t, func() bool { return rt.ring.Size() == 0 })

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router /healthz = %d with no healthy nodes, want 503", resp.StatusCode)
	}
	status, _, _ := postJSON(t, front.URL+"/design", `{"seed":1}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("sharded request = %d with empty ring, want 503", status)
	}
}

// TestRouterJobByIDPrefixRouting: ids "<node>-j-<n>" route straight to
// their owner once the health loop has learned node ids.
func TestRouterJobByIDPrefixRouting(t *testing.T) {
	w1, w2 := newFakeWorker(t, "n1"), newFakeWorker(t, "n2")
	rt := newTestRouter(t, w1, w2)
	front := httptest.NewServer(rt)
	defer front.Close()

	// Wait for the health loop's first probe to learn both node ids.
	waitForCond(t, func() bool {
		for _, n := range rt.nodes {
			if n.id() == "" {
				return false
			}
		}
		return true
	})
	resp, err := http.Get(front.URL + "/jobs/n2-j-5")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["node"] != "n2" || out["job"] != "n2-j-5" {
		t.Fatalf("status %d out %v, want n2 to answer", resp.StatusCode, out)
	}
	if w1.hits.Load() != 0 {
		t.Error("prefix-routed poll also hit n1")
	}

	// Unknown job id: fans out, then reports 404.
	resp, err = http.Get(front.URL + "/jobs/zz-j-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job id = %d, want 404", resp.StatusCode)
	}
}

// TestRouterStatsFanout merges per-node stats with health flags.
func TestRouterStatsFanout(t *testing.T) {
	w1, w2 := newFakeWorker(t, "n1"), newFakeWorker(t, "n2")
	rt := newTestRouter(t, w1, w2)
	front := httptest.NewServer(rt)
	defer front.Close()

	resp, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Nodes []struct {
			Node    string          `json:"node"`
			Healthy bool            `json:"healthy"`
			Stats   json.RawMessage `json:"stats"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != 2 {
		t.Fatalf("stats fanout covered %d nodes", len(out.Nodes))
	}
	for _, n := range out.Nodes {
		if !n.Healthy || len(n.Stats) == 0 {
			t.Fatalf("node %+v missing stats", n)
		}
	}
}

// TestRouterConfigValidation rejects empty and duplicate node lists.
func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRouter(RouterConfig{Nodes: []string{"http://a", "http://a/"}}); err == nil {
		t.Error("duplicate node URL accepted")
	}
	if _, err := NewRouter(RouterConfig{Nodes: []string{""}}); err == nil {
		t.Error("empty node URL accepted")
	}
}
