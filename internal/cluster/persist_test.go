package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"artisan/internal/jobs"
)

// runCounter counts executor runs per payload value — the "side effect"
// the crash-recovery property audits for duplicates.
type runCounter struct {
	mu   sync.Mutex
	runs map[int]int
}

func newRunCounter() *runCounter { return &runCounter{runs: make(map[int]int)} }

func (c *runCounter) inc(v int) {
	c.mu.Lock()
	c.runs[v]++
	c.mu.Unlock()
}

func (c *runCounter) get(v int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[v]
}

type testPayload struct {
	V int `json:"v"`
}

// testExecutor builds the standard test executor: Run doubles the
// payload value (after optionally blocking via gate for values in
// blocked) and counts the side effect.
func testExecutor(counter *runCounter, blocked map[int]bool, gate chan struct{}) Executor {
	return Executor{
		Run: func(ctx context.Context, payload json.RawMessage) (any, error) {
			var p testPayload
			if err := json.Unmarshal(payload, &p); err != nil {
				return nil, err
			}
			if blocked[p.V] {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			counter.inc(p.V)
			return p.V * 2, nil
		},
		Decode: func(result json.RawMessage) (any, error) {
			var v int
			if err := json.Unmarshal(result, &v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func payloadFor(v int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"v":%d}`, v))
}

// TestPersistCrashRecovery is the crash-recovery property test of the
// distributed serving tier: a store-backed manager is killed mid-batch
// (jobs done, jobs running, jobs still queued), the journal is reopened
// by a fresh manager, and after Replay every submitted job must reach a
// terminal state exactly once — completed jobs keep their journaled
// result (zero re-runs: exactly-once visibility), interrupted and queued
// jobs re-execute exactly once (at-least-once execution), and duplicate
// submissions after recovery are cache hits, not new side effects.
func TestPersistCrashRecovery(t *testing.T) {
	cases := []struct{ done, running, queued int }{
		{done: 3, running: 2, queued: 3},
		{done: 1, running: 1, queued: 5},
		{done: 5, running: 2, queued: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("d%d_r%d_q%d", tc.done, tc.running, tc.queued), func(t *testing.T) {
			dir := t.TempDir()
			total := tc.done + tc.running + tc.queued

			// ---- Phase 1: run until mid-batch, then crash. ----
			store1, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gate := make(chan struct{})
			t.Cleanup(func() { close(gate) }) // unstick abandoned phase-1 workers
			blocked := make(map[int]bool)
			for v := tc.done; v < tc.done+tc.running; v++ {
				blocked[v] = true
			}
			c1 := newRunCounter()
			// Exactly `running` workers: the blocked jobs pin every worker, so
			// later submissions provably stay queued.
			workers := tc.running
			if workers < 1 {
				workers = 1
			}
			m1 := jobs.NewManager(jobs.Config{Workers: workers, Queue: total + 4})
			pm1 := NewPersistentManager(m1, store1)
			pm1.Register("test", testExecutor(c1, blocked, gate))

			submit := func(v int) {
				t.Helper()
				_, shared, err := pm1.Submit("test", payloadFor(v), jobs.SubmitOpts{
					Key: fmt.Sprintf("key-%d", v), Coalesce: true,
				})
				if err != nil || shared {
					t.Fatalf("submit %d: shared=%v err=%v", v, shared, err)
				}
			}
			for v := 0; v < tc.done; v++ {
				submit(v)
			}
			// Terminal records are journaled by watch goroutines; wait for
			// all of them before wedging the workers.
			waitFor(t, "done jobs journaled", func() bool { return len(store1.Done()) == tc.done })
			for v := tc.done; v < total; v++ {
				submit(v)
			}
			if tc.running > 0 {
				waitFor(t, "running jobs journaled as started", func() bool {
					interrupted := 0
					for _, p := range store1.Pending() {
						if p.Interrupted() {
							interrupted++
						}
					}
					return interrupted == tc.running
				})
			}
			// Crash: the journal closes with the batch mid-flight. The
			// abandoned manager's goroutines die with the test.
			if err := store1.Close(); err != nil {
				t.Fatal(err)
			}

			// ---- Phase 2: reopen, replay, drain. ----
			store2, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer store2.Close()
			c2 := newRunCounter()
			m2 := jobs.NewManager(jobs.Config{Workers: 2, Queue: total + 4})
			pm2 := NewPersistentManager(m2, store2)
			pm2.Register("test", testExecutor(c2, nil, nil))
			stats, err := pm2.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if stats.ResultsWarmed != tc.done {
				t.Errorf("ResultsWarmed = %d, want %d", stats.ResultsWarmed, tc.done)
			}
			if stats.Resubmitted != tc.running+tc.queued {
				t.Errorf("Resubmitted = %d, want %d", stats.Resubmitted, tc.running+tc.queued)
			}
			if stats.Interrupted != tc.running {
				t.Errorf("Interrupted = %d, want %d", stats.Interrupted, tc.running)
			}

			waitFor(t, "all jobs terminal after replay", func() bool { return len(store2.Pending()) == 0 })

			// Exactly once terminal: every logical job is done, none twice
			// (the state map keys on logical id, so a duplicate would surface
			// as a wrong Done count or a leftover pending entry).
			done := store2.Done()
			if len(done) != total {
				t.Fatalf("Done = %d jobs after recovery, want %d", len(done), total)
			}
			seen := map[string]bool{}
			for _, d := range done {
				if seen[d.ID] {
					t.Errorf("job %s terminal twice", d.ID)
				}
				seen[d.ID] = true
			}
			// No duplicate side effects: completed-before-crash jobs never
			// re-run; interrupted and queued jobs re-run exactly once.
			for v := 0; v < tc.done; v++ {
				if n := c2.get(v); n != 0 {
					t.Errorf("done-before-crash job %d re-ran %d times after recovery", v, n)
				}
			}
			for v := tc.done; v < total; v++ {
				if n := c2.get(v); n != 1 {
					t.Errorf("pending job %d ran %d times after recovery, want 1", v, n)
				}
			}

			// Exactly-once visibility: a duplicate of a completed job is a
			// cache hit with the journaled result — no new execution.
			j, shared, err := pm2.Submit("test", payloadFor(0), jobs.SubmitOpts{Key: "key-0", Coalesce: true})
			if err != nil {
				t.Fatal(err)
			}
			v, err := j.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := v.(int); !ok || got != 0 {
				t.Errorf("duplicate submit result = %v, want warmed 0", v)
			}
			if !shared && !j.Snapshot().Cached {
				t.Error("duplicate submit after recovery missed the warmed cache")
			}
			if n := c2.get(0); n != 0 {
				t.Errorf("duplicate submit re-ran job 0 %d times", n)
			}
		})
	}
}

// TestPersistFailedJobJournaled: a failing executor journals OpFail, and
// replay does not resurrect failed jobs.
func TestPersistFailedJobJournaled(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.NewManager(jobs.Config{Workers: 1, Queue: 8})
	pm := NewPersistentManager(m, store)
	pm.Register("boom", Executor{
		Run: func(ctx context.Context, _ json.RawMessage) (any, error) {
			return nil, fmt.Errorf("kaput")
		},
	})
	j, _, err := pm.Submit("boom", json.RawMessage(`{}`), jobs.SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("want job error")
	}
	waitFor(t, "fail journaled", func() bool { return len(store.Pending()) == 0 })
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	pm2 := NewPersistentManager(jobs.NewManager(jobs.Config{Workers: 1, Queue: 8}), store2)
	pm2.Register("boom", Executor{Run: func(ctx context.Context, _ json.RawMessage) (any, error) {
		t.Error("failed job re-executed on replay")
		return nil, nil
	}})
	stats, err := pm2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resubmitted != 0 || stats.ResultsWarmed != 0 {
		t.Errorf("replay of a failed job = %+v, want nothing", stats)
	}
}

// TestPersistUnknownKind: submitting an unregistered kind fails fast,
// before anything is journaled.
func TestPersistUnknownKind(t *testing.T) {
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pm := NewPersistentManager(jobs.NewManager(jobs.Config{Workers: 1, Queue: 1}), store)
	if _, _, err := pm.Submit("nope", json.RawMessage(`{}`), jobs.SubmitOpts{}); err == nil {
		t.Fatal("unregistered kind accepted")
	}
	if store.Len() != 0 {
		t.Fatalf("store journaled %d jobs for a rejected submit", store.Len())
	}
}
