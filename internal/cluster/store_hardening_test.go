package cluster

// Crash/corruption hardening tests for the journal: CRC framing,
// legacy-line compatibility, mid-file corruption quarantine, torn-tail
// repair, and read-only poisoning on write failure. These pin down the
// durability contract the chaos harness (internal/chaos) exercises
// end-to-end.

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// readJournalLines returns the journal's non-empty lines.
func readJournalLines(t *testing.T, dir string) [][]byte {
	t.Helper()
	blob, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, line := range bytes.Split(blob, []byte{'\n'}) {
		if len(line) > 0 {
			out = append(out, line)
		}
	}
	return out
}

// TestStoreCRCFraming: every appended line carries a verifiable CRC32C
// frame, and the decoder round-trips it as a non-legacy record.
func TestStoreCRCFraming(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k", Payload: json.RawMessage(`{"x":1}`)})
	mustAppend(t, s, Record{Op: OpDone, ID: "a", Result: json.RawMessage(`{"ok":true}`)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := readJournalLines(t, dir)
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		if idx := bytes.IndexByte(line, journalFrameSep); idx != crcHexLen {
			t.Fatalf("line %d: frame separator at %d, want %d: %q", i, idx, crcHexLen, line)
		}
		rec, legacy, err := decodeJournalLine(line)
		if err != nil {
			t.Fatalf("line %d fails its own CRC: %v", i, err)
		}
		if legacy {
			t.Fatalf("line %d decoded as legacy; new appends must be framed", i)
		}
		if rec.ID != "a" {
			t.Fatalf("line %d decoded id %q", i, rec.ID)
		}
	}
}

// TestStoreLegacyJournalReplay: a pre-CRC journal of bare JSON lines
// replays cleanly, is counted as legacy, and new appends to the same
// file are framed.
func TestStoreLegacyJournalReplay(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"op":"submit","id":"old-1","kind":"design","key":"K1","payload":{"g":"G-1"}}
{"op":"start","id":"old-1"}
{"op":"done","id":"old-1","result":{"ff":42}}
{"op":"submit","id":"old-2","kind":"design"}
`
	if err := os.WriteFile(JournalPath(dir), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t, dir)
	st := s.Stats()
	if st.Journal.Records != 4 || st.Journal.Legacy != 4 || st.Journal.Corrupt != 0 {
		t.Fatalf("legacy journal stats = %+v, want 4 records all legacy", st.Journal)
	}
	done := s.Done()
	if len(done) != 1 || done[0].ID != "old-1" || string(done[0].Result) != `{"ff":42}` {
		t.Fatalf("Done = %+v, want old-1 with its journaled result", done)
	}
	if p := s.Pending(); len(p) != 1 || p[0].ID != "old-2" {
		t.Fatalf("Pending = %+v, want [old-2]", p)
	}
	// New appends onto the legacy file use the framed format.
	mustAppend(t, s, Record{Op: OpDone, ID: "old-2"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := readJournalLines(t, dir)
	last := lines[len(lines)-1]
	if _, legacyLine, err := decodeJournalLine(last); err != nil || legacyLine {
		t.Fatalf("append after legacy replay not CRC-framed: %q (err %v)", last, err)
	}
}

// TestStoreCorruptRecordQuarantined: a bit flip in a mid-file record is
// detected by the CRC, quarantined to the sidecar, counted — and the
// records around it survive. The damaged job falls back to its last
// intact state (pending), which is re-execution, not silent loss.
func TestStoreCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k", Key: "ka"})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "b", Kind: "k", Key: "kb"})
	mustAppend(t, s, Record{Op: OpDone, ID: "a", Result: json.RawMessage(`{"v":1}`)})
	mustAppend(t, s, Record{Op: OpDone, ID: "b", Result: json.RawMessage(`{"v":2}`)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the third line (done a) — mid-file, so the
	// torn-tail exemption must not apply.
	blob, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(blob, []byte{'\n'})
	lines[2][crcHexLen+5] ^= 0x01
	if err := os.WriteFile(JournalPath(dir), bytes.Join(lines, []byte{'\n'}), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	st := re.Stats()
	if st.Journal.Corrupt != 1 || st.Journal.TornTail {
		t.Fatalf("stats = %+v, want exactly 1 corrupt, no torn tail", st.Journal)
	}
	if st.Journal.Records != 3 {
		t.Fatalf("records = %d, want 3 intact survivors", st.Journal.Records)
	}
	qblob, err := os.ReadFile(re.QuarantinePath())
	if err != nil {
		t.Fatalf("quarantine sidecar missing: %v", err)
	}
	if n := bytes.Count(qblob, []byte{'\n'}); n != 1 {
		t.Fatalf("quarantine holds %d lines, want 1", n)
	}
	// Job a lost its done record: it must surface as pending (replay will
	// re-run it), never vanish.
	if js, ok := re.State("a"); !ok || js.Terminal() {
		t.Fatalf("State(a) = %+v ok=%v, want intact and non-terminal", js, ok)
	}
	if js, ok := re.State("b"); !ok || js.Status != OpDone {
		t.Fatalf("State(b) = %+v ok=%v, want done untouched", js, ok)
	}
}

// TestStoreTornTailRepair: a journal whose final line lacks its newline
// (torn mid-write) is newline-terminated on open, so the next append
// starts a fresh line instead of gluing onto the fragment — the good
// post-crash record must survive the next reopen.
func TestStoreTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(JournalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0badc0de` + "\t" + `{"op":"submit","id":"to`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	if st := re.Stats(); !st.Journal.TornTail || st.Journal.Records != 1 {
		t.Fatalf("stats after torn tail = %+v, want TornTail with 1 record", st.Journal)
	}
	mustAppend(t, re, Record{Op: OpSubmit, ID: "b", Kind: "k"})
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation: the post-crash append must replay intact. The
	// once-torn fragment is now mid-file, so it graduates from "expected
	// crash artifact" to counted-and-quarantined corruption.
	re2 := openTestStore(t, dir)
	if _, ok := re2.State("b"); !ok {
		t.Fatal("record appended after torn-tail repair was lost on replay")
	}
	st := re2.Stats()
	if st.Journal.Records != 2 || st.Journal.Corrupt != 1 || st.Journal.TornTail {
		t.Fatalf("stats = %+v, want 2 records + 1 quarantined ex-tail", st.Journal)
	}
}

// TestStoreWriteFaultPoisons: a failed append flips the store read-only
// permanently — the failed record is not applied, later appends and
// Compact refuse with ErrStoreReadOnly even after the fault clears, and
// a fresh open over the same dir starts writable again.
func TestStoreWriteFaultPoisons(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	s, err := OpenStore(dir, StoreOptions{WriteFault: func() error {
		if fail.Load() {
			return errors.New("injected disk fault")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k"})
	fail.Store(true)
	if err := s.Append(Record{Op: OpSubmit, ID: "b", Kind: "k"}); !errors.Is(err, ErrStoreReadOnly) {
		t.Fatalf("faulted append err = %v, want ErrStoreReadOnly", err)
	}
	if _, ok := s.State("b"); ok {
		t.Fatal("failed record was applied to memory; state claims durability the journal lacks")
	}
	if !s.ReadOnly() {
		t.Fatal("store not read-only after append failure")
	}
	st := s.Stats()
	if !st.ReadOnly || !strings.Contains(st.ReadOnlyCause, "injected disk fault") {
		t.Fatalf("Stats = %+v, want ReadOnly with the original cause", st)
	}

	// The poison is sticky: a recovered disk does not quietly resume.
	fail.Store(false)
	if err := s.Append(Record{Op: OpSubmit, ID: "c", Kind: "k"}); !errors.Is(err, ErrStoreReadOnly) {
		t.Fatalf("append after fault cleared = %v, want sticky ErrStoreReadOnly", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrStoreReadOnly) {
		t.Fatalf("Compact on poisoned store = %v, want ErrStoreReadOnly", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same dir sees only what was durable and is
	// writable again.
	re := openTestStore(t, dir)
	if re.ReadOnly() {
		t.Fatal("reopened store inherited the poison")
	}
	if re.Len() != 1 {
		t.Fatalf("Len = %d after reopen, want only the durable record", re.Len())
	}
	mustAppend(t, re, Record{Op: OpSubmit, ID: "d", Kind: "k"})
}

// TestStoreIDsReturnsSubmitOrder: IDs — the restart id-space
// reservation input — lists every journaled logical id in submit order,
// including terminal ones (their ids are burned too).
func TestStoreIDsReturnsSubmitOrder(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "n0-j-1", Kind: "k"})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "n0-j-2", Kind: "k"})
	mustAppend(t, s, Record{Op: OpDone, ID: "n0-j-1"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestStore(t, dir)
	ids := re.IDs()
	if len(ids) != 2 || ids[0] != "n0-j-1" || ids[1] != "n0-j-2" {
		t.Fatalf("IDs = %v, want submit order including the done job", ids)
	}
}

// TestScanJournalMissingFile: scanning a path that does not exist is an
// empty journal, not an error — a fresh node's first boot.
func TestScanJournalMissingFile(t *testing.T) {
	stats, err := ScanJournal(filepath.Join(t.TempDir(), "absent.jsonl"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats != (JournalStats{}) {
		t.Fatalf("stats = %+v, want zero", stats)
	}
}
