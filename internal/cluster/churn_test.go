package cluster

// Property test: under continuous membership churn — nodes flapping
// between healthy and dead while clients submit — the router never
// drops an accepted request and never double-executes one. Every
// submission ends in exactly one of two states: acknowledged and
// processed by exactly one node, or rejected and processed by none.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"artisan/internal/resilience"
)

// churnWorker flips between serving and dead. While down it answers
// 503 on everything (no Retry-After — gateway-class, so the router
// fails over); while up it records each accepted body exactly once.
type churnWorker struct {
	id        string
	down      atomic.Bool
	processed *sync.Map // body → *atomic.Int64
	srv       *httptest.Server
}

func newChurnWorker(t *testing.T, id string, processed *sync.Map) *churnWorker {
	t.Helper()
	w := &churnWorker{id: id, processed: processed}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		if w.down.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id})
	})
	mux.HandleFunc("POST /jobs", func(rw http.ResponseWriter, r *http.Request) {
		if w.down.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		c, _ := w.processed.LoadOrStore(string(body), &atomic.Int64{})
		c.(*atomic.Int64).Add(1)
		rw.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id})
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

// TestRouterChurnNoDropNoDouble: concurrent clients submit unique
// bodies while a churn goroutine flaps node availability. Afterwards,
// (status accepted) ⇔ (processed exactly once) must hold for every
// body — no lost acks, no ghost executions, no double-answers.
func TestRouterChurnNoDropNoDouble(t *testing.T) {
	var processed sync.Map
	workers := []*churnWorker{
		newChurnWorker(t, "n1", &processed),
		newChurnWorker(t, "n2", &processed),
		newChurnWorker(t, "n3", &processed),
	}
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.srv.URL
	}
	rt, err := NewRouter(RouterConfig{
		Nodes:            urls,
		HealthInterval:   5 * time.Millisecond,
		HealthTimeout:    time.Second,
		Retry:            resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0.5, Seed: 7},
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Churn: flap random nodes for the duration of the client run.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				for _, w := range workers {
					w.down.Store(false)
				}
				return
			case <-time.After(3 * time.Millisecond):
				w := workers[rng.Intn(len(workers))]
				w.down.Store(!w.down.Load())
			}
		}
	}()

	const clients, perClient = 8, 25
	status := make([][]int, clients)
	var clientWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		status[c] = make([]int, perClient)
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{"client":%d,"req":%d}`, c, i)
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, "http://router/jobs", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rt.ServeHTTP(rec, req)
				status[c][i] = rec.Code
			}
		}(c)
	}
	clientWG.Wait()
	close(stop)
	churnWG.Wait()

	accepted, rejected := 0, 0
	for c := 0; c < clients; c++ {
		for i := 0; i < perClient; i++ {
			body := fmt.Sprintf(`{"client":%d,"req":%d}`, c, i)
			var count int64
			if v, ok := processed.Load(body); ok {
				count = v.(*atomic.Int64).Load()
			}
			switch code := status[c][i]; {
			case code == http.StatusAccepted:
				accepted++
				if count != 1 {
					t.Errorf("body %s: accepted but processed %d times, want exactly 1", body, count)
				}
			case code >= 500:
				rejected++
				if count != 0 {
					t.Errorf("body %s: rejected with %d but a node processed it %d times (ghost execution)", body, code, count)
				}
			default:
				t.Errorf("body %s: unexpected status %d", body, code)
			}
		}
	}
	if accepted+rejected != clients*perClient {
		t.Fatalf("answered %d of %d requests", accepted+rejected, clients*perClient)
	}
	if accepted == 0 {
		t.Fatal("churn killed every request; property vacuous — loosen the flap rate")
	}
	t.Logf("churn run: %d accepted / %d rejected, all consistent", accepted, rejected)
}
