package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"artisan/internal/jobs"
)

// Executor rehydrates one kind of persisted job. Run re-executes a job
// from its journaled payload; Decode turns a journaled result back into
// the in-memory value the result cache serves (so a replayed done job is
// indistinguishable from a live cache entry).
type Executor struct {
	Run    func(ctx context.Context, payload json.RawMessage) (any, error)
	Decode func(result json.RawMessage) (any, error)
}

// PersistentManager layers the Store onto a jobs.Manager: every
// acknowledged submission is journaled before the caller sees the job,
// state transitions are appended as they happen, and Replay rebuilds the
// manager after a restart — journaled results re-warm the result cache
// (exactly-once visibility: a duplicate request after restart is a cache
// hit, not a re-run) and non-terminal jobs are re-executed
// (at-least-once execution).
type PersistentManager struct {
	m     *jobs.Manager
	store *Store

	mu    sync.Mutex
	execs map[string]Executor

	// Replay accounting, surfaced on /stats.
	replayedPending atomic.Int64
	replayedResults atomic.Int64
}

// NewPersistentManager wires a store onto a manager. Register executors
// before Replay or the first Submit of their kind.
func NewPersistentManager(m *jobs.Manager, store *Store) *PersistentManager {
	return &PersistentManager{m: m, store: store, execs: make(map[string]Executor)}
}

// Manager exposes the wrapped jobs.Manager (introspection, shutdown).
func (p *PersistentManager) Manager() *jobs.Manager { return p.m }

// Store exposes the backing store (compaction, tests).
func (p *PersistentManager) Store() *Store { return p.store }

// Register installs the executor for one job kind.
func (p *PersistentManager) Register(kind string, ex Executor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.execs[kind] = ex
}

func (p *PersistentManager) executor(kind string) (Executor, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ex, ok := p.execs[kind]
	if !ok {
		return Executor{}, fmt.Errorf("cluster: no executor registered for job kind %q", kind)
	}
	return ex, nil
}

// Submit journals and enqueues one job of a registered kind. Cache hits
// and coalesced attaches are not journaled — their result visibility is
// already guaranteed by the journaled leader. The submit record is
// durable before Submit returns, so an acknowledged job survives a
// crash.
func (p *PersistentManager) Submit(kind string, payload json.RawMessage, opts jobs.SubmitOpts) (*jobs.Job, bool, error) {
	return p.submit(kind, payload, opts, "")
}

// submit is Submit plus the replay path: a non-empty logicalID marks a
// re-execution of an already-journaled job (an OpResume record instead
// of a fresh OpSubmit, keeping the journal's logical identity stable).
func (p *PersistentManager) submit(kind string, payload json.RawMessage, opts jobs.SubmitOpts, logicalID string) (*jobs.Job, bool, error) {
	ex, err := p.executor(kind)
	if err != nil {
		return nil, false, err
	}
	// The logical id is resolved after the manager assigns the job id on
	// first submit; the closure reads it through this cell.
	idCell := &atomic.Value{}
	if logicalID != "" {
		idCell.Store(logicalID)
	}
	fn := func(ctx context.Context) (any, error) {
		if id, ok := idCell.Load().(string); ok {
			_ = p.store.Append(Record{Op: OpStart, ID: id})
		}
		return ex.Run(ctx, payload)
	}
	j, shared, err := p.m.SubmitCoalesced(fn, opts)
	if err != nil {
		return nil, false, err
	}
	snap := j.Snapshot()
	if logicalID == "" {
		if shared || snap.Cached {
			return j, shared, nil // visibility covered by the journaled leader
		}
		logicalID = j.ID()
		idCell.Store(logicalID)
		if err := p.store.Append(Record{
			Op: OpSubmit, ID: logicalID, Kind: kind, Key: opts.Key, Payload: payload,
		}); err != nil {
			// The job is already queued but cannot be made durable. Cancel it
			// so the rejected submission does not execute as a ghost — the
			// caller is about to tell the client "not accepted", and a store
			// poisoned mid-flight must not keep burning workers on work
			// nobody can ever replay or account for.
			_ = p.m.Cancel(j.ID())
			return nil, false, err
		}
	} else {
		// Replay: journal the resume — and keep watching even when the
		// resubmission completed instantly off the warmed cache or attached
		// to another replayed job with the same key. Skipping the terminal
		// record here would leave the job pending in the journal forever,
		// and every future restart would re-submit it.
		_ = p.store.Append(Record{Op: OpResume, ID: logicalID})
	}
	go p.watch(logicalID, j)
	return j, shared, nil
}

// watch journals the terminal transition of one job.
func (p *PersistentManager) watch(logicalID string, j *jobs.Job) {
	_, _ = j.Wait(context.Background())
	snap := j.Snapshot()
	rec := Record{ID: logicalID}
	switch snap.Status {
	case jobs.StatusDone:
		rec.Op = OpDone
		if blob, err := json.Marshal(snap.Result); err == nil {
			rec.Result = blob
		}
	case jobs.StatusCancelled:
		rec.Op = OpCancel
		rec.Err = snap.Err
	default:
		rec.Op = OpFail
		rec.Err = snap.Err
	}
	_ = p.store.Append(rec)
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// ResultsWarmed is how many journaled done results were reinstalled
	// into the result cache.
	ResultsWarmed int `json:"resultsWarmed"`
	// Resubmitted is how many non-terminal jobs were re-executed.
	Resubmitted int `json:"resubmitted"`
	// Interrupted of those were mid-run when the previous process died.
	Interrupted int `json:"interrupted"`
}

// Replay rebuilds serving state from the journal: journaled done
// results are decoded and re-installed in the result cache under their
// original keys, then queued and interrupted jobs are resubmitted in
// their original order. Jobs whose key now hits the warmed cache
// complete instantly without re-running. Call once, after Register and
// before serving traffic.
func (p *PersistentManager) Replay() (ReplayStats, error) {
	var stats ReplayStats
	for _, d := range p.store.Done() {
		if d.Key == "" || len(d.Result) == 0 {
			continue
		}
		ex, err := p.executor(d.Kind)
		if err != nil {
			return stats, err
		}
		if ex.Decode == nil {
			continue
		}
		v, err := ex.Decode(d.Result)
		if err != nil {
			return stats, fmt.Errorf("cluster: replay decode %s: %w", d.ID, err)
		}
		p.m.WarmCache(d.Key, v)
		stats.ResultsWarmed++
	}
	for _, pend := range p.store.Pending() {
		if pend.Interrupted() {
			stats.Interrupted++
		}
		if _, _, err := p.submit(pend.Kind, pend.Payload, jobs.SubmitOpts{
			Key: pend.Key, Coalesce: pend.Key != "",
		}, pend.ID); err != nil {
			return stats, fmt.Errorf("cluster: replay resubmit %s: %w", pend.ID, err)
		}
		stats.Resubmitted++
	}
	p.replayedResults.Add(int64(stats.ResultsWarmed))
	p.replayedPending.Add(int64(stats.Resubmitted))
	return stats, nil
}

// ReplayCounts reports cumulative replay totals (for /stats).
func (p *PersistentManager) ReplayCounts() (resultsWarmed, resubmitted int64) {
	return p.replayedResults.Load(), p.replayedPending.Load()
}
