package cluster

import (
	"math"
	"sort"
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter with an injectable
// clock. Tokens refill continuously at Rate per second up to Burst; a
// take that cannot be covered reports how long until it could be — the
// Retry-After the server attaches to a 429.
type TokenBucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket starting full. rate <= 0 panics (an
// admission controller with no rate is a config error, not a default).
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if rate <= 0 {
		panic("cluster: token bucket rate must be > 0")
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{rate: rate, burst: burst, now: now, tokens: burst, last: now()}
}

// TakeN consumes n tokens if available. When it cannot, no tokens are
// consumed and wait is the time until n tokens will have accrued.
func (b *TokenBucket) TakeN(n float64) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// Tokens reports the current token count (refilled to now).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	return b.tokens
}

// AdmissionConfig tunes per-tenant admission control.
type AdmissionConfig struct {
	// Rate is the sustained request rate each tenant may submit, in
	// design items per second.
	Rate float64
	// Burst is the bucket depth — the instantaneous excursion a tenant is
	// allowed above the sustained rate. Default 2*Rate (min 1).
	Burst float64
	// MaxTenants bounds the tenant table so an attacker cannot exhaust
	// memory by inventing tenant names; beyond it, new tenants share the
	// overflow bucket. Default 1024.
	MaxTenants int
	// Now is the clock; tests substitute a fake. Default time.Now.
	Now func() time.Time
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Burst <= 0 {
		c.Burst = math.Max(1, 2*c.Rate)
	}
	if c.MaxTenants < 1 {
		c.MaxTenants = 1024
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// overflowTenant is the shared bucket for tenants beyond MaxTenants.
const overflowTenant = "!overflow"

// Admission is the per-tenant admission controller: one token bucket
// per tenant plus admit/shed counters. It decides only rate admission;
// queue-capacity shedding stays with the jobs manager's bounded queue.
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	tenants map[string]*tenantState
}

type tenantState struct {
	bucket   *TokenBucket
	admitted int64
	shed     int64
}

// NewAdmission builds the controller. A nil return means admission is
// disabled (Rate <= 0) — callers treat nil *Admission as admit-all.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Rate <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Admission{cfg: cfg, tenants: make(map[string]*tenantState)}
}

// Decision is the outcome of one admission check.
type Decision struct {
	OK bool
	// RetryAfter, when !OK, is how long until the tenant's bucket could
	// cover the request.
	RetryAfter time.Duration
}

func (a *Admission) tenant(name string) *tenantState {
	if t, ok := a.tenants[name]; ok {
		return t
	}
	if len(a.tenants) >= a.cfg.MaxTenants {
		if t, ok := a.tenants[overflowTenant]; ok {
			return t
		}
		name = overflowTenant
	}
	t := &tenantState{bucket: NewTokenBucket(a.cfg.Rate, a.cfg.Burst, a.cfg.Now)}
	a.tenants[name] = t
	return t
}

// AdmitN charges tenant n items against its bucket. A nil *Admission
// admits everything.
func (a *Admission) AdmitN(tenantName string, n int) Decision {
	if a == nil {
		return Decision{OK: true}
	}
	if n < 1 {
		n = 1
	}
	a.mu.Lock()
	t := a.tenant(tenantName)
	a.mu.Unlock()
	ok, wait := t.bucket.TakeN(float64(n))
	a.mu.Lock()
	if ok {
		t.admitted += int64(n)
	} else {
		t.shed += int64(n)
	}
	a.mu.Unlock()
	return Decision{OK: ok, RetryAfter: wait}
}

// TenantStats is the observable per-tenant admission state.
type TenantStats struct {
	Tenant   string  `json:"tenant"`
	Admitted int64   `json:"admitted"`
	Shed     int64   `json:"shed"`
	Tokens   float64 `json:"tokens"`
}

// Snapshot returns per-tenant stats sorted by tenant name.
func (a *Admission) Snapshot() []TenantStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]TenantStats, 0, len(a.tenants))
	for name, t := range a.tenants {
		out = append(out, TenantStats{
			Tenant: name, Admitted: t.admitted, Shed: t.shed, Tokens: t.bucket.Tokens(),
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Totals sums admitted and shed across tenants (for the aggregate
// artisan_admit_total / artisan_shed_total counters).
func (a *Admission) Totals() (admitted, shed int64) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range a.tenants {
		admitted += t.admitted
		shed += t.shed
	}
	return admitted, shed
}
