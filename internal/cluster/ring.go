package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Keys map to nodes
// deterministically: the same (members, vnodes, key) always yields the
// same owner, independent of join order, so every router replica and
// every test agrees on the shard map without coordination. Membership
// changes move only the keys whose arc changed hands — about K/N of
// them — which keeps per-node caches warm across a join or leave.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes is the virtual-node count per member; 128 keeps the
// max/min key-share spread under ~2x for small fleets.
const DefaultVNodes = 128

// NewRing builds an empty ring; vnodes < 1 takes DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// FNV-1a mixes short, similar strings (vnode labels like "n1#42")
	// poorly across the high bits; without a finalizer one member can own
	// half the ring. splitmix64's avalanche restores the balance.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(fmt.Sprintf("%s#%d", node, i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the member owning key — the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct members in preference order for key:
// the owner first, then the members found walking clockwise — the
// failover order the router tries when the owner is down.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
