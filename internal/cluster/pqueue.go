package cluster

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// ErrShed is the admission layer's load-shedding signal: the priority
// wait queue is full and the request must be rejected now (the server
// maps it to 429 + Retry-After).
var ErrShed = errors.New("cluster: overloaded, request shed")

// PQueue is the small priority queue in front of the worker pool. It
// hands out a bounded number of leases (sized to the pool plus its
// pending queue); when all leases are taken, callers wait in priority
// order — higher priority first, FIFO within a priority — up to a
// bounded wait-queue depth, beyond which Acquire sheds immediately with
// ErrShed. Releasing a lease wakes the best waiter, so under overload
// the pool drains in priority order rather than arrival order.
type PQueue struct {
	mu      sync.Mutex
	leases  int
	maxL    int
	waitCap int
	seq     int64
	waiters waiterHeap
	depth   map[string]int // per-tenant waiting count

	// onDepth, when set, observes per-tenant wait-queue depth changes
	// (the server mirrors them into a per-tenant gauge).
	onDepth func(tenant string, depth int)
}

type pqWaiter struct {
	pri    int
	seq    int64
	tenant string
	ready  chan struct{}
	index  int
}

// NewPQueue builds the gate: leases concurrent holders, waitCap queued
// waiters. Values below 1 take 1.
func NewPQueue(leases, waitCap int, onDepth func(tenant string, depth int)) *PQueue {
	if leases < 1 {
		leases = 1
	}
	if waitCap < 1 {
		waitCap = 1
	}
	return &PQueue{maxL: leases, waitCap: waitCap, depth: make(map[string]int), onDepth: onDepth}
}

// Acquire obtains a lease, waiting in priority order if none is free.
// The returned release must be called exactly once when the guarded work
// reaches a terminal state. Acquire sheds with ErrShed when the wait
// queue is full, and returns ctx.Err if the caller gives up first.
func (q *PQueue) Acquire(ctx context.Context, tenant string, pri int) (release func(), err error) {
	q.mu.Lock()
	if q.leases < q.maxL {
		q.leases++
		q.mu.Unlock()
		return q.releaseFunc(), nil
	}
	if q.waiters.Len() >= q.waitCap {
		q.mu.Unlock()
		return nil, ErrShed
	}
	q.seq++
	w := &pqWaiter{pri: pri, seq: q.seq, tenant: tenant, ready: make(chan struct{})}
	heap.Push(&q.waiters, w)
	q.bumpDepth(tenant, +1)
	q.mu.Unlock()

	select {
	case <-w.ready:
		// The releaser transferred its lease to us.
		q.mu.Lock()
		q.bumpDepth(tenant, -1)
		q.mu.Unlock()
		return q.releaseFunc(), nil
	case <-ctx.Done():
		q.mu.Lock()
		q.bumpDepth(tenant, -1)
		if w.index >= 0 { // still queued: remove ourselves
			heap.Remove(&q.waiters, w.index)
			q.mu.Unlock()
			return nil, ctx.Err()
		}
		// Already popped: a lease was transferred to us concurrently with
		// cancellation. Pass it along instead of leaking it.
		q.mu.Unlock()
		q.releaseFunc()()
		return nil, ctx.Err()
	}
}

// releaseFunc builds the once-only lease releaser: wake the best waiter
// (transferring the lease) or free the slot.
func (q *PQueue) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			if q.waiters.Len() > 0 {
				w := heap.Pop(&q.waiters).(*pqWaiter)
				close(w.ready) // lease moves to the waiter
				q.mu.Unlock()
				return
			}
			q.leases--
			q.mu.Unlock()
		})
	}
}

// bumpDepth must run with q.mu held.
func (q *PQueue) bumpDepth(tenant string, d int) {
	q.depth[tenant] += d
	n := q.depth[tenant]
	if n <= 0 {
		delete(q.depth, tenant)
		n = 0
	}
	if q.onDepth != nil {
		q.onDepth(tenant, n)
	}
}

// Waiting reports the total queued-waiter count.
func (q *PQueue) Waiting() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters.Len()
}

// InUse reports the leases currently held.
func (q *PQueue) InUse() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.leases
}

// waiterHeap orders by priority desc, then arrival (seq) asc.
type waiterHeap []*pqWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*pqWaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	w := old[len(old)-1]
	old[len(old)-1] = nil
	w.index = -1
	*h = old[:len(old)-1]
	return w
}
