// Package cluster is the distributed serving tier of the Artisan
// service: the pieces that turn one jobs.Manager process into a small
// fleet.
//
//   - Ring: a consistent-hash ring with virtual nodes. The router shards
//     design/simulate work across worker nodes by canonical request key,
//     so the per-node result caches and singleflight coalescing maps
//     partition cleanly — duplicate work lands on one node and runs once
//     fleet-wide.
//   - Store / PersistentManager: an append-only journal plus snapshot
//     under a data dir. Job submissions and state transitions are logged;
//     on restart the journal is replayed — completed results re-warm the
//     result cache (exactly-once visibility) and interrupted jobs are
//     re-executed (at-least-once execution).
//   - Admission / PQueue: per-tenant token-bucket admission control and a
//     small priority queue in front of the worker pool, so overload sheds
//     the noisiest tenant with 429 + Retry-After instead of crashing the
//     node or starving everyone equally.
//   - Router: a thin stateless HTTP router that proxies the serving API
//     to the owning shard by key, with health-checked membership, breaker
//   - backoff retry onto the next ring candidate when a node is down,
//     and X-Request-ID pass-through.
//
// Everything here is stdlib-only, like the rest of the repo.
package cluster
