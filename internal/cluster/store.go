package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Op is one journal record kind.
type Op string

// The journaled lifecycle. Submit and the terminal ops are what replay
// keys on; start records distinguish a job that was interrupted mid-run
// from one that never left the queue, and resume records tie a replayed
// execution back to its original logical id.
const (
	OpSubmit Op = "submit"
	OpStart  Op = "start"
	OpResume Op = "resume"
	OpDone   Op = "done"
	OpFail   Op = "fail"
	OpCancel Op = "cancel"
)

// Record is one line of the append-only journal. ID is the logical job
// id — stable across restarts even though the in-memory jobs.Manager
// assigns a fresh process-local id to a replayed run.
type Record struct {
	Op      Op              `json:"op"`
	ID      string          `json:"id"`
	Kind    string          `json:"kind,omitempty"`    // executor kind (submit only)
	Key     string          `json:"key,omitempty"`     // result-cache key (submit only)
	Payload json.RawMessage `json:"payload,omitempty"` // executor input (submit only)
	Result  json.RawMessage `json:"result,omitempty"`  // done only
	Err     string          `json:"err,omitempty"`     // fail only
	TS      time.Time       `json:"ts"`
}

// JobState is the replayed view of one logical job.
type JobState struct {
	ID      string
	Kind    string
	Key     string
	Payload json.RawMessage
	Status  Op // OpSubmit (queued), OpStart (interrupted running), or terminal
	Result  json.RawMessage
	Err     string
}

// Terminal reports whether the replayed status is final.
func (s JobState) Terminal() bool {
	return s.Status == OpDone || s.Status == OpFail || s.Status == OpCancel
}

// Interrupted reports that the job was mid-run when the journal ends —
// the process died (or was killed) with the job executing.
func (s JobState) Interrupted() bool { return s.Status == OpStart }

// ErrStoreReadOnly marks a store poisoned by a failed append: the
// journal fd and the in-memory state can no longer be trusted to agree,
// so the store refuses further writes. Reads (Pending, Done, Stats)
// keep working; /healthz surfaces the condition so the router pulls the
// node out of the write path.
var ErrStoreReadOnly = errors.New("cluster: store is read-only (append failed)")

// Store is the persistent job store: an append-only JSONL journal plus
// an optional snapshot, both under one data dir. Appends are serialized
// and flushed to the OS before Append returns, so a job acknowledged to
// a client survives a process crash; Sync additionally fsyncs each
// append for machine-crash durability at a large latency cost.
//
// Journal lines are CRC32C-framed ("%08x\t<json>\n"); unframed legacy
// lines (bare JSON objects) still replay. A corrupt mid-file record is
// quarantined to a sidecar and counted, never silently dropped; only a
// torn final line — the expected crash artifact — is ignored.
type Store struct {
	dir        string
	sync       bool
	writeFault func() error

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	state    map[string]*JobState // logical id → latest state
	order    []string             // submit order, for deterministic replay
	jstats   JournalStats
	readOnly bool
	poison   error // first append failure, kept for /healthz and /stats
}

const (
	journalName    = "journal.jsonl"
	snapshotName   = "snapshot.json"
	quarantineName = "journal.quarantine.jsonl"

	crcHexLen       = 8
	journalFrameSep = '\t'
)

// crcTable is Castagnoli — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// JournalPath returns the journal file under a store data dir — the
// chaos harness and offline tooling scan it post-mortem without opening
// a Store.
func JournalPath(dir string) string { return filepath.Join(dir, journalName) }

// QuarantineFile returns the corrupt-record sidecar under a store data
// dir.
func QuarantineFile(dir string) string { return filepath.Join(dir, quarantineName) }

// StoreOptions tunes OpenStore.
type StoreOptions struct {
	// Sync fsyncs the journal on every append. Default off: appends are
	// flushed to the OS (surviving process death) but not to the platter.
	Sync bool
	// WriteFault, when non-nil, runs before each journal write; a non-nil
	// return is treated as a disk failure. Chaos-test hook.
	WriteFault func() error
}

// OpenStore opens (creating if needed) the store under dir, loading the
// snapshot and replaying the journal into memory. The returned store is
// ready for Append; read the recovered state with Pending and Done.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: store dir: %w", err)
	}
	s := &Store{
		dir:        dir,
		sync:       opts.Sync,
		writeFault: opts.WriteFault,
		state:      make(map[string]*JobState),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.loadJournal(); err != nil {
		return nil, err
	}
	if err := repairTornNewline(filepath.Join(dir, journalName)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// repairTornNewline terminates a journal whose final line was torn
// mid-write without its newline. Without the repair, the next append
// would be glued onto the torn fragment and one *good* record would be
// lost to the merge — a crash artifact must never corrupt post-crash
// writes.
func repairTornNewline(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: open journal for repair: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("cluster: stat journal: %w", err)
	}
	if info.Size() == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, info.Size()-1); err != nil {
		return fmt.Errorf("cluster: read journal tail: %w", err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := f.WriteAt([]byte{'\n'}, info.Size()); err != nil {
		return fmt.Errorf("cluster: terminate torn journal line: %w", err)
	}
	return nil
}

func (s *Store) loadSnapshot() error {
	blob, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: read snapshot: %w", err)
	}
	var snap struct {
		Jobs []*JobState `json:"jobs"`
	}
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	for _, j := range snap.Jobs {
		s.state[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	return nil
}

func (s *Store) loadJournal() error {
	var qf *os.File
	stats, err := ScanJournal(filepath.Join(s.dir, journalName), s.apply, func(line []byte) {
		// Quarantine the corrupt line for offline forensics. Best effort:
		// the count is authoritative even if the sidecar write fails.
		if qf == nil {
			var qerr error
			qf, qerr = os.OpenFile(filepath.Join(s.dir, quarantineName),
				os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if qerr != nil {
				return
			}
		}
		if _, werr := qf.Write(append(append([]byte(nil), line...), '\n')); werr != nil {
			return
		}
	})
	if qf != nil {
		if cerr := qf.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("cluster: close quarantine: %w", cerr)
		}
	}
	if err != nil {
		return err
	}
	s.jstats = stats
	return nil
}

// JournalStats summarizes one journal scan: how many records replayed,
// how many were legacy (pre-CRC) frames, how many were corrupt and
// quarantined, and whether the final line was torn mid-write.
type JournalStats struct {
	Records  int  `json:"records"`
	Legacy   int  `json:"legacy"`
	Corrupt  int  `json:"corrupt"`
	TornTail bool `json:"tornTail"`
}

// ScanJournal streams the journal at path, calling onRecord for each
// intact record in order and onCorrupt (if non-nil) for each corrupt
// mid-file line. A corrupt *final* line is a torn tail — the expected
// artifact of a crash mid-append — and is counted but not passed to
// onCorrupt. A missing file scans as empty.
func ScanJournal(path string, onRecord func(Record), onCorrupt func(line []byte)) (JournalStats, error) {
	var stats JournalStats
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("cluster: open journal: %w", err)
	}
	defer f.Close()

	handle := func(line []byte, last bool) {
		if len(line) == 0 {
			return
		}
		rec, legacy, err := decodeJournalLine(line)
		if err != nil {
			if last {
				stats.TornTail = true
				return
			}
			stats.Corrupt++
			if onCorrupt != nil {
				onCorrupt(line)
			}
			return
		}
		stats.Records++
		if legacy {
			stats.Legacy++
		}
		if onRecord != nil {
			onRecord(rec)
		}
	}

	// One-line lookahead: a line is only classified once we know whether
	// anything follows it, so "torn tail" applies strictly to the final
	// line and everything earlier is held to the full CRC check.
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var prev []byte
	havePrev := false
	for sc.Scan() {
		if havePrev {
			handle(prev, false)
		}
		prev = append(prev[:0], sc.Bytes()...)
		havePrev = true
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return stats, fmt.Errorf("cluster: scan journal: %w", err)
	}
	if havePrev {
		handle(prev, true)
	}
	return stats, nil
}

// frameRecord encodes one journal line: CRC32C of the JSON body in
// fixed-width hex, a tab, the body, a newline.
func frameRecord(blob []byte) []byte {
	frame := make([]byte, 0, crcHexLen+2+len(blob))
	frame = append(frame, fmt.Sprintf("%08x", crc32.Checksum(blob, crcTable))...)
	frame = append(frame, journalFrameSep)
	frame = append(frame, blob...)
	return append(frame, '\n')
}

// decodeJournalLine parses one journal line in either framing. Legacy
// lines (bare JSON, written before CRC framing) are accepted for
// backward compatibility; framed lines must pass the checksum.
func decodeJournalLine(line []byte) (rec Record, legacy bool, err error) {
	if line[0] == '{' {
		if err := json.Unmarshal(line, &rec); err != nil {
			return Record{}, true, fmt.Errorf("cluster: bad legacy record: %w", err)
		}
		return rec, true, nil
	}
	i := bytes.IndexByte(line, journalFrameSep)
	if i != crcHexLen {
		return Record{}, false, fmt.Errorf("cluster: bad journal frame (no crc prefix)")
	}
	want, err := strconv.ParseUint(string(line[:crcHexLen]), 16, 32)
	if err != nil {
		return Record{}, false, fmt.Errorf("cluster: bad journal crc: %w", err)
	}
	body := line[i+1:]
	if got := crc32.Checksum(body, crcTable); got != uint32(want) {
		return Record{}, false, fmt.Errorf("cluster: journal crc mismatch: have %08x want %08x", got, uint32(want))
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false, fmt.Errorf("cluster: bad journal record: %w", err)
	}
	return rec, false, nil
}

// apply folds one record into the in-memory state map.
func (s *Store) apply(rec Record) {
	switch rec.Op {
	case OpSubmit:
		if _, ok := s.state[rec.ID]; ok {
			return // duplicate submit line; keep the first
		}
		s.state[rec.ID] = &JobState{
			ID: rec.ID, Kind: rec.Kind, Key: rec.Key,
			Payload: rec.Payload, Status: OpSubmit,
		}
		s.order = append(s.order, rec.ID)
	case OpStart, OpResume:
		if j, ok := s.state[rec.ID]; ok && !j.Terminal() {
			if rec.Op == OpStart {
				j.Status = OpStart
			} else {
				j.Status = OpSubmit // re-queued by a replay; not yet running
			}
		}
	case OpDone, OpFail, OpCancel:
		if j, ok := s.state[rec.ID]; ok {
			j.Status = rec.Op
			j.Result = rec.Result
			j.Err = rec.Err
		}
	}
}

// poisonLocked flips the store read-only after a failed write. The
// record that failed is NOT applied to memory, so the in-memory state
// never claims durability the journal doesn't have. Callers hold s.mu.
func (s *Store) poisonLocked(stage string, cause error) error {
	s.readOnly = true
	err := fmt.Errorf("cluster: %s: %v: %w", stage, cause, ErrStoreReadOnly)
	if s.poison == nil {
		s.poison = err
	}
	return err
}

// Append journals one record and makes it durable per the store's sync
// policy before returning. Any write failure poisons the store into
// read-only mode: the failed record is not applied, and every later
// Append returns ErrStoreReadOnly.
func (s *Store) Append(rec Record) error {
	if rec.TS.IsZero() {
		rec.TS = time.Now()
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encode record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("cluster: store closed")
	}
	if s.readOnly {
		return fmt.Errorf("cluster: append %s: %w", rec.Op, ErrStoreReadOnly)
	}
	if s.writeFault != nil {
		if err := s.writeFault(); err != nil {
			return s.poisonLocked("append (injected fault)", err)
		}
	}
	if _, err := s.w.Write(frameRecord(blob)); err != nil {
		return s.poisonLocked("append", err)
	}
	if err := s.w.Flush(); err != nil {
		return s.poisonLocked("flush", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return s.poisonLocked("fsync", err)
		}
	}
	s.apply(rec)
	return nil
}

// ReadOnly reports whether a failed append has poisoned the store.
func (s *Store) ReadOnly() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// StoreStats is the store's observability snapshot, surfaced on /stats
// and (corrupt count, read-only flag) on /metrics.
type StoreStats struct {
	Journal       JournalStats `json:"journal"`
	ReadOnly      bool         `json:"readOnly"`
	ReadOnlyCause string       `json:"readOnlyCause,omitempty"`
	Jobs          int          `json:"jobs"`
}

// Stats returns the current observability snapshot.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Journal: s.jstats, ReadOnly: s.readOnly, Jobs: len(s.state)}
	if s.poison != nil {
		st.ReadOnlyCause = s.poison.Error()
	}
	return st
}

// QuarantinePath returns the sidecar file corrupt records are copied
// to. The file exists only if a scan has quarantined at least one line.
func (s *Store) QuarantinePath() string {
	return filepath.Join(s.dir, quarantineName)
}

// Pending returns the non-terminal jobs in submit order — the replay
// work list: queued jobs plus interrupted running jobs.
func (s *Store) Pending() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobState
	for _, id := range s.order {
		if j := s.state[id]; j != nil && !j.Terminal() {
			out = append(out, *j)
		}
	}
	return out
}

// Done returns the completed jobs (with their journaled results) in
// submit order — the cache-warming list for exactly-once visibility.
func (s *Store) Done() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobState
	for _, id := range s.order {
		if j := s.state[id]; j != nil && j.Status == OpDone {
			out = append(out, *j)
		}
	}
	return out
}

// State returns the replayed view of one logical job id.
func (s *Store) State(id string) (JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.state[id]
	if !ok {
		return JobState{}, false
	}
	return *j, true
}

// IDs returns every tracked logical job id in submit order — the
// restart path scans them to reserve the id space already journaled, so
// a fresh process never mints a logical id the journal has seen.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Len reports how many logical jobs the store tracks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state)
}

// Compact writes the current state as a snapshot and truncates the
// journal — bounding replay time after long uptimes. Terminal cancel
// and fail entries are dropped (nothing replays them); done results and
// pending jobs are kept. A poisoned store refuses to compact: the
// snapshot would capture state the journal never durably held.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("cluster: store closed")
	}
	if s.readOnly {
		return fmt.Errorf("cluster: compact: %w", ErrStoreReadOnly)
	}
	var snap struct {
		Jobs []*JobState `json:"jobs"`
	}
	keptIDs := make([]string, 0, len(s.order))
	kept := make(map[string]*JobState, len(s.state))
	for _, id := range s.order {
		j := s.state[id]
		if j == nil || j.Status == OpFail || j.Status == OpCancel {
			continue
		}
		snap.Jobs = append(snap.Jobs, j)
		keptIDs = append(keptIDs, id)
		kept[id] = j
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("cluster: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("cluster: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("cluster: install snapshot: %w", err)
	}
	// Truncate the journal now that the snapshot covers its contents.
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flush: %w", err)
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("cluster: truncate journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("cluster: rewind journal: %w", err)
	}
	s.w.Reset(s.f)
	s.order = keptIDs
	s.state = kept
	return nil
}

// Close flushes and closes the journal. The store rejects appends after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	flushErr := s.w.Flush()
	closeErr := s.f.Close()
	s.w, s.f = nil, nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
