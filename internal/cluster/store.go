package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Op is one journal record kind.
type Op string

// The journaled lifecycle. Submit and the terminal ops are what replay
// keys on; start records distinguish a job that was interrupted mid-run
// from one that never left the queue, and resume records tie a replayed
// execution back to its original logical id.
const (
	OpSubmit Op = "submit"
	OpStart  Op = "start"
	OpResume Op = "resume"
	OpDone   Op = "done"
	OpFail   Op = "fail"
	OpCancel Op = "cancel"
)

// Record is one line of the append-only journal. ID is the logical job
// id — stable across restarts even though the in-memory jobs.Manager
// assigns a fresh process-local id to a replayed run.
type Record struct {
	Op      Op              `json:"op"`
	ID      string          `json:"id"`
	Kind    string          `json:"kind,omitempty"`    // executor kind (submit only)
	Key     string          `json:"key,omitempty"`     // result-cache key (submit only)
	Payload json.RawMessage `json:"payload,omitempty"` // executor input (submit only)
	Result  json.RawMessage `json:"result,omitempty"`  // done only
	Err     string          `json:"err,omitempty"`     // fail only
	TS      time.Time       `json:"ts"`
}

// JobState is the replayed view of one logical job.
type JobState struct {
	ID      string
	Kind    string
	Key     string
	Payload json.RawMessage
	Status  Op // OpSubmit (queued), OpStart (interrupted running), or terminal
	Result  json.RawMessage
	Err     string
}

// Terminal reports whether the replayed status is final.
func (s JobState) Terminal() bool {
	return s.Status == OpDone || s.Status == OpFail || s.Status == OpCancel
}

// Interrupted reports that the job was mid-run when the journal ends —
// the process died (or was killed) with the job executing.
func (s JobState) Interrupted() bool { return s.Status == OpStart }

// Store is the persistent job store: an append-only JSONL journal plus
// an optional snapshot, both under one data dir. Appends are serialized
// and flushed to the OS before Append returns, so a job acknowledged to
// a client survives a process crash; Sync additionally fsyncs each
// append for machine-crash durability at a large latency cost.
type Store struct {
	dir  string
	sync bool

	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	state map[string]*JobState // logical id → latest state
	order []string             // submit order, for deterministic replay
}

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
)

// StoreOptions tunes OpenStore.
type StoreOptions struct {
	// Sync fsyncs the journal on every append. Default off: appends are
	// flushed to the OS (surviving process death) but not to the platter.
	Sync bool
}

// OpenStore opens (creating if needed) the store under dir, loading the
// snapshot and replaying the journal into memory. The returned store is
// ready for Append; read the recovered state with Pending and Done.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: store dir: %w", err)
	}
	s := &Store{
		dir:   dir,
		sync:  opts.Sync,
		state: make(map[string]*JobState),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.loadJournal(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

func (s *Store) loadSnapshot() error {
	blob, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: read snapshot: %w", err)
	}
	var snap struct {
		Jobs []*JobState `json:"jobs"`
	}
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	for _, j := range snap.Jobs {
		s.state[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	return nil
}

func (s *Store) loadJournal() error {
	f, err := os.Open(filepath.Join(s.dir, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: open journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line is the expected crash artifact: the write
			// was cut mid-record. Ignore it (the job it described was never
			// acknowledged) and stop — nothing can follow a torn line.
			return nil
		}
		s.apply(rec)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("cluster: scan journal: %w", err)
	}
	return nil
}

// apply folds one record into the in-memory state map.
func (s *Store) apply(rec Record) {
	switch rec.Op {
	case OpSubmit:
		if _, ok := s.state[rec.ID]; ok {
			return // duplicate submit line; keep the first
		}
		s.state[rec.ID] = &JobState{
			ID: rec.ID, Kind: rec.Kind, Key: rec.Key,
			Payload: rec.Payload, Status: OpSubmit,
		}
		s.order = append(s.order, rec.ID)
	case OpStart, OpResume:
		if j, ok := s.state[rec.ID]; ok && !j.Terminal() {
			if rec.Op == OpStart {
				j.Status = OpStart
			} else {
				j.Status = OpSubmit // re-queued by a replay; not yet running
			}
		}
	case OpDone, OpFail, OpCancel:
		if j, ok := s.state[rec.ID]; ok {
			j.Status = rec.Op
			j.Result = rec.Result
			j.Err = rec.Err
		}
	}
}

// Append journals one record and makes it durable per the store's sync
// policy before returning.
func (s *Store) Append(rec Record) error {
	if rec.TS.IsZero() {
		rec.TS = time.Now()
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encode record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("cluster: store closed")
	}
	if _, err := s.w.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("cluster: append: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flush: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("cluster: fsync: %w", err)
		}
	}
	s.apply(rec)
	return nil
}

// Pending returns the non-terminal jobs in submit order — the replay
// work list: queued jobs plus interrupted running jobs.
func (s *Store) Pending() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobState
	for _, id := range s.order {
		if j := s.state[id]; j != nil && !j.Terminal() {
			out = append(out, *j)
		}
	}
	return out
}

// Done returns the completed jobs (with their journaled results) in
// submit order — the cache-warming list for exactly-once visibility.
func (s *Store) Done() []JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobState
	for _, id := range s.order {
		if j := s.state[id]; j != nil && j.Status == OpDone {
			out = append(out, *j)
		}
	}
	return out
}

// Len reports how many logical jobs the store tracks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state)
}

// Compact writes the current state as a snapshot and truncates the
// journal — bounding replay time after long uptimes. Terminal cancel
// and fail entries are dropped (nothing replays them); done results and
// pending jobs are kept.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return fmt.Errorf("cluster: store closed")
	}
	var snap struct {
		Jobs []*JobState `json:"jobs"`
	}
	keptIDs := make([]string, 0, len(s.order))
	kept := make(map[string]*JobState, len(s.state))
	for _, id := range s.order {
		j := s.state[id]
		if j == nil || j.Status == OpFail || j.Status == OpCancel {
			continue
		}
		snap.Jobs = append(snap.Jobs, j)
		keptIDs = append(keptIDs, id)
		kept[id] = j
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("cluster: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("cluster: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("cluster: install snapshot: %w", err)
	}
	// Truncate the journal now that the snapshot covers its contents.
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flush: %w", err)
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("cluster: truncate journal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("cluster: rewind journal: %w", err)
	}
	s.w.Reset(s.f)
	s.order = keptIDs
	s.state = kept
	return nil
}

// Close flushes and closes the journal. The store rejects appends after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	flushErr := s.w.Flush()
	closeErr := s.f.Close()
	s.w, s.f = nil, nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
