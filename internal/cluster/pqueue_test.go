package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPQueueImmediateAcquire(t *testing.T) {
	q := NewPQueue(2, 4, nil)
	r1, err := q.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.InUse() != 2 {
		t.Fatalf("InUse = %d", q.InUse())
	}
	r1()
	r1() // release is once-only
	r2()
	if q.InUse() != 0 {
		t.Fatalf("InUse = %d after release", q.InUse())
	}
}

// TestPQueueShedsWhenFull: with all leases held and the wait queue at
// capacity, Acquire sheds immediately with ErrShed.
func TestPQueueShedsWhenFull(t *testing.T) {
	q := NewPQueue(1, 1, nil)
	release, err := q.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	acquired := make(chan func(), 1)
	go func() {
		r, err := q.Acquire(context.Background(), "b", 0)
		if err == nil {
			acquired <- r
		}
	}()
	waitForCond(t, func() bool { return q.Waiting() == 1 })

	if _, err := q.Acquire(context.Background(), "c", 0); !errors.Is(err, ErrShed) {
		t.Fatalf("full wait queue returned %v, want ErrShed", err)
	}

	release()
	r := <-acquired
	r()
}

// TestPQueuePriorityOrder: under contention the queue drains waiters
// highest priority first, FIFO within a priority.
func TestPQueuePriorityOrder(t *testing.T) {
	var (
		mu    sync.Mutex
		order []int
	)
	q := NewPQueue(1, 8, nil)
	hold, err := q.Acquire(context.Background(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Arrivals serialized (so FIFO-within-priority is deterministic):
	// pri 1, 9, 5, 9 — expected service order 9, 9, 5, 1.
	for i, pri := range []int{1, 9, 5, 9} {
		i, pri := i, pri
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := q.Acquire(context.Background(), "t", pri)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, pri)
			mu.Unlock()
			r()
		}()
		waitForCond(t, func() bool { return q.Waiting() == i+1 })
	}

	hold() // hands the lease down the heap
	wg.Wait()
	want := []int{9, 9, 5, 1}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

// TestPQueueCancelledWaiter: a waiter that gives up leaves the heap, and
// the lease still reaches the remaining waiter.
func TestPQueueCancelledWaiter(t *testing.T) {
	q := NewPQueue(1, 4, nil)
	hold, err := q.Acquire(context.Background(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	gaveUp := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, "t", 9)
		gaveUp <- err
	}()
	waitForCond(t, func() bool { return q.Waiting() == 1 })

	acquired := make(chan func(), 1)
	go func() {
		r, err := q.Acquire(context.Background(), "t", 0)
		if err != nil {
			t.Error(err)
			return
		}
		acquired <- r
	}()
	waitForCond(t, func() bool { return q.Waiting() == 2 })

	cancel()
	if err := <-gaveUp; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	waitForCond(t, func() bool { return q.Waiting() == 1 })

	// The high-priority waiter is gone; release must reach the survivor.
	hold()
	r := <-acquired
	r()
	if q.InUse() != 0 || q.Waiting() != 0 {
		t.Fatalf("InUse=%d Waiting=%d after drain", q.InUse(), q.Waiting())
	}
}

// TestPQueueDepthCallback: the per-tenant depth observer sees waits come
// and go.
func TestPQueueDepthCallback(t *testing.T) {
	var (
		mu   sync.Mutex
		last = map[string]int{}
	)
	q := NewPQueue(1, 4, func(tenant string, depth int) {
		mu.Lock()
		last[tenant] = depth
		mu.Unlock()
	})
	hold, err := q.Acquire(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r, err := q.Acquire(context.Background(), "b", 0)
		if err == nil {
			r()
		}
		close(done)
	}()
	waitForCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return last["b"] == 1
	})
	hold()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if last["b"] != 0 {
		t.Fatalf("tenant b depth = %d after drain, want 0", last["b"])
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout waiting for condition")
}
