package cluster

// Deadline-budget and hedged-read tests for the router: the
// X-Deadline-Ms budget is minted/decremented per hop, an exhausted
// budget turns into 504 (never a fresh allowance on the next node), and
// a slow owner on the job-poll path is hedged by a fleet sweep.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artisan/internal/resilience"
)

// deadlineWorker records the X-Deadline-Ms value of each /design hit.
type deadlineWorker struct {
	id   string
	seen chan int64
	srv  *httptest.Server
}

func newDeadlineWorker(t *testing.T, id string) *deadlineWorker {
	t.Helper()
	w := &deadlineWorker{id: id, seen: make(chan int64, 64)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id})
	})
	mux.HandleFunc("POST /design", func(rw http.ResponseWriter, r *http.Request) {
		ms, _ := strconv.ParseInt(r.Header.Get(DeadlineHeader), 10, 64)
		w.seen <- ms
		_ = json.NewEncoder(rw).Encode(map[string]string{"node": w.id})
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

// TestRouterDeadlineStamping: a client budget is re-stamped on the hop
// with the *remaining* milliseconds (never more than the client gave),
// and DefaultDeadline mints a budget for unbudgeted requests.
func TestRouterDeadlineStamping(t *testing.T) {
	w := newDeadlineWorker(t, "n1")
	rt, err := NewRouter(RouterConfig{
		Nodes:           []string{w.srv.URL},
		HealthInterval:  20 * time.Millisecond,
		DefaultDeadline: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// Explicit client budget wins over the default.
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/design", strings.NewReader(`{"seed":1}`))
	req.Header.Set(DeadlineHeader, "200")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := <-w.seen
	if got < 1 || got > 200 {
		t.Fatalf("hop budget = %dms, want decremented remainder of the client's 200ms", got)
	}

	// No header: the router mints DefaultDeadline.
	status, _, _ := postJSON(t, front.URL+"/design", `{"seed":2}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	got = <-w.seen
	if got < 1 || got > 500 {
		t.Fatalf("minted budget = %dms, want within the 500ms default", got)
	}
}

// TestRouterDeadlineExhausted504: when the budget runs out before any
// node produced an answer, the client gets 504 and the exhaustion
// counter ticks — failover attempts must not outlive the client.
func TestRouterDeadlineExhausted504(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			_ = json.NewEncoder(rw).Encode(map[string]string{"node": "slow"})
			return
		}
		time.Sleep(25 * time.Millisecond)
		rw.WriteHeader(http.StatusServiceUnavailable) // no Retry-After: gateway-class
	}))
	defer slow.Close()
	rt, err := NewRouter(RouterConfig{
		Nodes:          []string{slow.URL},
		HealthInterval: 20 * time.Millisecond,
		Retry:          resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	req, _ := http.NewRequest(http.MethodPost, front.URL+"/design", strings.NewReader(`{"seed":3}`))
	req.Header.Set(DeadlineHeader, "30") // one slow attempt spends it
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 when the budget is exhausted", resp.StatusCode)
	}
	if v := rt.deadlineExpired.Value(); v < 1 {
		t.Fatalf("artisan_router_deadline_exhausted_total = %g, want >= 1", v)
	}
}

// TestRouterHedgedJobRead: an owner sitting on a poll past HedgeDelay
// is raced by a sweep of the rest of the fleet; the fast secondary's
// answer reaches the client and the hedge counter ticks.
func TestRouterHedgedJobRead(t *testing.T) {
	var slowHits atomic.Int64
	mkWorker := func(id string, delay time.Duration) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
			_ = json.NewEncoder(rw).Encode(map[string]string{"node": id})
		})
		mux.HandleFunc("GET /jobs/{id}", func(rw http.ResponseWriter, r *http.Request) {
			if delay > 0 {
				slowHits.Add(1)
				time.Sleep(delay)
			}
			_ = json.NewEncoder(rw).Encode(map[string]string{"node": id, "job": r.PathValue("id")})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	owner := mkWorker("n1", 250*time.Millisecond)
	fast := mkWorker("n2", 0)

	ctrs := &resilience.Counters{}
	rt, err := NewRouter(RouterConfig{
		Nodes:          []string{owner.URL, fast.URL},
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  time.Second,
		HedgeDelay:     5 * time.Millisecond,
		Counters:       ctrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	waitForCond(t, func() bool {
		for _, n := range rt.nodes {
			if n.id() == "" {
				return false
			}
		}
		return true
	})

	start := time.Now()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://router/jobs/n1-j-9", nil))
	elapsed := time.Since(start)

	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad body %q: %v", rec.Body.String(), err)
	}
	if rec.Code != http.StatusOK || out["node"] != "n2" {
		t.Fatalf("status %d node %q, want the hedge's n2 answer", rec.Code, out["node"])
	}
	if elapsed >= 250*time.Millisecond {
		t.Fatalf("poll took %s; hedge did not race the slow owner", elapsed)
	}
	if ctrs.Hedges.Load() < 1 {
		t.Fatal("hedge launched but Counters.Hedges did not tick")
	}
	if slowHits.Load() < 1 {
		t.Fatal("owner was never tried; hedge must race, not replace, the primary")
	}
}
