package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"artisan/internal/resilience"
	"artisan/internal/telemetry"
)

// DeadlineHeader carries a request's end-to-end deadline budget in
// integer milliseconds. The router mints it (DefaultDeadline) or
// accepts it from the client, then re-stamps the *remaining* budget on
// every hop and failover attempt — so a job accepted by the third
// candidate node after two slow failures inherits only what is left of
// the client's patience, not a fresh allowance.
const DeadlineHeader = "X-Deadline-Ms"

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Nodes are the worker base URLs (e.g. http://10.0.0.1:8080). At
	// least one is required.
	Nodes []string
	// VNodes is the hash-ring virtual-node count; default DefaultVNodes.
	VNodes int
	// HealthInterval is the node health-check period; default 2s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe; default 1s.
	HealthTimeout time.Duration
	// Retry is the per-request retry policy across ring candidates; the
	// zero value takes 3 attempts with a 25ms base backoff.
	Retry resilience.RetryPolicy
	// BreakerThreshold / BreakerCooldown tune the per-node circuit
	// breaker; defaults 3 failures / 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client is the forwarding HTTP client; default has no global timeout
	// (batch streams are long-lived) — per-request contexts bound it.
	Client *http.Client
	// Registry, when non-nil, receives the router's metrics.
	Registry *telemetry.Registry
	// MaxBody bounds a proxied request body; default 1 MiB.
	MaxBody int64
	// HedgeDelay is how long a hedgeable read (GET /jobs/{id}, the
	// per-node /stats fetch) waits before a second request is launched
	// against the rest of the fleet. Default 25ms; negative disables
	// hedging.
	HedgeDelay time.Duration
	// DefaultDeadline, when positive, mints an X-Deadline-Ms budget for
	// requests that arrive without one. 0 leaves unbudgeted requests
	// unbounded (the pre-deadline behaviour).
	DefaultDeadline time.Duration
	// Counters, when non-nil, receives the router's resilience events
	// (hedges). Default: a private set, still surfaced on /metrics.
	Counters *resilience.Counters
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes < 1 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.Retry.MaxAttempts < 1 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay == 0 {
		c.Retry.BaseDelay = 25 * time.Millisecond
	}
	if c.Retry.Jitter <= 0 {
		// Failover backoff is jittered by default so a fleet-wide blip does
		// not re-arrive at the survivors as a synchronized retry storm.
		c.Retry.Jitter = 0.5
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 25 * time.Millisecond
	}
	if c.Counters == nil {
		c.Counters = &resilience.Counters{}
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// routerNode is the router's view of one worker.
type routerNode struct {
	url     string
	breaker *resilience.Breaker

	mu      sync.Mutex
	healthy bool
	nodeID  string // from the worker's /healthz "node" field
}

func (n *routerNode) setHealth(ok bool, id string) (changed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	changed = n.healthy != ok
	n.healthy = ok
	if id != "" {
		n.nodeID = id
	}
	return changed
}

func (n *routerNode) isHealthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy
}

func (n *routerNode) id() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodeID
}

// Router is the thin stateless front of the fleet. It owns no serving
// state beyond the health-checked membership view — restarting it loses
// nothing — and shards work across nodes by the canonical hash of the
// request body, so duplicate requests land on the same node and its
// singleflight coalescing fires exactly once fleet-wide.
type Router struct {
	cfg   RouterConfig
	ring  *Ring
	nodes map[string]*routerNode // url → node
	mux   *http.ServeMux

	stop   chan struct{}
	stopWG sync.WaitGroup

	// reqSeq varies the retry jitter seed per request: a shared seed
	// would hand every concurrent request the same backoff schedule,
	// re-synchronizing the very storm the jitter exists to break up.
	reqSeq atomic.Int64

	reg             *telemetry.Registry
	proxied         *telemetry.CounterVec // node, outcome
	retries         *telemetry.Counter
	rejected        *telemetry.Counter
	deadlineExpired *telemetry.Counter
}

// NewRouter builds the router and starts its health-check loop. All
// nodes start healthy (optimistic) and are removed from the ring on the
// first failed probe.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node")
	}
	rt := &Router{
		cfg:   cfg,
		ring:  NewRing(cfg.VNodes),
		nodes: make(map[string]*routerNode),
		mux:   http.NewServeMux(),
		stop:  make(chan struct{}),
	}
	for _, raw := range cfg.Nodes {
		u := strings.TrimRight(raw, "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty node URL")
		}
		if _, dup := rt.nodes[u]; dup {
			return nil, fmt.Errorf("cluster: duplicate node URL %s", u)
		}
		rt.nodes[u] = &routerNode{
			url:     u,
			healthy: true,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown,
			}),
		}
		rt.ring.Add(u)
	}
	rt.initMetrics(cfg.Registry)
	rt.routes()
	rt.stopWG.Add(1)
	go rt.healthLoop()
	return rt, nil
}

func (rt *Router) initMetrics(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	rt.reg = reg
	rt.proxied = reg.CounterVec("artisan_router_proxied_total",
		"Requests proxied to worker nodes, by node URL and outcome (ok|error).",
		"node", "outcome")
	rt.retries = reg.Counter("artisan_router_retries_total",
		"Proxy attempts retried onto the next ring candidate after a node failure.")
	rt.rejected = reg.Counter("artisan_router_rejected_total",
		"Requests rejected because no healthy node could serve them.")
	rt.deadlineExpired = reg.Counter("artisan_router_deadline_exhausted_total",
		"Requests whose end-to-end deadline budget ran out before any node answered.")
	reg.CounterFunc("artisan_router_hedges_total",
		"Hedged second reads launched after the primary exceeded the hedge delay.",
		func() float64 { return float64(rt.cfg.Counters.Hedges.Load()) })
	reg.GaugeFunc("artisan_router_nodes_healthy",
		"Worker nodes currently in the ring.",
		func() float64 { return float64(rt.ring.Size()) })
	reg.GaugeFunc("artisan_router_nodes_total",
		"Worker nodes configured.",
		func() float64 { return float64(len(rt.nodes)) })
}

func (rt *Router) routes() {
	shard := http.HandlerFunc(rt.handleSharded)
	for _, route := range []string{
		"POST /design", "POST /design/batch",
		"POST /simulate", "POST /simulate/batch",
		"POST /jobs",
	} {
		rt.mux.Handle(route, shard)
	}
	rt.mux.HandleFunc("GET /jobs", rt.handleJobsFanout)
	rt.mux.HandleFunc("GET /jobs/{id}", rt.handleJobByID)
	rt.mux.HandleFunc("DELETE /jobs/{id}", rt.handleJobByID)
	rt.mux.HandleFunc("GET /stats", rt.handleStatsFanout)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.Handle("GET /metrics", rt.reg.Handler())
	for _, route := range []string{"GET /groups", "GET /architectures", "GET /traces"} {
		rt.mux.HandleFunc(route, rt.handleAnyNode)
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Close stops the health-check loop.
func (rt *Router) Close() {
	close(rt.stop)
	rt.stopWG.Wait()
}

// healthLoop probes every node each HealthInterval and keeps the ring's
// membership in sync. A node answering /healthz with any non-200 —
// including the 503 a draining node reports — leaves the ring, so the
// router stops sending it work before its queue closes.
func (rt *Router) healthLoop() {
	defer rt.stopWG.Done()
	rt.probeAll() // establish real state before the first tick
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, n := range rt.nodes {
		wg.Add(1)
		go func(n *routerNode) {
			defer wg.Done()
			ok, id := rt.probe(n)
			if n.setHealth(ok, id) {
				if ok {
					rt.ring.Add(n.url)
				} else {
					rt.ring.Remove(n.url)
				}
			}
		}(n)
	}
	wg.Wait()
}

// probe checks one node's /healthz, returning health and the node's
// self-reported id (used to route /jobs/{id} by id prefix).
func (rt *Router) probe(n *routerNode) (ok bool, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return false, ""
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	var body struct {
		Node string `json:"node"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	return resp.StatusCode == http.StatusOK, body.Node
}

// ShardKey canonicalizes a request body for ring placement: the JSON is
// decoded and re-encoded (Go maps marshal with sorted keys), so two
// requests that differ only in key order or whitespace shard — and
// therefore coalesce — identically. Non-JSON bodies hash as raw bytes.
func ShardKey(body []byte) string {
	var v any
	if err := json.Unmarshal(body, &v); err == nil {
		if canon, err := json.Marshal(v); err == nil {
			return string(canon)
		}
	}
	return string(body)
}

// errNoHealthyNode means every candidate was down or rejected.
var errNoHealthyNode = errors.New("cluster: no healthy node")

// errBudgetExhausted means the deadline budget ran out with failover
// attempts still available — spending them would outlive the client.
var errBudgetExhausted = errors.New("cluster: deadline budget exhausted")

// parseDeadlineMs parses an X-Deadline-Ms value; 0 means absent or
// malformed (malformed budgets are ignored, not errors — a proxy must
// not 400 traffic over an advisory header).
func parseDeadlineMs(v string) time.Duration {
	ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// budgetCtx derives the request's end-to-end budget: an explicit
// X-Deadline-Ms wins, else DefaultDeadline is minted. The zero deadline
// means unbudgeted.
func (rt *Router) budgetCtx(r *http.Request) (context.Context, time.Time, context.CancelFunc) {
	budget := parseDeadlineMs(r.Header.Get(DeadlineHeader))
	if budget <= 0 {
		budget = rt.cfg.DefaultDeadline
	}
	if budget <= 0 {
		return r.Context(), time.Time{}, func() {}
	}
	dl := time.Now().Add(budget)
	ctx, cancel := context.WithDeadline(r.Context(), dl)
	return ctx, dl, cancel
}

// handleSharded proxies a body-keyed POST to the owning node, failing
// over clockwise around the ring (with the retry policy's backoff and
// each node's breaker) while nodes are down.
func (rt *Router) handleSharded(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBody+1))
	if err != nil {
		http.Error(w, `{"error":"read body"}`, http.StatusBadRequest)
		return
	}
	if int64(len(body)) > rt.cfg.MaxBody {
		http.Error(w, `{"error":"body too large"}`, http.StatusRequestEntityTooLarge)
		return
	}
	candidates := rt.ring.Owners(ShardKey(body), len(rt.nodes))
	rt.forward(w, r, candidates, body)
}

// forward tries candidates in preference order. Within one retry
// attempt every candidate is swept — a transport failure, gateway-class
// status, or open breaker advances to the next node immediately — and
// the retry policy's backoff separates full sweeps, so a transient
// fleet-wide blip gets a second chance. A response the node produced
// (including 4xx/5xx application errors) ends the loop: those belong to
// the client, not to failover.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, candidates []string, body []byte) {
	if len(candidates) == 0 {
		rt.rejected.Inc()
		writeRouterErr(w, http.StatusServiceUnavailable, errNoHealthyNode)
		return
	}
	ctx, deadline, cancel := rt.budgetCtx(r)
	defer cancel()
	pol := rt.cfg.Retry
	if pol.Jitter > 0 {
		pol.Seed += rt.reqSeq.Add(1)
	}
	sent := false
	err := pol.Do(ctx, "router.forward", func(ctx context.Context) error {
		lastErr := errNoHealthyNode
		for i, url := range candidates {
			if i > 0 {
				rt.retries.Inc()
			}
			n := rt.nodes[url]
			berr := n.breaker.Do(ctx, "proxy "+url, func(ctx context.Context) error {
				resp, ferr := rt.send(ctx, n, r, body, deadline)
				if ferr != nil {
					rt.proxied.With(n.url, "error").Inc()
					return ferr
				}
				defer resp.Body.Close()
				rt.proxied.With(n.url, "ok").Inc()
				sent = true
				copyResponse(w, resp)
				return nil
			})
			if berr == nil {
				return nil
			}
			if ctx.Err() != nil || errors.Is(berr, errBudgetExhausted) {
				return berr // client gone or budget spent: stop failing over
			}
			lastErr = berr
		}
		return lastErr
	})
	if err != nil && !sent {
		rt.rejected.Inc()
		status := http.StatusBadGateway
		if errors.Is(err, errBudgetExhausted) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(ctx.Err(), context.DeadlineExceeded) {
			rt.deadlineExpired.Inc()
			status = http.StatusGatewayTimeout
		}
		writeRouterErr(w, status, err)
	}
}

// send issues one proxied request. Gateway-class statuses are converted
// to errors so the retry loop fails over; everything else is a valid
// upstream answer. A non-zero deadline re-stamps the remaining budget
// onto the hop as X-Deadline-Ms; a budget already spent fails the
// attempt permanently instead of starting work the client gave up on.
func (rt *Router) send(ctx context.Context, n *routerNode, r *http.Request, body []byte, deadline time.Time) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, n.url+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	copyProxyHeaders(req.Header, r.Header)
	if req.Header.Get("X-Request-ID") == "" {
		req.Header.Set("X-Request-ID", telemetry.NewRequestID())
	}
	if !deadline.IsZero() {
		rem := time.Until(deadline).Milliseconds()
		if rem < 1 {
			return nil, resilience.Permanent(fmt.Errorf("%s: %w", n.url, errBudgetExhausted))
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(rem, 10))
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	// 502/503/504 from a worker mean "down or draining" — fail over. The
	// one exception is a 503 that carries Retry-After: that is the
	// admission layer shedding load deliberately, and must reach the
	// client untouched rather than hammer the next node.
	if resp.StatusCode >= http.StatusBadGateway && resp.Header.Get("Retry-After") == "" {
		resp.Body.Close()
		return nil, fmt.Errorf("%s: upstream status %d", n.url, resp.StatusCode)
	}
	return resp, nil
}

// copyProxyHeaders forwards end-to-end headers (correlation id, tenant,
// priority, content negotiation) without hop-by-hop ones.
func copyProxyHeaders(dst, src http.Header) {
	for _, h := range []string{
		"Content-Type", "Accept", "X-Request-ID", "X-Tenant", "X-Priority",
	} {
		if v := src.Get(h); v != "" {
			dst.Set(h, v)
		}
	}
}

// copyResponse streams an upstream response to the client, flushing per
// write so NDJSON batch streams pass through unbuffered.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func writeRouterErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// healthyNodes returns the healthy node set in stable (URL-sorted)
// order.
func (rt *Router) healthyNodes() []*routerNode {
	urls := make([]string, 0, len(rt.nodes))
	for u, n := range rt.nodes {
		if n.isHealthy() {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	out := make([]*routerNode, len(urls))
	for i, u := range urls {
		out[i] = rt.nodes[u]
	}
	return out
}

// handleAnyNode proxies a read-only GET to the first healthy node (they
// all serve identical static knowledge).
func (rt *Router) handleAnyNode(w http.ResponseWriter, r *http.Request) {
	healthy := rt.healthyNodes()
	candidates := make([]string, len(healthy))
	for i, n := range healthy {
		candidates[i] = n.url
	}
	rt.forward(w, r, candidates, nil)
}

// captured is a fully buffered upstream response — needed where two
// in-flight copies of a request race (hedged reads) and only the winner
// may touch the ResponseWriter.
type captured struct {
	status int
	header http.Header
	body   []byte
}

func writeCaptured(w http.ResponseWriter, c *captured) {
	for k, vs := range c.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(c.status)
	_, _ = w.Write(c.body)
}

// capture proxies one request to n and buffers the full response.
func (rt *Router) capture(ctx context.Context, n *routerNode, r *http.Request) (*captured, error) {
	resp, err := rt.send(ctx, n, r, nil, time.Time{})
	if err != nil {
		rt.proxied.With(n.url, "error").Inc()
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.proxied.With(n.url, "error").Inc()
		return nil, err
	}
	rt.proxied.With(n.url, "ok").Inc()
	return &captured{status: resp.StatusCode, header: resp.Header.Clone(), body: body}, nil
}

// sweepJobRead asks each healthy node but skip in turn, returning the
// first answer that is not a 404 — a 404 from a non-owner only means
// "not mine".
func (rt *Router) sweepJobRead(ctx context.Context, r *http.Request, nodes []*routerNode, skip *routerNode) *captured {
	for _, n := range nodes {
		if n == skip {
			continue
		}
		nctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
		c, err := rt.capture(nctx, n, r)
		cancel()
		if err == nil && c.status != http.StatusNotFound {
			return c
		}
	}
	return nil
}

// handleJobByID routes a job poll/cancel to the node that owns the id:
// with -node-id set, worker job ids are "<node>-j-<n>" and the prefix
// names the owner; without a prefix match the request fans out until a
// node answers something other than 404. Polls (GET) of a known owner
// are hedged: when the owner sits on the request past HedgeDelay, a
// sweep of the rest of the fleet races it and the first answer wins.
func (rt *Router) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	healthy := rt.healthyNodes()
	if node, pre, ok := strings.Cut(id, "-j-"); ok && pre != "" {
		for _, n := range healthy {
			if n.id() == node {
				if r.Method == http.MethodGet && rt.cfg.HedgeDelay > 0 && len(healthy) > 1 {
					rt.hedgedJobRead(w, r, n, healthy)
				} else {
					rt.forward(w, r, []string{n.url}, nil)
				}
				return
			}
		}
	}
	// Unknown or unprefixed id: ask each healthy node in turn.
	if c := rt.sweepJobRead(r.Context(), r, healthy, nil); c != nil {
		writeCaptured(w, c)
		return
	}
	writeRouterErr(w, http.StatusNotFound, fmt.Errorf("no node owns job %s", id))
}

// hedgedJobRead races the owner against a sweep of the other nodes.
// The owner's answer — any status, including 404 — is authoritative;
// the hedge only helps when the owner is slow or unreachable, and a
// secondary 404 never pre-empts the owner (the sweep reports it as a
// miss, so Hedge keeps waiting on the primary).
func (rt *Router) hedgedJobRead(w http.ResponseWriter, r *http.Request, owner *routerNode, healthy []*routerNode) {
	primary := func(ctx context.Context) (*captured, error) {
		return rt.capture(ctx, owner, r)
	}
	secondary := func(ctx context.Context) (*captured, error) {
		if c := rt.sweepJobRead(ctx, r, healthy, owner); c != nil {
			return c, nil
		}
		return nil, fmt.Errorf("cluster: hedge sweep: no other node had the job")
	}
	c, err := resilience.Hedge(r.Context(), rt.cfg.HedgeDelay, rt.cfg.Counters, primary, secondary)
	if err != nil {
		writeRouterErr(w, http.StatusBadGateway, err)
		return
	}
	writeCaptured(w, c)
}

// handleJobsFanout merges GET /jobs from every healthy node, tagging
// each job with its node.
func (rt *Router) handleJobsFanout(w http.ResponseWriter, r *http.Request) {
	type nodeJobs struct {
		Node string          `json:"node"`
		URL  string          `json:"url"`
		Body json.RawMessage `json:"jobs"`
	}
	var (
		mu  sync.Mutex
		out []nodeJobs
		wg  sync.WaitGroup
	)
	for _, n := range rt.healthyNodes() {
		wg.Add(1)
		go func(n *routerNode) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.HealthTimeout)
			defer cancel()
			resp, err := rt.send(ctx, n, r, nil, time.Time{})
			if err != nil {
				return
			}
			defer resp.Body.Close()
			blob, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
			if err != nil || !json.Valid(blob) {
				return
			}
			mu.Lock()
			out = append(out, nodeJobs{Node: n.id(), URL: n.url, Body: blob})
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	writeRouterJSON(w, http.StatusOK, map[string]any{"nodes": out})
}

// handleStatsFanout merges GET /stats from every node (down nodes are
// reported with an error string).
func (rt *Router) handleStatsFanout(w http.ResponseWriter, r *http.Request) {
	type nodeStats struct {
		Node    string          `json:"node,omitempty"`
		URL     string          `json:"url"`
		Healthy bool            `json:"healthy"`
		Stats   json.RawMessage `json:"stats,omitempty"`
		Error   string          `json:"error,omitempty"`
	}
	var (
		mu  sync.Mutex
		out []nodeStats
		wg  sync.WaitGroup
	)
	for _, n := range rt.nodes {
		wg.Add(1)
		go func(n *routerNode) {
			defer wg.Done()
			st := nodeStats{Node: n.id(), URL: n.url, Healthy: n.isHealthy()}
			// The per-node fetch is hedged: stats are node-local so no other
			// node can answer for it, but a second identical probe papers over
			// a dropped packet or a brownout pause on the first.
			fetch := func(ctx context.Context) (json.RawMessage, error) {
				nctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
				defer cancel()
				resp, err := rt.send(nctx, n, r, nil, time.Time{})
				if err != nil {
					return nil, err
				}
				defer resp.Body.Close()
				blob, rerr := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
				if rerr != nil {
					return nil, rerr
				}
				if !json.Valid(blob) {
					return nil, errors.New("bad stats payload")
				}
				return blob, nil
			}
			var blob json.RawMessage
			var err error
			if rt.cfg.HedgeDelay > 0 {
				blob, err = resilience.Hedge(r.Context(), rt.cfg.HedgeDelay, rt.cfg.Counters, fetch, fetch)
			} else {
				blob, err = fetch(r.Context())
			}
			if err == nil {
				st.Stats = blob
			} else {
				st.Error = err.Error()
			}
			mu.Lock()
			out = append(out, st)
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	writeRouterJSON(w, http.StatusOK, map[string]any{"nodes": out})
}

// handleHealth reports the router's own health: 200 while at least one
// node is in the ring, 503 otherwise (the router itself is stateless —
// its health is its fleet's).
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	type nodeHealth struct {
		Node    string `json:"node,omitempty"`
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	}
	var nodes []nodeHealth
	healthy := 0
	for _, n := range rt.nodes {
		h := n.isHealthy()
		if h {
			healthy++
		}
		nodes = append(nodes, nodeHealth{Node: n.id(), URL: n.url, Healthy: h})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].URL < nodes[j].URL })
	status := http.StatusOK
	state := "ok"
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		state = "no-healthy-nodes"
	}
	writeRouterJSON(w, status, map[string]any{
		"status": state, "healthy": healthy, "total": len(rt.nodes), "nodes": nodes,
	})
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
