package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 2, clk.now) // 1 token/s, depth 2, starts full

	if ok, _ := b.TakeN(2); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, wait := b.TakeN(1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait != time.Second {
		t.Fatalf("wait = %v, want 1s for 1 token at 1/s", wait)
	}
	// A refused take consumes nothing: the same request succeeds once the
	// advertised wait has passed.
	clk.advance(time.Second)
	if ok, _ := b.TakeN(1); !ok {
		t.Fatal("bucket still empty after the advertised wait")
	}
	// Refill caps at burst, not unbounded.
	clk.advance(time.Hour)
	if got := b.Tokens(); got != 2 {
		t.Fatalf("Tokens = %g after long idle, want burst cap 2", got)
	}
}

func TestAdmissionDisabled(t *testing.T) {
	if a := NewAdmission(AdmissionConfig{Rate: 0}); a != nil {
		t.Fatal("Rate 0 should disable admission (nil controller)")
	}
	var a *Admission // nil = admit-all
	if d := a.AdmitN("anyone", 100); !d.OK {
		t.Fatal("nil admission must admit everything")
	}
	if got := a.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v", got)
	}
	if ad, sh := a.Totals(); ad != 0 || sh != 0 {
		t.Fatalf("nil Totals = %d/%d", ad, sh)
	}
}

// TestAdmissionTenantIsolation: one tenant exhausting its bucket must
// not shed another tenant's traffic.
func TestAdmissionTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{Rate: 1, Burst: 2, Now: clk.now})

	if d := a.AdmitN("alice", 2); !d.OK {
		t.Fatal("alice's burst refused")
	}
	d := a.AdmitN("alice", 1)
	if d.OK {
		t.Fatal("alice admitted over rate")
	}
	if d.RetryAfter != time.Second {
		t.Fatalf("alice RetryAfter = %v, want 1s", d.RetryAfter)
	}
	if d := a.AdmitN("bob", 2); !d.OK {
		t.Fatal("bob shed because of alice's traffic")
	}

	admitted, shed := a.Totals()
	if admitted != 4 || shed != 1 {
		t.Fatalf("Totals = %d admitted / %d shed, want 4/1", admitted, shed)
	}
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != "alice" || snap[1].Tenant != "bob" {
		t.Fatalf("Snapshot = %+v", snap)
	}
	if snap[0].Admitted != 2 || snap[0].Shed != 1 || snap[1].Admitted != 2 || snap[1].Shed != 0 {
		t.Fatalf("Snapshot counters = %+v", snap)
	}
}

// TestAdmissionOverflowTenant: beyond MaxTenants, new tenant names share
// one overflow bucket instead of growing the table without bound.
func TestAdmissionOverflowTenant(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{Rate: 1, Burst: 1, MaxTenants: 2, Now: clk.now})
	a.AdmitN("t1", 1)
	a.AdmitN("t2", 1)
	// Table full: t3 and t4 share the overflow bucket (burst 1 total).
	if d := a.AdmitN("t3", 1); !d.OK {
		t.Fatal("first overflow take refused")
	}
	if d := a.AdmitN("t4", 1); d.OK {
		t.Fatal("overflow bucket should be shared — t4 must be refused after t3 drained it")
	}
	snap := a.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("tenant table grew to %d entries, want 2 + overflow", len(snap))
	}
	if snap[0].Tenant != overflowTenant {
		t.Fatalf("Snapshot[0] = %q, want the overflow tenant first (sorts before letters)", snap[0].Tenant)
	}
}

func TestAdmissionDefaults(t *testing.T) {
	cfg := AdmissionConfig{Rate: 5}.withDefaults()
	if cfg.Burst != 10 {
		t.Errorf("default Burst = %g, want 2*Rate", cfg.Burst)
	}
	if cfg.MaxTenants != 1024 {
		t.Errorf("default MaxTenants = %d", cfg.MaxTenants)
	}
	if cfg.Now == nil {
		t.Error("default Now missing")
	}
}
