package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func mustAppend(t *testing.T, s *Store, rec Record) {
	t.Helper()
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRoundtrip: journaled lifecycle records survive a close/reopen
// with the right pending/done split.
func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k", Key: "key-a", Payload: json.RawMessage(`{"x":1}`)})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "b", Kind: "k", Key: "key-b"})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "c", Kind: "k"})
	mustAppend(t, s, Record{Op: OpStart, ID: "a"})
	mustAppend(t, s, Record{Op: OpDone, ID: "a", Result: json.RawMessage(`{"ok":true}`)})
	mustAppend(t, s, Record{Op: OpStart, ID: "b"}) // interrupted: no terminal record
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	if re.Len() != 3 {
		t.Fatalf("Len = %d, want 3", re.Len())
	}
	done := re.Done()
	if len(done) != 1 || done[0].ID != "a" || string(done[0].Result) != `{"ok":true}` {
		t.Fatalf("Done = %+v", done)
	}
	pending := re.Pending()
	if len(pending) != 2 || pending[0].ID != "b" || pending[1].ID != "c" {
		t.Fatalf("Pending = %+v, want [b c] in submit order", pending)
	}
	if !pending[0].Interrupted() {
		t.Error("b started but unterminated should replay as interrupted")
	}
	if pending[1].Interrupted() {
		t.Error("c never started; must not be interrupted")
	}
}

// TestStoreTornFinalLine: a crash mid-append leaves a torn last line; the
// reopen must ignore it and keep everything before it.
func TestStoreTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k"})
	mustAppend(t, s, Record{Op: OpDone, ID: "a"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","id":"tor`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	if re.Len() != 1 {
		t.Fatalf("Len = %d after torn line, want 1", re.Len())
	}
	// The store stays appendable after recovering from the torn line.
	mustAppend(t, re, Record{Op: OpSubmit, ID: "b", Kind: "k"})
	if len(re.Pending()) != 1 {
		t.Fatalf("Pending = %+v", re.Pending())
	}
}

// TestStoreCompact: compaction snapshots done+pending, drops fail/cancel,
// and the journal keeps working (and replaying) afterwards.
func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	mustAppend(t, s, Record{Op: OpSubmit, ID: "done1", Kind: "k", Key: "kd", Payload: json.RawMessage(`1`)})
	mustAppend(t, s, Record{Op: OpDone, ID: "done1", Result: json.RawMessage(`42`)})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "failed", Kind: "k"})
	mustAppend(t, s, Record{Op: OpFail, ID: "failed", Err: "boom"})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "queued", Kind: "k"})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after compact, want 2 (fail dropped)", s.Len())
	}
	// Post-compact appends land in the truncated journal.
	mustAppend(t, s, Record{Op: OpSubmit, ID: "late", Kind: "k"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestStore(t, dir)
	if re.Len() != 3 {
		t.Fatalf("Len = %d after reopen, want 3 (snapshot 2 + journal 1)", re.Len())
	}
	done := re.Done()
	if len(done) != 1 || done[0].ID != "done1" || string(done[0].Result) != `42` {
		t.Fatalf("Done after compact+reopen = %+v", done)
	}
	p := re.Pending()
	if len(p) != 2 || p[0].ID != "queued" || p[1].ID != "late" {
		t.Fatalf("Pending after compact+reopen = %+v", p)
	}
}

// TestStoreDuplicateSubmitKeepsFirst: replay folds duplicate submit
// lines onto the first occurrence (idempotent journal application).
func TestStoreDuplicateSubmitKeepsFirst(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k1"})
	mustAppend(t, s, Record{Op: OpSubmit, ID: "a", Kind: "k2"})
	p := s.Pending()
	if len(p) != 1 || p[0].Kind != "k1" {
		t.Fatalf("Pending = %+v, want one job of kind k1", p)
	}
}

// TestStoreClosedRejectsAppend: appends after Close fail loudly instead
// of silently dropping durability.
func TestStoreClosedRejectsAppend(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpSubmit, ID: "x"}); err == nil {
		t.Fatal("Append on a closed store succeeded")
	}
}
