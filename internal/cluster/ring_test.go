package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: the same (members, vnodes) assigns every key the
// same owner regardless of join order — router replicas agree on the
// shard map without coordination.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3"} {
		a.Add(n)
	}
	b := NewRing(64)
	for _, n := range []string{"n3", "n1", "n2"} {
		b.Add(n)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("join order changed owner of %s: %s vs %s", key, oa, ob)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0) // 0 → DefaultVNodes
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.Owners("k", 3); got != nil {
		t.Fatalf("empty ring Owners = %v", got)
	}
	r.Add("n1")
	r.Add("n1") // idempotent
	if r.Size() != 1 {
		t.Fatalf("Size = %d after duplicate Add", r.Size())
	}
	r.Remove("ghost") // idempotent
	r.Add("n2")
	if got := r.Members(); len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("Members = %v", got)
	}
}

// TestRingOwnersPreferenceOrder: Owners returns distinct members, the
// owner first — the router's failover order.
func TestRingOwnersPreferenceOrder(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		r.Add(n)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 10) // clamped to 4
		if len(owners) != 4 {
			t.Fatalf("Owners(%s) = %v, want 4 distinct", key, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s) repeats %s: %v", key, o, owners)
			}
			seen[o] = true
		}
		first, _ := r.Owner(key)
		if owners[0] != first {
			t.Fatalf("Owners[0] = %s but Owner = %s", owners[0], first)
		}
	}
}

// TestRingBalance: with enough virtual nodes no member's key share
// strays wildly from the fair 1/N.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVNodes)
	nodes := []string{"n1", "n2", "n3", "n4"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 4000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("key-%d", i))
		counts[o]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Errorf("node %s owns %d keys, fair share %d (spread > 2x)", n, counts[n], fair)
		}
	}
}

// TestRingRebalance is the consistent-hashing property the design leans
// on: adding or removing one of N members moves only about K/N keys, so
// per-node caches stay warm across membership changes.
func TestRingRebalance(t *testing.T) {
	const keys = 4000
	r := NewRing(DefaultVNodes)
	nodes := []string{"n1", "n2", "n3", "n4"}
	for _, n := range nodes {
		r.Add(n)
	}
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Owner(fmt.Sprintf("key-%d", i))
	}

	// Join: a 5th node should take ~1/5 of the keys and nothing else moves.
	r.Add("n5")
	movedToNew, movedElsewhere := 0, 0
	after := make([]string, keys)
	for i := range after {
		after[i], _ = r.Owner(fmt.Sprintf("key-%d", i))
		if after[i] != before[i] {
			if after[i] == "n5" {
				movedToNew++
			} else {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere != 0 {
		t.Errorf("join moved %d keys between pre-existing nodes; consistent hashing moves none", movedElsewhere)
	}
	fair := keys / 5
	if movedToNew < fair/2 || movedToNew > fair*2 {
		t.Errorf("join moved %d keys to the new node, want about %d (K/N)", movedToNew, fair)
	}

	// Leave: removing n5 must restore the original map exactly.
	r.Remove("n5")
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("key-%d", i))
		if o != before[i] {
			t.Fatalf("key-%d owner %s after leave, want original %s", i, o, before[i])
		}
	}
}
