package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestCostModelCalibration(t *testing.T) {
	c := DefaultCostModel()
	// Artisan G-1-style session: ~10 QA steps, 1 sim, mapping → paper
	// reports 7.68 m; accept 6–10 m.
	d := c.ArtisanTime(1, 10, true)
	if d < 6*time.Minute || d > 10*time.Minute {
		t.Errorf("Artisan modeled time = %v, want 6–10 m", d)
	}
	// BOBO at 250 sims → paper 4.55–6.09 h.
	if bd := c.BOBOTime(250); bd < 4*time.Hour || bd > 7*time.Hour {
		t.Errorf("BOBO modeled time = %v, want 4–7 h", bd)
	}
	// RLBO at 250 sims → paper 5.28–6.63 h.
	if rd := c.RLBOTime(250); rd < 4*time.Hour || rd > 7*time.Hour {
		t.Errorf("RLBO modeled time = %v, want 4–7 h", rd)
	}
	// Speedup shape: baseline/Artisan should land in the paper's 20–50×.
	sp := float64(c.BOBOTime(250)) / float64(c.ArtisanTime(1, 10, true))
	if sp < 15 || sp > 60 {
		t.Errorf("modeled speedup = %.1f×, want 15–60×", sp)
	}
}

// A reduced-size Table 3 (2 trials, small budget) still reproduces the
// paper's qualitative structure: the off-the-shelf LLMs never succeed,
// Artisan succeeds on (almost) every trial, Artisan is orders of
// magnitude faster than the optimizers.
func TestTable3Shape(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Trials = 2
	cfg.Budget = 60
	cfg.Groups = []string{"G-1", "G-5"}
	t3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Cells) != len(AllMethods())*2 {
		t.Fatalf("cells = %d", len(t3.Cells))
	}
	for _, group := range cfg.Groups {
		if c, _ := t3.Cell(MethodGPT4, group); c.Successes != 0 {
			t.Errorf("GPT-4 on %s: %d successes, want 0", group, c.Successes)
		}
		if c, _ := t3.Cell(MethodLlama2, group); c.Successes != 0 {
			t.Errorf("Llama2 on %s: %d successes, want 0", group, c.Successes)
		}
		a, _ := t3.Cell(MethodArtisan, group)
		if a.Successes < 1 {
			t.Errorf("Artisan on %s: %d/%d successes", group, a.Successes, a.Trials)
		}
		if a.Time <= 0 || a.Time > 30*time.Minute {
			t.Errorf("Artisan time on %s = %v", group, a.Time)
		}
		b, _ := t3.Cell(MethodBOBO, group)
		if b.Time < 30*time.Minute {
			t.Errorf("BOBO time on %s = %v, want hours-scale", group, b.Time)
		}
		if s := t3.Speedup(MethodBOBO, group); s < 3 {
			t.Errorf("speedup over BOBO on %s = %.1f", group, s)
		}
	}
	text := t3.String()
	for _, want := range []string{"Method", "Artisan", "BOBO", "GPT-4", "Succ."} {
		if !strings.Contains(text, want) {
			t.Errorf("table text missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Trials = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Trials = 1
	cfg.Groups = []string{"G-9"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestCellFormatting(t *testing.T) {
	c := Cell{Method: MethodArtisan, Group: "G-1", Trials: 10, Successes: 9}
	if c.SuccessRate() != "9/10" {
		t.Errorf("SuccessRate = %q", c.SuccessRate())
	}
	if fmtDur(0) != "-" {
		t.Error("zero duration should render as -")
	}
	if !strings.HasSuffix(fmtDur(90*time.Minute), "h") {
		t.Error("hours formatting")
	}
	if !strings.HasSuffix(fmtDur(5*time.Minute), "m") {
		t.Error("minutes formatting")
	}
}

// Determinism: the harness is fully seeded.
func TestHarnessDeterministic(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Trials = 2
	cfg.Methods = []Method{MethodArtisan}
	cfg.Groups = []string{"G-1"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("harness is not deterministic")
	}
}
