package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// Process-corner analysis: re-evaluate a finished topology under the
// canonical fast/slow device corners. Corners scale the *model*
// quantities (transconductance per bias, transit frequency, intrinsic
// gain) rather than individual elements, complementing the per-device
// Monte-Carlo mismatch of yield.go.

// Corner scales the behavioral device model.
type Corner struct {
	Name    string
	GmScale float64 // transconductance at fixed bias
	FTScale float64 // transit frequency (parasitic capacitance shrinks as FT grows)
	A0Scale float64 // intrinsic gain
}

// StandardCorners returns the canonical five-corner set.
func StandardCorners() []Corner {
	return []Corner{
		{Name: "TT", GmScale: 1.00, FTScale: 1.00, A0Scale: 1.00},
		{Name: "FF", GmScale: 1.10, FTScale: 1.30, A0Scale: 0.88},
		{Name: "SS", GmScale: 0.90, FTScale: 0.75, A0Scale: 1.12},
		{Name: "FS", GmScale: 1.05, FTScale: 1.10, A0Scale: 0.95},
		{Name: "SF", GmScale: 0.95, FTScale: 0.90, A0Scale: 1.05},
	}
}

// CornerResult is one corner's measurement.
type CornerResult struct {
	Corner Corner
	Report measure.Report
	Pass   bool
}

// CornersReport aggregates the sweep.
type CornersReport struct {
	Results []CornerResult
}

// AllPass reports whether every corner met the spec.
func (r CornersReport) AllPass() bool {
	for _, c := range r.Results {
		if !c.Pass {
			return false
		}
	}
	return len(r.Results) > 0
}

// String renders a compact corner table.
func (r CornersReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %9s %10s %8s %10s %6s\n", "corn", "Gain(dB)", "GBW(MHz)", "PM(°)", "Power(µW)", "pass")
	for _, c := range r.Results {
		fmt.Fprintf(&b, "%-4s %9.1f %10.3f %8.2f %10.1f %6v\n",
			c.Corner.Name, c.Report.GainDB, c.Report.GBW/1e6, c.Report.PM,
			c.Report.Power*1e6, c.Pass)
	}
	return b.String()
}

// runCorner evaluates one corner against the spec. Each corner works on
// its own topology clone and compiled circuit, so corners are independent
// and safe to evaluate concurrently.
func runCorner(topo *topology.Topology, sp spec.Spec, cn Corner) (CornerResult, error) {
	if cn.GmScale <= 0 || cn.FTScale <= 0 || cn.A0Scale <= 0 {
		return CornerResult{}, fmt.Errorf("experiment: corner %q has non-positive scale", cn.Name)
	}
	tp := topo.Clone()
	for i := range tp.Stages {
		tp.Stages[i].Gm *= cn.GmScale
		tp.Stages[i].A0 *= cn.A0Scale
	}
	for i := range tp.Conns {
		if tp.Conns[i].Type.HasGm() {
			tp.Conns[i].Gm *= cn.GmScale
		}
	}
	env := topology.DefaultEnv()
	env.CL, env.RL = sp.CL, sp.RL
	env.Dev.FT *= cn.FTScale
	nl, err := tp.Elaborate(env)
	if err != nil {
		return CornerResult{}, fmt.Errorf("experiment: corner %s: %w", cn.Name, err)
	}
	rep, err := measure.Analyze(nl, "out")
	if err != nil {
		return CornerResult{}, fmt.Errorf("experiment: corner %s: %w", cn.Name, err)
	}
	return CornerResult{Corner: cn, Report: rep, Pass: sp.Satisfied(rep)}, nil
}

// RunCorners evaluates the topology at every corner under the spec's
// load. The corner scalings apply to the skeleton stages and to every
// transconductor in the compensation network. Corners are evaluated with
// GOMAXPROCS workers; see RunCornersParallel for the determinism
// contract.
func RunCorners(topo *topology.Topology, sp spec.Spec, corners []Corner) (CornersReport, error) {
	return RunCornersParallel(topo, sp, corners, 0)
}

// RunCornersParallel shards the corner sweep over workers goroutines
// (0 = GOMAXPROCS, 1 = serial). Results are collected in corner order and
// a failure reports the lowest-index failing corner together with the
// results that precede it, so the output is identical for any worker
// count — including the serial loop it replaces.
func RunCornersParallel(topo *topology.Topology, sp spec.Spec, corners []Corner, workers int) (CornersReport, error) {
	if len(corners) == 0 {
		corners = StandardCorners()
	}
	results := make([]CornerResult, len(corners))
	errs := make([]error, len(corners))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(corners) {
		workers = len(corners)
	}
	if workers <= 1 {
		for i, cn := range corners {
			results[i], errs[i] = runCorner(topo, sp, cn)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int, len(corners))
		for i := range corners {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = runCorner(topo, sp, corners[i])
				}
			}()
		}
		wg.Wait()
	}
	var out CornersReport
	for i := range results {
		if errs[i] != nil {
			return out, errs[i]
		}
		out.Results = append(out.Results, results[i])
	}
	return out, nil
}
