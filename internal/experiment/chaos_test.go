package experiment

import (
	"context"
	"errors"
	"testing"
)

// artisanSuccesses runs an Artisan-only sweep and tallies successes.
func artisanSuccesses(t *testing.T, cfg Config) (succ, trials int) {
	t.Helper()
	t3, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range t3.Cells {
		succ += c.Successes
		trials += c.Trials
	}
	return succ, trials
}

// The acceptance bar of the resilience layer: with 30% tool-error fault
// injection and a fixed seed, the Table 3 Artisan success rates stay
// within the no-fault band — retries and the fallback ladder absorb the
// chaos instead of letting it show up as failed designs.
func TestChaosSweepWithinNoFaultBand(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Trials = 5
	cfg.Methods = []Method{MethodArtisan}
	cfg.Groups = []string{"G-1", "G-3", "G-5"}

	healthySucc, trials := artisanSuccesses(t, cfg)

	chaotic := cfg
	chaotic.FaultRate = 0.3
	chaoticSucc, _ := artisanSuccesses(t, chaotic)

	// The band: the chaotic sweep may lose at most one success per group
	// relative to the healthy sweep (the paper's own 7–9/10 spread).
	band := len(cfg.Groups)
	if chaoticSucc < healthySucc-band {
		t.Errorf("chaotic successes %d/%d fell outside the no-fault band (healthy %d/%d)",
			chaoticSucc, trials, healthySucc, trials)
	}
}

// Chaos sweeps are seeded per trial, so a repeated chaotic sweep is
// byte-identical — a production incident's seed replays exactly.
func TestChaosSweepDeterministic(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Trials = 3
	cfg.Methods = []Method{MethodArtisan}
	cfg.Groups = []string{"G-1"}
	cfg.FaultRate = 0.3

	a, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("cell counts diverged")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d diverged: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

// Cancelling the sweep context stops both the serial and the parallel
// harness between trials with the context's error.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(1)
	cfg.Trials = 3
	cfg.Methods = []Method{MethodArtisan}
	cfg.Groups = []string{"G-1"}

	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("serial: err = %v, want Canceled", err)
	}
	cfg.Workers = 4
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: err = %v, want Canceled", err)
	}
}
