package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/spec"
)

// Monte-Carlo yield: how robustly a finished design meets its spec under
// process variation and mismatch. This quantifies the paper's
// interpretability argument — knowledge-driven designs carry deliberate
// margin, while black-box search tends to stop on a constraint boundary,
// so equal nominal performance can hide very different yields.

// YieldOpts configures the Monte-Carlo run.
type YieldOpts struct {
	Samples int     // Monte-Carlo trials (default 200)
	Sigma   float64 // log-normal σ applied to every R/C/gm value (default 0.05)
	Seed    int64
}

// DefaultYieldOpts matches a mature-process 5 % component spread.
func DefaultYieldOpts(seed int64) YieldOpts {
	return YieldOpts{Samples: 200, Sigma: 0.05, Seed: seed}
}

// YieldResult summarises the run.
type YieldResult struct {
	Samples int
	Pass    int
	// WorstViolation counts how often each metric caused a failure.
	Violations map[string]int
}

// Yield returns the fraction of passing samples.
func (r YieldResult) Yield() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Pass) / float64(r.Samples)
}

// String renders the result.
func (r YieldResult) String() string {
	return fmt.Sprintf("yield %.1f%% (%d/%d)", 100*r.Yield(), r.Pass, r.Samples)
}

// MonteCarloYield perturbs every R, C and VCCS value of the behavioral
// netlist log-normally and re-measures against the spec.
func MonteCarloYield(nl *netlist.Netlist, sp spec.Spec, opts YieldOpts) (YieldResult, error) {
	if opts.Samples <= 0 {
		opts.Samples = 200
	}
	if opts.Sigma <= 0 {
		opts.Sigma = 0.05
	}
	if err := nl.Validate(); err != nil {
		return YieldResult{}, fmt.Errorf("experiment: %w", err)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := YieldResult{Samples: opts.Samples, Violations: map[string]int{}}
	for i := 0; i < opts.Samples; i++ {
		mc := nl.Clone()
		for d := range mc.Devices {
			dev := &mc.Devices[d]
			switch dev.Kind {
			case netlist.Resistor, netlist.Capacitor, netlist.VCCS:
				dev.Value *= math.Exp(rng.NormFloat64() * opts.Sigma)
			}
		}
		rep, err := measure.Analyze(mc, "out")
		if err != nil {
			res.Violations["simulation"]++
			continue
		}
		vs := sp.Check(rep)
		if len(vs) == 0 {
			res.Pass++
			continue
		}
		for _, v := range vs {
			res.Violations[v.Metric]++
		}
	}
	return res, nil
}
