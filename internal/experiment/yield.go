package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"artisan/internal/measure"
	"artisan/internal/netlist"
	"artisan/internal/spec"
)

// Monte-Carlo yield: how robustly a finished design meets its spec under
// process variation and mismatch. This quantifies the paper's
// interpretability argument — knowledge-driven designs carry deliberate
// margin, while black-box search tends to stop on a constraint boundary,
// so equal nominal performance can hide very different yields.
//
// Samples are embarrassingly parallel, so the run shards across workers
// the same way mna.SweepParallel shards frequency points. Determinism
// contract: each sample derives its own RNG stream from (Seed, index)
// via a splitmix64 mix and is measured independently, and per-sample
// outcomes are aggregated in index order — so the result is byte-for-byte
// identical for any Workers value, including the serial path.

// YieldOpts configures the Monte-Carlo run.
type YieldOpts struct {
	Samples int     // Monte-Carlo trials (default 200)
	Sigma   float64 // log-normal σ applied to every R/C/gm value (default 0.05)
	Seed    int64
	Workers int // sampling goroutines (0 = GOMAXPROCS, 1 = serial)
}

// DefaultYieldOpts matches a mature-process 5 % component spread.
func DefaultYieldOpts(seed int64) YieldOpts {
	return YieldOpts{Samples: 200, Sigma: 0.05, Seed: seed}
}

// YieldResult summarises the run.
type YieldResult struct {
	Samples int
	Pass    int
	// WorstViolation counts how often each metric caused a failure.
	Violations map[string]int
}

// Yield returns the fraction of passing samples.
func (r YieldResult) Yield() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Pass) / float64(r.Samples)
}

// String renders the result.
func (r YieldResult) String() string {
	return fmt.Sprintf("yield %.1f%% (%d/%d)", 100*r.Yield(), r.Pass, r.Samples)
}

// sampleOutcome is one sample's verdict, aggregated in index order after
// all shards finish.
type sampleOutcome struct {
	pass       bool
	violations []string // metric names; "simulation" on measurement error
}

// splitmixSource is a splitmix64 rand.Source64. Unlike the standard
// lagged-Fibonacci source, reseeding costs two multiplies instead of 607
// state updates, which matters when every Monte-Carlo sample gets its own
// stream. Streams are derived from (run seed, sample index), so a
// sample's draws are identical no matter which worker runs it.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) seedSample(seed int64, i int) {
	s.state = uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
}

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// MonteCarloYield perturbs every R, C and VCCS value of the behavioral
// netlist log-normally and re-measures against the spec, sharding samples
// across opts.Workers goroutines.
func MonteCarloYield(nl *netlist.Netlist, sp spec.Spec, opts YieldOpts) (YieldResult, error) {
	if opts.Samples <= 0 {
		opts.Samples = 200
	}
	if opts.Sigma <= 0 {
		opts.Sigma = 0.05
	}
	if err := nl.Validate(); err != nil {
		return YieldResult{}, fmt.Errorf("experiment: %w", err)
	}
	an, err := measure.NewMCAnalyzer(nl, "out")
	if err != nil {
		return YieldResult{}, fmt.Errorf("experiment: %w", err)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Samples {
		workers = opts.Samples
	}

	// runShard measures samples [lo, hi) with a worker-private session and
	// RNG; every per-sample quantity depends only on the sample index.
	outcomes := make([]sampleOutcome, opts.Samples)
	runShard := func(lo, hi int) {
		sess := an.Session()
		scale := make([]float64, len(nl.Devices))
		var src splitmixSource
		rng := rand.New(&src)
		for i := lo; i < hi; i++ {
			src.seedSample(opts.Seed, i)
			for d := range nl.Devices {
				switch nl.Devices[d].Kind {
				case netlist.Resistor, netlist.Capacitor, netlist.VCCS:
					scale[d] = math.Exp(rng.NormFloat64() * opts.Sigma)
				default:
					scale[d] = 1
				}
			}
			rep, err := sess.Analyze(scale)
			if err != nil {
				outcomes[i] = sampleOutcome{violations: []string{"simulation"}}
				continue
			}
			vs := sp.Check(rep)
			if len(vs) == 0 {
				outcomes[i] = sampleOutcome{pass: true}
				continue
			}
			names := make([]string, len(vs))
			for k, v := range vs {
				names[k] = v.Metric
			}
			outcomes[i] = sampleOutcome{violations: names}
		}
	}

	if workers <= 1 {
		runShard(0, opts.Samples)
	} else {
		var wg sync.WaitGroup
		chunk := (opts.Samples + workers - 1) / workers
		for lo := 0; lo < opts.Samples; lo += chunk {
			hi := lo + chunk
			if hi > opts.Samples {
				hi = opts.Samples
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				runShard(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	res := YieldResult{Samples: opts.Samples, Violations: map[string]int{}}
	for i := range outcomes {
		if outcomes[i].pass {
			res.Pass++
			continue
		}
		for _, m := range outcomes[i].violations {
			res.Violations[m]++
		}
	}
	return res, nil
}
