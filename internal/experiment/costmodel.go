// Package experiment is the evaluation harness of §4: it runs every
// method (BOBO, RLBO, GPT-4, Llama2, Artisan) on every spec group of
// Table 2 for repeated trials and renders the Table 3 comparison —
// success rate, mean metrics, FoM, and modeled wall-clock time.
package experiment

import (
	"time"
)

// CostModel converts counted operations into the wall-clock time of the
// paper's infrastructure. Our substrate executes in microseconds; the
// paper's runtimes are dominated by Cadence Spectre invocations and
// LLM inference on 8×A100, both of which the harness counts exactly, so
// the Time column of Table 3 is regenerated from first principles.
type CostModel struct {
	// SpectreSim is one Cadence Spectre AC+measurement run including
	// netlisting and job overhead.
	SpectreSim time.Duration
	// LLMStep is one QA exchange: Artisan-LLM generation (7B on A100)
	// plus the GPT-4 prompter round trip.
	LLMStep time.Duration
	// BOOverhead is the per-iteration surrogate cost of BOBO (GP fit +
	// acquisition optimization in the embedding space).
	BOOverhead time.Duration
	// RLOverhead is the per-simulation overhead of RLBO (policy update,
	// netlist synthesis, inner sizing bookkeeping).
	RLOverhead time.Duration
	// GmIDMapping is the final transistor mapping step.
	GmIDMapping time.Duration
}

// DefaultCostModel is calibrated so the regenerated Time column lands on
// the paper's order: baselines at 4.5–6.6 h for ~250 simulations, Artisan
// at 7–16 min for ~10–20 QA steps.
func DefaultCostModel() CostModel {
	return CostModel{
		SpectreSim:  40 * time.Second,
		LLMStep:     42 * time.Second,
		BOOverhead:  25 * time.Second,
		RLOverhead:  36 * time.Second,
		GmIDMapping: 60 * time.Second,
	}
}

// ArtisanTime models one Artisan session.
func (c CostModel) ArtisanTime(simCount, qaCount int, mapped bool) time.Duration {
	d := time.Duration(simCount)*c.SpectreSim + time.Duration(qaCount)*c.LLMStep
	if mapped {
		d += c.GmIDMapping
	}
	return d
}

// BOBOTime models one BOBO run of the given simulation count.
func (c CostModel) BOBOTime(sims int) time.Duration {
	return time.Duration(sims) * (c.SpectreSim + c.BOOverhead)
}

// RLBOTime models one RLBO run.
func (c CostModel) RLBOTime(sims int) time.Duration {
	return time.Duration(sims) * (c.SpectreSim + c.RLOverhead)
}
