package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"artisan/internal/agents"
	"artisan/internal/jobs"
	"artisan/internal/llm"
	"artisan/internal/measure"
	"artisan/internal/opt"
	"artisan/internal/resilience"
	"artisan/internal/spec"
	"artisan/internal/telemetry"
	"artisan/internal/units"
)

// Method identifies one compared system.
type Method string

// The five methods of Table 3.
const (
	MethodBOBO    Method = "BOBO"
	MethodRLBO    Method = "RLBO"
	MethodGPT4    Method = "GPT-4"
	MethodLlama2  Method = "Llama2"
	MethodArtisan Method = "Artisan"
	// MethodGA is an extension comparator (genetic topology search, the
	// third black-box family the paper's introduction cites); it is not
	// part of the Table 3 defaults.
	MethodGA Method = "GA"
)

// AllMethods returns the Table 3 row order.
func AllMethods() []Method {
	return []Method{MethodBOBO, MethodRLBO, MethodGPT4, MethodLlama2, MethodArtisan}
}

// Config controls the harness.
type Config struct {
	Trials      int // repetitions per cell (paper: 10)
	Seed        int64
	Budget      int     // baseline simulation budget per run (paper-scale: 250)
	Temperature float64 // Artisan-LLM operating temperature
	Methods     []Method
	Groups      []string // subset of G-1..G-5; empty = all
	Cost        CostModel
	// Workers > 1 fans trial runs out over a worker pool. Per-trial
	// seeds are derived from (Seed, trial index, group), never from
	// execution order, so the parallel harness produces byte-identical
	// Table 3 cells to the serial one.
	Workers int
	// FaultRate, when positive, runs the Artisan trials in chaos mode:
	// every designer call fails with that probability (seeded per trial,
	// so the chaotic sweep is reproducible) and the session runs with
	// the resilience ladder — retries plus fallback to the deterministic
	// retrieval model — that production uses. The acceptance bar is that
	// Table 3 success rates stay within the no-fault band.
	FaultRate float64
}

// DefaultConfig reproduces the paper's protocol.
func DefaultConfig(seed int64) Config {
	return Config{
		Trials: 10, Seed: seed, Budget: 250, Temperature: 0.22,
		Methods: AllMethods(), Cost: DefaultCostModel(),
	}
}

// Cell is one (method, group) entry of Table 3: aggregate over trials.
type Cell struct {
	Method    Method
	Group     string
	Trials    int
	Successes int
	// Means over successful trials (the paper reports averages of the
	// achieved metrics).
	Gain, GBW, PM, Power, FoM float64
	// Time is the mean modeled wall-clock per trial (0 for the LLM
	// baselines, which cannot execute the flow at all — the paper prints
	// "-" there).
	Time time.Duration
}

// SuccessRate renders "k/n".
func (c Cell) SuccessRate() string { return fmt.Sprintf("%d/%d", c.Successes, c.Trials) }

// Table3 is the full comparison. Cells carry the modeled (cost-model)
// times and stay comparable structs; the measured, trace-derived phase
// breakdowns live here, keyed by "method|group", because they are
// wall-clock observations that differ run to run.
type Table3 struct {
	Cells  []Cell
	Cfg    Config
	Phases map[string]PhaseTimes
}

// addPhases stores a cell's measured breakdown, if any.
func (t *Table3) addPhases(m Method, group string, pt PhaseTimes) {
	if len(pt) == 0 {
		return
	}
	if t.Phases == nil {
		t.Phases = map[string]PhaseTimes{}
	}
	t.Phases[phaseKey(m, group)] = pt
}

// Run executes the comparison.
func Run(cfg Config) (*Table3, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the comparison under a context: cancellation stops
// the sweep between trials (and mid-trial inside the agent sessions) and
// returns the context's error instead of a partial table.
func RunContext(ctx context.Context, cfg Config) (*Table3, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiment: trials must be >= 1")
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = AllMethods()
	}
	groups := spec.Groups()
	if len(cfg.Groups) > 0 {
		var sel []spec.Spec
		for _, name := range cfg.Groups {
			g, err := spec.Group(name)
			if err != nil {
				return nil, err
			}
			sel = append(sel, g)
		}
		groups = sel
	}
	if cfg.Workers > 1 {
		return runParallel(ctx, cfg, groups)
	}
	t3 := &Table3{Cfg: cfg}
	for _, m := range cfg.Methods {
		for _, g := range groups {
			cell, phases, err := runCell(ctx, m, g, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s on %s: %w", m, g.Name, err)
			}
			t3.Cells = append(t3.Cells, cell)
			t3.addPhases(m, g.Name, phases)
		}
	}
	return t3, nil
}

// trialTask addresses one (method, group, trial) unit of the sweep.
type trialTask struct {
	m    Method
	g    spec.Spec
	seed int64
}

// key canonicalizes a trial for the pool's coalescing map and result
// cache. Seeded methods key on their per-trial seed, so every trial runs.
// The off-the-shelf LLM baselines ignore the seed entirely — their
// repeated trials share one key and coalesce to a single run whose
// result every trial of the cell reuses.
func (t trialTask) key(cfg Config) string {
	if t.m == MethodGPT4 || t.m == MethodLlama2 {
		return fmt.Sprintf("trial|%s|%s|budget=%d", t.m, t.g.Name, cfg.Budget)
	}
	return fmt.Sprintf("trial|%s|%s|budget=%d|seed=%d", t.m, t.g.Name, cfg.Budget, t.seed)
}

// runParallel fans every trial of every cell out over a jobs manager via
// SubmitBatch — the same coalescing batch primitive behind the server's
// batch endpoints — so duplicate trials (the seed-blind LLM baselines)
// run once per cell. Each trial is seeded exactly as in the serial path
// and results are reassembled in (method, group, trial) index order, so
// the resulting Table 3 is byte-identical to a serial run with the same
// Config.
func runParallel(ctx context.Context, cfg Config, groups []spec.Spec) (*Table3, error) {
	var tasks []trialTask
	for _, m := range cfg.Methods {
		for _, g := range groups {
			for i := 0; i < cfg.Trials; i++ {
				tasks = append(tasks, trialTask{m: m, g: g, seed: trialSeed(cfg.Seed, i, g.Name)})
			}
		}
	}

	mgr := jobs.NewManager(jobs.Config{
		Workers: cfg.Workers, Queue: len(tasks), CacheSize: len(tasks),
	})
	defer func() {
		drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(drain)
	}()

	// sweepCtx merges the caller's context with first-error abort: any
	// failing trial cancels the rest of the sweep, matching the serial
	// harness's stop-at-first-error behavior.
	sweepCtx, cancelSweep := context.WithCancel(ctx)
	defer cancelSweep()

	items := make([]jobs.BatchItem, len(tasks))
	for i, task := range tasks {
		task := task
		items[i] = jobs.BatchItem{
			Fn: func(jctx context.Context) (any, error) {
				// The pool runs jobs under its own context; bridge the
				// sweep context in so caller cancellation (and first-error
				// abort) stops running trials too.
				runCtx, cancel := context.WithCancel(jctx)
				defer cancel()
				stop := context.AfterFunc(sweepCtx, cancel)
				defer stop()
				if err := sweepCtx.Err(); err != nil {
					return nil, err
				}
				tr, err := runTrial(runCtx, task.m, task.g, cfg, task.seed)
				if err != nil {
					if cerr := sweepCtx.Err(); cerr != nil {
						return nil, cerr
					}
					cancelSweep()
					return nil, fmt.Errorf("experiment: %s on %s: %w", task.m, task.g.Name, err)
				}
				return tr, nil
			},
			Opts: jobs.SubmitOpts{Key: task.key(cfg)},
		}
	}

	raw, errs := jobs.WaitBatch(sweepCtx, mgr.SubmitBatch(items))
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Prefer the root-cause trial error over the context.Canceled
		// noise the first-error abort induces in its neighbours.
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	results := make([]trialResult, len(raw))
	for i, v := range raw {
		results[i] = v.(trialResult)
	}
	t3 := &Table3{Cfg: cfg}
	for ci := 0; ci*cfg.Trials < len(results); ci++ {
		task := tasks[ci*cfg.Trials]
		cellResults := results[ci*cfg.Trials : (ci+1)*cfg.Trials]
		cell := aggregateCell(task.m, task.g, cfg, cellResults)
		t3.Cells = append(t3.Cells, cell)
		t3.addPhases(task.m, task.g.Name, meanPhases(cellResults))
	}
	return t3, nil
}

type trialResult struct {
	ok   bool
	rep  measure.Report
	time time.Duration
	// phases is the measured trace-derived breakdown; nil for the
	// black-box baselines, which emit no spans.
	phases PhaseTimes
}

// trialSeed derives the deterministic per-trial seed; it depends only on
// the configured seed, trial index, and group — never execution order.
func trialSeed(base int64, trial int, group string) int64 {
	return base + int64(trial)*1009 + hashGroup(group)
}

func runCell(ctx context.Context, m Method, g spec.Spec, cfg Config) (Cell, PhaseTimes, error) {
	var results []trialResult
	for i := 0; i < cfg.Trials; i++ {
		if err := ctx.Err(); err != nil {
			return Cell{Method: m, Group: g.Name, Trials: cfg.Trials}, nil, err
		}
		tr, err := runTrial(ctx, m, g, cfg, trialSeed(cfg.Seed, i, g.Name))
		if err != nil {
			return Cell{Method: m, Group: g.Name, Trials: cfg.Trials}, nil, err
		}
		results = append(results, tr)
	}
	return aggregateCell(m, g, cfg, results), meanPhases(results), nil
}

// aggregateCell folds trial results into one Table 3 cell. Shared by the
// serial and parallel harnesses so both produce identical cells.
func aggregateCell(m Method, g spec.Spec, cfg Config, results []trialResult) Cell {
	cell := Cell{Method: m, Group: g.Name, Trials: cfg.Trials}
	var tsum time.Duration
	for _, r := range results {
		tsum += r.time
		if !r.ok {
			continue
		}
		cell.Successes++
		cell.Gain += r.rep.GainDB
		cell.GBW += r.rep.GBW
		cell.PM += r.rep.PM
		cell.Power += r.rep.Power
		cell.FoM += g.FoMOf(r.rep)
	}
	if cell.Successes > 0 {
		n := float64(cell.Successes)
		cell.Gain /= n
		cell.GBW /= n
		cell.PM /= n
		cell.Power /= n
		cell.FoM /= n
	}
	cell.Time = tsum / time.Duration(cfg.Trials)
	return cell
}

func runTrial(ctx context.Context, m Method, g spec.Spec, cfg Config, seed int64) (trialResult, error) {
	if err := ctx.Err(); err != nil {
		return trialResult{}, err
	}
	switch m {
	case MethodBOBO:
		res, err := opt.BOBO(g, cfg.Budget, seed)
		if err != nil {
			return trialResult{}, err
		}
		return trialResult{ok: res.Success, rep: res.Report,
			time: cfg.Cost.BOBOTime(res.Sims)}, nil
	case MethodRLBO:
		res, err := opt.RLBO(g, cfg.Budget, seed)
		if err != nil {
			return trialResult{}, err
		}
		return trialResult{ok: res.Success, rep: res.Report,
			time: cfg.Cost.RLBOTime(res.Sims)}, nil
	case MethodGA:
		res, err := opt.GA(g, cfg.Budget, seed, opt.DefaultGAOpts())
		if err != nil {
			return trialResult{}, err
		}
		// GA's per-simulation overhead is negligible next to the sims.
		return trialResult{ok: res.Success, rep: res.Report,
			time: time.Duration(res.Sims) * cfg.Cost.SpectreSim}, nil
	case MethodGPT4, MethodLlama2:
		var model llm.DesignerModel
		if m == MethodGPT4 {
			model = llm.NewGPT4Model()
		} else {
			model = llm.NewLlama2Model()
		}
		tracer := telemetry.NewTracer(1)
		out, err := agents.NewSession(model, g, agents.DefaultOptions()).
			Run(telemetry.WithTracer(ctx, tracer))
		if err != nil {
			return trialResult{}, err
		}
		// The paper prints "-" for time: the off-the-shelf LLMs never
		// complete a run.
		return trialResult{ok: out.Success, rep: out.Report,
			phases: phasesFromTrace(tracer.Traces())}, nil
	case MethodArtisan:
		var designer llm.DesignerModel = llm.NewDomainModel(seed, cfg.Temperature)
		sess := agents.NewSession(designer, g, agents.DefaultOptions())
		if cfg.FaultRate > 0 {
			inj := resilience.NewInjector(resilience.InjectorConfig{
				Seed: seed, ErrorRate: cfg.FaultRate})
			sess.Designer = llm.NewChaosDesigner(designer, inj)
			sess.Res = &agents.Resilience{
				Retry: resilience.RetryPolicy{MaxAttempts: 4,
					BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: seed},
				Fallback: llm.NewDomainModel(seed, 0),
			}
		}
		// Each trial gets its own single-slot tracer: the recorded session
		// span tree becomes the cell's measured phase breakdown.
		tracer := telemetry.NewTracer(1)
		out, err := sess.Run(telemetry.WithTracer(ctx, tracer))
		if err != nil {
			return trialResult{}, err
		}
		return trialResult{ok: out.Success, rep: out.Report,
			time:   cfg.Cost.ArtisanTime(out.SimCount, out.QACount, out.Success),
			phases: phasesFromTrace(tracer.Traces())}, nil
	}
	return trialResult{}, fmt.Errorf("unknown method %q", m)
}

func hashGroup(name string) int64 {
	h := int64(0)
	for _, r := range name {
		h = h*131 + int64(r)
	}
	return h
}

// Cell lookup.
func (t *Table3) Cell(m Method, group string) (Cell, bool) {
	for _, c := range t.Cells {
		if c.Method == m && c.Group == group {
			return c, true
		}
	}
	return Cell{}, false
}

// Speedup returns how much faster Artisan ran than the given baseline on
// a group (the paper's headline 20.4–50.1×).
func (t *Table3) Speedup(baseline Method, group string) float64 {
	a, ok1 := t.Cell(MethodArtisan, group)
	b, ok2 := t.Cell(baseline, group)
	if !ok1 || !ok2 || a.Time == 0 {
		return 0
	}
	return float64(b.Time) / float64(a.Time)
}

// String renders Table 3 in the paper's layout.
func (t *Table3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: performance comparison (%d trials/cell, baseline budget %d sims)\n",
		t.Cfg.Trials, t.Cfg.Budget)
	fmt.Fprintf(&b, "%-8s %-5s %7s %9s %10s %8s %10s %9s %10s\n",
		"Method", "Exps", "Succ.", "Gain(dB)", "GBW(MHz)", "PM(°)", "Power(µW)", "FoM", "Time")
	for _, c := range t.Cells {
		if c.Successes == 0 {
			tm := "-"
			if c.Time > 0 {
				tm = fmtDur(c.Time)
			}
			fmt.Fprintf(&b, "%-8s %-5s %7s %9s %10s %8s %10s %9s %10s\n",
				c.Method, c.Group, c.SuccessRate(), "fail", "fail", "fail", "fail", "fail", tm)
			continue
		}
		fmt.Fprintf(&b, "%-8s %-5s %7s %9.1f %10.2f %8.2f %10.1f %9.1f %10s\n",
			c.Method, c.Group, c.SuccessRate(), c.Gain, c.GBW/1e6, c.PM,
			c.Power*1e6, c.FoM, fmtDur(c.Time))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	if d >= time.Hour {
		return fmt.Sprintf("%.2fh", d.Hours())
	}
	return fmt.Sprintf("%.2fm", d.Minutes())
}

// FormatReport renders one measured report compactly (used by cmds).
func FormatReport(g spec.Spec, rep measure.Report) string {
	return fmt.Sprintf("Gain=%.1fdB GBW=%sHz PM=%.1f° Power=%sW FoM=%.1f",
		rep.GainDB, units.Format(rep.GBW), rep.PM, units.Format(rep.Power), g.FoMOf(rep))
}
