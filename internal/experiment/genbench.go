package experiment

// Generative benchmark sweep: every roster designer analyzes the same
// sequence of freshly generated, seed-randomized tasks, and the harness
// reports grounded-pass-rate, mean rubric score, and credited FoM per
// designer. Because each trial's topology is drawn from the constrained
// random generator, no designer can succeed by memorizing the fixed
// architecture library — claims must be grounded in the trial's own
// netlist to survive verification.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"artisan/internal/bench"
	"artisan/internal/jobs"
)

// GenBenchConfig controls the generative benchmark sweep.
type GenBenchConfig struct {
	Trials int // generated tasks; every designer sees the same set
	Seed   int64
	// Designers is a subset of the bench roster; empty = all.
	Designers []string
	// Workers > 1 fans (designer, trial) cells out over a worker pool;
	// tasks and transcripts depend only on (Seed, trial), so the parallel
	// table is byte-identical to the serial one.
	Workers int
}

// DefaultGenBenchConfig is the standard protocol: a dozen generated
// tasks across the full roster.
func DefaultGenBenchConfig(seed int64) GenBenchConfig {
	return GenBenchConfig{Trials: 12, Seed: seed}
}

// GenBenchRow aggregates one designer over all trials.
type GenBenchRow struct {
	Designer string
	Trials   int
	// GroundPass counts trials whose transcript survived the groundedness
	// verifier with zero findings.
	GroundPass int
	// Citations / Grounded sum the verifier's citation accounting.
	Citations int
	Grounded  int
	Findings  int
	// Rubric is the mean rubric score in [0,1].
	Rubric float64
	// Credited counts trials that were grounded AND scored >= 2/3 on the
	// rubric; FoM is the mean figure of merit over credited trials only.
	Credited int
	FoM      float64
}

// PassRate renders "k/n".
func (r GenBenchRow) PassRate() string { return fmt.Sprintf("%d/%d", r.GroundPass, r.Trials) }

// GroundedFrac is the fraction of citations that checked out.
func (r GenBenchRow) GroundedFrac() float64 {
	if r.Citations == 0 {
		return 0
	}
	return float64(r.Grounded) / float64(r.Citations)
}

// GenBenchTable is the full sweep result.
type GenBenchTable struct {
	Rows []GenBenchRow
	// Stages and Families summarize the generated task set itself:
	// distinct stage counts and compensation families covered.
	Stages   []int
	Families []string
	Cfg      GenBenchConfig
}

// Row looks up one designer's aggregate.
func (t *GenBenchTable) Row(name string) (GenBenchRow, bool) {
	for _, r := range t.Rows {
		if r.Designer == name {
			return r, true
		}
	}
	return GenBenchRow{}, false
}

// String renders the table deterministically (roster order, no map
// iteration), so the same config always yields the same bytes.
func (t *GenBenchTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generative benchmark (%d generated tasks, seed %d)\n", t.Cfg.Trials, t.Cfg.Seed)
	fmt.Fprintf(&b, "Task set: stages %v, families %s\n", t.Stages, strings.Join(t.Families, ", "))
	fmt.Fprintf(&b, "%-11s %9s %10s %9s %7s %9s %10s\n",
		"Designer", "Grounded", "Citations", "Findings", "Rubric", "Credited", "FoM")
	for _, r := range t.Rows {
		fom := "-"
		if r.Credited > 0 {
			fom = fmt.Sprintf("%.1f", r.FoM)
		}
		fmt.Fprintf(&b, "%-11s %9s %6d/%-4d %9d %7.2f %6d/%-4d %10s\n",
			r.Designer, r.PassRate(), r.Grounded, r.Citations, r.Findings,
			r.Rubric, r.Credited, r.Trials, fom)
	}
	return b.String()
}

// genBenchCell addresses one (designer, trial) unit of the sweep.
type genBenchCell struct {
	designer string
	trial    int
	seed     int64
}

func (c genBenchCell) key() string {
	return fmt.Sprintf("gb|%s|trial=%d|seed=%d", c.designer, c.trial, c.seed)
}

// RunGenBench executes the sweep.
func RunGenBench(cfg GenBenchConfig) (*GenBenchTable, error) {
	return RunGenBenchContext(context.Background(), cfg)
}

// RunGenBenchContext executes the sweep under a context. Rows are
// emitted in roster (or configured) order.
func RunGenBenchContext(ctx context.Context, cfg GenBenchConfig) (*GenBenchTable, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiment: genbench trials must be >= 1")
	}
	var designers []bench.Designer
	if len(cfg.Designers) == 0 {
		designers = bench.Designers()
	} else {
		for _, name := range cfg.Designers {
			d := bench.DesignerByName(name)
			if d == nil {
				return nil, fmt.Errorf("experiment: unknown designer %q", name)
			}
			designers = append(designers, d)
		}
	}

	// The task set is shared: generated once per trial index, seeded from
	// (Seed, trial) alone. Task generation is cheap relative to analysis,
	// so the parallel path regenerates per cell rather than sharing
	// pointers across workers.
	tasks := make([]*bench.Task, cfg.Trials)
	for i := range tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := bench.NewTask(i, genBenchSeed(cfg.Seed, i))
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		tasks[i] = t
	}

	var results []bench.TrialResult
	if cfg.Workers > 1 {
		var err error
		results, err = runGenBenchParallel(ctx, cfg, designers)
		if err != nil {
			return nil, err
		}
	} else {
		for _, d := range designers {
			for i, task := range tasks {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				res, err := bench.RunTrial(ctx, d, task)
				if err != nil {
					return nil, fmt.Errorf("experiment: genbench trial %d: %w", i, err)
				}
				results = append(results, res)
			}
		}
	}

	table := &GenBenchTable{Cfg: cfg}
	table.Stages, table.Families = summarizeTasks(tasks)
	for di, d := range designers {
		table.Rows = append(table.Rows,
			aggregateGenBenchRow(d.Name(), cfg, results[di*cfg.Trials:(di+1)*cfg.Trials]))
	}
	return table, nil
}

// runGenBenchParallel fans every (designer, trial) cell out over a jobs
// manager; cells regenerate their own task from the derived seed and
// results reassemble in index order, so the parallel table is byte-
// identical to the serial one.
func runGenBenchParallel(ctx context.Context, cfg GenBenchConfig, designers []bench.Designer) ([]bench.TrialResult, error) {
	var cells []genBenchCell
	for _, d := range designers {
		for i := 0; i < cfg.Trials; i++ {
			cells = append(cells, genBenchCell{designer: d.Name(), trial: i, seed: genBenchSeed(cfg.Seed, i)})
		}
	}
	mgr := jobs.NewManager(jobs.Config{
		Workers: cfg.Workers, Queue: len(cells), CacheSize: len(cells),
	})
	defer func() {
		drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(drain)
	}()

	sweepCtx, cancelSweep := context.WithCancel(ctx)
	defer cancelSweep()

	items := make([]jobs.BatchItem, len(cells))
	for i, cell := range cells {
		cell := cell
		items[i] = jobs.BatchItem{
			Fn: func(jctx context.Context) (any, error) {
				runCtx, cancel := context.WithCancel(jctx)
				defer cancel()
				stop := context.AfterFunc(sweepCtx, cancel)
				defer stop()
				if err := sweepCtx.Err(); err != nil {
					return nil, err
				}
				task, err := bench.NewTask(cell.trial, cell.seed)
				if err == nil {
					var res bench.TrialResult
					res, err = bench.RunTrial(runCtx, bench.DesignerByName(cell.designer), task)
					if err == nil {
						return res, nil
					}
				}
				if cerr := sweepCtx.Err(); cerr != nil {
					return nil, cerr
				}
				cancelSweep()
				return nil, fmt.Errorf("experiment: genbench %s trial %d: %w", cell.designer, cell.trial, err)
			},
			Opts: jobs.SubmitOpts{Key: cell.key()},
		}
	}

	raw, errs := jobs.WaitBatch(sweepCtx, mgr.SubmitBatch(items))
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	results := make([]bench.TrialResult, len(raw))
	for i, v := range raw {
		results[i] = v.(bench.TrialResult)
	}
	return results, nil
}

// genBenchSeed derives the trial's task seed from config alone, so
// serial and parallel sweeps (and re-runs) agree.
func genBenchSeed(base int64, trial int) int64 {
	return base + int64(trial)*7919
}

// summarizeTasks reports the distinct stage counts (ascending) and
// compensation families (sorted) the generated task set covers.
func summarizeTasks(tasks []*bench.Task) ([]int, []string) {
	stageSet := map[int]bool{}
	famSet := map[string]bool{}
	for _, t := range tasks {
		stageSet[t.Topo.NumStages()] = true
		for _, f := range t.Topo.CompFamilies() {
			famSet[f] = true
		}
	}
	var stages []int
	for n := 0; n <= 8; n++ {
		if stageSet[n] {
			stages = append(stages, n)
		}
	}
	fams := make([]string, 0, len(famSet))
	for f := range famSet {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	return stages, fams
}

// aggregateGenBenchRow folds one designer's trial results; shared by the
// serial and parallel sweeps so both produce identical tables.
func aggregateGenBenchRow(name string, cfg GenBenchConfig, results []bench.TrialResult) GenBenchRow {
	row := GenBenchRow{Designer: name, Trials: cfg.Trials}
	for _, r := range results {
		if r.GroundPass {
			row.GroundPass++
		}
		row.Citations += r.Citations
		row.Grounded += r.Grounded
		row.Findings += r.Findings
		row.Rubric += r.Rubric.Score()
		if r.Credited {
			row.Credited++
			row.FoM += r.FoM
		}
	}
	if row.Trials > 0 {
		row.Rubric /= float64(row.Trials)
	}
	if row.Credited > 0 {
		row.FoM /= float64(row.Credited)
	}
	return row
}
