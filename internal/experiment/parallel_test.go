package experiment

import (
	"testing"
)

// The parallel harness must be a pure throughput change: same seeds,
// same cells, byte-identical rendered table.
func TestParallelMatchesSerial(t *testing.T) {
	base := DefaultConfig(7)
	base.Trials = 2
	base.Budget = 60
	base.Groups = []string{"G-1", "G-5"}
	base.Methods = []Method{MethodBOBO, MethodGPT4, MethodArtisan}

	serialCfg := base
	serialCfg.Workers = 0
	serial, err := Run(serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	parallelCfg := base
	parallelCfg.Workers = 4
	parallel, err := Run(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Cells) != len(parallel.Cells) {
		t.Fatalf("cells: serial %d, parallel %d", len(serial.Cells), len(parallel.Cells))
	}
	for i := range serial.Cells {
		if serial.Cells[i] != parallel.Cells[i] {
			t.Errorf("cell %d differs:\nserial   %+v\nparallel %+v",
				i, serial.Cells[i], parallel.Cells[i])
		}
	}
	// Workers is part of Cfg, so compare the rendered tables (which only
	// print trials/budget) byte for byte.
	if s, p := serial.String(), parallel.String(); s != p {
		t.Errorf("rendered tables differ:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// Errors inside a parallel trial surface with cell context.
func TestParallelPropagatesErrors(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Trials = 2
	cfg.Workers = 4
	cfg.Budget = 5 // below BOBO's minimum → deterministic error
	cfg.Groups = []string{"G-1"}
	cfg.Methods = []Method{MethodBOBO}
	if _, err := Run(cfg); err == nil {
		t.Fatal("want budget error from parallel harness")
	}
}
