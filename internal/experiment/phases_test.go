package experiment

import (
	"strings"
	"testing"
	"time"
)

// TestMeasuredPhases runs a small Artisan-only sweep and checks the
// trace-derived phase breakdown: the agentic cells get one, the
// black-box baselines don't, and the renderer mentions both.
func TestMeasuredPhases(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Trials = 1
	cfg.Budget = 60
	cfg.Methods = []Method{MethodBOBO, MethodArtisan}
	cfg.Groups = []string{"G-1"}
	t3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := t3.PhasesFor(MethodArtisan, "G-1")
	if pt == nil {
		t.Fatal("no measured phases for Artisan/G-1")
	}
	if pt["simulation"] <= 0 {
		t.Errorf("simulation phase = %v, want > 0 (got %v)", pt["simulation"], pt)
	}
	if pt["design-flow"] <= 0 {
		t.Errorf("design-flow phase = %v, want > 0 (got %v)", pt["design-flow"], pt)
	}
	if got := t3.PhasesFor(MethodBOBO, "G-1"); got != nil {
		t.Errorf("BOBO is black-box but has phases %v", got)
	}

	text := t3.PhaseBreakdown()
	if !strings.Contains(text, "Artisan") || !strings.Contains(text, "simulation=") {
		t.Errorf("breakdown missing content:\n%s", text)
	}
}

func TestPhaseBreakdownEmpty(t *testing.T) {
	t3 := &Table3{}
	if !strings.Contains(t3.PhaseBreakdown(), "no traced cells") {
		t.Error("empty breakdown should say so")
	}
}

func TestMeanPhases(t *testing.T) {
	results := []trialResult{
		{phases: PhaseTimes{"simulation": 4 * time.Millisecond}},
		{phases: PhaseTimes{"simulation": 2 * time.Millisecond, "tuning": 10 * time.Millisecond}},
		{}, // untraced trial: excluded from the mean
	}
	got := meanPhases(results)
	if got["simulation"] != 3*time.Millisecond {
		t.Errorf("simulation mean = %v, want 3ms", got["simulation"])
	}
	if got["tuning"] != 5*time.Millisecond {
		t.Errorf("tuning mean = %v, want 5ms", got["tuning"])
	}
	if meanPhases(nil) != nil {
		t.Error("no trials should yield nil phases")
	}
}
