package experiment

// Head-to-head sizing-backend comparison: every registered backend (or
// a chosen subset) recovers the same detuned starting designs over the
// Table 2 spec groups, and the harness reports success rate, mean FoM,
// and — the headline — how many simulator evaluations each backend
// spends before its first spec-satisfying candidate. This is the
// white-box-vs-black-box evidence behind the backend subsystem: the
// analytic gm/Id seed should reach spec in a handful of evaluations
// where plain BO needs its whole init phase.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"artisan/internal/backend"
	"artisan/internal/design"
	"artisan/internal/jobs"
	"artisan/internal/measure"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

// BackendConfig controls the comparison sweep.
type BackendConfig struct {
	Trials int // detuned starting points per (backend, group) cell
	Seed   int64
	Budget int // simulator evaluations per backend run
	// Detune is the log-normal sigma of the multiplicative jitter applied
	// to every tunable value of the designed starting topology — how
	// badly mis-sized the initial design is.
	Detune   float64
	Backends []string // subset of backend.Names(); empty = all
	Groups   []string // subset of G-1..G-5; empty = all
	// Workers > 1 fans trials out over a worker pool; per-trial seeds
	// depend only on (Seed, trial, group), so the parallel table is
	// byte-identical to the serial one.
	Workers int
}

// DefaultBackendConfig is the standard protocol: three detuned starts
// per cell, a paper-scale budget, strong detuning.
func DefaultBackendConfig(seed int64) BackendConfig {
	return BackendConfig{Trials: 3, Seed: seed, Budget: 120, Detune: 0.8}
}

// BackendCell aggregates one (backend, group) comparison cell.
type BackendCell struct {
	Backend   string
	Group     string
	Trials    int
	Successes int
	// Degraded counts trials where the requested backend failed and the
	// ladder fell back (the cell then reports the fallback's numbers).
	Degraded int
	// FoM is the mean figure of merit over successful trials.
	FoM float64
	// Evals is the mean simulator evaluations consumed per trial.
	Evals float64
	// EvalsToOK is the mean evaluation index of the first spec-satisfying
	// candidate; failed trials count at the full budget, so an always-
	// failing backend reports the budget itself.
	EvalsToOK float64
}

// SuccessRate renders "k/n".
func (c BackendCell) SuccessRate() string { return fmt.Sprintf("%d/%d", c.Successes, c.Trials) }

// BackendTable is the full comparison.
type BackendTable struct {
	Cells []BackendCell
	Cfg   BackendConfig
}

// Cell looks up one (backend, group) entry.
func (t *BackendTable) Cell(name, group string) (BackendCell, bool) {
	for _, c := range t.Cells {
		if c.Backend == name && c.Group == group {
			return c, true
		}
	}
	return BackendCell{}, false
}

// EvalAdvantage returns how many times fewer evaluations a backend
// needs to reach spec than a baseline backend on a group (0 when either
// cell is missing or the backend never succeeded).
func (t *BackendTable) EvalAdvantage(name, baseline, group string) float64 {
	a, ok1 := t.Cell(name, group)
	b, ok2 := t.Cell(baseline, group)
	if !ok1 || !ok2 || a.EvalsToOK <= 0 || a.Successes == 0 {
		return 0
	}
	return b.EvalsToOK / a.EvalsToOK
}

// String renders the comparison deterministically (fixed column order,
// no map iteration), so the same config always yields the same bytes.
func (t *BackendTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sizing-backend comparison (%d trials/cell, budget %d evals, detune sigma %.2f, seed %d)\n",
		t.Cfg.Trials, t.Cfg.Budget, t.Cfg.Detune, t.Cfg.Seed)
	fmt.Fprintf(&b, "%-9s %-5s %7s %9s %10s %10s %9s\n",
		"Backend", "Group", "Succ.", "Degraded", "FoM", "Evals", "ToSpec")
	for _, c := range t.Cells {
		fom := "-"
		if c.Successes > 0 {
			fom = fmt.Sprintf("%.1f", c.FoM)
		}
		fmt.Fprintf(&b, "%-9s %-5s %7s %9d %10s %10.1f %9.1f\n",
			c.Backend, c.Group, c.SuccessRate(), c.Degraded, fom, c.Evals, c.EvalsToOK)
	}
	return b.String()
}

// backendArchFor mirrors the knowledge base's architecture routing:
// NMCF for the high-GBW group, DFCFC for the huge load, NMC otherwise.
func backendArchFor(group string) string {
	switch group {
	case "G-3":
		return "NMCF"
	case "G-5":
		return "DFCFC"
	default:
		return "NMC"
	}
}

// detuneTopology multiplies every tunable value by a seeded log-normal
// jitter (clamped to e^±1.5), standing in for a badly mis-sized start.
func detuneTopology(t *topology.Topology, seed int64, sigma float64) *topology.Topology {
	rng := rand.New(rand.NewSource(seed))
	jitter := func() float64 {
		v := rng.NormFloat64() * sigma
		if v > 1.5 {
			v = 1.5
		}
		if v < -1.5 {
			v = -1.5
		}
		return math.Exp(v)
	}
	out := t.Clone()
	for i := range out.Stages {
		if out.Stages[i].Gm > 0 {
			out.Stages[i].Gm *= jitter()
		}
	}
	for i := range out.Conns {
		c := &out.Conns[i]
		if c.Type.HasGm() {
			c.Gm *= jitter()
		}
		if c.Type.HasC() {
			c.C *= jitter()
		}
		if c.Type.HasR() {
			c.R *= jitter()
		}
	}
	return out
}

// backendTrialResult is one (backend, group, trial) outcome.
type backendTrialResult struct {
	ok       bool
	degraded bool
	fom      float64
	evals    int
	ets      int // evaluations to first spec-satisfying candidate
}

// backendTask addresses one trial of the parallel sweep.
type backendTask struct {
	name string
	g    spec.Spec
	seed int64
}

func (t backendTask) key(cfg BackendConfig) string {
	return fmt.Sprintf("bt|%s|%s|budget=%d|detune=%g|seed=%d",
		t.name, t.g.Name, cfg.Budget, cfg.Detune, t.seed)
}

// RunBackends executes the comparison.
func RunBackends(cfg BackendConfig) (*BackendTable, error) {
	return RunBackendsContext(context.Background(), cfg)
}

// RunBackendsContext executes the comparison under a context. Cells are
// emitted in (backend, group) order with backends and groups in the
// configured (or registry/Table-2) order.
func RunBackendsContext(ctx context.Context, cfg BackendConfig) (*BackendTable, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiment: trials must be >= 1")
	}
	if cfg.Budget < 10 {
		return nil, fmt.Errorf("experiment: backend budget must be >= 10")
	}
	if cfg.Detune < 0 {
		return nil, fmt.Errorf("experiment: detune sigma must be >= 0")
	}
	names := cfg.Backends
	if len(names) == 0 {
		names = backend.Names()
	} else {
		for _, n := range names {
			if _, err := backend.Get(n); err != nil {
				return nil, err
			}
		}
	}
	groups := spec.Groups()
	if len(cfg.Groups) > 0 {
		var sel []spec.Spec
		for _, name := range cfg.Groups {
			g, err := spec.Group(name)
			if err != nil {
				return nil, err
			}
			sel = append(sel, g)
		}
		groups = sel
	}
	if cfg.Workers > 1 {
		return runBackendsParallel(ctx, cfg, names, groups)
	}
	table := &BackendTable{Cfg: cfg}
	for _, name := range names {
		for _, g := range groups {
			var results []backendTrialResult
			for i := 0; i < cfg.Trials; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				tr, err := runBackendTrial(ctx, name, g, cfg, trialSeed(cfg.Seed, i, g.Name))
				if err != nil {
					return nil, fmt.Errorf("experiment: %s on %s: %w", name, g.Name, err)
				}
				results = append(results, tr)
			}
			table.Cells = append(table.Cells, aggregateBackendCell(name, g.Name, cfg, results))
		}
	}
	return table, nil
}

// runBackendsParallel fans every trial out over a jobs manager, exactly
// like the Table 3 harness: per-trial seeds are derived from config
// alone and results reassemble in index order, so the parallel table is
// byte-identical to the serial one.
func runBackendsParallel(ctx context.Context, cfg BackendConfig, names []string, groups []spec.Spec) (*BackendTable, error) {
	var tasks []backendTask
	for _, name := range names {
		for _, g := range groups {
			for i := 0; i < cfg.Trials; i++ {
				tasks = append(tasks, backendTask{name: name, g: g, seed: trialSeed(cfg.Seed, i, g.Name)})
			}
		}
	}
	mgr := jobs.NewManager(jobs.Config{
		Workers: cfg.Workers, Queue: len(tasks), CacheSize: len(tasks),
	})
	defer func() {
		drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(drain)
	}()

	sweepCtx, cancelSweep := context.WithCancel(ctx)
	defer cancelSweep()

	items := make([]jobs.BatchItem, len(tasks))
	for i, task := range tasks {
		task := task
		items[i] = jobs.BatchItem{
			Fn: func(jctx context.Context) (any, error) {
				runCtx, cancel := context.WithCancel(jctx)
				defer cancel()
				stop := context.AfterFunc(sweepCtx, cancel)
				defer stop()
				if err := sweepCtx.Err(); err != nil {
					return nil, err
				}
				tr, err := runBackendTrial(runCtx, task.name, task.g, cfg, task.seed)
				if err != nil {
					if cerr := sweepCtx.Err(); cerr != nil {
						return nil, cerr
					}
					cancelSweep()
					return nil, fmt.Errorf("experiment: %s on %s: %w", task.name, task.g.Name, err)
				}
				return tr, nil
			},
			Opts: jobs.SubmitOpts{Key: task.key(cfg)},
		}
	}

	raw, errs := jobs.WaitBatch(sweepCtx, mgr.SubmitBatch(items))
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	results := make([]backendTrialResult, len(raw))
	for i, v := range raw {
		results[i] = v.(backendTrialResult)
	}
	table := &BackendTable{Cfg: cfg}
	for ci := 0; ci*cfg.Trials < len(results); ci++ {
		task := tasks[ci*cfg.Trials]
		cell := aggregateBackendCell(task.name, task.g.Name, cfg,
			results[ci*cfg.Trials:(ci+1)*cfg.Trials])
		table.Cells = append(table.Cells, cell)
	}
	return table, nil
}

// runBackendTrial designs the group's architecture, detunes it, and has
// the named backend (with its degradation ladder) recover it. An
// exhausted ladder is a failed trial charged the full budget, not a
// sweep error; context errors still abort.
func runBackendTrial(ctx context.Context, name string, g spec.Spec, cfg BackendConfig, seed int64) (backendTrialResult, error) {
	des, err := design.Design(backendArchFor(g.Name), g, nil)
	if err != nil {
		return backendTrialResult{}, err
	}
	topo := detuneTopology(des.Topo, seed, cfg.Detune)
	p := backend.Problem{
		Spec: g, Topo: topo, Budget: cfg.Budget,
		Eval: func(ctx context.Context, tp *topology.Topology) (measure.Report, error) {
			env := topology.DefaultEnv()
			env.CL, env.RL = g.CL, g.RL
			nl, err := tp.Elaborate(env)
			if err != nil {
				return measure.Report{}, err
			}
			return measure.AnalyzeContext(ctx, nl, "out")
		},
	}
	degraded := false
	res, err := backend.SizeLadder(ctx, name, p, seed, func(from, to string, err error) {
		degraded = true
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return backendTrialResult{}, cerr
		}
		return backendTrialResult{degraded: true, evals: cfg.Budget, ets: cfg.Budget}, nil
	}
	tr := backendTrialResult{
		ok: res.Success, degraded: degraded, evals: res.Evals, ets: cfg.Budget,
	}
	if res.Success {
		tr.fom = g.FoMOf(res.Report)
		tr.ets = res.EvalsToSuccess
	}
	return tr, nil
}

// aggregateBackendCell folds trial results into one cell; shared by the
// serial and parallel sweeps so both produce identical tables.
func aggregateBackendCell(name, group string, cfg BackendConfig, results []backendTrialResult) BackendCell {
	cell := BackendCell{Backend: name, Group: group, Trials: cfg.Trials}
	var evals, ets int
	for _, r := range results {
		evals += r.evals
		ets += r.ets
		if r.degraded {
			cell.Degraded++
		}
		if r.ok {
			cell.Successes++
			cell.FoM += r.fom
		}
	}
	if cell.Successes > 0 {
		cell.FoM /= float64(cell.Successes)
	}
	n := float64(len(results))
	cell.Evals = float64(evals) / n
	cell.EvalsToOK = float64(ets) / n
	return cell
}
