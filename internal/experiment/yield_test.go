package experiment

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"artisan/internal/agents"
	"artisan/internal/llm"
	"artisan/internal/netlist"
	"artisan/internal/spec"
	"artisan/internal/topology"
)

func designedNetlist(t *testing.T, g spec.Spec) *netlist.Netlist {
	t.Helper()
	out, err := agents.NewSession(llm.NewDomainModel(1, 0), g, agents.DefaultOptions()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("design failed: %s", out.FailReason)
	}
	return out.Netlist
}

func TestArtisanDesignYield(t *testing.T) {
	g1, _ := spec.Group("G-1")
	nl := designedNetlist(t, g1)
	res, err := MonteCarloYield(nl, g1, YieldOpts{Samples: 120, Sigma: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A margin-driven design survives 5% spread most of the time. The
	// binding metric is PM: Butterworth sizing targets 60° but parasitic
	// loading eats a few degrees, leaving ~1-2° of margin over the 55°
	// spec — so about a third of mismatch samples dip below it.
	if res.Yield() < 0.55 {
		t.Errorf("Artisan G-1 yield = %v, want >= 55%% (violations: %v)", res, res.Violations)
	}
	if !strings.Contains(res.String(), "yield") {
		t.Error("String malformed")
	}
}

func TestYieldDropsOnMarginlessDesign(t *testing.T) {
	// An NMC sized exactly at the spec boundary (no GBW margin, minimum
	// PM) must yield worse than the margined design.
	g1, _ := spec.Group("G-1")
	marginless := topology.NMC(
		2*3.14159265*0.7e6*4e-12, // gm1 for GBW exactly 0.7 MHz
		4*3.14159265*0.7e6*3e-12,
		8*3.14159265*0.7e6*10e-12,
		4e-12, 3e-12)
	env := topology.DefaultEnv()
	nl, err := marginless.Elaborate(env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarloYield(nl, g1, YieldOpts{Samples: 120, Sigma: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	margined := designedNetlist(t, g1)
	res2, err := MonteCarloYield(margined, g1, YieldOpts{Samples: 120, Sigma: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield() >= res2.Yield() {
		t.Errorf("marginless yield %v should trail margined %v", res, res2)
	}
	// The boundary design fails dominantly on GBW.
	if res.Violations["GBW(Hz)"] == 0 {
		t.Errorf("expected GBW violations, got %v", res.Violations)
	}
}

func TestYieldValidation(t *testing.T) {
	g1, _ := spec.Group("G-1")
	bad := netlist.New("floating")
	bad.AddR("R1", "a", "b", 1e3)
	if _, err := MonteCarloYield(bad, g1, DefaultYieldOpts(1)); err == nil {
		t.Error("invalid netlist accepted")
	}
}

func TestYieldDeterministic(t *testing.T) {
	g1, _ := spec.Group("G-1")
	nl := designedNetlist(t, g1)
	a, _ := MonteCarloYield(nl, g1, YieldOpts{Samples: 40, Sigma: 0.05, Seed: 9})
	b, _ := MonteCarloYield(nl, g1, YieldOpts{Samples: 40, Sigma: 0.05, Seed: 9})
	if a.Pass != b.Pass {
		t.Error("yield not deterministic")
	}
}

func TestCornersOnArtisanDesign(t *testing.T) {
	g1, _ := spec.Group("G-1")
	out, err := agents.NewSession(llm.NewDomainModel(1, 0), g1, agents.DefaultOptions()).Run(context.Background())
	if err != nil || !out.Success {
		t.Fatalf("design failed: %v", err)
	}
	rep, err := RunCorners(out.Topology, g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("got %d corners", len(rep.Results))
	}
	// TT must pass (it is the nominal design point).
	if !rep.Results[0].Pass {
		t.Errorf("TT corner fails: %v", rep.Results[0].Report)
	}
	// FF has more gm per bias: GBW must rise relative to SS.
	var ff, ss CornerResult
	for _, c := range rep.Results {
		switch c.Corner.Name {
		case "FF":
			ff = c
		case "SS":
			ss = c
		}
	}
	if ff.Report.GBW <= ss.Report.GBW {
		t.Errorf("FF GBW %g should exceed SS %g", ff.Report.GBW, ss.Report.GBW)
	}
	if !strings.Contains(rep.String(), "TT") {
		t.Error("table malformed")
	}
}

func TestCornersValidation(t *testing.T) {
	g1, _ := spec.Group("G-1")
	tp := topology.NMC(25e-6, 38e-6, 251e-6, 4e-12, 3e-12)
	if _, err := RunCorners(tp, g1, []Corner{{Name: "bad", GmScale: 0, FTScale: 1, A0Scale: 1}}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestBudgetCurve(t *testing.T) {
	g1, _ := spec.Group("G-1")
	pts, err := BudgetCurve(MethodGA, g1, []int{30, 60}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Budget != 30 || pts[1].Budget != 60 {
		t.Fatalf("curve = %+v", pts)
	}
	if !strings.Contains(FormatCurve(MethodGA, pts), "sims:") {
		t.Error("format malformed")
	}
	if _, err := BudgetCurve(MethodArtisan, g1, []int{10}, 1, 1); err == nil {
		t.Error("Artisan budget curve should be refused")
	}
	if _, err := BudgetCurve(MethodGA, g1, []int{10}, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestGAThroughHarness(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Trials = 1
	cfg.Budget = 40
	cfg.Methods = []Method{MethodGA}
	cfg.Groups = []string{"G-1"}
	t3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := t3.Cell(MethodGA, "G-1")
	if !ok {
		t.Fatal("GA cell missing")
	}
	if c.Time <= 0 {
		t.Error("GA time not modeled")
	}
}

func TestYieldIdenticalAcrossWorkers(t *testing.T) {
	// The sharding contract: per-sample RNG streams are derived from
	// (seed, index), and outcomes aggregate in index order — so the result
	// must be byte-identical for every worker count, including serial.
	g1, _ := spec.Group("G-1")
	nl := designedNetlist(t, g1)
	ref, err := MonteCarloYield(nl, g1, YieldOpts{Samples: 60, Sigma: 0.05, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got, err := MonteCarloYield(nl, g1, YieldOpts{Samples: 60, Sigma: 0.05, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: %+v != serial %+v", workers, got, ref)
		}
	}
}

func TestCornersIdenticalAcrossWorkers(t *testing.T) {
	g1, _ := spec.Group("G-1")
	tp := topology.NMC(25e-6, 38e-6, 251e-6, 4e-12, 3e-12)
	ref, err := RunCornersParallel(tp, g1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5} {
		got, err := RunCornersParallel(tp, g1, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d corner results differ from serial", workers)
		}
	}
}
