package experiment

import (
	"fmt"
	"strings"

	"artisan/internal/opt"
	"artisan/internal/spec"
)

// Budget-sensitivity curves: how a black-box baseline's success rate
// grows with its simulation budget. This is the convergence-style
// experiment the optimization literature reports, and it locates the
// budget at which a searcher would catch up with the knowledge-driven
// flow — typically far beyond anything wall-clock-feasible on a real
// simulator.

// CurvePoint is one budget's aggregate.
type CurvePoint struct {
	Budget    int
	Trials    int
	Successes int
	BestFoM   float64 // best FoM over the successful trials
}

// BudgetCurve evaluates the method at each budget with the given trials.
// Only the black-box methods are meaningful here (Artisan does not
// consume a search budget).
func BudgetCurve(m Method, g spec.Spec, budgets []int, trials int, seed int64) ([]CurvePoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiment: trials must be >= 1")
	}
	var out []CurvePoint
	for _, b := range budgets {
		pt := CurvePoint{Budget: b, Trials: trials}
		for i := 0; i < trials; i++ {
			s := seed + int64(i)*977 + int64(b)
			var ok bool
			var fom float64
			switch m {
			case MethodBOBO:
				r, err := opt.BOBO(g, b, s)
				if err != nil {
					return nil, err
				}
				ok, fom = r.Success, g.FoMOf(r.Report)
			case MethodRLBO:
				r, err := opt.RLBO(g, b, s)
				if err != nil {
					return nil, err
				}
				ok, fom = r.Success, g.FoMOf(r.Report)
			case MethodGA:
				r, err := opt.GA(g, b, s, opt.DefaultGAOpts())
				if err != nil {
					return nil, err
				}
				ok, fom = r.Success, g.FoMOf(r.Report)
			default:
				return nil, fmt.Errorf("experiment: %s has no budget curve", m)
			}
			if ok {
				pt.Successes++
				if fom > pt.BestFoM {
					pt.BestFoM = fom
				}
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatCurve renders the curve as a small table.
func FormatCurve(m Method, pts []CurvePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s success vs budget:\n", m)
	for _, p := range pts {
		fmt.Fprintf(&b, "  %4d sims: %d/%d (best FoM %.0f)\n", p.Budget, p.Successes, p.Trials, p.BestFoM)
	}
	return b.String()
}
