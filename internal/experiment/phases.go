package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"artisan/internal/telemetry"
)

// PhaseTimes is a measured per-phase wall-clock breakdown of a design
// run, aggregated from telemetry spans. It complements the Table 3 cost
// model: the model predicts what a run would cost on real EDA tooling,
// the phases report where this implementation actually spent its time.
type PhaseTimes map[string]time.Duration

// spanPhase maps exact span names to phase buckets. Only leaf-phase
// names appear: nested container spans (agents.session, sizing.*,
// mna.*) are excluded so no wall-clock is counted twice across buckets
// — except that "tuning" contains the simulator calls its optimizer
// issues, which also count under "simulation".
var spanPhase = map[string]string{
	"llm.propose_architectures": "llm-qa",
	"llm.propose_knobs":         "llm-qa",
	"llm.propose_modification":  "llm-qa",
	"cot.design":                "design-flow",
	"tool.calculator":           "calculation",
	"tool.simulator":            "simulation",
	"tool.tuner":                "tuning",
	"gmid.map":                  "mapping",
}

// phasesFromTrace folds recorded span trees into phase buckets.
func phasesFromTrace(roots []*telemetry.Span) PhaseTimes {
	stats := telemetry.SumByName(roots)
	pt := PhaseTimes{}
	for name, st := range stats {
		phase, ok := spanPhase[name]
		if !ok {
			continue
		}
		pt[phase] += st.Total
	}
	return pt
}

// meanPhases averages the per-trial breakdowns of one cell. Trials
// without trace data (the black-box baselines) contribute nothing.
func meanPhases(results []trialResult) PhaseTimes {
	sum := PhaseTimes{}
	n := 0
	for _, r := range results {
		if len(r.phases) == 0 {
			continue
		}
		n++
		for k, v := range r.phases {
			sum[k] += v
		}
	}
	if n == 0 {
		return nil
	}
	for k := range sum {
		sum[k] /= time.Duration(n)
	}
	return sum
}

// phaseKey addresses one cell's breakdown in Table3.Phases.
func phaseKey(m Method, group string) string { return string(m) + "|" + group }

// PhasesFor returns the measured mean phase breakdown of a cell, or nil
// when the method produced no trace (the non-agentic baselines).
func (t *Table3) PhasesFor(m Method, group string) PhaseTimes {
	return t.Phases[phaseKey(m, group)]
}

// PhaseBreakdown renders the measured per-phase time breakdown next to
// the modeled Table 3 times: one row per traced cell, phases ordered by
// share of the measured total.
func (t *Table3) PhaseBreakdown() string {
	var keys []string
	for k := range t.Phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("Measured per-phase wall-clock (mean per trial, from trace spans)\n")
	if len(keys) == 0 {
		b.WriteString("  no traced cells (phases are recorded for the agentic methods only)\n")
		return b.String()
	}
	for _, k := range keys {
		pt := t.Phases[k]
		var names []string
		for name := range pt {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			if pt[names[i]] != pt[names[j]] {
				return pt[names[i]] > pt[names[j]]
			}
			return names[i] < names[j]
		})
		method, group, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "%-8s %-5s", method, group)
		for _, name := range names {
			fmt.Fprintf(&b, "  %s=%s", name, pt[name].Round(time.Microsecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}
