package experiment

import (
	"context"
	"reflect"
	"testing"
)

func backendTestConfig() BackendConfig {
	cfg := DefaultBackendConfig(42)
	cfg.Trials = 2
	cfg.Budget = 40
	cfg.Backends = []string{"bo", "whitebox", "hybrid"}
	cfg.Groups = []string{"G-1"}
	return cfg
}

func TestRunBackendsValidation(t *testing.T) {
	cfg := backendTestConfig()
	cfg.Trials = 0
	if _, err := RunBackends(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = backendTestConfig()
	cfg.Budget = 5
	if _, err := RunBackends(cfg); err == nil {
		t.Error("tiny budget accepted")
	}
	cfg = backendTestConfig()
	cfg.Backends = []string{"annealing"}
	if _, err := RunBackends(cfg); err == nil {
		t.Error("unknown backend accepted")
	}
	cfg = backendTestConfig()
	cfg.Groups = []string{"G-9"}
	if _, err := RunBackends(cfg); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestRunBackendsTable(t *testing.T) {
	cfg := backendTestConfig()
	table, err := RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(table.Cells))
	}
	for _, c := range table.Cells {
		if c.Trials != cfg.Trials {
			t.Errorf("%s/%s trials = %d", c.Backend, c.Group, c.Trials)
		}
		if c.Evals <= 0 || c.Evals > float64(cfg.Budget) {
			t.Errorf("%s/%s mean evals = %g out of (0, %d]", c.Backend, c.Group, c.Evals, cfg.Budget)
		}
	}
	// The analytic backends should reach spec dramatically earlier than
	// plain BO on the calibrated NMC family.
	wb, ok := table.Cell("whitebox", "G-1")
	if !ok || wb.Successes == 0 {
		t.Fatalf("whitebox cell missing or failed: %+v", wb)
	}
	bo, _ := table.Cell("bo", "G-1")
	if wb.EvalsToOK >= bo.EvalsToOK {
		t.Errorf("whitebox ToSpec %.1f not better than bo %.1f", wb.EvalsToOK, bo.EvalsToOK)
	}
	if adv := table.EvalAdvantage("whitebox", "bo", "G-1"); adv < 1 {
		t.Errorf("EvalAdvantage = %g, want > 1", adv)
	}
	if table.String() == "" {
		t.Error("empty rendering")
	}
}

// TestRunBackendsSerialParallelIdentical is the determinism bar: the
// parallel sweep must produce byte-identical cells to the serial one.
func TestRunBackendsSerialParallelIdentical(t *testing.T) {
	cfg := backendTestConfig()
	serial, err := RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Errorf("serial != parallel:\n%v\nvs\n%v", serial.Cells, parallel.Cells)
	}
	if serial.String() != parallel.String() {
		t.Error("rendered tables differ")
	}
	again, err := RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel.Cells, again.Cells) {
		t.Error("repeated parallel run differs")
	}
}

func TestRunBackendsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBackendsContext(ctx, backendTestConfig()); err == nil {
		t.Error("cancelled sweep returned a table")
	}
}
