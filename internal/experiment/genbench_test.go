package experiment

import (
	"context"
	"strings"
	"testing"
)

// TestGenBenchSerialParallelIdentical: the parallel sweep reassembles in
// index order from config-derived seeds, so its rendered table matches
// the serial one byte for byte.
func TestGenBenchSerialParallelIdentical(t *testing.T) {
	cfg := GenBenchConfig{Trials: 6, Seed: 7}
	ser, err := RunGenBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunGenBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ser.String() != par.String() {
		t.Fatalf("serial and parallel tables differ:\n%s\nvs\n%s", ser, par)
	}
}

// TestGenBenchScoreSeparation: the sweep separates the roster as
// designed — retrieval fully credited, terse grounded but uncredited,
// fabricator failing groundedness on every trial.
func TestGenBenchScoreSeparation(t *testing.T) {
	table, err := RunGenBench(DefaultGenBenchConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	ret, ok := table.Row("retrieval")
	if !ok {
		t.Fatal("no retrieval row")
	}
	if ret.GroundPass*100 < ret.Trials*95 {
		t.Errorf("retrieval grounded %s; want >= 95%%", ret.PassRate())
	}
	if ret.Credited == 0 || ret.FoM <= 0 {
		t.Errorf("retrieval credited %d with FoM %g; want credited trials with positive FoM", ret.Credited, ret.FoM)
	}
	te, _ := table.Row("terse")
	if te.GroundPass != te.Trials || te.Credited != 0 {
		t.Errorf("terse grounded %s credited %d; want all grounded, none credited", te.PassRate(), te.Credited)
	}
	fab, _ := table.Row("fabricator")
	if fab.GroundPass != 0 {
		t.Errorf("fabricator grounded on %s trials; injections escaped the verifier", fab.PassRate())
	}
	if fab.Findings < fab.Trials*2 {
		t.Errorf("fabricator produced only %d findings over %d trials", fab.Findings, fab.Trials)
	}
	if len(table.Stages) < 2 {
		t.Errorf("task set covers stage counts %v; want at least two distinct depths", table.Stages)
	}
	if len(table.Families) < 6 {
		t.Errorf("task set covers %d compensation families %v; want >= 6", len(table.Families), table.Families)
	}
}

// TestGenBenchDesignerSubset: configured designer subsets select and
// order rows; unknown names fail fast.
func TestGenBenchDesignerSubset(t *testing.T) {
	table, err := RunGenBenchContext(context.Background(), GenBenchConfig{
		Trials: 2, Seed: 1, Designers: []string{"terse", "retrieval"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 || table.Rows[0].Designer != "terse" || table.Rows[1].Designer != "retrieval" {
		t.Fatalf("rows = %+v; want terse then retrieval", table.Rows)
	}
	if _, err := RunGenBench(GenBenchConfig{Trials: 1, Seed: 1, Designers: []string{"nope"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown designer") {
		t.Fatalf("unknown designer error = %v", err)
	}
	if _, err := RunGenBench(GenBenchConfig{Trials: 0, Seed: 1}); err == nil {
		t.Fatal("zero trials accepted")
	}
}
