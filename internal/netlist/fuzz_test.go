package netlist

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzParse: the parser must never panic, and anything it accepts must
// round-trip through String → Parse to the same device count.
func FuzzParse(f *testing.F) {
	f.Add("* title\nV1 in 0 AC 1\nR1 in out 10k\nC1 out 0 4p\n.end\n")
	f.Add("G1 0 out in 0 100u\nRo out 0 1MEG")
	f.Add("E1 a 0 b 0 2\nR1 a 0 1k\nR2 b 0 1k")
	f.Add("")
	f.Add(".end")
	f.Add("R1 a 0")
	f.Add("X1 q w 5")
	f.Add("* only a comment")
	f.Add("I1 0 x 1m\nR1 x 0 1k")
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(nl.String())
		if err != nil {
			t.Fatalf("accepted netlist failed reparse: %v\noriginal: %q", err, src)
		}
		if len(again.Devices) != len(nl.Devices) {
			t.Fatalf("round trip changed device count %d -> %d", len(nl.Devices), len(again.Devices))
		}
	})
}

// FuzzDeviceLineRoundTrip: any valid device renders to a line its parser
// accepts.
func FuzzDeviceLineRoundTrip(f *testing.F) {
	f.Add("Rx", "a", "b", 1234.5)
	f.Add("Cload", "out", "0", 1e-11)
	f.Fuzz(func(t *testing.T, name, a, b string, v float64) {
		if v <= 0 || v > 1e15 || v < 1e-15 {
			return
		}
		if a == "" || b == "" || a == b || !validNode(a) || !validNode(b) {
			return
		}
		nl := New("fuzz")
		nl.AddR("R"+sanitize(name), a, b, v)
		if _, err := Parse(nl.String()); err != nil {
			t.Fatalf("generated line unparseable: %v\n%s", err, nl)
		}
	})
}

// validNode reports whether s can appear as a node name in a rendered
// line: any whitespace rune (not just ASCII space — the fuzzer found
// "\r") or unprintable byte splits or corrupts the line on reparse.
func validNode(s string) bool {
	return !strings.ContainsFunc(s, func(r rune) bool {
		return unicode.IsSpace(r) || !unicode.IsPrint(r) || r == '*' || r == '.'
	})
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r < 127 && r != '*' && r != '.' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}
