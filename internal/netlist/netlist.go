// Package netlist models behavioral-level analog circuits as SPICE-style
// netlists: a list of devices connecting named nodes. It is the de facto
// circuit representation the paper builds on (§3.2, Fig. 3): linear devices
// (R, C), controlled sources (VCCS "G" elements for transconductance
// stages, VCVS "E" elements), and independent sources (V, I).
//
// The package provides construction helpers, validation, graph queries,
// and a parser/writer for a SPICE-like text format, so netlists round-trip
// through text exactly as the Artisan-LLM consumes and emits them.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"artisan/internal/units"
)

// Ground is the reference node name.
const Ground = "0"

// DeviceKind enumerates supported element types.
type DeviceKind int

const (
	// Resistor is a two-terminal linear resistor (value in ohms).
	Resistor DeviceKind = iota
	// Capacitor is a two-terminal linear capacitor (value in farads).
	Capacitor
	// VCCS is a voltage-controlled current source (G element, value in
	// siemens): nodes are [out+, out-, ctrl+, ctrl-]; a positive control
	// voltage pushes current gm·v from out+ to out- through the source,
	// i.e. current gm·v flows out of the out+ terminal into the circuit?
	// SPICE convention: current flows from out+ terminal through the
	// source to out-, so I(out+→out-) = gm·(v(ctrl+)-v(ctrl-)).
	VCCS
	// VCVS is a voltage-controlled voltage source (E element, value is
	// the dimensionless gain): nodes are [out+, out-, ctrl+, ctrl-].
	VCVS
	// VSource is an independent voltage source (value in volts, used as
	// the AC excitation): nodes are [n+, n-].
	VSource
	// ISource is an independent current source (value in amperes):
	// nodes are [n+, n-], current flows from n+ through the source to n-.
	ISource
)

// String returns the SPICE letter for the kind.
func (k DeviceKind) String() string {
	switch k {
	case Resistor:
		return "R"
	case Capacitor:
		return "C"
	case VCCS:
		return "G"
	case VCVS:
		return "E"
	case VSource:
		return "V"
	case ISource:
		return "I"
	}
	return "?"
}

// TerminalCount returns how many nodes a device of this kind connects.
func (k DeviceKind) TerminalCount() int {
	switch k {
	case VCCS, VCVS:
		return 4
	default:
		return 2
	}
}

// Device is one circuit element.
type Device struct {
	Kind  DeviceKind
	Name  string   // full instance name, e.g. "Cm1", "Rz", "Gm2"
	Nodes []string // length Kind.TerminalCount()
	Value float64  // SI units per kind
}

// Line renders the device as one SPICE netlist line.
func (d Device) Line() string {
	return fmt.Sprintf("%s %s %s", d.Name, strings.Join(d.Nodes, " "), units.Format(d.Value))
}

// Netlist is an ordered list of devices with a title.
type Netlist struct {
	Title   string
	Devices []Device
}

// New creates an empty netlist with the given title.
func New(title string) *Netlist { return &Netlist{Title: title} }

// Clone returns a deep copy.
func (n *Netlist) Clone() *Netlist {
	out := &Netlist{Title: n.Title, Devices: make([]Device, len(n.Devices))}
	for i, d := range n.Devices {
		nd := d
		nd.Nodes = append([]string(nil), d.Nodes...)
		out.Devices[i] = nd
	}
	return out
}

func (n *Netlist) add(kind DeviceKind, name string, value float64, nodes ...string) *Netlist {
	n.Devices = append(n.Devices, Device{Kind: kind, Name: name, Nodes: nodes, Value: value})
	return n
}

// AddR appends a resistor between a and b.
func (n *Netlist) AddR(name, a, b string, ohms float64) *Netlist {
	return n.add(Resistor, name, ohms, a, b)
}

// AddC appends a capacitor between a and b.
func (n *Netlist) AddC(name, a, b string, farads float64) *Netlist {
	return n.add(Capacitor, name, farads, a, b)
}

// AddG appends a VCCS: I(outP→outM) = gm·(V(ctrlP)−V(ctrlM)).
func (n *Netlist) AddG(name, outP, outM, ctrlP, ctrlM string, gm float64) *Netlist {
	return n.add(VCCS, name, gm, outP, outM, ctrlP, ctrlM)
}

// AddE appends a VCVS: V(outP)−V(outM) = gain·(V(ctrlP)−V(ctrlM)).
func (n *Netlist) AddE(name, outP, outM, ctrlP, ctrlM string, gain float64) *Netlist {
	return n.add(VCVS, name, gain, outP, outM, ctrlP, ctrlM)
}

// AddV appends an independent voltage source.
func (n *Netlist) AddV(name, p, m string, volts float64) *Netlist {
	return n.add(VSource, name, volts, p, m)
}

// AddI appends an independent current source.
func (n *Netlist) AddI(name, p, m string, amps float64) *Netlist {
	return n.add(ISource, name, amps, p, m)
}

// Find returns the device with the given name, or nil.
func (n *Netlist) Find(name string) *Device {
	for i := range n.Devices {
		if n.Devices[i].Name == name {
			return &n.Devices[i]
		}
	}
	return nil
}

// Remove deletes the named device; it reports whether it was present.
func (n *Netlist) Remove(name string) bool {
	for i := range n.Devices {
		if n.Devices[i].Name == name {
			n.Devices = append(n.Devices[:i], n.Devices[i+1:]...)
			return true
		}
	}
	return false
}

// SetValue updates the named device's value; it reports success.
func (n *Netlist) SetValue(name string, v float64) bool {
	if d := n.Find(name); d != nil {
		d.Value = v
		return true
	}
	return false
}

// Nodes returns the sorted set of node names, always including ground if
// any device touches it.
func (n *Netlist) Nodes() []string {
	seen := map[string]bool{}
	for _, d := range n.Devices {
		for _, nd := range d.Nodes {
			seen[nd] = true
		}
	}
	out := make([]string, 0, len(seen))
	for nd := range seen {
		out = append(out, nd)
	}
	sort.Strings(out)
	return out
}

// NonGroundNodes returns sorted nodes excluding ground.
func (n *Netlist) NonGroundNodes() []string {
	all := n.Nodes()
	out := all[:0]
	for _, nd := range all {
		if nd != Ground {
			out = append(out, nd)
		}
	}
	return out
}

// CountKind returns how many devices of the given kind the netlist holds.
func (n *Netlist) CountKind(k DeviceKind) int {
	c := 0
	for _, d := range n.Devices {
		if d.Kind == k {
			c++
		}
	}
	return c
}

// String renders the netlist in SPICE format with a trailing ".end".
func (n *Netlist) String() string {
	var b strings.Builder
	if n.Title != "" {
		fmt.Fprintf(&b, "* %s\n", n.Title)
	}
	for _, d := range n.Devices {
		b.WriteString(d.Line())
		b.WriteByte('\n')
	}
	b.WriteString(".end\n")
	return b.String()
}

// Validate checks structural sanity: unique names, correct terminal counts,
// kind/name letter agreement, positive values for passives, no device
// shorted to itself on its output port, and DC connectivity of every node
// to ground (treating every device port pair as an edge — capacitors count,
// since an AC analysis still constrains such nodes).
func (n *Netlist) Validate() error {
	names := map[string]bool{}
	for _, d := range n.Devices {
		if d.Name == "" {
			return fmt.Errorf("netlist: device with empty name")
		}
		if names[d.Name] {
			return fmt.Errorf("netlist: duplicate device name %q", d.Name)
		}
		names[d.Name] = true
		if !strings.HasPrefix(strings.ToUpper(d.Name), d.Kind.String()) {
			return fmt.Errorf("netlist: device %q must start with letter %s", d.Name, d.Kind)
		}
		if len(d.Nodes) != d.Kind.TerminalCount() {
			return fmt.Errorf("netlist: device %q has %d nodes, want %d", d.Name, len(d.Nodes), d.Kind.TerminalCount())
		}
		for _, nd := range d.Nodes {
			if nd == "" {
				return fmt.Errorf("netlist: device %q has empty node name", d.Name)
			}
		}
		switch d.Kind {
		case Resistor, Capacitor:
			if d.Value <= 0 {
				return fmt.Errorf("netlist: %s %q must have positive value, got %g", d.Kind, d.Name, d.Value)
			}
			if d.Nodes[0] == d.Nodes[1] {
				return fmt.Errorf("netlist: %s %q connects node %q to itself", d.Kind, d.Name, d.Nodes[0])
			}
		case VCCS, VCVS:
			if d.Nodes[0] == d.Nodes[1] {
				return fmt.Errorf("netlist: %s %q output is shorted", d.Kind, d.Name)
			}
		}
	}
	// Connectivity to ground.
	if len(n.Devices) == 0 {
		return nil
	}
	adj := map[string][]string{}
	link := func(a, b string) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, d := range n.Devices {
		switch d.Kind {
		case VCCS, VCVS:
			link(d.Nodes[0], d.Nodes[1])
			// control port is high-impedance: not an edge
		default:
			link(d.Nodes[0], d.Nodes[1])
		}
	}
	reach := map[string]bool{Ground: true}
	stack := []string{Ground}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !reach[w] {
				reach[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, nd := range n.Nodes() {
		if !reach[nd] {
			return fmt.Errorf("netlist: node %q has no conducting path to ground", nd)
		}
	}
	return nil
}

// Degree returns, for each node, the number of device terminals attached
// (control terminals included).
func (n *Netlist) Degree() map[string]int {
	deg := map[string]int{}
	for _, d := range n.Devices {
		for _, nd := range d.Nodes {
			deg[nd]++
		}
	}
	return deg
}

// DevicesAt returns the names of devices with any terminal on the node.
func (n *Netlist) DevicesAt(node string) []string {
	var out []string
	for _, d := range n.Devices {
		for _, nd := range d.Nodes {
			if nd == node {
				out = append(out, d.Name)
				break
			}
		}
	}
	return out
}
