package netlist

import (
	"bufio"
	"fmt"
	"strings"

	"artisan/internal/units"
)

// Parse reads a SPICE-like netlist. Lines starting with '*' are comments
// (the first comment becomes the title), ".end" terminates, blank lines are
// skipped. Device lines are "NAME node... VALUE" where the first letter of
// NAME selects the kind and VALUE accepts engineering notation.
func Parse(src string) (*Netlist, error) {
	n := New("")
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	sawTitle := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "*") {
			if !sawTitle {
				n.Title = strings.TrimSpace(strings.TrimPrefix(line, "*"))
				sawTitle = true
			}
			continue
		}
		if strings.HasPrefix(strings.ToLower(line), ".end") {
			break
		}
		if strings.HasPrefix(line, ".") {
			// Other dot-cards (.ac, .probe …) are tolerated and ignored.
			continue
		}
		dev, err := parseDeviceLine(line)
		if err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
		}
		n.Devices = append(n.Devices, dev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return n, nil
}

func parseDeviceLine(line string) (Device, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Device{}, fmt.Errorf("too few fields in %q", line)
	}
	name := fields[0]
	var kind DeviceKind
	switch strings.ToUpper(name[:1]) {
	case "R":
		kind = Resistor
	case "C":
		kind = Capacitor
	case "G":
		kind = VCCS
	case "E":
		kind = VCVS
	case "V":
		kind = VSource
	case "I":
		kind = ISource
	default:
		return Device{}, fmt.Errorf("unknown device letter in %q", name)
	}
	want := kind.TerminalCount()
	// Voltage sources may carry an "AC" keyword: "V1 in 0 AC 1".
	vals := fields[1:]
	if kind == VSource || kind == ISource {
		filtered := vals[:0]
		for _, f := range vals {
			if strings.EqualFold(f, "AC") || strings.EqualFold(f, "DC") {
				continue
			}
			filtered = append(filtered, f)
		}
		vals = filtered
	}
	if len(vals) != want+1 {
		return Device{}, fmt.Errorf("device %q: got %d fields after name, want %d nodes + value", name, len(vals), want)
	}
	nodes := append([]string(nil), vals[:want]...)
	v, err := units.Parse(vals[want])
	if err != nil {
		return Device{}, fmt.Errorf("device %q: %w", name, err)
	}
	return Device{Kind: kind, Name: name, Nodes: nodes, Value: v}, nil
}

// MustParse parses a trusted literal netlist, panicking on error.
func MustParse(src string) *Netlist {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}
