package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildNMC constructs the behavioral NMC three-stage opamp used throughout
// the test suites: three VCCS stages with Ro/Cp, two nested Miller caps,
// a load, and an AC input source.
func buildNMC() *Netlist {
	n := New("nmc three-stage opamp")
	n.AddV("Vin", "in", Ground, 1)
	// stage 1
	n.AddG("Gm1", Ground, "n1", "in", Ground, 25.13e-6)
	n.AddR("Ro1", "n1", Ground, 4e6)
	n.AddC("Cp1", "n1", Ground, 4e-15)
	// stage 2
	n.AddG("Gm2", Ground, "n2", "n1", Ground, 37.7e-6)
	n.AddR("Ro2", "n2", Ground, 1.2e6)
	n.AddC("Cp2", "n2", Ground, 6e-15)
	// stage 3 (inverting)
	n.AddG("Gm3", "out", Ground, "n2", Ground, 251.3e-6)
	n.AddR("Ro3", "out", Ground, 180e3)
	n.AddC("Cp3", "out", Ground, 40e-15)
	// compensation + load
	n.AddC("Cm1", "n1", "out", 4e-12)
	n.AddC("Cm2", "n2", "out", 3e-12)
	n.AddR("RL", "out", Ground, 1e6)
	n.AddC("CL", "out", Ground, 10e-12)
	return n
}

func TestBuildAndValidate(t *testing.T) {
	n := buildNMC()
	if err := n.Validate(); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	if got := len(n.Devices); got != 14 {
		t.Errorf("device count = %d, want 13", got)
	}
	if got := n.CountKind(Capacitor); got != 6 {
		t.Errorf("capacitor count = %d, want 6", got)
	}
	nodes := n.Nodes()
	for _, want := range []string{"0", "in", "n1", "n2", "out"} {
		found := false
		for _, nd := range nodes {
			if nd == want {
				found = true
			}
		}
		if !found {
			t.Errorf("node %q missing from %v", want, nodes)
		}
	}
	if len(n.NonGroundNodes()) != len(nodes)-1 {
		t.Error("NonGroundNodes should drop exactly ground")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Netlist
	}{
		{"duplicate name", func() *Netlist {
			n := New("")
			n.AddR("R1", "a", "0", 1e3)
			n.AddR("R1", "b", "0", 1e3)
			return n
		}},
		{"wrong letter", func() *Netlist {
			n := New("")
			n.Devices = append(n.Devices, Device{Kind: Resistor, Name: "C1", Nodes: []string{"a", "0"}, Value: 1})
			return n
		}},
		{"negative resistor", func() *Netlist {
			n := New("")
			n.AddR("R1", "a", "0", -5)
			return n
		}},
		{"zero capacitor", func() *Netlist {
			n := New("")
			n.AddC("C1", "a", "0", 0)
			return n
		}},
		{"self-loop resistor", func() *Netlist {
			n := New("")
			n.AddR("R1", "a", "a", 1e3)
			return n
		}},
		{"shorted vccs output", func() *Netlist {
			n := New("")
			n.AddG("G1", "a", "a", "b", "0", 1e-3)
			n.AddR("R1", "a", "0", 1e3)
			n.AddR("R2", "b", "0", 1e3)
			return n
		}},
		{"floating node", func() *Netlist {
			n := New("")
			n.AddR("R1", "a", "0", 1e3)
			n.AddR("R2", "b", "c", 1e3)
			return n
		}},
		{"empty device name", func() *Netlist {
			n := New("")
			n.Devices = append(n.Devices, Device{Kind: Resistor, Name: "", Nodes: []string{"a", "0"}, Value: 1})
			return n
		}},
		{"wrong terminal count", func() *Netlist {
			n := New("")
			n.Devices = append(n.Devices, Device{Kind: VCCS, Name: "G1", Nodes: []string{"a", "0"}, Value: 1})
			return n
		}},
		{"empty node name", func() *Netlist {
			n := New("")
			n.Devices = append(n.Devices, Device{Kind: Resistor, Name: "R1", Nodes: []string{"a", ""}, Value: 1})
			return n
		}},
	}
	for _, c := range cases {
		if err := c.build().Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid netlist", c.name)
		}
	}
}

func TestFindRemoveSetValue(t *testing.T) {
	n := buildNMC()
	if d := n.Find("Cm2"); d == nil || d.Value != 3e-12 {
		t.Fatal("Find(Cm2) failed")
	}
	if !n.SetValue("Cm2", 5e-12) || n.Find("Cm2").Value != 5e-12 {
		t.Error("SetValue failed")
	}
	if !n.Remove("Cm2") || n.Find("Cm2") != nil {
		t.Error("Remove failed")
	}
	if n.Remove("Cm2") {
		t.Error("double Remove should report false")
	}
	if n.SetValue("nope", 1) {
		t.Error("SetValue on missing device should report false")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := buildNMC()
	c := n.Clone()
	c.SetValue("Cm1", 9e-12)
	c.Devices[0].Nodes[0] = "other"
	if n.Find("Cm1").Value == 9e-12 {
		t.Error("Clone shares values")
	}
	if n.Devices[0].Nodes[0] == "other" {
		t.Error("Clone shares node slices")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	n := buildNMC()
	text := n.String()
	if !strings.Contains(text, "* nmc three-stage opamp") {
		t.Error("title missing from output")
	}
	if !strings.HasSuffix(text, ".end\n") {
		t.Error(".end missing")
	}
	p, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Title != n.Title {
		t.Errorf("title = %q, want %q", p.Title, n.Title)
	}
	if len(p.Devices) != len(n.Devices) {
		t.Fatalf("device count = %d, want %d", len(p.Devices), len(n.Devices))
	}
	for i := range p.Devices {
		a, b := p.Devices[i], n.Devices[i]
		if a.Name != b.Name || a.Kind != b.Kind {
			t.Errorf("device %d: got %v %v, want %v %v", i, a.Kind, a.Name, b.Kind, b.Name)
		}
		if rel := (a.Value - b.Value) / b.Value; rel > 1e-3 || rel < -1e-3 {
			t.Errorf("device %s: value %g vs %g", a.Name, a.Value, b.Value)
		}
	}
}

func TestParseVariants(t *testing.T) {
	src := `* test circuit
V1 in 0 AC 1
R1 in mid 10k

C1 mid 0 1p
.ac dec 10 1 1G
G1 0 out mid 0 100u
RO out 0 1MEG
.end
trailing garbage ignored`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Devices) != 5 {
		t.Fatalf("got %d devices, want 5", len(n.Devices))
	}
	if n.Find("V1").Value != 1 {
		t.Error("AC keyword not handled")
	}
	if n.Find("RO").Value != 1e6 {
		t.Error("1MEG not parsed")
	}
	if err := n.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R1 a 0",           // missing value
		"X1 a 0 5",         // unknown letter
		"R1 a 0 zz",        // bad value
		"G1 a 0 b 5",       // too few nodes for VCCS
		"R1 a b 0 extra 5", // too many fields
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDegreeAndDevicesAt(t *testing.T) {
	n := buildNMC()
	deg := n.Degree()
	if deg["out"] < 5 {
		t.Errorf("out degree = %d, want >= 5", deg["out"])
	}
	at := n.DevicesAt("out")
	found := false
	for _, name := range at {
		if name == "CL" {
			found = true
		}
	}
	if !found {
		t.Errorf("DevicesAt(out) = %v, missing CL", at)
	}
	if len(n.DevicesAt("nonexistent")) != 0 {
		t.Error("DevicesAt on unknown node should be empty")
	}
}

// Property: random RC ladder netlists round-trip through text.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New("random ladder")
		prev := Ground
		for i := 0; i < 3+rng.Intn(8); i++ {
			node := string(rune('a' + i))
			n.AddR(deviceName("R", i), prev, node, 1e3*(1+rng.Float64()*99))
			n.AddC(deviceName("C", i), node, Ground, 1e-12*(1+rng.Float64()*99))
			prev = node
		}
		text := n.String()
		p, err := Parse(text)
		if err != nil {
			return false
		}
		if len(p.Devices) != len(n.Devices) {
			return false
		}
		for i := range p.Devices {
			rel := (p.Devices[i].Value - n.Devices[i].Value) / n.Devices[i].Value
			if rel > 1e-3 || rel < -1e-3 {
				return false
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func deviceName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("R1 a 0")
}

func TestDeviceKindStrings(t *testing.T) {
	kinds := []DeviceKind{Resistor, Capacitor, VCCS, VCVS, VSource, ISource}
	letters := []string{"R", "C", "G", "E", "V", "I"}
	for i, k := range kinds {
		if k.String() != letters[i] {
			t.Errorf("kind %d String = %q, want %q", i, k.String(), letters[i])
		}
	}
	if DeviceKind(99).String() != "?" {
		t.Error("unknown kind should stringify to ?")
	}
}
