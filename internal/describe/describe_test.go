package describe

import (
	"strings"
	"testing"
	"testing/quick"

	"artisan/internal/topology"
	"artisan/internal/units"
)

func TestDescribeNMC(t *testing.T) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	d := Describe(topo)
	for _, want := range []string{
		"three-stage operational amplifier",
		"input stage has transconductance 25.13u",
		"Miller compensation capacitor",
		"from the first-stage output to the output node",
		"capacitance 4p",
		"capacitance 3p",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("description missing %q:\n%s", want, d)
		}
	}
}

func TestParseRecoversNMC(t *testing.T) {
	topo := topology.NMC(25.13e-6, 37.7e-6, 251.3e-6, 4e-12, 3e-12)
	got, err := Parse(Describe(topo))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Conns) != 2 {
		t.Fatalf("parsed %d connections, want 2", len(got.Conns))
	}
	for i := range topo.Stages {
		if !units.ApproxEqual(got.Stages[i].Gm, topo.Stages[i].Gm, 1e-3) {
			t.Errorf("stage %d gm = %g, want %g", i, got.Stages[i].Gm, topo.Stages[i].Gm)
		}
	}
	c := got.ConnAt(topology.Position{From: "n1", To: "out"})
	if c == nil || c.Type != topology.ConnC || !units.ApproxEqual(c.C, 4e-12, 1e-3) {
		t.Errorf("outer Miller cap not recovered: %+v", c)
	}
}

func TestDescribeCascadeA0(t *testing.T) {
	topo := topology.NMC(30e-6, 40e-6, 250e-6, 4e-12, 3e-12)
	topo.Stages[1].A0 = 160
	got, err := Parse(Describe(topo))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stages[1].A0 != 160 {
		t.Errorf("cascode A0 lost: %g", got.Stages[1].A0)
	}
}

func TestDescribeDFCFC(t *testing.T) {
	topo := topology.DFCFC(18.8e-6, 15e-6, 340e-6, 3e-12, 34e-6, 3e-12, 51e-6)
	d := Describe(topo)
	if !strings.Contains(d, "damping-factor-control block") {
		t.Errorf("DFC phrase missing:\n%s", d)
	}
	if !strings.Contains(d, "attached at the second-stage output") &&
		!strings.Contains(d, "attached at the first-stage output") {
		t.Errorf("DFC attachment missing:\n%s", d)
	}
	got, err := Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConnAt(topology.Position{From: "n1", To: "0"}) == nil {
		t.Error("DFC block not recovered at n1 shunt")
	}
	ff := got.ConnAt(topology.Position{From: "n1", To: "out"})
	if ff == nil || ff.Type != topology.ConnGmNParallelC {
		t.Errorf("feedforward-with-cap not recovered: %+v", ff)
	}
}

// Round trip over every connection type.
func TestRoundTripEveryType(t *testing.T) {
	for ct := topology.ConnType(1); int(ct) < topology.NumConnTypes; ct++ {
		pos := topology.Position{From: "n1", To: "out"}
		if ct.ShuntOnly() {
			pos = topology.Position{From: "n2", To: "0"}
		}
		topo := topology.NMC(30e-6, 40e-6, 250e-6, 4e-12, 3e-12)
		topo.RemoveConn(topology.Position{From: "n1", To: "out"})
		topo.SetConn(topology.Connection{Pos: pos, Type: ct, Gm: 123e-6, R: 4.7e3, C: 2.2e-12})
		if err := topo.Validate(); err != nil {
			t.Fatalf("%v: test topology invalid: %v", ct, err)
		}
		got, err := Parse(Describe(topo))
		if err != nil {
			t.Errorf("%v: %v", ct, err)
			continue
		}
		c := got.ConnAt(pos)
		if c == nil {
			t.Errorf("%v: connection lost at %v", ct, pos)
			continue
		}
		if c.Type != ct {
			t.Errorf("%v: came back as %v", ct, c.Type)
		}
		if ct.HasGm() && !units.ApproxEqual(c.Gm, 123e-6, 1e-3) {
			t.Errorf("%v: gm = %g", ct, c.Gm)
		}
		if ct.HasC() && !units.ApproxEqual(c.C, 2.2e-12, 1e-3) {
			t.Errorf("%v: C = %g", ct, c.C)
		}
		if ct.HasR() && !units.ApproxEqual(c.R, 4.7e3, 1e-3) {
			t.Errorf("%v: R = %g", ct, c.R)
		}
	}
}

// Property: random valid topologies survive the round trip structurally.
func TestRoundTripRandomTopologies(t *testing.T) {
	f := func(seed int64) bool {
		s := topology.NewSampler(seed)
		topo := s.Random()
		got, err := Parse(Describe(topo))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(got.Conns) != len(topo.Conns) {
			t.Logf("seed %d: %d conns vs %d", seed, len(got.Conns), len(topo.Conns))
			return false
		}
		for _, c := range topo.Conns {
			g := got.ConnAt(c.Pos)
			if g == nil || g.Type != c.Type {
				t.Logf("seed %d: lost %v at %v", seed, c.Type, c.Pos)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"This text is about cooking recipes.",
		"This is a three-stage operational amplifier.", // no stage values
	}
	for _, d := range bad {
		if _, err := Parse(d); err == nil {
			t.Errorf("Parse(%q) should fail", d)
		}
	}
}

func TestNewTuple(t *testing.T) {
	topo := topology.NMC(25e-6, 38e-6, 251e-6, 4e-12, 3e-12)
	tu, err := NewTuple(topo, topology.DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tu.Netlist, "Gm1") || !strings.Contains(tu.Netlist, ".end") {
		t.Error("netlist text malformed")
	}
	if !strings.Contains(tu.Description, "three-stage") {
		t.Error("description malformed")
	}
	// The two representations agree: parse both and compare stage gm.
	got, err := Parse(tu.Description)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got.Stages[2].Gm, 251e-6, 1e-3) {
		t.Error("tuple description inconsistent with topology")
	}
}

func TestSplitSentences(t *testing.T) {
	ss := splitSentences("First with 25.13u value. Second here. Third")
	if len(ss) != 3 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
	if !strings.Contains(ss[0], "25.13u") {
		t.Error("decimal point split a sentence")
	}
}

func TestTwoStageRoundTrip(t *testing.T) {
	topo := topology.SMCNR(20e-6, 190e-6, 1e-12, 5.2e3)
	d := Describe(topo)
	if !strings.Contains(d, "two-stage operational amplifier") {
		t.Fatalf("description: %s", d)
	}
	got, err := Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.TwoStage {
		t.Error("TwoStage flag lost")
	}
	if !units.ApproxEqual(got.Stages[0].Gm, 20e-6, 1e-3) ||
		!units.ApproxEqual(got.Stages[1].Gm, 190e-6, 1e-3) {
		t.Errorf("stage gms = %g/%g", got.Stages[0].Gm, got.Stages[1].Gm)
	}
	c := got.ConnAt(topology.Position{From: "n1", To: "out"})
	if c == nil || c.Type != topology.ConnSeriesRC {
		t.Errorf("nulling branch lost: %+v", c)
	}
}
